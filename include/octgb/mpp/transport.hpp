#pragma once
/// \file transport.hpp
/// The transport seam of the mpp runtime (DESIGN.md §2.10).
///
/// Comm's public API (point-to-point, collectives, failure detector) is
/// transport-agnostic: every data-path and detector operation goes through
/// the detail::Endpoint interface below. Two transports implement it:
///
///   * the in-thread transport (src/mpp/mpp.cpp) — ranks are std::threads
///     sharing mailboxes, faults are injected by a seeded FaultInjector;
///   * the out-of-process transport (mpp/proc.hpp) — ranks are real
///     processes talking over lock-free shared-memory rings (intra-node)
///     and length-prefixed TCP sockets (inter-node), launched by
///     tools/octgb_launch; faults are real SIGKILLs delivered by the
///     launcher, and connection loss / short reads map onto the same
///     CommStatus taxonomy the recovery code already handles.
///
/// This header also defines that taxonomy (CommStatus/CommError) and the
/// wire frame codec shared by the shm rings and the TCP framing, so both
/// media carry the same CRC-protected envelope and can be truncation-swept
/// by the same tests.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "octgb/util/expected.hpp"

namespace octgb::mpp {

/// Maps ranks onto cluster nodes. Rank r lives on node r / ranks_per_node —
/// the block placement ibrun uses on Lonestar4. The out-of-process
/// transport also selects its medium from this: same_node pairs use
/// shared-memory rings, cross-node pairs use TCP.
struct Topology {
  int ranks_per_node = 12;

  int node_of(int rank) const { return rank / ranks_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
};

// --- failure taxonomy -------------------------------------------------------

/// Why a recoverable communication operation failed.
enum class CommStatus : std::uint8_t {
  Timeout,           ///< deadline expired with no matching message
  PeerDead,          ///< the source rank died (failure detector)
  ChecksumMismatch,  ///< per-message CRC did not verify (corruption)
  ConnectionLost,    ///< transport connection dropped / frame truncated
};

/// Stable display name for a CommStatus ("timeout", ...).
const char* comm_status_name(CommStatus status);

/// Inverse of comm_status_name: parse a display name back to the status;
/// nullopt for unknown names. Used by log/metrics scrapers — the pair
/// round-trips for every enumerator (tested in mpp_test).
std::optional<CommStatus> comm_status_from_name(std::string_view name);

/// A failed communication operation: what went wrong and the (src, tag,
/// bytes) triple that identifies the message being waited for.
struct CommError {
  CommStatus status = CommStatus::Timeout;
  int rank = -1;           ///< the rank the operation ran on
  int src = -1;            ///< expected source rank
  int tag = 0;             ///< expected tag
  std::size_t bytes = 0;   ///< expected payload size

  /// Human-readable description including the (src, tag, bytes) triple.
  std::string describe() const;
};

/// Result of a recoverable receive.
using CommResult = util::Expected<util::Unit, CommError>;

/// Thrown by the *blocking* communication API when a failure-semantics
/// error occurs (deadline expiry under a default deadline, dead peer,
/// checksum mismatch, lost connection). Carries the structured CommError.
class CommException : public std::runtime_error {
 public:
  explicit CommException(CommError error)
      : std::runtime_error(error.describe()), error_(error) {}

  /// The structured error.
  const CommError& error() const { return error_; }

 private:
  CommError error_;
};

// --- the transport interface ------------------------------------------------

namespace detail {

/// Per-rank transport endpoint: the six operations Comm needs from a
/// medium. One instance per rank, alive for the duration of the rank's
/// run; Comm never owns it.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Rank → node placement (drives intra/inter-node accounting and, for
  /// the out-of-process transport, the shm-vs-TCP medium choice).
  virtual const Topology& topology() const = 0;

  /// Deadline applied to plain blocking receives; 0 waits forever.
  virtual double default_deadline_ms() const = 0;

  /// Deliver `bytes` to `dest` under `tag`. `op` is the sender's comm-op
  /// index — the in-thread transport feeds it to the fault injector so
  /// fault schedules stay deterministic. Never blocks indefinitely: a
  /// dead or unreachable destination drops the message (the receiver
  /// observes the death through the failure detector, not a hang).
  virtual void send(int dest, int tag, const void* data, std::size_t bytes,
                    std::uint64_t op) = 0;

  /// Matched receive with deadline (<= 0 waits forever). When
  /// `abort_epoch` >= 0, the wait additionally aborts early once the
  /// failure epoch moves past it (returning PeerDead if `src` died, else
  /// Timeout) — the fail-fast contract retry-with-backoff relies on.
  virtual CommResult recv(int src, int tag, void* data, std::size_t bytes,
                          double deadline_ms, int abort_epoch) = 0;

  /// True when a matching message has already arrived (Comm::test).
  virtual bool has_message(int src, int tag) = 0;

  /// Failure detector: liveness, global failure epoch, heartbeats.
  virtual bool is_alive(int rank) const = 0;
  virtual int failure_epoch() const = 0;
  virtual std::uint64_t heartbeat_of(int rank) const = 0;
  /// Bump this rank's own heartbeat (called on every comm op).
  virtual void heartbeat() = 0;

  /// Injection hook run at the top of every comm op, after the heartbeat.
  /// The in-thread transport applies scheduled stalls/kills here; the
  /// out-of-process transport leaves it empty — its faults are real
  /// SIGKILLs delivered by the launcher.
  virtual void fault_hook(std::uint64_t op) { (void)op; }
};

}  // namespace detail

// --- wire frame codec -------------------------------------------------------
//
// Both out-of-process media (shm ring slots and TCP streams) carry the
// same envelope: a fixed header followed by the payload. The CRC is
// always on for the wire — unlike the in-thread transport's opt-in
// checksum, a real medium can corrupt bits without an injector's help —
// and covers the payload, so collective internals (bcast/reduce/gatherv
// hops) are protected hop by hop exactly like point-to-point sends.

namespace wire {

/// Fixed per-message envelope. `payload_bytes` leads so a stream reader
/// can length-prefix-frame without peeking further.
struct FrameHeader {
  std::uint32_t payload_bytes = 0;  ///< bytes following the header
  std::int32_t src = -1;            ///< sending rank
  std::int32_t tag = 0;             ///< message tag
  std::uint32_t crc = 0;            ///< CRC-32 of the payload
};

/// Refuse frames claiming more than this (a corrupt length field, not a
/// real message): 1 GiB, far above any collective payload in the repo.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// One decoded message.
struct Frame {
  int src = -1;
  int tag = 0;
  std::vector<std::uint8_t> payload;
};

/// Serialize header + payload into `out` (appended; `out` is not
/// cleared). The CRC is computed here.
void encode_frame(int src, int tag, const void* data, std::size_t bytes,
                  std::vector<std::uint8_t>& out);

/// Decode a complete frame from a contiguous buffer (the shm-ring path).
/// Fails with ChecksumMismatch on a CRC break and ConnectionLost on a
/// short or implausible buffer.
util::Expected<Frame, CommStatus> decode_frame(const std::uint8_t* data,
                                               std::size_t bytes);

/// Read one frame from a blocking fd (the TCP path), using the hardened
/// util::io short-read/EINTR loop. A clean close or error — including one
/// landing mid-frame, the truncation case the sweep tests — yields
/// ConnectionLost; a CRC break yields ChecksumMismatch.
util::Expected<Frame, CommStatus> read_frame_fd(int fd);

/// Write one frame to a blocking fd; false on any write failure (the
/// caller maps it to its reconnect/backoff path).
bool write_frame_fd(int fd, int src, int tag, const void* data,
                    std::size_t bytes);

}  // namespace wire

}  // namespace octgb::mpp
