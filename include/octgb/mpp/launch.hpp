#pragma once
/// \file launch.hpp
/// Process launcher + chaos driver for the out-of-process transport
/// (DESIGN.md §2.10). The CLI wrapper is tools/octgb_launch.
///
/// run_job() plays the role ibrun/mpirun plays on a real cluster: it
/// creates the job directory, initializes the shared-memory segment,
/// forks/execs one process per rank with the rendezvous environment
/// (mpp/proc.hpp), optionally pins each rank to its node's block of cores
/// (the NUMA-ish placement a block scheduler would produce), and reaps
/// exit codes. It is also the chaos driver: a KillSpec schedule delivers
/// real SIGKILLs at job-relative times, and the launcher — the only
/// reliable observer of a killed process — publishes each death into the
/// segment's failure detector (dead flag + failure-epoch bump), exactly
/// like MVAPICH2's mpirun_rsh noticing a lost rank. A rank that *exits*
/// nonzero or dies from any signal is marked dead too; a clean exit 0 is
/// not a failure.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "octgb/mpp/transport.hpp"

namespace octgb::mpp::launch {

/// One scheduled chaos kill: SIGKILL `rank` once every armed trigger
/// holds — `after_ms` of job time, and (when `after_store_files >= 0`)
/// the job's checkpoint store (`<job_dir>/ckpt`) holding at least that
/// many checkpoint files. The store trigger pins kills to *observable
/// progress* instead of wall time, so a chaos schedule reliably lands
/// mid-phase no matter how fast or slow the job runs — including while
/// ranks are actively writing checkpoints (the atomic-rename torn-write
/// hardening's worst case).
struct KillSpec {
  int rank = 0;
  double after_ms = 0.0;
  int after_store_files = -1;  ///< -1 = time-only
};

/// One job to launch.
struct JobSpec {
  int ranks = 2;
  Topology topology{12};
  /// argv of the rank executable (argv[0] = path). Every rank gets the
  /// same command line; per-rank identity arrives via the environment.
  std::vector<std::string> command;
  /// Job directory (segment, port files, checkpoint store). Empty →
  /// a fresh mkdtemp under $TMPDIR which the caller owns afterwards.
  std::string job_dir;
  std::vector<KillSpec> kills;
  /// Pin each rank to one core of its node's contiguous core block
  /// (wraps modulo the machine's core count; Linux only, no-op elsewhere).
  bool bind_cores = false;
  std::uint64_t ring_bytes = std::uint64_t{1} << 20;
  /// Default deadline handed to every rank's blocking receives: on a real
  /// transport an unbounded receive from a SIGKILLed peer could otherwise
  /// wait forever between failure-epoch checks.
  double default_deadline_ms = 2000.0;
  std::vector<std::pair<std::string, std::string>> extra_env;
  /// Whole-job watchdog; on expiry every surviving rank is SIGKILLed and
  /// the job reports timed_out.
  double timeout_ms = 120000.0;
};

/// What happened to one rank process.
struct RankResult {
  long pid = -1;
  int exit_code = -1;    ///< valid when term_signal == 0
  int term_signal = 0;   ///< nonzero when the process died from a signal
  bool killed_by_chaos = false;

  bool clean() const { return term_signal == 0 && exit_code == 0; }
};

/// Outcome of one launched job.
struct JobResult {
  std::vector<RankResult> ranks;
  int kills_delivered = 0;
  bool timed_out = false;
  double wall_ms = 0.0;
  std::string job_dir;

  /// True when every rank not killed by the chaos schedule exited 0.
  bool survivors_clean() const;
};

/// Launch, supervise, and reap one job. Blocks until every rank exited
/// (or the watchdog fired).
JobResult run_job(const JobSpec& spec);

}  // namespace octgb::mpp::launch
