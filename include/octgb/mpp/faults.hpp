#pragma once
/// \file faults.hpp
/// Deterministic fault injection for the mpp runtime (chaos testing).
///
/// Long-running distributed N-body codes treat node loss, stragglers and
/// flaky links as routine events; this module makes them *first-class and
/// reproducible* inside the in-process runtime. A FaultPlan is a seed plus
/// a set of rules; the FaultInjector derives every decision ("does rank 2's
/// 17th communication operation get dropped?") from a stateless hash of
/// (seed, rule, rank, op-index), so the same plan produces the same fault
/// schedule on every run — failures become testable events instead of
/// heisenbugs. The runtime threads an injector through Comm's send/receive
/// paths (see mpp.hpp); the elastic hybrid driver (core/hybrid.hpp) is the
/// recovery layer the injector exists to exercise.
///
/// Fault taxonomy (DESIGN.md §2.5):
///   message faults  — Drop, Delay, Duplicate, Corrupt (applied at send)
///   process faults  — Stall (transient straggler), Kill (permanent death)

#include <atomic>
#include <cstdint>
#include <vector>

namespace octgb::mpp::faults {

/// What a fault rule does to its victim.
enum class FaultKind : std::uint8_t {
  Drop,       ///< message is silently discarded at the "wire"
  Delay,      ///< message delivery is deferred by `millis`
  Duplicate,  ///< message is delivered twice
  Corrupt,    ///< message payload is bit-flipped in flight
  Stall,      ///< the rank sleeps `millis` before the operation
  Kill        ///< the rank dies (RankKilledError) at the operation
};

/// Stable display name ("drop", "kill", ...) for logs and metrics.
const char* fault_kind_name(FaultKind kind);

/// One seeded fault rule. Message-fault rules (Drop/Delay/Duplicate/
/// Corrupt) trigger on sends; Stall/Kill trigger on any communication
/// operation of the victim rank.
struct FaultRule {
  FaultKind kind = FaultKind::Drop;
  /// Victim rank (the *sender* for message faults); -1 matches any rank.
  int rank = -1;
  /// Destination filter for message faults; -1 matches any destination.
  int peer = -1;
  /// Per-eligible-operation firing probability in [0, 1].
  double probability = 1.0;
  /// The rule is dormant until the victim's per-rank comm-op counter
  /// reaches this value — pins "dies mid-run" to a reproducible point.
  std::uint64_t after_op = 0;
  /// Cap on fires per (rule, rank); default unlimited.
  std::uint64_t max_fires = ~std::uint64_t{0};
  /// Delay/Stall duration in milliseconds.
  double millis = 0.0;
};

/// A reproducible fault schedule: a seed plus rules. Two injectors built
/// from equal plans make identical decisions for identical queries.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// True when the plan injects nothing.
  bool empty() const { return rules.empty(); }
};

/// Canned plans used by bench_faults and the CI chaos job ------------------

/// Drop each message independently with probability `p`.
FaultPlan message_loss_plan(std::uint64_t seed, double p = 0.05);
/// Kill `victim` once its comm-op counter reaches `after_op`.
FaultPlan rank_kill_plan(std::uint64_t seed, int victim,
                         std::uint64_t after_op = 8);
/// Stall any rank for `millis` with probability `p` per comm op.
FaultPlan stall_plan(std::uint64_t seed, double p = 0.02,
                     double millis = 5.0);
/// Corrupt each message independently with probability `p` (pair with
/// Runtime::Options::checksum so corruption is *detected*, not absorbed).
FaultPlan corruption_plan(std::uint64_t seed, double p = 0.05);

/// Snapshot of how many faults of each kind have fired so far.
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t delays = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t stalls = 0;
  std::uint64_t kills = 0;

  /// Total fires across all kinds.
  std::uint64_t total() const {
    return drops + delays + duplicates + corruptions + stalls + kills;
  }
};

/// Faults to apply to one outgoing message (several rules may fire on the
/// same send; drop wins over the others when combined).
struct SendFaults {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  double delay_ms = 0.0;

  /// True when no fault applies.
  bool clean() const {
    return !drop && !duplicate && !corrupt && delay_ms <= 0.0;
  }
};

/// Deterministic fault oracle. Thread-safe: decisions are pure functions
/// of (plan, rank, op); only the statistics counters mutate (atomically).
class FaultInjector {
 public:
  /// Build an injector for `ranks` ranks executing `plan`.
  FaultInjector(FaultPlan plan, int ranks);

  /// The plan this injector executes.
  const FaultPlan& plan() const { return plan_; }

  /// Message faults for the send that is `op` in the sender's comm-op
  /// sequence. Deterministic in (plan, src, dest, op).
  SendFaults on_send(int src, int dest, std::uint64_t op) const;

  /// True when `rank` dies at its `op`-th comm operation.
  bool should_kill(int rank, std::uint64_t op) const;

  /// Milliseconds `rank` must stall before its `op`-th comm operation
  /// (0 when no stall rule fires).
  double stall_ms(int rank, std::uint64_t op) const;

  /// Current fire counts by kind.
  FaultStats stats() const;

 private:
  bool rule_fires(std::size_t rule_index, const FaultRule& rule, int rank,
                  int peer, std::uint64_t op) const;

  FaultPlan plan_;
  int ranks_;
  /// Per-(rule, rank) fire counters backing max_fires; flat
  /// [rule * ranks + rank]. Mutable: firing is observable state, not a
  /// logical mutation of the schedule.
  mutable std::vector<std::atomic<std::uint64_t>> fires_;
  mutable std::atomic<std::uint64_t> stat_[6] = {};
};

/// CRC-32 (IEEE 802.3, reflected) of a byte range — the optional
/// per-message checksum the runtime uses to *detect* injected corruption.
std::uint32_t crc32(const void* data, std::size_t bytes);

}  // namespace octgb::mpp::faults
