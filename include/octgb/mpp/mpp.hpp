#pragma once
/// \file mpp.hpp
/// Message-passing runtime — the reproduction's stand-in for MPI/MVAPICH2
/// on the Lonestar4 cluster (see DESIGN.md §2).
///
/// The API mirrors the MPI subset the paper's algorithm needs: blocking
/// tagged send/recv plus Barrier, Bcast, Reduce, Allreduce, Gatherv,
/// Allgatherv — all built on top of point-to-point messages with
/// binomial-tree algorithms, exactly like a real MPI implementation, so
/// measured message counts and byte volumes are faithful. A Topology maps
/// ranks to nodes/sockets so traffic is classified intra- vs inter-node
/// for the cost model.
///
/// Comm is transport-agnostic (mpp/transport.hpp): the same communicator
/// runs over the in-thread transport below (ranks are std::threads inside
/// one process, Runtime::run) or over the out-of-process transport
/// (mpp/proc.hpp: shared-memory rings + TCP between real rank processes
/// started by tools/octgb_launch).
///
/// Failure model (DESIGN.md §2.5, §2.10): failures are first-class events,
/// not hangs. In-thread, a seeded faults::FaultInjector
/// (Runtime::Options::fault_plan) can drop/delay/duplicate/corrupt
/// messages and stall or kill ranks on a reproducible schedule;
/// out-of-process, the launcher SIGKILLs real rank processes and the wire
/// can genuinely drop connections. Either way: receives gain deadline and
/// retry-with-backoff variants returning Expected<..., CommError>;
/// per-message CRCs turn corruption into a detectable ChecksumMismatch;
/// and a shared failure detector (dead flags + per-rank heartbeats + a
/// global failure epoch) makes blocking receives and collectives *fail
/// fast* with PeerDead instead of deadlocking when a peer dies — a
/// retrying receive even aborts its remaining backoff window the moment
/// the failure epoch advances.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "octgb/mpp/faults.hpp"
#include "octgb/mpp/transport.hpp"
#include "octgb/perf/machine_model.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/expected.hpp"

namespace octgb::mpp {

/// Thrown inside a rank when a FaultPlan kill rule fires: the in-process
/// equivalent of the OS killing an MPI process. The runtime marks the rank
/// dead in the failure detector *before* throwing, treats an escaped
/// RankKilledError as a simulated process exit (not a global abort), and
/// surviving ranks observe the death through PeerDead errors. (The
/// out-of-process transport needs no analogue — its kills are SIGKILLs.)
class RankKilledError : public std::runtime_error {
 public:
  RankKilledError(int rank, std::uint64_t op)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " killed by fault plan at comm op " +
                           std::to_string(op)),
        rank_(rank) {}

  /// The rank that died.
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Backoff schedule for recv_bytes_retry: `attempts` tries, the first with
/// `deadline_ms`, each subsequent deadline multiplied by `backoff`.
struct RetryPolicy {
  int attempts = 3;
  double deadline_ms = 100.0;
  double backoff = 2.0;
  /// Abort the remaining attempts (and any in-progress wait) as soon as
  /// the failure epoch advances past its value at the first attempt: a
  /// death anywhere in the job means the caller should re-plan now, not
  /// after the backoff window drains. PeerDead always fails fast.
  bool abort_on_epoch_advance = true;
};

class Comm;

namespace detail {
/// Bind a Comm to a transport endpoint (used by the runtimes; Comm's
/// constructor stays private so user code cannot fabricate handles).
Comm make_comm(Endpoint* endpoint, int rank, int size);
}  // namespace detail

/// Per-rank communicator handle. Valid only inside Runtime::run (thread
/// transport) or ProcessRuntime::run (out-of-process transport).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }
  const Topology& topology() const;

  // --- point to point ----------------------------------------------------

  /// Blocking tagged send of raw bytes.
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  /// Blocking tagged receive; message size must equal `bytes`. Throws
  /// CommException on timeout (when the transport's default deadline is
  /// set), dead peer, checksum mismatch, or lost connection.
  void recv_bytes(int src, int tag, void* data, std::size_t bytes);

  /// Receive with an explicit deadline (milliseconds; <= 0 waits
  /// forever). Returns the error instead of throwing so recovery code can
  /// branch without exceptions.
  CommResult recv_bytes_deadline(int src, int tag, void* data,
                                 std::size_t bytes, double deadline_ms);

  /// Receive with retry-with-backoff: re-arms the deadline per attempt
  /// (survives injected delays and corrupt copies followed by clean
  /// duplicates). Timeout/ChecksumMismatch retry; PeerDead fails fast,
  /// and (per RetryPolicy::abort_on_epoch_advance) so does any advance of
  /// the failure epoch mid-wait.
  CommResult recv_bytes_retry(int src, int tag, void* data,
                              std::size_t bytes, const RetryPolicy& policy);

  /// Nonblocking receive handle. Completed by wait(); handles must not
  /// outlive the Comm.
  class Request {
   public:
    bool valid() const { return comm_ != nullptr; }

   private:
    friend class Comm;
    Comm* comm_ = nullptr;
    int src_ = -1;
    int tag_ = 0;
    void* data_ = nullptr;
    std::size_t bytes_ = 0;
  };

  /// Post a receive without blocking; the buffer must stay alive until
  /// wait(). (Sends in this runtime are buffered and never block, so an
  /// isend is just send_bytes.)
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes);
  template <class T>
  Request irecv(int src, int tag, std::span<T> data) {
    return irecv_bytes(src, tag, data.data(), data.size_bytes());
  }

  /// Complete a posted receive (blocks until the message arrives; honours
  /// the transport's default deadline like recv_bytes). Waiting twice on
  /// the same request is a contract violation (CheckError).
  void wait(Request& request);

  /// Complete a posted receive with an explicit deadline. On success the
  /// request is invalidated; on Timeout it stays valid and can be waited
  /// on again.
  CommResult wait_deadline(Request& request, double deadline_ms);

  /// True when the matching message has already arrived (wait() would not
  /// block). Does not consume the message; delayed (in-flight) messages
  /// do not count as arrived.
  bool test(const Request& request);

  /// Combined exchange (deadlock-free even for self-paired patterns):
  /// send to `dest` and receive from `src` in one call.
  void sendrecv_bytes(int dest, int send_tag, const void* send_data,
                      std::size_t send_bytes, int src, int recv_tag,
                      void* recv_data, std::size_t recv_bytes);
  template <class T>
  void sendrecv(int dest, int send_tag, std::span<const T> send_data,
                int src, int recv_tag, std::span<T> recv_data) {
    sendrecv_bytes(dest, send_tag, send_data.data(), send_data.size_bytes(),
                   src, recv_tag, recv_data.data(), recv_data.size_bytes());
  }

  template <class T>
  void send(int dest, int tag, std::span<const T> data) {
    send_bytes(dest, tag, data.data(), data.size_bytes());
  }
  template <class T>
  void recv(int src, int tag, std::span<T> data) {
    recv_bytes(src, tag, data.data(), data.size_bytes());
  }
  template <class T>
  void send_value(int dest, int tag, const T& v) {
    send_bytes(dest, tag, &v, sizeof(T));
  }
  template <class T>
  T recv_value(int src, int tag) {
    T v;
    recv_bytes(src, tag, &v, sizeof(T));
    return v;
  }
  /// recv_value with a deadline; returns the value or the CommError.
  template <class T>
  util::Expected<T, CommError> recv_value_deadline(int src, int tag,
                                                   double deadline_ms) {
    T v;
    auto r = recv_bytes_deadline(src, tag, &v, sizeof(T), deadline_ms);
    if (!r) return util::Expected<T, CommError>::failure(r.error());
    return util::Expected<T, CommError>::success(std::move(v));
  }

  // --- failure detector ---------------------------------------------------

  /// True when `rank` has not (yet) died. Exact in the in-thread runtime
  /// (a killed rank flips its dead flag before unwinding); out-of-process
  /// it reflects the launcher's reap of the rank's real process.
  bool is_alive(int rank) const;

  /// Ascending list of currently-alive ranks (a consistent snapshot at
  /// some instant; pair with failure_epoch() to detect churn).
  std::vector<int> alive_ranks() const;

  /// Monotonic counter bumped on every rank death. Recovery protocols
  /// snapshot it before a phase and re-plan when it moved.
  int failure_epoch() const;

  /// Heartbeat of `rank`: its comm-op count. A rank whose heartbeat stops
  /// advancing while alive is stalled (straggler), not dead.
  std::uint64_t heartbeat_of(int rank) const;

  /// Communication operations this rank has performed (sends + receives).
  std::uint64_t comm_ops() const { return ops_; }

  /// Advance this rank's comm-op counter through the fault point without
  /// transferring data: refreshes the heartbeat and lets injected stalls
  /// and kills land at a deterministic point. Long compute sections
  /// should poll periodically so the failure detector can tell "busy"
  /// from "dead" — the elastic hybrid driver polls before every task.
  void poll();

  /// Receive attempts retried by recv_bytes_retry on this rank.
  std::uint64_t retries() const { return retries_; }

  // --- collectives (binomial tree; every rank must participate) ----------
  //
  // With the failure detector active, a collective involving a dead rank
  // fails fast (CommException{PeerDead}) instead of hanging; the elastic
  // driver (core/hybrid.hpp) catches and re-plans over the survivors.
  // Collective internals inherit per-hop CRC protection from the
  // transport (opt-in checksum in-thread, always-on on the wire).

  void barrier();

  /// Broadcast root's buffer to all ranks (in place).
  template <class T>
  void bcast(std::span<T> data, int root);

  /// Element-wise sum-reduce onto root (in place at root).
  template <class T>
  void reduce_sum(std::span<T> inout, int root);

  /// Element-wise sum Allreduce (reduce + bcast), in place on all ranks.
  template <class T>
  void allreduce_sum(std::span<T> inout);

  /// Scalar sum Allreduce convenience.
  double allreduce_sum(double v);
  std::uint64_t allreduce_sum(std::uint64_t v);
  /// Scalar min/max Allreduce.
  double allreduce_min(double v);
  double allreduce_max(double v);

  /// Gather variable-size contributions to root; root gets the
  /// rank-ordered concatenation, others get an empty vector.
  template <class T>
  std::vector<T> gatherv(std::span<const T> mine, int root);

  /// Allgatherv: every rank receives the rank-ordered concatenation.
  template <class T>
  std::vector<T> allgatherv(std::span<const T> mine);

  /// All-to-all personalized exchange: `outgoing[r]` goes to rank r; the
  /// returned vector holds what every rank sent to *this* rank (own slot
  /// copied directly). All ranks must call with `outgoing.size() == size()`.
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outgoing);

  /// Inclusive prefix sum across ranks: returns Σ_{r ≤ rank} value_r.
  double scan_sum(double value);

  /// Traffic accounted against this rank so far.
  const perf::CommCounters& counters() const { return counters_; }

 private:
  friend class Runtime;
  friend Comm detail::make_comm(detail::Endpoint* endpoint, int rank,
                                int size);
  Comm(detail::Endpoint* endpoint, int rank, int size)
      : ep_(endpoint), rank_(rank), size_(size) {}

  void account_send(int dest, std::size_t bytes);
  int next_coll_tag();

  /// Heartbeat + injector checkpoint run at the top of every comm op;
  /// returns the op's index. In-thread, applies scheduled stalls and
  /// kills (the latter by marking this rank dead and throwing
  /// RankKilledError).
  std::uint64_t fault_point();
  /// The deadline/retry receive core shared by all receive flavours.
  /// `abort_epoch` >= 0 aborts the wait once the failure epoch passes it.
  CommResult recv_impl(int src, int tag, void* data, std::size_t bytes,
                       double deadline_ms, int abort_epoch = -1);

  detail::Endpoint* ep_;
  int rank_;
  int size_;
  int coll_seq_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t retries_ = 0;
  perf::CommCounters counters_;
};

/// Runs a function on P ranks, each on its own thread (the in-thread
/// transport). For real rank processes see mpp/proc.hpp.
class Runtime {
 public:
  struct Options {
    int ranks = 1;
    Topology topology;
    /// Deadline (milliseconds) applied to plain recv_bytes/wait calls;
    /// 0 waits forever (the classic MPI hang). Setting it turns a receive
    /// of a never-sent message into CommException{Timeout} carrying the
    /// (src, tag, bytes) triple instead of a silent deadlock.
    double default_deadline_ms = 0.0;
    /// Attach a CRC-32 to every message and verify it on receive;
    /// injected corruption then surfaces as ChecksumMismatch instead of
    /// silently wrong payloads. Collective internals are covered too —
    /// every hop of a bcast/reduce/gatherv is a checksummed message.
    bool checksum = false;
    /// Seeded fault schedule executed by a deterministic FaultInjector;
    /// empty = no faults (and zero overhead on the message path).
    faults::FaultPlan fault_plan;
    /// When set, receives the injector's fire counts after the run
    /// (zeroed when fault_plan is empty).
    faults::FaultStats* fault_stats_out = nullptr;
  };

  /// Execute rank_main(comm) on every rank; blocks until all complete.
  /// Exceptions thrown by any rank are rethrown (first wins), except
  /// RankKilledError, which is absorbed as a simulated process exit.
  /// Returns the per-rank communication counters.
  static std::vector<perf::CommCounters> run(
      const Options& opts, const std::function<void(Comm&)>& rank_main);
};

// ---- template implementations --------------------------------------------

namespace detail {

// Reserved tag space for collectives: user tags must be < kCollTagBase.
inline constexpr int kCollTagBase = 1 << 24;

}  // namespace detail

template <class T>
void Comm::bcast(std::span<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  OCTGB_SPAN("mpp.bcast");
  const int tag = next_coll_tag();
  // Binomial tree rooted at `root`: relative rank r receives from
  // r - 2^k (highest set bit), then forwards to r + 2^k for growing k.
  const int rel = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) {
    if (rel & mask) {
      const int src = (rel - mask + root) % size_;
      recv_bytes(src, tag, data.data(), data.size_bytes());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size_) {
      const int dest = (rel + mask + root) % size_;
      send_bytes(dest, tag, data.data(), data.size_bytes());
    }
    mask >>= 1;
  }
  ++counters_.collectives;
}

template <class T>
void Comm::reduce_sum(std::span<T> inout, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  OCTGB_SPAN("mpp.reduce");
  const int tag = next_coll_tag();
  const int rel = (rank_ - root + size_) % size_;
  std::vector<T> tmp(inout.size());
  int mask = 1;
  while (mask < size_) {
    if (rel & mask) {
      const int dest = (rel - mask + root) % size_;
      send_bytes(dest, tag, inout.data(), inout.size_bytes());
      break;
    }
    if (rel + mask < size_) {
      const int src = (rel + mask + root) % size_;
      recv_bytes(src, tag, tmp.data(), tmp.size() * sizeof(T));
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += tmp[i];
    }
    mask <<= 1;
  }
  ++counters_.collectives;
}

template <class T>
void Comm::allreduce_sum(std::span<T> inout) {
  reduce_sum(inout, 0);
  bcast(inout, 0);
}

template <class T>
std::vector<T> Comm::gatherv(std::span<const T> mine, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  OCTGB_SPAN("mpp.gatherv");
  const int tag = next_coll_tag();
  const int tag2 = next_coll_tag();
  std::vector<T> out;
  if (rank_ == root) {
    std::vector<std::vector<T>> parts(size_);
    parts[root].assign(mine.begin(), mine.end());
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      const auto n = recv_value<std::uint64_t>(r, tag);
      parts[r].resize(n);
      if (n) recv_bytes(r, tag2, parts[r].data(), n * sizeof(T));
    }
    for (int r = 0; r < size_; ++r)
      out.insert(out.end(), parts[r].begin(), parts[r].end());
  } else {
    send_value<std::uint64_t>(root, tag, mine.size());
    if (!mine.empty())
      send_bytes(root, tag2, mine.data(), mine.size_bytes());
  }
  ++counters_.collectives;
  return out;
}

template <class T>
std::vector<T> Comm::allgatherv(std::span<const T> mine) {
  std::vector<T> all = gatherv(mine, 0);
  auto n = static_cast<std::uint64_t>(all.size());
  std::span<std::uint64_t> nspan(&n, 1);
  bcast(nspan, 0);
  all.resize(n);
  bcast(std::span<T>(all), 0);
  return all;
}

template <class T>
std::vector<std::vector<T>> Comm::alltoallv(
    const std::vector<std::vector<T>>& outgoing) {
  static_assert(std::is_trivially_copyable_v<T>);
  OCTGB_SPAN("mpp.alltoallv");
  OCTGB_CHECK_MSG(outgoing.size() == static_cast<std::size_t>(size_),
                  "alltoallv needs one outgoing bucket per rank");
  const int tag_len = next_coll_tag();
  const int tag_data = next_coll_tag();
  std::vector<std::vector<T>> incoming(size_);
  incoming[rank_] = outgoing[rank_];
  // Buffered sends never block, so post all sends then drain receives.
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    send_value<std::uint64_t>(r, tag_len, outgoing[r].size());
    if (!outgoing[r].empty())
      send_bytes(r, tag_data, outgoing[r].data(),
                 outgoing[r].size() * sizeof(T));
  }
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    const auto n = recv_value<std::uint64_t>(r, tag_len);
    incoming[r].resize(n);
    if (n) recv_bytes(r, tag_data, incoming[r].data(), n * sizeof(T));
  }
  ++counters_.collectives;
  return incoming;
}

}  // namespace octgb::mpp
