#pragma once
/// \file mpp.hpp
/// In-process message-passing runtime — the reproduction's stand-in for
/// MPI/MVAPICH2 on the Lonestar4 cluster (see DESIGN.md §2).
///
/// Ranks are std::threads inside one process. The API mirrors the MPI
/// subset the paper's algorithm needs: blocking tagged send/recv plus
/// Barrier, Bcast, Reduce, Allreduce, Gatherv, Allgatherv — all built on
/// top of point-to-point messages with binomial-tree algorithms, exactly
/// like a real MPI implementation, so measured message counts and byte
/// volumes are faithful. A Topology maps ranks to nodes/sockets so traffic
/// is classified intra- vs inter-node for the cost model.

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "octgb/perf/machine_model.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::mpp {

/// Maps ranks onto cluster nodes. Rank r lives on node r / ranks_per_node —
/// the block placement ibrun uses on Lonestar4.
struct Topology {
  int ranks_per_node = 12;

  int node_of(int rank) const { return rank / ranks_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
};

namespace detail {
struct SharedState;
}

/// Per-rank communicator handle. Valid only inside Runtime::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }
  const Topology& topology() const;

  // --- point to point ----------------------------------------------------

  /// Blocking tagged send of raw bytes.
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  /// Blocking tagged receive; message size must equal `bytes`.
  void recv_bytes(int src, int tag, void* data, std::size_t bytes);

  /// Nonblocking receive handle. Completed by wait(); handles must not
  /// outlive the Comm.
  class Request {
   public:
    bool valid() const { return comm_ != nullptr; }

   private:
    friend class Comm;
    Comm* comm_ = nullptr;
    int src_ = -1;
    int tag_ = 0;
    void* data_ = nullptr;
    std::size_t bytes_ = 0;
  };

  /// Post a receive without blocking; the buffer must stay alive until
  /// wait(). (Sends in this runtime are buffered and never block, so an
  /// isend is just send_bytes.)
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes);
  template <class T>
  Request irecv(int src, int tag, std::span<T> data) {
    return irecv_bytes(src, tag, data.data(), data.size_bytes());
  }

  /// Complete a posted receive (blocks until the message arrives).
  void wait(Request& request);

  /// True when the matching message has already arrived (wait() would not
  /// block). Does not consume the message.
  bool test(const Request& request);

  /// Combined exchange (deadlock-free even for self-paired patterns):
  /// send to `dest` and receive from `src` in one call.
  void sendrecv_bytes(int dest, int send_tag, const void* send_data,
                      std::size_t send_bytes, int src, int recv_tag,
                      void* recv_data, std::size_t recv_bytes);
  template <class T>
  void sendrecv(int dest, int send_tag, std::span<const T> send_data,
                int src, int recv_tag, std::span<T> recv_data) {
    sendrecv_bytes(dest, send_tag, send_data.data(), send_data.size_bytes(),
                   src, recv_tag, recv_data.data(), recv_data.size_bytes());
  }

  template <class T>
  void send(int dest, int tag, std::span<const T> data) {
    send_bytes(dest, tag, data.data(), data.size_bytes());
  }
  template <class T>
  void recv(int src, int tag, std::span<T> data) {
    recv_bytes(src, tag, data.data(), data.size_bytes());
  }
  template <class T>
  void send_value(int dest, int tag, const T& v) {
    send_bytes(dest, tag, &v, sizeof(T));
  }
  template <class T>
  T recv_value(int src, int tag) {
    T v;
    recv_bytes(src, tag, &v, sizeof(T));
    return v;
  }

  // --- collectives (binomial tree; every rank must participate) ----------

  void barrier();

  /// Broadcast root's buffer to all ranks (in place).
  template <class T>
  void bcast(std::span<T> data, int root);

  /// Element-wise sum-reduce onto root (in place at root).
  template <class T>
  void reduce_sum(std::span<T> inout, int root);

  /// Element-wise sum Allreduce (reduce + bcast), in place on all ranks.
  template <class T>
  void allreduce_sum(std::span<T> inout);

  /// Scalar sum Allreduce convenience.
  double allreduce_sum(double v);
  std::uint64_t allreduce_sum(std::uint64_t v);
  /// Scalar min/max Allreduce.
  double allreduce_min(double v);
  double allreduce_max(double v);

  /// Gather variable-size contributions to root; root gets the
  /// rank-ordered concatenation, others get an empty vector.
  template <class T>
  std::vector<T> gatherv(std::span<const T> mine, int root);

  /// Allgatherv: every rank receives the rank-ordered concatenation.
  template <class T>
  std::vector<T> allgatherv(std::span<const T> mine);

  /// All-to-all personalized exchange: `outgoing[r]` goes to rank r; the
  /// returned vector holds what every rank sent to *this* rank (own slot
  /// copied directly). All ranks must call with `outgoing.size() == size()`.
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outgoing);

  /// Inclusive prefix sum across ranks: returns Σ_{r ≤ rank} value_r.
  double scan_sum(double value);

  /// Traffic accounted against this rank so far.
  const perf::CommCounters& counters() const { return counters_; }

 private:
  friend class Runtime;
  Comm(detail::SharedState* state, int rank, int size)
      : state_(state), rank_(rank), size_(size) {}

  void account_send(int dest, std::size_t bytes);
  int next_coll_tag();

  detail::SharedState* state_;
  int rank_;
  int size_;
  int coll_seq_ = 0;
  perf::CommCounters counters_;
};

/// Runs a function on P ranks, each on its own thread.
class Runtime {
 public:
  struct Options {
    int ranks = 1;
    Topology topology;
  };

  /// Execute rank_main(comm) on every rank; blocks until all complete.
  /// Exceptions thrown by any rank are rethrown (first wins). Returns the
  /// per-rank communication counters.
  static std::vector<perf::CommCounters> run(
      const Options& opts, const std::function<void(Comm&)>& rank_main);
};

// ---- template implementations --------------------------------------------

namespace detail {

// Reserved tag space for collectives: user tags must be < kCollTagBase.
inline constexpr int kCollTagBase = 1 << 24;

}  // namespace detail

template <class T>
void Comm::bcast(std::span<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  OCTGB_SPAN("mpp.bcast");
  const int tag = next_coll_tag();
  // Binomial tree rooted at `root`: relative rank r receives from
  // r - 2^k (highest set bit), then forwards to r + 2^k for growing k.
  const int rel = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) {
    if (rel & mask) {
      const int src = (rel - mask + root) % size_;
      recv_bytes(src, tag, data.data(), data.size_bytes());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size_) {
      const int dest = (rel + mask + root) % size_;
      send_bytes(dest, tag, data.data(), data.size_bytes());
    }
    mask >>= 1;
  }
  ++counters_.collectives;
}

template <class T>
void Comm::reduce_sum(std::span<T> inout, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  OCTGB_SPAN("mpp.reduce");
  const int tag = next_coll_tag();
  const int rel = (rank_ - root + size_) % size_;
  std::vector<T> tmp(inout.size());
  int mask = 1;
  while (mask < size_) {
    if (rel & mask) {
      const int dest = (rel - mask + root) % size_;
      send_bytes(dest, tag, inout.data(), inout.size_bytes());
      break;
    }
    if (rel + mask < size_) {
      const int src = (rel + mask + root) % size_;
      recv_bytes(src, tag, tmp.data(), tmp.size() * sizeof(T));
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += tmp[i];
    }
    mask <<= 1;
  }
  ++counters_.collectives;
}

template <class T>
void Comm::allreduce_sum(std::span<T> inout) {
  reduce_sum(inout, 0);
  bcast(inout, 0);
}

template <class T>
std::vector<T> Comm::gatherv(std::span<const T> mine, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  OCTGB_SPAN("mpp.gatherv");
  const int tag = next_coll_tag();
  const int tag2 = next_coll_tag();
  std::vector<T> out;
  if (rank_ == root) {
    std::vector<std::vector<T>> parts(size_);
    parts[root].assign(mine.begin(), mine.end());
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      const auto n = recv_value<std::uint64_t>(r, tag);
      parts[r].resize(n);
      if (n) recv_bytes(r, tag2, parts[r].data(), n * sizeof(T));
    }
    for (int r = 0; r < size_; ++r)
      out.insert(out.end(), parts[r].begin(), parts[r].end());
  } else {
    send_value<std::uint64_t>(root, tag, mine.size());
    if (!mine.empty())
      send_bytes(root, tag2, mine.data(), mine.size_bytes());
  }
  ++counters_.collectives;
  return out;
}

template <class T>
std::vector<T> Comm::allgatherv(std::span<const T> mine) {
  std::vector<T> all = gatherv(mine, 0);
  auto n = static_cast<std::uint64_t>(all.size());
  std::span<std::uint64_t> nspan(&n, 1);
  bcast(nspan, 0);
  all.resize(n);
  bcast(std::span<T>(all), 0);
  return all;
}

template <class T>
std::vector<std::vector<T>> Comm::alltoallv(
    const std::vector<std::vector<T>>& outgoing) {
  static_assert(std::is_trivially_copyable_v<T>);
  OCTGB_SPAN("mpp.alltoallv");
  OCTGB_CHECK_MSG(outgoing.size() == static_cast<std::size_t>(size_),
                  "alltoallv needs one outgoing bucket per rank");
  const int tag_len = next_coll_tag();
  const int tag_data = next_coll_tag();
  std::vector<std::vector<T>> incoming(size_);
  incoming[rank_] = outgoing[rank_];
  // Buffered sends never block, so post all sends then drain receives.
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    send_value<std::uint64_t>(r, tag_len, outgoing[r].size());
    if (!outgoing[r].empty())
      send_bytes(r, tag_data, outgoing[r].data(),
                 outgoing[r].size() * sizeof(T));
  }
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    const auto n = recv_value<std::uint64_t>(r, tag_len);
    incoming[r].resize(n);
    if (n) recv_bytes(r, tag_data, incoming[r].data(), n * sizeof(T));
  }
  ++counters_.collectives;
  return incoming;
}

}  // namespace octgb::mpp
