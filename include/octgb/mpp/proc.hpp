#pragma once
/// \file proc.hpp
/// Out-of-process transport endpoint + per-process runtime (DESIGN.md
/// §2.10).
///
/// Ranks are real processes started by tools/octgb_launch. Rendezvous is a
/// job directory (environment variables below): it holds the shared-memory
/// segment (mpp/shm.hpp), one `ep.<rank>` port file per rank, and the
/// file-backed checkpoint store. Data paths, selected per peer by the
/// Topology:
///
///   * same node  → the pair's SPSC shm ring (frames flow through in
///     pieces when larger than the ring);
///   * cross node → one length-prefixed TCP connection per pair (loopback
///     in this harness), established lazily: the higher rank connects to
///     the lower rank's listener and introduces itself with a hello frame;
///     both directions share the socket.
///
/// Both media carry the wire frame codec of mpp/transport.hpp, so every
/// hop — including collective internals — is CRC-protected.
///
/// Failure semantics: a SIGKILLed rank process is the real-world analogue
/// of the in-thread injector's kill rule. The launcher reaps it and marks
/// it dead in the segment (the failure-detector ground truth); in-flight
/// frames are simply lost, exactly like an injected drop. A broken socket
/// (EOF, ECONNRESET, EPIPE, a cut landing mid-frame) is ConnectionLost:
/// the connection's initiator retries with capped exponential backoff and,
/// when the peer is genuinely gone, marks it dead so blocked receivers
/// fail fast with PeerDead instead of draining their deadlines. Heartbeat
/// frames flow over idle connections so wire-level liveness is exercised,
/// while the segment stays authoritative for death (only the launcher
/// reliably observes a SIGKILL).

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "octgb/mpp/mpp.hpp"
#include "octgb/mpp/shm.hpp"
#include "octgb/mpp/transport.hpp"

namespace octgb::mpp::proc {

/// Rendezvous environment variables set by the launcher for every rank.
inline constexpr const char* kEnvRank = "OCTGB_MPP_RANK";
inline constexpr const char* kEnvSize = "OCTGB_MPP_SIZE";
inline constexpr const char* kEnvDir = "OCTGB_MPP_DIR";

/// Reconnect schedule: capped exponential backoff, `attempts` tries.
struct BackoffPolicy {
  int attempts = 10;
  double base_ms = 5.0;
  double factor = 2.0;
  double cap_ms = 100.0;

  /// Sleep before attempt `i` (0-based; attempt 0 is immediate).
  double delay_ms(int i) const;
};

/// Wire-level counters for the mpp.transport.* metrics schema
/// (OBSERVABILITY.md).
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t shm_frames = 0;        ///< of frames_received
  std::uint64_t tcp_frames = 0;        ///< of frames_received
  std::uint64_t bytes_sent = 0;
  std::uint64_t reconnects = 0;        ///< successful re-establishments
  std::uint64_t connection_losses = 0; ///< sockets that broke
  std::uint64_t crc_failures = 0;      ///< frames failing CRC on receive
  std::uint64_t heartbeats_sent = 0;   ///< wire heartbeat frames
  std::uint64_t sends_dropped_dead = 0;///< sends to already-dead peers
};

/// The out-of-process transport endpoint for one rank. Single-threaded
/// like the Comm that owns it; not movable once constructed (peers hold
/// its listener address).
class ProcEndpoint final : public detail::Endpoint {
 public:
  ProcEndpoint(shm::Segment* segment, int rank, std::string job_dir,
               BackoffPolicy backoff = {});
  ~ProcEndpoint() override;
  ProcEndpoint(const ProcEndpoint&) = delete;
  ProcEndpoint& operator=(const ProcEndpoint&) = delete;

  const Topology& topology() const override { return topology_; }
  double default_deadline_ms() const override;
  void send(int dest, int tag, const void* data, std::size_t bytes,
            std::uint64_t op) override;
  CommResult recv(int src, int tag, void* data, std::size_t bytes,
                  double deadline_ms, int abort_epoch) override;
  bool has_message(int src, int tag) override;
  bool is_alive(int rank) const override;
  int failure_epoch() const override;
  std::uint64_t heartbeat_of(int rank) const override;
  void heartbeat() override;

  const TransportStats& stats() const { return stats_; }

 private:
  /// A received frame waiting to be matched by recv().
  struct Pending {
    int tag = 0;
    bool crc_ok = true;
    std::vector<std::uint8_t> payload;
  };

  void drain_step(bool allow_sleep);
  void pump_rings();
  void pump_fd(int peer);
  /// Extract complete frames from a staging buffer; false when the stream
  /// lost sync (TCP only — the caller drops the connection).
  bool parse_buffer(int src, std::vector<std::uint8_t>& buf, bool from_shm);
  void accept_connections();
  void adopt_handshakes();
  void lose_connection(int peer);
  int ensure_connection(int dest);
  int connect_to(int peer);
  void send_tcp(int dest, const std::vector<std::uint8_t>& frame);
  void send_wire_heartbeats();

  shm::Segment* seg_;
  int rank_;
  int size_;
  Topology topology_;
  std::string dir_;
  BackoffPolicy backoff_;

  std::vector<shm::Ring> in_rings_;   ///< per src; invalid when no shm path
  std::vector<shm::Ring> out_rings_;  ///< per dst
  std::vector<std::vector<std::uint8_t>> ring_buf_;  ///< per-src staging

  int listen_fd_ = -1;
  std::vector<int> peer_fd_;                          ///< per peer; -1 none
  std::vector<std::vector<std::uint8_t>> fd_buf_;     ///< per-peer staging
  std::vector<std::uint8_t> ever_connected_;  ///< per peer: reconnect stat
  /// Accepted sockets whose hello frame has not arrived yet.
  struct Handshake {
    int fd = -1;
    std::vector<std::uint8_t> buf;
  };
  std::vector<Handshake> handshakes_;

  std::vector<std::deque<Pending>> pending_;  ///< per src
  std::chrono::steady_clock::time_point last_heartbeat_wire_;
  TransportStats stats_;
};

/// Entry point helper for rank executables (tools/octgb_worker).
class ProcessRuntime {
 public:
  /// Rendezvous read from the environment.
  struct Env {
    int rank = -1;
    int size = 0;
    std::string dir;
  };

  /// Parse kEnvRank/kEnvSize/kEnvDir; nullopt when not launched by
  /// octgb_launch.
  static std::optional<Env> from_env();

  struct RunResult {
    perf::CommCounters counters;
    TransportStats transport;
  };

  /// Attach the job segment, build the endpoint + Comm, run `rank_main`.
  /// Returns this rank's communication and transport counters.
  static RunResult run(const Env& env,
                       const std::function<void(Comm&)>& rank_main);
};

}  // namespace octgb::mpp::proc
