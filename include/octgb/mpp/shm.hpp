#pragma once
/// \file shm.hpp
/// Shared-memory half of the out-of-process transport (DESIGN.md §2.10).
///
/// The launcher maps one file-backed segment per job; every rank process
/// attaches the same mapping. The segment holds:
///
///   * a control block — job shape, failure epoch, per-rank dead flags and
///     heartbeats. This is the job's failure-detector ground truth: the
///     launcher (the only reliable observer of a SIGKILLed process) marks
///     deaths here, and on a single machine it doubles as the stand-in for
///     the out-of-band control network a real cluster would use;
///   * one SPSC byte ring per *ordered same-node rank pair* — the
///     intra-node data path. Cross-node pairs carry no ring; their data
///     goes over TCP (mpp/proc.hpp).
///
/// The rings are lock-free byte pipes with monotonic head/tail cursors
/// (std::atomic over shared memory is valid here: the lock-free integral
/// specializations are address-free). They are SIGKILL-safe by
/// construction: a producer publishes bytes only by storing `tail` *after*
/// the memcpy, so a process dying mid-push leaves at worst an unpublished
/// suffix — never a torn frame — and holds no lock a survivor could block
/// on. Frames larger than the ring flow through in pieces; the consumer
/// reassembles them from its private staging buffer.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "octgb/mpp/transport.hpp"

namespace octgb::mpp::shm {

/// Failure-detector slot for one rank, cache-line separated so heartbeat
/// stores from different ranks never false-share.
struct alignas(64) RankSlot {
  std::atomic<std::int32_t> dead;
  std::atomic<std::uint64_t> heartbeat;
};

/// Job-wide control block at offset 0 of the segment.
struct ControlHeader {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::int32_t ranks = 0;
  std::int32_t ranks_per_node = 0;
  std::int32_t reserved = 0;
  std::uint64_t ring_bytes = 0;
  double default_deadline_ms = 0.0;
  std::atomic<std::int32_t> failure_epoch;
  std::atomic<std::int32_t> attached;
};

/// View over one SPSC ring (header + buffer) inside the segment. Exactly
/// one producer process and one consumer process per ring; a Ring object
/// is a cheap non-owning handle.
class Ring {
 public:
  /// Ring cursors, each on its own cache line. Monotonic byte counts:
  /// readable = tail - head, writable = capacity - readable.
  struct Header {
    alignas(64) std::atomic<std::uint64_t> head;  ///< consumer cursor
    alignas(64) std::atomic<std::uint64_t> tail;  ///< producer cursor
  };

  Ring() = default;
  Ring(Header* header, std::uint8_t* buffer, std::uint64_t capacity)
      : h_(header), buf_(buffer), capacity_(capacity) {}

  bool valid() const { return h_ != nullptr; }
  std::uint64_t capacity() const { return capacity_; }

  /// Bytes ready to pop / space ready to push (racy snapshots; exact for
  /// the respective single consumer / single producer).
  std::size_t readable() const;
  std::size_t writable() const;

  /// Push up to `bytes` (possibly less, possibly 0 when full); returns
  /// the count actually written. Producer side only.
  std::size_t try_push(const void* data, std::size_t bytes);

  /// Pop up to `max_bytes` into `out`; returns the count actually read.
  /// Consumer side only.
  std::size_t try_pop(void* out, std::size_t max_bytes);

  /// Bytes needed in the segment for a ring of `capacity` payload bytes.
  static std::size_t footprint(std::uint64_t capacity) {
    return sizeof(Header) + capacity;
  }

 private:
  Header* h_ = nullptr;
  std::uint8_t* buf_ = nullptr;
  std::uint64_t capacity_ = 0;
};

/// One mapped transport segment. The launcher create()s it before forking;
/// every rank attach()es it read-write. Movable, unmaps on destruction.
class Segment {
 public:
  struct Options {
    int ranks = 1;
    Topology topology;
    std::uint64_t ring_bytes = std::uint64_t{1} << 20;
    double default_deadline_ms = 0.0;
  };

  Segment() = default;
  Segment(Segment&& other) noexcept;
  Segment& operator=(Segment&& other) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  ~Segment();

  /// Create (truncate) the segment file and initialize the layout.
  static Segment create(const std::string& path, const Options& options);

  /// Map an existing segment; validates magic/version/shape.
  static Segment attach(const std::string& path);

  bool valid() const { return base_ != nullptr; }
  int ranks() const;
  Topology topology() const;
  double default_deadline_ms() const;

  /// Failure detector (the launcher and every rank share these).
  bool is_alive(int rank) const;
  int failure_epoch() const;
  std::uint64_t heartbeat_of(int rank) const;
  void beat(int rank);

  /// Mark `rank` dead and advance the failure epoch (idempotent: a rank
  /// already dead bumps nothing). Called by the launcher when it reaps or
  /// SIGKILLs a rank, and by the transport when reconnection gives up.
  void mark_dead(int rank);

  /// Count of processes that have attach()ed so far (rendezvous aid).
  int attached() const;

  /// The src→dst data ring; invalid() Ring for cross-node pairs or
  /// src == dst (those pairs have no shm path).
  Ring ring(int src, int dst) const;

 private:
  ControlHeader* header() const;
  RankSlot* slots() const;

  void* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace octgb::mpp::shm
