// \file kernels_impl.hpp
// Width-templated kernel bodies of the explicit vector layer.
//
// Like pack.hpp, this file is textually #included INSIDE an anonymous
// namespace by each per-ISA translation unit (src/simd/kernels_v*.cpp),
// giving every instantiation internal linkage — see the ODR note at the
// top of pack.hpp. The enclosing TU includes <cmath>, <cstdint>,
// <cstddef>, octgb/simd/dispatch.hpp and octgb/core/fastmath.hpp at
// global scope first.
//
// Structure shared by every kernel:
//   · a vector body over the largest multiple of the lane count,
//   · one deterministic pairwise reduction (pack.hpp hsum),
//   · a scalar remainder tail that replicates the reference kernel's
//     per-term code bit for bit (core/batch_kernels.cpp resp. the
//     scalar float ops of the mixed mode).
// Because the reduction completes before the tail accumulates, a span
// shorter than one vector runs the pure scalar loop — simd_diff_test
// leans on this for its bitwise remainder/splice properties.

#ifndef OCTGB_SIMD_KERNELS_IMPL_INCLUDED
#define OCTGB_SIMD_KERNELS_IMPL_INCLUDED

#include "octgb/simd/pack.hpp"

/// Squared float-stream guard band (DESIGN.md §2.7): the double kernels
/// skip q-points with r² ≤ 1e-12 (|r| ≤ 1e-6 Å); float arithmetic cannot
/// resolve that threshold, so the mixed Born kernel widens the skip to
/// r² ≤ 1e-6 (|r| ≤ 1e-3 Å) — still far below any physical atom–surface
/// distance, and applied only to per-term arithmetic, never to near/far
/// classification (which stays double in the traversal and the plan).
constexpr float kMixedGuard2F = 1e-6f;

/// Scalar replica of pack.hpp exp_ps, used by the mixed kernels' scalar
/// remainder tails. Identical operation sequence (the TUs are compiled
/// with -ffp-contract=off), so a tail term equals the corresponding
/// vector lane bit for bit.
inline float exp_ps_scalar(float x) {
  if (x != x) return x;
  float xc = x;
  xc = xc > 88.3762626647949f ? 88.3762626647949f : xc;
  xc = xc < -88.3762626647949f ? -88.3762626647949f : xc;
  const float magic = 12582912.0f;  // 1.5 * 2^23
  const float t = xc * 1.44269504088896341f;
  const float n = (t + magic) - magic;
  float px = xc - n * 0.693359375f;
  px -= n * -2.12194440e-4f;
  float y = 1.9875691500e-4f;
  y = y * px + 1.3981999507e-3f;
  y = y * px + 8.3334519073e-3f;
  y = y * px + 4.1665795894e-2f;
  y = y * px + 1.6666665459e-1f;
  y = y * px + 5.0000001201e-1f;
  y = y * (px * px) + px + 1.0f;
  const std::int32_t bits = (static_cast<std::int32_t>(n) + 127) << 23;
  float scale;
  __builtin_memcpy(&scale, &bits, sizeof(scale));
  float r = y * scale;
  if (x < -87.0f) r = 0.0f;
  return r;
}

/// r⁻⁶ Born surface integral of one atom against a q-point batch.
/// Double-lane body + scalar tail; the tail is bitwise the per-term code
/// of core::batch_born_integral(_fast).
template <int N, bool Fast>
double born_integral_w(double ax, double ay, double az,
                       const core::QPointBatch& q) {
  using vd = typename lanes_of<N>::vd;
  const std::size_t n = q.size();
  const double* __restrict qx = q.x.data();
  const double* __restrict qy = q.y.data();
  const double* __restrict qz = q.z.data();
  const double* __restrict wnx = q.wnx.data();
  const double* __restrict wny = q.wny.data();
  const double* __restrict wnz = q.wnz.data();
  const vd vax = bc<vd>(ax), vay = bc<vd>(ay), vaz = bc<vd>(az);
  const vd one = bc<vd>(1.0), zero = bc<vd>(0.0), thr = bc<vd>(1e-12);
  vd acc = zero;
  std::size_t k = 0;
  for (; k + N <= n; k += N) {
    const vd dx = loadu<vd>(qx + k) - vax;
    const vd dy = loadu<vd>(qy + k) - vay;
    const vd dz = loadu<vd>(qz + k) - vaz;
    const vd r2 = dx * dx + dy * dy + dz * dz;
    const vd mask = r2 > thr ? one : zero;
    const vd safe_r2 = r2 + (one - mask);
    vd inv_r6;
    if constexpr (Fast) {
      const vd t = fast_rsqrt_pd<N>(safe_r2);
      const vd t2 = t * t;
      inv_r6 = t2 * t2 * t2;
    } else {
      inv_r6 = one / (safe_r2 * safe_r2 * safe_r2);
    }
    const vd wdot = loadu<vd>(wnx + k) * dx + loadu<vd>(wny + k) * dy +
                    loadu<vd>(wnz + k) * dz;
    acc += mask * wdot * inv_r6;
  }
  double sum = hsum(acc);
  for (; k < n; ++k) {
    const double dx = qx[k] - ax;
    const double dy = qy[k] - ay;
    const double dz = qz[k] - az;
    const double r2 = dx * dx + dy * dy + dz * dz;
    const double mask = r2 > 1e-12 ? 1.0 : 0.0;
    const double safe_r2 = r2 + (1.0 - mask);
    double inv_r6;
    if constexpr (Fast) {
      const double t = core::fast_rsqrt(safe_r2);
      const double t2 = t * t;
      inv_r6 = t2 * t2 * t2;
    } else {
      inv_r6 = 1.0 / (safe_r2 * safe_r2 * safe_r2);
    }
    sum += mask * (wnx[k] * dx + wny[k] * dy + wnz[k] * dz) * inv_r6;
  }
  return sum;
}

/// Mixed-precision Born integral: float streams at 2N lanes, double
/// accumulation. Each float term is widened to double *before* it joins
/// an accumulator, so the tail (scalar float ops, then a double add)
/// contributes exactly the value a vector lane would have.
template <int N>
double born_integral_mixed_w(double ax, double ay, double az,
                             const core::QPointBatchF& q) {
  using vd = typename lanes_of<N>::vd;
  using vf = typename lanes_of<N>::vf;
  using vfh = typename lanes_of<N>::vfh;
  constexpr int NF = lanes_of<N>::nf;
  const std::size_t n = q.size();
  const float* __restrict qx = q.x.data();
  const float* __restrict qy = q.y.data();
  const float* __restrict qz = q.z.data();
  const float* __restrict wnx = q.wnx.data();
  const float* __restrict wny = q.wny.data();
  const float* __restrict wnz = q.wnz.data();
  const float axf = static_cast<float>(ax);
  const float ayf = static_cast<float>(ay);
  const float azf = static_cast<float>(az);
  const vf vax = bc<vf>(axf), vay = bc<vf>(ayf), vaz = bc<vf>(azf);
  const vf onef = bc<vf>(1.0f), zerof = bc<vf>(0.0f);
  const vf thr = bc<vf>(kMixedGuard2F);
  const vd zerod = bc<vd>(0.0);
  vd acc_lo = zerod, acc_hi = zerod;
  std::size_t k = 0;
  for (; k + NF <= n; k += NF) {
    const vf dx = loadu<vf>(qx + k) - vax;
    const vf dy = loadu<vf>(qy + k) - vay;
    const vf dz = loadu<vf>(qz + k) - vaz;
    const vf r2 = dx * dx + dy * dy + dz * dz;
    const vf mask = r2 > thr ? onef : zerof;
    const vf safe_r2 = r2 + (onef - mask);
    const vf inv_r6 = onef / (safe_r2 * safe_r2 * safe_r2);
    const vf wdot = loadu<vf>(wnx + k) * dx + loadu<vf>(wny + k) * dy +
                    loadu<vf>(wnz + k) * dz;
    const vf term = mask * wdot * inv_r6;
    vfh lo, hi;
    split_f<N>(term, lo, hi);
    acc_lo += widen_f<N>(lo);
    acc_hi += widen_f<N>(hi);
  }
  double sum = hsum(acc_lo + acc_hi);
  for (; k < n; ++k) {
    const float dx = qx[k] - axf;
    const float dy = qy[k] - ayf;
    const float dz = qz[k] - azf;
    const float r2 = dx * dx + dy * dy + dz * dz;
    const float mask = r2 > kMixedGuard2F ? 1.0f : 0.0f;
    const float safe_r2 = r2 + (1.0f - mask);
    const float inv_r6 = 1.0f / (safe_r2 * safe_r2 * safe_r2);
    const float term =
        mask * (wnx[k] * dx + wny[k] * dy + wnz[k] * dz) * inv_r6;
    sum += static_cast<double>(term);
  }
  return sum;
}

/// Exact / fastmath GB pair sum of one pivot atom against an atom batch.
/// The exact body uses pack.hpp exp_pd (≈1 ulp vs libm); the exact tail
/// keeps std::exp so it stays bitwise the batch kernel's per-term code.
/// The fast body replicates core::fast_exp / fast_rsqrt per lane.
template <int N, bool Fast>
double epol_sum_w(double vx, double vy, double vz, double qv, double rv,
                  const core::AtomBatch& atoms) {
  using vd = typename lanes_of<N>::vd;
  const std::size_t n = atoms.size();
  const double* __restrict ux = atoms.x.data();
  const double* __restrict uy = atoms.y.data();
  const double* __restrict uz = atoms.z.data();
  const double* __restrict qu = atoms.charge.data();
  const double* __restrict ru = atoms.born.data();
  const vd vvx = bc<vd>(vx), vvy = bc<vd>(vy), vvz = bc<vd>(vz);
  const vd vrv = bc<vd>(rv), four = bc<vd>(4.0), zero = bc<vd>(0.0);
  vd acc = zero;
  std::size_t k = 0;
  for (; k + N <= n; k += N) {
    const vd dx = loadu<vd>(ux + k) - vvx;
    const vd dy = loadu<vd>(uy + k) - vvy;
    const vd dz = loadu<vd>(uz + k) - vvz;
    const vd r2 = dx * dx + dy * dy + dz * dz;
    const vd d = loadu<vd>(ru + k) * vrv;
    const vd arg = (zero - r2) / (four * d);
    vd e, f2;
    if constexpr (Fast) {
      e = fast_exp_pd<N>(arg);
      f2 = r2 + d * e;
      acc += loadu<vd>(qu + k) * fast_rsqrt_pd<N>(f2);
    } else {
      e = exp_pd<N>(arg);
      f2 = r2 + d * e;
      acc += loadu<vd>(qu + k) / vsqrt_pd(f2);
    }
  }
  double sum = hsum(acc);
  for (; k < n; ++k) {
    const double dx = ux[k] - vx;
    const double dy = uy[k] - vy;
    const double dz = uz[k] - vz;
    const double r2 = dx * dx + dy * dy + dz * dz;
    const double d = ru[k] * rv;
    if constexpr (Fast) {
      const double f2 = r2 + d * core::fast_exp(-r2 / (4.0 * d));
      sum += qu[k] * core::fast_rsqrt(f2);
    } else {
      const double f2 = r2 + d * std::exp(-r2 / (4.0 * d));
      sum += qu[k] / std::sqrt(f2);
    }
  }
  return qv * sum;
}

/// Mixed-precision GB pair sum: float streams at 2N lanes, Born radii
/// narrowed from their double plane lane-wise inside the kernel, double
/// accumulation. No coincidence guard is needed: f² ≥ d·e > 0 whenever
/// radii are positive, which the Born finalization guarantees.
template <int N>
double epol_sum_mixed_w(double vx, double vy, double vz, double qv, double rv,
                        const core::AtomBatchF& atoms) {
  using vd = typename lanes_of<N>::vd;
  using vf = typename lanes_of<N>::vf;
  using vfh = typename lanes_of<N>::vfh;
  constexpr int NF = lanes_of<N>::nf;
  const std::size_t n = atoms.size();
  const float* __restrict ux = atoms.x.data();
  const float* __restrict uy = atoms.y.data();
  const float* __restrict uz = atoms.z.data();
  const float* __restrict qu = atoms.charge.data();
  const double* __restrict ru = atoms.born.data();
  const float vxf = static_cast<float>(vx);
  const float vyf = static_cast<float>(vy);
  const float vzf = static_cast<float>(vz);
  const float rvf = static_cast<float>(rv);
  const vf vvx = bc<vf>(vxf), vvy = bc<vf>(vyf), vvz = bc<vf>(vzf);
  const vf vrv = bc<vf>(rvf), fourf = bc<vf>(4.0f), zerof = bc<vf>(0.0f);
  const vd zerod = bc<vd>(0.0);
  vd acc_lo = zerod, acc_hi = zerod;
  std::size_t k = 0;
  for (; k + NF <= n; k += NF) {
    const vf dx = loadu<vf>(ux + k) - vvx;
    const vf dy = loadu<vf>(uy + k) - vvy;
    const vf dz = loadu<vf>(uz + k) - vvz;
    const vf r2 = dx * dx + dy * dy + dz * dz;
    const vd b_lo = loadu<vd>(ru + k);
    const vd b_hi = loadu<vd>(ru + k + N);
    const vf ruf = join_f<N>(narrow_d<N>(b_lo), narrow_d<N>(b_hi));
    const vf d = ruf * vrv;
    const vf e = exp_ps<N>((zerof - r2) / (fourf * d));
    const vf f2 = r2 + d * e;
    const vf term = loadu<vf>(qu + k) / vsqrt_ps(f2);
    vfh lo, hi;
    split_f<N>(term, lo, hi);
    acc_lo += widen_f<N>(lo);
    acc_hi += widen_f<N>(hi);
  }
  double sum = hsum(acc_lo + acc_hi);
  for (; k < n; ++k) {
    const float dx = ux[k] - vxf;
    const float dy = uy[k] - vyf;
    const float dz = uz[k] - vzf;
    const float r2 = dx * dx + dy * dy + dz * dz;
    const float d = static_cast<float>(ru[k]) * rvf;
    const float e = exp_ps_scalar(-r2 / (4.0f * d));
    const float f2 = r2 + d * e;
    const float term = qu[k] / __builtin_sqrtf(f2);
    sum += static_cast<double>(term);
  }
  return qv * sum;
}

/// Bin-pair far field over one (u-node, v-node) charge-by-bin table pair:
/// for every nonzero u-bin, a vector sweep over the v-bin range. Zero
/// v-bins contribute exactly 0 (rep[] > 0 ⇒ f_GB finite ⇒ 0·finite), so
/// no masking is needed for the sum; the pair counter is reconstructed as
/// nnz_u·nnz_v, exactly what the scalar skip-loop reports.
template <int N, bool Fast>
double epol_far_bins_w(const double* ub, int ulo, int uhi,
                       const double* rep_u, const double* vb, int vlo,
                       int vhi, const double* rep_v, double d2,
                       std::uint64_t& binpairs) {
  using vd = typename lanes_of<N>::vd;
  if (ulo > uhi || vlo > vhi) return 0.0;
  std::uint64_t nnz_v = 0;
  for (int j = vlo; j <= vhi; ++j) nnz_v += vb[j] != 0.0 ? 1u : 0u;
  const vd vdd2 = bc<vd>(d2), four = bc<vd>(4.0), zero = bc<vd>(0.0);
  double total = 0.0;
  std::uint64_t nnz_u = 0;
  for (int i = ulo; i <= uhi; ++i) {
    if (ub[i] == 0.0) continue;
    ++nnz_u;
    const double r = rep_u[i];
    const vd vr = bc<vd>(r);
    vd acc = zero;
    int j = vlo;
    for (; j + N <= vhi + 1; j += N) {
      const vd w = loadu<vd>(vb + j);
      const vd rr = vr * loadu<vd>(rep_v + j);
      const vd arg = (zero - vdd2) / (four * rr);
      if constexpr (Fast) {
        const vd f2 = vdd2 + rr * fast_exp_pd<N>(arg);
        acc += w * fast_rsqrt_pd<N>(f2);
      } else {
        const vd f2 = vdd2 + rr * exp_pd<N>(arg);
        acc += w / vsqrt_pd(f2);
      }
    }
    double row = hsum(acc);
    for (; j <= vhi; ++j) {
      const double rr = r * rep_v[j];
      if constexpr (Fast) {
        const double f2 = d2 + rr * core::fast_exp(-d2 / (4.0 * rr));
        row += vb[j] * core::fast_rsqrt(f2);
      } else {
        const double f2 = d2 + rr * std::exp(-d2 / (4.0 * rr));
        row += vb[j] / std::sqrt(f2);
      }
    }
    total += ub[i] * row;
  }
  binpairs += nnz_u * nnz_v;
  return total;
}

/// Assemble the width's dispatch table (simd/dispatch.hpp KernelSet).
/// The function pointers target this TU's internal-linkage
/// instantiations, compiled with this TU's ISA flags and nobody else's.
template <int N>
KernelSet make_kernel_set(const char* name) {
  KernelSet ks;
  ks.born_integral = &born_integral_w<N, false>;
  ks.born_integral_fast = &born_integral_w<N, true>;
  ks.born_integral_mixed = &born_integral_mixed_w<N>;
  ks.epol_sum = &epol_sum_w<N, false>;
  ks.epol_sum_fast = &epol_sum_w<N, true>;
  ks.epol_sum_mixed = &epol_sum_mixed_w<N>;
  ks.epol_far_bins = &epol_far_bins_w<N, false>;
  ks.epol_far_bins_fast = &epol_far_bins_w<N, true>;
  ks.lanes = N;
  ks.float_lanes = 2 * N;
  ks.name = name;
  return ks;
}

#endif  // OCTGB_SIMD_KERNELS_IMPL_INCLUDED
