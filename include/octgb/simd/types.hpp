#pragma once
/// \file types.hpp
/// Configuration types of the explicit vector layer (DESIGN.md §2.7).
///
/// These live apart from the kernel machinery so that core/gb_params.hpp
/// can embed a VectorParams in ApproxParams without pulling in the batch
/// types or the dispatch table. Everything here is plain data; the
/// behavior sits behind simd/dispatch.hpp.

#include <cstdint>

namespace octgb::simd {

/// Requested vector instruction set for the explicit-SIMD kernels.
///
/// `Auto` resolves to the widest ISA this binary was built with *and* the
/// running CPU supports (see simd::resolve); an explicit width that is not
/// available clamps down to the widest one that is, so a config recorded
/// on an AVX-512 host still runs — narrower — everywhere else. `Scalar`
/// turns the explicit vector layer off entirely and keeps the pre-existing
/// autovectorized SoA loops (the PR 5 behavior, and the reference the
/// differential tests compare against).
enum class VectorIsa : std::uint8_t {
  Auto,    ///< widest built + supported width (the default)
  Scalar,  ///< no explicit SIMD: legacy batched/scalar kernels
  V128,    ///< 2 double lanes — portable GCC vector code (SSE2 / NEON)
  V256,    ///< 4 double lanes — AVX2+FMA translation unit
  V512,    ///< 8 double lanes — AVX-512F translation unit
};

/// Arithmetic precision of the streamed operands.
///
/// `Double` is the default and keeps every kernel bit-compatible with the
/// repository's determinism contracts (same width → same bits, run to
/// run). `Mixed` streams coordinates, charges and weighted normals as
/// `float` at twice the lane count while all accumulation stays `double`;
/// admissibility classification (near/far criteria, plan capture and
/// validation) is *never* done in float, so the interaction structure
/// cannot flip — only the per-term arithmetic carries float rounding
/// (paper_claims_test pins the energy envelope).
enum class Precision : std::uint8_t {
  Double,  ///< double streams, double accumulation (bit-stable default)
  Mixed,   ///< float streams at 2× lanes, double accumulation
};

/// The `EngineConfig::approx.vector` knob: which explicit-SIMD kernels the
/// batched near-field and far-field paths dispatch to. Numerically this
/// changes results only within the documented ε envelopes (reassociation
/// for Double, float rounding for Mixed); it never changes operation
/// counts or the captured interaction-plan structure, which is why it is
/// part of the Born-cache stamp but *not* of the PlanKey (plan.hpp).
struct VectorParams {
  VectorIsa isa = VectorIsa::Auto;
  Precision precision = Precision::Double;

  friend bool operator==(const VectorParams&, const VectorParams&) = default;
};

}  // namespace octgb::simd
