// \file pack.hpp
// Vector primitives of the explicit SIMD layer (DESIGN.md §2.7).
//
// DELIBERATELY NOT a normal header: this file is textually #included
// INSIDE an anonymous namespace by kernels_impl.hpp, which is itself
// included inside each per-ISA translation unit (src/simd/kernels_v*.cpp).
// Every type and function here therefore gets internal linkage, one
// private copy per TU — the only safe arrangement when the same
// templates are compiled under different -m ISA flags (a vague-linkage
// instantiation shared across TUs could bind every TU to, say, the
// AVX-512 copy and SIGILL on narrower CPUs).
//
// Consequently this file must not include anything itself; the enclosing
// TU provides <cmath>, <cstdint>, <cstddef> and the octgb headers at
// global scope before entering the namespace.
//
// The lane model: GCC/Clang generic vector extensions with fixed widths —
// N ∈ {2, 4, 8} double lanes per vector, 2N float lanes in mixed mode.
// The compiler maps them onto whatever the TU's ISA flags allow (SSE2 or
// NEON for N=2, AVX2 for N=4, AVX-512F for N=8). All TUs are compiled
// with -ffp-contract=off so every multiply/add rounds individually; this
// makes each vector lane bit-identical to the corresponding scalar
// expression, which the remainder-tail and splice properties in
// simd_diff_test rely on.

#ifndef OCTGB_SIMD_PACK_INCLUDED
#define OCTGB_SIMD_PACK_INCLUDED

typedef double vd2 __attribute__((vector_size(16)));
typedef double vd4 __attribute__((vector_size(32)));
typedef double vd8 __attribute__((vector_size(64)));
typedef std::uint64_t vu2 __attribute__((vector_size(16)));
typedef std::uint64_t vu4 __attribute__((vector_size(32)));
typedef std::uint64_t vu8 __attribute__((vector_size(64)));
typedef std::int64_t vq2 __attribute__((vector_size(16)));
typedef std::int64_t vq4 __attribute__((vector_size(32)));
typedef std::int64_t vq8 __attribute__((vector_size(64)));
typedef float vf2 __attribute__((vector_size(8)));
typedef float vf4 __attribute__((vector_size(16)));
typedef float vf8 __attribute__((vector_size(32)));
typedef float vf16 __attribute__((vector_size(64)));
typedef std::int32_t vi4 __attribute__((vector_size(16)));
typedef std::int32_t vi8 __attribute__((vector_size(32)));
typedef std::int32_t vi16 __attribute__((vector_size(64)));

/// Lane-type bundle for a width of N double lanes. `vf` carries the mixed
/// mode's 2N float lanes; `vfh` is the N-lane half used when converting
/// float streams to/from the N-lane double accumulators.
template <int N>
struct lanes_of;
template <>
struct lanes_of<2> {
  using vd = vd2;
  using vu = vu2;
  using vq = vq2;
  using vf = vf4;
  using vfh = vf2;
  using vi = vi4;
  static constexpr int nf = 4;
};
template <>
struct lanes_of<4> {
  using vd = vd4;
  using vu = vu4;
  using vq = vq4;
  using vf = vf8;
  using vfh = vf4;
  using vi = vi8;
  static constexpr int nf = 8;
};
template <>
struct lanes_of<8> {
  using vd = vd8;
  using vu = vu8;
  using vq = vq8;
  using vf = vf16;
  using vfh = vf8;
  using vi = vi16;
  static constexpr int nf = 16;
};

/// Broadcast a scalar into every lane.
template <class V, class T>
inline V bc(T x) {
  V r = {};
  constexpr int n = static_cast<int>(sizeof(V) / sizeof(T));
  for (int i = 0; i < n; ++i) r[i] = x;
  return r;
}

/// Unaligned load of one vector's worth of elements.
template <class V, class T>
inline V loadu(const T* p) {
  V r;
  __builtin_memcpy(&r, p, sizeof(V));
  return r;
}

/// Deterministic pairwise horizontal sum: halves are added as vectors,
/// then the final two lanes as scalars. Same tree shape every call, so
/// results are bitwise stable run to run (and across call sites).
inline double hsum(vd2 v) { return v[0] + v[1]; }
inline double hsum(vd4 v) {
  const vd2 lo = __builtin_shufflevector(v, v, 0, 1);
  const vd2 hi = __builtin_shufflevector(v, v, 2, 3);
  return hsum(lo + hi);
}
inline double hsum(vd8 v) {
  const vd4 lo = __builtin_shufflevector(v, v, 0, 1, 2, 3);
  const vd4 hi = __builtin_shufflevector(v, v, 4, 5, 6, 7);
  return hsum(lo + hi);
}

/// Lane-wise IEEE sqrt. The per-element __builtin_sqrt collapses to the
/// vector sqrt instruction under -fno-math-errno; each lane is correctly
/// rounded, matching the scalar std::sqrt bit for bit.
template <class V>
inline V vsqrt_pd(V x) {
  V r = x;
  constexpr int n = static_cast<int>(sizeof(V) / sizeof(double));
  for (int i = 0; i < n; ++i) r[i] = __builtin_sqrt(x[i]);
  return r;
}
template <class V>
inline V vsqrt_ps(V x) {
  V r = x;
  constexpr int n = static_cast<int>(sizeof(V) / sizeof(float));
  for (int i = 0; i < n; ++i) r[i] = __builtin_sqrtf(x[i]);
  return r;
}

/// Split a 2N-lane float vector into its N-lane halves and back.
template <int N>
inline void split_f(typename lanes_of<N>::vf v, typename lanes_of<N>::vfh& lo,
                    typename lanes_of<N>::vfh& hi) {
  if constexpr (N == 2) {
    lo = __builtin_shufflevector(v, v, 0, 1);
    hi = __builtin_shufflevector(v, v, 2, 3);
  } else if constexpr (N == 4) {
    lo = __builtin_shufflevector(v, v, 0, 1, 2, 3);
    hi = __builtin_shufflevector(v, v, 4, 5, 6, 7);
  } else {
    lo = __builtin_shufflevector(v, v, 0, 1, 2, 3, 4, 5, 6, 7);
    hi = __builtin_shufflevector(v, v, 8, 9, 10, 11, 12, 13, 14, 15);
  }
}
template <int N>
inline typename lanes_of<N>::vf join_f(typename lanes_of<N>::vfh lo,
                                       typename lanes_of<N>::vfh hi) {
  if constexpr (N == 2) {
    return __builtin_shufflevector(lo, hi, 0, 1, 2, 3);
  } else if constexpr (N == 4) {
    return __builtin_shufflevector(lo, hi, 0, 1, 2, 3, 4, 5, 6, 7);
  } else {
    return __builtin_shufflevector(lo, hi, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                   11, 12, 13, 14, 15);
  }
}

/// float half → double vector, and double vector → float half. The
/// conversions are exact (widening) and correctly rounded (narrowing),
/// identical per lane to the scalar static_casts in the remainder tails.
template <int N>
inline typename lanes_of<N>::vd widen_f(typename lanes_of<N>::vfh h) {
  return __builtin_convertvector(h, typename lanes_of<N>::vd);
}
template <int N>
inline typename lanes_of<N>::vfh narrow_d(typename lanes_of<N>::vd d) {
  return __builtin_convertvector(d, typename lanes_of<N>::vfh);
}

/// Vector replica of core::fast_rsqrt, op for op: same bit-level seed,
/// same two Newton steps. With -ffp-contract=off every lane is bitwise
/// identical to the scalar function (which the baseline build cannot
/// contract either — x86-64 SSE2 has no FMA).
template <int N>
inline typename lanes_of<N>::vd fast_rsqrt_pd(typename lanes_of<N>::vd x) {
  using vd = typename lanes_of<N>::vd;
  using vu = typename lanes_of<N>::vu;
  const vu i = bc<vu>(0x5fe6eb50c7b537a9ULL) - (((vu)x) >> 1);
  vd y = (vd)i;
  y = y * (bc<vd>(1.5) - bc<vd>(0.5) * x * y * y);
  y = y * (bc<vd>(1.5) - bc<vd>(0.5) * x * y * y);
  return y;
}

/// Vector replica of core::fast_exp (Schraudolph), with the same range
/// hardening: non-positive accumulator → 0, ≥ +inf bit pattern → +inf,
/// NaN → 0 (matching !(t > 0)). In-range lanes are bitwise identical to
/// the scalar function.
template <int N>
inline typename lanes_of<N>::vd fast_exp_pd(typename lanes_of<N>::vd x) {
  using vd = typename lanes_of<N>::vd;
  using vu = typename lanes_of<N>::vu;
  constexpr double a = 4503599627370496.0 / 0.6931471805599453;  // 2^52/ln2
  constexpr double b = 4503599627370496.0 * 1023.0;              // bias
  constexpr double c = 60801.0 * 4294967296.0;  // mean-error correction
  constexpr double kInfBits = 9218868437227405312.0;  // bits of +inf
  const vd t = bc<vd>(a) * x + bc<vd>(b - c);
  const auto pos = t > bc<vd>(0.0);
  const auto ovf = t >= bc<vd>(kInfBits);
  vd tsafe = pos ? t : bc<vd>(1.0);
  tsafe = ovf ? bc<vd>(1.0) : tsafe;  // keep the convert in-range
  const vu u = __builtin_convertvector(tsafe, vu);
  vd r = (vd)u;
  r = pos ? r : bc<vd>(0.0);
  r = ovf ? bc<vd>(__builtin_inf()) : r;
  return r;
}

/// Vector exp(x) for the exact kernels: Cephes-style range reduction
/// (round-to-nearest via the 1.5·2^52 magic constant) plus the standard
/// degree-2/3 Padé approximant, ~1 ulp over the kernels' domain (x ≤ 0).
/// Differs from libm's exp by ≤ ~2e-16 relative — covered by the ε
/// bounds in simd_diff_test, not by bitwise contracts. Non-finite and
/// out-of-range inputs are clamped before the float→int conversion so no
/// lane ever hits undefined behavior.
template <int N>
inline typename lanes_of<N>::vd exp_pd(typename lanes_of<N>::vd x) {
  using vd = typename lanes_of<N>::vd;
  using vq = typename lanes_of<N>::vq;
  const auto is_nan = x != x;
  vd xc = is_nan ? bc<vd>(0.0) : x;
  xc = xc > bc<vd>(709.0) ? bc<vd>(709.0) : xc;
  xc = xc < bc<vd>(-709.0) ? bc<vd>(-709.0) : xc;
  const vd magic = bc<vd>(6755399441055744.0);  // 1.5 * 2^52
  const vd t = xc * bc<vd>(1.4426950408889634074);
  const vd n = (t + magic) - magic;  // round-to-nearest-even(t)
  vd px = xc - n * bc<vd>(6.93145751953125e-1);
  px -= n * bc<vd>(1.42860682030941723212e-6);
  const vd xx = px * px;
  vd p = bc<vd>(1.26177193074810590878e-4);
  p = p * xx + bc<vd>(3.02994407707441961300e-2);
  p = p * xx + bc<vd>(9.99999999999999999910e-1);
  p = p * px;
  vd q = bc<vd>(3.00198505138664455042e-6);
  q = q * xx + bc<vd>(2.52448340349684104192e-3);
  q = q * xx + bc<vd>(2.27265548208155028766e-1);
  q = q * xx + bc<vd>(2.0);
  const vd e = bc<vd>(1.0) + bc<vd>(2.0) * p / (q - p);
  const vq ni = __builtin_convertvector(n, vq);
  const vq bits = (ni + 1023) << 52;
  vd r = e * (vd)bits;
  r = x < bc<vd>(-708.0) ? bc<vd>(0.0) : r;
  r = x > bc<vd>(708.0) ? bc<vd>(__builtin_inf()) : r;
  r = is_nan ? x : r;
  return r;
}

/// Single-precision exp for the mixed-precision f_GB kernel (Cephes expf
/// reduction + degree-5 polynomial, ~1 ulp in float). Inputs below −87
/// flush to 0 — in f² = r² + d·e the lost denormal tail is ≤ 1e-38·d,
/// invisible next to r² ≥ 87·4d. The scalar remainder tail uses
/// exp_ps_scalar (kernels_impl.hpp), which replicates these exact ops.
template <int N>
inline typename lanes_of<N>::vf exp_ps(typename lanes_of<N>::vf x) {
  using vf = typename lanes_of<N>::vf;
  using vi = typename lanes_of<N>::vi;
  const auto is_nan = x != x;
  vf xc = is_nan ? bc<vf>(0.0f) : x;
  xc = xc > bc<vf>(88.3762626647949f) ? bc<vf>(88.3762626647949f) : xc;
  xc = xc < bc<vf>(-88.3762626647949f) ? bc<vf>(-88.3762626647949f) : xc;
  const vf magic = bc<vf>(12582912.0f);  // 1.5 * 2^23
  const vf t = xc * bc<vf>(1.44269504088896341f);
  const vf n = (t + magic) - magic;
  vf px = xc - n * bc<vf>(0.693359375f);
  px -= n * bc<vf>(-2.12194440e-4f);
  vf y = bc<vf>(1.9875691500e-4f);
  y = y * px + bc<vf>(1.3981999507e-3f);
  y = y * px + bc<vf>(8.3334519073e-3f);
  y = y * px + bc<vf>(4.1665795894e-2f);
  y = y * px + bc<vf>(1.6666665459e-1f);
  y = y * px + bc<vf>(5.0000001201e-1f);
  y = y * (px * px) + px + bc<vf>(1.0f);
  const vi ni = __builtin_convertvector(n, vi);
  const vi bits = (ni + 127) << 23;
  vf r = y * (vf)bits;
  r = x < bc<vf>(-87.0f) ? bc<vf>(0.0f) : r;
  r = is_nan ? x : r;
  return r;
}

#endif  // OCTGB_SIMD_PACK_INCLUDED
