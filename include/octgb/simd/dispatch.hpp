#pragma once
/// \file dispatch.hpp
/// Runtime dispatch table of the explicit vector layer (DESIGN.md §2.7).
///
/// Each supported width is compiled in its own translation unit with the
/// matching ISA flags (src/simd/kernels_v128.cpp / _v256.cpp / _v512.cpp)
/// and exposes exactly one symbol: a factory returning a KernelSet of
/// plain function pointers. The kernel templates themselves live in an
/// anonymous namespace inside each TU, so no vague-linkage instantiation
/// compiled with, say, AVX-512 flags can leak into a binary path that runs
/// on a narrower CPU (the classic multi-ISA ODR trap).
///
/// Callers never branch on width: they resolve an EngineConfig's
/// VectorParams once per evaluation (simd::resolve), fetch the KernelSet
/// for the resolved ISA, and stream the existing SoA leaf planes through
/// it. `kernels(VectorIsa::Scalar)` is nullptr by design — the legacy
/// autovectorized batch kernels remain the reference implementation.

#include <cstdint>

#include "octgb/core/batch_kernels.hpp"
#include "octgb/simd/types.hpp"

namespace octgb::simd {

/// Function-pointer table of one compiled width. All kernels compute the
/// same mathematical sums as their scalar references in core/batch_kernels
/// and core/epol; `Double` entries differ only by reassociation (vector
/// body + pairwise lane reduction + scalar remainder tail), `Mixed`
/// entries additionally carry float rounding on the streamed operands.
/// Every entry is deterministic: same inputs → same bits, run to run.
struct KernelSet {
  using BornFn = double (*)(double ax, double ay, double az,
                            const core::QPointBatch& q);
  using BornMixedFn = double (*)(double ax, double ay, double az,
                                 const core::QPointBatchF& q);
  using EpolFn = double (*)(double vx, double vy, double vz, double qv,
                            double rv, const core::AtomBatch& atoms);
  using EpolMixedFn = double (*)(double vx, double vy, double vz, double qv,
                                 double rv, const core::AtomBatchF& atoms);
  /// Bin-pair far field over one (u-node, v-node) charge-by-bin table
  /// pair: Σ ub[i]·vb[j] / f_GB(d², rep_u[i]·rep_v[j]) over the nonzero
  /// inclusive bin ranges, replicating EpolPass::far_field's node path.
  /// `binpairs` is incremented by exactly the count the scalar loop would
  /// report (pairs of nonzero bins), keeping epol.bins width-invariant.
  using FarBinsFn = double (*)(const double* ub, int ulo, int uhi,
                               const double* rep_u, const double* vb, int vlo,
                               int vhi, const double* rep_v, double d2,
                               std::uint64_t& binpairs);

  BornFn born_integral = nullptr;        ///< exact r⁻⁶ surface integral
  BornFn born_integral_fast = nullptr;   ///< approx_math variant
  BornMixedFn born_integral_mixed = nullptr;  ///< float streams, exact math
  EpolFn epol_sum = nullptr;             ///< exact f_GB pair sum
  EpolFn epol_sum_fast = nullptr;        ///< approx_math variant
  EpolMixedFn epol_sum_mixed = nullptr;  ///< float streams, exact math
  FarBinsFn epol_far_bins = nullptr;      ///< exact bin-pair far field
  FarBinsFn epol_far_bins_fast = nullptr;  ///< approx_math variant

  int lanes = 0;        ///< double lanes per vector iteration
  int float_lanes = 0;  ///< mixed-mode float lanes (2 × lanes)
  const char* name = "scalar";  ///< "v128" / "v256" / "v512"
};

/// Widest ISA whose translation unit was compiled into this binary
/// (OCTGB_SIMD_MAX_ISA CMake option; V512 in the default build).
VectorIsa max_built_isa();

/// True when `isa`'s kernels are both compiled in and runnable on this
/// CPU. VectorIsa::Scalar is always available; Auto is not a concrete
/// width and returns false.
bool isa_available(VectorIsa isa);

/// Resolve a requested ISA to a concrete one: Auto → the widest available
/// width up to 256 bits (512-bit execution downclocks or is emulated on
/// many parts, so AVX-512 is explicit opt-in — see dispatch.cpp); an
/// explicit width that is not available clamps down to the widest
/// available one (ultimately Scalar). Deterministic per process — CPU
/// detection is cached, so every call site resolving the same request
/// during one evaluation agrees.
VectorIsa resolve_isa(VectorIsa requested);

/// Resolve a full VectorParams (isa as above; precision passes through).
/// Engine paths resolve once per evaluation and stamp the *resolved*
/// params into the Born cache, so cache-validity comparisons never depend
/// on how the request was spelled.
VectorParams resolve(VectorParams requested);

/// Kernel table for a *concrete* resolved ISA; nullptr for Scalar (use
/// the legacy batch kernels). Auto or an unavailable width is resolved
/// first, so this never returns a table the CPU cannot execute.
const KernelSet* kernels(VectorIsa isa);

/// Human-readable name ("auto", "scalar", "v128", ...), for labels,
/// metrics and test output.
const char* isa_name(VectorIsa isa);

/// Double lanes of a resolved ISA (0 for Scalar — no explicit vector
/// body). Convenience over kernels(isa)->lanes for metrics code.
int lanes(VectorIsa isa);

namespace detail {
/// Per-TU factories. Defined in kernels_v*.cpp; only the ones selected by
/// OCTGB_SIMD_MAX_ISA exist. Do not call directly — dispatch.cpp owns the
/// availability logic.
const KernelSet* make_kernels_v128();
const KernelSet* make_kernels_v256();
const KernelSet* make_kernels_v512();
}  // namespace detail

}  // namespace octgb::simd
