#pragma once
/// \file octgb.hpp
/// Umbrella header for the octgb library — octree-based hybrid
/// distributed/shared-memory GB polarization energy (Tithi & Chowdhury,
/// IPDPSW 2013) and all of its substrates.
///
/// Quick start:
///   auto mol  = octgb::mol::make_benchmark_molecule("1PPE_l_b");
///   auto surf = octgb::surface::build_surface(mol);
///   octgb::core::GBEngine engine(mol, surf);
///   auto result = engine.compute();           // serial octree algorithm
///   // result.epol (kcal/mol), result.born (per-atom Born radii)

#include "octgb/baselines/descreening.hpp"
#include "octgb/baselines/gbr6.hpp"
#include "octgb/baselines/packages.hpp"
#include "octgb/baselines/pb.hpp"
#include "octgb/core/batch_kernels.hpp"
#include "octgb/core/born.hpp"
#include "octgb/core/data_distributed.hpp"
#include "octgb/core/dual_traversal.hpp"
#include "octgb/core/engine.hpp"
#include "octgb/core/epol.hpp"
#include "octgb/core/fastmath.hpp"
#include "octgb/core/forces.hpp"
#include "octgb/core/gb_params.hpp"
#include "octgb/core/hybrid.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/core/persist.hpp"
#include "octgb/core/session.hpp"
#include "octgb/core/trees.hpp"
#include "octgb/core/workdiv.hpp"
#include "octgb/geom/aabb.hpp"
#include "octgb/geom/mesh.hpp"
#include "octgb/geom/quadrature.hpp"
#include "octgb/geom/transform.hpp"
#include "octgb/geom/vec3.hpp"
#include "octgb/mol/elements.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/mol/molecule.hpp"
#include "octgb/mol/pdb.hpp"
#include "octgb/mol/zdock.hpp"
#include "octgb/mpp/mpp.hpp"
#include "octgb/octree/dynamic.hpp"
#include "octgb/octree/nblist.hpp"
#include "octgb/octree/octree.hpp"
#include "octgb/octree/serialize.hpp"
#include "octgb/perf/counters.hpp"
#include "octgb/perf/machine_model.hpp"
#include "octgb/perf/stats.hpp"
#include "octgb/sim/cluster.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/svc/admission.hpp"
#include "octgb/svc/cache.hpp"
#include "octgb/svc/digest.hpp"
#include "octgb/svc/placement.hpp"
#include "octgb/svc/service.hpp"
#include "octgb/trace/metrics.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/args.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/log.hpp"
#include "octgb/util/rng.hpp"
#include "octgb/util/strings.hpp"
#include "octgb/util/table.hpp"
#include "octgb/ws/deque.hpp"
#include "octgb/ws/scheduler.hpp"
