#pragma once
/// \file persist.hpp
/// Binary round-trips for the stage-1 (Preprocessed) artifacts. Layered on
/// octree/serialize.hpp: each tree is the generic octree stream followed
/// by tagged payload sections (octree::write_f64_section and friends), so
/// the octree layer stays ignorant of core's payload types while core gets
/// self-describing, size-checked payload framing.
///
/// The derived SoA planes and per-node aggregates are *not* serialized —
/// they are recomputed via rebuild_derived() on load, which keeps the
/// format minimal and guarantees the planes can never go stale relative to
/// the authoritative payloads.
///
/// Intended use: preprocess once (surface sampling + tree builds), persist,
/// then stream poses/parameters against the reloaded artifact in later
/// processes — the "once an octree is built, it can be used for any
/// approximation parameter" property made durable.

#include <iosfwd>
#include <string>

#include "octgb/core/trees.hpp"

namespace octgb::core {

void write_atoms_tree(const AtomsTree& t, std::ostream& out);
AtomsTree read_atoms_tree(std::istream& in);

void write_qpoints_tree(const QPointsTree& t, std::ostream& out);
QPointsTree read_qpoints_tree(std::istream& in);

void write_preprocessed(const Preprocessed& pre, std::ostream& out);
Preprocessed read_preprocessed(std::istream& in);

void write_preprocessed_file(const Preprocessed& pre, const std::string& path);
Preprocessed read_preprocessed_file(const std::string& path);

}  // namespace octgb::core
