#pragma once
/// \file hybrid.hpp
/// The paper's Fig. 4 driver: distributed / distributed-shared-memory
/// octree GB computation over the mpp runtime.
///
/// P ranks (threads under mpp), each optionally running a p-worker
/// work-stealing scheduler — p = 1 is OCT_MPI, p > 1 is OCT_MPI+CILK,
/// P = 1 with p > 1 degenerates to OCT_CILK. Steps:
///   1. octrees are built once (see note below);
///   2. rank i: APPROX-INTEGRALS for the i-th segment of T_Q leaves;
///   3. Allreduce of node/atom partial integrals;
///   4. rank i: PUSH-INTEGRALS-TO-ATOMS for the i-th atom segment;
///   5. Allgatherv of Born radii;
///   6. rank i: partial Epol for the i-th segment of T_A leaves;
///   7. Allreduce of the partial energies.
///
/// Note on step 1: the paper has every process build identical octrees
/// from replicated data. Ranks here share one address space, so the
/// harness builds the (deterministic) trees once and hands every rank a
/// read-only view; the *replicated* footprint each real process would hold
/// is still accounted in HybridResult::bytes_per_rank, which is what the
/// §V-B memory comparison uses.

#include <vector>

#include "octgb/core/engine.hpp"
#include "octgb/mpp/mpp.hpp"

namespace octgb::core {

class CheckpointStore;  // core/checkpoint.hpp

/// Hybrid run configuration.
struct HybridConfig {
  int ranks = 2;             ///< P
  int threads_per_rank = 1;  ///< p
  mpp::Topology topology;    ///< rank → node placement
  /// Use point-count-weighted leaf segmentation instead of the paper's
  /// even-by-count split (load-balancing ablation).
  bool weighted_division = false;
  /// Atom-based (instead of node-based) division of the energy phase
  /// (work-division ablation, §IV).
  bool atom_based_epol = false;
};

/// Outcome of a hybrid run, with per-rank measurements for the
/// machine-model time reconstruction.
struct HybridResult {
  double epol = 0.0;
  std::vector<double> born;  ///< input order
  std::vector<perf::WorkCounters> work_per_rank;
  std::vector<perf::CommCounters> comm_per_rank;
  perf::WorkCounters work_total;
  /// Bytes a real (data-replicating) process would hold.
  std::size_t bytes_per_rank = 0;
  double wall_seconds = 0.0;
};

/// Run the Fig. 4 algorithm on a prebuilt engine.
HybridResult run_hybrid(const GBEngine& engine, const HybridConfig& config);

// --- per-rank entry points (transport-agnostic) ----------------------------
//
// The rank bodies of run_hybrid / run_hybrid_elastic, factored out so they
// run over *any* mpp transport: the in-thread Runtime (the wrappers below)
// or a real rank process under tools/octgb_launch, where each process
// calls one of these with its ProcessRuntime Comm. The static work
// division is recomputed inside from (engine, config) — deterministic, so
// every rank derives identical segments, exactly like the paper's
// replicated-data processes.

/// What one rank knows at the end of a run.
struct RankOutcome {
  double epol = 0.0;               ///< the globally reduced energy
  std::vector<double> born_tree;   ///< full Born array, tree order
  perf::WorkCounters work;
  // Elastic-only recovery accounting (zero for the plain hybrid body).
  std::uint64_t tasks_computed = 0;
  std::uint64_t tasks_recomputed = 0;
  std::uint64_t control_retries = 0;
};

/// One rank of the plain Fig. 4 pipeline. `comm.size()` must equal
/// `config.ranks`.
RankOutcome run_hybrid_rank(const GBEngine& engine,
                            const HybridConfig& config, mpp::Comm& comm);

// --- elastic (self-healing) driver ----------------------------------------
//
// run_hybrid_elastic executes the same three supersteps (integrals → Born
// radii → energy) but survives injected message faults and rank deaths
// (DESIGN.md §2.5). The key to *bit-identical* recovery is a fixed task
// grid: each phase is always divided into the original P segments no
// matter how many ranks remain. Tasks are deterministic functions of the
// phase inputs; every finished task is checkpointed into a CheckpointStore
// (simulated stable storage); and each rank combines the P task results
// locally in ascending task order — so the floating-point reduction order,
// and therefore every bit of Epol, is independent of which ranks computed
// which tasks or how often work was re-planned.
//
// Control flow per phase: survivors partition the *missing* tasks over the
// current alive set (re-running the work division over the reduced rank
// set), checkpoint results, then synchronize through opportunistic
// done/release messages to the coordinator (lowest alive rank) with
// deadlines and retry — a lost, corrupt, or dead-peer control message
// degrades to re-checking the store, never to a hang.

/// Configuration for the elastic driver.
struct ElasticConfig {
  /// Base parameters; `hybrid.ranks` is also the size of the fixed task
  /// grid every phase is divided into.
  HybridConfig hybrid;
  /// Seeded fault schedule (empty = run fault-free).
  mpp::faults::FaultPlan fault_plan;
  /// Attach per-message CRCs so injected corruption is detected.
  bool checksum = true;
  /// Deadline for one done/release control exchange; expiry falls back to
  /// polling the checkpoint store.
  double control_deadline_ms = 20.0;
  /// Re-plan attempts per phase before declaring the run wedged.
  int max_attempts = 10000;
  /// External stable storage. When set, run_hybrid_elastic checkpoints
  /// there (e.g. a file-backed store shared by real rank processes)
  /// instead of a run-local in-memory store. The store is NOT cleared:
  /// re-running over a partially full store resumes from it.
  CheckpointStore* store = nullptr;
};

/// Outcome of an elastic run, with recovery accounting.
struct ElasticResult {
  double epol = 0.0;
  std::vector<double> born;  ///< input order
  std::vector<perf::WorkCounters> work_per_rank;
  std::vector<perf::CommCounters> comm_per_rank;
  /// Ranks that finished all three phases (== ranks - dead_ranks.size()).
  int ranks_completed = 0;
  /// Ranks killed by the fault plan.
  std::vector<int> dead_ranks;
  /// Task executions across all phases/ranks; 3 * ranks when nothing had
  /// to be recomputed.
  std::uint64_t tasks_computed = 0;
  /// Task executions beyond the fault-free minimum (recovery work).
  std::uint64_t tasks_recomputed = 0;
  /// Checkpoint-store writes (the checkpoint cadence bench_faults sweeps).
  std::uint64_t checkpoint_puts = 0;
  /// Control receives that needed a retry/backoff round.
  std::uint64_t control_retries = 0;
  /// Injected-fault fire counts for the run.
  mpp::faults::FaultStats faults;
  double wall_seconds = 0.0;
};

/// Run the fault-tolerant Fig. 4 pipeline. With an empty fault plan this
/// computes the same Epol as any faulty run of the same configuration —
/// the bit-identical-recovery contract faults_test enforces.
ElasticResult run_hybrid_elastic(const GBEngine& engine,
                                 const ElasticConfig& config);

/// One rank of the elastic pipeline, checkpointing into `store` (which
/// every rank must share — the in-thread wrapper passes one object, real
/// rank processes pass file-backed stores over the same directory).
/// `comm.size()` must equal `config.hybrid.ranks`. Throws
/// mpp::RankKilledError (in-thread) when a fault-plan kill fires.
RankOutcome run_elastic_rank(const GBEngine& engine,
                             const ElasticConfig& config, mpp::Comm& comm,
                             CheckpointStore& store);

}  // namespace octgb::core
