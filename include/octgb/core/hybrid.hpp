#pragma once
/// \file hybrid.hpp
/// The paper's Fig. 4 driver: distributed / distributed-shared-memory
/// octree GB computation over the mpp runtime.
///
/// P ranks (threads under mpp), each optionally running a p-worker
/// work-stealing scheduler — p = 1 is OCT_MPI, p > 1 is OCT_MPI+CILK,
/// P = 1 with p > 1 degenerates to OCT_CILK. Steps:
///   1. octrees are built once (see note below);
///   2. rank i: APPROX-INTEGRALS for the i-th segment of T_Q leaves;
///   3. Allreduce of node/atom partial integrals;
///   4. rank i: PUSH-INTEGRALS-TO-ATOMS for the i-th atom segment;
///   5. Allgatherv of Born radii;
///   6. rank i: partial Epol for the i-th segment of T_A leaves;
///   7. Allreduce of the partial energies.
///
/// Note on step 1: the paper has every process build identical octrees
/// from replicated data. Ranks here share one address space, so the
/// harness builds the (deterministic) trees once and hands every rank a
/// read-only view; the *replicated* footprint each real process would hold
/// is still accounted in HybridResult::bytes_per_rank, which is what the
/// §V-B memory comparison uses.

#include <vector>

#include "octgb/core/engine.hpp"
#include "octgb/mpp/mpp.hpp"

namespace octgb::core {

/// Hybrid run configuration.
struct HybridConfig {
  int ranks = 2;             ///< P
  int threads_per_rank = 1;  ///< p
  mpp::Topology topology;    ///< rank → node placement
  /// Use point-count-weighted leaf segmentation instead of the paper's
  /// even-by-count split (load-balancing ablation).
  bool weighted_division = false;
  /// Atom-based (instead of node-based) division of the energy phase
  /// (work-division ablation, §IV).
  bool atom_based_epol = false;
};

/// Outcome of a hybrid run, with per-rank measurements for the
/// machine-model time reconstruction.
struct HybridResult {
  double epol = 0.0;
  std::vector<double> born;  ///< input order
  std::vector<perf::WorkCounters> work_per_rank;
  std::vector<perf::CommCounters> comm_per_rank;
  perf::WorkCounters work_total;
  /// Bytes a real (data-replicating) process would hold.
  std::size_t bytes_per_rank = 0;
  double wall_seconds = 0.0;
};

/// Run the Fig. 4 algorithm on a prebuilt engine.
HybridResult run_hybrid(const GBEngine& engine, const HybridConfig& config);

}  // namespace octgb::core
