#pragma once
/// \file born.hpp
/// The paper's Fig. 2 kernels: APPROX-INTEGRALS (near–far approximation of
/// the r⁶ Born surface integral, accumulating node partials s_A and leaf
/// exact sums s_a) and PUSH-INTEGRALS-TO-ATOMS (top-down prefix push and
/// Born-radius finalization).
///
/// Work division follows §IV: the caller hands each rank a *segment of T_Q
/// leaf ids* (node-based division); inside a rank, the leaf loop and the
/// T_A recursion run under the work-stealing scheduler when one is active.
/// Accumulation into the shared s-arrays uses std::atomic_ref, so
/// concurrent leaf tasks compose correctly.

#include <cstdint>
#include <span>

#include "octgb/core/gb_params.hpp"
#include "octgb/core/trees.hpp"
#include "octgb/perf/counters.hpp"
#include "octgb/simd/types.hpp"

namespace octgb::core {

class PlanRecorder;  // core/plan.hpp

/// Accumulate approximate integrals for the given T_Q leaves into
/// `node_s` (one slot per T_A node) and `atom_s` (one slot per atom, tree
/// order). Both spans must be pre-sized and are added to, not overwritten —
/// ranks each process disjoint leaf sets and then Allreduce the arrays.
/// Thread-safe. Counter updates are batched per leaf. `kernel` selects
/// the exact leaf×leaf implementation (SoA batch vs scalar AoS); both
/// compute the same sums up to floating-point reassociation.
/// `vector` selects the explicit-SIMD kernels for the Batched near field
/// (simd/dispatch.hpp); it is resolved internally, so callers may pass the
/// raw config value. A non-null `recorder` captures every near/far
/// decision into an InteractionPlan *and forces the traversal serial*
/// (even under an active scheduler), so the recorded order is the
/// deterministic serial traversal order plan replay reproduces.
void approx_integrals(const AtomsTree& ta, const QPointsTree& tq,
                      std::span<const std::uint32_t> q_leaf_ids,
                      double eps_born, bool approx_math,
                      std::span<double> node_s, std::span<double> atom_s,
                      perf::WorkCounters& counters,
                      bool strict_criterion = false,
                      KernelKind kernel = KernelKind::Batched,
                      const simd::VectorParams& vector = {},
                      PlanRecorder* recorder = nullptr);

/// Finalize Born radii for atoms whose *tree position* lies in
/// [atom_begin, atom_end): descend T_A accumulating the ancestor prefix
/// s = Σ s_A′ and write R = max(r_vdw, ((s + s_a)/4π)^(−1/3)) into
/// `born_tree` (tree order). Subtrees entirely outside the segment are
/// skipped, matching the paper's per-process traversal cost of
/// O((1/P)(M log M)/p).
void push_integrals_to_atoms(const AtomsTree& ta,
                             std::span<const double> node_s,
                             std::span<const double> atom_s,
                             std::uint32_t atom_begin, std::uint32_t atom_end,
                             bool approx_math, std::span<double> born_tree,
                             perf::WorkCounters& counters);

/// Reciprocal sixth power of the distance with optional approximate math:
/// 1/r⁶ from r² (shared by the Born kernels and the naive engine tests).
double inv_r6(double r2, bool approx_math);

/// One far-field pseudo-particle term: the contribution of a Q-aggregate
/// (weighted normal `wn` concentrated at centroid `qc`) to the T_A node
/// centered at `ac`. Coincident centroids (r² ≤ 1e-12, the same guard as
/// the near kernels) contribute 0 instead of a division-by-zero infinity —
/// unreachable through the admissibility criterion (far ⇒ d > 0) but
/// reachable through direct calls and degenerate geometry. Never inlined:
/// the recursive traversals and the plan replay executor (core/plan.hpp)
/// must evaluate the *same machine code*, or per-call-site FMA contraction
/// could make replay differ from the traversal in the last bit.
[[gnu::noinline]] double born_far_term(const geom::Vec3& ac,
                                       const geom::Vec3& qc,
                                       const geom::Vec3& wn, bool approx_math);

/// Exact scalar (AoS) Born integral of the atom at `pa` against the
/// q-points [q_begin, q_end) of `tq` — the KernelKind::Scalar near-field
/// body, shared between the traversals and plan replay for the same
/// bit-identity reason as born_far_term.
[[gnu::noinline]] double scalar_born_pair(const geom::Vec3& pa,
                                          const QPointsTree& tq,
                                          std::uint32_t q_begin,
                                          std::uint32_t q_end,
                                          bool approx_math);

}  // namespace octgb::core
