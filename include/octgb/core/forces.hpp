#pragma once
/// \file forces.hpp
/// Gradients of the GB polarization energy — what an MD integrator or a
/// minimizer consumes (the paper's motivation: "molecular dynamics
/// simulations for determining the molecular conformation with minimal
/// total free energy").
///
/// With the standard fixed-Born-radii approximation (radii treated as
/// constants during differentiation, as MD packages do between radius
/// updates), Eq. 2 differentiates in closed form:
///
///   ∇_i Epol = τ Σ_{j≠i} q_i q_j (1 − e^{−r²/4D}/4) (x_i − x_j) / f_GB³,
///   D = R_i R_j.
///
/// Two evaluators: the exact O(M²) sum and an octree-accelerated version
/// using the same leaf-versus-tree structure and Born-radius binning as
/// APPROX-EPOL.

#include <span>
#include <vector>

#include "octgb/core/engine.hpp"
#include "octgb/core/gb_params.hpp"

namespace octgb::core {

/// Exact pairwise forces F = −∇Epol (input order, kcal/mol/Å). `born` in
/// input order.
std::vector<geom::Vec3> naive_epol_forces(const mol::Molecule& mol,
                                          std::span<const double> born,
                                          const GBParams& gb = {},
                                          perf::WorkCounters* counters =
                                              nullptr);

/// Octree-accelerated forces over a prebuilt engine. `born_input_order`
/// must match the engine's molecule. Returns forces in input order.
std::vector<geom::Vec3> approx_epol_forces(
    const GBEngine& engine, std::span<const double> born_input_order,
    perf::WorkCounters& counters);

/// The scalar pair kernel g(r², D) with ∇_i E = τ q_i q_j g · (x_i − x_j):
/// g = (1 − e^{−r²/4D}/4) / f_GB³. Exposed for tests.
double epol_force_kernel(double r2, double ri_rj);

}  // namespace octgb::core
