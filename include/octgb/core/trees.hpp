#pragma once
/// \file trees.hpp
/// The two octrees of the algorithm (Fig. 1): T_A over atom centers with
/// per-atom charge/radius payloads, and T_Q over surface quadrature points
/// with per-point and per-leaf aggregated weighted normals.
///
/// All payloads are stored in *tree order* (the octree's permuted point
/// order) so every node's data is contiguous — the cache-friendliness the
/// paper leans on. point_index() maps back to input order.

#include <vector>

#include "octgb/mol/molecule.hpp"
#include "octgb/octree/octree.hpp"
#include "octgb/surface/surface.hpp"

namespace octgb::core {

/// Atoms octree T_A with payloads in tree order.
struct AtomsTree {
  octree::Octree tree;
  std::vector<double> charge;     ///< tree order
  std::vector<double> vdw_radius; ///< intrinsic radius, tree order

  static AtomsTree build(const mol::Molecule& mol,
                         const octree::BuildParams& params = {});

  std::size_t num_atoms() const { return charge.size(); }
  std::size_t footprint_bytes() const;
};

/// Quadrature-points octree T_Q with payloads in tree order.
struct QPointsTree {
  octree::Octree tree;
  std::vector<geom::Vec3> wnormal;  ///< w_q · n_q per point, tree order
  std::vector<double> weight;       ///< w_q per point, tree order
  /// Σ (w·n) over the points of each *node* (indexed by node id). Only
  /// leaf entries are read by APPROX-INTEGRALS, but internal aggregates
  /// are cheap and used by tests.
  std::vector<geom::Vec3> node_wnormal;

  static QPointsTree build(const surface::Surface& surf,
                           const octree::BuildParams& params = {});

  std::size_t num_points() const { return weight.size(); }
  std::size_t footprint_bytes() const;
};

}  // namespace octgb::core
