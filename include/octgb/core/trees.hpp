#pragma once
/// \file trees.hpp
/// The two octrees of the algorithm (Fig. 1): T_A over atom centers with
/// per-atom charge/radius payloads, and T_Q over surface quadrature points
/// with per-point and per-leaf aggregated weighted normals.
///
/// All payloads are stored in *tree order* (the octree's permuted point
/// order) so every node's data is contiguous — the cache-friendliness the
/// paper leans on. point_index() maps back to input order.

#include <span>
#include <vector>

#include "octgb/core/batch_kernels.hpp"
#include "octgb/mol/molecule.hpp"
#include "octgb/octree/octree.hpp"
#include "octgb/surface/surface.hpp"

namespace octgb::core {

/// Atoms octree T_A with payloads in tree order.
///
/// The SoA coordinate planes live inside the octree itself: the Morton
/// builder writes them during its sort scatter, so the node order *is*
/// the plane order and the former per-build gather here is gone
/// (DESIGN.md §2.9). soa_x()/y()/z() are views of those planes; any
/// node's atoms occupy the contiguous range [begin, end), so a leaf's SoA
/// batch for the batched kernels is just a set of subspans.
struct AtomsTree {
  octree::Octree tree;
  std::vector<double> charge;     ///< tree order
  std::vector<double> vdw_radius; ///< intrinsic radius, tree order
  /// Float mirrors of the coordinate/charge planes for the mixed-precision
  /// kernels (simd/dispatch.hpp), rounded once per rebuild_derived() —
  /// the streamed operands of AtomBatchF. Born radii have no float plane
  /// (see AtomBatchF).
  std::vector<float> soa_xf, soa_yf, soa_zf, charge_f;

  /// Coordinate planes, tree order (owned and maintained by the octree
  /// across builds, refits and resorts).
  std::span<const double> soa_x() const { return tree.soa_x(); }
  std::span<const double> soa_y() const { return tree.soa_y(); }
  std::span<const double> soa_z() const { return tree.soa_z(); }

  static AtomsTree build(const mol::Molecule& mol,
                         const octree::BuildParams& params = {});

  /// Refit in place to moved coordinates (input order, same length as the
  /// original build): recompute node centroids/radii bottom-up *and*
  /// refresh the SoA coordinate planes, preserving topology so leaf
  /// batches stay contiguous. Charges/radii are untouched (the permutation
  /// does not change). See octree::RefitMonitor for the rebuild policy.
  void refit(std::span<const geom::Vec3> positions);

  /// Recompute the derived SoA planes from the tree's (possibly refitted
  /// or deserialized) point array. build()/refit() call this; persist.hpp
  /// calls it after loading the authoritative payloads.
  void rebuild_derived();

  std::size_t num_atoms() const { return charge.size(); }
  std::size_t footprint_bytes() const;

  /// SoA view of one node's atoms for batch_epol_sum. The Born plane is
  /// supplied by the caller as a tree-order span: Born radii are produced
  /// per evaluation by PUSH-INTEGRALS-TO-ATOMS (each simulated rank holds
  /// its own `born_tree`), so passing that array *is* the refreshed Born
  /// plane — caching it in the shared tree would race across ranks.
  AtomBatch node_batch(const octree::Octree::Node& n,
                       std::span<const double> born_tree) const {
    return AtomBatch{
        soa_x().subspan(n.begin, n.size()),
        soa_y().subspan(n.begin, n.size()),
        soa_z().subspan(n.begin, n.size()),
        std::span<const double>(charge).subspan(n.begin, n.size()),
        born_tree.subspan(n.begin, n.size())};
  }

  /// Float-stream view of one node's atoms for the mixed-precision GB
  /// pair kernel. Coordinates/charges come from the float mirror planes;
  /// the Born plane stays the caller's double span (narrowed lane-wise
  /// inside the kernel).
  AtomBatchF node_batch_f(const octree::Octree::Node& n,
                          std::span<const double> born_tree) const {
    return AtomBatchF{
        std::span<const float>(soa_xf).subspan(n.begin, n.size()),
        std::span<const float>(soa_yf).subspan(n.begin, n.size()),
        std::span<const float>(soa_zf).subspan(n.begin, n.size()),
        std::span<const float>(charge_f).subspan(n.begin, n.size()),
        born_tree.subspan(n.begin, n.size())};
  }
};

/// Quadrature-points octree T_Q with payloads in tree order.
///
/// Caches SoA planes of the point coordinates and weighted normals
/// ({x, y, z, wnx, wny, wnz}, tree order, built once at construction) so
/// each leaf's batch for batch_born_integral is a set of contiguous
/// subspans.
struct QPointsTree {
  octree::Octree tree;
  std::vector<geom::Vec3> wnormal;  ///< w_q · n_q per point, tree order
  std::vector<double> weight;       ///< w_q per point, tree order
  /// Σ (w·n) over the points of each *node* (indexed by node id). Only
  /// leaf entries are read by APPROX-INTEGRALS, but internal aggregates
  /// are cheap and used by tests.
  std::vector<geom::Vec3> node_wnormal;
  std::vector<double> soa_wnx, soa_wny, soa_wnz;  ///< w·n, tree order
  /// Float mirrors for the mixed-precision Born kernel (QPointBatchF),
  /// rounded once per rebuild_derived().
  std::vector<float> soa_xf, soa_yf, soa_zf;
  std::vector<float> soa_wnxf, soa_wnyf, soa_wnzf;

  /// Coordinate planes, tree order (owned by the octree; see AtomsTree).
  std::span<const double> soa_x() const { return tree.soa_x(); }
  std::span<const double> soa_y() const { return tree.soa_y(); }
  std::span<const double> soa_z() const { return tree.soa_z(); }

  static QPointsTree build(const surface::Surface& surf,
                           const octree::BuildParams& params = {});

  /// Refit in place to a moved surface with the same point count and input
  /// order (e.g. rigidly transformed quadrature points): recompute node
  /// centroids/radii, refresh the weighted-normal payloads from `surf`,
  /// and rebuild the SoA planes and per-node aggregates — topology and
  /// leaf contiguity preserved.
  void refit(const surface::Surface& surf);

  /// Recompute node_wnormal and all SoA planes from the tree points and
  /// the wnormal payload (after refit or deserialization).
  void rebuild_derived();

  std::size_t num_points() const { return weight.size(); }
  std::size_t footprint_bytes() const;

  /// SoA view of one node's quadrature points for batch_born_integral.
  QPointBatch node_batch(const octree::Octree::Node& n) const {
    return QPointBatch{
        soa_x().subspan(n.begin, n.size()),
        soa_y().subspan(n.begin, n.size()),
        soa_z().subspan(n.begin, n.size()),
        std::span<const double>(soa_wnx).subspan(n.begin, n.size()),
        std::span<const double>(soa_wny).subspan(n.begin, n.size()),
        std::span<const double>(soa_wnz).subspan(n.begin, n.size())};
  }

  /// Float-stream view of one node's quadrature points for the
  /// mixed-precision Born kernel.
  QPointBatchF node_batch_f(const octree::Octree::Node& n) const {
    return QPointBatchF{
        std::span<const float>(soa_xf).subspan(n.begin, n.size()),
        std::span<const float>(soa_yf).subspan(n.begin, n.size()),
        std::span<const float>(soa_zf).subspan(n.begin, n.size()),
        std::span<const float>(soa_wnxf).subspan(n.begin, n.size()),
        std::span<const float>(soa_wnyf).subspan(n.begin, n.size()),
        std::span<const float>(soa_wnzf).subspan(n.begin, n.size())};
  }

 private:
  /// Fill wnormal/weight from `surf` through the tree's permutation
  /// (shared by build and refit; sizes must already match).
  void assign_surface(const surface::Surface& surf);
};

/// Stage-1 artifact of the evaluation pipeline: both octrees (with their
/// SoA planes) for one molecule + sampled surface. Immutable as far as the
/// evaluation stage is concerned — evaluations never write into it, so one
/// Preprocessed can back any number of evaluations at any approximation
/// parameters ("once an octree is built, it can be used for any
/// approximation parameter"), be refitted for moved coordinates, or be
/// persisted and reloaded across processes (core/persist.hpp).
struct Preprocessed {
  AtomsTree atoms;
  QPointsTree qpoints;

  static Preprocessed build(
      const mol::Molecule& mol, const surface::Surface& surf,
      const octree::BuildParams& atoms_params = {.max_leaf_size = 32},
      const octree::BuildParams& qpoints_params = {.max_leaf_size = 64});

  std::size_t footprint_bytes() const {
    return atoms.footprint_bytes() + qpoints.footprint_bytes();
  }
};

}  // namespace octgb::core
