#pragma once
/// \file engine.hpp
/// GBEngine — the library's main façade. Owns the two octrees for one
/// molecule + surface and exposes (a) a one-call compute() covering the
/// Naive-with-octree / OCT_CILK configurations and (b) the segment-level
/// phase API the distributed drivers (hybrid.hpp, sim/) are built on.

#include <memory>
#include <vector>

#include "octgb/core/born.hpp"
#include "octgb/core/epol.hpp"
#include "octgb/core/gb_params.hpp"
#include "octgb/core/trees.hpp"
#include "octgb/core/workdiv.hpp"
#include "octgb/perf/counters.hpp"
#include "octgb/ws/scheduler.hpp"

namespace octgb::core {

/// Observability knobs (see OBSERVABILITY.md). `enabled` turns on the
/// global octgb::trace recorder for the engine's compute paths; the
/// OCTGB_TRACE=1 environment variable is the no-recompile equivalent.
struct TraceOptions {
  bool enabled = false;  ///< record phase/worker spans during compute
};

/// Engine configuration: approximation parameters, GB constants, octree
/// build knobs. `approx.kernel` selects the exact near-field kernel
/// implementation (KernelKind::Batched SoA by default; KernelKind::Scalar
/// keeps the original AoS loops for A/B benchmarking and the differential
/// tests) — it changes results only by floating-point reassociation.
/// `trace.enabled` opts the compute paths into span recording; tracing
/// never changes results or operation counts.
struct EngineConfig {
  ApproxParams approx;
  GBParams gb;
  octree::BuildParams atoms_tree_params{.max_leaf_size = 32};
  octree::BuildParams qpoints_tree_params{.max_leaf_size = 64};
  TraceOptions trace;
};

/// Result of a full energy evaluation.
struct EnergyResult {
  double epol = 0.0;               ///< kcal/mol
  std::vector<double> born;        ///< Born radii, input (original) order
  perf::WorkCounters work;         ///< measured operation counts
  double wall_seconds = 0.0;       ///< actual wall time of compute()
};

/// Octree-based GB energy engine for one molecule + sampled surface.
class GBEngine {
 public:
  GBEngine(const mol::Molecule& mol, const surface::Surface& surf,
           EngineConfig config = {});

  const EngineConfig& config() const { return config_; }
  EngineConfig& config() { return config_; }

  const AtomsTree& atoms_tree() const { return ta_; }
  const QPointsTree& qpoints_tree() const { return tq_; }
  std::size_t num_atoms() const { return ta_.num_atoms(); }
  std::size_t num_ta_nodes() const { return ta_.tree.nodes().size(); }

  /// T_Q leaf ids (Born-phase work units) and T_A leaf ids (energy-phase
  /// work units) in tree order.
  const std::vector<std::uint32_t>& q_leaves() const {
    return tq_.tree.leaf_ids();
  }
  const std::vector<std::uint32_t>& a_leaves() const {
    return ta_.tree.leaf_ids();
  }

  /// Bytes one process replicating all input data would hold (trees +
  /// payloads) — the unit of the paper's §V-B memory comparison.
  std::size_t footprint_bytes() const {
    return ta_.footprint_bytes() + tq_.footprint_bytes();
  }

  /// Full computation in this process. When `sched` is non-null, the
  /// phases run under it (the OCT_CILK configuration); otherwise serial.
  EnergyResult compute(ws::Scheduler* sched = nullptr) const;

  /// Full computation using the legacy dual-tree Born traversal of
  /// Chowdhury & Bajaj [6] (see dual_traversal.hpp) instead of the
  /// paper's one-tree APPROX-INTEGRALS; the Epol phase is shared.
  EnergyResult compute_dual(ws::Scheduler* sched = nullptr) const;

  /// Energy only, with externally supplied Born radii (input order) — the
  /// octree Epol kernel runs unchanged on HCT/OBC/Still radii, mirroring
  /// MD packages' support for multiple GB models on one engine.
  double epol_with_radii(std::span<const double> born_input_order,
                         perf::WorkCounters& counters) const;

  // --- phase API for distributed drivers -------------------------------

  /// Born phase A on a segment of q_leaves(); accumulates into
  /// node_s (size num_ta_nodes()) and atom_s (size num_atoms()).
  void phase_integrals(Segment q_leaf_segment, std::span<double> node_s,
                       std::span<double> atom_s,
                       perf::WorkCounters& counters) const;

  /// Born phase B for atoms in tree positions [segment.begin, segment.end).
  void phase_push(Segment atom_segment, std::span<const double> node_s,
                  std::span<const double> atom_s,
                  std::span<double> born_tree,
                  perf::WorkCounters& counters) const;

  /// Bin table for the energy phase (requires complete born_tree).
  EpolContext build_epol_context(std::span<const double> born_tree) const;

  /// Energy phase on a segment of a_leaves(); returns this segment's
  /// partial Epol (node-based work division).
  double phase_epol(const EpolContext& ctx,
                    std::span<const double> born_tree, Segment a_leaf_segment,
                    perf::WorkCounters& counters) const;

  /// Energy phase with atom-based work division (ablation).
  double phase_epol_atom_based(const EpolContext& ctx,
                               std::span<const double> born_tree,
                               Segment atom_segment,
                               perf::WorkCounters& counters) const;

  /// Remap a tree-order Born array to input order.
  std::vector<double> born_to_input_order(
      std::span<const double> born_tree) const;

 private:
  EngineConfig config_;
  AtomsTree ta_;
  QPointsTree tq_;
};

}  // namespace octgb::core
