#pragma once
/// \file engine.hpp
/// GBEngine — the library's main façade. Owns the two octrees for one
/// molecule + surface and exposes (a) a one-call compute() covering the
/// Naive-with-octree / OCT_CILK configurations and (b) the segment-level
/// phase API the distributed drivers (hybrid.hpp, sim/) are built on.

#include <memory>
#include <vector>

#include "octgb/core/born.hpp"
#include "octgb/core/epol.hpp"
#include "octgb/core/gb_params.hpp"
#include "octgb/core/plan.hpp"
#include "octgb/core/trees.hpp"
#include "octgb/core/workdiv.hpp"
#include "octgb/perf/counters.hpp"
#include "octgb/ws/scheduler.hpp"

namespace octgb::core {

/// Observability knobs (see OBSERVABILITY.md). `enabled` turns on the
/// global octgb::trace recorder for the engine's compute paths; the
/// OCTGB_TRACE=1 environment variable is the no-recompile equivalent.
struct TraceOptions {
  bool enabled = false;  ///< record phase/worker spans during compute
};

/// Engine configuration: approximation parameters, GB constants, octree
/// build knobs. `approx.kernel` selects the exact near-field kernel
/// implementation (KernelKind::Batched SoA by default; KernelKind::Scalar
/// keeps the original AoS loops for A/B benchmarking and the differential
/// tests) — it changes results only by floating-point reassociation.
/// `approx.vector` additionally routes the Batched kernels through the
/// explicit-SIMD layer (octgb/simd/) — runtime-dispatched width
/// (VectorIsa) and optional mixed precision (float streams, double
/// accumulation); like approx_math it changes arithmetic only, never the
/// traversal partition, so it participates in the Born-cache stamp but
/// not in the PlanKey.
/// `trace.enabled` opts the compute paths into span recording; tracing
/// never changes results or operation counts.
///
/// Mutability contract: the tree-build knobs (`atoms_tree_params`,
/// `qpoints_tree_params`) are consumed at construction and *must not*
/// change afterwards — mutating them on a live engine would silently
/// desynchronize the config from the trees it describes. GBEngine
/// therefore exposes only the evaluation-time knobs (`approx`, `gb`,
/// `trace`) for post-construction mutation; the full config is read-only.
struct EngineConfig {
  ApproxParams approx;
  GBParams gb;
  octree::BuildParams atoms_tree_params{.max_leaf_size = 32};
  octree::BuildParams qpoints_tree_params{.max_leaf_size = 64};
  TraceOptions trace;
};

/// Result of a full energy evaluation.
struct EnergyResult {
  double epol = 0.0;               ///< kcal/mol
  std::vector<double> born;        ///< Born radii, input (original) order
  perf::WorkCounters work;         ///< measured operation counts
  double wall_seconds = 0.0;       ///< actual wall time of compute()
};

/// Stage-2 artifact of the evaluation pipeline: all working memory one
/// evaluation needs — phase-A accumulators, the tree-order Born plane,
/// the input-order remap target, and the Epol bin tables. Buffers are
/// *zeroed, not reallocated* between computes: after the first warm
/// compute on a given engine shape, repeated evaluations perform no heap
/// allocation (ISSUE acceptance — `allocation_events` is the witness).
/// One scratch serves any number of engines/evaluations sequentially; it
/// is not thread-safe across concurrent computes.
struct EvalScratch {
  std::vector<double> node_s;      ///< per-T_A-node integrals (phase A)
  std::vector<double> atom_s;      ///< per-atom near-field integrals
  std::vector<double> born_tree;   ///< Born radii, tree order (phase B)
  std::vector<double> born_input;  ///< Born radii, input order (remap)
  EpolContext epol_ctx;            ///< charge-by-bin tables (energy phase)
  /// Cached interaction plan + Born results for the engine/params most
  /// recently evaluated through this scratch (PlanMode::Auto), plus the
  /// plan statistics. Plan buffers obey the same capacity-reuse contract
  /// as the phase buffers.
  PlanCache plan_cache;
  /// Count of prepare()/context-rebuild steps that had to grow a buffer's
  /// capacity. Steady-state warm computes leave it unchanged; tests and
  /// bench_session assert on exactly that.
  std::size_t allocation_events = 0;

  /// Size-and-zero every phase buffer for an engine with the given tree
  /// shape, reusing capacity; bumps allocation_events when any vector had
  /// to grow.
  void prepare(std::size_t n_nodes, std::size_t n_atoms);

  std::size_t footprint_bytes() const;
};

/// Result of one evaluation through an EvalScratch. `born` is a view of
/// the scratch's input-order plane — valid until the scratch's next
/// prepare()/compute; copy it if you need it longer.
struct EvalResult {
  double epol = 0.0;               ///< kcal/mol
  std::span<const double> born;    ///< Born radii, input order (view)
  perf::WorkCounters work;         ///< measured operation counts
  double wall_seconds = 0.0;       ///< actual wall time of this compute
};

/// Octree-based GB energy engine for one molecule + sampled surface.
class GBEngine {
 public:
  GBEngine(const mol::Molecule& mol, const surface::Surface& surf,
           EngineConfig config = {});

  /// Adopt already-built stage-1 trees (Preprocessed::build or
  /// core/persist.hpp). `config`'s tree-build knobs are kept only for
  /// later rebuild_atoms()/rebuild_qpoints() calls; they are *not*
  /// re-applied to the adopted trees.
  GBEngine(Preprocessed pre, EngineConfig config = {});

  const EngineConfig& config() const { return config_; }
  // Post-construction mutation is restricted to the evaluation-time knobs;
  // the tree-build parameters are fixed once the trees exist (see the
  // EngineConfig mutability contract).
  ApproxParams& approx() { return config_.approx; }
  GBParams& gb() { return config_.gb; }
  TraceOptions& trace() { return config_.trace; }

  /// Refit T_A in place to moved atom coordinates (input order, same
  /// count): topology is preserved, centroids/radii and the SoA planes
  /// are refreshed. Pair with octree::RefitMonitor to decide when drift
  /// warrants a rebuild instead. Advances the geometry epoch.
  void refit_atoms(std::span<const geom::Vec3> positions) {
    ta_.refit(positions);
    ++geometry_epoch_;
  }
  /// Refit T_Q in place to a moved surface (same point count and order).
  /// Advances the geometry epoch.
  void refit_qpoints(const surface::Surface& surf) {
    tq_.refit(surf);
    ++geometry_epoch_;
  }
  /// Rebuild T_A from scratch (topology change) with the construction-time
  /// build parameters. Advances both the topology and geometry epochs.
  void rebuild_atoms(const mol::Molecule& mol) {
    ta_ = AtomsTree::build(mol, config_.atoms_tree_params);
    ++topology_epoch_;
    ++geometry_epoch_;
  }
  /// Rebuild T_Q from scratch with the construction-time build parameters.
  /// Advances both the topology and geometry epochs.
  void rebuild_qpoints(const surface::Surface& surf) {
    tq_ = QPointsTree::build(surf, config_.qpoints_tree_params);
    ++topology_epoch_;
    ++geometry_epoch_;
  }

  /// Process-unique engine identity (plan-cache key component; a scratch
  /// may serve several engines in turn).
  std::uint64_t engine_id() const { return engine_id_; }
  /// Bumped by every rebuild_*: a different epoch means the trees'
  /// topology (node structure, point permutation) may have changed, which
  /// unconditionally invalidates a cached plan.
  std::uint64_t topology_epoch() const { return topology_epoch_; }
  /// Bumped by every refit_* and rebuild_*: a different epoch means node
  /// centroids/radii (and thus results) may have changed. A cached plan
  /// survives it via structural re-validation; cached Born radii do not.
  std::uint64_t geometry_epoch() const { return geometry_epoch_; }

  const AtomsTree& atoms_tree() const { return ta_; }
  const QPointsTree& qpoints_tree() const { return tq_; }
  std::size_t num_atoms() const { return ta_.num_atoms(); }
  std::size_t num_ta_nodes() const { return ta_.tree.nodes().size(); }

  /// T_Q leaf ids (Born-phase work units) and T_A leaf ids (energy-phase
  /// work units) in tree order.
  const std::vector<std::uint32_t>& q_leaves() const {
    return tq_.tree.leaf_ids();
  }
  const std::vector<std::uint32_t>& a_leaves() const {
    return ta_.tree.leaf_ids();
  }

  /// Bytes one process replicating all input data would hold (trees +
  /// payloads) — the unit of the paper's §V-B memory comparison.
  std::size_t footprint_bytes() const {
    return ta_.footprint_bytes() + tq_.footprint_bytes();
  }

  /// Full computation in this process. When `sched` is non-null, the
  /// phases run under it (the OCT_CILK configuration); otherwise serial.
  /// Thin compatibility wrapper over compute(EvalScratch&): allocates a
  /// cold scratch per call, numerically identical to the warm path.
  EnergyResult compute(ws::Scheduler* sched = nullptr) const;

  /// Stage-3 evaluation against caller-owned working memory: all phase
  /// buffers and the Epol context come from (and are left in) `scratch`,
  /// so back-to-back computes on the same tree shape allocate nothing.
  /// This is the hot path of ScoringSession. Under PlanMode::Auto (the
  /// default) the Born phase goes through the scratch's plan cache: an
  /// instrumented capture on the first evaluation, flat-list replay or a
  /// full Born-result reuse afterwards — bit-identical to the traversal
  /// in every case (DESIGN.md §2.6).
  EvalResult compute(EvalScratch& scratch, ws::Scheduler* sched = nullptr) const;

  /// Full computation using the legacy dual-tree Born traversal of
  /// Chowdhury & Bajaj [6] (see dual_traversal.hpp) instead of the
  /// paper's one-tree APPROX-INTEGRALS; the Epol phase is shared.
  EnergyResult compute_dual(ws::Scheduler* sched = nullptr) const;

  /// Dual-tree Born variant of compute(EvalScratch&).
  EvalResult compute_dual(EvalScratch& scratch,
                          ws::Scheduler* sched = nullptr) const;

  /// Energy only, with externally supplied Born radii (input order) — the
  /// octree Epol kernel runs unchanged on HCT/OBC/Still radii, mirroring
  /// MD packages' support for multiple GB models on one engine.
  double epol_with_radii(std::span<const double> born_input_order,
                         perf::WorkCounters& counters) const;

  // --- phase API for distributed drivers -------------------------------

  /// Born phase A on a segment of q_leaves(); accumulates into
  /// node_s (size num_ta_nodes()) and atom_s (size num_atoms()).
  void phase_integrals(Segment q_leaf_segment, std::span<double> node_s,
                       std::span<double> atom_s,
                       perf::WorkCounters& counters) const;

  /// Born phase B for atoms in tree positions [segment.begin, segment.end).
  void phase_push(Segment atom_segment, std::span<const double> node_s,
                  std::span<const double> atom_s,
                  std::span<double> born_tree,
                  perf::WorkCounters& counters) const;

  /// Bin table for the energy phase (requires complete born_tree).
  EpolContext build_epol_context(std::span<const double> born_tree) const;

  /// Energy phase on a segment of a_leaves(); returns this segment's
  /// partial Epol (node-based work division).
  double phase_epol(const EpolContext& ctx,
                    std::span<const double> born_tree, Segment a_leaf_segment,
                    perf::WorkCounters& counters) const;

  /// Energy phase with atom-based work division (ablation).
  double phase_epol_atom_based(const EpolContext& ctx,
                               std::span<const double> born_tree,
                               Segment atom_segment,
                               perf::WorkCounters& counters) const;

  /// Remap a tree-order Born array to input order (allocating convenience
  /// overload).
  std::vector<double> born_to_input_order(
      std::span<const double> born_tree) const;

  /// Non-allocating remap into caller-owned storage (`out.size()` must
  /// equal `born_tree.size()`); the overload the EvalScratch path uses.
  void born_to_input_order(std::span<const double> born_tree,
                           std::span<double> out) const;

 private:
  EvalResult compute_eval(EvalScratch& scratch, ws::Scheduler* sched,
                          PlanFlavor flavor, bool allow_plan) const;

  static std::uint64_t next_engine_id();

  EngineConfig config_;
  AtomsTree ta_;
  QPointsTree tq_;
  std::uint64_t engine_id_ = next_engine_id();
  std::uint64_t topology_epoch_ = 0;
  std::uint64_t geometry_epoch_ = 0;
};

}  // namespace octgb::core
