#pragma once
/// \file naive.hpp
/// Naïve exact reference implementations of Equations 2 and 4: the O(M·N)
/// Born-radius sum and the O(M²) GB energy. These are the ground truth the
/// paper's "% of error" columns are measured against (Fig. 9–11), and the
/// worst bar of Fig. 8.

#include <span>
#include <vector>

#include "octgb/core/gb_params.hpp"
#include "octgb/mol/molecule.hpp"
#include "octgb/perf/counters.hpp"
#include "octgb/surface/surface.hpp"

namespace octgb::core {

/// Exact surface-based r⁶ Born radii (Eq. 4 + the intrinsic-radius clamp),
/// one entry per atom in input order. `kernel` selects the inner loop:
/// Batched (default) gathers the surface into SoA scratch once and sweeps
/// it with batch_born_integral; Scalar is the original AoS loop. The two
/// differ only by floating-point reassociation.
std::vector<double> naive_born_radii(const mol::Molecule& mol,
                                     const surface::Surface& surf,
                                     perf::WorkCounters* counters = nullptr,
                                     KernelKind kernel = KernelKind::Batched);

/// Exact GB polarization energy (Eq. 2) over all ordered atom pairs,
/// including the i = j self terms. `born` is in input order. The batched
/// kernel evaluates the full ordered-pair sum row by row (diagonal
/// included); the scalar path sums diagonal + 2 × unordered off-diagonal
/// pairs — identical up to reassociation.
double naive_epol(const mol::Molecule& mol, std::span<const double> born,
                  const GBParams& gb = {},
                  perf::WorkCounters* counters = nullptr,
                  KernelKind kernel = KernelKind::Batched);

/// Finalize one Born radius from its accumulated surface integral S
/// (Fig. 2, PUSH-INTEGRALS-TO-ATOMS line 1): R = max(r_vdw, (S/4π)^(−1/3)).
/// Non-positive integrals (possible for badly buried atoms under coarse
/// sampling) clamp to kMaxBornRadius.
double finalize_born_radius(double integral, double vdw_radius,
                            bool approx_math = false);

/// Upper clamp for degenerate Born radii (Å).
inline constexpr double kMaxBornRadius = 1000.0;

}  // namespace octgb::core
