#pragma once
/// \file dual_traversal.hpp
/// The *original* shared-memory algorithm of Chowdhury & Bajaj [6], [7]:
/// Born-radius integrals via simultaneous recursive traversal of both
/// octrees (Fig. 1 of the paper). This is the algorithm behind the
/// OCT_CILK configuration; §IV notes "the major difference of our
/// [distributed] approach from [6] is that we only traverse one octree".
///
/// Traversal rules (§II):
///  * if (A, Q) are far enough — same admissibility as APPROX-INTEGRALS —
///    approximate all of Q's contribution to A with one pseudo-interaction
///    (Q may be an *internal* node here, unlike the one-tree algorithm
///    where Q is always a leaf);
///  * if both are leaves, accumulate exactly;
///  * otherwise recurse into the children of the non-leaf node(s) —
///    when both are internal, into the one with the larger radius (the
///    standard dual-tree refinement rule), in parallel.

#include <cstdint>
#include <span>

#include "octgb/core/gb_params.hpp"
#include "octgb/core/trees.hpp"
#include "octgb/perf/counters.hpp"
#include "octgb/simd/types.hpp"

namespace octgb::core {

class PlanRecorder;  // core/plan.hpp

/// Dual-tree APPROX-INTEGRALS: accumulates node partials into `node_s`
/// (one slot per T_A node) and exact leaf sums into `atom_s` (tree
/// order), exactly like approx_integrals() — the PUSH phase is shared.
/// Thread-safe; recursion forks under an active scheduler. A non-null
/// `recorder` captures every near/far decision into an InteractionPlan
/// and forces the traversal serial (deterministic capture order), as in
/// approx_integrals().
void approx_integrals_dual(const AtomsTree& ta, const QPointsTree& tq,
                           double eps_born, bool approx_math,
                           std::span<double> node_s,
                           std::span<double> atom_s,
                           perf::WorkCounters& counters,
                           bool strict_criterion = false,
                           KernelKind kernel = KernelKind::Batched,
                           const simd::VectorParams& vector = {},
                           PlanRecorder* recorder = nullptr);

}  // namespace octgb::core
