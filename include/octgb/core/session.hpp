#pragma once
/// \file session.hpp
/// ScoringSession — the stage-3 driver tying the pipeline together:
/// stage 1 (Preprocessed trees) is built once, stage 2 (EvalScratch) is
/// owned and reused across calls, and every public entry point is an
/// evaluation against those artifacts.
///
/// Three workloads, in increasing order of reuse:
///
///  1. Parameter sweeps — evaluate()/evaluate_at() re-run the energy at
///     different ε/kernel/GB settings against the *same* trees ("once an
///     octree is built, it can be used for any approximation parameter").
///  2. Moved-atom re-scoring — update() refits the trees in place for new
///     coordinates (O(n), topology preserved) and rebuilds only when the
///     octree::RefitMonitor quality policy trips.
///  3. Pose streams — score_poses() scores rigid-body ligand poses
///     (docking rescoring) with a per-pose refit-or-rebuild decision and
///     a trace span per pose.
///
/// Pose modes (see DESIGN.md for the accuracy contract):
///  - PoseMode::Full — exact within the engine's ε: moves the ligand atoms
///    *and* their surface points rigidly (owner_atom ≥ ligand_begin),
///    refits/rebuilds the complex trees, and reruns the full Born + Epol
///    pipeline. Rigid-surface approximation: interface exposure changes
///    are neglected.
///  - PoseMode::CrossScreen — frozen-monomer screening: each body keeps
///    the Born radii and bin tables of its isolated base-coordinate
///    evaluation; a pose costs one rigid refit of the ligand tree plus a
///    cross-tree Epol traversal (approx_epol_cross). This is the classic
///    rigid-docking GB rescoring approximation — orders of magnitude
///    faster, with ΔEpol exact in the frozen-radii model.

#include <memory>
#include <vector>

#include "octgb/core/engine.hpp"
#include "octgb/geom/transform.hpp"
#include "octgb/octree/dynamic.hpp"

namespace octgb::core {

/// How score_poses() evaluates each pose.
enum class PoseMode {
  Full,         ///< full Born + Epol on the rigidly moved complex
  CrossScreen,  ///< frozen-monomer radii + cross-tree Epol per pose
};

/// Tree-maintenance counters across the session's lifetime.
struct MoveStats {
  std::size_t refits = 0;    ///< O(n) in-place refits (atoms + qpoints)
  std::size_t rebuilds = 0;  ///< quality-triggered from-scratch rebuilds
};

/// Score of one pose.
struct PoseScore {
  std::size_t pose = 0;   ///< index into the pose span
  double epol = 0.0;      ///< Epol of the complex, kcal/mol
  double delta = 0.0;     ///< epol − Epol(receptor) − Epol(ligand)
  bool rebuilt = false;   ///< this pose tripped a tree rebuild (Full mode)
  double wall_seconds = 0.0;
};

/// Reusable scoring context for one molecule + sampled surface.
///
/// The session copies the molecule and surface so it can move atoms and
/// surface points for update()/score_poses() without mutating the
/// caller's data; the coordinates at construction (or at the last
/// update()) are the *base* pose that score_poses() transforms are
/// relative to.
class ScoringSession {
 public:
  /// `surface_params` is only consulted when CrossScreen mode samples
  /// per-body surfaces; pass the parameters used to build `surf` so the
  /// monomer evaluations match the complex's resolution.
  ScoringSession(const mol::Molecule& mol, const surface::Surface& surf,
                 EngineConfig config = {},
                 surface::SurfaceParams surface_params = {});
  ~ScoringSession();

  ScoringSession(const ScoringSession&) = delete;
  ScoringSession& operator=(const ScoringSession&) = delete;

  GBEngine& engine() { return engine_; }
  const GBEngine& engine() const { return engine_; }
  EvalScratch& scratch() { return scratch_; }
  const mol::Molecule& molecule() const { return mol_; }
  const surface::Surface& surface() const { return surf_; }
  const MoveStats& move_stats() const { return stats_; }
  /// Interaction-plan cache statistics accumulated by this session's
  /// scratch (captures, replays, Born reuses, invalidations — see
  /// perf::PlanCounters and OBSERVABILITY.md).
  const perf::PlanCounters& plan_stats() const {
    return scratch_.plan_cache.stats;
  }

  /// Total bytes this warm session keeps resident: the copied molecule and
  /// surface, both octrees, the evaluation scratch (phase buffers, Epol
  /// context, cached plan + Born radii), and the base-pose snapshots. This
  /// is the unit the svc artifact cache's byte budget accounts in.
  std::size_t footprint_bytes() const;

  /// Evaluate at the engine's current settings, reusing the session
  /// scratch — repeated calls on an unchanged shape allocate nothing.
  EvalResult evaluate(ws::Scheduler* sched = nullptr);

  /// Evaluate at different evaluation-time knobs without rebuilding the
  /// trees. The settings stick (they become the engine's current approx
  /// params).
  EvalResult evaluate_at(const ApproxParams& approx,
                         ws::Scheduler* sched = nullptr);

  /// Re-score moved atoms: refit the atoms tree to `positions` (input
  /// order, same count) and the qpoints tree to `surf` (refit when the
  /// point count is unchanged, rebuild otherwise), rebuilding either tree
  /// when its RefitMonitor trips. The new coordinates become the base
  /// pose. Returns true when any rebuild happened. Call evaluate() after.
  bool update(std::span<const geom::Vec3> positions,
              const surface::Surface& surf);

  /// Rigidly move atoms [ligand_begin, size) and their surface points
  /// (owner_atom ≥ ligand_begin) to `pose` *relative to the base
  /// coordinates*, with refit-or-rebuild maintenance. No evaluation.
  /// Returns true when a rebuild happened.
  bool apply_pose(const geom::RigidTransform& pose, std::size_t ligand_begin);

  /// Score a stream of rigid ligand poses (transforms relative to the
  /// base coordinates). Emits one "session.pose" trace span per pose.
  std::vector<PoseScore> score_poses(
      std::span<const geom::RigidTransform> poses, std::size_t ligand_begin,
      PoseMode mode = PoseMode::CrossScreen, ws::Scheduler* sched = nullptr);

  /// Restore the base coordinates after a Full-mode pose stream left the
  /// session at the last pose.
  void reset_to_base();

 private:
  struct ScreenState;  // frozen-monomer caches for CrossScreen

  ScreenState& ensure_screen_state(std::size_t ligand_begin);
  PoseScore score_pose_full(const geom::RigidTransform& pose,
                            std::size_t ligand_begin, double e_bodies,
                            ws::Scheduler* sched);
  PoseScore score_pose_screen(const geom::RigidTransform& pose,
                              ScreenState& st);
  void snapshot_base();

  mol::Molecule mol_;
  surface::Surface surf_;
  GBEngine engine_;
  surface::SurfaceParams surface_params_;
  EvalScratch scratch_;
  octree::RefitMonitor atoms_monitor_;
  octree::RefitMonitor qpoints_monitor_;
  MoveStats stats_;

  // Base-pose snapshots (input order) that pose transforms act on.
  std::vector<geom::Vec3> base_atom_pos_;
  std::vector<geom::Vec3> base_q_pos_;
  std::vector<geom::Vec3> base_q_normal_;
  std::vector<geom::Vec3> pose_pos_;  ///< per-pose position staging buffer

  std::unique_ptr<ScreenState> screen_;
};

}  // namespace octgb::core
