#pragma once
/// \file plan.hpp
/// Interaction-plan capture & replay: compile the Born-phase octree
/// traversal into flat SoA execution lists.
///
/// The admissibility structure of APPROX-INTEGRALS (and of the dual-tree
/// variant) depends only on the tree geometry and on (eps_born,
/// strict_criterion) — not on the evaluation-time knobs a ScoringSession
/// re-dials between calls. An InteractionPlan records, from one
/// *instrumented* run of the ordinary recursive traversal, every decision
/// it made:
///
///   - the near-field list: (A-leaf, Q-leaf) pairs evaluated exactly, and
///   - the far-field list: (A-node, Q-node) pairs evaluated as one
///     pseudo-particle term into node_s[A].
///
/// replay() then evaluates those lists as flat loops grouped by target
/// A-node ("owner"): every owner's node_s slot and every A-leaf's atom_s
/// range is written by exactly one task, so replay needs no atomics, is
/// race-free under any schedule, and — because the owner grouping is a
/// *stable* sort of the capture order and the arithmetic goes through the
/// same out-of-line kernels (born_far_term / scalar_born_pair /
/// batch_born_integral) — reproduces the serial traversal's accumulation
/// order per slot, hence its results, bit for bit.
///
/// Lifecycle (driven by GBEngine::compute on the EvalScratch path, see
/// DESIGN.md §2.6):
///   capture  — instrumented traversal, serial, fills the lists;
///   replay   — flat execution at unchanged tree geometry;
///   validate — after an in-place refit, a math-free serial re-walk of the
///              decision structure; any divergence from the stored lists
///              invalidates the plan (drift) and triggers a recapture;
///   born cache — when even the geometry is unchanged, the previous
///              evaluation's Born radii are exact, and the whole Born
///              phase (integrals + push) is skipped.

#include <cstdint>
#include <span>
#include <vector>

#include "octgb/core/gb_params.hpp"
#include "octgb/core/trees.hpp"
#include "octgb/perf/counters.hpp"
#include "octgb/simd/types.hpp"

namespace octgb::core {

/// Which traversal produced (and re-validates) the plan's partition.
enum class PlanFlavor : std::uint8_t {
  Single,  ///< approx_integrals: T_A descent per T_Q leaf (Fig. 2)
  Dual,    ///< approx_integrals_dual: simultaneous dual-tree descent
};

/// Everything the Born-phase partition depends on. Two evaluations with
/// equal keys traverse the same (A, Q) pair structure *if* the tree
/// geometry also matches — geometry is tracked separately (via
/// GBEngine::geometry_epoch) because an in-place refit usually preserves
/// the partition and is handled by validate(), not by the key.
/// approx_math is deliberately absent: it changes the arithmetic, never
/// the partition (it is part of the Born-cache stamp instead).
struct PlanKey {
  std::uint64_t engine_id = 0;       ///< GBEngine instance identity
  std::uint64_t topology_epoch = 0;  ///< bumped by tree rebuilds
  double eps_born = 0.0;
  bool strict_criterion = false;
  KernelKind kernel = KernelKind::Batched;
  PlanFlavor flavor = PlanFlavor::Single;
  /// Locality-aware chunk carving (ApproxParams::locality). In the key
  /// because flipping it changes owner ordering and chunk bounds — the
  /// *partition* of work — even though per-slot accumulation order (and
  /// hence every bit of the result) is unchanged.
  bool locality = true;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

/// Append-only sink the instrumented traversals write their decisions to.
/// Handed to approx_integrals / approx_integrals_dual as an optional
/// argument; recording forces the traversal serial, so append order is the
/// serial traversal order — the order replay must reproduce per slot.
class PlanRecorder {
 public:
  void near(std::uint32_t a_leaf, std::uint32_t q_leaf) {
    near_a_->push_back(a_leaf);
    near_q_->push_back(q_leaf);
  }
  void far(std::uint32_t a_node, std::uint32_t q_node) {
    far_a_->push_back(a_node);
    far_q_->push_back(q_node);
  }

 private:
  friend class InteractionPlan;
  PlanRecorder(std::vector<std::uint32_t>* na, std::vector<std::uint32_t>* nq,
               std::vector<std::uint32_t>* fa, std::vector<std::uint32_t>* fq)
      : near_a_(na), near_q_(nq), far_a_(fa), far_q_(fq) {}
  std::vector<std::uint32_t>* near_a_;
  std::vector<std::uint32_t>* near_q_;
  std::vector<std::uint32_t>* far_a_;
  std::vector<std::uint32_t>* far_q_;
};

/// One captured Born-phase partition plus its replay machinery and the
/// piggy-backed Born-result cache. Buffers are reused across recaptures
/// (capacity never shrinks); every method that can grow one reports it so
/// the caller can maintain the EvalScratch::allocation_events contract.
class InteractionPlan {
 public:
  // --- capture ----------------------------------------------------------

  /// Start a capture for `key`. Invalidates the previous plan and Born
  /// cache; list capacity is kept.
  PlanRecorder begin_capture(const PlanKey& key);

  /// Freeze the captured lists: group them by owner A-node (stable — the
  /// capture order is preserved within each owner), compute per-owner
  /// costs, sort owners by cost, and carve cost-balanced chunk ranges for
  /// replay's parallel_for. `captured_work` is the traversal's Born-phase
  /// counter contribution (reported verbatim by later replays — operation
  /// counts are a property of the partition, not of how it is executed).
  /// Returns true when any internal buffer had to grow.
  bool finalize(const AtomsTree& ta, const QPointsTree& tq,
                std::uint64_t geometry_epoch,
                const perf::WorkCounters& captured_work);

  // --- queries ----------------------------------------------------------

  bool valid() const { return valid_; }
  const PlanKey& key() const { return key_; }
  /// Geometry epoch the lists were last known to match (capture or last
  /// successful validate()).
  std::uint64_t geometry_epoch() const { return geometry_epoch_; }
  std::size_t near_pairs() const { return near_a_.size(); }
  std::size_t far_pairs() const { return far_a_.size(); }
  std::size_t chunks() const {
    return chunk_begin_.empty() ? 0 : chunk_begin_.size() - 1;
  }
  std::size_t footprint_bytes() const;

  // --- locality introspection (DESIGN.md §2.11) --------------------------

  /// Locality counters of the *last* finalize: runs / run_owners / chunks /
  /// baseline_chunks are set; prefetch_batches and numa_touch_passes stay
  /// zero (they are per-replay events the engine accumulates itself).
  const perf::LocalityCounters& locality_stats() const { return locality_; }
  /// Prefetch issues one replay performs (0 when the plan was carved with
  /// locality off).
  std::uint64_t prefetches_per_replay() const { return prefetches_per_replay_; }
  /// Chunk bounds as indices into owner_order(); size chunks()+1.
  std::span<const std::uint32_t> chunk_offsets() const { return chunk_begin_; }
  /// Maximal streaming-run bounds as indices into owner_order(); size
  /// runs+1 under locality carving, empty otherwise.
  std::span<const std::uint32_t> run_offsets() const { return run_begin_; }
  /// Owner-group execution order (stream order under locality carving,
  /// cost-descending otherwise).
  std::span<const std::uint32_t> owner_order() const { return owner_order_; }
  /// Modeled cost of owner group `g` (point-pair equivalents).
  std::uint64_t group_cost(std::uint32_t g) const { return cost_[g]; }
  /// Monotone atom_s partition aligned to chunk bounds (size chunks()+1,
  /// locality carving only): chunk c's near-field writes land mostly in
  /// [begin[c], begin[c+1]). Feed to perf::touch_zero_by_domain together
  /// with a chunk→socket map to first-touch the accumulators NUMA-locally.
  std::span<const std::size_t> chunk_atom_begin() const {
    return chunk_atom_begin_;
  }

  // --- replay path ------------------------------------------------------

  /// Math-free serial re-walk of the traversal's decision structure
  /// against (possibly refitted) trees, compared element-wise with the
  /// stored lists. True — the partition is unchanged, replay at this
  /// geometry is bit-identical to re-traversing; the plan's geometry
  /// epoch is advanced to `geometry_epoch`. False — drift flipped at
  /// least one admissibility decision; the plan is invalidated.
  bool validate(const AtomsTree& ta, const QPointsTree& tq,
                std::uint64_t geometry_epoch);

  /// Evaluate the captured lists into node_s / atom_s (both pre-zeroed,
  /// as in the traversal) with a chunked parallel_for over the
  /// cost-sorted owner groups. Adds the capture's Born-phase counters to
  /// `work`. Bit-identical to the serial recursive traversal *at the same
  /// (approx_math, vector) arithmetic flavor*: the near loop dispatches
  /// through the identical out-of-line kernels (simd/dispatch.hpp) the
  /// traversal used; the far loop always runs the scalar born_far_term in
  /// capture order. Like approx_math, `vector` changes arithmetic, never
  /// the partition — it is absent from PlanKey and stamped into the Born
  /// cache instead.
  void replay(const AtomsTree& ta, const QPointsTree& tq, bool approx_math,
              const simd::VectorParams& vector, std::span<double> node_s,
              std::span<double> atom_s, perf::WorkCounters& work) const;

  // --- Born-result cache (tier 1) ---------------------------------------

  /// Cache the finished Born radii (tree order) and the full phase-A+push
  /// counter contribution after an evaluation at `geometry_epoch` /
  /// `approx_math` / *resolved* `vector`. Returns true when the cache
  /// buffer had to grow.
  bool store_born(std::uint64_t geometry_epoch, bool approx_math,
                  const simd::VectorParams& vector,
                  std::span<const double> born_tree,
                  const perf::WorkCounters& born_work);

  /// Cached radii are exact for the asked-for evaluation: same geometry,
  /// same arithmetic flavor — approx_math AND the resolved vector params
  /// (a width or precision switch changes the radii in the last bits, so
  /// it must repopulate the cache, not serve stale values).
  bool born_valid(std::uint64_t geometry_epoch, bool approx_math,
                  const simd::VectorParams& vector) const {
    return valid_ && born_valid_ && born_geometry_epoch_ == geometry_epoch &&
           born_approx_math_ == approx_math && born_vector_ == vector;
  }

  /// Copy the cached radii into `born_tree` and add the cached phase
  /// counters to `work` (skipping integrals + push entirely).
  void load_born(std::span<double> born_tree,
                 perf::WorkCounters& work) const;

 private:
  bool validate_single(const AtomsTree& ta, const QPointsTree& tq,
                       double threshold) const;
  bool validate_dual(const AtomsTree& ta, const QPointsTree& tq,
                     double threshold) const;

  PlanKey key_{};
  bool valid_ = false;
  std::uint64_t geometry_epoch_ = 0;

  // Capture-order pair lists — also the validate() reference.
  std::vector<std::uint32_t> near_a_, near_q_, far_a_, far_q_;

  // Owner-grouped CSR over the same pairs (stable within owner).
  std::vector<std::uint32_t> owner_;       ///< owner A-node id per group
  std::vector<std::uint32_t> near_begin_;  ///< groups+1, into near_q_sorted_
  std::vector<std::uint32_t> far_begin_;   ///< groups+1, into far_q_sorted_
  std::vector<std::uint32_t> near_q_sorted_, far_q_sorted_;
  std::vector<std::uint32_t> owner_order_;  ///< group execution order
  std::vector<std::uint32_t> chunk_begin_;  ///< owner_order_ chunk bounds
  std::vector<std::uint32_t> run_begin_;    ///< owner_order_ run bounds
  std::vector<std::size_t> chunk_atom_begin_;  ///< atom_s split per chunk
  perf::LocalityCounters locality_{};
  std::uint64_t prefetches_per_replay_ = 0;

  // finalize() scratch (reused capacity).
  std::vector<std::uint32_t> group_of_node_, cursor_;
  std::vector<std::uint64_t> cost_;
  std::size_t capture_cap_mark_ = 0;  ///< list capacities at begin_capture

  perf::WorkCounters base_work_;  ///< capture's Born-traversal counters

  // Tier-1 Born cache.
  bool born_valid_ = false;
  std::uint64_t born_geometry_epoch_ = 0;
  bool born_approx_math_ = false;
  simd::VectorParams born_vector_{};
  std::vector<double> born_tree_;
  perf::WorkCounters born_work_;  ///< full phase A + push counters
};

/// Single-slot plan cache plus its statistics, owned by EvalScratch so
/// plan reuse follows the scratch (and therefore the session) across
/// engines. The statistics accumulate for the scratch's lifetime and are
/// exported by trace::MetricsRegistry::add_plan (see OBSERVABILITY.md).
struct PlanCache {
  InteractionPlan plan;
  perf::PlanCounters stats;
  /// Accumulated locality counters (exported as plan.locality.*): carve
  /// stats folded in per finalize, prefetch/touch events per replay.
  perf::LocalityCounters locality;

  std::size_t footprint_bytes() const { return plan.footprint_bytes(); }
};

}  // namespace octgb::core
