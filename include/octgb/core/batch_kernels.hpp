#pragma once
/// \file batch_kernels.hpp
/// Batched structure-of-arrays inner kernels.
///
/// The paper's related work notes Amber's *vectorized* shared-memory GB
/// ([32], Sosa et al.) and reports its own numbers with "no vectorization
/// used". These kernels are the vectorization-friendly formulation of the
/// two hot loops — the exact leaf×leaf Born integral and the exact
/// leaf×leaf GB energy — written over SoA buffers with no data-dependent
/// branches in the inner loop, so the compiler can auto-vectorize them.
/// They compute exactly the same sums as the scalar kernels up to
/// floating-point reassociation; bench_kernels compares their throughput.

#include <cstddef>
#include <span>

#include "octgb/geom/vec3.hpp"

namespace octgb::core {

/// SoA view of a batch of quadrature points.
struct QPointBatch {
  std::span<const double> x, y, z;     ///< positions
  std::span<const double> wnx, wny, wnz;  ///< weighted normals w·n
  std::size_t size() const { return x.size(); }
};

/// SoA view of a batch of atoms (positions + charges + Born radii).
struct AtomBatch {
  std::span<const double> x, y, z;
  std::span<const double> charge;
  std::span<const double> born;
  std::size_t size() const { return x.size(); }
};

/// Float-stream view of a q-point batch for the mixed-precision kernels
/// (simd/dispatch.hpp): coordinates and weighted normals rounded once to
/// `float` when the tree's derived planes are rebuilt. Only the streamed
/// operands narrow — the pivot atom position and all accumulation stay
/// `double` (see the precision contract in DESIGN.md §2.7).
struct QPointBatchF {
  std::span<const float> x, y, z;
  std::span<const float> wnx, wny, wnz;
  std::size_t size() const { return x.size(); }
};

/// Float-stream view of an atom batch for the mixed-precision GB pair
/// kernel. Born radii deliberately stay `double`: they are computed per
/// evaluation (not per geometry rebuild), feed the exp() argument where
/// float rounding is amplified, and converting them lane-wise inside the
/// kernel costs one instruction per vector.
struct AtomBatchF {
  std::span<const float> x, y, z;
  std::span<const float> charge;
  std::span<const double> born;
  std::size_t size() const { return x.size(); }
};

/// Born surface integral of one atom at (ax, ay, az) against a q-point
/// batch: Σ w·n · (r − a) / |r − a|⁶. Points closer than 1e-6 are skipped
/// branchlessly (their term is multiplied by 0).
double batch_born_integral(double ax, double ay, double az,
                           const QPointBatch& q);

/// Exact GB pair sum of one atom (position, charge qv, radius rv) against
/// an atom batch: Σ q_u qv / f_GB(r², R_u rv). The diagonal (r ≈ 0 with
/// the same atom) is NOT excluded — callers slice batches accordingly
/// (the octree kernels include the self term by design).
double batch_epol_sum(double vx, double vy, double vz, double qv, double rv,
                      const AtomBatch& atoms);

/// Approximate-math variant of batch_born_integral (§V-C): per-term math
/// matches the scalar path's inv_r6(r², approx_math = true), i.e. 1/r⁶
/// via fast_rsqrt, so the batched fastmath mode differs from the scalar
/// fastmath mode only by reassociation.
double batch_born_integral_fast(double ax, double ay, double az,
                                const QPointBatch& q);

/// Approximate-math variant of batch_epol_sum: 1/f_GB via fast_rsqrt and
/// fast_exp, matching the scalar path's approximate inv_f_gb term by term.
double batch_epol_sum_fast(double vx, double vy, double vz, double qv,
                           double rv, const AtomBatch& atoms);

/// Convert AoS Vec3 positions to three SoA arrays (helper for adapters
/// and tests).
void split_soa(std::span<const geom::Vec3> pts, std::span<double> x,
               std::span<double> y, std::span<double> z);

}  // namespace octgb::core
