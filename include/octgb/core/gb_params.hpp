#pragma once
/// \file gb_params.hpp
/// Physical constants and tunables of the Generalized Born model (Eq. 2 of
/// the paper, Still et al. functional form).

#include <cmath>

#include "octgb/simd/types.hpp"

namespace octgb::core {

/// Coulomb constant in kcal·Å/(mol·e²).
inline constexpr double kCoulomb = 332.0636;

/// GB model parameters.
struct GBParams {
  double eps_in = 1.0;     ///< solute (interior) dielectric
  double eps_solv = 80.0;  ///< solvent dielectric (water)

  /// Energy prefactor τ = k_e (1/ε_in − 1/ε_solv); Epol = −(τ/2) Σ q q / f_GB.
  double tau() const { return kCoulomb * (1.0 / eps_in - 1.0 / eps_solv); }
};

/// Inner-kernel selection for the exact near-field loops (leaf×leaf Born
/// integral and leaf×leaf GB energy). `Batched` routes them through the
/// SoA kernels of batch_kernels.hpp (vectorization-friendly, identical
/// sums up to floating-point reassociation); `Scalar` keeps the original
/// AoS loops for A/B comparison and differential testing.
enum class KernelKind { Scalar, Batched };

/// Interaction-plan policy for the EvalScratch compute path (core/plan.hpp).
/// `Auto` caches the Born-phase pair lists (and finished Born radii) in the
/// scratch's PlanCache and replays them whenever the plan key matches —
/// bit-identical to re-traversing, by construction. `Off` always re-runs
/// the recursive traversal; the one-shot compute() wrapper always behaves
/// as Off regardless of this setting (its scratch dies with the call, so a
/// plan could never be reused).
enum class PlanMode { Off, Auto };

/// Tunable approximation parameters of the octree algorithms (§II, §IV).
struct ApproxParams {
  double eps_born = 0.9;  ///< ε for APPROX-INTEGRALS (Born radii)
  double eps_epol = 0.9;  ///< ε for APPROX-EPOL (energy)
  bool approx_math = false;  ///< fast rsqrt/exp kernels (§V-C)
  /// Use the paper's printed admissibility threshold (1+ε)^(1/6) for the
  /// Born phase instead of the default (1+ε). The printed form bounds the
  /// per-term 1/r⁶ ratio by (1+ε) but opens nodes only beyond ~19× the
  /// radius sum at ε = 0.9, which makes the Born phase effectively exact
  /// and cannot produce the paper's reported speedups; the first-power
  /// threshold (opening factor ≈ 3.2) reproduces the speedup shape with
  /// measured energy error well under the paper's 1 % budget (see
  /// DESIGN.md §2 and bench_criterion). Default: false (first power).
  bool strict_born_criterion = false;
  /// Exact near-field kernel implementation. Batched (the default) runs
  /// the leaf×leaf loops over the trees' cached SoA leaf planes; Scalar
  /// is the original AoS formulation, kept selectable for benchmarking
  /// and the differential tests.
  KernelKind kernel = KernelKind::Batched;
  /// Interaction-plan caching for the warm (EvalScratch) compute path;
  /// numerically inert — plan replay reproduces the traversal bit for bit.
  PlanMode plan = PlanMode::Auto;
  /// Explicit-SIMD kernel selection for the Batched near-field loops and
  /// the bin-pair far field (simd/dispatch.hpp). Arithmetic-only, like
  /// approx_math: it never changes which interactions are evaluated, so
  /// it is excluded from the PlanKey and stamped into the Born cache
  /// instead. The default {Auto, Double} resolves to the widest ISA this
  /// build + CPU support, with double streams (deterministic bits per
  /// width). Ignored when `kernel == KernelKind::Scalar`; when
  /// `approx_math` is set the fastmath vector kernels run, and a Mixed
  /// precision request is overridden by approx_math (fastmath already
  /// trades more accuracy than float streams would).
  simd::VectorParams vector;
  /// Locality-aware plan execution (DESIGN.md §2.11): carve replay chunks
  /// along Morton leaf-run boundaries (streaming access instead of
  /// cost-sorted jumps), software-prefetch the next owner's planes, and
  /// first-touch the scratch accumulators from the workers that will write
  /// them. Numerically inert — only the iteration *grouping* changes, never
  /// the per-slot accumulation order — so it is excluded from the svc
  /// artifact digest like PlanMode; it does sit in the PlanKey, since
  /// flipping it changes the carving and must recapture.
  bool locality = true;

  /// Threshold k used by born_far_enough: far iff (d+s) ≤ k·(d−s).
  double born_threshold() const;
};

inline double ApproxParams::born_threshold() const {
  return strict_born_criterion ? std::pow(1.0 + eps_born, 1.0 / 6.0)
                               : 1.0 + eps_born;
}

/// The Still f_GB function: sqrt(r² + R_i R_j exp(−r²/(4 R_i R_j))).
inline double f_gb(double r2, double ri_rj) {
  return std::sqrt(r2 + ri_rj * std::exp(-r2 / (4.0 * ri_rj)));
}

/// Far-field admissibility for the Born integral (§II): nodes at center
/// distance d with radii ra, rq are far enough for relative error (1+ε)
/// in 1/r⁶ iff d − (ra+rq) > 0 and (d + ra + rq)/(d − ra − rq) ≤ (1+ε)^(1/6).
inline bool born_far_enough(double d, double ra, double rq,
                            double one_plus_eps_pow) {
  const double s = ra + rq;
  const double den = d - s;
  return den > 0.0 && (d + s) <= one_plus_eps_pow * den;
}

/// Far-field admissibility for the energy phase (Fig. 3):
/// d > (ru + rv)(1 + 2/ε) bounds the relative error of evaluating f_GB at
/// the center distance instead of per-pair distances by ≈ ε.
inline bool epol_far_enough(double d, double ru, double rv, double eps) {
  return d > (ru + rv) * (1.0 + 2.0 / eps);
}

}  // namespace octgb::core
