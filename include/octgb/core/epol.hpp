#pragma once
/// \file epol.hpp
/// The paper's Fig. 3 kernel: APPROX-EPOL. Every T_A leaf V interacts with
/// the whole tree; far node pairs are approximated through *Born-radius
/// binning* — each node U carries q_U[k], the total charge of its atoms
/// whose Born radius falls in the geometric bin
/// [Rmin(1+ε)^k, Rmin(1+ε)^(k+1)), and a far (U,V) pair contributes one
/// f_GB evaluation per non-empty bin pair instead of one per atom pair.
///
/// Also provides the atom-based work division variant (§IV): dividing
/// *atoms* instead of leaves makes the admissibility decisions depend on
/// the segment boundaries, so the error drifts with P — the effect the
/// paper reports and bench_workdiv reproduces.

#include <cstdint>
#include <span>
#include <vector>

#include "octgb/core/gb_params.hpp"
#include "octgb/core/trees.hpp"
#include "octgb/perf/counters.hpp"
#include "octgb/simd/types.hpp"

namespace octgb::core {

/// Per-node charge-by-Born-radius-bin table, built once per energy
/// evaluation (Born radii must already be known).
struct EpolContext {
  double rmin = 1.0;          ///< minimum Born radius over all atoms
  double log1pe = 1.0;        ///< log(1+ε)
  int nbins = 1;              ///< M = ⌈log_{1+ε}(Rmax/Rmin)⌉
  /// Flattened [node][bin] charge sums.
  std::vector<double> bins;
  /// Inclusive nonzero-bin range per node (skip empty bins in the M² loop).
  std::vector<std::int16_t> bin_lo, bin_hi;
  /// Representative radius per bin: Rmin(1+ε)^k (the paper's choice).
  std::vector<double> rep;

  /// Bin index of a Born radius.
  int bin_of(double born) const;

  std::size_t footprint_bytes() const;

  /// Build from Born radii in tree order.
  static EpolContext build(const AtomsTree& ta,
                           std::span<const double> born_tree, double eps_epol);

  /// In-place rebuild reusing this context's allocated storage (the warm
  /// path of GBEngine::compute(EvalScratch&)). Returns true when any
  /// buffer's capacity had to grow — i.e. an allocation happened; repeated
  /// rebuilds for the same tree shape return false.
  bool rebuild(const AtomsTree& ta, std::span<const double> born_tree,
               double eps_epol);
};

/// Node-based division: energy from the interaction of every atom under
/// the given T_A leaves (the "V" side) with the entire tree. Summing over
/// a partition of all leaves yields the full ordered-pair sum of Eq. 2,
/// diagonal included. Thread-safe; parallelizes over leaves. `kernel`
/// selects the exact leaf×leaf implementation (SoA batch vs scalar AoS);
/// `vector` additionally routes the Batched near field and the node-path
/// bin-pair far field through the explicit-SIMD kernels
/// (simd/dispatch.hpp) — resolved internally, callers pass the raw
/// config value.
double approx_epol(const AtomsTree& ta, const EpolContext& ctx,
                   std::span<const double> born_tree,
                   std::span<const std::uint32_t> v_leaf_ids, double eps_epol,
                   bool approx_math, const GBParams& gb,
                   perf::WorkCounters& counters,
                   KernelKind kernel = KernelKind::Batched,
                   const simd::VectorParams& vector = {});

/// Atom-based division: energy from the interaction of atoms in tree
/// positions [atom_begin, atom_end) with the entire tree.
double approx_epol_atom_based(const AtomsTree& ta, const EpolContext& ctx,
                              std::span<const double> born_tree,
                              std::uint32_t atom_begin, std::uint32_t atom_end,
                              double eps_epol, bool approx_math,
                              const GBParams& gb,
                              perf::WorkCounters& counters,
                              KernelKind kernel = KernelKind::Batched,
                              const simd::VectorParams& vector = {});

/// Cross-tree energy between two *disjoint* atom sets, each with its own
/// octree, Born radii, and bin table: every leaf of `tb` (the "V" side —
/// typically the small, moving body) interacts with the whole of `ta`,
/// with the same near/far admissibility and Born-radius binning as
/// approx_epol. Returns −τ Σ_{i∈A, j∈B} q_i q_j / f_GB — the factor 2
/// relative to approx_epol's −τ/2 accounts for Eq. 2's ordered-pair
/// convention counting every unordered A–B pair twice; there is no
/// diagonal because the sets are disjoint.
///
/// This is the per-pose kernel of ScoringSession's CrossScreen mode: both
/// bin tables depend only on topology + radii (not positions), so they
/// survive rigid refits of either tree unchanged.
double approx_epol_cross(const AtomsTree& ta, const EpolContext& ctx_a,
                         std::span<const double> born_a, const AtomsTree& tb,
                         const EpolContext& ctx_b,
                         std::span<const double> born_b, double eps_epol,
                         bool approx_math, const GBParams& gb,
                         perf::WorkCounters& counters,
                         KernelKind kernel = KernelKind::Batched,
                         const simd::VectorParams& vector = {});

}  // namespace octgb::core
