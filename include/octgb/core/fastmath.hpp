#pragma once
/// \file fastmath.hpp
/// Approximate math kernels (§V-C of the paper: "approximate math for
/// computing square root and power functions" trades 4–5 % energy error
/// for a ×1.42 speedup).
///
/// fast_rsqrt: the bit-level initial guess (double-precision variant of the
/// classic trick) refined with two Newton–Raphson steps (~0.0005 % error).
/// fast_exp: Schraudolph's exponent-field approximation (~2–4 % error) —
/// this is where the visible energy shift comes from.

#include <bit>
#include <cstdint>
#include <limits>

namespace octgb::core {

/// Approximate 1/sqrt(x) for x > 0.
inline double fast_rsqrt(double x) {
  const std::uint64_t i =
      0x5fe6eb50c7b537a9ULL - (std::bit_cast<std::uint64_t>(x) >> 1);
  double y = std::bit_cast<double>(i);
  y = y * (1.5 - 0.5 * x * y * y);  // Newton 1
  y = y * (1.5 - 0.5 * x * y * y);  // Newton 2
  return y;
}

/// Approximate exp(x); usable range |x| < 700.
inline double fast_exp(double x) {
  // Schraudolph 1999 adapted to binary64: e^x = 2^(x/ln2); write the
  // exponent field directly and let the mantissa bits interpolate.
  constexpr double a = 4503599627370496.0 / 0.6931471805599453;  // 2^52/ln2
  constexpr double b = 4503599627370496.0 * 1023.0;              // bias
  constexpr double c = 60801.0 * 4294967296.0;  // mean-error correction
  const double t = a * x + (b - c);
  // !(t > 0) also catches NaN inputs (exp(NaN) would otherwise be a UB
  // float→integer cast); the upper clamp is the bit pattern of +inf —
  // below 2^63, so the cast stays defined for every admitted t.
  if (!(t > 0.0)) return 0.0;
  if (t >= 9218868437227405312.0) return std::numeric_limits<double>::infinity();
  return std::bit_cast<double>(static_cast<std::uint64_t>(t));
}

/// x^(-3) via rsqrt: x^(-3) = (1/sqrt(x))^6.
inline double fast_inv_cube(double x) {
  const double r = fast_rsqrt(x);
  const double r2 = r * r;
  return r2 * r2 * r2;
}

/// Approximate x^(-1/3) (used by the Born radius finalization):
/// x^(-1/3) = (1/sqrt(x))^(2/3) — computed as rsqrt(cbrt estimate) with a
/// Newton step on y³ = 1/x.
inline double fast_inv_cbrt(double x) {
  // Initial guess from exponent manipulation: i_y ≈ C − i_x/3 with C fixed
  // so x = 1 maps to exactly 1 (C = bits(1.0) + bits(1.0)/3). The guess is
  // within ~15 % across the normal range; three Newton iterations
  // y ← y(4 − x y³)/3 drive it to ~1e-12 relative error.
  std::uint64_t i = std::bit_cast<std::uint64_t>(x);
  i = 0x5540000000000000ULL - i / 3;
  double y = std::bit_cast<double>(i);
  y = y * (4.0 - x * y * y * y) * (1.0 / 3.0);
  y = y * (4.0 - x * y * y * y) * (1.0 / 3.0);
  y = y * (4.0 - x * y * y * y) * (1.0 / 3.0);
  return y;
}

}  // namespace octgb::core
