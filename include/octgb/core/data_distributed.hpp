#pragma once
/// \file data_distributed.hpp
/// The data-distribution variant the paper names as future work (§IV-A,
/// §VI: "Distributing data as well as computation is also an interesting
/// approach to explore").
///
/// Instead of replicating the molecule on every rank, rank i owns only
/// (a) the i-th segment of T_Q leaves with their quadrature payloads,
/// (b) the i-th segment of atoms, and (c) the octree *skeleton* (node
/// centroids/radii/ranges — linear in the node count, tiny next to the
/// payloads). Far-field interactions only need the skeleton plus node
/// aggregates; exact near-field interactions need the *ghost* atoms /
/// q-points of the leaves each rank's traversal actually reaches — the
/// local essential tree. This module measures those ghost sets exactly by
/// replaying the admissibility decisions of APPROX-INTEGRALS and
/// APPROX-EPOL, and prices the resulting exchange with the machine model.
///
/// Energies are identical to the replicated algorithm by construction
/// (same kernels, same segmentation); what changes is the measured
/// memory-per-rank and the added ghost-exchange communication — the
/// tradeoff bench_data_distribution quantifies.

#include <cstdint>
#include <vector>

#include "octgb/core/engine.hpp"
#include "octgb/perf/machine_model.hpp"

namespace octgb::core {

/// Per-rank accounting of the data-distributed layout.
struct DataDistRank {
  std::size_t owned_atoms = 0;
  std::size_t owned_qpoints = 0;
  std::size_t ghost_atoms = 0;    ///< near-field atoms fetched from peers
  std::size_t ghost_qpoints = 0;  ///< near-field q-points fetched from peers
  std::size_t owned_bytes = 0;    ///< payloads this rank stores
  std::size_t ghost_bytes = 0;    ///< payloads exchanged per evaluation
  std::size_t skeleton_bytes = 0; ///< replicated tree structure
};

/// Result of a data-distributed evaluation.
struct DataDistResult {
  double epol = 0.0;
  std::vector<DataDistRank> ranks;
  /// Modeled extra communication for the ghost exchange (critical path).
  double ghost_exchange_seconds = 0.0;
  /// bytes/rank of the replicated baseline, for comparison.
  std::size_t replicated_bytes_per_rank = 0;

  std::size_t max_rank_bytes() const;
};

/// Evaluate with data distribution over `ranks` ranks; physics identical
/// to simulate_cluster with the same segmentation.
DataDistResult run_data_distributed(const GBEngine& engine, int ranks,
                                    const perf::MachineModel& machine = {});

/// Measurement helper (exposed for tests): T_A leaf ids whose atoms the
/// Born-phase traversal of the given T_Q leaves touches *exactly* (the
/// near field — everything else is served by the skeleton).
std::vector<std::uint32_t> collect_near_ta_leaves(
    const AtomsTree& ta, const QPointsTree& tq,
    std::span<const std::uint32_t> q_leaf_ids, double eps_born,
    bool strict_criterion = false);

/// T_A leaf ids whose atoms the Epol traversal of the given V leaves
/// touches exactly.
std::vector<std::uint32_t> collect_near_epol_leaves(
    const AtomsTree& ta, std::span<const std::uint32_t> v_leaf_ids,
    double eps_epol);

}  // namespace octgb::core
