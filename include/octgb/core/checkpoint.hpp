#pragma once
/// \file checkpoint.hpp
/// Superstep checkpointing for the elastic hybrid driver (DESIGN.md §2.5).
///
/// The elastic driver divides each Epol phase into a *fixed grid* of tasks
/// and checkpoints every finished task result into a CheckpointStore — the
/// in-process stand-in for stable storage (a parallel filesystem or burst
/// buffer on a real cluster). When a rank dies, survivors read the store to
/// learn which task results are already durable and recompute only the
/// lost ones. Because each task result is computed deterministically and
/// combined in fixed task order, recovery reproduces the fault-free Epol
/// bit for bit (the property faults_test and the CI chaos job enforce).
///
/// The wire format is defensive: decode_checkpoint() returns an error (it
/// never yields partial state or UB) on bad magic, short reads, or counts
/// that would overflow the buffer — the same hardening contract as
/// core/persist.hpp, since a checkpoint read happens exactly when the
/// system is already degraded.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "octgb/util/expected.hpp"

namespace octgb::core {

/// One durable unit of superstep state: the result of `task` within
/// `phase`, as a flat array of doubles (all Epol phase results — partial
/// integrals, Born-radius segments, energy partials — flatten to this).
struct SuperstepCheckpoint {
  std::string phase;
  std::uint64_t task = 0;
  std::vector<double> data;

  bool operator==(const SuperstepCheckpoint&) const = default;
};

/// Serialize to the "octgbsck" tagged wire format.
std::string encode_checkpoint(const SuperstepCheckpoint& c);

/// Parse a checkpoint; returns a descriptive error on bad magic, bad
/// version, truncation at any boundary, or an implausible payload count.
util::Expected<SuperstepCheckpoint, std::string> decode_checkpoint(
    std::string_view bytes);

/// Stable storage shared by every rank. Two modes:
///
///   * in-memory (default ctor) — a thread-safe key → bytes map that
///     survives *simulated* rank death (it lives on the launching
///     thread's stack); the PR-1..8 in-process harness.
///   * directory-backed (ctor with a path) — each key is a file written
///     via util::io::write_file_atomic (tmp + rename), so it survives
///     *real* rank death across a process boundary: a rank SIGKILLed
///     mid-put leaves either the old value or the complete new one,
///     never a torn file. This is what the out-of-process elastic runs
///     under tools/octgb_launch use; every rank process opens the same
///     job-directory store.
///
/// All operations are linearizable (the map by mutex, the directory by
/// rename atomicity).
class CheckpointStore {
 public:
  /// In-memory store.
  CheckpointStore() = default;

  /// Directory-backed store rooted at `dir` (created if absent).
  explicit CheckpointStore(std::string dir);

  /// Store `value` under `key`, replacing any previous value.
  void put(const std::string& key, std::string value);

  /// Fetch the value under `key`; nullopt when absent.
  std::optional<std::string> get(const std::string& key) const;

  /// True when `key` has a value.
  bool contains(const std::string& key) const;

  /// Remove every entry (start of a fresh run).
  void clear();

  /// Number of stored entries.
  std::size_t size() const;

  /// Canonical key for a (phase, task) checkpoint: "phase/task".
  static std::string key_of(std::string_view phase, std::uint64_t task);

  /// Encode + put under key_of(c.phase, c.task).
  void put_checkpoint(const SuperstepCheckpoint& c);

  /// Get + decode; nullopt when absent *or* undecodable (a corrupt
  /// checkpoint is treated as a missing one — the task is recomputed).
  std::optional<SuperstepCheckpoint> get_checkpoint(std::string_view phase,
                                                    std::uint64_t task) const;

  /// Lifetime counters for recovery metrics (checkpoint.* counters).
  std::uint64_t puts() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  /// Directory of a file-backed store; empty for the in-memory mode.
  const std::string& directory() const { return dir_; }

 private:
  std::string file_of(const std::string& key) const;

  mutable std::mutex mu_;
  std::string dir_;  ///< empty → in-memory mode
  std::unordered_map<std::string, std::string> map_;
  mutable std::uint64_t puts_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace octgb::core
