#pragma once
/// \file workdiv.hpp
/// Static work division across ranks (§IV-A, "explicit static load
/// balancing"): contiguous segmentation of leaf sequences and atom ranges.
///
/// The paper divides *leaf nodes evenly by count*; we also provide a
/// weighted split (balancing the number of points under the leaves), used
/// by the load-balancing ablation.

#include <cstdint>
#include <span>
#include <vector>

#include "octgb/octree/octree.hpp"

namespace octgb::core {

/// Contiguous index range [begin, end).
struct Segment {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t size() const { return end - begin; }
};

/// i-th of P even segments of [0, n) (remainder spread over the first
/// segments — the ⌈n/P⌉ division of the paper).
Segment even_segment(std::size_t n, int parts, int index);

/// Split a leaf sequence into P contiguous segments balanced by the
/// number of points under each leaf (weighted extension).
std::vector<Segment> weighted_leaf_segments(const octree::Octree& tree,
                                            std::span<const std::uint32_t> leaves,
                                            int parts);

}  // namespace octgb::core
