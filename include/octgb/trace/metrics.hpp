#pragma once
/// \file metrics.hpp
/// MetricsRegistry — one named-metric interface over the repo's three
/// counter families: perf::WorkCounters (kernel operation counts),
/// scheduler spawn/steal statistics, and mpp per-rank traffic
/// (perf::CommCounters). Benches fill a registry per run and dump it as
/// flat JSON or CSV next to their figure CSVs (`--metrics-out`), so a
/// regression harness can diff counter totals without scraping tables.
///
/// Metric names follow the dotted hierarchy documented in
/// OBSERVABILITY.md: `<subsystem>.<counter>[.rank<r>[.worker<w>]]`, e.g.
/// `born.exact.rank3`. Integer metrics (all operation counts) are stored
/// and printed as exact 64-bit integers — totals are bit-identical to the
/// WorkCounters they came from, traced or not.

#include <cstdint>
#include <map>
#include <string>

#include "octgb/perf/counters.hpp"
#include "octgb/perf/machine_model.hpp"

namespace octgb::trace {

/// Flat map of named metrics with exact-integer and real flavours.
class MetricsRegistry {
 public:
  /// One metric value: either an exact 64-bit count or a real number.
  struct Value {
    bool is_integer = true;  ///< discriminator for i / d
    std::uint64_t i = 0;     ///< exact count (is_integer)
    double d = 0.0;          ///< real value (!is_integer)
  };

  /// Accumulate an integer count (creates the metric at 0 first).
  void add(const std::string& name, std::uint64_t v);
  /// Accumulate a real value; promotes an existing integer metric.
  void add(const std::string& name, double v);
  /// Overwrite with an integer count.
  void set(const std::string& name, std::uint64_t v);
  /// Overwrite with a real value.
  void set(const std::string& name, double v);

  /// True when `name` exists.
  bool contains(const std::string& name) const;
  /// Exact integer value (0 when missing; truncates a real metric).
  std::uint64_t get_int(const std::string& name) const;
  /// Value as double (0.0 when missing).
  double get_real(const std::string& name) const;

  /// Accumulate every WorkCounters field under `prefix` (e.g.
  /// prefix "rank0" → "born.exact.rank0" … per the OBSERVABILITY.md
  /// schema; empty prefix drops the suffix).
  void add_work(const std::string& prefix, const perf::WorkCounters& w);
  /// Accumulate comm traffic counters under `prefix`.
  void add_comm(const std::string& prefix, const perf::CommCounters& c);
  /// Accumulate interaction-plan cache counters under `prefix`
  /// ("plan.builds" … per the OBSERVABILITY.md schema).
  void add_plan(const std::string& prefix, const perf::PlanCounters& p);
  /// Record the resolved explicit-SIMD kernel configuration under
  /// `prefix`: sets "kernel.simd.lanes" / "kernel.simd.mixed" to the
  /// resolved width and precision mode, and bumps the per-width
  /// "kernel.simd.evals.<isa>" counter once per call (one call per
  /// evaluation by convention; see OBSERVABILITY.md).
  void add_simd(const std::string& prefix, const char* isa_name, int lanes,
                bool mixed);
  /// Accumulate scoring-service counters under `prefix` ("svc.submitted"
  /// … per the OBSERVABILITY.md `svc.*` schema).
  void add_svc(const std::string& prefix, const perf::ServiceCounters& s);
  /// Accumulate octree-construction counters under `prefix`
  /// ("tree.build.morton" … per the OBSERVABILITY.md `tree.build.*`
  /// schema).
  void add_tree_build(const std::string& prefix,
                      const perf::TreeBuildCounters& t);
  /// Accumulate scheduler statistics under `prefix`. Raw integers rather
  /// than ws::SchedulerStats so trace/ does not depend on ws/ (which
  /// depends back on trace/ for steal events).
  void add_scheduler(const std::string& prefix, std::uint64_t spawns,
                     std::uint64_t steals, std::uint64_t steal_attempts,
                     std::uint64_t executed);
  /// Accumulate the tiered steal classification under `prefix`
  /// ("ws.steal.local" … per the OBSERVABILITY.md `ws.steal.*` schema).
  /// Raw integers for the same trace/ws layering reason as add_scheduler.
  void add_steal_tiers(const std::string& prefix, std::uint64_t local,
                       std::uint64_t socket, std::uint64_t remote,
                       std::uint64_t offblock);
  /// Accumulate locality-aware plan-execution counters under `prefix`
  /// ("plan.locality.runs" … per the OBSERVABILITY.md `plan.locality.*`
  /// schema), plus the derived real metric "plan.locality.mean_run_length".
  void add_locality(const std::string& prefix,
                    const perf::LocalityCounters& l);

  /// Accumulate every metric of `other` into this registry.
  void merge(const MetricsRegistry& other);

  /// Number of metrics.
  std::size_t size() const { return metrics_.size(); }
  /// True when no metric has been recorded.
  bool empty() const { return metrics_.empty(); }
  /// Name-sorted view of all metrics.
  const std::map<std::string, Value>& items() const { return metrics_; }

  /// Render as one flat JSON object, keys sorted, integers exact.
  std::string json() const;
  /// Render as a `metric,value` CSV (RFC-4180 quoting), keys sorted.
  std::string csv() const;
  /// Write json() to a file; false on I/O failure.
  bool save_json(const std::string& path) const;
  /// Write csv() to a file; false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::map<std::string, Value> metrics_;
};

}  // namespace octgb::trace
