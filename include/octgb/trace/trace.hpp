#pragma once
/// \file trace.hpp
/// Phase-level tracing: a low-overhead, thread-local span recorder.
///
/// The paper's evaluation (§V) is entirely about *where time goes* — Born
/// vs Epol phase splits, steal counts, per-rank balance — so every hot
/// path is instrumented with named spans (`OCTGB_SPAN("born.traversal")`),
/// counter tracks, and instant markers. Recording is gated by one global
/// flag read with a single relaxed atomic load: with tracing disabled
/// (the default) every tracing call is a branch-not-taken and performs
/// **no allocation and no clock read** (tests/trace_test.cpp asserts
/// this), so the instrumentation can stay in the kernels permanently.
///
/// Enabling: set `EngineConfig::trace.enabled`, export `OCTGB_TRACE=1`,
/// or call `Tracer::instance().set_enabled(true)` before the run. Every
/// thread appends events to its own buffer (registered lazily, mutex only
/// on first use per thread); `Tracer::write_chrome_trace()` merges the
/// buffers into chrome://tracing JSON loadable in Perfetto. The span
/// taxonomy and the metric name schema are documented in OBSERVABILITY.md.
///
/// Thread-safety contract: recording is wait-free per thread and safe
/// under the ws scheduler and mpp ranks; `write_chrome_trace()`, `clear()`
/// and `set_enabled()` must be called quiescently (no concurrent
/// recording), e.g. after `Scheduler::run()` / `Runtime::run()` return.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// Observability: the span recorder (this header) and the metrics
/// export registry (metrics.hpp). Handbook: OBSERVABILITY.md.
namespace octgb::trace {

/// Implementation details of the span recorder; not part of the API.
namespace detail {

/// Global recording switch. Read on every tracing call with a relaxed
/// load; written only by Tracer::set_enabled (and the OCTGB_TRACE env
/// check at static initialization).
extern std::atomic<bool> g_enabled;

/// What one recorded event is.
enum class EventKind : std::uint8_t {
  Complete,  ///< a finished span: [ts_ns, ts_ns + dur_ns)
  Counter,   ///< a sampled value on a named counter track
  Instant    ///< a point event (e.g. one successful steal)
};

/// One recorded event. `name` must have static storage duration (string
/// literals only) — events store the pointer, never a copy.
struct Event {
  const char* name = nullptr;          ///< static-storage label
  EventKind kind = EventKind::Instant; ///< event discriminator
  std::int32_t pid = 0;                ///< track group (rank id)
  std::int32_t tid = 0;                ///< track within the group (thread)
  std::int64_t ts_ns = 0;              ///< start, ns since the tracer epoch
  std::int64_t dur_ns = 0;             ///< Complete events only
  double value = 0.0;                  ///< Counter events only
};

/// Nanoseconds since the tracer's steady-clock epoch.
std::int64_t now_ns();

/// Append one event to the calling thread's buffer (drops and counts the
/// event once the per-thread capacity is reached).
void record(const Event& e);

/// The (pid, tid) the calling thread's events are attributed to,
/// honouring any active VirtualThreadScope override.
std::pair<std::int32_t, std::int32_t> current_ids();

}  // namespace detail

/// True when tracing is recording. One relaxed atomic load — callable
/// from any hot loop.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Process-wide trace recorder singleton: owns the per-thread event
/// buffers, track names, and the exporters.
class Tracer {
 public:
  /// The process-wide tracer.
  static Tracer& instance();

  /// Turn recording on or off. Quiescent-only (see file contract).
  void set_enabled(bool on);

  /// Drop all recorded events (buffers and track names survive so
  /// long-lived threads keep their identity). Quiescent-only.
  void clear();

  /// Total events currently buffered across all threads.
  std::size_t event_count() const;

  /// Events dropped because a per-thread buffer hit its capacity.
  std::uint64_t dropped_count() const;

  /// Cap on buffered events per thread (default 2^20). Oversized runs
  /// drop the tail and count it in dropped_count().
  void set_max_events_per_thread(std::size_t n);

  /// Display name for a pid track group ("rank 3"). Quiescent-only.
  void set_process_name(std::int32_t pid, std::string name);

  /// Write all buffered events as chrome://tracing JSON ("traceEvents"
  /// array of X/C/i events plus name metadata) — loadable in Perfetto or
  /// chrome://tracing. Quiescent-only.
  void write_chrome_trace(std::ostream& os) const;

  /// write_chrome_trace() to a file; returns false on I/O failure.
  bool save_chrome_trace(const std::string& path) const;

 private:
  Tracer() = default;

  friend struct ThreadBufferAccess;

  /// One thread's (or virtual track's) append-only event log.
  struct ThreadBuffer {
    std::vector<detail::Event> events;  ///< this thread's events
    std::uint64_t dropped = 0;          ///< events beyond capacity
    std::int32_t pid = 0;               ///< default attribution group
    std::int32_t tid = 0;               ///< unique across the process
  };

  ThreadBuffer* register_thread();  // called once per thread, lazily
  void set_thread_name_locked(std::int32_t pid, std::int32_t tid,
                              std::string name);

  mutable std::mutex mu_;  // guards buffers_ vector + name maps
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<std::int32_t, std::string> process_names_;
  std::map<std::pair<std::int32_t, std::int32_t>, std::string> thread_names_;
  std::atomic<std::int32_t> next_tid_{0};
  std::atomic<std::size_t> max_events_per_thread_{std::size_t{1} << 20};

  friend std::int64_t detail::now_ns();
  friend void detail::record(const detail::Event& e);
  friend std::pair<std::int32_t, std::int32_t> detail::current_ids();
  friend void set_thread_identity(std::int32_t pid, std::string name);
  friend std::int32_t current_pid();
  friend class VirtualThreadScope;
};

/// RAII scope: records one Complete event covering its lifetime. No-op
/// (no clock read, no allocation) when tracing is disabled at entry.
class Span {
 public:
  /// Open a span named `name` (static-storage string literal).
  explicit Span(const char* name) {
    if (enabled()) {
      name_ = name;
      start_ns_ = detail::now_ns();
    }
  }
  /// Closes the span: records one Complete event if it was opened.
  ~Span() {
    if (name_ == nullptr) return;
    detail::Event e;
    e.name = name_;
    e.kind = detail::EventKind::Complete;
    e.ts_ns = start_ns_;
    e.dur_ns = detail::now_ns() - start_ns_;
    const auto ids = detail::current_ids();
    e.pid = ids.first;
    e.tid = ids.second;
    detail::record(e);
  }

  Span(const Span&) = delete;             ///< non-copyable
  Span& operator=(const Span&) = delete;  ///< non-assignable

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

/// Record a sampled value on the counter track `name` (e.g. cumulative
/// bytes sent). No-op when tracing is disabled.
void counter(const char* name, double value);

/// Record a point event (e.g. one successful steal). No-op when tracing
/// is disabled.
void instant(const char* name);

/// Attribute the calling thread's future events to track group `pid`
/// with display name `name` (e.g. rank threads, ws workers). No-op when
/// tracing is disabled.
void set_thread_identity(std::int32_t pid, std::string name);

/// The pid the calling thread's events go to (0 when unset or disabled).
/// Lets child threads (ws workers) inherit their creator's rank group.
std::int32_t current_pid();

/// Reattributes events recorded in its scope to a different pid — used by
/// the cluster simulator, where one OS thread executes many simulated
/// ranks in turn and each rank should appear as its own Perfetto track
/// group. Nestable; restores the previous attribution on destruction.
/// No-op when tracing is disabled at entry.
class VirtualThreadScope {
 public:
  /// Attribute enclosed events to `pid`, displayed as `name`.
  VirtualThreadScope(std::int32_t pid, std::string name);
  /// Restores the previous attribution.
  ~VirtualThreadScope();

  /// non-copyable
  VirtualThreadScope(const VirtualThreadScope&) = delete;
  /// non-assignable
  VirtualThreadScope& operator=(const VirtualThreadScope&) = delete;

 private:
  bool active_ = false;
  std::int32_t saved_pid_ = 0;
  bool saved_override_ = false;
};

/// Token-paste helper for OCTGB_TRACE_CAT (second expansion step).
#define OCTGB_TRACE_CAT2(a, b) a##b
/// Two-step token paste so OCTGB_SPAN's `__LINE__` expands first, which
/// lets several OCTGB_SPANs coexist in one scope.
#define OCTGB_TRACE_CAT(a, b) OCTGB_TRACE_CAT2(a, b)

/// Open a span for the rest of the enclosing scope:
///   OCTGB_SPAN("born.traversal");
#define OCTGB_SPAN(name) \
  ::octgb::trace::Span OCTGB_TRACE_CAT(octgb_trace_span_, __LINE__)(name)

}  // namespace octgb::trace
