#pragma once
/// \file elements.hpp
/// Chemical element data: Bondi van-der-Waals radii and masses for the
/// elements that occur in proteins (plus a generic fallback). The intrinsic
/// atom radius feeding the Born-radius clamp is the Bondi vdW radius.

#include <cstdint>
#include <string>
#include <string_view>

namespace octgb::mol {

/// Atomic numbers for the elements the library knows natively.
enum class Element : std::uint8_t {
  Unknown = 0,
  H = 1,
  C = 6,
  N = 7,
  O = 8,
  P = 15,
  S = 16,
  Fe = 26,
  Zn = 30,
};

/// Bondi van-der-Waals radius in Å. Unknown elements get 1.7 Å (carbon).
double vdw_radius(Element e);

/// Atomic mass in Daltons (unknown → 12).
double atomic_mass(Element e);

/// One- or two-letter element symbol ("C", "Fe"); Unknown → "X".
std::string_view element_symbol(Element e);

/// Parse a PDB element field or leading characters of an atom name.
/// Unrecognized symbols map to Element::Unknown.
Element parse_element(std::string_view symbol);

/// Guess the element from a PDB atom name (columns 13–16), e.g. " CA " → C,
/// "1HB " → H, "FE  " → Fe.
Element element_from_atom_name(std::string_view name);

}  // namespace octgb::mol
