#pragma once
/// \file generate.hpp
/// Synthetic molecule generators.
///
/// The paper evaluates on the ZDock Benchmark Suite 2.0 (84 bound
/// complexes, 400–16,000 atoms) plus two virus structures (BTV, 6M atoms;
/// CMV shell, 509,640 atoms). Those inputs are not redistributable here, so
/// we synthesize molecules with the same *statistics the algorithms are
/// sensitive to*: globular packing at protein density (≈ 0.0085 residues/Å³)
/// for the benchmark proteins, and a hollow icosahedral shell for the
/// viruses. Generation is deterministic: the same name/seed always yields
/// bit-identical molecules.

#include <cstdint>

#include "octgb/mol/molecule.hpp"

namespace octgb::mol {

/// Parameters for the globular synthetic protein generator.
struct ProteinSpec {
  std::size_t target_atoms = 1000;  ///< approximate atom count (± 1 residue)
  std::uint64_t seed = 1;           ///< deterministic stream seed
  double compactness = 1.0;         ///< >1 = denser packing, <1 = looser
};

/// Generate a globular protein-like molecule: a self-avoiding Cα random
/// walk confined to a sphere sized for protein density, with residue
/// templates (backbone + side-chain atoms, CHARMM-like partial charges)
/// attached at each Cα. Net charge is a small integer.
Molecule generate_protein(const ProteinSpec& spec);

/// Parameters for the icosahedral virus-shell generator.
struct ShellSpec {
  std::size_t target_atoms = 100000;  ///< approximate atom count
  std::uint64_t seed = 7;
  double thickness = 18.0;  ///< shell wall thickness (Å), capsid-like
};

/// Generate a hollow capsid shell: protein-like residue clusters placed on
/// a Fibonacci lattice over a sphere whose radius is chosen so the wall has
/// protein density. This is the stand-in for BTV / the CMV shell.
Molecule generate_virus_shell(const ShellSpec& spec);

}  // namespace octgb::mol
