#pragma once
/// \file zdock.hpp
/// Registry of the benchmark molecules used in the paper's figures.
///
/// The paper runs the bound proteins of the ZDock Benchmark Suite 2.0
/// (atom counts 400–16,000) plus two virus structures. The suite itself is
/// not redistributable, so each entry here pairs the paper's molecule name
/// with a plausible atom count (anchored to the sizes the paper states:
/// smallest ≈ 436, largest = 16,301, Gromacs' best case at 2,260) and a
/// deterministic per-name seed; make_benchmark_molecule() synthesizes a
/// globular protein of that size. See DESIGN.md §2 for why this preserves
/// the evaluated behaviour.

#include <span>
#include <string_view>

#include "octgb/mol/molecule.hpp"

namespace octgb::mol {

/// One benchmark molecule: paper name + atom count.
struct BenchmarkEntry {
  const char* name;
  std::size_t atoms;
};

/// The 42 ZDock bound proteins that appear in Figures 8 and 9, in the
/// paper's sorted-by-size order.
std::span<const BenchmarkEntry> zdock_set();

/// Find an entry by name; nullptr if absent.
const BenchmarkEntry* find_benchmark(std::string_view name);

/// Synthesize the molecule for a registry entry (or for any name with an
/// explicit atom count). Deterministic per name.
Molecule make_benchmark_molecule(std::string_view name);
Molecule make_benchmark_molecule(std::string_view name, std::size_t atoms);

/// Virus structures (paper §V-B, §V-F). `scale` in (0, 1] shrinks the atom
/// count for time-constrained environments; 1.0 is paper scale.
Molecule make_btv(double scale = 0.05);  ///< Blue Tongue Virus, 6M atoms at scale 1
Molecule make_cmv(double scale = 0.25);  ///< Cucumber Mosaic Virus shell, 509,640 atoms at scale 1

/// Paper-scale atom counts.
inline constexpr std::size_t kBtvAtoms = 6000000;
inline constexpr std::size_t kCmvAtoms = 509640;

}  // namespace octgb::mol
