#pragma once
/// \file pdb.hpp
/// PDB file reader/writer (ATOM/HETATM fixed-column records).
///
/// Charges are not part of standard PDB; on load each atom receives a
/// partial charge from a CHARMM-like per-atom-name table
/// (assign_charges_and_radii), the same table the synthetic generator uses,
/// so files written by the generator round-trip to identical energies.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "octgb/mol/molecule.hpp"

namespace octgb::mol {

/// Thrown by read_pdb on malformed input: overlong (non-PDB) lines,
/// blank or non-numeric coordinate fields, or a file with no atoms at
/// all. The message names the offending line number.
class PdbParseError : public std::runtime_error {
 public:
  explicit PdbParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parse PDB text from a stream. Reads ATOM and HETATM records until END
/// (or EOF); ignores everything else. Malformed records throw
/// PdbParseError with the line number; a file yielding zero atoms is an
/// error, never an empty molecule.
Molecule read_pdb(std::istream& in, const std::string& name = "pdb");

/// Parse a PDB file from disk.
Molecule read_pdb_file(const std::string& path);

/// Write ATOM records (plus TER/END) for every atom. Atoms without labels
/// get synthesized names ("C", residue "UNK").
void write_pdb(const Molecule& mol, std::ostream& out);

/// Write to a file; returns false on I/O error.
bool write_pdb_file(const Molecule& mol, const std::string& path);

/// Fill in radius (Bondi by element) and partial charge (per-atom-name
/// protein table; falls back to 0) for every atom in place. Called
/// automatically by read_pdb.
void assign_charges_and_radii(Molecule& mol);

/// Partial charge for a protein atom name within a residue (CHARMM-like
/// coarse table; see pdb.cpp). Unknown names return 0.
double protein_partial_charge(std::string_view atom_name,
                              std::string_view residue_name);

}  // namespace octgb::mol
