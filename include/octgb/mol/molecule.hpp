#pragma once
/// \file molecule.hpp
/// Atom and Molecule — the input to every energy engine.

#include <span>
#include <string>
#include <vector>

#include "octgb/geom/aabb.hpp"
#include "octgb/geom/transform.hpp"
#include "octgb/geom/vec3.hpp"
#include "octgb/mol/elements.hpp"

namespace octgb::mol {

/// One atom: position (Å), intrinsic (vdW) radius (Å), partial charge (e).
/// Kept POD and compact — energy kernels iterate contiguous Atom arrays.
struct Atom {
  geom::Vec3 pos;
  double radius = 1.7;
  double charge = 0.0;
  Element element = Element::C;
};

/// PDB-style per-atom metadata, kept out of the hot Atom struct.
struct AtomLabel {
  std::string atom_name;     ///< e.g. " CA "
  std::string residue_name;  ///< e.g. "ALA"
  char chain_id = 'A';
  int residue_seq = 1;
  int serial = 1;
};

/// A molecule: parallel arrays of atoms and (optional) labels.
class Molecule {
 public:
  Molecule() = default;
  explicit Molecule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  std::span<const Atom> atoms() const { return atoms_; }
  std::span<Atom> atoms() { return atoms_; }
  const Atom& atom(std::size_t i) const { return atoms_[i]; }

  /// Labels are either empty or exactly parallel to atoms().
  std::span<const AtomLabel> labels() const { return labels_; }
  bool has_labels() const { return !labels_.empty(); }

  /// Append an atom without a label. Mixing labeled and unlabeled appends
  /// is rejected.
  void add_atom(const Atom& a);
  /// Append an atom with its PDB label.
  void add_atom(const Atom& a, AtomLabel label);

  /// Axis-aligned bounds of atom centers.
  geom::Aabb bounds() const;
  /// Bounds inflated by each atom's radius (true extent of the molecule).
  geom::Aabb inflated_bounds() const;

  /// Sum of partial charges.
  double net_charge() const;
  /// Center of geometry (unweighted mean of atom centers).
  geom::Vec3 centroid() const;

  /// Apply a rigid transform to every atom position in place (the docking
  /// use case: move the ligand without regenerating it).
  void transform(const geom::RigidTransform& t);

  /// Bytes of memory this molecule occupies (for the replication
  /// accounting of §V-B).
  std::size_t footprint_bytes() const;

  void reserve(std::size_t n) { atoms_.reserve(n); }

 private:
  std::string name_;
  std::vector<Atom> atoms_;
  std::vector<AtomLabel> labels_;
};

}  // namespace octgb::mol
