#pragma once
/// \file octree.hpp
/// Adaptive octree over 3D points, stored as a flat node array with
/// contiguous sibling blocks and a contiguous point range per node — the
/// cache-friendly layout the paper credits for part of its speedup.
///
/// The same structure stores both the atoms octree T_A and the
/// quadrature-points octree T_Q; per-point payloads (charges, Born radii,
/// weighted normals) live in external arrays indexed through point_index().

#include <cstdint>
#include <span>
#include <vector>

#include "octgb/geom/aabb.hpp"
#include "octgb/geom/vec3.hpp"

namespace octgb::octree {

/// Build-time knobs.
struct BuildParams {
  std::uint32_t max_leaf_size = 32;  ///< split nodes larger than this
  int max_depth = 24;                ///< hard depth cap (degenerate inputs)
};

/// Flat, immutable octree.
class Octree {
 public:
  static constexpr std::uint32_t kNoChild = 0xffffffffu;

  /// One node. Children (when present) are contiguous:
  /// [first_child, first_child + child_count). The node's points are the
  /// contiguous range [begin, end) of the permuted point order.
  struct Node {
    geom::Vec3 centroid;        ///< geometric center of the points under it
    double radius = 0.0;        ///< radius of the smallest ball (centered at
                                ///< centroid) containing all points under it
    std::uint32_t begin = 0;    ///< first point (tree order)
    std::uint32_t end = 0;      ///< one past last point (tree order)
    std::uint32_t first_child = kNoChild;
    std::uint8_t child_count = 0;
    std::uint8_t depth = 0;

    bool is_leaf() const { return first_child == kNoChild; }
    std::uint32_t size() const { return end - begin; }
  };

  /// Build from a point set. The original points are not stored; the tree
  /// keeps a permuted copy plus the permutation back to input indices.
  static Octree build(std::span<const geom::Vec3> points,
                      const BuildParams& params = {});

  bool empty() const { return nodes_.empty(); }
  std::size_t num_points() const { return points_.size(); }
  std::span<const Node> nodes() const { return nodes_; }
  const Node& node(std::uint32_t id) const { return nodes_[id]; }
  const Node& root() const { return nodes_.front(); }

  /// Points in tree order (each node's points are contiguous).
  std::span<const geom::Vec3> points() const { return points_; }
  /// point_index()[tree_pos] = index into the original input array.
  std::span<const std::uint32_t> point_index() const { return point_index_; }

  /// Node ids of all leaves, in tree (left-to-right) order. The paper's
  /// node-based work division segments exactly this sequence.
  const std::vector<std::uint32_t>& leaf_ids() const { return leaf_ids_; }

  int max_depth() const { return max_depth_; }

  /// Memory footprint (replication accounting).
  std::size_t footprint_bytes() const;

  /// Internal consistency check (ranges, child links, radii). Used by
  /// tests; returns true when every invariant holds.
  bool validate() const;

  /// Refit: move the points to `positions` (input order, same length as
  /// the original build) *without changing the topology*, recomputing
  /// centroids and enclosing radii bottom-up in O(n). The admissibility
  /// tests stay sound because they only consult centroids/radii; see
  /// octree/dynamic.hpp for the quality-triggered rebuild policy.
  void refit(std::span<const geom::Vec3> positions);

  /// Reassemble a tree from its parts (used by serialize.hpp). Derives
  /// leaf ids and the depth from the nodes; callers should validate().
  static Octree from_parts(std::vector<Node> nodes,
                           std::vector<geom::Vec3> points,
                           std::vector<std::uint32_t> point_index);

 private:
  std::vector<Node> nodes_;
  std::vector<geom::Vec3> points_;        // permuted
  std::vector<std::uint32_t> point_index_;  // permuted → original
  std::vector<std::uint32_t> leaf_ids_;
  int max_depth_ = 0;
};

}  // namespace octgb::octree
