#pragma once
/// \file octree.hpp
/// Adaptive octree over 3D points, stored as a flat node array with
/// contiguous sibling blocks and a contiguous point range per node — the
/// cache-friendly layout the paper credits for part of its speedup.
///
/// Construction is a linear-octree pipeline over Morton location codes
/// (DESIGN.md §2.9): quantize to a 2^grid_bits grid, sort (key, id) pairs
/// (in parallel under a ws::Scheduler), derive nodes from longest-common-
/// prefix runs of the sorted keys, and emit them in the same
/// parents-before-children order the legacy recursive partitioner used.
/// The sorted point order doubles as the SoA leaf-plane order: the tree
/// owns its coordinate planes (soa_x/y/z), so core/trees.hpp no longer
/// gathers them. The legacy builder survives as build_legacy(), the test
/// reference the build-equivalence differential compares against.
///
/// The same structure stores both the atoms octree T_A and the
/// quadrature-points octree T_Q; per-point payloads (charges, Born radii,
/// weighted normals) live in external arrays indexed through point_index().

#include <cstdint>
#include <span>
#include <vector>

#include "octgb/geom/aabb.hpp"
#include "octgb/geom/vec3.hpp"
#include "octgb/octree/morton.hpp"
#include "octgb/perf/counters.hpp"

namespace octgb::octree {

/// Which construction pipeline build() runs.
enum class BuildStrategy : std::uint8_t {
  Morton = 0,  ///< sort-based linear octree (default)
  Legacy = 1,  ///< recursive partitioner (reference for differential tests)
};

/// Build-time knobs. Every field shapes tree topology, so svc/digest.hpp
/// must pin all of them in the artifact-cache key.
struct BuildParams {
  std::uint32_t max_leaf_size = 32;  ///< split nodes larger than this
  int max_depth = 24;                ///< hard depth cap (degenerate inputs)
  /// Morton quantization bits per axis (clamped to 1..21). Coarser grids
  /// merge near-coincident points into shared keys earlier.
  std::uint8_t grid_bits = 21;
  BuildStrategy strategy = BuildStrategy::Morton;
  /// Allow the Morton sort to use a ws::Scheduler: the ambient one when
  /// the build runs inside Scheduler::run, else a private one when the
  /// host has multiple cores and the input is large enough to split.
  bool parallel = true;
};

/// Flat, immutable octree.
class Octree {
 public:
  static constexpr std::uint32_t kNoChild = 0xffffffffu;

  /// One node. Children (when present) are contiguous:
  /// [first_child, first_child + child_count). The node's points are the
  /// contiguous range [begin, end) of the permuted point order.
  struct Node {
    geom::Vec3 centroid;        ///< geometric center of the points under it
    double radius = 0.0;        ///< exact radius of the smallest centroid-
                                ///< centered ball enclosing all points under
                                ///< it (both builders; see DESIGN.md §2.9)
    std::uint32_t begin = 0;    ///< first point (tree order)
    std::uint32_t end = 0;      ///< one past last point (tree order)
    std::uint32_t first_child = kNoChild;
    std::uint8_t child_count = 0;
    std::uint8_t depth = 0;

    bool is_leaf() const { return first_child == kNoChild; }
    std::uint32_t size() const { return end - begin; }
  };

  /// Build from a point set via the strategy in `params`. The original
  /// points are not stored; the tree keeps a permuted copy plus the
  /// permutation back to input indices.
  static Octree build(std::span<const geom::Vec3> points,
                      const BuildParams& params = {});

  /// The pre-Morton recursive partitioner, kept as the reference the
  /// build-equivalence differential test (octree_equiv_test) compares
  /// against and as the serial baseline bench_octree_build times.
  static Octree build_legacy(std::span<const geom::Vec3> points,
                             const BuildParams& params = {});

  /// Morton build over a caller-pinned grid instead of the points' own
  /// bounding cube. resort() is defined as bit-identical to this.
  static Octree build_with_grid(std::span<const geom::Vec3> points,
                                const MortonGrid& grid,
                                const BuildParams& params = {});

  bool empty() const { return nodes_.empty(); }
  std::size_t num_points() const { return points_.size(); }
  std::span<const Node> nodes() const { return nodes_; }
  const Node& node(std::uint32_t id) const { return nodes_[id]; }
  const Node& root() const { return nodes_.front(); }

  /// Points in tree order (each node's points are contiguous).
  std::span<const geom::Vec3> points() const { return points_; }
  /// point_index()[tree_pos] = index into the original input array.
  std::span<const std::uint32_t> point_index() const { return point_index_; }

  /// SoA coordinate planes in tree order, maintained by every build, refit
  /// and resort path. A node's atoms occupy the contiguous subrange
  /// [begin, end) of each plane, so leaf batches are plain subspans.
  std::span<const double> soa_x() const { return soa_x_; }
  std::span<const double> soa_y() const { return soa_y_; }
  std::span<const double> soa_z() const { return soa_z_; }

  /// True when the tree carries Morton state (grid + sorted keys): built
  /// by the Morton strategy or loaded from a serialize-v2 stream that had
  /// it. Legacy-built and v1-loaded trees return false.
  bool has_morton() const { return grid_.bits != 0; }
  /// The quantization grid of the build (meaningful when has_morton()).
  const MortonGrid& grid() const { return grid_; }
  /// Sorted build-time Morton keys, tree order (empty unless has_morton()).
  /// refit() deliberately leaves them stale: resort() diffs fresh keys
  /// against these to find which points moved cells.
  std::span<const std::uint64_t> keys() const { return keys_; }

  /// Node ids of all leaves, in tree (left-to-right) order. The paper's
  /// node-based work division segments exactly this sequence.
  const std::vector<std::uint32_t>& leaf_ids() const { return leaf_ids_; }

  int max_depth() const { return max_depth_; }

  /// Memory footprint (replication accounting).
  std::size_t footprint_bytes() const;

  /// Internal consistency check (ranges, child links, radii, and — when
  /// has_morton() — key-array shape and sortedness). Used by tests;
  /// returns true when every invariant holds.
  bool validate() const;

  /// Refit: move the points to `positions` (input order, same length as
  /// the original build) *without changing the topology*, recomputing
  /// centroids and exact enclosing radii bottom-up in O(n). The
  /// admissibility tests stay sound because they only consult
  /// centroids/radii; see octree/dynamic.hpp for the quality-triggered
  /// rebuild policy and the re-sort alternative.
  void refit(std::span<const geom::Vec3> positions);

  /// Re-sort refit (Morton trees only): re-quantize `positions` on the
  /// build grid, re-sort only the points whose key changed (stayed points
  /// are an already-sorted subsequence; the two merge in O(n)), and
  /// re-derive nodes — the result is bit-identical to
  /// build_with_grid(positions, grid(), params). Unlike refit() this
  /// restores tree quality, but the topology may change, so callers must
  /// rebase any RefitMonitor. Returns false (tree untouched) when a point
  /// escaped the build grid's cube — the caller should rebuild.
  bool resort(std::span<const geom::Vec3> positions,
              const BuildParams& params);

  /// Construction statistics for this tree (per-instance so concurrent
  /// service builds never race on a shared counter).
  const perf::TreeBuildCounters& build_stats() const { return stats_; }

  /// Reassemble a tree from its parts (used by serialize.hpp for v1
  /// streams and legacy trees). Derives leaf ids, the depth, and the SoA
  /// planes from the nodes/points; callers should validate().
  static Octree from_parts(std::vector<Node> nodes,
                           std::vector<geom::Vec3> points,
                           std::vector<std::uint32_t> point_index);

  /// Reassemble including the Morton state of a serialize-v2 stream.
  /// `keys` may be empty (legacy tree round-tripped through v2), in which
  /// case `grid` must be empty too and the result has has_morton()==false.
  static Octree from_parts(std::vector<Node> nodes,
                           std::vector<geom::Vec3> points,
                           std::vector<std::uint32_t> point_index,
                           std::vector<std::uint64_t> keys,
                           const MortonGrid& grid);

 private:
  void rebuild_soa_planes();
  void finish_derived();  ///< max_depth_ + leaf_ids_ from nodes_

  std::vector<Node> nodes_;
  std::vector<geom::Vec3> points_;        // permuted
  std::vector<std::uint32_t> point_index_;  // permuted → original
  std::vector<std::uint32_t> leaf_ids_;
  std::vector<double> soa_x_, soa_y_, soa_z_;  // coordinate planes
  std::vector<std::uint64_t> keys_;  // sorted build-time Morton keys
  MortonGrid grid_;                  // bits==0 ⇒ no Morton state
  perf::TreeBuildCounters stats_;
  int max_depth_ = 0;

  friend struct MortonBuilder;
};

}  // namespace octgb::octree
