#pragma once
/// \file dynamic.hpp
/// Dynamic octree maintenance for flexible molecules (the paper's ref [8]:
/// "Space-efficient maintenance of nonbonded lists for flexible molecules
/// using dynamic octrees", and §II's point that octrees are
/// update-efficient where nblists are not).
///
/// During an MD trajectory atoms move a little every step. Rather than
/// rebuilding the octree, a *refit* keeps the tree topology (the
/// point→leaf assignment) and recomputes node centroids and enclosing
/// radii bottom-up in O(n). The far-field admissibility tests stay
/// correct because they only consult centroids and radii. When the
/// accumulated drift inflates leaves past a quality threshold, the tree
/// is rebuilt from scratch.

#include <cstdint>
#include <span>
#include <vector>

#include "octgb/octree/octree.hpp"

namespace octgb::octree {

/// The refit-vs-rebuild quality policy, factored out of DynamicOctree so
/// engines that own their trees directly (core::ScoringSession refits the
/// engine's AtomsTree/QPointsTree in place) share the same monitor instead
/// of wrapping every tree in a DynamicOctree.
///
/// The monitor snapshots each leaf's enclosing radius at (re)build time
/// ("rebase"). After refits, a leaf whose radius has inflated past
/// rebuild_radius_factor × max(radius_at_rebase, rebuild_radius_slack)
/// signals that the topology has degraded enough to warrant a rebuild.
/// Refit tolerance contract: as long as should_rebuild() is honoured, the
/// far-field admissibility tests stay sound (they only consult the
/// refreshed centroids/radii), so energies evaluated on a refitted tree
/// match a from-scratch rebuild on the same coordinates within the
/// engine's approximation tolerance — ≤ 1 % relative Epol error at the
/// default ε, the bound the extension tests assert.
class RefitMonitor {
 public:
  struct Policy {
    /// Rebuild when any leaf's radius exceeds
    /// rebuild_radius_factor × max(its radius at rebase time, slack).
    double rebuild_radius_factor = 1.5;
    double rebuild_radius_slack = 1.0;  ///< Å
  };

  RefitMonitor() = default;
  /// Snapshot `tree`'s current radii as the rebase state.
  explicit RefitMonitor(const Octree& tree);
  RefitMonitor(const Octree& tree, Policy policy);

  /// Re-snapshot after a rebuild (or any topology change).
  void rebase(const Octree& tree);

  /// Worst current leaf inflation: max over leaves of
  /// radius_now / max(radius_at_rebase, slack). ≤ 1 right after rebase.
  double worst_leaf_inflation(const Octree& tree) const;

  /// True when any leaf's inflation exceeds the rebuild threshold.
  bool should_rebuild(const Octree& tree) const;

  const Policy& policy() const { return policy_; }

 private:
  Policy policy_;
  std::vector<double> base_radius_;  ///< per-node radius at rebase time
};

/// Octree with cheap refits and quality-triggered rebuilds.
class DynamicOctree {
 public:
  struct Params {
    BuildParams build;
    /// Rebuild when any leaf's radius exceeds
    /// rebuild_radius_factor × its radius at (re)build time +
    /// rebuild_radius_slack.
    double rebuild_radius_factor = 1.5;
    double rebuild_radius_slack = 1.0;  ///< Å
    /// Use Octree::resort() instead of refit() on Morton-built trees:
    /// each update re-sorts only the points whose grid cell changed,
    /// restoring build-fresh quality (bit-identical to a rebuild on the
    /// pinned grid) without the inflation drift that refits accumulate. A
    /// full rebuild still happens when a point escapes the build grid.
    bool enable_resort = false;
  };

  /// Build from the initial positions (input order).
  explicit DynamicOctree(std::span<const geom::Vec3> positions)
      : DynamicOctree(positions, Params()) {}
  DynamicOctree(std::span<const geom::Vec3> positions, Params params);

  /// The current tree. Valid until the next update().
  const Octree& tree() const { return tree_; }

  /// Move the points to `positions` (same length and input order as the
  /// constructor). Performs an O(n) refit (or, with enable_resort, a
  /// moved-points re-sort), or a full rebuild when the quality threshold
  /// trips or a point escapes the build grid. Returns true when a rebuild
  /// happened.
  bool update(std::span<const geom::Vec3> positions);

  std::size_t refits() const { return refits_; }
  std::size_t rebuilds() const { return rebuilds_; }
  std::size_t resorts() const { return resorts_; }

  /// Worst current leaf inflation: max over leaves of
  /// radius_now / max(radius_at_build, slack).
  double worst_leaf_inflation() const;

 private:
  void rebuild(std::span<const geom::Vec3> positions);
  void refit(std::span<const geom::Vec3> positions);

  Params params_;
  Octree tree_;
  RefitMonitor monitor_;
  std::size_t refits_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t resorts_ = 0;
};

}  // namespace octgb::octree
