#pragma once
/// \file nblist.hpp
/// Nonbonded pair list (nblist) — the data structure Amber/Gromacs/NAMD
/// use for cutoff-truncated interactions, which the paper contrasts with
/// octrees: nblist memory grows with atoms × cutoff³ and construction is
/// not update-efficient, while the octree stays linear in the atom count
/// regardless of the approximation parameter.
///
/// Built with a uniform cell grid (cell edge = cutoff), CSR storage of
/// neighbors. A byte budget emulates the 24 GB Lonestar4 node: exceeding it
/// throws NbListOutOfMemory, which is how the Fig. 11 "ran out of memory"
/// rows are reproduced rather than by actually exhausting the host.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "octgb/geom/vec3.hpp"

namespace octgb::octree {

/// Thrown when a pair list would exceed its byte budget (simulated OOM).
class NbListOutOfMemory : public std::runtime_error {
 public:
  explicit NbListOutOfMemory(const std::string& what)
      : std::runtime_error(what) {}
};

/// CSR nonbonded list: for every atom i, all j != i with |r_ij| <= cutoff.
class NbList {
 public:
  struct Params {
    double cutoff = 12.0;  ///< Å
    /// Byte budget; 0 = unlimited. Default: 24 GB node minus headroom.
    std::size_t max_bytes = std::size_t{20} * 1024 * 1024 * 1024;
  };

  static NbList build(std::span<const geom::Vec3> points,
                      const Params& params);

  std::size_t num_points() const { return offsets_.size() - 1; }
  double cutoff() const { return cutoff_; }

  /// Neighbor indices of atom i (unordered, excludes i itself).
  std::span<const std::uint32_t> neighbors(std::size_t i) const {
    return std::span<const std::uint32_t>(neighbors_)
        .subspan(offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  std::size_t total_pairs() const { return neighbors_.size(); }
  std::size_t footprint_bytes() const {
    return neighbors_.capacity() * sizeof(std::uint32_t) +
           offsets_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> neighbors_;
  double cutoff_ = 0.0;
};

}  // namespace octgb::octree
