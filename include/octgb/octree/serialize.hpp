#pragma once
/// \file serialize.hpp
/// Binary serialization for octrees.
///
/// The paper treats octree construction as a reusable preprocessing step
/// ("once an octree is built, it can be used for any approximation
/// parameter"); persisting trees lets a docking pipeline build once and
/// score many times across processes. Format: a small header (magic,
/// version, counts) followed by the flat node array, permuted points and
/// permutation — all little-endian PODs, validated on load.
///
/// Version 2 (DESIGN.md §2.9) appends the Morton state as two tagged
/// sections after the v1 body: "mkey" (the sorted build-time keys, raw
/// u64 span — memcpy in, memcpy out) and "mgrd" (the quantization grid as
/// five doubles: origin xyz, cell size, bits). Both sections are always
/// present with count 0 for trees without Morton state, so the stream
/// layout stays deterministic. Version-1 streams (which never carried
/// these sections) still load; writers always emit v2.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "octgb/geom/vec3.hpp"
#include "octgb/octree/octree.hpp"

namespace octgb::octree {

/// Write `tree` to a binary stream. Throws CheckError on I/O failure.
void write_octree(const Octree& tree, std::ostream& out);

/// Read a tree written by write_octree. Throws CheckError on a bad
/// magic/version/shape or on I/O failure; the loaded tree passes
/// Octree::validate().
Octree read_octree(std::istream& in);

/// File helpers.
void write_octree_file(const Octree& tree, const std::string& path);
Octree read_octree_file(const std::string& path);

// --- tagged payload sections ----------------------------------------------
//
// Payload-carrying tree round-trips (core/persist.hpp: AtomsTree /
// QPointsTree with their per-point payloads and SoA planes) append tagged
// sections after the bare octree: an 8-byte tag + element size + count
// header followed by raw little-endian elements. Readers pass the tag they
// expect, so a reordered or truncated stream fails loudly instead of
// deserializing one payload into another.

/// Write a tagged section of doubles. `tag` must be 1..8 bytes.
void write_f64_section(std::ostream& out, std::string_view tag,
                       std::span<const double> data);

/// Read a section previously written with write_f64_section; throws
/// CheckError when the tag or element size does not match.
std::vector<double> read_f64_section(std::istream& in, std::string_view tag);

/// Write a tagged section of Vec3s.
void write_vec3_section(std::ostream& out, std::string_view tag,
                        std::span<const geom::Vec3> data);

/// Read a section previously written with write_vec3_section.
std::vector<geom::Vec3> read_vec3_section(std::istream& in,
                                          std::string_view tag);

/// Write a tagged section of u64s (the v2 Morton-key span).
void write_u64_section(std::ostream& out, std::string_view tag,
                       std::span<const std::uint64_t> data);

/// Read a section previously written with write_u64_section.
std::vector<std::uint64_t> read_u64_section(std::istream& in,
                                            std::string_view tag);

}  // namespace octgb::octree
