#pragma once
/// \file serialize.hpp
/// Binary serialization for octrees.
///
/// The paper treats octree construction as a reusable preprocessing step
/// ("once an octree is built, it can be used for any approximation
/// parameter"); persisting trees lets a docking pipeline build once and
/// score many times across processes. Format: a small header (magic,
/// version, counts) followed by the flat node array, permuted points and
/// permutation — all little-endian PODs, validated on load.

#include <iosfwd>
#include <string>

#include "octgb/octree/octree.hpp"

namespace octgb::octree {

/// Write `tree` to a binary stream. Throws CheckError on I/O failure.
void write_octree(const Octree& tree, std::ostream& out);

/// Read a tree written by write_octree. Throws CheckError on a bad
/// magic/version/shape or on I/O failure; the loaded tree passes
/// Octree::validate().
Octree read_octree(std::istream& in);

/// File helpers.
void write_octree_file(const Octree& tree, const std::string& path);
Octree read_octree_file(const std::string& path);

}  // namespace octgb::octree
