#pragma once
/// \file morton.hpp
/// 64-bit 3D Morton (Z-curve) location codes and the quantization grid the
/// linear-octree builder is defined over.
///
/// A Morton key interleaves the bits of the three quantized coordinates so
/// that the 3-bit digit at each level of the key *is* the octant index the
/// recursive partitioner would have chosen at that level: digit =
/// (x-bit) | (y-bit << 1) | (z-bit << 2), matching the legacy builder's
/// octant numbering (x is the least significant axis). Sorting points by
/// key therefore orders them exactly along the depth-first traversal of the
/// octree, which is what makes construction a sort and the node order the
/// SoA plane order (DESIGN.md §2.9).
///
/// At the maximum 21 bits per axis the three coordinates fill 63 of the 64
/// key bits; the top bit is always zero, so keys order correctly as plain
/// unsigned integers.

#include <cstdint>
#include <span>

#include "octgb/geom/aabb.hpp"
#include "octgb/geom/vec3.hpp"

namespace octgb::octree {

/// Maximum quantization bits per axis (3 × 21 = 63 key bits).
inline constexpr int kMortonMaxBits = 21;

/// Spread the low 21 bits of `v` so bit i lands at bit 3·i.
constexpr std::uint64_t morton_spread(std::uint64_t v) {
  v &= 0x1fffffULL;
  v = (v | (v << 32)) & 0x001f00000000ffffULL;
  v = (v | (v << 16)) & 0x001f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of morton_spread: gather every third bit back into the low 21.
constexpr std::uint32_t morton_compact(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v | (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v | (v >> 8)) & 0x001f0000ff0000ffULL;
  v = (v | (v >> 16)) & 0x001f00000000ffffULL;
  v = (v | (v >> 32)) & 0x00000000001fffffULL;
  return static_cast<std::uint32_t>(v);
}

/// Interleave three ≤21-bit coordinates into one key (x least significant
/// within each 3-bit digit, matching the legacy octant numbering).
constexpr std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                                      std::uint32_t z) {
  return morton_spread(x) | (morton_spread(y) << 1) | (morton_spread(z) << 2);
}

/// De-interleaved coordinates of a Morton key.
struct MortonCoords {
  std::uint32_t x = 0, y = 0, z = 0;
  friend bool operator==(const MortonCoords&, const MortonCoords&) = default;
};

/// Inverse of morton_encode.
constexpr MortonCoords morton_decode(std::uint64_t key) {
  return {morton_compact(key), morton_compact(key >> 1),
          morton_compact(key >> 2)};
}

/// The 3-bit octant digit of `key` at tree `level` (level 0 = the root
/// split) for a grid of `bits` levels. Digits run from the most significant
/// triple down, so lexicographic key order is depth-first octant order.
constexpr unsigned morton_digit(std::uint64_t key, int level, int bits) {
  return static_cast<unsigned>((key >> (3 * (bits - 1 - level))) & 7u);
}

/// Number of leading levels on which two keys agree (their lowest common
/// ancestor's depth in a `bits`-level grid). Equal keys share all levels.
constexpr int morton_common_levels(std::uint64_t a, std::uint64_t b,
                                   int bits) {
  int level = 0;
  while (level < bits && morton_digit(a, level, bits) ==
                             morton_digit(b, level, bits))
    ++level;
  return level;
}

/// The quantization grid a Morton tree was built over: a cubical box of
/// 2^bits cells per axis anchored so its cell boundaries coincide with the
/// legacy builder's recursive octant planes (origin = cube center − half,
/// cell = side / 2^bits). Persisted with the tree (serialize v2) so a
/// reloaded tree can re-quantize moved points for the re-sort refit path.
struct MortonGrid {
  geom::Vec3 origin;          ///< cube corner (minimum coordinate)
  double cell = 0.0;          ///< cell side length; 0 means "no grid"
  std::uint8_t bits = 0;      ///< quantization bits per axis (1..21)

  friend bool operator==(const MortonGrid&, const MortonGrid&) = default;

  /// Cells per axis.
  std::uint32_t side() const { return 1u << bits; }

  /// Grid covering the cubified bounding box of `pts` (the legacy root
  /// cell) at `bits` bits per axis. Degenerate inputs get the same 1e-9
  /// minimum half-extent the legacy builder uses.
  static MortonGrid of(std::span<const geom::Vec3> pts, int bits);

  /// True when `p` lies inside the grid cube (quantization without
  /// clamping). Build inputs always do; re-sort refits check drift.
  bool contains(const geom::Vec3& p) const {
    const double side_len = cell * static_cast<double>(side());
    return p.x >= origin.x && p.x <= origin.x + side_len && p.y >= origin.y &&
           p.y <= origin.y + side_len && p.z >= origin.z &&
           p.z <= origin.z + side_len;
  }

  /// Quantize one coordinate (clamped to the grid). Scales by the
  /// reciprocal rather than dividing: `1.0 / cell` is loop-invariant, so
  /// the batch key-generation loops hoist it and pay one multiply per
  /// coordinate instead of a ~20-cycle divide (keygen was the single
  /// hottest phase of the Morton build before this change).
  std::uint32_t quantize(double v, double o) const {
    const double t = (v - o) * (1.0 / cell);
    if (t <= 0.0) return 0;
    const auto q = static_cast<std::uint64_t>(t);
    const std::uint64_t max = side() - 1;
    return static_cast<std::uint32_t>(q > max ? max : q);
  }

  /// Morton key of a point (coordinates quantized with clamping).
  std::uint64_t key(const geom::Vec3& p) const {
    return morton_encode(quantize(p.x, origin.x), quantize(p.y, origin.y),
                         quantize(p.z, origin.z));
  }

  /// Center of the grid cell addressed by a key (tests; lossy inverse).
  geom::Vec3 cell_center(std::uint64_t k) const {
    const MortonCoords c = morton_decode(k);
    return {origin.x + (c.x + 0.5) * cell, origin.y + (c.y + 0.5) * cell,
            origin.z + (c.z + 0.5) * cell};
  }
};

inline MortonGrid MortonGrid::of(std::span<const geom::Vec3> pts, int bits) {
  const geom::Aabb box = geom::Aabb::of(pts).cubified();
  const geom::Vec3 c = box.center();
  const double half = pts.empty()
                          ? 1e-9
                          : (box.max_extent() * 0.5 < 1e-9
                                 ? 1e-9
                                 : box.max_extent() * 0.5);
  MortonGrid g;
  g.origin = {c.x - half, c.y - half, c.z - half};
  g.bits = static_cast<std::uint8_t>(bits);
  g.cell = (2.0 * half) / static_cast<double>(g.side());
  return g;
}

}  // namespace octgb::octree
