#pragma once
/// \file scheduler.hpp
/// Cilk-style randomized work-stealing scheduler (Blumofe & Leiserson).
///
/// This is the shared-memory half of the paper's hybrid algorithm: inside
/// each mpp rank, recursive tree traversals fork child subtrees which idle
/// workers steal. The discipline matches cilk++: owners work newest-first
/// off their own deque; thieves steal oldest-first from a victim ("implicit
/// dynamic load balancing", §IV-A of the paper).
///
/// Victim selection is locality-aware: each worker is mapped onto a cpu and
/// thieves probe victims in cache-distance order — same-L3 first, then
/// same-socket, then remote — with a pause/yield backoff ladder between
/// probe rounds. Within a tier the victim is still uniformly random, so the
/// Cilk load-balancing argument survives; the hierarchy only biases *which*
/// random victim gets probed first. Stealing order never affects results:
/// task execution is unordered by construction (fork-join with commutative
/// joins), so any victim policy yields bitwise-identical output.
///
/// Code written against this API also runs with no scheduler at all:
/// fork-join and parallel_for degrade to serial execution when called from
/// a thread with no worker context, so the naive/serial engines share the
/// same kernels.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "octgb/perf/topology.hpp"
#include "octgb/util/rng.hpp"
#include "octgb/ws/deque.hpp"

namespace octgb::ws {

namespace detail {

/// A spawned closure plus its join counter.
struct Task {
  std::function<void()> fn;
  std::atomic<std::int64_t>* join;
};

}  // namespace detail

/// Aggregate scheduler statistics (for the machine model and tests).
struct SchedulerStats {
  std::uint64_t spawns = 0;
  std::uint64_t steals = 0;        ///< successful steals
  std::uint64_t steal_attempts = 0;
  std::uint64_t executed = 0;      ///< tasks executed (stolen or local)
  // Successful steals classified by cache distance between thief and
  // victim cpus. local + socket + remote == steals.
  std::uint64_t local_steals = 0;   ///< victim shares the thief's L3
  std::uint64_t socket_steals = 0;  ///< same socket, different L3
  std::uint64_t remote_steals = 0;  ///< across a socket boundary
  /// Steals whose victim sits outside the thief's pinned core block.
  /// Structurally zero for a pinned scheduler (victims are the scheduler's
  /// own workers, all inside the block); a nonzero value would mean the
  /// core-lease isolation contract broke.
  std::uint64_t offblock_steals = 0;
  std::uint64_t pinned_workers = 0;  ///< workers whose affinity call stuck
};

/// Placement options for a Scheduler.
struct SchedulerOptions {
  /// Topology used for victim tiers and core mapping; nullptr means the
  /// host topology (perf::topology()).
  const perf::CpuTopology* topology = nullptr;
  /// Pin each worker's thread to its assigned cpu (best effort: a failing
  /// affinity call leaves the worker unpinned and counted accordingly).
  bool pin = false;
  /// First core of the worker block. Worker i maps to core pin_first + i
  /// (modulo the topology size). With svc::CoreAllocator this is the
  /// lease's first core, so a width-W scheduler occupies exactly the
  /// leased contiguous block.
  int pin_first = 0;
};

/// Work-stealing scheduler. Construct with the desired worker count; the
/// caller of run() becomes worker 0 and `workers - 1` background threads
/// are spawned.
class Scheduler {
 public:
  explicit Scheduler(int workers);
  Scheduler(int workers, const SchedulerOptions& opts);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()) + 1; }

  /// Execute `root` to completion with this scheduler active. The calling
  /// thread participates as worker 0. Not reentrant.
  void run(const std::function<void()>& root);

  /// Statistics accumulated since construction (or reset_stats()).
  SchedulerStats stats() const;
  void reset_stats();

  /// The cpu id worker `i` is mapped to (pinned or not). Consumers use
  /// this to first-touch data from the socket that will read it.
  int worker_cpu(int i) const;

  /// The topology victim tiers were built against.
  const perf::CpuTopology& topo() const { return *topo_; }

  /// The scheduler the current thread is executing under, or nullptr.
  static Scheduler* current();

  // --- fork-join API (static: usable from any task) ----------------------

  /// Run f1 and f2 as parallel siblings; returns when both are done.
  /// Serial (f1 then f2) when no scheduler is active.
  static void fork2(const std::function<void()>& f1,
                    const std::function<void()>& f2);

  /// Fork every closure in `fns` and wait for all (the octree recursion
  /// forks up to 8 children at once).
  static void fork_all(std::vector<std::function<void()>>& fns);

  /// Recursive-halving parallel loop over [begin, end) with grain size
  /// `grain`. The body receives a [lo, hi) subrange. `grain <= 0` means
  /// "auto": the grain becomes max(1, (end-begin)/(8*workers)) — about
  /// eight stealable tasks per worker — instead of forking one task per
  /// index. With no active scheduler, auto resolves against one worker.
  static void parallel_for(std::int64_t begin, std::int64_t end,
                           std::int64_t grain,
                           const std::function<void(std::int64_t,
                                                    std::int64_t)>& body);

  /// Parallel sum-reduction: `body(lo, hi)` returns its subrange's
  /// partial value; partials combine with +. Deterministic tree-shaped
  /// combination order (independent of the thread schedule). `grain <= 0`
  /// derives the same automatic grain as parallel_for.
  static double parallel_reduce(
      std::int64_t begin, std::int64_t end, std::int64_t grain,
      const std::function<double(std::int64_t, std::int64_t)>& body);

 private:
  struct Worker {
    ChaseLevDeque<detail::Task> deque;
    util::Xoshiro256 rng;
    // Relaxed atomics: each counter is written by its own thread only, but
    // stats() reads them from the caller's thread while idle workers may
    // still be bumping steal_attempts mid-iteration.
    std::atomic<std::uint64_t> spawns{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> local_steals{0};
    std::atomic<std::uint64_t> socket_steals{0};
    std::atomic<std::uint64_t> remote_steals{0};
    std::atomic<std::uint64_t> offblock_steals{0};
    int id = 0;
    int cpu = 0;        ///< topology cpu this worker maps to
    int block_core = 0; ///< pin_first + id (no modulo): lease-block slot
    std::atomic<bool> pinned{false};
    // Victim worker ids by cache distance from this worker's cpu:
    // [0] same L3, [1] same socket / different L3, [2] remote socket.
    // Built once in the constructor, read-only afterwards.
    std::vector<std::uint32_t> tier[3];
    Scheduler* sched = nullptr;
  };

  void worker_loop(int id);
  void spawn_task(Worker& w, std::function<void()> fn,
                  std::atomic<std::int64_t>* join);
  detail::Task* try_acquire(Worker& w);
  void execute(Worker& w, detail::Task* t);
  void wait_for(Worker& w, std::atomic<std::int64_t>& join);

  std::vector<std::unique_ptr<Worker>> all_workers_;  // [0] = caller's
  std::vector<std::thread> workers_;                  // background threads
  const perf::CpuTopology* topo_ = nullptr;
  SchedulerOptions opts_;
  // Trace track group (mpp rank) of the constructing thread, inherited by
  // the background workers so their spans land under the right rank.
  std::int32_t trace_pid_ = 0;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> active_{false};
  std::mutex mu_;
  std::condition_variable cv_;

  friend struct detail::Task;
};

}  // namespace octgb::ws
