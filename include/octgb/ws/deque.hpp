#pragma once
/// \file deque.hpp
/// Chase–Lev lock-free work-stealing deque (Chase & Lev 2005, with the
/// weak-memory-model fences of Lê et al. 2013).
///
/// The owner pushes/pops at the bottom (newest-first, preserving the serial
/// depth-first order and its cache locality); thieves steal from the top
/// (oldest-first — the paper notes that stealing the least-recently-used
/// entry is what makes cilk++-style stealing cache friendly).

#include <atomic>
#include <cstdint>
#include <vector>

namespace octgb::ws {

/// Lock-free deque of opaque pointers. Single owner, many thieves.
template <class T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 256)
      : array_(new Array(round_up(initial_capacity))) {}

  ~ChaseLevDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push onto the bottom.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    // Lê et al. publish with a release fence + relaxed store; a release
    // store is equivalent here (and free on x86) and, unlike the fence,
    // is modeled by TSan — fences are invisible to it, so the fence form
    // reports the item payload as racing with thieves.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop from the bottom. nullptr when empty.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T* x = nullptr;
    if (t <= b) {
      x = a->get(b);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          x = nullptr;  // lost the race
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return x;
  }

  /// Thieves: steal from the top. nullptr when empty or on a lost race
  /// (callers treat both as "try elsewhere").
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    T* x = nullptr;
    if (t < b) {
      Array* a = array_.load(std::memory_order_acquire);
      x = a->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;  // another thief (or the owner) got it
      }
    }
    return x;
  }

  /// Approximate size; exact only when quiescent.
  std::int64_t size_approx() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct Array {
    explicit Array(std::size_t cap) : capacity(cap), slots(cap) {}
    std::size_t capacity;
    std::vector<std::atomic<T*>> slots;
    T* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & (capacity - 1)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* v) {
      slots[static_cast<std::size_t>(i) & (capacity - 1)].store(
          v, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    Array* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, std::memory_order_release);
    // Retire the old array; thieves may still be reading it, so free it
    // only at deque destruction.
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;
  std::vector<Array*> retired_;
};

}  // namespace octgb::ws
