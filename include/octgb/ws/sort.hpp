#pragma once
/// \file sort.hpp
/// Deterministic parallel merge sort on the work-stealing scheduler.
///
/// The Morton octree builder (octree/octree.cpp) sorts (key, id) pairs and
/// requires the *same permutation on every run and every worker count* —
/// tree topology feeds bit-identity gates downstream. This sort delivers
/// that: the recursion splits depend only on the data (halving plus binary
/// searches), never on the thread schedule, and the merge is stable, so
/// the output is schedule-independent even with equivalent elements. When
/// the comparator is a strict total order (no ties), the output is the
/// unique sorted sequence and therefore also matches any serial sort with
/// the same comparator.
///
/// Like the rest of the ws API, it degrades to serial (std::sort) when no
/// scheduler is active on the calling thread.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "octgb/ws/scheduler.hpp"

namespace octgb::ws {

namespace detail {

/// Divide-and-conquer merge of two sorted runs into `out`. Stable: on
/// ties, a's elements precede b's, matching std::merge. Splits the larger
/// run at its midpoint and binary-searches the partner, so both halves can
/// merge as parallel siblings.
template <typename T, typename Less>
void parallel_merge(const T* a, std::size_t na, const T* b, std::size_t nb,
                    T* out, const Less& less, std::size_t grain) {
  if (na + nb <= grain || na == 0 || nb == 0) {
    std::merge(a, a + na, b, b + nb, out, less);
    return;
  }
  std::size_t ma, mb;
  if (na >= nb) {
    ma = na / 2;
    // b elements strictly less than the pivot go left; equals go right,
    // after the pivot (which comes from a) — a-before-b preserved.
    mb = static_cast<std::size_t>(std::lower_bound(b, b + nb, a[ma], less) -
                                  b);
  } else {
    mb = nb / 2;
    // a elements less-or-equal go left, ahead of the pivot from b.
    ma = static_cast<std::size_t>(std::upper_bound(a, a + na, b[mb], less) -
                                  a);
  }
  Scheduler::fork2(
      [&] { parallel_merge(a, ma, b, mb, out, less, grain); },
      [&] {
        parallel_merge(a + ma, na - ma, b + mb, nb - mb, out + ma + mb, less,
                       grain);
      });
}

/// Recursive merge sort ping-ponging between `a` (the data) and `b` (the
/// scratch buffer). The sorted result lands in `b` when `result_in_b`,
/// else back in `a`.
template <typename T, typename Less>
void parallel_msort(T* a, T* b, std::size_t n, const Less& less,
                    std::size_t grain, bool result_in_b) {
  if (n <= grain) {
    std::sort(a, a + n, less);
    if (result_in_b) std::copy(a, a + n, b);
    return;
  }
  const std::size_t mid = n / 2;
  Scheduler::fork2(
      [&] { parallel_msort(a, b, mid, less, grain, !result_in_b); },
      [&] {
        parallel_msort(a + mid, b + mid, n - mid, less, grain, !result_in_b);
      });
  // The halves landed in the opposite array; merge them back.
  const T* src = result_in_b ? a : b;
  T* dst = result_in_b ? b : a;
  parallel_merge(src, mid, src + mid, n - mid, dst, less, grain);
}

}  // namespace detail

/// Sort `items` in place. Parallel (merge sort over the active scheduler)
/// when one is active and the input is large enough to split; serial
/// std::sort otherwise. Deterministic across worker counts (see file
/// comment). Allocates one scratch buffer of items.size() on the parallel
/// path.
template <typename T, typename Less = std::less<T>>
void parallel_sort(std::span<T> items, Less less = {}) {
  const std::size_t n = items.size();
  Scheduler* sched = Scheduler::current();
  const int workers = sched ? sched->num_workers() : 1;
  // ~8 stealable leaf sorts per worker, but never blocks so small that the
  // fork overhead dominates the leaf std::sort.
  const std::size_t grain = std::max<std::size_t>(
      std::size_t{1} << 11, n / (8 * static_cast<std::size_t>(workers)));
  if (workers <= 1 || n <= grain) {
    std::sort(items.begin(), items.end(), less);
    return;
  }
  std::vector<T> scratch(n);
  detail::parallel_msort(items.data(), scratch.data(), n, less, grain,
                         /*result_in_b=*/false);
}

}  // namespace octgb::ws
