#pragma once
/// \file transform.hpp
/// Rigid-body transforms (rotation + translation).
///
/// The paper notes that for docking scans the octree can be *moved/rotated*
/// by multiplying with transformation matrices instead of being rebuilt;
/// the docking_scan example exercises exactly this.

#include <array>
#include <cmath>

#include "octgb/geom/vec3.hpp"

namespace octgb::geom {

/// 3x3 rotation matrix stored row-major.
struct Mat3 {
  std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

  static Mat3 identity() { return {}; }

  /// Rotation about an arbitrary unit axis by `angle` radians (Rodrigues).
  static Mat3 axis_angle(const Vec3& axis, double angle);

  /// Rotation from Z-Y-X Euler angles (yaw about z, pitch about y, roll
  /// about x) — convenient for scan grids.
  static Mat3 euler_zyx(double yaw, double pitch, double roll);

  Vec3 apply(const Vec3& v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
  }

  Mat3 operator*(const Mat3& o) const;

  Mat3 transposed() const {
    Mat3 t;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) t.m[c * 3 + r] = m[r * 3 + c];
    return t;
  }

  /// Deviation of Rᵀ R from identity; ~0 for a true rotation.
  double orthogonality_error() const;
};

/// Rigid transform p ↦ R p + t.
struct RigidTransform {
  Mat3 rotation;
  Vec3 translation;

  static RigidTransform identity() { return {}; }
  static RigidTransform translate(const Vec3& t) { return {Mat3{}, t}; }
  static RigidTransform rotate(const Mat3& r) { return {r, {}}; }

  Vec3 apply(const Vec3& p) const {
    return rotation.apply(p) + translation;
  }
  /// Transform a direction (no translation) — used for surface normals.
  Vec3 apply_dir(const Vec3& d) const { return rotation.apply(d); }

  /// Composition: (a * b).apply(p) == a.apply(b.apply(p)).
  RigidTransform operator*(const RigidTransform& o) const {
    return {rotation * o.rotation, rotation.apply(o.translation) + translation};
  }

  RigidTransform inverse() const {
    const Mat3 rt = rotation.transposed();
    return {rt, -rt.apply(translation)};
  }
};

}  // namespace octgb::geom
