#pragma once
/// \file mesh.hpp
/// Indexed triangle mesh + icosphere generation.
///
/// The molecular surface module triangulates each atom's exposed sphere with
/// a subdivided icosahedron; this file provides the (unit-sphere) template
/// meshes, cached per subdivision level.

#include <cstdint>
#include <vector>

#include "octgb/geom/vec3.hpp"

namespace octgb::geom {

/// Indexed triangle mesh. Vertices of icosphere meshes lie on the unit
/// sphere so a vertex doubles as its own outward normal.
struct TriMesh {
  std::vector<Vec3> vertices;
  struct Tri {
    std::uint32_t v0, v1, v2;
  };
  std::vector<Tri> triangles;

  std::size_t num_vertices() const { return vertices.size(); }
  std::size_t num_triangles() const { return triangles.size(); }

  /// Total surface area of the mesh.
  double area() const;
};

/// Unit icosahedron mesh (12 vertices, 20 faces).
TriMesh icosahedron();

/// Unit icosphere: icosahedron subdivided `level` times (4^level × 20
/// faces), vertices re-projected to the unit sphere. Results are cached;
/// the returned reference is valid for the program's lifetime.
const TriMesh& icosphere(int level);

/// Euler characteristic V - E + F (2 for a sphere) — used in tests.
long euler_characteristic(const TriMesh& mesh);

}  // namespace octgb::geom
