#pragma once
/// \file quadrature.hpp
/// Symmetric Gaussian quadrature rules for triangles (Dunavant 1985),
/// degrees 1–8 — the rules the paper cites ([11]) for sampling integration
/// points in each surface triangle's interior.
///
/// Points are barycentric; weights are normalized to sum to 1, so applying a
/// rule to a 3D triangle multiplies each weight by the triangle area.

#include <span>
#include <vector>

#include "octgb/geom/vec3.hpp"

namespace octgb::geom {

/// One quadrature point in barycentric coordinates with normalized weight.
struct TriQuadPoint {
  double a, b, c;  ///< barycentric coordinates (a + b + c = 1)
  double w;        ///< weight; Σw = 1 over the rule
};

/// Return the Dunavant rule exact for polynomials up to `degree` (1..8).
/// Degrees outside the range are clamped. The returned span is static data.
std::span<const TriQuadPoint> dunavant_rule(int degree);

/// Number of points in the rule for `degree`.
std::size_t dunavant_point_count(int degree);

/// A quadrature point positioned on a concrete 3D triangle.
struct SurfacePoint {
  Vec3 position;
  Vec3 normal;    ///< unit outward normal
  double weight;  ///< quadrature weight × triangle area (units of area)
};

/// Expand a rule onto the 3D triangle (v0,v1,v2), appending one SurfacePoint
/// per rule point to `out`. `normal` must be the unit outward normal of the
/// triangle (flat-facet normal, or a per-point normal supplied by the
/// caller through the overload below).
void apply_rule_to_triangle(std::span<const TriQuadPoint> rule, const Vec3& v0,
                            const Vec3& v1, const Vec3& v2, const Vec3& normal,
                            std::vector<SurfacePoint>& out);

/// Overload with per-vertex normals, interpolated (then renormalized) at
/// each quadrature point — appropriate for curved (sphere-patch) triangles.
void apply_rule_to_triangle(std::span<const TriQuadPoint> rule, const Vec3& v0,
                            const Vec3& v1, const Vec3& v2, const Vec3& n0,
                            const Vec3& n1, const Vec3& n2,
                            std::vector<SurfacePoint>& out);

/// Area of a 3D triangle.
double triangle_area(const Vec3& v0, const Vec3& v1, const Vec3& v2);

}  // namespace octgb::geom
