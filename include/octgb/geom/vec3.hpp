#pragma once
/// \file vec3.hpp
/// 3-component double vector and the small amount of linear algebra the
/// library needs (rigid transforms for the docking-scan use case the paper
/// motivates: moving/rotating a ligand octree without rebuilding it).

#include <cmath>
#include <ostream>

namespace octgb::geom {

/// Plain 3D vector of doubles. Deliberately an aggregate: trivially
/// copyable, usable in contiguous hot arrays and in mpp messages.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector; zero vector maps to zero (callers guard where it matters).
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }

  double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double dist(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
inline double dist2(const Vec3& a, const Vec3& b) { return (a - b).norm2(); }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace octgb::geom
