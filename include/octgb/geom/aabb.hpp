#pragma once
/// \file aabb.hpp
/// Axis-aligned bounding box — the octree's spatial primitive.

#include <algorithm>
#include <limits>
#include <span>

#include "octgb/geom/vec3.hpp"

namespace octgb::geom {

/// Axis-aligned box. Default-constructed boxes are "empty" (inverted) and
/// grow correctly under expand().
struct Aabb {
  Vec3 lo{+std::numeric_limits<double>::infinity(),
          +std::numeric_limits<double>::infinity(),
          +std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  bool empty() const { return lo.x > hi.x; }

  void expand(const Vec3& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  void expand(const Aabb& b) {
    if (b.empty()) return;
    expand(b.lo);
    expand(b.hi);
  }

  Vec3 center() const { return (lo + hi) * 0.5; }
  Vec3 extent() const { return hi - lo; }

  /// Longest side length; 0 for an empty box.
  double max_extent() const {
    if (empty()) return 0.0;
    const Vec3 e = extent();
    return std::max({e.x, e.y, e.z});
  }

  /// Half-diagonal: radius of the bounding sphere of the box.
  double radius() const { return empty() ? 0.0 : extent().norm() * 0.5; }

  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  bool overlaps(const Aabb& b) const {
    return !empty() && !b.empty() && lo.x <= b.hi.x && b.lo.x <= hi.x &&
           lo.y <= b.hi.y && b.lo.y <= hi.y && lo.z <= b.hi.z &&
           b.lo.z <= hi.z;
  }

  /// Bounding box of a point set.
  static Aabb of(std::span<const Vec3> pts) {
    Aabb b;
    for (const Vec3& p : pts) b.expand(p);
    return b;
  }

  /// Smallest cube centered like this box that contains it (octrees use
  /// cubical root cells so children are cubes too).
  Aabb cubified() const {
    if (empty()) return *this;
    const Vec3 c = center();
    const double h = max_extent() * 0.5;
    return {{c.x - h, c.y - h, c.z - h}, {c.x + h, c.y + h, c.z + h}};
  }
};

}  // namespace octgb::geom
