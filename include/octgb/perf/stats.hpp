#pragma once
/// \file stats.hpp
/// Wall-clock timing and summary statistics over repeated runs
/// (the paper reports min/max over 20 runs in Fig. 6 and avg ± std in
/// Fig. 10).

#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

namespace octgb::perf {

/// Monotonic wall-clock timer.
class Timer {
 public:
  /// Starts timing immediately.
  Timer() : start_(clock::now()) {}
  /// Restart the elapsed-time origin at now.
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Streaming summary statistics (Welford) with min/max.
class RunStats {
 public:
  /// Fold one sample into the running moments and extrema.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Number of samples added so far.
  std::size_t count() const { return n_; }
  /// Arithmetic mean; 0 with no samples.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Smallest sample; 0 with no samples.
  double min() const { return n_ ? min_ : 0.0; }
  /// Largest sample; 0 with no samples.
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// Sample standard deviation (square root of variance()).
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Relative signed percentage difference of `x` w.r.t. reference `ref`.
inline double percent_error(double x, double ref) {
  if (ref == 0.0) return x == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return 100.0 * (x - ref) / std::abs(ref);
}

}  // namespace octgb::perf
