#pragma once
/// \file machine_model.hpp
/// Model of the paper's evaluation platform (Table I): Lonestar4 —
/// 3.33 GHz hexa-core Intel Westmere, 2 sockets (12 cores) per node, 24 GB
/// RAM, 12 MB shared L3 per socket, InfiniBand fat-tree at 40 Gb/s.
///
/// The model converts measured WorkCounters and communication traffic into
/// time. Per-operation cycle costs were chosen once (documented below) and
/// are never tuned per-experiment; the network side follows the textbook
/// cost model the paper itself uses for its complexity analysis
/// (t_s · log P + t_w · words).

#include <cstdint>

#include "octgb/perf/counters.hpp"
#include "octgb/perf/topology.hpp"

namespace octgb::perf {

/// Per-operation cycle costs and machine constants.
struct MachineModel {
  // --- Table I constants -------------------------------------------------
  double clock_hz = 3.33e9;          ///< Westmere core clock
  int cores_per_node = 12;           ///< 2 sockets × 6 cores
  int sockets_per_node = 2;          ///< sockets (L3 domains) per node
  double l3_bytes = 12.0 * 1024 * 1024;  ///< per-socket shared L3
  double ram_bytes = 24.0 * 1024 * 1024 * 1024;  ///< RAM per node

  // --- Network (InfiniBand, 40 Gb/s p2p, fat tree) ------------------------
  // Startup terms are software latencies of a collective tree level
  // (MPI stack + progress engine), not raw wire latency — MVAPICH2-era
  // small-message collectives cost tens of microseconds per step.
  double net_ts = 1.5e-5;            ///< inter-node per-level latency (s)
  double net_tw = 2.0e-10;           ///< inter-node per-byte time (s): 5 GB/s
  double shm_ts = 5.0e-6;            ///< intra-node (shared-memory MPI) latency
  double shm_tw = 5.0e-11;           ///< intra-node per-byte time: 20 GB/s

  // --- Per-operation compute costs, in cycles ----------------------------
  // A Born exact interaction is a dot product + r^6 + divide (~1 rsqrt-free
  // form): ~24 cycles. A GB pair term adds exp+sqrt: ~60 cycles. Node-level
  // pseudo-interactions cost the same arithmetic as their exact
  // counterparts; tree visits model pointer chasing + the far/near test.
  double cyc_born_exact = 24.0;      ///< exact atom×q-point interaction
  double cyc_born_approx = 24.0;     ///< node-level Born pseudo-interaction
  double cyc_born_visit = 14.0;      ///< Born-phase tree-node visit
  double cyc_push_visit = 10.0;      ///< push-phase prefix-pass node visit
  double cyc_push_atom = 20.0;       ///< per-atom Born-radius finalization
  double cyc_epol_exact = 60.0;      ///< exact GB pair term (exp + sqrt)
  double cyc_epol_bin = 60.0;        ///< bin-pair Epol pseudo-interaction
  double cyc_epol_visit = 14.0;      ///< Epol-phase tree-node visit
  double cyc_pairlist_pair = 60.0;   ///< neighbour-list pair evaluation
  double cyc_grid_cell = 10.0;       ///< GBr6 volume-grid cell evaluation
  double cyc_spawn = 90.0;           ///< cilk-style spawn overhead
  double cyc_steal = 900.0;          ///< successful steal (cold deque access)

  /// Multiplier applied to interaction costs when approximate math
  /// (fast rsqrt / exp) is enabled. The paper measures ×1.42 end-to-end.
  double approx_math_speedup = 1.42;

  /// Cache pressure: when a core's working set exceeds its share of L3,
  /// interaction costs inflate toward `cache_miss_penalty` (the paper uses
  /// this effect to explain the superlinear region of Fig. 6).
  double cache_miss_penalty = 1.6;

  /// Raw compute seconds for `w` on a single core whose working set is
  /// `working_set_bytes`, with `cores_sharing_l3` cores resident on the
  /// same socket. `approx_math` applies the fast-math discount.
  double compute_seconds(const WorkCounters& w, double working_set_bytes,
                         int cores_sharing_l3, bool approx_math) const;

  /// Cache inflation factor in [1, cache_miss_penalty].
  double cache_factor(double working_set_bytes, int cores_sharing_l3) const;

  /// Table I constants overlaid with a *discovered* host shape: core and
  /// socket counts (and the shared-L3 capacity, when sysfs reports it)
  /// come from `topo`; the per-operation cycle costs and network terms
  /// stay the documented Westmere values — they price operations, not the
  /// host, and re-tuning them per machine would undermine the "chosen
  /// once" contract above. The flat fallback topology therefore yields a
  /// single-socket model whose cache term matches one uniform domain.
  static MachineModel from_topology(const CpuTopology& topo);
};

/// Traffic summary for one rank (filled by the mpp runtime).
struct CommCounters {
  std::uint64_t messages_internode = 0;  ///< messages crossing a node boundary
  std::uint64_t messages_intranode = 0;  ///< messages between co-located ranks
  std::uint64_t bytes_internode = 0;     ///< payload bytes sent inter-node
  std::uint64_t bytes_intranode = 0;     ///< payload bytes sent intra-node
  std::uint64_t collectives = 0;  ///< number of collective operations joined

  /// Field-wise accumulation (e.g. totals across ranks).
  CommCounters& operator+=(const CommCounters& o) {
    messages_internode += o.messages_internode;
    messages_intranode += o.messages_intranode;
    bytes_internode += o.bytes_internode;
    bytes_intranode += o.bytes_intranode;
    collectives += o.collectives;
    return *this;
  }
};

/// Communication seconds for one rank's traffic under the model.
double comm_seconds(const MachineModel& m, const CommCounters& c);

}  // namespace octgb::perf
