#pragma once
/// \file topology.hpp
/// CPU topology discovery: sockets, last-level-cache (L3) domains, and SMT
/// sibling groups, read once from Linux sysfs with a flat single-domain
/// fallback for containers and non-Linux hosts.
///
/// The paper's platform model (machine_model.hpp) fixes "2 sockets x 6
/// cores, 12 MB shared L3 per socket" as Table I constants; this module
/// discovers the *actual* host shape so the locality-aware execution layer
/// (DESIGN.md §2.11) can act on it:
///   - ws::Scheduler derives hierarchical steal-victim tiers (same L3 →
///     same socket → remote) from the per-cpu domain ids;
///   - InteractionPlan's NUMA first-touch pass partitions the SoA planes
///     across socket domains;
///   - MachineModel::from_topology folds the discovered shape into the
///     modeled cache-pressure terms.
///
/// Discovery never throws: any missing or malformed sysfs attribute
/// degrades the affected cpu (and, when nothing at all is readable, the
/// whole topology) to the flat fallback — one socket, one L3 domain, no
/// SMT — which reproduces the pre-locality uniform behaviour exactly.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace octgb::perf {

/// Discovered shape of one host (or of a golden sysfs fixture in tests).
struct CpuTopology {
  /// One logical cpu's domain memberships. Domain ids are dense indices
  /// in [0, sockets) / [0, l3_domains) / [0, smt_groups), not raw sysfs
  /// package ids, so they are usable as array indices directly.
  struct Cpu {
    int id = 0;         ///< logical cpu number (sysfs cpuN)
    int socket = 0;     ///< dense socket (package / NUMA-ish) domain id
    int l3 = 0;         ///< dense last-level-cache sharing domain id
    int smt_group = 0;  ///< dense physical-core (thread sibling) group id
  };

  std::vector<Cpu> cpus;  ///< indexed by logical cpu id, dense from 0
  int sockets = 1;        ///< distinct socket domains
  int l3_domains = 1;     ///< distinct L3 sharing domains
  int smt_groups = 1;     ///< distinct physical cores
  /// True when sysfs was missing/unreadable and the topology is the
  /// synthesized flat single-domain shape rather than a discovery result.
  bool flat_fallback = false;
  /// Per-socket shared L3 capacity in bytes when sysfs reports it
  /// (cache/index3/size); 0 when unknown — callers keep their defaults.
  std::uint64_t l3_bytes = 0;

  int num_cpus() const { return static_cast<int>(cpus.size()); }

  /// Domain lookups clamp out-of-range cpu ids into the table (threads on
  /// cpus beyond the discovered set — offline cpus, affinity-restricted
  /// containers — fold onto the modulo cpu rather than faulting).
  const Cpu& cpu(int id) const {
    return cpus[static_cast<std::size_t>(id) % cpus.size()];
  }
  bool same_l3(int cpu_a, int cpu_b) const {
    return cpu(cpu_a).l3 == cpu(cpu_b).l3;
  }
  bool same_socket(int cpu_a, int cpu_b) const {
    return cpu(cpu_a).socket == cpu(cpu_b).socket;
  }
};

/// Parse a topology from a sysfs cpu directory (normally
/// "/sys/devices/system/cpu"; tests point it at golden fixture trees).
/// Reads, per cpuN: topology/physical_package_id (socket),
/// cache/index3/shared_cpu_list (L3 domain; falls back to index2, then to
/// the socket domain when no cache info exists — the container case), and
/// topology/thread_siblings_list (SMT group). Never throws: if no cpu
/// exposes a package id, returns the flat fallback sized to
/// `fallback_cpus` (0 → std::thread::hardware_concurrency).
CpuTopology discover_topology(const std::string& sysfs_cpu_root,
                              int fallback_cpus = 0);

/// The flat single-domain shape: `n` cpus, one socket, one L3 domain,
/// every cpu its own SMT group.
CpuTopology flat_topology(int n);

/// The host's topology, discovered once from /sys/devices/system/cpu on
/// first use and cached for the process lifetime. Thread-safe.
const CpuTopology& topology();

/// First-touch pass: zero `data` with one thread per socket domain, each
/// pinned to a cpu of its socket, so the backing pages of freshly grown
/// buffers are faulted in on the NUMA node whose workers will stream them.
/// `boundary` (size K+1, monotone, boundary.back() == data.size()) carves
/// `data` into K segments and `domain[k]` names the socket that touches
/// segment k. Returns false (and touches nothing) when the topology has a
/// single socket, the pass would be pointless (`data` empty), or the
/// inputs are malformed — the caller's ordinary zero-fill then stands.
/// Touching already-resident pages is a redundant (but harmless) zero
/// sweep: first-touch placement only binds pages on their first write.
bool touch_zero_by_domain(std::span<double> data,
                          std::span<const std::size_t> boundary,
                          std::span<const int> domain,
                          const CpuTopology& topo);

}  // namespace octgb::perf
