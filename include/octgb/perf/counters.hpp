#pragma once
/// \file counters.hpp
/// Deterministic work counters.
///
/// The container this reproduction runs in has a single CPU core, so
/// cluster wall-clock cannot be observed directly. Instead every kernel
/// counts the operations it performs — exact pair interactions, node-level
/// pseudo-interactions, tree-node visits — per rank and per worker. The
/// MachineModel (machine_model.hpp) converts these measured counts into
/// modeled time on the paper's hardware. Counts are exact and reproducible,
/// so "who wins and by what factor" is driven entirely by real algorithmic
/// behaviour.

#include <cstdint>

namespace octgb::perf {

/// Operation counts for one run segment (one rank, or one whole run).
struct WorkCounters {
  // Born-radii phase (APPROX-INTEGRALS)
  std::uint64_t born_exact = 0;      ///< exact atom×q-point interactions
  std::uint64_t born_approx = 0;     ///< node-level pseudo interactions
  std::uint64_t born_visits = 0;     ///< atoms-octree nodes visited
  // PUSH-INTEGRALS-TO-ATOMS
  std::uint64_t push_visits = 0;     ///< nodes visited in the prefix pass
  std::uint64_t push_atoms = 0;      ///< atoms finalized
  // Epol phase (APPROX-EPOL)
  std::uint64_t epol_exact = 0;      ///< exact atom×atom GB pair terms
  std::uint64_t epol_bins = 0;       ///< bin-pair pseudo interactions
  std::uint64_t epol_visits = 0;     ///< octree nodes visited
  // Baseline engines
  std::uint64_t pairlist_pairs = 0;  ///< nblist pair evaluations
  std::uint64_t grid_cells = 0;      ///< GBr6 volume-grid cell evaluations
  // Scheduler
  std::uint64_t spawns = 0;
  std::uint64_t steals = 0;

  WorkCounters& operator+=(const WorkCounters& o) {
    born_exact += o.born_exact;
    born_approx += o.born_approx;
    born_visits += o.born_visits;
    push_visits += o.push_visits;
    push_atoms += o.push_atoms;
    epol_exact += o.epol_exact;
    epol_bins += o.epol_bins;
    epol_visits += o.epol_visits;
    pairlist_pairs += o.pairlist_pairs;
    grid_cells += o.grid_cells;
    spawns += o.spawns;
    steals += o.steals;
    return *this;
  }

  /// Total "interaction-equivalent" operations (for quick logging).
  std::uint64_t total_interactions() const {
    return born_exact + born_approx + epol_exact + epol_bins +
           pairlist_pairs + grid_cells;
  }
};

}  // namespace octgb::perf
