#pragma once
/// \file counters.hpp
/// Deterministic work counters.
///
/// This reproduction cannot run on the paper's 36-node cluster, so cluster
/// wall-clock is modeled rather than timed. Every kernel counts the
/// operations it performs — exact pair interactions, node-level
/// pseudo-interactions, tree-node visits — per rank and per worker. The
/// MachineModel (machine_model.hpp) converts these measured counts into
/// modeled time on the paper's hardware. Counts are exact and reproducible,
/// so "who wins and by what factor" is driven entirely by real algorithmic
/// behaviour. (Host-side per-phase wall time *is* observable: enable the
/// span recorder in octgb/trace/trace.hpp — see OBSERVABILITY.md.)

#include <cstddef>
#include <cstdint>

/// Measurement: deterministic operation counters, run statistics, and
/// the Table I machine model that converts counts into modeled time.
namespace octgb::perf {

/// Operation counts for one run segment (one rank, or one whole run).
///
/// Adding a field? Update operator+=, bump kFieldCount (the static_assert
/// below and PerfTest.CountersSumCoversEveryField enforce both), and give
/// it a name in trace::MetricsRegistry::add_work if it should be exported.
struct WorkCounters {
  // Born-radii phase (APPROX-INTEGRALS)
  std::uint64_t born_exact = 0;      ///< exact atom×q-point interactions
  std::uint64_t born_approx = 0;     ///< node-level pseudo interactions
  std::uint64_t born_visits = 0;     ///< atoms-octree nodes visited
  // PUSH-INTEGRALS-TO-ATOMS
  std::uint64_t push_visits = 0;     ///< nodes visited in the prefix pass
  std::uint64_t push_atoms = 0;      ///< atoms finalized
  // Epol phase (APPROX-EPOL)
  std::uint64_t epol_exact = 0;      ///< exact atom×atom GB pair terms
  std::uint64_t epol_bins = 0;       ///< bin-pair pseudo interactions
  std::uint64_t epol_visits = 0;     ///< octree nodes visited
  // Baseline engines
  std::uint64_t pairlist_pairs = 0;  ///< nblist pair evaluations
  std::uint64_t grid_cells = 0;      ///< GBr6 volume-grid cell evaluations
  // Scheduler
  std::uint64_t spawns = 0;          ///< tasks spawned (ws::Scheduler)
  std::uint64_t steals = 0;          ///< successful steals (ws::Scheduler)

  /// Number of uint64 count fields above. Guards field-coverage: the
  /// static_assert below fails compilation when a field is added without
  /// updating this, and the perf_test sum test fails when operator+= or
  /// the MetricsRegistry export misses one.
  static constexpr std::size_t kFieldCount = 12;

  /// Field-wise accumulation (per-rank counters into run totals).
  WorkCounters& operator+=(const WorkCounters& o) {
    born_exact += o.born_exact;
    born_approx += o.born_approx;
    born_visits += o.born_visits;
    push_visits += o.push_visits;
    push_atoms += o.push_atoms;
    epol_exact += o.epol_exact;
    epol_bins += o.epol_bins;
    epol_visits += o.epol_visits;
    pairlist_pairs += o.pairlist_pairs;
    grid_cells += o.grid_cells;
    spawns += o.spawns;
    steals += o.steals;
    return *this;
  }

  /// Total "interaction-equivalent" operations (for quick logging).
  ///
  /// Deliberately sums only the six *interaction* counters — born_exact,
  /// born_approx, epol_exact, epol_bins, pairlist_pairs, grid_cells —
  /// i.e. the O(pairs) inner-loop evaluations whose per-op cost is
  /// comparable. The other six fields are excluded on purpose:
  ///  - born_visits / push_visits / epol_visits count tree-node
  ///    *traversal* steps (MAC tests, prefix accumulation), orders of
  ///    magnitude cheaper than a pair evaluation and priced separately by
  ///    MachineModel::compute_seconds;
  ///  - push_atoms counts per-atom finalizations (O(N), not O(pairs));
  ///  - spawns / steals are scheduler bookkeeping, not numerical work —
  ///    they feed the model's parallel-overhead term instead.
  /// Folding any of these in would let a traversal-heavy configuration
  /// look as "busy" as a pair-heavy one and skew quick comparisons.
  std::uint64_t total_interactions() const {
    return born_exact + born_approx + epol_exact + epol_bins +
           pairlist_pairs + grid_cells;
  }
};

// Every field is a uint64 count; when this stops holding (someone added a
// non-count member or forgot to bump kFieldCount) the arithmetic in
// operator+= and the field-coverage test stop being trustworthy.
static_assert(sizeof(WorkCounters) ==
                  WorkCounters::kFieldCount * sizeof(std::uint64_t),
              "WorkCounters field added: update kFieldCount, operator+=, "
              "and trace::MetricsRegistry::add_work");

/// Interaction-plan cache statistics (core/plan.hpp). Counts the
/// plan/execute decisions an evaluation stream made: how often the cached
/// plan's key matched, why it was invalidated when it did not, and which
/// execution tier ran (flat-list replay vs Born-result reuse). Exported
/// under the `plan.*` metric names by trace::MetricsRegistry::add_plan
/// (schema in OBSERVABILITY.md).
struct PlanCounters {
  std::uint64_t builds = 0;       ///< plan captures (instrumented traversals)
  std::uint64_t replays = 0;      ///< flat-list replay executions
  std::uint64_t born_reuses = 0;  ///< Born phase skipped (cached radii valid)
  std::uint64_t key_hits = 0;     ///< evaluations whose plan key matched
  std::uint64_t key_misses = 0;   ///< evaluations that needed a new key
  std::uint64_t invalidated_topology = 0;  ///< rebuild/engine-change misses
  std::uint64_t invalidated_params = 0;    ///< eps_born/criterion/kernel misses
  std::uint64_t invalidated_drift = 0;     ///< refit drift failed validation
  std::uint64_t validations = 0;  ///< far-list admissibility re-checks run

  /// Field count guard, mirroring WorkCounters.
  static constexpr std::size_t kFieldCount = 9;

  /// Field-wise accumulation (per-session counters into run totals).
  PlanCounters& operator+=(const PlanCounters& o) {
    builds += o.builds;
    replays += o.replays;
    born_reuses += o.born_reuses;
    key_hits += o.key_hits;
    key_misses += o.key_misses;
    invalidated_topology += o.invalidated_topology;
    invalidated_params += o.invalidated_params;
    invalidated_drift += o.invalidated_drift;
    validations += o.validations;
    return *this;
  }
};

static_assert(sizeof(PlanCounters) ==
                  PlanCounters::kFieldCount * sizeof(std::uint64_t),
              "PlanCounters field added: update kFieldCount, operator+=, "
              "and trace::MetricsRegistry::add_plan");

/// Locality-aware plan-execution statistics (core/plan.hpp run coalescing
/// + the NUMA first-touch pass, DESIGN.md §2.11). Counts what the
/// locality-aware finalize carved and what the replay loops did with it;
/// exported under the `plan.locality.*` metric names by
/// trace::MetricsRegistry::add_locality (schema in OBSERVABILITY.md).
struct LocalityCounters {
  std::uint64_t runs = 0;          ///< streaming runs formed by finalize
  std::uint64_t run_owners = 0;    ///< owner groups covered by those runs
  std::uint64_t chunks = 0;        ///< chunks carved along run boundaries
  std::uint64_t baseline_chunks = 0;  ///< chunks the cost-only carving yields
  std::uint64_t prefetch_batches = 0; ///< next-run prefetch batches issued
  std::uint64_t numa_touch_passes = 0;  ///< domain-partitioned touch passes

  /// Field count guard, mirroring WorkCounters.
  static constexpr std::size_t kFieldCount = 6;

  /// Field-wise accumulation (per-plan counters into run totals).
  LocalityCounters& operator+=(const LocalityCounters& o) {
    runs += o.runs;
    run_owners += o.run_owners;
    chunks += o.chunks;
    baseline_chunks += o.baseline_chunks;
    prefetch_batches += o.prefetch_batches;
    numa_touch_passes += o.numa_touch_passes;
    return *this;
  }

  /// Mean owners per run of the carvings counted so far (0 when none).
  double mean_run_length() const {
    return runs ? static_cast<double>(run_owners) / static_cast<double>(runs)
                : 0.0;
  }
};

static_assert(sizeof(LocalityCounters) ==
                  LocalityCounters::kFieldCount * sizeof(std::uint64_t),
              "LocalityCounters field added: update kFieldCount, operator+=, "
              "and trace::MetricsRegistry::add_locality");

/// Multi-tenant scoring-service statistics (octgb/svc/service.hpp). Counts
/// the admission, cache, and execution outcomes of a service's lifetime;
/// exported under the `svc.*` metric names by
/// trace::MetricsRegistry::add_svc (schema in OBSERVABILITY.md, operator
/// handbook in docs/SERVICE.md).
struct ServiceCounters {
  std::uint64_t submitted = 0;       ///< jobs offered to submit()
  std::uint64_t completed = 0;       ///< jobs finished (result delivered)
  std::uint64_t rejected_tenant_queue_full = 0;  ///< per-tenant bound hit
  std::uint64_t rejected_queue_full = 0;         ///< global bound hit
  std::uint64_t rejected_too_large = 0;          ///< molecule over max_atoms
  std::uint64_t rejected_shutting_down = 0;      ///< submitted past stop()
  std::uint64_t preprocessed = 0;    ///< artifact builds (cache misses)
  std::uint64_t evaluations = 0;     ///< single-energy evaluations executed
  std::uint64_t poses_scored = 0;    ///< poses scored by screen jobs
  std::uint64_t cache_hits = 0;      ///< submissions served by a warm artifact
  std::uint64_t cache_misses = 0;    ///< submissions that built their artifact
  std::uint64_t cache_evictions = 0; ///< artifacts evicted by the byte budget

  /// Field count guard, mirroring WorkCounters.
  static constexpr std::size_t kFieldCount = 12;

  /// Total submissions turned away, over every rejection reason.
  std::uint64_t rejected_total() const {
    return rejected_tenant_queue_full + rejected_queue_full +
           rejected_too_large + rejected_shutting_down;
  }

  /// Field-wise accumulation (per-service counters into fleet totals).
  ServiceCounters& operator+=(const ServiceCounters& o) {
    submitted += o.submitted;
    completed += o.completed;
    rejected_tenant_queue_full += o.rejected_tenant_queue_full;
    rejected_queue_full += o.rejected_queue_full;
    rejected_too_large += o.rejected_too_large;
    rejected_shutting_down += o.rejected_shutting_down;
    preprocessed += o.preprocessed;
    evaluations += o.evaluations;
    poses_scored += o.poses_scored;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    return *this;
  }
};

static_assert(sizeof(ServiceCounters) ==
                  ServiceCounters::kFieldCount * sizeof(std::uint64_t),
              "ServiceCounters field added: update kFieldCount, operator+=, "
              "and trace::MetricsRegistry::add_svc");

/// Octree construction statistics (octree/octree.cpp). Each Octree carries
/// its own instance (Octree::build_stats()) so concurrent service builds
/// never share a counter; benches accumulate them into run totals. All
/// counts are deterministic functions of the input and the BuildParams —
/// bench_octree_build's CI gate asserts they stay flat across repeats.
/// Exported under the `tree.build.*` metric names by
/// trace::MetricsRegistry::add_tree_build (schema in OBSERVABILITY.md).
struct TreeBuildCounters {
  std::uint64_t morton_builds = 0;  ///< sort-based linear-octree builds
  std::uint64_t legacy_builds = 0;  ///< recursive reference builds
  std::uint64_t points_sorted = 0;  ///< (key, id) pairs sorted
  std::uint64_t sort_passes = 0;    ///< radix permute passes (serial path)
  std::uint64_t nodes_emitted = 0;  ///< nodes written (all builds/resorts)
  std::uint64_t leaves_emitted = 0; ///< leaves among nodes_emitted
  std::uint64_t resorts = 0;        ///< re-sort refits performed
  std::uint64_t resort_moved = 0;   ///< points whose Morton key changed

  /// Field count guard, mirroring WorkCounters.
  static constexpr std::size_t kFieldCount = 8;

  /// Field-wise accumulation (per-tree counters into run totals).
  TreeBuildCounters& operator+=(const TreeBuildCounters& o) {
    morton_builds += o.morton_builds;
    legacy_builds += o.legacy_builds;
    points_sorted += o.points_sorted;
    sort_passes += o.sort_passes;
    nodes_emitted += o.nodes_emitted;
    leaves_emitted += o.leaves_emitted;
    resorts += o.resorts;
    resort_moved += o.resort_moved;
    return *this;
  }
};

static_assert(sizeof(TreeBuildCounters) ==
                  TreeBuildCounters::kFieldCount * sizeof(std::uint64_t),
              "TreeBuildCounters field added: update kFieldCount, "
              "operator+=, and trace::MetricsRegistry::add_tree_build");

}  // namespace octgb::perf
