#pragma once
/// \file admission.hpp
/// Admission control and per-tenant fair-share queuing for the scoring
/// service.
///
/// Two mechanisms, both bounded (the service never grows a queue without
/// limit — overload is surfaced as an immediate reject-with-reason the
/// client can act on, not as silent latency):
///
///   - Admission — every submit is checked against the per-tenant queue
///     bound, the global queue bound, the molecule size ceiling, and the
///     service lifecycle state; a failed check returns a RejectReason.
///   - Fair share — dispatch order between tenants is start-time fair
///     queuing: each tenant carries a virtual time that advances by
///     (job cost / tenant weight) as its jobs run; the dispatcher always
///     serves the backlogged tenant with the smallest virtual time. A
///     tenant returning from idle is floored to the minimum live virtual
///     time, so sleeping never banks credit, and a flood from one tenant
///     delays another's job by at most (inflight + 1) jobs — the
///     starvation bound svc_test pins.
///
/// Tuning knobs and worked examples: docs/SERVICE.md.

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace octgb::svc {

/// Why a submission was not admitted.
enum class RejectReason : std::uint8_t {
  None,            ///< admitted
  TenantQueueFull, ///< this tenant's bounded queue is at capacity
  QueueFull,       ///< the global queue bound is reached
  TooLarge,        ///< molecule exceeds max_atoms
  ShuttingDown,    ///< service stopping; no new work
};

/// Stable lowercase label for metrics/logs (e.g. "tenant_queue_full").
const char* to_string(RejectReason r);

/// Per-tenant policy.
struct TenantConfig {
  double weight = 1.0;          ///< fair-share weight (relative)
  std::size_t max_queued = 64;  ///< bounded queue depth; excess is rejected
};

/// Service-wide admission policy.
struct AdmissionConfig {
  std::size_t max_total_queued = 256;  ///< across all tenants
  std::size_t max_atoms = 2'000'000;   ///< per-molecule ceiling
  TenantConfig default_tenant;         ///< policy for unregistered tenants
};

/// Weighted start-time fair queues over opaque job ids.
///
/// Not thread-safe by itself — the service serializes access under its own
/// mutex (the queue operations are O(log tenants) map walks, cheap enough
/// to hold the lock across).
class FairQueues {
 public:
  /// Install (or update) a tenant's policy before traffic arrives.
  void configure(const std::string& tenant, const TenantConfig& cfg);

  /// Admission check + enqueue of `job_id` for `tenant`. Returns
  /// RejectReason::None on success. Unregistered tenants are auto-created
  /// with `admission.default_tenant`.
  RejectReason push(const std::string& tenant, std::uint64_t job_id,
                    const AdmissionConfig& admission);

  /// Dequeue the next job under fair-share order; false when all queues
  /// are empty. Reports the owning tenant via `tenant_out`.
  bool pop(std::uint64_t* job_id, std::string* tenant_out);

  /// Charge `cost` (any consistent unit — the service uses execution
  /// seconds) against `tenant`'s virtual time. Call once per completed job.
  void charge(const std::string& tenant, double cost);

  /// Jobs currently queued across all tenants.
  std::size_t total_queued() const { return total_; }

  /// Jobs currently queued for one tenant (0 when unknown).
  std::size_t queued(const std::string& tenant) const;

  /// Tenants ever seen (configured or auto-created).
  std::size_t tenants() const { return tenants_.size(); }

 private:
  struct Tenant {
    TenantConfig cfg;
    std::deque<std::uint64_t> q;
    double vtime = 0.0;  ///< weighted service received
  };

  double min_live_vtime() const;

  std::map<std::string, Tenant> tenants_;
  std::size_t total_ = 0;
};

}  // namespace octgb::svc
