#pragma once
/// \file digest.hpp
/// Content digests for the multi-tenant scoring service (octgb/svc/).
///
/// The artifact cache (cache.hpp) must key warm `ScoringSession`s by
/// *everything that can change the evaluation's preprocessing or its
/// partition structure* — two submissions may share an artifact only when
/// their trees, their Born-phase interaction plan, and their arithmetic
/// flavor are guaranteed identical. The digest therefore folds in:
///
///   - the molecule's content: every atom's position/radius/charge bits
///     (the name is deliberately excluded — two uploads of the same
///     coordinates hit the same artifact regardless of what the tenant
///     called the file);
///   - the surface sampling parameters (they shape T_Q);
///   - the octree build parameters for both trees (they shape topology);
///   - the partition/arithmetic knobs of ApproxParams: eps_born, the
///     strict-criterion switch, the kernel kind, approx_math, and the
///     requested VectorParams (width and precision change result bits, so
///     they must separate artifacts — see DESIGN.md §2.8).
///
/// Deliberately *excluded* are the evaluation-time-only knobs that a warm
/// session re-dials per job without touching trees or plan: eps_epol and
/// the GB dielectric constants. An ε_epol re-dial on a popular molecule is
/// exactly the traffic the cache exists to accelerate.
///
/// The digest is 128 bits built from two independently-seeded streaming
/// mixes (FNV-1a-64 and a splitmix64 chain), so accidental collisions are
/// out of reach for any realistic cache population; svc_test pins the
/// collision-freedom across each folded dimension.

#include <cstdint>
#include <string>

#include "octgb/core/engine.hpp"
#include "octgb/mol/molecule.hpp"
#include "octgb/surface/surface.hpp"

namespace octgb::svc {

/// 128-bit content digest — the artifact-cache key.
struct Digest {
  std::uint64_t hi = 0;  ///< splitmix64-chained half
  std::uint64_t lo = 0;  ///< FNV-1a-64 half

  /// Value equality (both halves).
  friend bool operator==(const Digest&, const Digest&) = default;
  /// Lexicographic order so Digest can key ordered containers.
  friend bool operator<(const Digest& a, const Digest& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32-hex-character rendering for logs and metrics labels.
  std::string hex() const;
};

/// Incremental digest builder: feed byte ranges, then finish().
class DigestBuilder {
 public:
  /// Mix `n` raw bytes into both streams.
  void bytes(const void* data, std::size_t n);

  /// Mix one trivially-copyable value by its object representation.
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "digest input must be trivially copyable");
    bytes(&v, sizeof(T));
  }

  /// The digest of everything fed so far.
  Digest finish() const { return Digest{hi_, lo_}; }

 private:
  std::uint64_t hi_ = 0x6a09e667f3bcc909ULL;  // splitmix chain state
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a-64 state
};

/// Digest of a molecule's evaluation-relevant content (positions, radii,
/// charges — not the name or labels).
Digest digest_molecule(const mol::Molecule& mol);

/// The artifact-cache key for one job's inputs: molecule content, surface
/// sampling, tree-build parameters, and the partition/arithmetic knobs of
/// `config` (see the file comment for the exact in/out list).
Digest digest_job_inputs(const mol::Molecule& mol,
                         const surface::SurfaceParams& surface,
                         const core::EngineConfig& config);

}  // namespace octgb::svc
