#pragma once
/// \file cache.hpp
/// Content-addressed LRU artifact cache for the scoring service.
///
/// An *artifact* is one molecule's fully warmed evaluation state — the
/// `core::ScoringSession` holding its octrees, reusable scratch, captured
/// interaction plan and Born-result cache. Building one is the expensive
/// cold path (surface trees + plan capture); every later submission with
/// the same content digest (digest.hpp) skips all of it and goes straight
/// to a warm `evaluate_at` / `score_poses`.
///
/// Semantics (operator handbook: docs/SERVICE.md):
///
///   - Keying — the full job digest: molecule content + surface/tree
///     parameters + partition/arithmetic knobs. Same digest ⇒ identical
///     trees, identical plan, identical result bits (DESIGN.md §2.8).
///   - Sharing — `acquire()` returns a shared handle; concurrent misses on
///     one digest build the artifact exactly once (later arrivals block on
///     the entry's build latch instead of duplicating the preprocessing).
///     Jobs executing on one artifact serialize on its `exec_mu` — the
///     parallelism of the service comes from *different* molecules running
///     on disjoint core subsets, not from racing one session.
///   - Eviction — strict LRU under a byte budget. Entry cost is measured
///     after the build (trees + scratch + plan + molecule + surface).
///     Evicted entries are unlinked from the index; in-flight jobs holding
///     the shared handle finish unharmed and the memory is reclaimed when
///     the last handle drops. The most-recently-used entry is never
///     evicted, so one oversized molecule degrades the cache to
///     single-entry instead of thrashing to nothing.
///
/// Thread-safety: every public method is safe to call concurrently;
/// svc_test exercises concurrent acquire/evict under TSan.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "octgb/core/session.hpp"
#include "octgb/svc/digest.hpp"

namespace octgb::svc {

/// Aggregate cache statistics (exported as `svc.cache.*`, OBSERVABILITY.md).
struct CacheStats {
  std::uint64_t hits = 0;        ///< acquires served by a resident artifact
  std::uint64_t misses = 0;      ///< acquires that had to build
  std::uint64_t evictions = 0;   ///< entries unlinked by the byte budget
  std::uint64_t coalesced = 0;   ///< misses that waited on another build
  std::size_t bytes = 0;         ///< resident bytes (built entries)
  std::size_t entries = 0;       ///< resident entry count
};

/// One cached artifact: the warm session plus its execution lock.
struct Artifact {
  Digest digest;                                  ///< cache key
  std::unique_ptr<core::ScoringSession> session;  ///< warm state (post-build)
  std::mutex exec_mu;     ///< jobs on this artifact serialize here
  std::size_t bytes = 0;  ///< measured footprint (0 until built)
  std::uint64_t uses = 0; ///< acquire count (monotonic)
};

/// Shared handle to a cached (or freshly built) artifact.
using ArtifactPtr = std::shared_ptr<Artifact>;

/// Builds an artifact's session on a cache miss; invoked outside the
/// cache-wide lock so concurrent misses on *different* digests build in
/// parallel.
using ArtifactBuilder = std::function<std::unique_ptr<core::ScoringSession>()>;

/// Content-hash-keyed LRU cache of warm scoring artifacts.
class ArtifactCache {
 public:
  /// `budget_bytes` is the resident-set high-water target. The
  /// most-recently-used entry is exempt from eviction, so the floor is one
  /// resident artifact — a budget of 0 degrades the cache to
  /// single-entry (repeat traffic on one hot molecule still hits).
  explicit ArtifactCache(std::size_t budget_bytes);

  ArtifactCache(const ArtifactCache&) = delete;             ///< non-copyable
  ArtifactCache& operator=(const ArtifactCache&) = delete;  ///< non-assignable

  /// Look up `d`; on a miss run `build` (outside the cache lock) and
  /// insert the result. `hit` (optional) reports whether the artifact was
  /// already resident *and built*. Never returns null: a failed build
  /// propagates the builder's exception to every waiter.
  ArtifactPtr acquire(const Digest& d, const ArtifactBuilder& build,
                      bool* hit = nullptr);

  /// True when `d` is resident and built (no LRU touch — for tests).
  bool contains(const Digest& d) const;

  /// Statistics snapshot.
  CacheStats stats() const;

  /// The configured byte budget.
  std::size_t budget_bytes() const { return budget_; }

  /// Drop every resident entry (in-flight handles stay valid).
  void clear();

 private:
  struct Slot {
    ArtifactPtr artifact;
    bool built = false;             ///< build finished successfully
    bool failed = false;            ///< build threw (slot is a tombstone)
    std::list<Digest>::iterator lru;  ///< position in lru_ (MRU at front)
  };

  void touch(Slot& s);           // move to MRU; caller holds mu_
  void evict_over_budget();      // caller holds mu_

  const std::size_t budget_;
  mutable std::mutex mu_;
  std::condition_variable build_cv_;  ///< signaled when any build settles
  std::map<Digest, Slot> index_;
  std::list<Digest> lru_;  ///< front = most recent
  CacheStats stats_;
};

}  // namespace octgb::svc
