#pragma once
/// \file placement.hpp
/// Disjoint core-subset placement for concurrent scoring jobs.
///
/// The paper's runtime assumes one job owning the whole machine; the
/// service instead follows the SET scheduler's `Cluster::try_alloc`
/// discipline (SNIPPETS.md §3): the machine is a fixed range of cores, and
/// every running job holds a *disjoint contiguous sub-range* sized to its
/// work. Jobs therefore never oversubscribe one scheduler pool — each
/// executes under its own `ws::Scheduler` of exactly `Lease::count`
/// workers, and the kernel-level parallel structure of a job depends only
/// on its width (which DESIGN.md §2.8 pins to a pure function of the
/// artifact, making repeat executions bit-identical).
///
/// `try_alloc` is first-fit over a free bitmap and fails (returns nullopt)
/// rather than blocks; `alloc` waits on a condition variable. The
/// SET-style proportional split — divide a core range among children in
/// proportion to their work — is provided as `proportional_split` for
/// sizing executor groups from expected tenant load.

#include <cstdint>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <span>
#include <vector>

namespace octgb::svc {

/// One job's hold on a contiguous, disjoint core range.
struct CoreLease {
  int first = -1;  ///< first core index, -1 when invalid
  int count = 0;   ///< cores held

  /// True for a live lease returned by alloc/try_alloc.
  bool valid() const { return first >= 0 && count > 0; }
};

/// Bitmap allocator handing out disjoint contiguous core ranges.
///
/// Thread-safe; leases must be returned via release() exactly once.
class CoreAllocator {
 public:
  /// Manage cores [0, total). `total` must be >= 1.
  explicit CoreAllocator(int total);

  CoreAllocator(const CoreAllocator&) = delete;             ///< non-copyable
  CoreAllocator& operator=(const CoreAllocator&) = delete;  ///< non-assignable

  /// Allocate `count` contiguous free cores (first fit); nullopt when no
  /// such range is currently free. `count` is clamped to [1, total()].
  std::optional<CoreLease> try_alloc(int count);

  /// Blocking allocate: waits until try_alloc succeeds.
  CoreLease alloc(int count);

  /// Return a lease. Invalid leases are ignored.
  void release(const CoreLease& lease);

  /// Total cores managed.
  int total() const { return static_cast<int>(used_.size()); }
  /// Cores currently held by leases.
  int in_use() const;
  /// Leases granted since construction.
  std::uint64_t grants() const;
  /// alloc() calls that had to wait for capacity.
  std::uint64_t waits() const;

  /// SET-style proportional core split: divide `cores` among children in
  /// proportion to `ops` (expected work), guaranteeing every child with
  /// nonzero work at least one core when `cores >= children`. Returns one
  /// count per child summing to exactly `cores`.
  static std::vector<int> proportional_split(std::span<const std::uint64_t> ops,
                                             int cores);

 private:
  std::optional<CoreLease> try_alloc_locked(int count);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> used_;  ///< per-core busy flag
  int in_use_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t waits_ = 0;
};

}  // namespace octgb::svc
