#pragma once
/// \file service.hpp
/// ScoringService — the multi-tenant scoring front end (`octgb::svc`).
///
/// The service multiplexes many concurrent GB evaluations over one
/// machine, tying together every reuse mechanism the pipeline already
/// has (reusable `Preprocessed` trees, zero-alloc `EvalScratch`, cached
/// interaction plans, Born-result reuse) behind an async job queue:
///
///   submit(JobRequest) ──admission──▶ per-tenant bounded queue
///        │ reject-with-reason                 │ fair-share pick
///        ▼                                    ▼
///   JobTicket (wait/result)  ◀──────── executor threads
///                                             │
///                              artifact cache (digest → warm session)
///                                             │
///                              CoreAllocator lease (disjoint subset)
///                                             │
///                              ws::Scheduler(width) · evaluate/score
///
/// Key invariants (DESIGN.md §2.8, operator handbook docs/SERVICE.md):
///
///   - Cache-hit evaluations are bit-identical to cache-miss evaluations
///     of the same digest: the digest pins everything that shapes trees,
///     plan, and arithmetic; the job width is a pure function of the
///     artifact, so the parallel reduction structure repeats exactly.
///   - Queues are bounded; overload surfaces as an immediate
///     RejectReason, never as unbounded growth.
///   - Concurrent jobs run on *disjoint* core subsets (SET-style
///     try_alloc placement), not an oversubscribed pool.
///   - Jobs touching one artifact serialize on its lock; tenant fairness
///     is start-time fair queuing weighted by TenantConfig::weight.
///
/// Shutdown: stop() (also run by the destructor) refuses new submissions,
/// lets the executors drain every queued job, then joins them.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "octgb/core/session.hpp"
#include "octgb/svc/admission.hpp"
#include "octgb/svc/cache.hpp"
#include "octgb/svc/digest.hpp"
#include "octgb/svc/placement.hpp"
#include "octgb/trace/metrics.hpp"

namespace octgb::svc {

/// What a job computes.
enum class JobKind : std::uint8_t {
  Evaluate,    ///< one Epol evaluation at the request's parameters
  PoseScreen,  ///< score a rigid pose stream (docking rescoring)
};

/// One tenant submission: the molecule, how to evaluate it, and (for
/// PoseScreen) the pose stream.
struct JobRequest {
  std::string tenant = "default";      ///< fair-share accounting identity
  mol::Molecule molecule;              ///< owned input (moved in)
  surface::SurfaceParams surface;      ///< surface sampling (digest-keyed)
  core::EngineConfig config;           ///< engine knobs (partition fields
                                       ///< digest-keyed, eps_epol/gb free)
  JobKind kind = JobKind::Evaluate;    ///< what to compute
  std::vector<geom::RigidTransform> poses;  ///< PoseScreen transforms
  std::size_t ligand_begin = 0;             ///< PoseScreen ligand split
  core::PoseMode pose_mode = core::PoseMode::CrossScreen;  ///< PoseScreen mode
};

/// What a finished job reports back.
struct JobResult {
  double epol = 0.0;  ///< Evaluate: Epol (kcal/mol); PoseScreen: base Epol
  std::vector<core::PoseScore> pose_scores;  ///< PoseScreen per-pose scores
  bool cache_hit = false;     ///< artifact was already warm
  int cores = 0;              ///< width of the core lease the job ran on
  double queue_seconds = 0.0; ///< submit → executor pickup
  double exec_seconds = 0.0;  ///< pickup → done (incl. preprocess on miss)
  double total_seconds = 0.0; ///< submit → done
  Digest digest;              ///< the artifact key the job resolved to
};

/// Handle to one submission: either rejected (reason()) or pending/done.
///
/// Copyable and cheap — copies share the same state. wait()/result() are
/// safe from any thread.
class JobTicket {
 public:
  /// Default ticket: invalid (reject() == ShuttingDown).
  JobTicket() = default;

  /// True when the job was admitted (a result will eventually arrive).
  bool accepted() const;
  /// The rejection reason (None when accepted).
  RejectReason reject() const;
  /// Block until the job finishes. No-op for rejected tickets.
  void wait() const;
  /// True once the result is available (or the ticket was rejected).
  bool done() const;
  /// wait(), then the result. Must not be called on a rejected ticket.
  const JobResult& result() const;

 private:
  friend class ScoringService;
  struct State;
  std::shared_ptr<State> st_;
};

/// Service-wide latency digest over completed jobs (milliseconds).
struct LatencySummary {
  std::size_t count = 0;  ///< completed jobs measured
  double p50_ms = 0.0;    ///< median submit→done latency
  double p95_ms = 0.0;    ///< 95th percentile
  double p99_ms = 0.0;    ///< 99th percentile
  double max_ms = 0.0;    ///< worst observed
};

/// ScoringService configuration.
struct ServiceConfig {
  int cores = 8;           ///< machine span the CoreAllocator manages
  int executors = 4;       ///< concurrent jobs (dispatcher threads)
  int max_job_cores = 4;   ///< per-job width ceiling
  std::size_t atoms_per_core = 2000;  ///< width sizing: 1 core per this many
  std::size_t cache_budget_bytes = std::size_t{512} << 20;  ///< artifact LRU
  AdmissionConfig admission;  ///< queue bounds and size ceiling
  /// Pin each job's scheduler workers onto its leased core block (best
  /// effort — a refused affinity call leaves the worker unpinned). With
  /// pinning, a width-W job occupies exactly cores [lease.first,
  /// lease.first + W) and all its steals stay inside that block (the
  /// ws.steal.offblock invariant; see DESIGN.md §2.11).
  bool pin_cores = true;
};

/// The multi-tenant scoring service. Construct, submit, wait on tickets;
/// stop() (or destruction) drains queued work and joins the executors.
class ScoringService {
 public:
  /// Start `config.executors` executor threads immediately.
  explicit ScoringService(ServiceConfig config);
  /// stop()s, draining queued jobs.
  ~ScoringService();

  ScoringService(const ScoringService&) = delete;             ///< non-copyable
  ScoringService& operator=(const ScoringService&) = delete;  ///< non-assignable

  /// Install a tenant's fair-share weight and queue bound (optional —
  /// unknown tenants get AdmissionConfig::default_tenant on first submit).
  void register_tenant(const std::string& tenant, const TenantConfig& cfg);

  /// Admit a job. Always returns a ticket: accepted() tells whether it
  /// entered the queue, reject() why it did not. Admission is synchronous
  /// and cheap (digest + bounds checks); execution is asynchronous.
  JobTicket submit(JobRequest req);

  /// Block until every queued and running job has finished.
  void drain();

  /// Refuse new submissions, drain the queues, join the executors.
  /// Idempotent.
  void stop();

  /// Lifetime counters (admission, cache, execution outcomes).
  perf::ServiceCounters counters() const;

  /// Percentile digest of completed-job submit→done latencies.
  LatencySummary latency() const;

  /// The artifact cache (for stats and tests).
  const ArtifactCache& cache() const { return cache_; }

  /// The core allocator (for stats and tests).
  const CoreAllocator& allocator() const { return alloc_; }

  /// Jobs completed for one tenant (starvation checks).
  std::uint64_t completed_for(const std::string& tenant) const;

  /// The configuration the service runs with.
  const ServiceConfig& config() const { return config_; }

  /// Export counters + cache + latency under `prefix` into `m` per the
  /// OBSERVABILITY.md `svc.*` schema.
  void export_metrics(trace::MetricsRegistry& m,
                      const std::string& prefix = "") const;

  /// The core width a molecule of `atoms` atoms executes with — a pure
  /// function of the artifact (bit-identity depends on this; see
  /// DESIGN.md §2.8).
  int width_for(std::size_t atoms) const;

  /// Steal-tier classification sampled per job (each job's final
  /// evaluation — the engine resets scheduler stats per compute) and
  /// accumulated for the service lifetime. `offblock` must stay 0 when
  /// pin_cores is on: it counts steals whose victim sits outside the
  /// thief's leased core block.
  struct StealTierTotals {
    std::uint64_t local = 0;
    std::uint64_t socket = 0;
    std::uint64_t remote = 0;
    std::uint64_t offblock = 0;
    std::uint64_t pinned_workers = 0;  ///< max pinned workers of any job
  };
  StealTierTotals steal_tiers() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    JobRequest req;
    Digest digest;
    std::shared_ptr<JobTicket::State> state;
    std::chrono::steady_clock::time_point submitted;
  };

  /// Executor-local scheduler pool key: (width, first leased core) when
  /// pinning — affinity is construction-only, so a lease landing on a
  /// different block needs a different scheduler — or (width, -1) without.
  using SchedPool = std::map<std::pair<int, int>,
                             std::unique_ptr<ws::Scheduler>>;

  void executor_loop(int executor_id);
  void run_job(Job job, SchedPool& pool);
  void finish(Job& job, JobResult result);

  ServiceConfig config_;
  ArtifactCache cache_;
  CoreAllocator alloc_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< executors wait here for jobs
  std::condition_variable drain_cv_;  ///< drain() waits here
  FairQueues queues_;
  std::map<std::uint64_t, Job> pending_;  ///< admitted, not yet picked up
  std::uint64_t next_job_id_ = 1;
  int active_jobs_ = 0;
  bool stopping_ = false;
  perf::ServiceCounters counters_;
  StealTierTotals steal_tiers_;  ///< guarded by mu_
  std::map<std::string, std::uint64_t> completed_by_tenant_;
  std::vector<double> latencies_ms_;  ///< completed-job total latencies

  std::vector<std::thread> executors_;
};

}  // namespace octgb::svc
