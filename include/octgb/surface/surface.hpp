#pragma once
/// \file surface.hpp
/// Molecular surface sampling: Gaussian quadrature points (position, unit
/// outward normal, weight) on the boundary of the union of atom spheres.
///
/// Each atom's sphere is triangulated with a subdivided icosahedron; a
/// Dunavant rule places quadrature points inside every triangle; points
/// buried inside any other atom are culled, leaving a quadrature of the
/// exposed surface. Weights are scaled so a complete isolated sphere
/// integrates to exactly 4πr² (polyhedral-deficit correction), which makes
/// the single-sphere Born radius exact — the calibration tests rely on it.

#include <cstddef>
#include <span>
#include <vector>

#include "octgb/geom/vec3.hpp"
#include "octgb/mol/molecule.hpp"

namespace octgb::surface {

/// Sampling resolution knobs.
struct SurfaceParams {
  int subdivision = 1;   ///< icosphere level: 20·4^level triangles per atom
  int quad_degree = 1;   ///< Dunavant rule degree (1..8) per triangle
  /// Shrink factor for the burial test: a point is buried if it lies
  /// inside another atom's sphere scaled by this factor. Slightly < 1
  /// keeps quadrature points of tangent spheres alive.
  double burial_scale = 0.99;
};

/// The sampled surface (structure-of-arrays: the quadrature octree and the
/// integral kernels stream these).
struct Surface {
  std::vector<geom::Vec3> positions;
  std::vector<geom::Vec3> normals;   ///< unit outward
  std::vector<double> weights;       ///< area weights, Å²
  std::vector<std::uint32_t> owner_atom;  ///< atom each point came from

  std::size_t size() const { return positions.size(); }
  /// Total quadrature weight = estimated exposed surface area.
  double total_area() const;
  std::size_t footprint_bytes() const;
};

/// Sample the molecular surface of `mol`.
Surface build_surface(const mol::Molecule& mol,
                      const SurfaceParams& params = {});

/// Sample a single isolated sphere (used by calibration tests and the
/// quickstart example).
Surface build_sphere_surface(const geom::Vec3& center, double radius,
                             const SurfaceParams& params = {});

}  // namespace octgb::surface
