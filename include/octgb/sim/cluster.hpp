#pragma once
/// \file cluster.hpp
/// Cluster simulation harness.
///
/// The evaluation container has one CPU core, so the paper's cluster runs
/// are reproduced by *measurement + model* (DESIGN.md §2): every rank's
/// kernels execute for real (sequentially, deterministic) and report exact
/// operation counts; communication volumes follow the same binomial-tree
/// collectives the mpp runtime implements; the MachineModel converts both
/// into time on the Table I hardware. Energies and Born radii produced
/// here are bit-comparable to a real hybrid run on the same segments.
///
/// Timing model
///   compute:  T_r = cycles(work_r) · cache_factor / (clock · p · eff(p))
///             eff(p) accounts for work-stealing overhead and the
///             cilk++/MPI interfacing cost the paper mentions;
///             cache_factor uses the *per-socket resident bytes*
///             (processes_per_socket × working set), which is what makes
///             the hybrid variant win for large molecules (§IV-B).
///   comm:     per collective, critical-path over the tree levels with
///             intra-node levels priced at (shm_ts, shm_tw) and inter-node
///             levels at (net_ts, net_tw); gathers price the root's
///             sequential receives. Matches the algorithms in mpp.hpp.

#include <vector>

#include "octgb/core/engine.hpp"
#include "octgb/mpp/mpp.hpp"
#include "octgb/perf/machine_model.hpp"

namespace octgb::sim {

/// One simulated cluster configuration (P ranks × p threads).
struct ClusterConfig {
  int ranks = 12;            ///< P
  int threads_per_rank = 1;  ///< p
  mpp::Topology topology{12};
  perf::MachineModel machine;
  bool weighted_division = false;
  bool atom_based_epol = false;
  /// Multiplicative overhead per extra worker thread (cilk++ scheduling;
  /// the paper's footnote 5 notes cilk-4.5.4 generated slower code than
  /// later runtimes).
  double thread_overhead = 0.04;
  /// Fixed per-run cost of interfacing cilk++ with MPI (§V-C: "an
  /// additional overhead of interfacing cilk++ and MPI … prominent for
  /// smaller molecules"). Charged when P > 1 and p > 1.
  double mpi_cilk_interface_seconds = 8e-4;
};

/// Result of one simulated run.
struct SimResult {
  double epol = 0.0;
  std::vector<double> born;  ///< input order
  std::vector<perf::WorkCounters> work_per_rank;
  perf::WorkCounters work_total;
  double compute_seconds = 0.0;  ///< max over ranks (modeled)
  double comm_seconds = 0.0;     ///< modeled collective time
  double total_seconds = 0.0;    ///< compute + comm
  std::size_t bytes_per_rank = 0;  ///< replicated-data footprint
  int total_cores = 0;             ///< P × p
};

/// Simulate the Fig. 4 algorithm for one configuration.
SimResult simulate_cluster(const core::GBEngine& engine,
                           const ClusterConfig& config);

/// Timing jitter for repeated-run experiments (Fig. 6 plots min and max of
/// 20 runs): OS noise perturbs each rank's compute multiplicatively and
/// the network perturbs each collective; the max over more ranks drifts
/// higher — the effect that separates OCT_MPI's max curve from the hybrid
/// one. Returns a perturbed total time for one simulated repeat.
double jittered_total_seconds(const SimResult& base, const ClusterConfig& cfg,
                              std::uint64_t repeat_seed);

// --- checkpoint/recovery model (DESIGN.md §2.5) ----------------------------

/// Failure environment for a modeled run of the elastic driver.
struct RecoveryConfig {
  /// Mean time between failures across the whole allocation.
  double mtbf_seconds = 3600.0;
  /// Cost of writing one superstep checkpoint to stable storage.
  double checkpoint_seconds = 0.05;
  /// Cost of restarting from the last checkpoint after a failure
  /// (re-division + reloading durable state).
  double restart_seconds = 0.1;
  /// Checkpoint cadence; 0 selects the Young/Daly optimum.
  double checkpoint_interval_seconds = 0.0;
};

/// Expected cost breakdown of running `base` under `RecoveryConfig`.
struct RecoveryEstimate {
  double interval_seconds = 0.0;          ///< cadence actually used
  double optimal_interval_seconds = 0.0;  ///< Young/Daly √(2·δ·MTBF)
  double checkpoint_overhead_seconds = 0.0;  ///< (T/τ)·δ
  double expected_failures = 0.0;            ///< T_total / MTBF
  double rework_seconds = 0.0;  ///< failures · (τ/2 + restart)
  double expected_total_seconds = 0.0;
  /// (expected_total - fault-free) / fault-free.
  double overhead_fraction = 0.0;
};

/// Young's optimal checkpoint interval √(2·δ·MTBF) for checkpoint cost δ.
double optimal_checkpoint_interval(double checkpoint_seconds,
                                   double mtbf_seconds);

/// First-order Young/Daly estimate: expected runtime of `base` when
/// checkpointing every `interval` and losing on average half an interval
/// plus a restart per failure. bench_faults sweeps the cadence against
/// this curve.
RecoveryEstimate estimate_recovery(const SimResult& base,
                                   const RecoveryConfig& config);

/// Analytic collective costs (mirror mpp's implementations; exposed for
/// tests and the scalability benches).
struct CollectiveCosts {
  const perf::MachineModel& machine;
  const mpp::Topology& topology;
  int ranks;

  /// Critical-path seconds of a binomial reduce or bcast of `bytes`.
  double tree_collective(double bytes) const;
  /// allreduce = reduce + bcast.
  double allreduce(double bytes) const;
  /// gatherv of `total_bytes` to root + size/content bcast back.
  double allgatherv(double total_bytes) const;
};

}  // namespace octgb::sim
