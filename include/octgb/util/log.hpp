#pragma once
/// \file log.hpp
/// Minimal leveled logger. Thread safe; writes to stderr.
///
/// Usage:
///   OCTGB_LOG(info) << "built octree with " << n << " nodes";
/// Level is controlled globally (Logger::set_level) or via the OCTGB_LOG
/// environment variable (trace|debug|info|warn|error|off).

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace octgb::util {

enum class LogLevel : int { trace = 0, debug, info, warn, error, off };

/// Parse a level name; unknown names map to info.
LogLevel parse_log_level(const std::string& name);

/// Global logger singleton.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) { level_.store(static_cast<int>(lvl)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }
  bool enabled(LogLevel lvl) const {
    return static_cast<int>(lvl) >= level_.load();
  }

  /// Write one formatted line (thread safe).
  void write(LogLevel lvl, const std::string& msg);

 private:
  Logger();
  std::atomic<int> level_;
  std::mutex mu_;
};

/// RAII line builder used by the OCTGB_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Logger::instance().write(lvl_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};

}  // namespace octgb::util

#define OCTGB_LOG(lvl)                                                       \
  if (!::octgb::util::Logger::instance().enabled(                           \
          ::octgb::util::LogLevel::lvl)) {                                   \
  } else                                                                     \
    ::octgb::util::LogLine(::octgb::util::LogLevel::lvl)
