#pragma once
/// \file expected.hpp
/// Minimal expected<T, E> for C++20 (std::expected is C++23).
///
/// Used by the mpp runtime's recoverable communication paths: operations
/// that can fail *as part of normal operation* (timeouts, dead peers,
/// corrupted messages) return an Expected instead of throwing, so callers
/// like the elastic hybrid driver can branch on the error and recover
/// without exception-driven control flow in hot retry loops.

#include <utility>
#include <variant>

#include "octgb/util/check.hpp"

namespace octgb::util {

/// Empty success payload for operations that return no value.
struct Unit {};

/// Either a value of type T or an error of type E. T and E may be the
/// same type — use the `success` / `failure` factories, which are always
/// unambiguous (the converting constructors exist for convenience when
/// T and E differ).
template <class T, class E>
class Expected {
 public:
  /// Construct a success from a value (requires T != E to be unambiguous).
  Expected(T v) : v_(std::in_place_index<0>, std::move(v)) {}
  /// Construct a failure from an error (requires T != E).
  Expected(E e) : v_(std::in_place_index<1>, std::move(e)) {}

  /// Explicit success factory.
  static Expected success(T v) {
    return Expected(std::in_place_index<0>, std::move(v));
  }
  /// Explicit failure factory.
  static Expected failure(E e) {
    return Expected(std::in_place_index<1>, std::move(e));
  }

  /// True when this holds a value.
  bool has_value() const { return v_.index() == 0; }
  /// True when this holds a value.
  explicit operator bool() const { return has_value(); }

  /// The value; OCTGB_CHECKs that one is present.
  T& value() {
    OCTGB_CHECK_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(v_);
  }
  /// The value (const).
  const T& value() const {
    OCTGB_CHECK_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(v_);
  }
  /// The error; OCTGB_CHECKs that one is present.
  const E& error() const {
    OCTGB_CHECK_MSG(!has_value(), "Expected::error() on a value");
    return std::get<1>(v_);
  }
  /// The error (mutable).
  E& error() {
    OCTGB_CHECK_MSG(!has_value(), "Expected::error() on a value");
    return std::get<1>(v_);
  }

 private:
  template <std::size_t I, class V>
  Expected(std::in_place_index_t<I> tag, V&& v)
      : v_(tag, std::forward<V>(v)) {}

  std::variant<T, E> v_;
};

}  // namespace octgb::util
