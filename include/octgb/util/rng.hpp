#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation.
///
/// We implement xoshiro256** (Blackman & Vigna) from scratch rather than
/// relying on std::mt19937 so that (a) streams are cheap to split per worker
/// thread in the work-stealing scheduler, and (b) every synthetic molecule is
/// reproducible bit-for-bit from a 64-bit seed across platforms.

#include <cstdint>
#include <string_view>

namespace octgb::util {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state and
/// as a standalone hash/stream-splitting mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stable 64-bit FNV-1a hash of a string — used to derive per-molecule seeds
/// from benchmark names ("1PPE_l_b" etc.) deterministically.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = __builtin_sqrt(-2.0 * __builtin_log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Derive an independent child stream (stream splitting for workers).
  Xoshiro256 split() {
    return Xoshiro256((*this)() ^ 0x9e3779b97f4a7c15ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace octgb::util
