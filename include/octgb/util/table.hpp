#pragma once
/// \file table.hpp
/// Aligned text tables and CSV emission for the benchmark harness.
///
/// Every bench prints the same rows the paper plots, as (a) an aligned table
/// on stdout for humans and (b) an optional CSV file for re-plotting.

#include <string>
#include <vector>

namespace octgb::util {

/// Column-aligned text table with an optional title.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Must be called before adding rows.
  void header(std::vector<std::string> cols);

  /// Append one row; must match the header width.
  void row(std::vector<std::string> cells);

  /// Convenience: format cells with snprintf-style specs.
  void rowf(std::initializer_list<std::string> cells);

  /// Render the aligned table.
  std::string str() const;

  /// Render as CSV (RFC-4180 quoting for commas/quotes/newlines).
  std::string csv() const;

  /// Write CSV to a file; creates parent-less paths as-is. Returns false on
  /// I/O failure.
  bool write_csv(const std::string& path) const;

  /// Print the aligned table to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header_row() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace octgb::util
