#pragma once
/// \file args.hpp
/// Tiny declarative command-line parser used by examples and benches.
///
/// Supports `--name value`, `--name=value`, and boolean `--flag`. Unknown
/// arguments raise CheckError so typos fail loudly.

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace octgb::util {

/// Declarative argument set. Register options, then parse(argc, argv).
class Args {
 public:
  /// Register a string option with a default.
  Args& add(const std::string& name, std::string* target,
            const std::string& help);
  /// Register a double option.
  Args& add(const std::string& name, double* target, const std::string& help);
  /// Register an integer option.
  Args& add(const std::string& name, int* target, const std::string& help);
  /// Register a 64-bit option.
  Args& add(const std::string& name, long long* target,
            const std::string& help);
  /// Register a boolean flag (no value; presence sets true).
  Args& flag(const std::string& name, bool* target, const std::string& help);

  /// Parse argv. Prints help and exits(0) on --help. Throws CheckError on
  /// unknown or malformed options.
  void parse(int argc, char** argv);

  /// Render the help text.
  std::string help(const std::string& program) const;

 private:
  struct Option {
    std::string help;
    bool is_flag = false;
    std::function<void(const std::string&)> set;
    std::string default_repr;
  };
  std::map<std::string, Option> opts_;
  std::vector<std::string> order_;
};

}  // namespace octgb::util
