#pragma once
/// \file strings.hpp
/// Small string utilities shared across modules (PDB parsing, CLI, tables).

#include <string>
#include <string_view>
#include <vector>

namespace octgb::util {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a single-character delimiter. Empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary runs of whitespace. Empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view s);

/// Upper-case an ASCII string.
std::string to_upper(std::string_view s);

/// Parse a double from a fixed-width field (tolerates surrounding blanks).
/// Returns `fallback` if the field is blank; throws CheckError on garbage.
double parse_double_field(std::string_view field, double fallback);

/// Parse an int from a fixed-width field (tolerates surrounding blanks).
int parse_int_field(std::string_view field, int fallback);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("1.4 GB").
std::string human_bytes(double bytes);

/// Human-readable duration from seconds ("3.3 min", "4.8 s", "640 ms").
std::string human_seconds(double seconds);

}  // namespace octgb::util
