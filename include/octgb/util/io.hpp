#pragma once
/// \file io.hpp
/// Hardened low-level I/O loops shared by the persistence streams and the
/// out-of-process mpp transport (DESIGN.md §2.10).
///
/// POSIX read()/write() may transfer fewer bytes than asked (short reads on
/// sockets and pipes are routine, short writes happen under memory
/// pressure) and may fail spuriously with EINTR when a signal lands — the
/// chaos launcher delivers real signals, so the transport hits both paths
/// for real. Every byte-exact transfer in the repo goes through the two
/// loops below instead of re-implementing the retry dance: the TCP frame
/// codec (mpp/proc), the file-backed checkpoint store (core/checkpoint)
/// and the octree stream reader (octree/serialize) all reuse them, so the
/// truncation-sweep hardening applies uniformly.

#include <cstddef>
#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "octgb/util/expected.hpp"

namespace octgb::util::io {

/// Why a byte-exact transfer stopped early.
enum class IoStatus : std::uint8_t {
  Eof,    ///< clean end of stream / peer close before `want` bytes
  Error,  ///< errno-style failure (never EINTR — those are retried)
};

/// A failed byte-exact transfer: what stopped it and how far it got.
struct IoError {
  IoStatus status = IoStatus::Eof;
  int errno_value = 0;     ///< errno at failure (0 for Eof)
  std::size_t done = 0;    ///< bytes transferred before the failure
  std::size_t want = 0;    ///< bytes requested

  /// Human-readable description ("eof after 12 of 64 bytes", ...).
  std::string describe() const;
};

/// Result of a byte-exact transfer.
using IoResult = Expected<Unit, IoError>;

/// Read exactly `bytes` from `fd`, looping over EINTR and short reads.
/// A clean close mid-buffer reports Eof with the progress made — the
/// caller decides whether a partial frame is truncation or corruption.
IoResult read_exact(int fd, void* data, std::size_t bytes);

/// Write exactly `bytes` to `fd`, looping over EINTR and short writes.
/// EPIPE/ECONNRESET surface as Error with the errno preserved so the
/// transport can map them onto its connection-loss taxonomy.
IoResult write_exact(int fd, const void* data, std::size_t bytes);

/// Read exactly `bytes` from a stream; false on truncation (stream state
/// is left failed, matching std::istream conventions).
bool read_exact(std::istream& in, void* data, std::size_t bytes);

/// Chunk size used by read_vector (1 MiB): bounds the damage of a lying
/// element count to one chunk past the actual data.
inline constexpr std::size_t kReadChunkBytes = std::size_t{1} << 20;

/// Read `count` trivially-copyable elements into `v`, growing chunk by
/// chunk so a corrupt header claiming 2^32 elements cannot force a huge
/// allocation before the stream runs dry. Returns false on truncation.
template <class T>
bool read_vector(std::istream& in, std::vector<T>& v, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  constexpr std::size_t kChunkElems =
      kReadChunkBytes / sizeof(T) ? kReadChunkBytes / sizeof(T) : 1;
  v.clear();
  std::size_t done = 0;
  while (done < count) {
    const std::size_t batch = std::min(kChunkElems, count - done);
    v.resize(done + batch);
    if (!read_exact(in, v.data() + done, batch * sizeof(T))) return false;
    done += batch;
  }
  return true;
}

/// Read a whole file into `out` (replacing it); false when the file
/// cannot be opened or read. Uses the fd read loop, so a file shrinking
/// mid-read yields a clean failure rather than garbage.
bool read_file(const std::string& path, std::string& out);

/// Atomically replace `path` with `bytes`: write to a sibling temp file
/// (unique per process), fsync-less rename into place. Readers see either
/// the old content or the complete new content, never a torn write — the
/// property the cross-process checkpoint store leans on when a rank is
/// SIGKILLed mid-put. False on any I/O failure (the temp file is removed).
bool write_file_atomic(const std::string& path, std::string_view bytes);

}  // namespace octgb::util::io
