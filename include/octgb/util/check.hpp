#pragma once
/// \file check.hpp
/// Lightweight runtime checking macros used across octgb.
///
/// OCTGB_CHECK is always on (release included): the library is a research
/// code and silent corruption is worse than a crash. OCTGB_DCHECK compiles
/// away in release builds and guards hot paths.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace octgb::util {

/// Exception thrown by OCTGB_CHECK failures. Deriving from logic_error makes
/// failed invariants testable with EXPECT_THROW.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "OCTGB_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace octgb::util

#define OCTGB_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond))                                                          \
      ::octgb::util::check_failed(#cond, __FILE__, __LINE__, {});         \
  } while (0)

#define OCTGB_CHECK_MSG(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::octgb::util::check_failed(#cond, __FILE__, __LINE__, os_.str());  \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define OCTGB_DCHECK(cond) ((void)0)
#else
#define OCTGB_DCHECK(cond) OCTGB_CHECK(cond)
#endif
