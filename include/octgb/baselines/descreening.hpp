#pragma once
/// \file descreening.hpp
/// Pairwise-descreening Born-radius models — the algorithms behind the GB
/// implementations the paper compares against (Table II):
///   HCT  (Hawkins–Cramer–Truhlar 1996)  — Amber 12 & Gromacs GB-HCT
///   OBC  (Onufriev–Bashford–Case 2004)  — NAMD
///   Still (Still et al. 1990 / Qiu 1997 volume descreening) — Tinker, GBr6
///
/// All operate on a nonbonded pair list (nblist) with a distance cutoff —
/// the space/accuracy tradeoff the paper contrasts with octrees.

#include <span>
#include <vector>

#include "octgb/mol/molecule.hpp"
#include "octgb/octree/nblist.hpp"
#include "octgb/perf/counters.hpp"

namespace octgb::baselines {

/// Which pairwise Born-radius model to evaluate.
enum class BornModel { HCT, OBC, Still };

const char* born_model_name(BornModel m);

/// Model constants (defaults follow the cited papers).
struct DescreeningParams {
  double dielectric_offset = 0.09;  ///< ρ̃ = ρ − offset (HCT/OBC), Å
  /// S_j descreening scale factor. Amber uses ~0.8 for real proteins with
  /// bonded-overlap corrections; our pairwise sum has no overlap
  /// correction and the synthetic residues interpenetrate more than real
  /// ones, so the calibrated value is lower to keep HCT radii tracking
  /// the exact surface-r⁶ radii (Fig. 9's "Amber close to naive").
  double hct_scale = 0.55;
  /// Upper clamp on Born radii (Å) — packages cap at ~rgbmax; without it
  /// deeply buried atoms blow up and flip the energy sign.
  double max_born = 30.0;
  // OBC II tanh coefficients.
  double obc_alpha = 1.0;
  double obc_beta = 0.8;
  double obc_gamma = 4.85;
  /// Still/Qiu volume-descreening strength (dimensionless); calibrated so
  /// the resulting |Epol| lands near the ~70 % of the exact value the
  /// paper observes for Tinker (Fig. 9).
  double still_p4 = 0.10;
};

/// Compute Born radii with the chosen pairwise model over the nblist.
/// Counts one pairlist_pairs unit per evaluated pair.
std::vector<double> pairwise_born_radii(const mol::Molecule& mol,
                                        const octree::NbList& nblist,
                                        BornModel model,
                                        const DescreeningParams& params = {},
                                        perf::WorkCounters* counters = nullptr);

}  // namespace octgb::baselines
