#pragma once
/// \file pb.hpp
/// Finite-difference linearized Poisson–Boltzmann reference solver — the
/// model the paper's introduction presents as the accurate-but-expensive
/// alternative the GB approximation stands in for ("due to high
/// computational costs [the] Poisson-Boltzmann method is rarely used for
/// large molecules").
///
/// Standard two-solve reaction-field scheme on a uniform grid:
///   ∇·(ε(r) ∇φ) − ε_s κ² λ(r) φ = −4π k_e ρ
/// with ε = ε_in inside the union of atom spheres and ε_s outside
/// (harmonic-mean face dielectrics), charges spread trilinearly,
/// Debye–Hückel Dirichlet boundary, SOR iteration. The grid self-energy
/// cancels between the solvated and the uniform-ε_in vacuum solve:
///   Epol = ½ Σ_i q_i (φ_solv(x_i) − φ_vac(x_i)).
///
/// bench_pb_vs_gb uses this to reproduce §I's cost claim: PB cost scales
/// with the solvent volume and the solver iterations, GB with the atom
/// count.

#include <cstdint>
#include <vector>

#include "octgb/core/gb_params.hpp"
#include "octgb/mol/molecule.hpp"
#include "octgb/perf/counters.hpp"

namespace octgb::baselines {

/// Solver knobs.
struct PbParams {
  double grid_spacing = 1.0;   ///< Å
  double padding = 8.0;        ///< Å of solvent around the molecule
  double ionic_kappa = 0.0;    ///< inverse Debye length (1/Å); 0 = no salt
  int max_iterations = 2000;
  double tolerance = 1e-6;     ///< relative residual target
  double sor_omega = 1.9;      ///< SOR over-relaxation factor
  /// Grid byte budget (simulated 24 GB node).
  std::size_t max_bytes = std::size_t{20} * 1024 * 1024 * 1024;
};

/// Outcome of a PB evaluation.
struct PbResult {
  double epol = 0.0;          ///< reaction-field energy, kcal/mol
  int iterations_solvated = 0;
  int iterations_vacuum = 0;
  double final_residual = 0.0;
  std::size_t grid_cells = 0;
  bool converged = false;
};

/// Solve the linearized PB equation and return the polarization
/// (reaction-field) energy. Throws octree::NbListOutOfMemory when the
/// grid exceeds the byte budget.
PbResult pb_polarization_energy(const mol::Molecule& mol,
                                const core::GBParams& gb = {},
                                const PbParams& params = {},
                                perf::WorkCounters* counters = nullptr);

}  // namespace octgb::baselines
