#pragma once
/// \file packages.hpp
/// Stand-ins for the MD packages of Table II. Each "package" is a real GB
/// computation — pairwise-descreening Born radii over a cutoff nblist plus
/// a cutoff-truncated Eq. 2 energy (or the GBr6 volume method) — together
/// with a *calibration record* that converts its measured operation counts
/// into modeled 12-core wall time on the paper's hardware.
///
/// Honesty note (see DESIGN.md §2): energies, Born radii, pair counts and
/// memory are computed for real; only the per-package constant factors
/// (per-pair cycles, parallel efficiency, startup) are fitted once to the
/// anchors the paper states for Fig. 8(b) — OCT_MPI ≈ 11× Amber at 16,301
/// atoms; Gromacs ≈ 2.7× (max 6.2 at 2,260); NAMD/Tinker/GBr6 max 1.1 /
/// 2.1 / 1.14 — and never adjusted per molecule.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "octgb/baselines/descreening.hpp"
#include "octgb/baselines/gbr6.hpp"
#include "octgb/core/gb_params.hpp"
#include "octgb/perf/machine_model.hpp"

namespace octgb::baselines {

/// How a package parallelizes (Table II).
enum class Parallelism { Serial, SharedMemory, Distributed };

/// One comparator package.
struct PackageSpec {
  const char* name;        ///< "Amber 12", …
  const char* gb_model;    ///< "HCT", "OBC", "STILL"
  BornModel born_model;    ///< algorithm for Born radii
  bool volume_gbr6;        ///< use the GBr6 volume method instead
  Parallelism parallelism;
  double cutoff;           ///< nblist cutoff (Å)
  // --- calibration (fitted to the Fig. 8(b) anchors, constant) ----------
  // Modeled time = startup + (pairs·per_pair + M²·per_atom2) / rate.
  // per_atom2_cycles models packages whose Born phase scales with all
  // atom pairs regardless of the energy cutoff (Gromacs 4.5.3's GB and
  // NAMD behave this way in the paper's data: their advantage over Amber
  // shrinks as molecules grow).
  double per_pair_cycles;      ///< cycles per evaluated nblist pair
  double per_atom2_cycles;     ///< cycles per atom² (all-pairs Born term)
  double parallel_efficiency;  ///< fraction of ideal 12-core scaling
  double startup_seconds;      ///< fixed per-run overhead
};

/// The five packages of Table II, in that order.
std::span<const PackageSpec> package_registry();
const PackageSpec* find_package(std::string_view name);

/// Result of running a package on a molecule.
struct PackageResult {
  double epol = 0.0;
  std::vector<double> born;
  perf::WorkCounters work;
  std::size_t nblist_bytes = 0;      ///< pair-list (or grid) memory
  bool out_of_memory = false;        ///< exceeded the 24 GB node budget
  double modeled_seconds = 0.0;      ///< on `cores` cores of the Table I node
};

/// Run a package stand-in. `cores` defaults to the package's natural
/// 12-core configuration (1 for GBr6, per Fig. 8). Cutoff may be
/// overridden (the Fig. 11 CMV experiment reduces it until it fits).
PackageResult run_package(const PackageSpec& spec, const mol::Molecule& mol,
                          const perf::MachineModel& machine = {},
                          int cores = 0,
                          std::optional<double> cutoff_override = {},
                          const core::GBParams& gb = {});

/// Cutoff-truncated GB energy (Eq. 2 restricted to nblist pairs + self
/// terms) — what cutoff-based MD packages actually evaluate.
double cutoff_epol(const mol::Molecule& mol, const octree::NbList& nblist,
                   std::span<const double> born, const core::GBParams& gb,
                   perf::WorkCounters* counters = nullptr);

}  // namespace octgb::baselines
