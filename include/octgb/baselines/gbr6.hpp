#pragma once
/// \file gbr6.hpp
/// GBr6 (Tjong & Zhou 2007): *volume-based* r⁶ Born radii — the serial
/// comparator whose approach differs from the paper's *surface-based* r⁶.
///
/// Grycuk's identity for a solute region Ω:
///   1/R_i³ = 1/ρ_i³ − (3/4π) ∫_{Ω \ ball_i} dV / |r − x_i|⁶
/// evaluated here on a uniform grid over the molecule's bounding box
/// (cells whose center lies inside any atom sphere count as solute). This
/// is O(atoms × solute-cells) and strictly serial, which is why GBr6 falls
/// behind every parallel engine and runs out of memory first (Fig. 8/11).

#include <vector>

#include "octgb/mol/molecule.hpp"
#include "octgb/perf/counters.hpp"

namespace octgb::baselines {

struct Gbr6Params {
  double grid_spacing = 0.7;  ///< Å
  /// Grid byte budget (simulated 24 GB node); exceeding it throws
  /// octree::NbListOutOfMemory like the nblist engines.
  std::size_t max_bytes = std::size_t{20} * 1024 * 1024 * 1024;
};

/// Volume-based r⁶ Born radii.
std::vector<double> gbr6_born_radii(const mol::Molecule& mol,
                                    const Gbr6Params& params = {},
                                    perf::WorkCounters* counters = nullptr);

}  // namespace octgb::baselines
