#include "octgb/trace/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace octgb::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

// Apply OCTGB_TRACE=1 before main() so benches/tests can opt in without
// code changes. g_enabled is constant-initialized, so the order is safe.
const bool g_env_applied = [] {
  const char* env = std::getenv("OCTGB_TRACE");
  if (env != nullptr && env[0] == '1') g_enabled.store(true);
  return true;
}();

// The tracer epoch: all timestamps are relative to the first time this
// translation unit is initialized.
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

// Calling thread's buffer (owned by the Tracer registry) and its
// attribution override (active inside a VirtualThreadScope).
thread_local Tracer* tls_owner = nullptr;
thread_local void* tls_buffer = nullptr;  // Tracer::ThreadBuffer*
thread_local bool tls_override_active = false;
thread_local std::int32_t tls_override_pid = 0;

}  // namespace

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - g_epoch)
      .count();
}

}  // namespace detail

// Private bridge between the detail free functions and Tracer's
// private ThreadBuffer type.
struct ThreadBufferAccess {
  static Tracer::ThreadBuffer* get() {
    Tracer& t = Tracer::instance();
    if (detail::tls_buffer == nullptr || detail::tls_owner != &t) {
      detail::tls_buffer = t.register_thread();
      detail::tls_owner = &t;
    }
    return static_cast<Tracer::ThreadBuffer*>(detail::tls_buffer);
  }
};

namespace detail {

void record(const Event& e) {
  Tracer::ThreadBuffer* b = ThreadBufferAccess::get();
  const std::size_t cap = Tracer::instance().max_events_per_thread_.load(
      std::memory_order_relaxed);
  if (b->events.size() >= cap) {
    ++b->dropped;
    return;
  }
  b->events.push_back(e);
}

std::pair<std::int32_t, std::int32_t> current_ids() {
  Tracer::ThreadBuffer* b = ThreadBufferAccess::get();
  const std::int32_t pid =
      tls_override_active ? tls_override_pid : b->pid;
  return {pid, b->tid};
}

}  // namespace detail

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Tracer::ThreadBuffer* Tracer::register_thread() {
  auto buf = std::make_unique<ThreadBuffer>();
  buf->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer* raw = buf.get();
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::move(buf));
  return raw;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) {
    b->events.clear();
    b->dropped = 0;
  }
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->events.size();
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b->dropped;
  return n;
}

void Tracer::set_max_events_per_thread(std::size_t n) {
  max_events_per_thread_.store(n, std::memory_order_relaxed);
}

void Tracer::set_process_name(std::int32_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_names_[pid] = std::move(name);
}

void Tracer::set_thread_name_locked(std::int32_t pid, std::int32_t tid,
                                    std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

namespace {

/// JSON string escaping for event/track names.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Microsecond timestamp with ns precision, as chrome expects.
std::string us(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  // Track-name metadata first: process (rank group) and thread names.
  for (const auto& [pid, name] : process_names_) {
    std::string line = "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                       std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":";
    append_json_string(line, name);
    line += "}}";
    emit(line);
  }
  for (const auto& [key, name] : thread_names_) {
    std::string line = "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                       std::to_string(key.first) +
                       ",\"tid\":" + std::to_string(key.second) +
                       ",\"args\":{\"name\":";
    append_json_string(line, name);
    line += "}}";
    emit(line);
  }
  for (const auto& b : buffers_) {
    for (const auto& e : b->events) {
      std::string line = "{\"name\":";
      append_json_string(line, e.name);
      line += ",\"pid\":" + std::to_string(e.pid) +
              ",\"tid\":" + std::to_string(e.tid) + ",\"ts\":" + us(e.ts_ns);
      switch (e.kind) {
        case detail::EventKind::Complete:
          line += ",\"ph\":\"X\",\"dur\":" + us(e.dur_ns);
          break;
        case detail::EventKind::Counter: {
          char v[64];
          std::snprintf(v, sizeof(v), "%.17g", e.value);
          line += std::string(",\"ph\":\"C\",\"args\":{\"value\":") + v + "}";
          break;
        }
        case detail::EventKind::Instant:
          line += ",\"ph\":\"i\",\"s\":\"t\"";
          break;
      }
      line += "}";
      emit(line);
    }
  }
  out += "\n]}\n";
  os << out;
}

bool Tracer::save_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return f.good();
}

void counter(const char* name, double value) {
  if (!enabled()) return;
  detail::Event e;
  e.name = name;
  e.kind = detail::EventKind::Counter;
  e.ts_ns = detail::now_ns();
  e.value = value;
  const auto ids = detail::current_ids();
  e.pid = ids.first;
  e.tid = ids.second;
  detail::record(e);
}

void instant(const char* name) {
  if (!enabled()) return;
  detail::Event e;
  e.name = name;
  e.kind = detail::EventKind::Instant;
  e.ts_ns = detail::now_ns();
  const auto ids = detail::current_ids();
  e.pid = ids.first;
  e.tid = ids.second;
  detail::record(e);
}

void set_thread_identity(std::int32_t pid, std::string name) {
  if (!enabled()) return;
  Tracer::ThreadBuffer* b = ThreadBufferAccess::get();
  b->pid = pid;
  Tracer& t = Tracer::instance();
  std::lock_guard<std::mutex> lock(t.mu_);
  t.set_thread_name_locked(pid, b->tid, std::move(name));
}

std::int32_t current_pid() {
  if (!enabled()) return 0;
  if (detail::tls_override_active) return detail::tls_override_pid;
  if (detail::tls_buffer == nullptr) return 0;
  return ThreadBufferAccess::get()->pid;
}

VirtualThreadScope::VirtualThreadScope(std::int32_t pid, std::string name) {
  if (!enabled()) return;
  active_ = true;
  saved_override_ = detail::tls_override_active;
  saved_pid_ = detail::tls_override_pid;
  detail::tls_override_active = true;
  detail::tls_override_pid = pid;
  Tracer& t = Tracer::instance();
  Tracer::ThreadBuffer* b = ThreadBufferAccess::get();
  std::lock_guard<std::mutex> lock(t.mu_);
  t.process_names_[pid] = name;
  t.set_thread_name_locked(pid, b->tid, std::move(name));
}

VirtualThreadScope::~VirtualThreadScope() {
  if (!active_) return;
  detail::tls_override_active = saved_override_;
  detail::tls_override_pid = saved_pid_;
}

}  // namespace octgb::trace
