#include "octgb/trace/metrics.hpp"

#include <cstdio>
#include <fstream>

namespace octgb::trace {

namespace {

/// name → name.suffix under the OBSERVABILITY.md schema; an empty
/// suffix (whole-run totals) keeps the bare counter name.
std::string scoped(const std::string& counter_name,
                   const std::string& prefix) {
  if (prefix.empty()) return counter_name;
  return counter_name + "." + prefix;
}

}  // namespace

void MetricsRegistry::add(const std::string& name, std::uint64_t v) {
  Value& m = metrics_[name];
  if (m.is_integer) {
    m.i += v;
  } else {
    m.d += static_cast<double>(v);
  }
}

void MetricsRegistry::add(const std::string& name, double v) {
  Value& m = metrics_[name];
  if (m.is_integer) {
    m.d = static_cast<double>(m.i) + v;
    m.is_integer = false;
    m.i = 0;
  } else {
    m.d += v;
  }
}

void MetricsRegistry::set(const std::string& name, std::uint64_t v) {
  metrics_[name] = Value{true, v, 0.0};
}

void MetricsRegistry::set(const std::string& name, double v) {
  metrics_[name] = Value{false, 0, v};
}

bool MetricsRegistry::contains(const std::string& name) const {
  return metrics_.count(name) != 0;
}

std::uint64_t MetricsRegistry::get_int(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0;
  return it->second.is_integer ? it->second.i
                               : static_cast<std::uint64_t>(it->second.d);
}

double MetricsRegistry::get_real(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0.0;
  return it->second.is_integer ? static_cast<double>(it->second.i)
                               : it->second.d;
}

void MetricsRegistry::add_work(const std::string& prefix,
                               const perf::WorkCounters& w) {
  add(scoped("born.exact", prefix), w.born_exact);
  add(scoped("born.approx", prefix), w.born_approx);
  add(scoped("born.visits", prefix), w.born_visits);
  add(scoped("push.visits", prefix), w.push_visits);
  add(scoped("push.atoms", prefix), w.push_atoms);
  add(scoped("epol.exact", prefix), w.epol_exact);
  add(scoped("epol.bins", prefix), w.epol_bins);
  add(scoped("epol.visits", prefix), w.epol_visits);
  add(scoped("pairlist.pairs", prefix), w.pairlist_pairs);
  add(scoped("grid.cells", prefix), w.grid_cells);
  add(scoped("sched.spawns", prefix), w.spawns);
  add(scoped("sched.steals", prefix), w.steals);
}

void MetricsRegistry::add_comm(const std::string& prefix,
                               const perf::CommCounters& c) {
  add(scoped("mpp.msgs.internode", prefix), c.messages_internode);
  add(scoped("mpp.msgs.intranode", prefix), c.messages_intranode);
  add(scoped("mpp.bytes.internode", prefix), c.bytes_internode);
  add(scoped("mpp.bytes.intranode", prefix), c.bytes_intranode);
  add(scoped("mpp.collectives", prefix), c.collectives);
}

void MetricsRegistry::add_plan(const std::string& prefix,
                               const perf::PlanCounters& p) {
  add(scoped("plan.builds", prefix), p.builds);
  add(scoped("plan.replays", prefix), p.replays);
  add(scoped("plan.born_reuses", prefix), p.born_reuses);
  add(scoped("plan.key_hits", prefix), p.key_hits);
  add(scoped("plan.key_misses", prefix), p.key_misses);
  add(scoped("plan.invalidated.topology", prefix), p.invalidated_topology);
  add(scoped("plan.invalidated.params", prefix), p.invalidated_params);
  add(scoped("plan.invalidated.drift", prefix), p.invalidated_drift);
  add(scoped("plan.validations", prefix), p.validations);
}

void MetricsRegistry::add_svc(const std::string& prefix,
                              const perf::ServiceCounters& s) {
  add(scoped("svc.submitted", prefix), s.submitted);
  add(scoped("svc.completed", prefix), s.completed);
  add(scoped("svc.rejected.tenant_queue_full", prefix),
      s.rejected_tenant_queue_full);
  add(scoped("svc.rejected.queue_full", prefix), s.rejected_queue_full);
  add(scoped("svc.rejected.too_large", prefix), s.rejected_too_large);
  add(scoped("svc.rejected.shutting_down", prefix), s.rejected_shutting_down);
  add(scoped("svc.preprocessed", prefix), s.preprocessed);
  add(scoped("svc.evaluations", prefix), s.evaluations);
  add(scoped("svc.poses_scored", prefix), s.poses_scored);
  add(scoped("svc.cache.hits", prefix), s.cache_hits);
  add(scoped("svc.cache.misses", prefix), s.cache_misses);
  add(scoped("svc.cache.evictions", prefix), s.cache_evictions);
}

void MetricsRegistry::add_tree_build(const std::string& prefix,
                                     const perf::TreeBuildCounters& t) {
  add(scoped("tree.build.morton", prefix), t.morton_builds);
  add(scoped("tree.build.legacy", prefix), t.legacy_builds);
  add(scoped("tree.build.points_sorted", prefix), t.points_sorted);
  add(scoped("tree.build.sort_passes", prefix), t.sort_passes);
  add(scoped("tree.build.nodes", prefix), t.nodes_emitted);
  add(scoped("tree.build.leaves", prefix), t.leaves_emitted);
  add(scoped("tree.build.resorts", prefix), t.resorts);
  add(scoped("tree.build.resort_moved", prefix), t.resort_moved);
}

void MetricsRegistry::add_simd(const std::string& prefix,
                               const char* isa_name, int lanes, bool mixed) {
  set(scoped("kernel.simd.lanes", prefix),
      static_cast<std::uint64_t>(lanes));
  set(scoped("kernel.simd.mixed", prefix),
      static_cast<std::uint64_t>(mixed ? 1 : 0));
  add(scoped(std::string("kernel.simd.evals.") + isa_name, prefix),
      std::uint64_t{1});
}

void MetricsRegistry::add_scheduler(const std::string& prefix,
                                    std::uint64_t spawns,
                                    std::uint64_t steals,
                                    std::uint64_t steal_attempts,
                                    std::uint64_t executed) {
  add(scoped("sched.spawns", prefix), spawns);
  add(scoped("sched.steals", prefix), steals);
  add(scoped("sched.steal_attempts", prefix), steal_attempts);
  add(scoped("sched.executed", prefix), executed);
}

void MetricsRegistry::add_steal_tiers(const std::string& prefix,
                                      std::uint64_t local,
                                      std::uint64_t socket,
                                      std::uint64_t remote,
                                      std::uint64_t offblock) {
  add(scoped("ws.steal.local", prefix), local);
  add(scoped("ws.steal.socket", prefix), socket);
  add(scoped("ws.steal.remote", prefix), remote);
  add(scoped("ws.steal.offblock", prefix), offblock);
}

void MetricsRegistry::add_locality(const std::string& prefix,
                                   const perf::LocalityCounters& l) {
  add(scoped("plan.locality.runs", prefix), l.runs);
  add(scoped("plan.locality.run_owners", prefix), l.run_owners);
  add(scoped("plan.locality.chunks", prefix), l.chunks);
  add(scoped("plan.locality.baseline_chunks", prefix), l.baseline_chunks);
  add(scoped("plan.locality.prefetch_batches", prefix), l.prefetch_batches);
  add(scoped("plan.locality.numa_touch_passes", prefix),
      l.numa_touch_passes);
  set(scoped("plan.locality.mean_run_length", prefix), l.mean_run_length());
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.metrics_) {
    if (v.is_integer) {
      add(name, v.i);
    } else {
      add(name, v.d);
    }
  }
}

namespace {

std::string value_repr(const MetricsRegistry::Value& v) {
  if (v.is_integer) return std::to_string(v.i);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v.d);
  return buf;
}

}  // namespace

std::string MetricsRegistry::json() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, v] : metrics_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + name + "\": " + value_repr(v);
  }
  out += "\n}\n";
  return out;
}

std::string MetricsRegistry::csv() const {
  std::string out = "metric,value\n";
  for (const auto& [name, v] : metrics_) {
    // Names are dotted identifiers (no commas/quotes); values numeric —
    // quoting is never required, but keep the check for safety.
    out += name + "," + value_repr(v) + "\n";
  }
  return out;
}

bool MetricsRegistry::save_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << json();
  return f.good();
}

bool MetricsRegistry::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << csv();
  return f.good();
}

}  // namespace octgb::trace
