#include "octgb/mpp/launch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <dirent.h>
#include <sched.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "octgb/mpp/proc.hpp"
#include "octgb/mpp/shm.hpp"
#include "octgb/util/check.hpp"

namespace octgb::mpp::launch {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

std::string make_job_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string templ = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  templ += "/octgb-job.XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  OCTGB_CHECK_MSG(::mkdtemp(buf.data()) != nullptr,
                  "cannot create job directory from " << templ);
  return std::string(buf.data());
}

void bind_to_core(int rank) {
#ifdef __linux__
  // Block placement: node n owns the contiguous core block starting at
  // n * ranks_per_node, and rank r takes its in-node slot within it —
  // intra-node peers land on neighbouring cores (shared LLC), like a
  // NUMA-aware block scheduler. Wraps modulo the actual core count.
  const long ncores = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (ncores <= 0) return;
  const int core = rank % static_cast<int>(ncores);
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  ::sched_setaffinity(0, sizeof(set), &set);
#else
  (void)rank;
#endif
}

/// Checkpoint files currently in the job's store (progress observable
/// for store-triggered kills).
int count_store_files(const std::string& job_dir) {
  DIR* d = ::opendir((job_dir + "/ckpt").c_str());
  if (d == nullptr) return 0;
  int n = 0;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ck") == 0)
      ++n;
  }
  ::closedir(d);
  return n;
}

[[noreturn]] void exec_rank(const JobSpec& spec, const std::string& dir,
                            int rank) {
  ::setenv(proc::kEnvRank, std::to_string(rank).c_str(), 1);
  ::setenv(proc::kEnvSize, std::to_string(spec.ranks).c_str(), 1);
  ::setenv(proc::kEnvDir, dir.c_str(), 1);
  for (const auto& [key, value] : spec.extra_env)
    ::setenv(key.c_str(), value.c_str(), 1);
  if (spec.bind_cores) bind_to_core(rank);
  std::vector<char*> argv;
  argv.reserve(spec.command.size() + 1);
  for (const auto& arg : spec.command)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  ::execvp(argv[0], argv.data());
  ::_exit(127);  // exec failed
}

}  // namespace

bool JobResult::survivors_clean() const {
  return std::all_of(ranks.begin(), ranks.end(), [](const RankResult& r) {
    return r.killed_by_chaos || r.clean();
  });
}

JobResult run_job(const JobSpec& spec) {
  OCTGB_CHECK_MSG(spec.ranks >= 1, "job needs >= 1 rank");
  OCTGB_CHECK_MSG(!spec.command.empty(), "job needs a command");
  for (const KillSpec& k : spec.kills)
    OCTGB_CHECK_MSG(k.rank >= 0 && k.rank < spec.ranks,
                    "kill targets invalid rank " << k.rank);

  JobResult result;
  result.job_dir = spec.job_dir.empty() ? make_job_dir() : spec.job_dir;
  result.ranks.resize(spec.ranks);

  shm::Segment::Options seg_opts;
  seg_opts.ranks = spec.ranks;
  seg_opts.topology = spec.topology;
  seg_opts.ring_bytes = spec.ring_bytes;
  seg_opts.default_deadline_ms = spec.default_deadline_ms;
  shm::Segment seg =
      shm::Segment::create(result.job_dir + "/shm", seg_opts);

  const auto t0 = Clock::now();
  std::vector<pid_t> pids(spec.ranks, -1);
  for (int r = 0; r < spec.ranks; ++r) {
    const pid_t pid = ::fork();
    OCTGB_CHECK_MSG(pid >= 0, "fork failed for rank " << r);
    if (pid == 0) exec_rank(spec, result.job_dir, r);
    pids[r] = pid;
    result.ranks[r].pid = pid;
  }

  // Chaos kills, each armed by time and/or checkpoint-store progress.
  std::vector<KillSpec> kills = spec.kills;
  std::sort(kills.begin(), kills.end(),
            [](const KillSpec& a, const KillSpec& b) {
              return a.after_ms < b.after_ms;
            });
  std::vector<bool> delivered(kills.size(), false);
  std::size_t undelivered = kills.size();
  const bool any_store_trigger =
      std::any_of(kills.begin(), kills.end(), [](const KillSpec& k) {
        return k.after_store_files >= 0;
      });
  int live = spec.ranks;
  std::vector<bool> reaped(spec.ranks, false);

  while (live > 0) {
    const double elapsed = ms_since(t0);
    const int store_files = (any_store_trigger && undelivered > 0)
                                ? count_store_files(result.job_dir)
                                : 0;
    // Deliver due kills: SIGKILL the process, then publish the death —
    // the kernel guarantees the target never runs again after the kill()
    // returns, so marking it dead immediately is safe even though the
    // zombie is reaped later.
    for (std::size_t i = 0; i < kills.size(); ++i) {
      if (delivered[i] || kills[i].after_ms > elapsed) continue;
      if (kills[i].after_store_files >= 0 &&
          store_files < kills[i].after_store_files)
        continue;
      delivered[i] = true;
      --undelivered;
      const int r = kills[i].rank;
      if (reaped[r]) continue;  // already exited on its own
      ::kill(pids[r], SIGKILL);
      result.ranks[r].killed_by_chaos = true;
      ++result.kills_delivered;
      seg.mark_dead(r);
    }
    // Reap whoever finished.
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid > 0) {
      for (int r = 0; r < spec.ranks; ++r) {
        if (pids[r] != pid || reaped[r]) continue;
        reaped[r] = true;
        --live;
        RankResult& rr = result.ranks[r];
        if (WIFSIGNALED(status)) {
          rr.term_signal = WTERMSIG(status);
          seg.mark_dead(r);
        } else if (WIFEXITED(status)) {
          rr.exit_code = WEXITSTATUS(status);
          // A clean exit 0 is a completed rank, not a failure; anything
          // else is a crash the survivors must observe.
          if (rr.exit_code != 0) seg.mark_dead(r);
        }
        break;
      }
      continue;  // more children may be reapable right away
    }
    if (elapsed > spec.timeout_ms) {
      result.timed_out = true;
      for (int r = 0; r < spec.ranks; ++r)
        if (!reaped[r]) ::kill(pids[r], SIGKILL);
      for (int r = 0; r < spec.ranks; ++r) {
        if (reaped[r]) continue;
        ::waitpid(pids[r], &status, 0);
        reaped[r] = true;
        --live;
        result.ranks[r].term_signal = SIGKILL;
        seg.mark_dead(r);
      }
      break;
    }
    // Sleep between supervision passes, but never past the next kill time
    // (chaos schedules need ~ms accuracy to hit mid-phase windows); a
    // pending store-triggered kill keeps the poll tight.
    double sleep_ms = 2.0;
    for (std::size_t i = 0; i < kills.size(); ++i) {
      if (delivered[i]) continue;
      sleep_ms = std::min(sleep_ms,
                          std::max(0.0, kills[i].after_ms - elapsed));
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::max(0.1, sleep_ms)));
  }

  result.wall_ms = ms_since(t0);
  return result;
}

}  // namespace octgb::mpp::launch
