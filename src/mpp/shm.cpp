#include "octgb/mpp/shm.hpp"

#include <algorithm>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "octgb/util/check.hpp"

namespace octgb::mpp::shm {

namespace {

constexpr std::uint64_t kMagic = 0x6f637467622d7368ULL;  // "octgb-sh"
constexpr std::uint32_t kVersion = 1;

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

/// Deterministic index of the src→dst ring among all ordered same-node
/// pairs (create and attach must agree byte for byte); -1 when the pair
/// has no ring.
int ring_index(const Topology& topo, int ranks, int src, int dst) {
  int idx = 0;
  for (int s = 0; s < ranks; ++s) {
    for (int d = 0; d < ranks; ++d) {
      if (s == d || !topo.same_node(s, d)) continue;
      if (s == src && d == dst) return idx;
      ++idx;
    }
  }
  return -1;
}

int ring_count(const Topology& topo, int ranks) {
  int n = 0;
  for (int s = 0; s < ranks; ++s)
    for (int d = 0; d < ranks; ++d)
      if (s != d && topo.same_node(s, d)) ++n;
  return n;
}

std::size_t slots_offset() { return align_up(sizeof(ControlHeader), 64); }

std::size_t rings_offset(int ranks) {
  return align_up(slots_offset() + sizeof(RankSlot) *
                                       static_cast<std::size_t>(ranks),
                  64);
}

std::size_t segment_size(const Topology& topo, int ranks,
                         std::uint64_t ring_bytes) {
  const std::size_t per_ring = align_up(Ring::footprint(ring_bytes), 64);
  return rings_offset(ranks) +
         per_ring * static_cast<std::size_t>(ring_count(topo, ranks));
}

}  // namespace

std::size_t Ring::readable() const {
  const std::uint64_t head = h_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = h_->tail.load(std::memory_order_acquire);
  return static_cast<std::size_t>(tail - head);
}

std::size_t Ring::writable() const { return capacity_ - readable(); }

std::size_t Ring::try_push(const void* data, std::size_t bytes) {
  const std::uint64_t head = h_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = h_->tail.load(std::memory_order_relaxed);
  const std::uint64_t free = capacity_ - (tail - head);
  const std::size_t n = std::min<std::uint64_t>(bytes, free);
  if (n == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(tail % capacity_);
  const std::size_t first = std::min(n, static_cast<std::size_t>(capacity_) - pos);
  std::memcpy(buf_ + pos, data, first);
  if (n > first)
    std::memcpy(buf_, static_cast<const std::uint8_t*>(data) + first,
                n - first);
  // Publish after the copy: a SIGKILL between the memcpy and this store
  // loses the bytes but never exposes a torn prefix.
  h_->tail.store(tail + n, std::memory_order_release);
  return n;
}

std::size_t Ring::try_pop(void* out, std::size_t max_bytes) {
  const std::uint64_t tail = h_->tail.load(std::memory_order_acquire);
  const std::uint64_t head = h_->head.load(std::memory_order_relaxed);
  const std::uint64_t avail = tail - head;
  const std::size_t n = std::min<std::uint64_t>(max_bytes, avail);
  if (n == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(head % capacity_);
  const std::size_t first = std::min(n, static_cast<std::size_t>(capacity_) - pos);
  std::memcpy(out, buf_ + pos, first);
  if (n > first)
    std::memcpy(static_cast<std::uint8_t*>(out) + first, buf_, n - first);
  h_->head.store(head + n, std::memory_order_release);
  return n;
}

Segment::Segment(Segment&& other) noexcept
    : base_(other.base_), size_(other.size_) {
  other.base_ = nullptr;
  other.size_ = 0;
}

Segment& Segment::operator=(Segment&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, size_);
    base_ = other.base_;
    size_ = other.size_;
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Segment::~Segment() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

Segment Segment::create(const std::string& path, const Options& options) {
  OCTGB_CHECK_MSG(options.ranks >= 1, "segment needs >= 1 rank");
  OCTGB_CHECK_MSG(options.ring_bytes >= 4096,
                  "ring capacity must be >= 4 KiB");
  const std::size_t total =
      segment_size(options.topology, options.ranks, options.ring_bytes);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  OCTGB_CHECK_MSG(fd >= 0, "cannot create shm segment " << path);
  OCTGB_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(total)) == 0,
                  "cannot size shm segment " << path);
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);
  OCTGB_CHECK_MSG(base != MAP_FAILED, "cannot map shm segment " << path);

  Segment seg;
  seg.base_ = base;
  seg.size_ = total;
  // ftruncate zero-fills, which is a valid initial state for every atomic
  // cursor/flag; only the header fields need explicit values.
  ControlHeader* h = seg.header();
  h->version = kVersion;
  h->ranks = options.ranks;
  h->ranks_per_node = options.topology.ranks_per_node;
  h->ring_bytes = options.ring_bytes;
  h->default_deadline_ms = options.default_deadline_ms;
  // Magic last: an attacher that wins a race against create() sees a
  // missing magic, not a half-initialized header.
  std::atomic_thread_fence(std::memory_order_release);
  h->magic = kMagic;
  return seg;
}

Segment Segment::attach(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  OCTGB_CHECK_MSG(fd >= 0, "cannot open shm segment " << path);
  struct stat st{};
  OCTGB_CHECK_MSG(::fstat(fd, &st) == 0, "cannot stat shm segment " << path);
  const std::size_t total = static_cast<std::size_t>(st.st_size);
  OCTGB_CHECK_MSG(total >= sizeof(ControlHeader),
                  "shm segment too small: " << path);
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);
  OCTGB_CHECK_MSG(base != MAP_FAILED, "cannot map shm segment " << path);

  Segment seg;
  seg.base_ = base;
  seg.size_ = total;
  ControlHeader* h = seg.header();
  OCTGB_CHECK_MSG(h->magic == kMagic && h->version == kVersion,
                  "not an octgb shm segment: " << path);
  Topology topo{h->ranks_per_node};
  OCTGB_CHECK_MSG(total == segment_size(topo, h->ranks, h->ring_bytes),
                  "shm segment size disagrees with its header: " << path);
  h->attached.fetch_add(1, std::memory_order_acq_rel);
  return seg;
}

ControlHeader* Segment::header() const {
  return static_cast<ControlHeader*>(base_);
}

RankSlot* Segment::slots() const {
  return reinterpret_cast<RankSlot*>(static_cast<std::uint8_t*>(base_) +
                                     slots_offset());
}

int Segment::ranks() const { return header()->ranks; }

Topology Segment::topology() const {
  return Topology{header()->ranks_per_node};
}

double Segment::default_deadline_ms() const {
  return header()->default_deadline_ms;
}

bool Segment::is_alive(int rank) const {
  return slots()[rank].dead.load(std::memory_order_acquire) == 0;
}

int Segment::failure_epoch() const {
  return header()->failure_epoch.load(std::memory_order_acquire);
}

std::uint64_t Segment::heartbeat_of(int rank) const {
  return slots()[rank].heartbeat.load(std::memory_order_relaxed);
}

void Segment::beat(int rank) {
  slots()[rank].heartbeat.fetch_add(1, std::memory_order_relaxed);
}

void Segment::mark_dead(int rank) {
  std::int32_t expected = 0;
  if (slots()[rank].dead.compare_exchange_strong(
          expected, 1, std::memory_order_acq_rel))
    header()->failure_epoch.fetch_add(1, std::memory_order_acq_rel);
}

int Segment::attached() const {
  return header()->attached.load(std::memory_order_acquire);
}

Ring Segment::ring(int src, int dst) const {
  const ControlHeader* h = header();
  const Topology topo{h->ranks_per_node};
  const int idx = ring_index(topo, h->ranks, src, dst);
  if (idx < 0) return Ring{};
  const std::size_t per_ring =
      align_up(Ring::footprint(h->ring_bytes), 64);
  std::uint8_t* ring_base = static_cast<std::uint8_t*>(base_) +
                            rings_offset(h->ranks) +
                            per_ring * static_cast<std::size_t>(idx);
  return Ring(reinterpret_cast<Ring::Header*>(ring_base),
              ring_base + sizeof(Ring::Header), h->ring_bytes);
}

}  // namespace octgb::mpp::shm
