#include "octgb/mpp/mpp.hpp"

#include <atomic>
#include <exception>
#include <string>
#include <thread>

#include "octgb/trace/trace.hpp"

namespace octgb::mpp {

namespace detail {

/// One in-flight message.
struct Message {
  int src;
  int tag;
  std::vector<std::uint8_t> payload;
};

/// Per-rank mailbox with blocking matched receive.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> messages;
};

struct SharedState {
  Topology topology;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::atomic<bool> aborted{false};
};

}  // namespace detail

const Topology& Comm::topology() const { return state_->topology; }

int Comm::next_coll_tag() {
  // Collectives are called in the same order on every rank, so a local
  // sequence number yields a globally consistent tag.
  return detail::kCollTagBase + (coll_seq_++);
}

void Comm::account_send(int dest, std::size_t bytes) {
  if (state_->topology.same_node(rank_, dest)) {
    ++counters_.messages_intranode;
    counters_.bytes_intranode += bytes;
  } else {
    ++counters_.messages_internode;
    counters_.bytes_internode += bytes;
  }
  // Cumulative per-rank transmit volume as a Perfetto counter track.
  if (trace::enabled())
    trace::counter("mpp.tx_bytes",
                   static_cast<double>(counters_.bytes_intranode +
                                       counters_.bytes_internode));
}

void Comm::send_bytes(int dest, int tag, const void* data,
                      std::size_t bytes) {
  OCTGB_CHECK_MSG(dest >= 0 && dest < size_, "send to invalid rank " << dest);
  OCTGB_CHECK_MSG(dest != rank_, "send to self would deadlock");
  account_send(dest, bytes);
  detail::Mailbox& box = *state_->mailboxes[dest];
  detail::Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes) std::memcpy(msg.payload.data(), data, bytes);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void Comm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  OCTGB_CHECK_MSG(src >= 0 && src < size_, "recv from invalid rank " << src);
  // The span covers matching + blocking, i.e. the rank's wait time.
  OCTGB_SPAN("mpp.recv");
  detail::Mailbox& box = *state_->mailboxes[rank_];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    OCTGB_CHECK_MSG(!state_->aborted.load(std::memory_order_relaxed),
                    "peer rank failed; aborting recv on rank " << rank_);
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        OCTGB_CHECK_MSG(it->payload.size() == bytes,
                        "message size mismatch: got " << it->payload.size()
                                                      << ", want " << bytes);
        if (bytes) std::memcpy(data, it->payload.data(), bytes);
        box.messages.erase(it);
        return;
      }
    }
    box.cv.wait(lock);
  }
}

Comm::Request Comm::irecv_bytes(int src, int tag, void* data,
                                std::size_t bytes) {
  OCTGB_CHECK_MSG(src >= 0 && src < size_, "irecv from invalid rank " << src);
  Request r;
  r.comm_ = this;
  r.src_ = src;
  r.tag_ = tag;
  r.data_ = data;
  r.bytes_ = bytes;
  return r;
}

void Comm::wait(Request& request) {
  OCTGB_CHECK_MSG(request.valid(), "wait on an invalid request");
  OCTGB_CHECK_MSG(request.comm_ == this, "request belongs to another comm");
  recv_bytes(request.src_, request.tag_, request.data_, request.bytes_);
  request.comm_ = nullptr;
}

bool Comm::test(const Request& request) {
  OCTGB_CHECK_MSG(request.valid(), "test on an invalid request");
  detail::Mailbox& box = *state_->mailboxes[rank_];
  std::lock_guard<std::mutex> lock(box.mu);
  for (const auto& msg : box.messages) {
    if (msg.src == request.src_ && msg.tag == request.tag_) return true;
  }
  return false;
}

void Comm::sendrecv_bytes(int dest, int send_tag, const void* send_data,
                          std::size_t send_len, int src, int recv_tag,
                          void* recv_data, std::size_t recv_len) {
  // Sends are buffered (never block), so send-then-receive cannot
  // deadlock regardless of the pairing pattern.
  send_bytes(dest, send_tag, send_data, send_len);
  recv_bytes(src, recv_tag, recv_data, recv_len);
}

void Comm::barrier() {
  OCTGB_SPAN("mpp.barrier");
  // Reduce a dummy byte to rank 0, then broadcast it back.
  std::uint8_t dummy = 0;
  std::span<std::uint8_t> s(&dummy, 1);
  reduce_sum(s, 0);
  bcast(s, 0);
}

double Comm::allreduce_sum(double v) {
  std::span<double> s(&v, 1);
  allreduce_sum(s);
  return v;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t v) {
  std::span<std::uint64_t> s(&v, 1);
  allreduce_sum(s);
  return v;
}

double Comm::allreduce_min(double v) {
  // min(x) = -max(-x); implemented directly with a gather-to-root pattern
  // would skew counters, so use the same reduce/bcast shape with a trick:
  // negate, reduce via sum of singleton maxima is wrong — do it explicitly.
  // We reuse the binomial structure by exchanging scalars manually.
  const int tag = next_coll_tag();
  int mask = 1;
  while (mask < size_) {
    if (rank_ & mask) {
      send_value(rank_ - mask, tag, v);
      break;
    }
    if (rank_ + mask < size_) {
      const double other = recv_value<double>(rank_ + mask, tag);
      v = other < v ? other : v;
    }
    mask <<= 1;
  }
  ++counters_.collectives;
  std::span<double> s(&v, 1);
  bcast(s, 0);
  return v;
}

double Comm::allreduce_max(double v) {
  const int tag = next_coll_tag();
  int mask = 1;
  while (mask < size_) {
    if (rank_ & mask) {
      send_value(rank_ - mask, tag, v);
      break;
    }
    if (rank_ + mask < size_) {
      const double other = recv_value<double>(rank_ + mask, tag);
      v = other > v ? other : v;
    }
    mask <<= 1;
  }
  ++counters_.collectives;
  std::span<double> s(&v, 1);
  bcast(s, 0);
  return v;
}

double Comm::scan_sum(double value) {
  // Linear pipeline: rank r receives the prefix of ranks < r, adds its
  // value, forwards. O(P) latency but exact left-to-right order.
  const int tag = next_coll_tag();
  double prefix = value;
  if (rank_ > 0) prefix += recv_value<double>(rank_ - 1, tag);
  if (rank_ + 1 < size_) send_value(rank_ + 1, tag, prefix);
  ++counters_.collectives;
  return prefix;
}

std::vector<perf::CommCounters> Runtime::run(
    const Options& opts, const std::function<void(Comm&)>& rank_main) {
  OCTGB_CHECK_MSG(opts.ranks >= 1, "need at least one rank");
  detail::SharedState state;
  state.topology = opts.topology;
  for (int r = 0; r < opts.ranks; ++r)
    state.mailboxes.push_back(std::make_unique<detail::Mailbox>());

  std::vector<Comm> comms;
  comms.reserve(opts.ranks);
  for (int r = 0; r < opts.ranks; ++r)
    comms.push_back(Comm(&state, r, opts.ranks));

  std::exception_ptr first_error;
  std::mutex err_mu;
  auto body = [&](int r) {
    try {
      if (trace::enabled()) {
        const std::string label = "rank" + std::to_string(r);
        trace::Tracer::instance().set_process_name(r, label);
        trace::set_thread_identity(r, label + ".main");
      }
      rank_main(comms[r]);
    } catch (...) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!first_error) first_error = std::current_exception();
      state.aborted.store(true);
      // Wake blocked receivers so they observe the abort flag and unwind.
      for (auto& mb : state.mailboxes) mb->cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(opts.ranks);
  for (int r = 1; r < opts.ranks; ++r) threads.emplace_back(body, r);
  body(0);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  std::vector<perf::CommCounters> out;
  out.reserve(opts.ranks);
  for (const auto& c : comms) out.push_back(c.counters());
  return out;
}

}  // namespace octgb::mpp
