#include "octgb/mpp/mpp.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "octgb/trace/trace.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::mpp {

namespace detail {

using Clock = std::chrono::steady_clock;

/// One in-flight message.
struct Message {
  int src;
  int tag;
  std::vector<std::uint8_t> payload;
  /// Delivery time for injected delays; matched receives skip messages
  /// still "on the wire".
  Clock::time_point visible_at{};
  std::uint32_t crc = 0;   ///< CRC-32 of the payload as sent
  bool has_crc = false;    ///< set when Options::checksum is on
};

/// Per-rank mailbox with blocking matched receive.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> messages;
};

/// Failure-detector state for one rank.
struct RankState {
  std::atomic<bool> dead{false};
  std::atomic<std::uint64_t> heartbeat{0};
};

struct SharedState {
  Topology topology;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::vector<std::unique_ptr<RankState>> ranks;
  std::atomic<bool> aborted{false};
  std::atomic<int> failure_epoch{0};
  const faults::FaultInjector* injector = nullptr;
  bool checksum = false;
  double default_deadline_ms = 0.0;
};

/// The in-thread transport: one endpoint per rank over shared mailboxes.
/// Faults come from the seeded injector; the out-of-process analogue of
/// each (drop ↔ lost frame, corrupt ↔ wire CRC break, kill ↔ SIGKILL)
/// lives in mpp/proc.hpp.
class ThreadEndpoint final : public Endpoint {
 public:
  ThreadEndpoint(SharedState* state, int rank)
      : state_(state), rank_(rank) {}

  const Topology& topology() const override { return state_->topology; }
  double default_deadline_ms() const override {
    return state_->default_deadline_ms;
  }

  void send(int dest, int tag, const void* data, std::size_t bytes,
            std::uint64_t op) override {
    faults::SendFaults f;
    if (state_->injector != nullptr)
      f = state_->injector->on_send(rank_, dest, op);
    if (f.drop) {
      // The message left the sender and vanished on the wire: sender-side
      // accounting stands, the receiver sees nothing (→ timeout).
      trace::instant("fault.drop");
      return;
    }
    Mailbox& box = *state_->mailboxes[dest];
    Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.payload.resize(bytes);
    if (bytes) std::memcpy(msg.payload.data(), data, bytes);
    if (state_->checksum) {
      msg.crc = faults::crc32(msg.payload.data(), msg.payload.size());
      msg.has_crc = true;
    }
    if (f.corrupt && bytes > 0) {
      // Bit-flip after the checksum was computed — wire corruption, which
      // the CRC (when enabled) detects at the receiver.
      trace::instant("fault.corrupt");
      msg.payload[static_cast<std::size_t>(op) % bytes] ^= 0xA5;
    }
    if (f.delay_ms > 0.0) {
      trace::instant("fault.delay");
      msg.visible_at = Clock::now() +
                       std::chrono::microseconds(
                           static_cast<long long>(f.delay_ms * 1000.0));
    }
    {
      std::lock_guard<std::mutex> lock(box.mu);
      if (f.duplicate) {
        trace::instant("fault.duplicate");
        box.messages.push_back(msg);
      }
      box.messages.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  CommResult recv(int src, int tag, void* data, std::size_t bytes,
                  double deadline_ms, int abort_epoch) override {
    const bool finite = deadline_ms > 0.0;
    const auto deadline =
        finite ? Clock::now() + std::chrono::microseconds(
                                    static_cast<long long>(deadline_ms *
                                                           1000.0))
               : Clock::time_point::max();
    Mailbox& box = *state_->mailboxes[rank_];
    std::unique_lock<std::mutex> lock(box.mu);
    for (;;) {
      OCTGB_CHECK_MSG(!state_->aborted.load(std::memory_order_relaxed),
                      "peer rank failed; aborting recv on rank " << rank_);
      const auto now = Clock::now();
      // Matched-but-delayed messages bound how long we sleep.
      auto next_visible = Clock::time_point::max();
      for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
        if (it->src != src || it->tag != tag) continue;
        if (it->visible_at > now) {
          next_visible = std::min(next_visible, it->visible_at);
          continue;
        }
        OCTGB_CHECK_MSG(it->payload.size() == bytes,
                        "message size mismatch: got "
                            << it->payload.size() << ", want " << bytes);
        if (it->has_crc && faults::crc32(it->payload.data(),
                                         it->payload.size()) != it->crc) {
          // Consume the corrupt copy so a retry can match a clean
          // duplicate.
          box.messages.erase(it);
          return CommResult::failure(
              {CommStatus::ChecksumMismatch, rank_, src, tag, bytes});
        }
        if (bytes) std::memcpy(data, it->payload.data(), bytes);
        box.messages.erase(it);
        return CommResult::success({});
      }
      // No consumable message: fail fast on a dead peer (messages it sent
      // before dying were already matched above).
      if (next_visible == Clock::time_point::max() &&
          state_->ranks[src]->dead.load(std::memory_order_acquire))
        return CommResult::failure(
            {CommStatus::PeerDead, rank_, src, tag, bytes});
      // Fail-fast on churn: a death anywhere in the job (kills notify
      // every mailbox cv, so this waiter wakes) aborts the wait early so
      // the caller can re-plan instead of draining its deadline.
      if (abort_epoch >= 0 &&
          state_->failure_epoch.load(std::memory_order_acquire) >
              abort_epoch)
        return CommResult::failure(
            {CommStatus::Timeout, rank_, src, tag, bytes});
      if (finite && now >= deadline)
        return CommResult::failure(
            {CommStatus::Timeout, rank_, src, tag, bytes});
      const auto wake_at = std::min(deadline, next_visible);
      if (wake_at == Clock::time_point::max())
        box.cv.wait(lock);
      else
        box.cv.wait_until(lock, wake_at);
    }
  }

  bool has_message(int src, int tag) override {
    Mailbox& box = *state_->mailboxes[rank_];
    std::lock_guard<std::mutex> lock(box.mu);
    const auto now = Clock::now();
    for (const auto& msg : box.messages) {
      if (msg.src == src && msg.tag == tag && msg.visible_at <= now)
        return true;
    }
    return false;
  }

  bool is_alive(int rank) const override {
    return !state_->ranks[rank]->dead.load(std::memory_order_acquire);
  }
  int failure_epoch() const override {
    return state_->failure_epoch.load(std::memory_order_acquire);
  }
  std::uint64_t heartbeat_of(int rank) const override {
    return state_->ranks[rank]->heartbeat.load(std::memory_order_relaxed);
  }
  void heartbeat() override {
    state_->ranks[rank_]->heartbeat.fetch_add(1, std::memory_order_relaxed);
  }

  void fault_hook(std::uint64_t op) override {
    RankState& me = *state_->ranks[rank_];
    // A dead rank must not keep communicating: re-throw on any further
    // use (the elastic driver catches RankKilledError and unwinds the
    // rank).
    if (me.dead.load(std::memory_order_relaxed))
      throw RankKilledError(rank_, op);
    const faults::FaultInjector* inj = state_->injector;
    if (inj == nullptr) return;
    const double stall = inj->stall_ms(rank_, op);
    if (stall > 0.0) {
      trace::instant("fault.stall");
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<long long>(stall * 1000.0)));
    }
    if (inj->should_kill(rank_, op)) {
      trace::instant("fault.kill");
      me.dead.store(true, std::memory_order_release);
      state_->failure_epoch.fetch_add(1, std::memory_order_acq_rel);
      // Wake every blocked receiver so it can observe the death and fail
      // fast (lock/unlock pairs with the waiters' condition re-check).
      for (auto& mb : state_->mailboxes) {
        { std::lock_guard<std::mutex> lock(mb->mu); }
        mb->cv.notify_all();
      }
      throw RankKilledError(rank_, op);
    }
  }

 private:
  SharedState* state_;
  int rank_;
};

Comm make_comm(Endpoint* endpoint, int rank, int size) {
  return Comm(endpoint, rank, size);
}

}  // namespace detail

const Topology& Comm::topology() const { return ep_->topology(); }

int Comm::next_coll_tag() {
  // Collectives are called in the same order on every rank, so a local
  // sequence number yields a globally consistent tag.
  return detail::kCollTagBase + (coll_seq_++);
}

void Comm::account_send(int dest, std::size_t bytes) {
  if (ep_->topology().same_node(rank_, dest)) {
    ++counters_.messages_intranode;
    counters_.bytes_intranode += bytes;
  } else {
    ++counters_.messages_internode;
    counters_.bytes_internode += bytes;
  }
  // Cumulative per-rank transmit volume as a Perfetto counter track.
  if (trace::enabled())
    trace::counter("mpp.tx_bytes",
                   static_cast<double>(counters_.bytes_intranode +
                                       counters_.bytes_internode));
}

std::uint64_t Comm::fault_point() {
  ep_->heartbeat();
  const std::uint64_t op = ops_++;
  ep_->fault_hook(op);
  return op;
}

void Comm::poll() { fault_point(); }

void Comm::send_bytes(int dest, int tag, const void* data,
                      std::size_t bytes) {
  OCTGB_CHECK_MSG(dest >= 0 && dest < size_, "send to invalid rank " << dest);
  OCTGB_CHECK_MSG(dest != rank_, "send to self would deadlock");
  const std::uint64_t op = fault_point();
  account_send(dest, bytes);
  ep_->send(dest, tag, data, bytes, op);
}

CommResult Comm::recv_impl(int src, int tag, void* data, std::size_t bytes,
                           double deadline_ms, int abort_epoch) {
  OCTGB_CHECK_MSG(src >= 0 && src < size_, "recv from invalid rank " << src);
  // The span covers matching + blocking, i.e. the rank's wait time.
  OCTGB_SPAN("mpp.recv");
  fault_point();
  return ep_->recv(src, tag, data, bytes, deadline_ms, abort_epoch);
}

void Comm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  CommResult r =
      recv_impl(src, tag, data, bytes, ep_->default_deadline_ms());
  if (!r) throw CommException(r.error());
}

CommResult Comm::recv_bytes_deadline(int src, int tag, void* data,
                                     std::size_t bytes, double deadline_ms) {
  return recv_impl(src, tag, data, bytes, deadline_ms);
}

CommResult Comm::recv_bytes_retry(int src, int tag, void* data,
                                  std::size_t bytes,
                                  const RetryPolicy& policy) {
  OCTGB_CHECK_MSG(policy.attempts >= 1, "retry policy needs >= 1 attempt");
  // Snapshot the failure epoch so every attempt (and the wait inside it)
  // can abort as soon as *any* rank dies — without this, a kill of a rank
  // other than `src` would let the receive sleep out its entire backoff
  // window before the caller learns it must re-plan.
  const int epoch0 =
      policy.abort_on_epoch_advance ? ep_->failure_epoch() : -1;
  double deadline_ms = policy.deadline_ms;
  CommResult last = CommResult::failure(
      {CommStatus::Timeout, rank_, src, tag, bytes});
  for (int attempt = 0; attempt < policy.attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      trace::instant("mpp.retry");
      deadline_ms *= policy.backoff;
    }
    last = recv_impl(src, tag, data, bytes, deadline_ms, epoch0);
    if (last) return last;
    // A dead peer will never answer: retrying only burns the deadline.
    if (last.error().status == CommStatus::PeerDead) return last;
    // Same for a lost connection the transport already failed to restore.
    if (last.error().status == CommStatus::ConnectionLost) return last;
    if (epoch0 >= 0 && ep_->failure_epoch() > epoch0) {
      trace::instant("mpp.retry_abort");
      return last;
    }
  }
  return last;
}

Comm::Request Comm::irecv_bytes(int src, int tag, void* data,
                                std::size_t bytes) {
  OCTGB_CHECK_MSG(src >= 0 && src < size_, "irecv from invalid rank " << src);
  Request r;
  r.comm_ = this;
  r.src_ = src;
  r.tag_ = tag;
  r.data_ = data;
  r.bytes_ = bytes;
  return r;
}

void Comm::wait(Request& request) {
  OCTGB_CHECK_MSG(request.valid(), "wait on an invalid request");
  OCTGB_CHECK_MSG(request.comm_ == this, "request belongs to another comm");
  recv_bytes(request.src_, request.tag_, request.data_, request.bytes_);
  request.comm_ = nullptr;
}

CommResult Comm::wait_deadline(Request& request, double deadline_ms) {
  OCTGB_CHECK_MSG(request.valid(), "wait on an invalid request");
  OCTGB_CHECK_MSG(request.comm_ == this, "request belongs to another comm");
  CommResult r = recv_impl(request.src_, request.tag_, request.data_,
                           request.bytes_, deadline_ms);
  if (r) request.comm_ = nullptr;
  return r;
}

bool Comm::test(const Request& request) {
  OCTGB_CHECK_MSG(request.valid(), "test on an invalid request");
  return ep_->has_message(request.src_, request.tag_);
}

bool Comm::is_alive(int rank) const {
  OCTGB_CHECK_MSG(rank >= 0 && rank < size_, "invalid rank " << rank);
  return ep_->is_alive(rank);
}

std::vector<int> Comm::alive_ranks() const {
  std::vector<int> alive;
  alive.reserve(size_);
  for (int r = 0; r < size_; ++r)
    if (is_alive(r)) alive.push_back(r);
  return alive;
}

int Comm::failure_epoch() const { return ep_->failure_epoch(); }

std::uint64_t Comm::heartbeat_of(int rank) const {
  OCTGB_CHECK_MSG(rank >= 0 && rank < size_, "invalid rank " << rank);
  return ep_->heartbeat_of(rank);
}

void Comm::sendrecv_bytes(int dest, int send_tag, const void* send_data,
                          std::size_t send_len, int src, int recv_tag,
                          void* recv_data, std::size_t recv_len) {
  // Sends are buffered (never block), so send-then-receive cannot
  // deadlock regardless of the pairing pattern.
  send_bytes(dest, send_tag, send_data, send_len);
  recv_bytes(src, recv_tag, recv_data, recv_len);
}

void Comm::barrier() {
  OCTGB_SPAN("mpp.barrier");
  // Reduce a dummy byte to rank 0, then broadcast it back.
  std::uint8_t dummy = 0;
  std::span<std::uint8_t> s(&dummy, 1);
  reduce_sum(s, 0);
  bcast(s, 0);
}

double Comm::allreduce_sum(double v) {
  std::span<double> s(&v, 1);
  allreduce_sum(s);
  return v;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t v) {
  std::span<std::uint64_t> s(&v, 1);
  allreduce_sum(s);
  return v;
}

double Comm::allreduce_min(double v) {
  // min(x) = -max(-x); implemented directly with a gather-to-root pattern
  // would skew counters, so use the same reduce/bcast shape with a trick:
  // negate, reduce via sum of singleton maxima is wrong — do it explicitly.
  // We reuse the binomial structure by exchanging scalars manually.
  const int tag = next_coll_tag();
  int mask = 1;
  while (mask < size_) {
    if (rank_ & mask) {
      send_value(rank_ - mask, tag, v);
      break;
    }
    if (rank_ + mask < size_) {
      const double other = recv_value<double>(rank_ + mask, tag);
      v = other < v ? other : v;
    }
    mask <<= 1;
  }
  ++counters_.collectives;
  std::span<double> s(&v, 1);
  bcast(s, 0);
  return v;
}

double Comm::allreduce_max(double v) {
  const int tag = next_coll_tag();
  int mask = 1;
  while (mask < size_) {
    if (rank_ & mask) {
      send_value(rank_ - mask, tag, v);
      break;
    }
    if (rank_ + mask < size_) {
      const double other = recv_value<double>(rank_ + mask, tag);
      v = other > v ? other : v;
    }
    mask <<= 1;
  }
  ++counters_.collectives;
  std::span<double> s(&v, 1);
  bcast(s, 0);
  return v;
}

double Comm::scan_sum(double value) {
  // Linear pipeline: rank r receives the prefix of ranks < r, adds its
  // value, forwards. O(P) latency but exact left-to-right order.
  const int tag = next_coll_tag();
  double prefix = value;
  if (rank_ > 0) prefix += recv_value<double>(rank_ - 1, tag);
  if (rank_ + 1 < size_) send_value(rank_ + 1, tag, prefix);
  ++counters_.collectives;
  return prefix;
}

std::vector<perf::CommCounters> Runtime::run(
    const Options& opts, const std::function<void(Comm&)>& rank_main) {
  OCTGB_CHECK_MSG(opts.ranks >= 1, "need at least one rank");
  detail::SharedState state;
  state.topology = opts.topology;
  state.checksum = opts.checksum;
  state.default_deadline_ms = opts.default_deadline_ms;
  std::unique_ptr<faults::FaultInjector> injector;
  if (!opts.fault_plan.empty()) {
    injector = std::make_unique<faults::FaultInjector>(opts.fault_plan,
                                                       opts.ranks);
    state.injector = injector.get();
  }
  for (int r = 0; r < opts.ranks; ++r) {
    state.mailboxes.push_back(std::make_unique<detail::Mailbox>());
    state.ranks.push_back(std::make_unique<detail::RankState>());
  }

  std::vector<detail::ThreadEndpoint> endpoints;
  endpoints.reserve(opts.ranks);
  std::vector<Comm> comms;
  comms.reserve(opts.ranks);
  for (int r = 0; r < opts.ranks; ++r) {
    endpoints.emplace_back(&state, r);
    comms.push_back(detail::make_comm(&endpoints[r], r, opts.ranks));
  }

  std::exception_ptr first_error;
  std::mutex err_mu;
  auto body = [&](int r) {
    try {
      if (trace::enabled()) {
        const std::string label = "rank" + std::to_string(r);
        trace::Tracer::instance().set_process_name(r, label);
        trace::set_thread_identity(r, label + ".main");
      }
      rank_main(comms[r]);
    } catch (const RankKilledError&) {
      // Simulated process exit: the dead flag and failure epoch were
      // already published by the fault hook; survivors keep running and
      // observe the death as PeerDead. Not a global failure.
    } catch (...) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!first_error) first_error = std::current_exception();
      state.aborted.store(true);
      // Wake blocked receivers so they observe the abort flag and unwind.
      for (auto& mb : state.mailboxes) mb->cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(opts.ranks);
  for (int r = 1; r < opts.ranks; ++r) threads.emplace_back(body, r);
  body(0);
  for (auto& t : threads) t.join();
  if (opts.fault_stats_out)
    *opts.fault_stats_out =
        injector ? injector->stats() : faults::FaultStats{};
  if (first_error) std::rethrow_exception(first_error);

  std::vector<perf::CommCounters> out;
  out.reserve(opts.ranks);
  for (const auto& c : comms) out.push_back(c.counters());
  return out;
}

}  // namespace octgb::mpp
