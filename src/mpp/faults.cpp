#include "octgb/mpp/faults.hpp"

#include <array>

#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"

namespace octgb::mpp::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Drop: return "drop";
    case FaultKind::Delay: return "delay";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Stall: return "stall";
    case FaultKind::Kill: return "kill";
  }
  return "unknown";
}

FaultPlan message_loss_plan(std::uint64_t seed, double p) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back({.kind = FaultKind::Drop, .probability = p});
  return plan;
}

FaultPlan rank_kill_plan(std::uint64_t seed, int victim,
                         std::uint64_t after_op) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back({.kind = FaultKind::Kill,
                        .rank = victim,
                        .probability = 1.0,
                        .after_op = after_op,
                        .max_fires = 1});
  return plan;
}

FaultPlan stall_plan(std::uint64_t seed, double p, double millis) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back(
      {.kind = FaultKind::Stall, .probability = p, .millis = millis});
  return plan;
}

FaultPlan corruption_plan(std::uint64_t seed, double p) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back({.kind = FaultKind::Corrupt, .probability = p});
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, int ranks)
    : plan_(std::move(plan)), ranks_(ranks) {
  OCTGB_CHECK_MSG(ranks_ >= 1, "injector needs at least one rank");
  for (const auto& r : plan_.rules)
    OCTGB_CHECK_MSG(r.probability >= 0.0 && r.probability <= 1.0,
                    "fault probability must be in [0, 1], got "
                        << r.probability);
  fires_ = std::vector<std::atomic<std::uint64_t>>(plan_.rules.size() *
                                                   static_cast<std::size_t>(
                                                       ranks_));
}

bool FaultInjector::rule_fires(std::size_t rule_index, const FaultRule& rule,
                               int rank, int peer, std::uint64_t op) const {
  if (rule.rank >= 0 && rule.rank != rank) return false;
  if (rule.peer >= 0 && rule.peer != peer) return false;
  if (op < rule.after_op) return false;
  // Deterministic draw: a stateless mix of (seed, rule, rank, op). The
  // peer is deliberately excluded so a rule's schedule depends only on the
  // victim's own operation sequence.
  std::uint64_t state = plan_.seed ^ (0x51ed2701a9c3d5b7ULL * (rule_index + 1))
                        ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                               rank + 1))
                        ^ (0xd1342543de82ef95ULL * (op + 1));
  const std::uint64_t z = util::splitmix64(state);
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  if (u >= rule.probability) return false;
  // max_fires: per-(rule, rank) counter; deterministic because each rank's
  // op sequence is deterministic and decisions are keyed by op index.
  auto& fired = fires_[rule_index * static_cast<std::size_t>(ranks_) +
                       static_cast<std::size_t>(rank)];
  if (fired.fetch_add(1, std::memory_order_relaxed) >= rule.max_fires) {
    fired.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

SendFaults FaultInjector::on_send(int src, int dest, std::uint64_t op) const {
  SendFaults f;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    switch (rule.kind) {
      case FaultKind::Drop:
        if (!f.drop && rule_fires(i, rule, src, dest, op)) {
          f.drop = true;
          stat_[0].fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case FaultKind::Delay:
        if (f.delay_ms <= 0.0 && rule_fires(i, rule, src, dest, op)) {
          f.delay_ms = rule.millis;
          stat_[1].fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case FaultKind::Duplicate:
        if (!f.duplicate && rule_fires(i, rule, src, dest, op)) {
          f.duplicate = true;
          stat_[2].fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case FaultKind::Corrupt:
        if (!f.corrupt && rule_fires(i, rule, src, dest, op)) {
          f.corrupt = true;
          stat_[3].fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case FaultKind::Stall:
      case FaultKind::Kill:
        break;  // process faults; handled by stall_ms / should_kill
    }
  }
  return f;
}

bool FaultInjector::should_kill(int rank, std::uint64_t op) const {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind != FaultKind::Kill) continue;
    if (rule_fires(i, rule, rank, -1, op)) {
      stat_[5].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

double FaultInjector::stall_ms(int rank, std::uint64_t op) const {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind != FaultKind::Stall) continue;
    if (rule_fires(i, rule, rank, -1, op)) {
      stat_[4].fetch_add(1, std::memory_order_relaxed);
      return rule.millis;
    }
  }
  return 0.0;
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.drops = stat_[0].load(std::memory_order_relaxed);
  s.delays = stat_[1].load(std::memory_order_relaxed);
  s.duplicates = stat_[2].load(std::memory_order_relaxed);
  s.corruptions = stat_[3].load(std::memory_order_relaxed);
  s.stalls = stat_[4].load(std::memory_order_relaxed);
  s.kills = stat_[5].load(std::memory_order_relaxed);
  return s;
}

namespace {

/// CRC-32 lookup table (IEEE 802.3 reflected polynomial 0xEDB88320).
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i)
    crc = kCrcTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace octgb::mpp::faults
