#include "octgb/mpp/transport.hpp"

#include <cstring>

#include "octgb/mpp/faults.hpp"
#include "octgb/util/io.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::mpp {

const char* comm_status_name(CommStatus status) {
  switch (status) {
    case CommStatus::Timeout: return "timeout";
    case CommStatus::PeerDead: return "peer-dead";
    case CommStatus::ChecksumMismatch: return "checksum-mismatch";
    case CommStatus::ConnectionLost: return "connection-lost";
  }
  return "unknown";
}

std::optional<CommStatus> comm_status_from_name(std::string_view name) {
  if (name == "timeout") return CommStatus::Timeout;
  if (name == "peer-dead") return CommStatus::PeerDead;
  if (name == "checksum-mismatch") return CommStatus::ChecksumMismatch;
  if (name == "connection-lost") return CommStatus::ConnectionLost;
  return std::nullopt;
}

std::string CommError::describe() const {
  return util::format(
      "mpp recv failed on rank %d: %s waiting for (src=%d, tag=%d, %zu "
      "bytes)",
      rank, comm_status_name(status), src, tag, bytes);
}

namespace wire {

void encode_frame(int src, int tag, const void* data, std::size_t bytes,
                  std::vector<std::uint8_t>& out) {
  FrameHeader h;
  h.payload_bytes = static_cast<std::uint32_t>(bytes);
  h.src = src;
  h.tag = tag;
  h.crc = faults::crc32(data, bytes);
  const std::size_t base = out.size();
  out.resize(base + sizeof(FrameHeader) + bytes);
  std::memcpy(out.data() + base, &h, sizeof(FrameHeader));
  if (bytes) std::memcpy(out.data() + base + sizeof(FrameHeader), data, bytes);
}

util::Expected<Frame, CommStatus> decode_frame(const std::uint8_t* data,
                                               std::size_t bytes) {
  using R = util::Expected<Frame, CommStatus>;
  if (bytes < sizeof(FrameHeader))
    return R::failure(CommStatus::ConnectionLost);
  FrameHeader h;
  std::memcpy(&h, data, sizeof(FrameHeader));
  if (h.payload_bytes > kMaxFramePayload)
    return R::failure(CommStatus::ConnectionLost);
  if (bytes < sizeof(FrameHeader) + h.payload_bytes)
    return R::failure(CommStatus::ConnectionLost);
  Frame f;
  f.src = h.src;
  f.tag = h.tag;
  f.payload.assign(data + sizeof(FrameHeader),
                   data + sizeof(FrameHeader) + h.payload_bytes);
  if (faults::crc32(f.payload.data(), f.payload.size()) != h.crc)
    return R::failure(CommStatus::ChecksumMismatch);
  return R::success(std::move(f));
}

util::Expected<Frame, CommStatus> read_frame_fd(int fd) {
  using R = util::Expected<Frame, CommStatus>;
  FrameHeader h;
  // Any short read — a clean peer close between frames, or a cut landing
  // mid-header or mid-payload — is the same observable event to the
  // receiver: the connection is gone.
  if (!util::io::read_exact(fd, &h, sizeof(FrameHeader)))
    return R::failure(CommStatus::ConnectionLost);
  if (h.payload_bytes > kMaxFramePayload)
    return R::failure(CommStatus::ConnectionLost);
  Frame f;
  f.src = h.src;
  f.tag = h.tag;
  f.payload.resize(h.payload_bytes);
  if (h.payload_bytes &&
      !util::io::read_exact(fd, f.payload.data(), f.payload.size()))
    return R::failure(CommStatus::ConnectionLost);
  if (faults::crc32(f.payload.data(), f.payload.size()) != h.crc)
    return R::failure(CommStatus::ChecksumMismatch);
  return R::success(std::move(f));
}

bool write_frame_fd(int fd, int src, int tag, const void* data,
                    std::size_t bytes) {
  // One buffered write per frame: header and payload must hit the stream
  // back to back or a concurrent writer could interleave mid-frame.
  std::vector<std::uint8_t> buf;
  buf.reserve(sizeof(FrameHeader) + bytes);
  encode_frame(src, tag, data, bytes, buf);
  return static_cast<bool>(
      util::io::write_exact(fd, buf.data(), buf.size()));
}

}  // namespace wire

}  // namespace octgb::mpp
