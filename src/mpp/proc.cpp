#include "octgb/mpp/proc.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "octgb/mpp/faults.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/io.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::mpp::proc {

namespace {

using Clock = std::chrono::steady_clock;

// Reserved control tags. User and collective tags are always >= 0, so
// negative tags never collide with real traffic.
constexpr int kHelloTag = -1;
constexpr int kHeartbeatTag = -2;

// Cadence of wire heartbeat frames on idle TCP connections.
constexpr auto kWireHeartbeatEvery = std::chrono::milliseconds(50);

// Sleep when a drain pass finds nothing (bounds shm latency while keeping
// an idle waiter off the CPU).
constexpr int kIdleSleepUs = 200;

std::string port_file(const std::string& dir, int rank) {
  return dir + "/ep." + std::to_string(rank);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long long>(ms * 1000.0)));
}

}  // namespace

double BackoffPolicy::delay_ms(int i) const {
  if (i <= 0) return 0.0;
  return std::min(cap_ms, base_ms * std::pow(factor, i - 1));
}

ProcEndpoint::ProcEndpoint(shm::Segment* segment, int rank,
                           std::string job_dir, BackoffPolicy backoff)
    : seg_(segment),
      rank_(rank),
      size_(segment->ranks()),
      topology_(segment->topology()),
      dir_(std::move(job_dir)),
      backoff_(backoff),
      last_heartbeat_wire_(Clock::now()) {
  OCTGB_CHECK_MSG(rank_ >= 0 && rank_ < size_,
                  "rank " << rank_ << " outside segment of " << size_);
  in_rings_.resize(size_);
  out_rings_.resize(size_);
  ring_buf_.resize(size_);
  fd_buf_.resize(size_);
  peer_fd_.assign(size_, -1);
  ever_connected_.assign(size_, 0);
  pending_.resize(size_);
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    in_rings_[r] = seg_->ring(r, rank_);
    out_rings_[r] = seg_->ring(rank_, r);
  }

  // Listener for cross-node peers (and for reconnects from any of them).
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  OCTGB_CHECK_MSG(listen_fd_ >= 0, "cannot create transport listener");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  OCTGB_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "cannot bind transport listener");
  OCTGB_CHECK_MSG(::listen(listen_fd_, size_ + 4) == 0,
                  "cannot listen on transport socket");
  socklen_t len = sizeof(addr);
  OCTGB_CHECK_MSG(::getsockname(listen_fd_,
                                reinterpret_cast<sockaddr*>(&addr),
                                &len) == 0,
                  "cannot read transport listener port");
  set_nonblocking(listen_fd_);
  const int port = static_cast<int>(ntohs(addr.sin_port));
  OCTGB_CHECK_MSG(util::io::write_file_atomic(port_file(dir_, rank_),
                                              std::to_string(port)),
                  "cannot publish rendezvous port file for rank " << rank_);

  // Eagerly dial every cross-node peer we initiate to (higher connects to
  // lower), so a rank that only ever *receives* from us still gets its
  // socket without having to dial back.
  for (int p = 0; p < size_; ++p) {
    if (p == rank_ || topology_.same_node(rank_, p)) continue;
    if (rank_ > p) ensure_connection(p);
  }
}

ProcEndpoint::~ProcEndpoint() {
  for (int fd : peer_fd_)
    if (fd >= 0) ::close(fd);
  for (auto& hs : handshakes_)
    if (hs.fd >= 0) ::close(hs.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

double ProcEndpoint::default_deadline_ms() const {
  return seg_->default_deadline_ms();
}

bool ProcEndpoint::is_alive(int rank) const { return seg_->is_alive(rank); }

int ProcEndpoint::failure_epoch() const { return seg_->failure_epoch(); }

std::uint64_t ProcEndpoint::heartbeat_of(int rank) const {
  return seg_->heartbeat_of(rank);
}

void ProcEndpoint::heartbeat() { seg_->beat(rank_); }

// --- connection management --------------------------------------------------

int ProcEndpoint::connect_to(int peer) {
  for (int attempt = 0; attempt < backoff_.attempts; ++attempt) {
    sleep_ms(backoff_.delay_ms(attempt));
    if (!seg_->is_alive(peer)) return -1;
    std::string port_text;
    if (!util::io::read_file(port_file(dir_, peer), port_text))
      continue;  // peer has not published its listener yet
    const int port = std::atoi(port_text.c_str());
    if (port <= 0) continue;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
            0 &&
        wire::write_frame_fd(fd, rank_, kHelloTag, nullptr, 0)) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_nonblocking(fd);
      if (ever_connected_[peer]) {
        ++stats_.reconnects;
        trace::instant("mpp.transport.reconnect");
      }
      ever_connected_[peer] = 1;
      return fd;
    }
    ::close(fd);
  }
  return -1;
}

int ProcEndpoint::ensure_connection(int dest) {
  if (peer_fd_[dest] >= 0) return peer_fd_[dest];
  if (!seg_->is_alive(dest)) return -1;
  if (rank_ > dest) {
    // We are the pair's initiator: dial (and re-dial) with backoff.
    const int fd = connect_to(dest);
    if (fd < 0) {
      // The peer's listener is unreachable after the full backoff
      // schedule: treat it as dead so receivers fail fast.
      seg_->mark_dead(dest);
      return -1;
    }
    peer_fd_[dest] = fd;
    return fd;
  }
  // The peer initiates: wait for its (re)connect to land on our listener.
  for (int attempt = 0; attempt < backoff_.attempts; ++attempt) {
    sleep_ms(backoff_.delay_ms(attempt));
    drain_step(false);
    if (peer_fd_[dest] >= 0) return peer_fd_[dest];
    if (!seg_->is_alive(dest)) return -1;
  }
  seg_->mark_dead(dest);
  return -1;
}

void ProcEndpoint::lose_connection(int peer) {
  if (peer_fd_[peer] < 0) return;
  ::close(peer_fd_[peer]);
  peer_fd_[peer] = -1;
  // A cut mid-frame leaves a partial frame in the staging buffer; it can
  // never complete on a fresh socket, so drop it (the in-flight message
  // is lost, like an injected drop — retry/recovery handles it).
  fd_buf_[peer].clear();
  ++stats_.connection_losses;
  trace::instant("mpp.transport.connection_lost");
}

void ProcEndpoint::accept_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_nonblocking(fd);
    handshakes_.push_back(Handshake{fd, {}});
  }
}

void ProcEndpoint::adopt_handshakes() {
  for (std::size_t i = 0; i < handshakes_.size();) {
    Handshake& hs = handshakes_[i];
    std::uint8_t tmp[4096];
    bool dead_fd = false;
    for (;;) {
      const ssize_t n = ::recv(hs.fd, tmp, sizeof(tmp), 0);
      if (n > 0) {
        hs.buf.insert(hs.buf.end(), tmp, tmp + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      dead_fd = true;
      break;
    }
    wire::FrameHeader h;
    if (hs.buf.size() >= sizeof(h)) {
      std::memcpy(&h, hs.buf.data(), sizeof(h));
      const std::size_t frame_len = sizeof(h) + h.payload_bytes;
      if (h.tag != kHelloTag || h.payload_bytes != 0 || h.src < 0 ||
          h.src >= size_ || h.src == rank_) {
        dead_fd = true;  // not a rank of ours — refuse
      } else if (hs.buf.size() >= frame_len) {
        const int peer = h.src;
        // A fresh hello supersedes any half-dead previous socket.
        if (peer_fd_[peer] >= 0) lose_connection(peer);
        peer_fd_[peer] = hs.fd;
        fd_buf_[peer].assign(hs.buf.begin() +
                                 static_cast<std::ptrdiff_t>(frame_len),
                             hs.buf.end());
        if (ever_connected_[peer]) {
          ++stats_.reconnects;
          trace::instant("mpp.transport.reconnect");
        }
        ever_connected_[peer] = 1;
        handshakes_.erase(handshakes_.begin() +
                          static_cast<std::ptrdiff_t>(i));
        continue;
      }
    }
    if (dead_fd) {
      ::close(hs.fd);
      handshakes_.erase(handshakes_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

// --- receive path -----------------------------------------------------------

bool ProcEndpoint::parse_buffer(int src, std::vector<std::uint8_t>& buf,
                                bool from_shm) {
  std::size_t off = 0;
  while (buf.size() - off >= sizeof(wire::FrameHeader)) {
    wire::FrameHeader h;
    std::memcpy(&h, buf.data() + off, sizeof(h));
    if (h.payload_bytes > wire::kMaxFramePayload) {
      // A corrupt length field: the stream is unrecoverable. Rings are
      // private to the job and never lose sync short of memory
      // corruption, so there this is a hard contract break.
      OCTGB_CHECK_MSG(!from_shm, "shm ring stream from rank "
                                     << src << " is corrupt");
      buf.clear();
      return false;
    }
    const std::size_t frame_len = sizeof(h) + h.payload_bytes;
    if (buf.size() - off < frame_len) break;
    const std::uint8_t* payload = buf.data() + off + sizeof(h);
    if (h.tag != kHelloTag && h.tag != kHeartbeatTag) {
      Pending pd;
      pd.tag = h.tag;
      pd.crc_ok = faults::crc32(payload, h.payload_bytes) == h.crc;
      if (!pd.crc_ok) ++stats_.crc_failures;
      pd.payload.assign(payload, payload + h.payload_bytes);
      // Route by the fd/ring the frame arrived on, not the header's src
      // field — a corrupt header must not let traffic impersonate
      // another rank.
      pending_[src].push_back(std::move(pd));
    }
    ++stats_.frames_received;
    if (from_shm)
      ++stats_.shm_frames;
    else
      ++stats_.tcp_frames;
    off += frame_len;
  }
  if (off > 0)
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

void ProcEndpoint::pump_rings() {
  std::uint8_t tmp[8192];
  for (int src = 0; src < size_; ++src) {
    if (!in_rings_[src].valid()) continue;
    bool got = false;
    for (;;) {
      const std::size_t n = in_rings_[src].try_pop(tmp, sizeof(tmp));
      if (n == 0) break;
      ring_buf_[src].insert(ring_buf_[src].end(), tmp, tmp + n);
      got = true;
    }
    if (got) parse_buffer(src, ring_buf_[src], true);
  }
}

void ProcEndpoint::pump_fd(int peer) {
  std::uint8_t tmp[16384];
  for (;;) {
    const ssize_t n = ::recv(peer_fd_[peer], tmp, sizeof(tmp), 0);
    if (n > 0) {
      fd_buf_[peer].insert(fd_buf_[peer].end(), tmp, tmp + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // 0 = clean close, < 0 = ECONNRESET and friends: either way the
    // connection is gone. Frames fully received before the close (a peer
    // often sends its last message and exits) must still be delivered;
    // only a trailing partial frame is lost with the connection.
    parse_buffer(peer, fd_buf_[peer], false);
    lose_connection(peer);
    return;
  }
  if (!parse_buffer(peer, fd_buf_[peer], false)) lose_connection(peer);
}

void ProcEndpoint::send_wire_heartbeats() {
  const auto now = Clock::now();
  if (now - last_heartbeat_wire_ < kWireHeartbeatEvery) return;
  last_heartbeat_wire_ = now;
  std::vector<std::uint8_t> frame;
  wire::encode_frame(rank_, kHeartbeatTag, nullptr, 0, frame);
  for (int p = 0; p < size_; ++p) {
    if (peer_fd_[p] < 0) continue;
    // Best effort: a full socket buffer just skips this beat.
    const ssize_t n = ::send(peer_fd_[p], frame.data(), frame.size(),
                             MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(frame.size()))
      ++stats_.heartbeats_sent;
    else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
             errno != EINTR)
      lose_connection(p);
  }
}

void ProcEndpoint::drain_step(bool allow_sleep) {
  const std::uint64_t before = stats_.frames_received;
  pump_rings();
  accept_connections();
  adopt_handshakes();
  for (int p = 0; p < size_; ++p)
    if (peer_fd_[p] >= 0) pump_fd(p);
  send_wire_heartbeats();
  if (allow_sleep && stats_.frames_received == before)
    ::usleep(kIdleSleepUs);
}

CommResult ProcEndpoint::recv(int src, int tag, void* data,
                              std::size_t bytes, double deadline_ms,
                              int abort_epoch) {
  const bool finite = deadline_ms > 0.0;
  const auto deadline =
      finite ? Clock::now() + std::chrono::microseconds(
                                  static_cast<long long>(deadline_ms *
                                                         1000.0))
             : Clock::time_point::max();
  for (;;) {
    auto& q = pending_[src];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->tag != tag) continue;
      if (!it->crc_ok) {
        // Consume the corrupt copy so a retry can match a clean resend.
        q.erase(it);
        return CommResult::failure(
            {CommStatus::ChecksumMismatch, rank_, src, tag, bytes});
      }
      OCTGB_CHECK_MSG(it->payload.size() == bytes,
                      "message size mismatch: got " << it->payload.size()
                                                    << ", want " << bytes);
      if (bytes) std::memcpy(data, it->payload.data(), bytes);
      q.erase(it);
      return CommResult::success({});
    }
    // Drain before trusting the dead flag: frames a rank pushed before
    // being SIGKILLed are still sitting in its rings/sockets and must be
    // deliverable after its death.
    drain_step(false);
    bool matched = false;
    for (const auto& pd : q)
      if (pd.tag == tag) matched = true;
    if (matched) continue;
    if (!seg_->is_alive(src))
      return CommResult::failure(
          {CommStatus::PeerDead, rank_, src, tag, bytes});
    if (abort_epoch >= 0 && seg_->failure_epoch() > abort_epoch)
      return CommResult::failure(
          {CommStatus::Timeout, rank_, src, tag, bytes});
    if (finite && Clock::now() >= deadline)
      return CommResult::failure(
          {CommStatus::Timeout, rank_, src, tag, bytes});
    ::usleep(kIdleSleepUs);
  }
}

bool ProcEndpoint::has_message(int src, int tag) {
  drain_step(false);
  for (const auto& pd : pending_[src])
    if (pd.tag == tag) return true;
  return false;
}

// --- send path --------------------------------------------------------------

void ProcEndpoint::send(int dest, int tag, const void* data,
                        std::size_t bytes, std::uint64_t op) {
  (void)op;  // fault determinism is the in-thread transport's concern
  if (!seg_->is_alive(dest)) {
    ++stats_.sends_dropped_dead;
    return;
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(sizeof(wire::FrameHeader) + bytes);
  wire::encode_frame(rank_, tag, data, bytes, frame);

  if (topology_.same_node(rank_, dest)) {
    shm::Ring& ring = out_rings_[dest];
    OCTGB_CHECK_MSG(ring.valid(), "no shm ring for same-node pair");
    std::size_t off = 0;
    while (off < frame.size()) {
      const std::size_t n =
          ring.try_push(frame.data() + off, frame.size() - off);
      off += n;
      if (n != 0) continue;
      if (!seg_->is_alive(dest)) {
        // Consumer died with the ring full: drop the rest (a dead peer's
        // ring never drains again).
        ++stats_.sends_dropped_dead;
        return;
      }
      // Ring full but consumer alive: drain our own inbox so a mutual
      // large exchange cannot deadlock on two full rings, then yield.
      drain_step(false);
      ::usleep(kIdleSleepUs);
    }
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.size();
    return;
  }

  send_tcp(dest, frame);
}

void ProcEndpoint::send_tcp(int dest, const std::vector<std::uint8_t>& frame) {
  for (int round = 0;; ++round) {
    const int fd = ensure_connection(dest);
    if (fd < 0) {
      ++stats_.sends_dropped_dead;
      return;
    }
    std::size_t off = 0;
    bool broken = false;
    while (off < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!seg_->is_alive(dest)) {
          ++stats_.sends_dropped_dead;
          return;
        }
        // Socket buffer full: drain our inbox (unblocking the peer if it
        // is stuck sending to us) and retry.
        drain_step(false);
        ::usleep(kIdleSleepUs);
        continue;
      }
      broken = true;  // EPIPE/ECONNRESET/...
      break;
    }
    if (!broken) {
      ++stats_.frames_sent;
      stats_.bytes_sent += frame.size();
      return;
    }
    lose_connection(dest);
    if (round + 1 >= backoff_.attempts) {
      // Reconnects keep failing: give the peer up for dead so receivers
      // waiting on it fail fast.
      seg_->mark_dead(dest);
      ++stats_.sends_dropped_dead;
      return;
    }
    sleep_ms(backoff_.delay_ms(round + 1));
  }
}

// --- per-process runtime ----------------------------------------------------

std::optional<ProcessRuntime::Env> ProcessRuntime::from_env() {
  const char* rank = std::getenv(kEnvRank);
  const char* size = std::getenv(kEnvSize);
  const char* dir = std::getenv(kEnvDir);
  if (rank == nullptr || size == nullptr || dir == nullptr)
    return std::nullopt;
  Env env;
  env.rank = std::atoi(rank);
  env.size = std::atoi(size);
  env.dir = dir;
  if (env.rank < 0 || env.size <= 0 || env.rank >= env.size ||
      env.dir.empty())
    return std::nullopt;
  return env;
}

ProcessRuntime::RunResult ProcessRuntime::run(
    const Env& env, const std::function<void(Comm&)>& rank_main) {
  shm::Segment seg = shm::Segment::attach(env.dir + "/shm");
  OCTGB_CHECK_MSG(seg.ranks() == env.size,
                  "segment has " << seg.ranks() << " ranks, env says "
                                 << env.size);
  ProcEndpoint ep(&seg, env.rank, env.dir);
  Comm comm = detail::make_comm(&ep, env.rank, env.size);
  rank_main(comm);
  return RunResult{comm.counters(), ep.stats()};
}

}  // namespace octgb::mpp::proc
