#include "octgb/mol/zdock.hpp"

#include <array>

#include "octgb/mol/generate.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::mol {

namespace {

// Names in the sorted-by-size order of Fig. 8; atom counts follow a
// geometric ladder anchored at the sizes the paper states explicitly
// (min ≈ 436, Gromacs best case 2,260, max 16,301).
constexpr std::array<BenchmarkEntry, 42> kZdock = {{
    {"1PPE_l_b", 436},   {"1CGI_l_b", 476},   {"1ACB_l_b", 520},
    {"1GCQ_l_b", 568},   {"2JEL_l_b", 621},   {"1AY7_r_b", 678},
    {"1K4C_l_b", 741},   {"1WEJ_l_b", 809},   {"1TMQ_l_b", 884},
    {"1F51_l_b", 966},   {"1MLC_l_b", 1055},  {"2BTF_l_b", 1152},
    {"1NSN_l_b", 1258},  {"1WQ1_l_b", 1374},  {"1I2M_r_b", 1501},
    {"1IBR_r_b", 1640},  {"1FQ1_r_b", 1791},  {"1BJ1_l_b", 1956},
    {"1AHW_l_b", 2137},  {"1PPE_r_b", 2260},  {"1EZU_r_b", 2549},
    {"2QFW_r_b", 2784},  {"1ACB_r_b", 3041},  {"1EAW_r_b", 3322},
    {"2SNI_r_b", 3629},  {"1ATN_l_b", 3964},  {"2PCC_r_b", 4330},
    {"1FQ1_l_b", 4730},  {"1WQ1_r_b", 5166},  {"1FAK_r_b", 5643},
    {"1I2M_l_b", 6164},  {"1F51_r_b", 6733},  {"1DE4_r_b", 7354},
    {"1BGX_r_b", 8033},  {"1MLC_r_b", 8774},  {"1K4C_r_b", 9584},
    {"1NCA_r_b", 10469}, {"1EER_l_b", 11435}, {"1E6E_r_b", 12491},
    {"2MTA_r_b", 13644}, {"1MAH_r_b", 14903}, {"1BGX_l_b", 16301},
}};

}  // namespace

std::span<const BenchmarkEntry> zdock_set() { return kZdock; }

const BenchmarkEntry* find_benchmark(std::string_view name) {
  for (const auto& e : kZdock)
    if (name == e.name) return &e;
  return nullptr;
}

Molecule make_benchmark_molecule(std::string_view name, std::size_t atoms) {
  ProteinSpec spec;
  spec.target_atoms = atoms;
  spec.seed = util::fnv1a64(name);
  Molecule m = generate_protein(spec);
  m.set_name(std::string(name));
  return m;
}

Molecule make_benchmark_molecule(std::string_view name) {
  const BenchmarkEntry* e = find_benchmark(name);
  OCTGB_CHECK_MSG(e != nullptr, "unknown benchmark molecule "
                                    << std::string(name));
  return make_benchmark_molecule(name, e->atoms);
}

Molecule make_btv(double scale) {
  OCTGB_CHECK_MSG(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
  ShellSpec spec;
  spec.target_atoms =
      static_cast<std::size_t>(static_cast<double>(kBtvAtoms) * scale);
  spec.seed = util::fnv1a64("BTV");
  Molecule m = generate_virus_shell(spec);
  m.set_name(scale == 1.0 ? "BTV" : util::format("BTV_x%.3f", scale));
  return m;
}

Molecule make_cmv(double scale) {
  OCTGB_CHECK_MSG(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
  ShellSpec spec;
  spec.target_atoms =
      static_cast<std::size_t>(static_cast<double>(kCmvAtoms) * scale);
  spec.seed = util::fnv1a64("CMV");
  Molecule m = generate_virus_shell(spec);
  m.set_name(scale == 1.0 ? "CMV" : util::format("CMV_x%.3f", scale));
  return m;
}

}  // namespace octgb::mol
