#include "octgb/mol/pdb.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "octgb/util/check.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::mol {

namespace {

/// Extract a fixed-width column range [begin, end) (0-based) from a PDB
/// line, tolerating short lines.
std::string_view column(std::string_view line, std::size_t begin,
                        std::size_t end) {
  if (line.size() <= begin) return {};
  return line.substr(begin, std::min(end, line.size()) - begin);
}

// PDB records are 80 columns; anything dramatically longer is not a PDB
// line (binary junk, a mis-saved file) and parsing it column-wise would
// produce silent nonsense.
constexpr std::size_t kMaxPdbLine = 512;

/// Parse a mandatory coordinate column; blank or non-numeric fields are
/// hard errors naming the line, not silent zeros.
double parse_coord(std::string_view field, char axis, int line_no) {
  if (util::trim(field).empty())
    throw PdbParseError(util::format(
        "PDB line %d: blank %c-coordinate field", line_no, axis));
  try {
    return util::parse_double_field(field, 0.0);
  } catch (const util::CheckError&) {
    throw PdbParseError(util::format(
        "PDB line %d: non-numeric %c-coordinate field '%.*s'", line_no,
        axis, static_cast<int>(field.size()), field.data()));
  }
}

}  // namespace

double protein_partial_charge(std::string_view atom_name,
                              std::string_view residue_name) {
  const std::string a = util::to_upper(util::trim(atom_name));
  const std::string r = util::to_upper(util::trim(residue_name));
  // Backbone (CHARMM-like coarse values; sums per residue are integral
  // when combined with the side-chain entries below).
  if (a == "N") return -0.47;
  if (a == "HN" || a == "H") return 0.31;
  if (a == "CA") return 0.07;
  if (a == "HA") return 0.09;
  if (a == "C") return 0.51;
  if (a == "O") return -0.51;
  if (a == "OXT") return -0.67;
  // Charged side chains.
  if (r == "LYS") {
    if (a == "NZ") return -0.30;
    if (a == "HZ1" || a == "HZ2" || a == "HZ3") return 0.33;
    if (a == "CE") return 0.21;
    if (a == "CB" || a == "CG" || a == "CD") return 0.02;
    if (a.starts_with("H")) return 0.03;
  }
  if (r == "ARG") {
    if (a == "CZ") return 0.64;
    if (a == "NH1" || a == "NH2") return -0.80;
    if (a.starts_with("HH")) return 0.46;
    if (a == "NE") return -0.70;
    if (a == "HE") return 0.44;
    if (a.starts_with("H")) return 0.05;
  }
  if (r == "ASP") {
    if (a == "CG") return 0.62;
    if (a == "OD1" || a == "OD2") return -0.76;
    if (a == "CB") return -0.28;
    if (a.starts_with("H")) return 0.09;
  }
  if (r == "GLU") {
    if (a == "CD") return 0.62;
    if (a == "OE1" || a == "OE2") return -0.76;
    if (a == "CG") return -0.28;
    if (a.starts_with("H")) return 0.09;
  }
  if (r == "HIS" || r == "HSD") {
    if (a == "ND1" || a == "NE2") return -0.36;
    if (a.starts_with("HD") || a.starts_with("HE")) return 0.32;
    if (a == "CE1" || a == "CD2" || a == "CG") return 0.10;
  }
  if (r == "SER" || r == "THR") {
    if (a == "OG" || a == "OG1") return -0.66;
    if (a == "HG" || a == "HG1") return 0.43;
    if (a == "CB") return 0.14;
    if (a.starts_with("H")) return 0.09;
  }
  if (r == "ASN" || r == "GLN") {
    if (a == "OD1" || a == "OE1") return -0.55;
    if (a == "ND2" || a == "NE2") return -0.62;
    if (a.starts_with("HD2") || a.starts_with("HE2")) return 0.32;
    if (a == "CG" || a == "CD") return 0.55;
    if (a.starts_with("H")) return 0.09;
  }
  if (r == "CYS") {
    if (a == "SG") return -0.23;
    if (a == "HG") return 0.16;
    if (a == "CB") return -0.11;
    if (a.starts_with("H")) return 0.09;
  }
  if (r == "TYR") {
    if (a == "OH") return -0.54;
    if (a == "HH") return 0.43;
    if (a == "CZ") return 0.11;
    if (a.starts_with("H")) return 0.08;
  }
  if (r == "MET") {
    if (a == "SD") return -0.09;
    if (a == "CE" || a == "CG") return -0.05;
    if (a.starts_with("H")) return 0.06;
  }
  if (r == "TRP") {
    if (a == "NE1") return -0.61;
    if (a == "HE1") return 0.38;
    if (a == "CD1") return 0.03;
    if (a == "CE2") return 0.13;
    if (a.starts_with("H")) return 0.06;
  }
  if (r == "PRO") {
    if (a == "CD") return 0.00;
    if (a.starts_with("H")) return 0.06;
  }
  // Apolar side chains: small alternating values so the molecule is not
  // artificially charge-free off the backbone.
  if (a.starts_with("C")) return -0.09;
  if (a.starts_with("H")) return 0.06;
  if (a.starts_with("O")) return -0.40;
  if (a.starts_with("N")) return -0.40;
  if (a.starts_with("S")) return -0.15;
  return 0.0;
}

void assign_charges_and_radii(Molecule& mol) {
  auto atoms = mol.atoms();
  const auto labels = mol.labels();
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    Atom& a = atoms[i];
    if (a.element == Element::Unknown && i < labels.size())
      a.element = element_from_atom_name(labels[i].atom_name);
    a.radius = vdw_radius(a.element);
    if (i < labels.size())
      a.charge = protein_partial_charge(labels[i].atom_name,
                                        labels[i].residue_name);
  }
}

Molecule read_pdb(std::istream& in, const std::string& name) {
  Molecule mol(name);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.size() > kMaxPdbLine)
      throw PdbParseError(util::format(
          "PDB line %d: %zu characters long — not a PDB record (limit %zu)",
          line_no, line.size(), kMaxPdbLine));
    if (util::starts_with(line, "END") && !util::starts_with(line, "ENDMDL"))
      break;
    const bool is_atom = util::starts_with(line, "ATOM  ");
    const bool is_het = util::starts_with(line, "HETATM");
    if (!is_atom && !is_het) continue;

    Atom a;
    AtomLabel label;
    label.serial = util::parse_int_field(column(line, 6, 11), 0);
    label.atom_name = std::string(column(line, 12, 16));
    label.residue_name = std::string(util::trim(column(line, 17, 20)));
    const auto chain = column(line, 21, 22);
    label.chain_id = chain.empty() ? 'A' : chain[0];
    label.residue_seq = util::parse_int_field(column(line, 22, 26), 0);
    a.pos.x = parse_coord(column(line, 30, 38), 'x', line_no);
    a.pos.y = parse_coord(column(line, 38, 46), 'y', line_no);
    a.pos.z = parse_coord(column(line, 46, 54), 'z', line_no);
    const auto elem_field = column(line, 76, 78);
    a.element = parse_element(elem_field);
    if (a.element == Element::Unknown)
      a.element = element_from_atom_name(label.atom_name);
    mol.add_atom(a, std::move(label));
  }
  if (mol.size() == 0)
    throw PdbParseError("PDB stream '" + name +
                        "' contains no ATOM/HETATM records");
  assign_charges_and_radii(mol);
  return mol;
}

Molecule read_pdb_file(const std::string& path) {
  std::ifstream f(path);
  OCTGB_CHECK_MSG(static_cast<bool>(f), "cannot open PDB file " << path);
  return read_pdb(f, path);
}

void write_pdb(const Molecule& mol, std::ostream& out) {
  const auto atoms = mol.atoms();
  const auto labels = mol.labels();
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Atom& a = atoms[i];
    AtomLabel label;
    if (i < labels.size()) {
      label = labels[i];
    } else {
      label.atom_name = util::format(" %-3s", std::string(element_symbol(a.element)).c_str());
      label.residue_name = "UNK";
      label.residue_seq = static_cast<int>(i / 10) + 1;
      label.serial = static_cast<int>(i) + 1;
    }
    // Columns per the PDB 3.3 spec; serial and resSeq clamp to the field
    // width for very large molecules (standard practice).
    std::string atom_name = label.atom_name;
    if (atom_name.size() < 4) atom_name.resize(4, ' ');
    out << util::format(
        "ATOM  %5d %.4s %-3s %c%4d    %8.3f%8.3f%8.3f%6.2f%6.2f          %2s\n",
        label.serial % 100000, atom_name.c_str(), label.residue_name.c_str(),
        label.chain_id, label.residue_seq % 10000, a.pos.x, a.pos.y, a.pos.z,
        1.0, 0.0, std::string(element_symbol(a.element)).c_str());
  }
  out << "TER\nEND\n";
}

bool write_pdb_file(const Molecule& mol, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_pdb(mol, f);
  return static_cast<bool>(f);
}

}  // namespace octgb::mol
