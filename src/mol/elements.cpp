#include "octgb/mol/elements.hpp"

#include <cctype>

#include "octgb/util/strings.hpp"

namespace octgb::mol {

double vdw_radius(Element e) {
  switch (e) {
    case Element::H:
      return 1.20;
    case Element::C:
      return 1.70;
    case Element::N:
      return 1.55;
    case Element::O:
      return 1.52;
    case Element::P:
      return 1.80;
    case Element::S:
      return 1.80;
    case Element::Fe:
      return 2.05;
    case Element::Zn:
      return 2.10;
    case Element::Unknown:
      return 1.70;
  }
  return 1.70;
}

double atomic_mass(Element e) {
  switch (e) {
    case Element::H:
      return 1.008;
    case Element::C:
      return 12.011;
    case Element::N:
      return 14.007;
    case Element::O:
      return 15.999;
    case Element::P:
      return 30.974;
    case Element::S:
      return 32.06;
    case Element::Fe:
      return 55.845;
    case Element::Zn:
      return 65.38;
    case Element::Unknown:
      return 12.011;
  }
  return 12.011;
}

std::string_view element_symbol(Element e) {
  switch (e) {
    case Element::H:
      return "H";
    case Element::C:
      return "C";
    case Element::N:
      return "N";
    case Element::O:
      return "O";
    case Element::P:
      return "P";
    case Element::S:
      return "S";
    case Element::Fe:
      return "FE";
    case Element::Zn:
      return "ZN";
    case Element::Unknown:
      return "X";
  }
  return "X";
}

Element parse_element(std::string_view symbol) {
  const std::string s = util::to_upper(util::trim(symbol));
  if (s == "H" || s == "D") return Element::H;
  if (s == "C") return Element::C;
  if (s == "N") return Element::N;
  if (s == "O") return Element::O;
  if (s == "P") return Element::P;
  if (s == "S") return Element::S;
  if (s == "FE") return Element::Fe;
  if (s == "ZN") return Element::Zn;
  return Element::Unknown;
}

Element element_from_atom_name(std::string_view name) {
  // PDB atom names right-justify single-letter elements in columns 13-14;
  // digits prefix hydrogens ("1HB1"). Try the two-letter symbol first.
  const std::string t = util::to_upper(util::trim(name));
  if (t.empty()) return Element::Unknown;
  if (t.size() >= 2) {
    const Element two = parse_element(t.substr(0, 2));
    if (two == Element::Fe || two == Element::Zn) return two;
  }
  for (char c : t) {
    if (std::isdigit(static_cast<unsigned char>(c))) continue;
    return parse_element(std::string_view(&c, 1));
  }
  return Element::Unknown;
}

}  // namespace octgb::mol
