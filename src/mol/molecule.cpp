#include "octgb/mol/molecule.hpp"

#include "octgb/util/check.hpp"

namespace octgb::mol {

void Molecule::add_atom(const Atom& a) {
  OCTGB_CHECK_MSG(labels_.empty(),
                  "molecule has labels; use the labeled add_atom overload");
  atoms_.push_back(a);
}

void Molecule::add_atom(const Atom& a, AtomLabel label) {
  OCTGB_CHECK_MSG(labels_.size() == atoms_.size(),
                  "cannot mix labeled and unlabeled atoms");
  atoms_.push_back(a);
  labels_.push_back(std::move(label));
}

geom::Aabb Molecule::bounds() const {
  geom::Aabb b;
  for (const Atom& a : atoms_) b.expand(a.pos);
  return b;
}

geom::Aabb Molecule::inflated_bounds() const {
  geom::Aabb b;
  for (const Atom& a : atoms_) {
    b.expand(a.pos + geom::Vec3{a.radius, a.radius, a.radius});
    b.expand(a.pos - geom::Vec3{a.radius, a.radius, a.radius});
  }
  return b;
}

double Molecule::net_charge() const {
  double q = 0.0;
  for (const Atom& a : atoms_) q += a.charge;
  return q;
}

geom::Vec3 Molecule::centroid() const {
  geom::Vec3 c;
  if (atoms_.empty()) return c;
  for (const Atom& a : atoms_) c += a.pos;
  return c / static_cast<double>(atoms_.size());
}

void Molecule::transform(const geom::RigidTransform& t) {
  for (Atom& a : atoms_) a.pos = t.apply(a.pos);
}

std::size_t Molecule::footprint_bytes() const {
  std::size_t b = atoms_.capacity() * sizeof(Atom);
  b += labels_.capacity() * sizeof(AtomLabel);
  for (const AtomLabel& l : labels_)
    b += l.atom_name.capacity() + l.residue_name.capacity();
  return b;
}

}  // namespace octgb::mol
