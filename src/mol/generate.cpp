#include "octgb/mol/generate.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "octgb/geom/transform.hpp"
#include "octgb/mol/pdb.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::mol {

namespace {

using geom::Vec3;
using util::Xoshiro256;

/// One atom of a residue template: local offset from Cα, name, element.
struct TemplateAtom {
  Vec3 offset;
  const char* name;
  Element element;
};

/// A residue template. Offsets are rough idealized geometry — the energy
/// models only see positions/radii/charges, not bond topology.
struct ResidueTemplate {
  const char* name;
  std::vector<TemplateAtom> atoms;
};

const std::vector<ResidueTemplate>& residue_templates() {
  // Backbone common to all residues (N, HN, CA, HA, C, O) plus per-residue
  // side chains. Offsets in Å, in a local frame with CA at the origin.
  static const std::vector<ResidueTemplate> templates = [] {
    auto bb = [](std::vector<TemplateAtom> side) {
      std::vector<TemplateAtom> a = {
          {{-1.46, 0.00, 0.00}, "N", Element::N},
          {{-1.95, 0.85, 0.30}, "HN", Element::H},
          {{0.00, 0.00, 0.00}, "CA", Element::C},
          {{0.35, -0.95, -0.45}, "HA", Element::H},
          {{0.90, 1.20, 0.10}, "C", Element::C},
          {{0.60, 2.35, -0.20}, "O", Element::O},
      };
      a.insert(a.end(), side.begin(), side.end());
      return a;
    };
    std::vector<ResidueTemplate> t;
    t.push_back({"GLY", bb({})});
    t.push_back({"ALA", bb({{{0.55, -0.70, 1.25}, "CB", Element::C},
                            {{1.25, -1.45, 1.10}, "HB1", Element::H},
                            {{-0.30, -1.15, 1.70}, "HB2", Element::H},
                            {{0.95, 0.05, 1.95}, "HB3", Element::H}})});
    t.push_back({"SER", bb({{{0.55, -0.70, 1.25}, "CB", Element::C},
                            {{1.40, -1.55, 1.10}, "HB1", Element::H},
                            {{-0.35, -1.20, 1.65}, "HB2", Element::H},
                            {{1.05, 0.15, 2.30}, "OG", Element::O},
                            {{1.35, -0.45, 3.00}, "HG", Element::H}})});
    t.push_back({"LEU", bb({{{0.55, -0.70, 1.25}, "CB", Element::C},
                            {{1.35, -1.50, 1.15}, "HB1", Element::H},
                            {{-0.35, -1.20, 1.60}, "HB2", Element::H},
                            {{1.10, 0.10, 2.50}, "CG", Element::C},
                            {{1.95, 0.75, 2.35}, "HG", Element::H},
                            {{1.60, -1.00, 3.40}, "CD1", Element::C},
                            {{0.15, 0.95, 3.20}, "CD2", Element::C},
                            {{2.35, -0.60, 4.10}, "HD11", Element::H},
                            {{0.80, -1.45, 4.00}, "HD12", Element::H},
                            {{2.05, -1.80, 2.85}, "HD13", Element::H},
                            {{-0.55, 1.45, 2.55}, "HD21", Element::H},
                            {{0.65, 1.75, 3.75}, "HD22", Element::H},
                            {{-0.45, 0.35, 3.90}, "HD23", Element::H}})});
    t.push_back({"LYS", bb({{{0.55, -0.70, 1.25}, "CB", Element::C},
                            {{1.35, -1.50, 1.15}, "HB1", Element::H},
                            {{-0.35, -1.20, 1.60}, "HB2", Element::H},
                            {{1.10, 0.10, 2.50}, "CG", Element::C},
                            {{1.70, -0.75, 3.55}, "CD", Element::C},
                            {{2.25, 0.10, 4.65}, "CE", Element::C},
                            {{2.85, -0.65, 5.75}, "NZ", Element::N},
                            {{3.30, 0.00, 6.40}, "HZ1", Element::H},
                            {{2.20, -1.20, 6.25}, "HZ2", Element::H},
                            {{3.50, -1.25, 5.40}, "HZ3", Element::H},
                            {{1.95, 0.95, 2.15}, "HG1", Element::H},
                            {{0.30, 0.55, 3.00}, "HG2", Element::H},
                            {{0.90, -1.50, 3.95}, "HD1", Element::H},
                            {{2.50, -1.35, 3.15}, "HD2", Element::H},
                            {{3.00, 0.80, 4.25}, "HE1", Element::H},
                            {{1.45, 0.65, 5.10}, "HE2", Element::H}})});
    t.push_back({"ASP", bb({{{0.55, -0.70, 1.25}, "CB", Element::C},
                            {{1.35, -1.50, 1.15}, "HB1", Element::H},
                            {{-0.35, -1.20, 1.60}, "HB2", Element::H},
                            {{1.10, 0.10, 2.50}, "CG", Element::C},
                            {{2.10, 0.85, 2.55}, "OD1", Element::O},
                            {{0.50, -0.10, 3.60}, "OD2", Element::O}})});
    t.push_back({"GLU", bb({{{0.55, -0.70, 1.25}, "CB", Element::C},
                            {{1.35, -1.50, 1.15}, "HB1", Element::H},
                            {{-0.35, -1.20, 1.60}, "HB2", Element::H},
                            {{1.10, 0.10, 2.50}, "CG", Element::C},
                            {{1.70, -0.75, 3.55}, "CD", Element::C},
                            {{2.70, -0.40, 4.20}, "OE1", Element::O},
                            {{1.15, -1.85, 3.80}, "OE2", Element::O},
                            {{1.95, 0.95, 2.15}, "HG1", Element::H},
                            {{0.30, 0.55, 3.00}, "HG2", Element::H}})});
    t.push_back({"PHE", bb({{{0.55, -0.70, 1.25}, "CB", Element::C},
                            {{1.35, -1.50, 1.15}, "HB1", Element::H},
                            {{-0.35, -1.20, 1.60}, "HB2", Element::H},
                            {{1.10, 0.10, 2.50}, "CG", Element::C},
                            {{2.30, 0.75, 2.60}, "CD1", Element::C},
                            {{0.40, 0.05, 3.70}, "CD2", Element::C},
                            {{2.80, 1.40, 3.75}, "CE1", Element::C},
                            {{0.90, 0.70, 4.85}, "CE2", Element::C},
                            {{2.10, 1.40, 4.90}, "CZ", Element::C},
                            {{2.85, 0.80, 1.75}, "HD1", Element::H},
                            {{-0.50, -0.45, 3.65}, "HD2", Element::H},
                            {{3.70, 1.90, 3.80}, "HE1", Element::H},
                            {{0.35, 0.65, 5.75}, "HE2", Element::H},
                            {{2.50, 1.90, 5.75}, "HZ", Element::H}})});
    t.push_back({"THR", bb({{{0.55, -0.70, 1.25}, "CB", Element::C},
                            {{1.40, -1.45, 1.25}, "HB", Element::H},
                            {{1.05, 0.15, 2.30}, "OG1", Element::O},
                            {{1.40, -0.45, 2.95}, "HG1", Element::H},
                            {{-0.45, -0.15, 2.35}, "CG2", Element::C},
                            {{-1.10, -0.95, 2.60}, "HG21", Element::H},
                            {{-1.00, 0.65, 1.95}, "HG22", Element::H},
                            {{0.00, 0.20, 3.30}, "HG23", Element::H}})});
    t.push_back({"VAL", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.20}, "HB", Element::H},
        {{-0.40, -0.10, 2.30}, "CG1", Element::C},
        {{1.15, 0.45, 2.15}, "CG2", Element::C},
        {{-1.10, -0.85, 2.55}, "HG11", Element::H},
        {{-0.95, 0.75, 2.00}, "HG12", Element::H},
        {{0.10, 0.25, 3.20}, "HG13", Element::H},
        {{1.85, -0.25, 2.55}, "HG21", Element::H},
        {{0.60, 1.00, 2.95}, "HG22", Element::H},
        {{1.75, 1.15, 1.55}, "HG23", Element::H},
    })});
    t.push_back({"ILE", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.20}, "HB", Element::H},
        {{-0.35, -0.05, 2.35}, "CG1", Element::C},
        {{1.20, 0.40, 2.10}, "CG2", Element::C},
        {{0.25, -0.95, 3.50}, "CD1", Element::C},
        {{-1.10, 0.60, 2.05}, "HG11", Element::H},
        {{-0.90, -0.80, 2.80}, "HG12", Element::H},
        {{0.95, -0.45, 4.15}, "HD11", Element::H},
        {{-0.55, -1.30, 4.10}, "HD12", Element::H},
        {{0.75, -1.80, 3.15}, "HD13", Element::H},
        {{1.90, -0.30, 2.50}, "HG21", Element::H},
        {{0.65, 0.95, 2.90}, "HG22", Element::H},
        {{1.80, 1.10, 1.50}, "HG23", Element::H},
    })});
    t.push_back({"PRO", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{0.95, 0.30, 2.30}, "CG", Element::C},
        {{1.80, 0.90, 2.00}, "HG1", Element::H},
        {{0.10, 0.95, 2.55}, "HG2", Element::H},
        {{1.30, -0.45, 3.55}, "CD", Element::C},
        {{2.20, -1.05, 3.40}, "HD1", Element::H},
        {{0.50, -1.10, 3.90}, "HD2", Element::H},
    })});
    t.push_back({"MET", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{1.05, 0.15, 2.40}, "CG", Element::C},
        {{1.90, 0.75, 2.10}, "HG1", Element::H},
        {{0.25, 0.80, 2.75}, "HG2", Element::H},
        {{1.55, -0.85, 3.80}, "SD", Element::S},
        {{2.25, 0.25, 5.00}, "CE", Element::C},
        {{2.95, 1.00, 4.65}, "HE1", Element::H},
        {{1.50, 0.75, 5.60}, "HE2", Element::H},
        {{2.80, -0.35, 5.70}, "HE3", Element::H},
    })});
    t.push_back({"TRP", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{1.05, 0.15, 2.40}, "CG", Element::C},
        {{2.25, 0.75, 2.50}, "CD1", Element::C},
        {{3.00, 0.65, 1.75}, "HD1", Element::H},
        {{2.35, 1.50, 3.65}, "NE1", Element::N},
        {{3.15, 2.05, 3.95}, "HE1", Element::H},
        {{1.20, 1.40, 4.35}, "CE2", Element::C},
        {{0.35, 0.55, 3.60}, "CD2", Element::C},
        {{-0.95, 0.25, 3.95}, "CE3", Element::C},
        {{-1.60, -0.40, 3.40}, "HE3", Element::H},
        {{-1.35, 0.80, 5.15}, "CZ3", Element::C},
        {{-2.35, 0.60, 5.45}, "HZ3", Element::H},
        {{-0.50, 1.65, 5.90}, "CH2", Element::C},
        {{-0.85, 2.05, 6.85}, "HH2", Element::H},
        {{0.80, 1.95, 5.55}, "CZ2", Element::C},
        {{1.45, 2.60, 6.10}, "HZ2", Element::H},
    })});
    t.push_back({"TYR", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{1.05, 0.15, 2.45}, "CG", Element::C},
        {{2.25, 0.80, 2.55}, "CD1", Element::C},
        {{2.85, 0.85, 1.70}, "HD1", Element::H},
        {{0.40, 0.10, 3.70}, "CD2", Element::C},
        {{-0.55, -0.40, 3.70}, "HD2", Element::H},
        {{2.75, 1.45, 3.70}, "CE1", Element::C},
        {{3.70, 1.95, 3.75}, "HE1", Element::H},
        {{0.90, 0.75, 4.85}, "CE2", Element::C},
        {{0.35, 0.70, 5.75}, "HE2", Element::H},
        {{2.05, 1.45, 4.90}, "CZ", Element::C},
        {{2.55, 2.10, 6.00}, "OH", Element::O},
        {{2.00, 2.05, 6.80}, "HH", Element::H},
    })});
    t.push_back({"HIS", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{1.05, 0.15, 2.45}, "CG", Element::C},
        {{2.30, 0.65, 2.55}, "ND1", Element::N},
        {{3.05, 0.50, 1.90}, "HD1", Element::H},
        {{0.45, 0.55, 3.60}, "CD2", Element::C},
        {{-0.55, 0.40, 3.95}, "HD2", Element::H},
        {{2.45, 1.40, 3.65}, "CE1", Element::C},
        {{3.35, 1.90, 3.95}, "HE1", Element::H},
        {{1.35, 1.40, 4.40}, "NE2", Element::N},
        {{1.25, 1.90, 5.25}, "HE2", Element::H},
    })});
    t.push_back({"CYS", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{1.20, 0.35, 2.70}, "SG", Element::S},
        {{2.00, 1.05, 2.25}, "HG", Element::H},
    })});
    t.push_back({"ASN", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{1.05, 0.15, 2.45}, "CG", Element::C},
        {{2.10, 0.80, 2.55}, "OD1", Element::O},
        {{0.35, 0.05, 3.60}, "ND2", Element::N},
        {{0.65, 0.50, 4.40}, "HD21", Element::H},
        {{-0.50, -0.45, 3.65}, "HD22", Element::H},
    })});
    t.push_back({"GLN", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{1.05, 0.15, 2.45}, "CG", Element::C},
        {{1.90, 0.80, 2.15}, "HG1", Element::H},
        {{0.25, 0.80, 2.80}, "HG2", Element::H},
        {{1.55, -0.75, 3.65}, "CD", Element::C},
        {{2.60, -1.40, 3.55}, "OE1", Element::O},
        {{0.85, -0.85, 4.80}, "NE2", Element::N},
        {{1.15, -1.45, 5.55}, "HE21", Element::H},
        {{0.00, -0.35, 4.90}, "HE22", Element::H},
    })});
    t.push_back({"ARG", bb({
        {{0.55, -0.70, 1.25}, "CB", Element::C},
        {{1.40, -1.40, 1.15}, "HB1", Element::H},
        {{-0.30, -1.25, 1.60}, "HB2", Element::H},
        {{1.05, 0.15, 2.45}, "CG", Element::C},
        {{1.90, 0.80, 2.15}, "HG1", Element::H},
        {{0.25, 0.80, 2.80}, "HG2", Element::H},
        {{1.55, -0.75, 3.65}, "CD", Element::C},
        {{0.75, -1.40, 4.00}, "HD1", Element::H},
        {{2.40, -1.40, 3.35}, "HD2", Element::H},
        {{2.00, 0.05, 4.80}, "NE", Element::N},
        {{2.90, 0.55, 4.70}, "HE", Element::H},
        {{1.40, 0.15, 6.00}, "CZ", Element::C},
        {{0.25, -0.45, 6.25}, "NH1", Element::N},
        {{-0.20, -1.00, 5.55}, "HH11", Element::H},
        {{-0.15, -0.35, 7.15}, "HH12", Element::H},
        {{1.95, 0.90, 6.95}, "NH2", Element::N},
        {{2.85, 1.35, 6.80}, "HH21", Element::H},
        {{1.50, 1.00, 7.85}, "HH22", Element::H},
    })});
    return t;
  }();
  return templates;
}

/// Protein interior density: ~0.0085 residues per Å means one residue per
/// ~118 Å³ — matches globular proteins.
constexpr double kResiduePerA3 = 1.0 / 118.0;

/// Average atoms per residue across the template set (used to size the
/// confining sphere from the atom budget).
double mean_atoms_per_residue() {
  const auto& ts = residue_templates();
  double s = 0;
  for (const auto& t : ts) s += static_cast<double>(t.atoms.size());
  return s / static_cast<double>(ts.size());
}

}  // namespace

Molecule generate_protein(const ProteinSpec& spec) {
  OCTGB_CHECK_MSG(spec.target_atoms >= 6, "need at least one residue");
  Xoshiro256 rng(spec.seed);
  const auto& templates = residue_templates();

  const double n_res_target =
      static_cast<double>(spec.target_atoms) / mean_atoms_per_residue();
  // Confining sphere sized for protein density.
  const double volume = n_res_target / (kResiduePerA3 * spec.compactness);
  const double R = std::cbrt(volume * 3.0 / (4.0 * std::numbers::pi));

  Molecule mol;
  mol.reserve(spec.target_atoms + 32);

  std::vector<Vec3> ca_positions;  // for self-avoidance
  Vec3 ca = {rng.uniform(-0.3, 0.3) * R, rng.uniform(-0.3, 0.3) * R,
             rng.uniform(-0.3, 0.3) * R};
  int residue_seq = 0;
  int serial = 1;

  while (mol.size() < spec.target_atoms) {
    ++residue_seq;
    const auto& tpl = templates[rng.below(templates.size())];
    // Random rigid orientation of the residue template.
    const geom::Mat3 rot = geom::Mat3::euler_zyx(
        rng.uniform(0, 2 * std::numbers::pi),
        rng.uniform(0, 2 * std::numbers::pi),
        rng.uniform(0, 2 * std::numbers::pi));
    for (const TemplateAtom& ta : tpl.atoms) {
      Atom a;
      a.pos = ca + rot.apply(ta.offset);
      a.element = ta.element;
      AtomLabel label;
      label.atom_name = ta.name;
      label.residue_name = tpl.name;
      label.residue_seq = residue_seq;
      label.serial = serial++;
      mol.add_atom(a, std::move(label));
    }
    ca_positions.push_back(ca);

    // Advance the Cα walk: 3.8 Å step, biased back toward the center when
    // near the confining sphere, rejecting steps that clash with previous
    // Cα positions (self-avoidance makes the chain fill the ball).
    for (int attempt = 0;; ++attempt) {
      Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
      dir = dir.normalized();
      // Inward bias proportional to how far out we are.
      const double out = ca.norm() / R;
      dir = (dir - ca.normalized() * (0.8 * out * out)).normalized();
      const Vec3 next = ca + dir * 3.8;
      bool ok = next.norm() <= R;
      if (ok) {
        // Check the most recent positions only (older ones rarely matter
        // and this keeps generation O(n)).
        const std::size_t lookback =
            ca_positions.size() > 64 ? ca_positions.size() - 64 : 0;
        for (std::size_t i = lookback; i + 1 < ca_positions.size(); ++i) {
          if (geom::dist2(next, ca_positions[i]) < 4.2 * 4.2) {
            ok = false;
            break;
          }
        }
      }
      if (ok || attempt > 40) {
        ca = ok ? next : ca + Vec3{rng.normal(), rng.normal(), rng.normal()}
                                  .normalized() *
                              3.8;
        if (!ok) ca = ca * std::min(1.0, R / ca.norm());
        break;
      }
    }
  }
  assign_charges_and_radii(mol);
  mol.set_name(util::format("synthetic_%zu", mol.size()));
  return mol;
}

Molecule generate_virus_shell(const ShellSpec& spec) {
  OCTGB_CHECK_MSG(spec.target_atoms >= 100, "shell too small");
  Xoshiro256 rng(spec.seed);
  const auto& templates = residue_templates();
  const double apr = mean_atoms_per_residue();
  const double n_res = static_cast<double>(spec.target_atoms) / apr;

  // Shell wall volume = 4π R² t at protein density ⇒ R from the budget.
  const double wall_volume = n_res / kResiduePerA3;
  const double R =
      std::sqrt(wall_volume / (4.0 * std::numbers::pi * spec.thickness));

  Molecule mol;
  mol.reserve(spec.target_atoms + 64);
  const auto n_sites = static_cast<std::size_t>(n_res);
  int serial = 1;
  const double golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n_sites && mol.size() < spec.target_atoms;
       ++i) {
    // Fibonacci sphere gives quasi-uniform site placement (icosahedral-ish
    // coverage); radial jitter spreads residues through the wall.
    const double y = 1.0 - 2.0 * (static_cast<double>(i) + 0.5) /
                               static_cast<double>(n_sites);
    const double r_xy = std::sqrt(std::max(0.0, 1.0 - y * y));
    const double theta = golden * static_cast<double>(i);
    const Vec3 unit{r_xy * std::cos(theta), y, r_xy * std::sin(theta)};
    const double radial =
        R + spec.thickness * (rng.uniform() - 0.5);
    const Vec3 site = unit * radial;

    const auto& tpl = templates[rng.below(templates.size())];
    const geom::Mat3 rot = geom::Mat3::euler_zyx(
        rng.uniform(0, 2 * std::numbers::pi),
        rng.uniform(0, 2 * std::numbers::pi),
        rng.uniform(0, 2 * std::numbers::pi));
    for (const TemplateAtom& ta : tpl.atoms) {
      Atom a;
      a.pos = site + rot.apply(ta.offset);
      a.element = ta.element;
      AtomLabel label;
      label.atom_name = ta.name;
      label.residue_name = tpl.name;
      label.residue_seq = static_cast<int>(i) + 1;
      label.serial = serial++;
      mol.add_atom(a, std::move(label));
    }
  }
  assign_charges_and_radii(mol);
  mol.set_name(util::format("shell_%zu", mol.size()));
  return mol;
}

}  // namespace octgb::mol
