#include "octgb/perf/machine_model.hpp"

#include <algorithm>
#include <cmath>

namespace octgb::perf {

double MachineModel::cache_factor(double working_set_bytes,
                                  int cores_sharing_l3) const {
  if (working_set_bytes <= 0.0) return 1.0;
  const double share = l3_bytes / std::max(1, cores_sharing_l3);
  const double pressure = working_set_bytes / share;
  if (pressure <= 1.0) return 1.0;
  // Smooth saturation: factor → cache_miss_penalty as pressure grows.
  const double excess = 1.0 - 1.0 / pressure;  // in (0,1)
  return 1.0 + (cache_miss_penalty - 1.0) * excess;
}

double MachineModel::compute_seconds(const WorkCounters& w,
                                     double working_set_bytes,
                                     int cores_sharing_l3,
                                     bool approx_math) const {
  const double math_div = approx_math ? approx_math_speedup : 1.0;
  // Interaction arithmetic benefits from approximate math; traversal and
  // scheduling overheads do not.
  double interact_cycles =
      static_cast<double>(w.born_exact) * cyc_born_exact +
      static_cast<double>(w.born_approx) * cyc_born_approx +
      static_cast<double>(w.epol_exact) * cyc_epol_exact +
      static_cast<double>(w.epol_bins) * cyc_epol_bin +
      static_cast<double>(w.pairlist_pairs) * cyc_pairlist_pair +
      static_cast<double>(w.grid_cells) * cyc_grid_cell +
      static_cast<double>(w.push_atoms) * cyc_push_atom;
  interact_cycles /= math_div;

  const double traversal_cycles =
      static_cast<double>(w.born_visits) * cyc_born_visit +
      static_cast<double>(w.push_visits) * cyc_push_visit +
      static_cast<double>(w.epol_visits) * cyc_epol_visit +
      static_cast<double>(w.spawns) * cyc_spawn +
      static_cast<double>(w.steals) * cyc_steal;

  const double factor = cache_factor(working_set_bytes, cores_sharing_l3);
  return (interact_cycles + traversal_cycles) * factor / clock_hz;
}

MachineModel MachineModel::from_topology(const CpuTopology& topo) {
  MachineModel m;
  m.cores_per_node = std::max(1, topo.num_cpus());
  m.sockets_per_node = std::max(1, topo.sockets);
  if (topo.l3_bytes > 0) m.l3_bytes = static_cast<double>(topo.l3_bytes);
  return m;
}

double comm_seconds(const MachineModel& m, const CommCounters& c) {
  return static_cast<double>(c.messages_internode) * m.net_ts +
         static_cast<double>(c.bytes_internode) * m.net_tw +
         static_cast<double>(c.messages_intranode) * m.shm_ts +
         static_cast<double>(c.bytes_intranode) * m.shm_tw;
}

}  // namespace octgb::perf
