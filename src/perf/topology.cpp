#include "octgb/perf/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

namespace octgb::perf {

namespace {

/// Read a small sysfs attribute; empty string when unreadable. sysfs
/// attributes are single-line, so one bounded read suffices.
std::string read_attr(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return {};
  char buf[256];
  std::string out;
  if (std::fgets(buf, sizeof(buf), f)) out = buf;
  std::fclose(f);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out;
}

/// Parse a non-negative integer attribute; -1 on absence or junk.
int parse_int(const std::string& s) {
  if (s.empty()) return -1;
  int v = 0;
  bool any = false;
  for (char c : s) {
    if (c < '0' || c > '9') return any ? v : -1;
    v = v * 10 + (c - '0');
    any = true;
  }
  return any ? v : -1;
}

/// Parse a cache size attribute like "12288K" / "16M" into bytes; 0 when
/// unreadable.
std::uint64_t parse_size_bytes(const std::string& s) {
  if (s.empty()) return 0;
  std::uint64_t v = 0;
  std::size_t i = 0;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i)
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
  if (i == 0) return 0;
  if (i < s.size()) {
    if (s[i] == 'K' || s[i] == 'k') v <<= 10;
    if (s[i] == 'M' || s[i] == 'm') v <<= 20;
    if (s[i] == 'G' || s[i] == 'g') v <<= 30;
  }
  return v;
}

int fallback_cpu_count(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Map each distinct key to a dense id in first-appearance order.
template <class K>
int dense_id(std::map<K, int>& table, const K& key) {
  auto [it, inserted] =
      table.emplace(key, static_cast<int>(table.size()));
  (void)inserted;
  return it->second;
}

}  // namespace

CpuTopology flat_topology(int n) {
  CpuTopology t;
  n = std::max(1, n);
  t.cpus.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) t.cpus[static_cast<std::size_t>(i)] =
      CpuTopology::Cpu{i, 0, 0, i};
  t.sockets = 1;
  t.l3_domains = 1;
  t.smt_groups = n;
  t.flat_fallback = true;
  return t;
}

CpuTopology discover_topology(const std::string& sysfs_cpu_root,
                              int fallback_cpus) {
  // Enumerate cpu0, cpu1, ... until the first missing directory; a
  // readable package id is the witness that cpuN really exists (a plain
  // directory probe would need <filesystem>, and sysfs always exposes
  // physical_package_id when it exposes the cpu at all).
  struct Raw {
    int package = -1;
    std::string l3_key;   // shared_cpu_list string, "" = unknown
    std::string smt_key;  // thread_siblings_list string, "" = unknown
  };
  std::vector<Raw> raw;
  for (int i = 0;; ++i) {
    const std::string base = sysfs_cpu_root + "/cpu" + std::to_string(i);
    Raw r;
    r.package = parse_int(read_attr(base + "/topology/physical_package_id"));
    if (r.package < 0) break;
    // L3 sharing: prefer the index3 (unified LLC) list; fall back to
    // index2 for parts whose last level is L2. Missing cache info (the
    // container case) leaves the key empty and the cpu degrades to
    // socket-granularity below.
    r.l3_key = read_attr(base + "/cache/index3/shared_cpu_list");
    if (r.l3_key.empty())
      r.l3_key = read_attr(base + "/cache/index2/shared_cpu_list");
    r.smt_key = read_attr(base + "/topology/thread_siblings_list");
    raw.push_back(std::move(r));
  }
  if (raw.empty()) return flat_topology(fallback_cpu_count(fallback_cpus));

  CpuTopology t;
  t.flat_fallback = false;
  std::map<int, int> socket_ids;
  std::map<std::string, int> l3_ids, smt_ids;
  t.cpus.resize(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    CpuTopology::Cpu& c = t.cpus[i];
    c.id = static_cast<int>(i);
    c.socket = dense_id(socket_ids, raw[i].package);
    // Unknown L3 sharing degrades to the socket domain: cores of one
    // package are assumed to share their LLC (exact for every platform
    // the paper targets, conservative for chiplet parts).
    c.l3 = raw[i].l3_key.empty()
               ? dense_id(l3_ids, std::string("socket:") +
                                      std::to_string(raw[i].package))
               : dense_id(l3_ids, raw[i].l3_key);
    c.smt_group = raw[i].smt_key.empty()
                      ? dense_id(smt_ids, std::string("cpu:") +
                                              std::to_string(i))
                      : dense_id(smt_ids, raw[i].smt_key);
  }
  t.sockets = static_cast<int>(socket_ids.size());
  t.l3_domains = static_cast<int>(l3_ids.size());
  t.smt_groups = static_cast<int>(smt_ids.size());
  t.l3_bytes =
      parse_size_bytes(read_attr(sysfs_cpu_root + "/cpu0/cache/index3/size"));
  return t;
}

const CpuTopology& topology() {
  static const CpuTopology host = [] {
#ifdef __linux__
    return discover_topology("/sys/devices/system/cpu");
#else
    return flat_topology(fallback_cpu_count(0));
#endif
  }();
  return host;
}

bool touch_zero_by_domain(std::span<double> data,
                          std::span<const std::size_t> boundary,
                          std::span<const int> domain,
                          const CpuTopology& topo) {
  if (topo.sockets <= 1 || data.empty()) return false;
  if (boundary.size() < 2 || domain.size() + 1 != boundary.size())
    return false;
  if (boundary.front() != 0 || boundary.back() != data.size()) return false;
  for (std::size_t k = 1; k < boundary.size(); ++k)
    if (boundary[k] < boundary[k - 1]) return false;

  // One representative cpu per socket for pinning the touch threads.
  std::vector<int> socket_cpu(static_cast<std::size_t>(topo.sockets), -1);
  for (const auto& c : topo.cpus)
    if (socket_cpu[static_cast<std::size_t>(c.socket)] < 0)
      socket_cpu[static_cast<std::size_t>(c.socket)] = c.id;

  std::vector<std::thread> touchers;
  touchers.reserve(static_cast<std::size_t>(topo.sockets));
  for (int s = 0; s < topo.sockets; ++s) {
    touchers.emplace_back([&, s] {
#ifdef __linux__
      // Best effort: an affinity failure (restricted mask, offline cpu)
      // just leaves this thread's pages wherever the kernel puts them.
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(socket_cpu[static_cast<std::size_t>(s)]),
              &set);
      (void)sched_setaffinity(0, sizeof(set), &set);
#endif
      for (std::size_t k = 0; k + 1 < boundary.size(); ++k) {
        if (domain[k] % topo.sockets != s) continue;
        std::fill(data.begin() + static_cast<std::ptrdiff_t>(boundary[k]),
                  data.begin() + static_cast<std::ptrdiff_t>(boundary[k + 1]),
                  0.0);
      }
    });
  }
  for (auto& th : touchers) th.join();
  return true;
}

}  // namespace octgb::perf
