#include "octgb/octree/nblist.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "octgb/geom/aabb.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::octree {

namespace {

/// Pack a 3D integer cell coordinate into a hashable key.
std::uint64_t cell_key(long ix, long iy, long iz) {
  // 21 bits per axis, offset to keep coordinates positive.
  const std::uint64_t bias = 1u << 20;
  return ((static_cast<std::uint64_t>(ix) + bias) << 42) |
         ((static_cast<std::uint64_t>(iy) + bias) << 21) |
         (static_cast<std::uint64_t>(iz) + bias);
}

}  // namespace

NbList NbList::build(std::span<const geom::Vec3> points,
                     const Params& params) {
  OCTGB_CHECK_MSG(params.cutoff > 0.0, "cutoff must be positive");
  NbList list;
  list.cutoff_ = params.cutoff;
  const std::size_t n = points.size();
  list.offsets_.assign(n + 1, 0);
  if (n == 0) return list;

  // Bucket points into cells of edge = cutoff.
  const double inv = 1.0 / params.cutoff;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells;
  cells.reserve(n / 4 + 16);
  auto cell_of = [&](const geom::Vec3& p) {
    return cell_key(static_cast<long>(std::floor(p.x * inv)),
                    static_cast<long>(std::floor(p.y * inv)),
                    static_cast<long>(std::floor(p.z * inv)));
  };
  for (std::uint32_t i = 0; i < n; ++i)
    cells[cell_of(points[i])].push_back(i);

  const double cutoff2 = params.cutoff * params.cutoff;

  // Two passes: count then fill (keeps memory at exactly CSR size).
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<std::uint64_t> cursor;
    if (pass == 1) {
      // Counts for atom i were accumulated at offsets_[i+1]; in-place
      // prefix sum turns them into CSR offsets with offsets_[0] == 0.
      for (std::size_t i = 1; i <= n; ++i)
        list.offsets_[i] += list.offsets_[i - 1];
      const std::uint64_t total = list.offsets_[n];
      const std::size_t bytes = total * sizeof(std::uint32_t);
      if (params.max_bytes != 0 && bytes > params.max_bytes) {
        throw NbListOutOfMemory(util::format(
            "nblist for %zu atoms at cutoff %.1f needs %s (budget %s)", n,
            params.cutoff, util::human_bytes(static_cast<double>(bytes)).c_str(),
            util::human_bytes(static_cast<double>(params.max_bytes)).c_str()));
      }
      list.neighbors_.resize(total);
      cursor.assign(list.offsets_.begin(), list.offsets_.end() - 1);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const geom::Vec3& p = points[i];
      const long cx = static_cast<long>(std::floor(p.x * inv));
      const long cy = static_cast<long>(std::floor(p.y * inv));
      const long cz = static_cast<long>(std::floor(p.z * inv));
      for (long dx = -1; dx <= 1; ++dx)
        for (long dy = -1; dy <= 1; ++dy)
          for (long dz = -1; dz <= 1; ++dz) {
            auto it = cells.find(cell_key(cx + dx, cy + dy, cz + dz));
            if (it == cells.end()) continue;
            for (std::uint32_t j : it->second) {
              if (j == i) continue;
              if (geom::dist2(p, points[j]) > cutoff2) continue;
              if (pass == 0) {
                ++list.offsets_[i + 1];
              } else {
                list.neighbors_[cursor[i]++] = j;
              }
            }
          }
    }
    if (pass == 0) {
      // offsets_[i+1] currently holds the count for atom i; the prefix sum
      // above converts counts to offsets at the start of pass 1.
      continue;
    }
  }
  return list;
}

}  // namespace octgb::octree
