#include "octgb/octree/dynamic.hpp"

#include <algorithm>
#include <cmath>

#include "octgb/util/check.hpp"

namespace octgb::octree {

DynamicOctree::DynamicOctree(std::span<const geom::Vec3> positions,
                             Params params)
    : params_(params) {
  rebuild(positions);
  rebuilds_ = 0;  // the initial build is not a rebuild
}

void DynamicOctree::rebuild(std::span<const geom::Vec3> positions) {
  tree_ = Octree::build(positions, params_.build);
  build_radius_.resize(tree_.nodes().size());
  for (std::size_t id = 0; id < tree_.nodes().size(); ++id)
    build_radius_[id] = tree_.node(id).radius;
  ++rebuilds_;
}

void DynamicOctree::refit(std::span<const geom::Vec3> positions) {
  tree_.refit(positions);
  ++refits_;
}

double DynamicOctree::worst_leaf_inflation() const {
  double worst = 0.0;
  for (std::uint32_t id : tree_.leaf_ids()) {
    const double base =
        std::max(build_radius_[id], params_.rebuild_radius_slack);
    worst = std::max(worst, tree_.node(id).radius / base);
  }
  return worst;
}

bool DynamicOctree::update(std::span<const geom::Vec3> positions) {
  OCTGB_CHECK_MSG(positions.size() == tree_.num_points(),
                  "point count changed; build a new DynamicOctree");
  refit(positions);
  for (std::uint32_t id : tree_.leaf_ids()) {
    const double limit =
        params_.rebuild_radius_factor *
            std::max(build_radius_[id], params_.rebuild_radius_slack);
    if (tree_.node(id).radius > limit) {
      rebuild(positions);
      return true;
    }
  }
  return false;
}

}  // namespace octgb::octree
