#include "octgb/octree/dynamic.hpp"

#include <algorithm>
#include <cmath>

#include "octgb/util/check.hpp"

namespace octgb::octree {

RefitMonitor::RefitMonitor(const Octree& tree) : RefitMonitor(tree, Policy()) {}

RefitMonitor::RefitMonitor(const Octree& tree, Policy policy)
    : policy_(policy) {
  rebase(tree);
}

void RefitMonitor::rebase(const Octree& tree) {
  base_radius_.resize(tree.nodes().size());
  for (std::size_t id = 0; id < tree.nodes().size(); ++id)
    base_radius_[id] = tree.node(id).radius;
}

double RefitMonitor::worst_leaf_inflation(const Octree& tree) const {
  OCTGB_CHECK_MSG(base_radius_.size() == tree.nodes().size(),
                  "monitor not rebased after a topology change");
  double worst = 0.0;
  for (std::uint32_t id : tree.leaf_ids()) {
    const double base =
        std::max(base_radius_[id], policy_.rebuild_radius_slack);
    worst = std::max(worst, tree.node(id).radius / base);
  }
  return worst;
}

bool RefitMonitor::should_rebuild(const Octree& tree) const {
  OCTGB_CHECK_MSG(base_radius_.size() == tree.nodes().size(),
                  "monitor not rebased after a topology change");
  for (std::uint32_t id : tree.leaf_ids()) {
    const double limit =
        policy_.rebuild_radius_factor *
        std::max(base_radius_[id], policy_.rebuild_radius_slack);
    if (tree.node(id).radius > limit) return true;
  }
  return false;
}

DynamicOctree::DynamicOctree(std::span<const geom::Vec3> positions,
                             Params params)
    : params_(params) {
  rebuild(positions);
  rebuilds_ = 0;  // the initial build is not a rebuild
}

void DynamicOctree::rebuild(std::span<const geom::Vec3> positions) {
  tree_ = Octree::build(positions, params_.build);
  monitor_ = RefitMonitor(
      tree_, {.rebuild_radius_factor = params_.rebuild_radius_factor,
              .rebuild_radius_slack = params_.rebuild_radius_slack});
  ++rebuilds_;
}

void DynamicOctree::refit(std::span<const geom::Vec3> positions) {
  tree_.refit(positions);
  ++refits_;
}

double DynamicOctree::worst_leaf_inflation() const {
  return monitor_.worst_leaf_inflation(tree_);
}

bool DynamicOctree::update(std::span<const geom::Vec3> positions) {
  OCTGB_CHECK_MSG(positions.size() == tree_.num_points(),
                  "point count changed; build a new DynamicOctree");
  if (params_.enable_resort && tree_.has_morton()) {
    if (tree_.resort(positions, params_.build)) {
      // Topology may have changed; the monitor's per-node baseline must
      // follow. Quality is build-fresh, so no should_rebuild() check.
      monitor_.rebase(tree_);
      ++resorts_;
      return false;
    }
    // A point escaped the build grid's cube: re-anchor with a full build.
    rebuild(positions);
    return true;
  }
  refit(positions);
  if (monitor_.should_rebuild(tree_)) {
    rebuild(positions);
    return true;
  }
  return false;
}

}  // namespace octgb::octree
