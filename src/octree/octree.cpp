#include "octgb/octree/octree.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "octgb/util/check.hpp"

namespace octgb::octree {

namespace {

struct BuildCell {
  geom::Vec3 center;
  double half;
};

int octant_of(const geom::Vec3& p, const geom::Vec3& c) {
  return (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0) | (p.z >= c.z ? 4 : 0);
}

}  // namespace

Octree Octree::build(std::span<const geom::Vec3> input,
                     const BuildParams& params) {
  Octree t;
  if (input.empty()) return t;

  t.points_.assign(input.begin(), input.end());
  t.point_index_.resize(input.size());
  for (std::uint32_t i = 0; i < input.size(); ++i) t.point_index_[i] = i;

  const geom::Aabb box = geom::Aabb::of(input).cubified();
  const BuildCell root_cell{box.center(),
                            std::max(box.max_extent() * 0.5, 1e-9)};

  // Work item: node id already allocated; subdivide or finalize as a leaf.
  struct WorkItem {
    std::uint32_t node_id;
    BuildCell cell;
  };
  std::vector<WorkItem> stack;

  t.nodes_.push_back(Node{});
  t.nodes_[0].begin = 0;
  t.nodes_[0].end = static_cast<std::uint32_t>(input.size());
  t.nodes_[0].depth = 0;
  stack.push_back({0, root_cell});

  std::array<std::uint32_t, 9> bucket_start;
  while (!stack.empty()) {
    const WorkItem item = stack.back();
    stack.pop_back();
    Node node = t.nodes_[item.node_id];  // copy; vector may reallocate below
    const std::uint32_t n = node.size();
    t.max_depth_ = std::max(t.max_depth_, static_cast<int>(node.depth));

    const bool make_leaf =
        n <= params.max_leaf_size || node.depth >= params.max_depth;
    if (!make_leaf) {
      // Count points per octant, then partition the range stably into
      // contiguous buckets (counting sort over 8 keys).
      std::array<std::uint32_t, 8> count{};
      for (std::uint32_t i = node.begin; i < node.end; ++i)
        ++count[octant_of(t.points_[i], item.cell.center)];

      bucket_start[0] = node.begin;
      for (int o = 0; o < 8; ++o)
        bucket_start[o + 1] = bucket_start[o] + count[o];

      // Permute points (and the index map) into octant order.
      {
        std::vector<geom::Vec3> tmp_pts(n);
        std::vector<std::uint32_t> tmp_idx(n);
        std::array<std::uint32_t, 8> cursor{};
        for (int o = 0; o < 8; ++o) cursor[o] = bucket_start[o] - node.begin;
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
          const int o = octant_of(t.points_[i], item.cell.center);
          tmp_pts[cursor[o]] = t.points_[i];
          tmp_idx[cursor[o]] = t.point_index_[i];
          ++cursor[o];
        }
        std::copy(tmp_pts.begin(), tmp_pts.end(),
                  t.points_.begin() + node.begin);
        std::copy(tmp_idx.begin(), tmp_idx.end(),
                  t.point_index_.begin() + node.begin);
      }

      // Allocate the non-empty children contiguously.
      const auto first_child = static_cast<std::uint32_t>(t.nodes_.size());
      std::uint8_t created = 0;
      for (int o = 0; o < 8; ++o) {
        if (count[o] == 0) continue;
        Node child;
        child.begin = bucket_start[o];
        child.end = bucket_start[o] + count[o];
        child.depth = static_cast<std::uint8_t>(node.depth + 1);
        t.nodes_.push_back(child);
        ++created;
      }
      // Degenerate split (all coincident points land in one octant at the
      // same positions): fall back to a leaf to guarantee progress when
      // the cell can no longer separate them.
      if (created == 1 && t.nodes_.back().size() == n &&
          item.cell.half < 1e-7) {
        t.nodes_.pop_back();
        node.first_child = kNoChild;
        node.child_count = 0;
      } else {
        node.first_child = first_child;
        node.child_count = created;
        // Push children with their sub-cells.
        std::uint32_t cid = first_child;
        for (int o = 0; o < 8; ++o) {
          if (count[o] == 0) continue;
          BuildCell cc;
          cc.half = item.cell.half * 0.5;
          cc.center = item.cell.center +
                      geom::Vec3{(o & 1) ? cc.half : -cc.half,
                                 (o & 2) ? cc.half : -cc.half,
                                 (o & 4) ? cc.half : -cc.half};
          stack.push_back({cid, cc});
          ++cid;
        }
      }
    }
    t.nodes_[item.node_id] = node;
  }

  // Centroids and exact enclosing radii: every node's points are
  // contiguous, so one pass per node over its own range suffices.
  for (Node& nd : t.nodes_) {
    geom::Vec3 c;
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) c += t.points_[i];
    nd.centroid = c / static_cast<double>(nd.size());
    double r2 = 0.0;
    for (std::uint32_t i = nd.begin; i < nd.end; ++i)
      r2 = std::max(r2, geom::dist2(nd.centroid, t.points_[i]));
    nd.radius = std::sqrt(r2);
  }

  for (std::uint32_t id = 0; id < t.nodes_.size(); ++id)
    if (t.nodes_[id].is_leaf()) t.leaf_ids_.push_back(id);
  // Left-to-right (point-range) order: leaf segments used for work
  // division are then spatially coherent, like the paper's.
  std::sort(t.leaf_ids_.begin(), t.leaf_ids_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return t.nodes_[a].begin < t.nodes_[b].begin;
            });

  return t;
}

Octree Octree::from_parts(std::vector<Node> nodes,
                          std::vector<geom::Vec3> points,
                          std::vector<std::uint32_t> point_index) {
  Octree t;
  t.nodes_ = std::move(nodes);
  t.points_ = std::move(points);
  t.point_index_ = std::move(point_index);
  for (std::uint32_t id = 0; id < t.nodes_.size(); ++id) {
    t.max_depth_ = std::max(t.max_depth_, static_cast<int>(t.nodes_[id].depth));
    if (t.nodes_[id].is_leaf()) t.leaf_ids_.push_back(id);
  }
  std::sort(t.leaf_ids_.begin(), t.leaf_ids_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return t.nodes_[a].begin < t.nodes_[b].begin;
            });
  return t;
}

void Octree::refit(std::span<const geom::Vec3> positions) {
  OCTGB_CHECK_MSG(positions.size() == points_.size(),
                  "refit needs the original point count");
  for (std::size_t pos = 0; pos < point_index_.size(); ++pos)
    points_[pos] = positions[point_index_[pos]];
  // Children follow parents in the flat array; every node's points are
  // contiguous, so one exact pass per node suffices.
  for (std::size_t id = nodes_.size(); id-- > 0;) {
    Node& n = nodes_[id];
    geom::Vec3 c;
    for (std::uint32_t i = n.begin; i < n.end; ++i) c += points_[i];
    n.centroid = c / static_cast<double>(n.size());
    double r2 = 0.0;
    for (std::uint32_t i = n.begin; i < n.end; ++i)
      r2 = std::max(r2, geom::dist2(n.centroid, points_[i]));
    n.radius = std::sqrt(r2);
  }
}

std::size_t Octree::footprint_bytes() const {
  return nodes_.capacity() * sizeof(Node) +
         points_.capacity() * sizeof(geom::Vec3) +
         point_index_.capacity() * sizeof(std::uint32_t) +
         leaf_ids_.capacity() * sizeof(std::uint32_t);
}

bool Octree::validate() const {
  if (nodes_.empty()) return points_.empty();
  std::vector<bool> seen(points_.size(), false);
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.begin > n.end || n.end > points_.size()) return false;
    if (n.size() == 0) return false;
    if (n.is_leaf()) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        const std::uint32_t orig = point_index_[i];
        if (orig >= points_.size() || seen[orig]) return false;
        seen[orig] = true;
      }
    } else {
      // Children must tile the parent's range exactly, in order.
      if (n.first_child >= nodes_.size() || n.child_count == 0) return false;
      std::uint32_t cursor = n.begin;
      for (std::uint8_t c = 0; c < n.child_count; ++c) {
        const Node& ch = nodes_[n.first_child + c];
        if (ch.begin != cursor) return false;
        if (ch.depth != n.depth + 1) return false;
        cursor = ch.end;
      }
      if (cursor != n.end) return false;
    }
    // Radius must enclose all points under the node.
    for (std::uint32_t i = n.begin; i < n.end; ++i) {
      if (geom::dist(n.centroid, points_[i]) > n.radius + 1e-9) return false;
    }
  }
  for (bool s : seen)
    if (!s) return false;
  return true;
}

}  // namespace octgb::octree
