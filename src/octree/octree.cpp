#include "octgb/octree/octree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <thread>

#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"
#include "octgb/ws/scheduler.hpp"
#include "octgb/ws/sort.hpp"

namespace octgb::octree {

namespace {

// ---------------------------------------------------------------------------
// Shared geometry passes (build + refit + resort use these; deduplicated
// from the former copies in build and refit).

/// Exact centroid and exact enclosing radius of one node: a flat pass over
/// its own contiguous range. The result depends only on the node's range,
/// never on other nodes, so serial and parallel sweeps agree bitwise —
/// and so do the legacy and Morton builders when their partitions match.
/// (An earlier draft aggregated internal radii hierarchically from child
/// bounds in O(#nodes); the conservative enclosure shifted traversal
/// admissibility enough to push deep-tree energies out of their accuracy
/// budgets, so every node gets the exact pass.)
void node_geometry(Octree::Node& nd, std::span<const geom::Vec3> pts) {
  geom::Vec3 c;
  for (std::uint32_t i = nd.begin; i < nd.end; ++i) c += pts[i];
  nd.centroid = c / static_cast<double>(nd.size());
  double r2 = 0.0;
  for (std::uint32_t i = nd.begin; i < nd.end; ++i)
    r2 = std::max(r2, geom::dist2(nd.centroid, pts[i]));
  nd.radius = std::sqrt(r2);
}

/// Serial geometry sweep (legacy build + refit; deduplicated from the
/// former copies in build and refit). O(Σ node sizes) = O(N · depth).
void exact_geometry(std::span<Octree::Node> nodes,
                    std::span<const geom::Vec3> pts) {
  for (Octree::Node& nd : nodes) node_geometry(nd, pts);
}

/// Morton-build geometry: the same exact per-node pass, parallelized
/// across nodes (node ranges overlap ancestor ranges but each node only
/// writes itself, and reads of `pts` race with nothing).
void morton_geometry(std::span<Octree::Node> nodes,
                     std::span<const geom::Vec3> pts) {
  ws::Scheduler::parallel_for(
      0, static_cast<std::int64_t>(nodes.size()), 0,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t id = lo; id < hi; ++id)
          node_geometry(nodes[id], pts);
      });
}

// ---------------------------------------------------------------------------
// Legacy recursive partitioner (reference implementation).

struct BuildCell {
  geom::Vec3 center;
  double half;
};

int octant_of(const geom::Vec3& p, const geom::Vec3& c) {
  return (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0) | (p.z >= c.z ? 4 : 0);
}

// ---------------------------------------------------------------------------
// Morton pipeline pieces.

/// One (key, input-id) pair of the sort phase.
struct KeyId {
  std::uint64_t key;
  std::uint32_t id;
};

/// Strict total order (keys tie only for grid-coincident points; ids never
/// tie) — the sorted sequence is unique, so every sort path agrees.
bool key_id_less(const KeyId& a, const KeyId& b) {
  return a.key != b.key ? a.key < b.key : a.id < b.id;
}

/// Serial LSD radix sort over eight 8-bit digits. Stable, and the input
/// arrives in ascending-id order, so the result equals the (key, id)
/// lexicographic order the parallel comparison sort produces.
///
/// All eight histograms are gathered in a single read pass (8 × 256
/// counters = 8 KiB, L1-resident), then each digit either permutes or is
/// skipped when one bucket already holds the whole array (common for
/// clustered clouds, and always true for the top byte's unused bit).
/// 256 scatter targets keep the permute passes inside the cache/TLB,
/// which is what made this layout beat the earlier 16-bit-digit variant
/// with its 256 KiB counter clears. The pass count is a deterministic
/// function of the keys.
void radix_sort_pairs(std::vector<KeyId>& pairs,
                      perf::TreeBuildCounters& stats) {
  constexpr int kDigits = 8;
  constexpr int kBuckets = 256;
  const std::size_t n = pairs.size();
  std::vector<KeyId> scratch(n);
  std::array<std::array<std::uint32_t, kBuckets>, kDigits> count{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = pairs[i].key;
    for (int d = 0; d < kDigits; ++d) ++count[d][(k >> (8 * d)) & 0xff];
  }
  KeyId* src = pairs.data();
  KeyId* dst = scratch.data();
  for (int pass = 0; pass < kDigits; ++pass) {
    const int shift = 8 * pass;
    std::array<std::uint32_t, kBuckets>& c = count[pass];
    if (c[(src[0].key >> shift) & 0xff] == n) continue;
    std::uint32_t start = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const std::uint32_t cb = c[b];
      c[b] = start;
      start += cb;
    }
    for (std::size_t i = 0; i < n; ++i)
      dst[c[(src[i].key >> shift) & 0xff]++] = src[i];
    std::swap(src, dst);
    ++stats.sort_passes;
  }
  if (src != pairs.data())
    std::copy(src, src + n, pairs.data());
}

}  // namespace

/// Morton build/resort implementation over an Octree's private state.
struct MortonBuilder {
  /// Scatter sorted (key, id) pairs into the tree arrays: permuted points,
  /// permutation, sorted keys, and the SoA coordinate planes — one pass,
  /// parallel across disjoint subranges.
  static void scatter(Octree& t, std::span<const KeyId> pairs,
                      std::span<const geom::Vec3> input) {
    const std::size_t n = pairs.size();
    t.points_.resize(n);
    t.point_index_.resize(n);
    t.keys_.resize(n);
    t.soa_x_.resize(n);
    t.soa_y_.resize(n);
    t.soa_z_.resize(n);
    ws::Scheduler::parallel_for(
        0, static_cast<std::int64_t>(n), 0,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const KeyId kv = pairs[i];
            const geom::Vec3 p = input[kv.id];
            t.keys_[i] = kv.key;
            t.point_index_[i] = kv.id;
            t.points_[i] = p;
            t.soa_x_[i] = p.x;
            t.soa_y_[i] = p.y;
            t.soa_z_[i] = p.z;
          }
        });
  }

  /// Derive the node array from the sorted keys: at each node, the eight
  /// child runs are found by binary search on the key digit of the node's
  /// level (a longest-common-prefix split of the sorted sequence). Nodes
  /// are emitted in the exact order of the legacy builder — children
  /// allocated contiguously when their parent is processed, work stacked
  /// in ascending-digit order — so identical partitions yield identical
  /// node arrays. A range becomes a leaf when it is small enough, the
  /// depth cap is hit, or its keys are all equal (coincident cells cannot
  /// be split by any deeper digit; the legacy builder instead chains to
  /// its degenerate-cell guard — a documented divergence pinned by
  /// octree_equiv_test).
  static void derive_nodes(Octree& t, const BuildParams& params) {
    const std::span<const std::uint64_t> keys = t.keys_;
    const int bits = t.grid_.bits;
    std::vector<std::uint32_t> stack;

    Octree::Node rootn;
    rootn.begin = 0;
    rootn.end = static_cast<std::uint32_t>(keys.size());
    rootn.depth = 0;
    t.nodes_.push_back(rootn);
    stack.push_back(0);

    while (!stack.empty()) {
      const std::uint32_t id = stack.back();
      stack.pop_back();
      Octree::Node node = t.nodes_[id];  // copy; vector may grow below
      t.max_depth_ = std::max(t.max_depth_, static_cast<int>(node.depth));

      const int level = node.depth;
      const bool make_leaf = node.size() <= params.max_leaf_size ||
                             node.depth >= params.max_depth ||
                             level >= bits ||
                             keys[node.begin] == keys[node.end - 1];
      if (!make_leaf) {
        // Digit block of this level sits at bit offset `shift`; everything
        // above it is the prefix shared by the whole range.
        const int shift = 3 * (bits - 1 - level);
        const std::uint64_t prefix =
            keys[node.begin] & ~((std::uint64_t{1} << (shift + 3)) - 1);
        std::array<std::uint32_t, 9> bs;
        bs[0] = node.begin;
        bs[8] = node.end;
        for (std::uint64_t d = 1; d < 8; ++d) {
          const auto it = std::lower_bound(
              keys.begin() + node.begin, keys.begin() + node.end,
              prefix | (d << shift));
          bs[d] = static_cast<std::uint32_t>(it - keys.begin());
        }
        const auto first_child = static_cast<std::uint32_t>(t.nodes_.size());
        std::uint8_t created = 0;
        for (int d = 0; d < 8; ++d) {
          if (bs[d + 1] == bs[d]) continue;
          Octree::Node child;
          child.begin = bs[d];
          child.end = bs[d + 1];
          child.depth = static_cast<std::uint8_t>(node.depth + 1);
          t.nodes_.push_back(child);
          ++created;
        }
        node.first_child = first_child;
        node.child_count = created;
        for (std::uint32_t c = 0; c < created; ++c)
          stack.push_back(first_child + c);
      }
      t.nodes_[id] = node;
    }
  }

  /// The full pipeline body (runs inside a scheduler when one is active).
  static void pipeline(Octree& t, std::span<const geom::Vec3> input,
                       std::vector<KeyId>& pairs, const BuildParams& params,
                       bool comparison_sort) {
    const std::size_t n = input.size();
    {
      OCTGB_SPAN("tree.build.sort");
      pairs.resize(n);
      const MortonGrid grid = t.grid_;
      ws::Scheduler::parallel_for(
          0, static_cast<std::int64_t>(n), 0,
          [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
              pairs[i] = {grid.key(input[i]),
                          static_cast<std::uint32_t>(i)};
          });
      if (comparison_sort)
        ws::parallel_sort(std::span<KeyId>(pairs), key_id_less);
      else
        radix_sort_pairs(pairs, t.stats_);
    }
    scatter(t, pairs, input);
    {
      OCTGB_SPAN("tree.build.derive");
      derive_nodes(t, params);
    }
    {
      OCTGB_SPAN("tree.build.geometry");
      morton_geometry(t.nodes_, t.points_);
    }
  }

  static Octree build(std::span<const geom::Vec3> input,
                      const MortonGrid& grid, const BuildParams& params) {
    Octree t;
    if (input.empty()) return t;
    t.grid_ = grid;
    ++t.stats_.morton_builds;
    t.stats_.points_sorted += input.size();

    std::vector<KeyId> pairs;
    ws::Scheduler* ambient = ws::Scheduler::current();
    const unsigned hw = std::thread::hardware_concurrency();
    const bool parallel =
        params.parallel &&
        (ambient ? ambient->num_workers() > 1
                 : (hw > 1 && input.size() >= 8192));
    if (parallel && !ambient) {
      // No scheduler on this thread: spin one up for the whole pipeline
      // (sort + scatter + leaf geometry all parallelize).
      ws::Scheduler sched(static_cast<int>(hw));
      sched.run([&] { pipeline(t, input, pairs, params, true); });
    } else {
      pipeline(t, input, pairs, params, parallel);
    }

    t.finish_derived();
    t.stats_.nodes_emitted += t.nodes_.size();
    t.stats_.leaves_emitted += t.leaf_ids_.size();
    return t;
  }
};

Octree Octree::build(std::span<const geom::Vec3> input,
                     const BuildParams& params) {
  if (params.strategy == BuildStrategy::Legacy)
    return build_legacy(input, params);
  OCTGB_SPAN("tree.build.morton");
  const int bits =
      std::clamp<int>(params.grid_bits, 1, kMortonMaxBits);
  return MortonBuilder::build(input, MortonGrid::of(input, bits), params);
}

Octree Octree::build_with_grid(std::span<const geom::Vec3> input,
                               const MortonGrid& grid,
                               const BuildParams& params) {
  OCTGB_SPAN("tree.build.morton");
  return MortonBuilder::build(input, grid, params);
}

Octree Octree::build_legacy(std::span<const geom::Vec3> input,
                            const BuildParams& params) {
  OCTGB_SPAN("tree.build.legacy");
  Octree t;
  if (input.empty()) return t;
  ++t.stats_.legacy_builds;

  t.points_.assign(input.begin(), input.end());
  t.point_index_.resize(input.size());
  for (std::uint32_t i = 0; i < input.size(); ++i) t.point_index_[i] = i;

  const geom::Aabb box = geom::Aabb::of(input).cubified();
  const BuildCell root_cell{box.center(),
                            std::max(box.max_extent() * 0.5, 1e-9)};

  // Work item: node id already allocated; subdivide or finalize as a leaf.
  struct WorkItem {
    std::uint32_t node_id;
    BuildCell cell;
  };
  std::vector<WorkItem> stack;

  t.nodes_.push_back(Node{});
  t.nodes_[0].begin = 0;
  t.nodes_[0].end = static_cast<std::uint32_t>(input.size());
  t.nodes_[0].depth = 0;
  stack.push_back({0, root_cell});

  std::array<std::uint32_t, 9> bucket_start;
  while (!stack.empty()) {
    const WorkItem item = stack.back();
    stack.pop_back();
    Node node = t.nodes_[item.node_id];  // copy; vector may reallocate below
    const std::uint32_t n = node.size();
    t.max_depth_ = std::max(t.max_depth_, static_cast<int>(node.depth));

    const bool make_leaf =
        n <= params.max_leaf_size || node.depth >= params.max_depth;
    if (!make_leaf) {
      // Count points per octant, then partition the range stably into
      // contiguous buckets (counting sort over 8 keys).
      std::array<std::uint32_t, 8> count{};
      for (std::uint32_t i = node.begin; i < node.end; ++i)
        ++count[octant_of(t.points_[i], item.cell.center)];

      bucket_start[0] = node.begin;
      for (int o = 0; o < 8; ++o)
        bucket_start[o + 1] = bucket_start[o] + count[o];

      // Permute points (and the index map) into octant order.
      {
        std::vector<geom::Vec3> tmp_pts(n);
        std::vector<std::uint32_t> tmp_idx(n);
        std::array<std::uint32_t, 8> cursor{};
        for (int o = 0; o < 8; ++o) cursor[o] = bucket_start[o] - node.begin;
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
          const int o = octant_of(t.points_[i], item.cell.center);
          tmp_pts[cursor[o]] = t.points_[i];
          tmp_idx[cursor[o]] = t.point_index_[i];
          ++cursor[o];
        }
        std::copy(tmp_pts.begin(), tmp_pts.end(),
                  t.points_.begin() + node.begin);
        std::copy(tmp_idx.begin(), tmp_idx.end(),
                  t.point_index_.begin() + node.begin);
      }

      // Allocate the non-empty children contiguously.
      const auto first_child = static_cast<std::uint32_t>(t.nodes_.size());
      std::uint8_t created = 0;
      for (int o = 0; o < 8; ++o) {
        if (count[o] == 0) continue;
        Node child;
        child.begin = bucket_start[o];
        child.end = bucket_start[o] + count[o];
        child.depth = static_cast<std::uint8_t>(node.depth + 1);
        t.nodes_.push_back(child);
        ++created;
      }
      // Degenerate split (all coincident points land in one octant at the
      // same positions): fall back to a leaf to guarantee progress when
      // the cell can no longer separate them.
      if (created == 1 && t.nodes_.back().size() == n &&
          item.cell.half < 1e-7) {
        t.nodes_.pop_back();
        node.first_child = kNoChild;
        node.child_count = 0;
      } else {
        node.first_child = first_child;
        node.child_count = created;
        // Push children with their sub-cells.
        std::uint32_t cid = first_child;
        for (int o = 0; o < 8; ++o) {
          if (count[o] == 0) continue;
          BuildCell cc;
          cc.half = item.cell.half * 0.5;
          cc.center = item.cell.center +
                      geom::Vec3{(o & 1) ? cc.half : -cc.half,
                                 (o & 2) ? cc.half : -cc.half,
                                 (o & 4) ? cc.half : -cc.half};
          stack.push_back({cid, cc});
          ++cid;
        }
      }
    }
    t.nodes_[item.node_id] = node;
  }

  exact_geometry(t.nodes_, t.points_);
  t.rebuild_soa_planes();
  t.finish_derived();
  t.stats_.nodes_emitted += t.nodes_.size();
  t.stats_.leaves_emitted += t.leaf_ids_.size();
  return t;
}

bool Octree::resort(std::span<const geom::Vec3> positions,
                    const BuildParams& params) {
  OCTGB_CHECK_MSG(positions.size() == points_.size(),
                  "resort needs the original point count");
  OCTGB_CHECK_MSG(has_morton(),
                  "resort needs a Morton-built tree (has_morton())");
  OCTGB_SPAN("tree.resort");
  const std::size_t n = positions.size();
  // A point outside the build grid's cube would silently clamp to a
  // boundary cell; signal the caller to rebuild on a fresh grid instead.
  for (const geom::Vec3& p : positions)
    if (!grid_.contains(p)) return false;

  // Split the tree-order pairs into the stayed subsequence (new key equals
  // the stored build-time key — already (key, id)-sorted) and the moved
  // set, which is sorted on its own and merged back. The merge of two
  // sorted sequences under the strict total order is the full sorted
  // order, so the result is bit-identical to build_with_grid().
  std::vector<KeyId> stayed, moved;
  stayed.reserve(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::uint32_t id = point_index_[pos];
    const std::uint64_t nk = grid_.key(positions[id]);
    if (nk == keys_[pos])
      stayed.push_back({nk, id});
    else
      moved.push_back({nk, id});
  }
  ++stats_.resorts;
  stats_.resort_moved += moved.size();
  stats_.points_sorted += moved.size();
  std::sort(moved.begin(), moved.end(), key_id_less);
  std::vector<KeyId> pairs(n);
  std::merge(stayed.begin(), stayed.end(), moved.begin(), moved.end(),
             pairs.begin(), key_id_less);

  nodes_.clear();
  leaf_ids_.clear();
  max_depth_ = 0;
  MortonBuilder::scatter(*this, pairs, positions);
  MortonBuilder::derive_nodes(*this, params);
  morton_geometry(nodes_, points_);
  finish_derived();
  stats_.nodes_emitted += nodes_.size();
  stats_.leaves_emitted += leaf_ids_.size();
  return true;
}

Octree Octree::from_parts(std::vector<Node> nodes,
                          std::vector<geom::Vec3> points,
                          std::vector<std::uint32_t> point_index) {
  return from_parts(std::move(nodes), std::move(points),
                    std::move(point_index), {}, MortonGrid{});
}

Octree Octree::from_parts(std::vector<Node> nodes,
                          std::vector<geom::Vec3> points,
                          std::vector<std::uint32_t> point_index,
                          std::vector<std::uint64_t> keys,
                          const MortonGrid& grid) {
  Octree t;
  t.nodes_ = std::move(nodes);
  t.points_ = std::move(points);
  t.point_index_ = std::move(point_index);
  t.keys_ = std::move(keys);
  t.grid_ = grid;
  t.rebuild_soa_planes();
  t.finish_derived();
  return t;
}

void Octree::refit(std::span<const geom::Vec3> positions) {
  OCTGB_CHECK_MSG(positions.size() == points_.size(),
                  "refit needs the original point count");
  for (std::size_t pos = 0; pos < point_index_.size(); ++pos) {
    const geom::Vec3 p = positions[point_index_[pos]];
    points_[pos] = p;
    soa_x_[pos] = p.x;
    soa_y_[pos] = p.y;
    soa_z_[pos] = p.z;
  }
  // keys_ intentionally stays at its build-time state: resort() uses it to
  // detect which points have drifted out of their cells since the build.
  //
  // Both builders store the exact per-node geometry, so this sweep is a
  // bitwise no-op on unchanged positions — an identity refit never
  // perturbs traversal partitions or captured plans.
  exact_geometry(nodes_, points_);
}

void Octree::rebuild_soa_planes() {
  const std::size_t n = points_.size();
  soa_x_.resize(n);
  soa_y_.resize(n);
  soa_z_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    soa_x_[i] = points_[i].x;
    soa_y_[i] = points_[i].y;
    soa_z_[i] = points_[i].z;
  }
}

void Octree::finish_derived() {
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    max_depth_ = std::max(max_depth_, static_cast<int>(nodes_[id].depth));
    if (nodes_[id].is_leaf()) leaf_ids_.push_back(id);
  }
  // Left-to-right (point-range) order: leaf segments used for work
  // division are then spatially coherent, like the paper's.
  std::sort(leaf_ids_.begin(), leaf_ids_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return nodes_[a].begin < nodes_[b].begin;
            });
}

std::size_t Octree::footprint_bytes() const {
  return nodes_.capacity() * sizeof(Node) +
         points_.capacity() * sizeof(geom::Vec3) +
         point_index_.capacity() * sizeof(std::uint32_t) +
         leaf_ids_.capacity() * sizeof(std::uint32_t) +
         (soa_x_.capacity() + soa_y_.capacity() + soa_z_.capacity()) *
             sizeof(double) +
         keys_.capacity() * sizeof(std::uint64_t);
}

bool Octree::validate() const {
  if (nodes_.empty()) return points_.empty();
  if (soa_x_.size() != points_.size() || soa_y_.size() != points_.size() ||
      soa_z_.size() != points_.size())
    return false;
  if (has_morton()) {
    // The sorted-key array must mirror the point order exactly.
    if (keys_.size() != points_.size()) return false;
    if (!std::is_sorted(keys_.begin(), keys_.end())) return false;
  } else if (!keys_.empty()) {
    return false;  // keys without a grid cannot be interpreted
  }
  std::vector<bool> seen(points_.size(), false);
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.begin > n.end || n.end > points_.size()) return false;
    if (n.size() == 0) return false;
    if (n.is_leaf()) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        const std::uint32_t orig = point_index_[i];
        if (orig >= points_.size() || seen[orig]) return false;
        seen[orig] = true;
      }
    } else {
      // Children must tile the parent's range exactly, in order.
      if (n.first_child >= nodes_.size() || n.child_count == 0) return false;
      std::uint32_t cursor = n.begin;
      for (std::uint8_t c = 0; c < n.child_count; ++c) {
        const Node& ch = nodes_[n.first_child + c];
        if (ch.begin != cursor) return false;
        if (ch.depth != n.depth + 1) return false;
        cursor = ch.end;
      }
      if (cursor != n.end) return false;
    }
    // Radius must enclose all points under the node.
    for (std::uint32_t i = n.begin; i < n.end; ++i) {
      if (geom::dist(n.centroid, points_[i]) > n.radius + 1e-9) return false;
    }
    // The SoA planes must mirror the permuted points.
    for (std::uint32_t i = n.begin; i < n.end; ++i) {
      if (soa_x_[i] != points_[i].x || soa_y_[i] != points_[i].y ||
          soa_z_[i] != points_[i].z)
        return false;
    }
  }
  for (bool s : seen)
    if (!s) return false;
  return true;
}

}  // namespace octgb::octree
