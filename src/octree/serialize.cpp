#include "octgb/octree/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "octgb/util/check.hpp"
#include "octgb/util/io.hpp"

namespace octgb::octree {

namespace {

constexpr std::uint64_t kMagic = 0x6f637467622d6f74ULL;  // "octgb-ot"
// v1: header + nodes + points + permutation.
// v2: v1 body followed by the "mkey" (sorted Morton keys, u64) and "mgrd"
//     (quantization grid, 5 doubles) tagged sections — count 0 when the
//     tree has no Morton state. Readers accept both; writers emit v2.
constexpr std::uint32_t kVersion = 2;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t reserved = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_points = 0;
};

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <class T>
void read_pod(std::istream& in, T& v) {
  OCTGB_CHECK_MSG(util::io::read_exact(in, &v, sizeof(T)),
                  "truncated octree stream");
}

template <class T>
void read_vec(std::istream& in, std::vector<T>& v, std::size_t n) {
  // util::io::read_vector grows chunk by chunk, so a corrupt header
  // claiming up to 2^32 elements cannot force a huge allocation before
  // the stream runs dry (the shared hardening contract of util/io.hpp).
  OCTGB_CHECK_MSG(util::io::read_vector(in, v, n),
                  "truncated octree stream: wanted " << n * sizeof(T)
                      << " bytes");
}

}  // namespace

void write_octree(const Octree& tree, std::ostream& out) {
  Header h;
  h.num_nodes = tree.nodes().size();
  h.num_points = tree.num_points();
  write_pod(out, h);
  out.write(reinterpret_cast<const char*>(tree.nodes().data()),
            static_cast<std::streamsize>(tree.nodes().size() *
                                         sizeof(Octree::Node)));
  out.write(reinterpret_cast<const char*>(tree.points().data()),
            static_cast<std::streamsize>(tree.points().size() *
                                         sizeof(geom::Vec3)));
  out.write(reinterpret_cast<const char*>(tree.point_index().data()),
            static_cast<std::streamsize>(tree.point_index().size() *
                                         sizeof(std::uint32_t)));
  // v2 Morton state. The keys go out as a raw span (memcpy-grade); the
  // grid goes out as explicit doubles rather than a struct dump so no
  // padding bytes ever reach the stream (round-trips stay bit-exact).
  write_u64_section(out, "mkey", tree.keys());
  if (tree.has_morton()) {
    const MortonGrid& g = tree.grid();
    const double gv[5] = {g.origin.x, g.origin.y, g.origin.z, g.cell,
                          static_cast<double>(g.bits)};
    write_f64_section(out, "mgrd", gv);
  } else {
    write_f64_section(out, "mgrd", {});
  }
  OCTGB_CHECK_MSG(static_cast<bool>(out), "octree write failed");
}

Octree read_octree(std::istream& in) {
  Header h;
  read_pod(in, h);
  OCTGB_CHECK_MSG(h.magic == kMagic, "not an octgb octree stream");
  OCTGB_CHECK_MSG(h.version == 1 || h.version == kVersion,
                  "unsupported octree version " << h.version);
  OCTGB_CHECK_MSG(h.num_nodes <= (std::uint64_t{1} << 32) &&
                      h.num_points <= (std::uint64_t{1} << 32),
                  "implausible octree shape");
  std::vector<Octree::Node> nodes;
  std::vector<geom::Vec3> points;
  std::vector<std::uint32_t> index;
  read_vec(in, nodes, h.num_nodes);
  read_vec(in, points, h.num_points);
  read_vec(in, index, h.num_points);
  std::vector<std::uint64_t> keys;
  MortonGrid grid;
  if (h.version >= 2) {
    keys = read_u64_section(in, "mkey");
    const std::vector<double> gv = read_f64_section(in, "mgrd");
    OCTGB_CHECK_MSG(gv.size() == 5 || gv.empty(),
                    "octree grid section has " << gv.size()
                                               << " values, expected 5");
    OCTGB_CHECK_MSG(keys.empty() == gv.empty(),
                    "octree stream pairs keys and grid inconsistently");
    if (!gv.empty()) {
      grid.origin = {gv[0], gv[1], gv[2]};
      grid.cell = gv[3];
      grid.bits = static_cast<std::uint8_t>(gv[4]);
      OCTGB_CHECK_MSG(grid.bits >= 1 && grid.bits <= kMortonMaxBits &&
                          grid.cell > 0.0 &&
                          gv[4] == static_cast<double>(grid.bits),
                      "octree stream has a malformed Morton grid");
      OCTGB_CHECK_MSG(keys.size() == h.num_points,
                      "octree key section disagrees with the point count");
    }
  }
  Octree t = Octree::from_parts(std::move(nodes), std::move(points),
                                std::move(index), std::move(keys), grid);
  OCTGB_CHECK_MSG(t.validate(), "corrupt octree stream");
  return t;
}

namespace {

struct SectionHeader {
  char tag[8] = {};
  std::uint32_t elem_size = 0;
  std::uint32_t reserved = 0;
  std::uint64_t count = 0;
};

void fill_tag(SectionHeader& h, std::string_view tag) {
  OCTGB_CHECK_MSG(!tag.empty() && tag.size() <= sizeof(h.tag),
                  "section tag must be 1..8 bytes");
  std::memcpy(h.tag, tag.data(), tag.size());
}

template <class T>
void write_section(std::ostream& out, std::string_view tag,
                   std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  SectionHeader h;
  fill_tag(h, tag);
  h.elem_size = sizeof(T);
  h.count = data.size();
  write_pod(out, h);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
  OCTGB_CHECK_MSG(static_cast<bool>(out), "section write failed");
}

template <class T>
std::vector<T> read_section(std::istream& in, std::string_view tag) {
  SectionHeader h, want;
  fill_tag(want, tag);
  read_pod(in, h);
  OCTGB_CHECK_MSG(std::memcmp(h.tag, want.tag, sizeof(h.tag)) == 0,
                  "expected section '" << tag << "'");
  OCTGB_CHECK_MSG(h.elem_size == sizeof(T),
                  "section '" << tag << "' has element size " << h.elem_size
                              << ", expected " << sizeof(T));
  // Guard the byte-size computation: count must stay well below the point
  // where count * elem_size overflows the std::streamsize arithmetic the
  // reader does (a crafted count of ~2^61 would otherwise wrap).
  OCTGB_CHECK_MSG(h.count <= (std::uint64_t{1} << 32),
                  "section '" << tag << "' has implausible count "
                              << h.count);
  std::vector<T> v;
  read_vec(in, v, h.count);
  return v;
}

}  // namespace

void write_f64_section(std::ostream& out, std::string_view tag,
                       std::span<const double> data) {
  write_section(out, tag, data);
}

std::vector<double> read_f64_section(std::istream& in, std::string_view tag) {
  return read_section<double>(in, tag);
}

void write_vec3_section(std::ostream& out, std::string_view tag,
                        std::span<const geom::Vec3> data) {
  write_section(out, tag, data);
}

void write_u64_section(std::ostream& out, std::string_view tag,
                       std::span<const std::uint64_t> data) {
  write_section(out, tag, data);
}

std::vector<std::uint64_t> read_u64_section(std::istream& in,
                                            std::string_view tag) {
  return read_section<std::uint64_t>(in, tag);
}

std::vector<geom::Vec3> read_vec3_section(std::istream& in,
                                          std::string_view tag) {
  return read_section<geom::Vec3>(in, tag);
}

void write_octree_file(const Octree& tree, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  OCTGB_CHECK_MSG(static_cast<bool>(f), "cannot open " << path);
  write_octree(tree, f);
}

Octree read_octree_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  OCTGB_CHECK_MSG(static_cast<bool>(f), "cannot open " << path);
  return read_octree(f);
}

}  // namespace octgb::octree
