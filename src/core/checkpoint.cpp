#include "octgb/core/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "octgb/util/check.hpp"
#include "octgb/util/io.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::core {

namespace {

// "octgbsck" — distinct from the octree stream magic so a checkpoint can
// never be mistaken for a preprocessed-artifact file.
constexpr char kMagic[8] = {'o', 'c', 't', 'g', 'b', 's', 'c', 'k'};
constexpr std::uint32_t kVersion = 1;
// A phase name or payload longer than this means a corrupt length field,
// not a real checkpoint.
constexpr std::uint64_t kMaxPhaseBytes = 1u << 10;
constexpr std::uint64_t kMaxDataCount = std::uint64_t{1} << 32;

void append_pod(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

/// Bounds-checked cursor over the encoded bytes; every read either
/// succeeds completely or reports which field was truncated.
struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;
  std::string error;

  bool take(void* dst, std::size_t n, const char* field) {
    if (!error.empty()) return false;
    if (bytes.size() - pos < n) {
      error = util::format(
          "truncated checkpoint: %s needs %zu bytes at offset %zu, only "
          "%zu remain",
          field, n, pos, bytes.size() - pos);
      return false;
    }
    std::memcpy(dst, bytes.data() + pos, n);
    pos += n;
    return true;
  }
};

}  // namespace

std::string encode_checkpoint(const SuperstepCheckpoint& c) {
  std::string out;
  out.reserve(sizeof(kMagic) + sizeof(kVersion) + 2 * sizeof(std::uint64_t) +
              c.phase.size() + sizeof(std::uint64_t) +
              c.data.size() * sizeof(double));
  append_pod(out, kMagic, sizeof(kMagic));
  append_pod(out, &kVersion, sizeof(kVersion));
  const std::uint64_t phase_len = c.phase.size();
  append_pod(out, &phase_len, sizeof(phase_len));
  out.append(c.phase);
  append_pod(out, &c.task, sizeof(c.task));
  const std::uint64_t count = c.data.size();
  append_pod(out, &count, sizeof(count));
  append_pod(out, c.data.data(), c.data.size() * sizeof(double));
  return out;
}

util::Expected<SuperstepCheckpoint, std::string> decode_checkpoint(
    std::string_view bytes) {
  using Result = util::Expected<SuperstepCheckpoint, std::string>;
  Cursor cur;
  cur.bytes = bytes;
  char magic[8];
  if (!cur.take(magic, sizeof(magic), "magic"))
    return Result::failure(std::move(cur.error));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return Result::failure("not an octgb checkpoint (bad magic)");
  std::uint32_t version = 0;
  if (!cur.take(&version, sizeof(version), "version"))
    return Result::failure(std::move(cur.error));
  if (version != kVersion)
    return Result::failure(
        util::format("unsupported checkpoint version %u", version));
  std::uint64_t phase_len = 0;
  if (!cur.take(&phase_len, sizeof(phase_len), "phase length"))
    return Result::failure(std::move(cur.error));
  if (phase_len > kMaxPhaseBytes)
    return Result::failure(util::format(
        "implausible checkpoint phase length %llu",
        static_cast<unsigned long long>(phase_len)));
  SuperstepCheckpoint c;
  c.phase.resize(phase_len);
  if (phase_len != 0 &&
      !cur.take(c.phase.data(), phase_len, "phase name"))
    return Result::failure(std::move(cur.error));
  if (!cur.take(&c.task, sizeof(c.task), "task index"))
    return Result::failure(std::move(cur.error));
  std::uint64_t count = 0;
  if (!cur.take(&count, sizeof(count), "payload count"))
    return Result::failure(std::move(cur.error));
  if (count > kMaxDataCount)
    return Result::failure(util::format(
        "implausible checkpoint payload count %llu",
        static_cast<unsigned long long>(count)));
  // The payload length is validated against the actual remaining bytes
  // before any allocation — a lying count cannot trigger a huge resize.
  const std::uint64_t need = count * sizeof(double);
  if (cur.bytes.size() - cur.pos < need)
    return Result::failure(util::format(
        "truncated checkpoint: payload needs %llu bytes, only %zu remain",
        static_cast<unsigned long long>(need), cur.bytes.size() - cur.pos));
  c.data.resize(count);
  if (count != 0 && !cur.take(c.data.data(), need, "payload"))
    return Result::failure(std::move(cur.error));
  if (cur.pos != cur.bytes.size())
    return Result::failure(util::format(
        "checkpoint has %zu trailing bytes", cur.bytes.size() - cur.pos));
  return Result::success(std::move(c));
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  OCTGB_CHECK_MSG(!dir_.empty(), "file-backed store needs a directory");
  if (::mkdir(dir_.c_str(), 0755) != 0)
    OCTGB_CHECK_MSG(errno == EEXIST,
                    "cannot create checkpoint directory " << dir_);
}

std::string CheckpointStore::file_of(const std::string& key) const {
  // Keys are "phase/task"; flatten the separator so each key is one file.
  std::string name = key;
  for (char& c : name)
    if (c == '/') c = '_';
  return dir_ + "/" + name + ".ck";
}

void CheckpointStore::put(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    map_[key] = std::move(value);
  } else {
    OCTGB_CHECK_MSG(util::io::write_file_atomic(file_of(key), value),
                    "checkpoint write failed for " << key);
  }
  ++puts_;
}

std::optional<std::string> CheckpointStore::get(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }
  std::string bytes;
  if (!util::io::read_file(file_of(key), bytes)) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return bytes;
}

bool CheckpointStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) return map_.find(key) != map_.end();
  return ::access(file_of(key).c_str(), F_OK) == 0;
}

void CheckpointStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    map_.clear();
    return;
  }
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ck") == 0)
      std::remove((dir_ + "/" + name).c_str());
  }
  ::closedir(d);
}

std::size_t CheckpointStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) return map_.size();
  std::size_t n = 0;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return 0;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ck") == 0)
      ++n;
  }
  ::closedir(d);
  return n;
}

std::string CheckpointStore::key_of(std::string_view phase,
                                    std::uint64_t task) {
  std::string key(phase);
  key += '/';
  key += std::to_string(task);
  return key;
}

void CheckpointStore::put_checkpoint(const SuperstepCheckpoint& c) {
  put(key_of(c.phase, c.task), encode_checkpoint(c));
}

std::optional<SuperstepCheckpoint> CheckpointStore::get_checkpoint(
    std::string_view phase, std::uint64_t task) const {
  auto raw = get(key_of(phase, task));
  if (!raw) return std::nullopt;
  auto decoded = decode_checkpoint(*raw);
  if (!decoded) return std::nullopt;
  return std::move(decoded.value());
}

std::uint64_t CheckpointStore::puts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return puts_;
}

std::uint64_t CheckpointStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t CheckpointStore::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace octgb::core

