#include "octgb/core/batch_kernels.hpp"

#include <cmath>

#include "octgb/core/fastmath.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

void split_soa(std::span<const geom::Vec3> pts, std::span<double> x,
               std::span<double> y, std::span<double> z) {
  OCTGB_CHECK(x.size() == pts.size() && y.size() == pts.size() &&
              z.size() == pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    x[i] = pts[i].x;
    y[i] = pts[i].y;
    z[i] = pts[i].z;
  }
}

double batch_born_integral(double ax, double ay, double az,
                           const QPointBatch& q) {
  const std::size_t n = q.size();
  const double* __restrict qx = q.x.data();
  const double* __restrict qy = q.y.data();
  const double* __restrict qz = q.z.data();
  const double* __restrict wnx = q.wnx.data();
  const double* __restrict wny = q.wny.data();
  const double* __restrict wnz = q.wnz.data();
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double dx = qx[k] - ax;
    const double dy = qy[k] - ay;
    const double dz = qz[k] - az;
    const double r2 = dx * dx + dy * dy + dz * dz;
    // Branchless guard: coincident points contribute 0.
    const double mask = r2 > 1e-12 ? 1.0 : 0.0;
    const double safe_r2 = r2 + (1.0 - mask);  // avoid 0 division
    const double inv_r6 = 1.0 / (safe_r2 * safe_r2 * safe_r2);
    sum += mask * (wnx[k] * dx + wny[k] * dy + wnz[k] * dz) * inv_r6;
  }
  return sum;
}

double batch_epol_sum(double vx, double vy, double vz, double qv, double rv,
                      const AtomBatch& atoms) {
  const std::size_t n = atoms.size();
  const double* __restrict ux = atoms.x.data();
  const double* __restrict uy = atoms.y.data();
  const double* __restrict uz = atoms.z.data();
  const double* __restrict qu = atoms.charge.data();
  const double* __restrict ru = atoms.born.data();
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double dx = ux[k] - vx;
    const double dy = uy[k] - vy;
    const double dz = uz[k] - vz;
    const double r2 = dx * dx + dy * dy + dz * dz;
    const double d = ru[k] * rv;
    const double f2 = r2 + d * std::exp(-r2 / (4.0 * d));
    sum += qu[k] / std::sqrt(f2);
  }
  return qv * sum;
}

double batch_born_integral_fast(double ax, double ay, double az,
                                const QPointBatch& q) {
  const std::size_t n = q.size();
  const double* __restrict qx = q.x.data();
  const double* __restrict qy = q.y.data();
  const double* __restrict qz = q.z.data();
  const double* __restrict wnx = q.wnx.data();
  const double* __restrict wny = q.wny.data();
  const double* __restrict wnz = q.wnz.data();
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double dx = qx[k] - ax;
    const double dy = qy[k] - ay;
    const double dz = qz[k] - az;
    const double r2 = dx * dx + dy * dy + dz * dz;
    const double mask = r2 > 1e-12 ? 1.0 : 0.0;
    const double safe_r2 = r2 + (1.0 - mask);
    const double t = fast_rsqrt(safe_r2);
    const double t2 = t * t;
    const double inv_r6 = t2 * t2 * t2;
    sum += mask * (wnx[k] * dx + wny[k] * dy + wnz[k] * dz) * inv_r6;
  }
  return sum;
}

double batch_epol_sum_fast(double vx, double vy, double vz, double qv,
                           double rv, const AtomBatch& atoms) {
  const std::size_t n = atoms.size();
  const double* __restrict ux = atoms.x.data();
  const double* __restrict uy = atoms.y.data();
  const double* __restrict uz = atoms.z.data();
  const double* __restrict qu = atoms.charge.data();
  const double* __restrict ru = atoms.born.data();
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double dx = ux[k] - vx;
    const double dy = uy[k] - vy;
    const double dz = uz[k] - vz;
    const double r2 = dx * dx + dy * dy + dz * dz;
    const double d = ru[k] * rv;
    const double f2 = r2 + d * fast_exp(-r2 / (4.0 * d));
    sum += qu[k] * fast_rsqrt(f2);
  }
  return qv * sum;
}

}  // namespace octgb::core
