#include "octgb/core/forces.hpp"

#include <atomic>
#include <cmath>

#include "octgb/core/epol.hpp"
#include "octgb/util/check.hpp"
#include "octgb/ws/scheduler.hpp"

namespace octgb::core {

namespace {

using geom::Vec3;
using octree::Octree;

void atomic_add(std::uint64_t& slot, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(slot).fetch_add(v,
                                                 std::memory_order_relaxed);
}

}  // namespace

double epol_force_kernel(double r2, double ri_rj) {
  const double e = std::exp(-r2 / (4.0 * ri_rj));
  const double f2 = r2 + ri_rj * e;
  const double f = std::sqrt(f2);
  return (1.0 - 0.25 * e) / (f2 * f);
}

std::vector<geom::Vec3> naive_epol_forces(const mol::Molecule& mol,
                                          std::span<const double> born,
                                          const GBParams& gb,
                                          perf::WorkCounters* counters) {
  const auto atoms = mol.atoms();
  OCTGB_CHECK(born.size() == atoms.size());
  std::vector<Vec3> forces(atoms.size());
  const double tau = gb.tau();
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      const Vec3 delta = atoms[i].pos - atoms[j].pos;
      const double g =
          epol_force_kernel(delta.norm2(), born[i] * born[j]);
      // ∇_i E = +τ q_i q_j g (x_i − x_j); the force is −∇E. The pair
      // contributes equal-and-opposite forces (Newton's third law).
      const Vec3 fij =
          delta * (-tau * atoms[i].charge * atoms[j].charge * g);
      forces[i] += fij;
      forces[j] -= fij;
    }
  }
  if (counters)
    counters->epol_exact +=
        static_cast<std::uint64_t>(atoms.size()) * atoms.size();
  return forces;
}

namespace {

/// Leaf-versus-tree force pass: accumulates the force on every atom of a
/// V leaf from the whole tree, reusing the Epol admissibility and bins.
struct ForcePass {
  const AtomsTree& ta;
  const EpolContext& ctx;
  std::span<const double> born_tree;
  double eps;
  double tau;
  const Octree::Node* v;  ///< the V leaf

  // Accumulators for the V leaf's atoms (tree order, offset by v->begin).
  std::vector<Vec3>* v_forces;

  std::uint64_t exact = 0, bins = 0, visits = 0;

  void descend(std::uint32_t u_id) {
    ++visits;
    const Octree::Node& u = ta.tree.node(u_id);
    const double d = geom::dist(u.centroid, v->centroid);
    if (u.is_leaf()) {
      exact_leaf(u);
      return;
    }
    if (epol_far_enough(d, u.radius, v->radius, eps)) {
      far_field(u_id);
      return;
    }
    for (std::uint8_t c = 0; c < u.child_count; ++c)
      descend(u.first_child + c);
  }

  void exact_leaf(const Octree::Node& u) {
    const auto pts = ta.tree.points();
    for (std::uint32_t vi = v->begin; vi < v->end; ++vi) {
      const Vec3 pv = pts[vi];
      const double qv = ta.charge[vi];
      const double rv = born_tree[vi];
      Vec3 f;
      for (std::uint32_t ui = u.begin; ui < u.end; ++ui) {
        if (ui == vi) continue;  // self term has zero gradient
        const Vec3 delta = pv - pts[ui];
        const double g =
            epol_force_kernel(delta.norm2(), born_tree[ui] * rv);
        f += delta * (ta.charge[ui] * g);
      }
      (*v_forces)[vi - v->begin] += f * (-tau * qv);
    }
    exact += static_cast<std::uint64_t>(u.size()) * v->size();
  }

  void far_field(std::uint32_t u_id) {
    // Far node U acts on each atom of V as charge-per-bin point masses at
    // U's centroid — the force analogue of the binned f_GB sum.
    const int nb = ctx.nbins;
    const double* ub = ctx.bins.data() + static_cast<std::size_t>(u_id) * nb;
    const Octree::Node& u = ta.tree.node(u_id);
    const auto pts = ta.tree.points();
    for (std::uint32_t vi = v->begin; vi < v->end; ++vi) {
      const Vec3 pv = pts[vi];
      const double qv = ta.charge[vi];
      const double rv = born_tree[vi];
      const Vec3 delta = pv - u.centroid;
      const double r2 = delta.norm2();
      double gsum = 0.0;
      for (int i = ctx.bin_lo[u_id]; i <= ctx.bin_hi[u_id]; ++i) {
        if (ub[i] == 0.0) continue;
        gsum += ub[i] * epol_force_kernel(r2, ctx.rep[i] * rv);
        ++bins;
      }
      (*v_forces)[vi - v->begin] += delta * (-tau * qv * gsum);
    }
  }
};

}  // namespace

std::vector<geom::Vec3> approx_epol_forces(
    const GBEngine& engine, std::span<const double> born_input_order,
    perf::WorkCounters& counters) {
  const auto& ta = engine.atoms_tree();
  OCTGB_CHECK(born_input_order.size() == engine.num_atoms());
  const auto idx = ta.tree.point_index();
  std::vector<double> born_tree(born_input_order.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = born_input_order[idx[pos]];
  const EpolContext ctx = engine.build_epol_context(born_tree);
  const double eps = engine.config().approx.eps_epol;
  const double tau = engine.config().gb.tau();

  std::vector<Vec3> forces_tree(engine.num_atoms());
  const auto& leaves = ta.tree.leaf_ids();
  ws::Scheduler::parallel_for(
      0, static_cast<std::int64_t>(leaves.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t li = lo; li < hi; ++li) {
          const Octree::Node& v = ta.tree.node(leaves[li]);
          std::vector<Vec3> local(v.size());
          ForcePass pass{ta,  ctx, born_tree, eps, tau, &v, &local, 0, 0,
                         0};
          pass.descend(0);
          // V leaves are disjoint, so this write is race-free.
          for (std::uint32_t i = 0; i < v.size(); ++i)
            forces_tree[v.begin + i] = local[i];
          atomic_add(counters.epol_exact, pass.exact);
          atomic_add(counters.epol_bins, pass.bins);
          atomic_add(counters.epol_visits, pass.visits);
        }
      });

  // Back to input order.
  std::vector<Vec3> forces(forces_tree.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    forces[idx[pos]] = forces_tree[pos];
  return forces;
}

}  // namespace octgb::core
