#include "octgb/core/plan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "octgb/core/born.hpp"
#include "octgb/simd/dispatch.hpp"
#include "octgb/util/check.hpp"
#include "octgb/ws/scheduler.hpp"

namespace octgb::core {

namespace {

using octree::Octree;

constexpr std::uint32_t kNoGroup = 0xffffffffu;

/// Modeled cost of one far-field pseudo-particle term in point-pair
/// equivalents (a dot product + one 1/r⁶, no per-point loop); used only
/// to balance replay chunks, never to price results.
constexpr std::uint64_t kFarCost = 8;

/// Replay chunk target: enough cost-sorted chunks that greedy packing
/// load-balances any worker count the scheduler realistically runs with,
/// few enough that per-chunk task overhead stays negligible.
constexpr std::uint64_t kTargetChunks = 96;

/// Locality carving targets fewer, larger chunks: a streaming run re-uses
/// the SoA planes it just pulled into cache, so the per-chunk overhead
/// argument flips — coarser chunks amortize better and the hierarchical
/// stealer keeps them balanced. Half the chunk count doubles the target
/// cost per chunk.
constexpr std::uint64_t kTargetChunksLocality = kTargetChunks / 2;

/// A chunk may overshoot its cost target while inside a streaming run (to
/// close on the run boundary), but never past this multiple — one giant
/// run must still split into stealable pieces.
constexpr std::uint64_t kMaxOvershoot = 4;

inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

inline void prefetch_rw(void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 3);
#else
  (void)p;
#endif
}

}  // namespace

PlanRecorder InteractionPlan::begin_capture(const PlanKey& key) {
  key_ = key;
  valid_ = false;
  born_valid_ = false;
  near_a_.clear();
  near_q_.clear();
  far_a_.clear();
  far_q_.clear();
  capture_cap_mark_ = near_a_.capacity() + near_q_.capacity() +
                      far_a_.capacity() + far_q_.capacity();
  return PlanRecorder(&near_a_, &near_q_, &far_a_, &far_q_);
}

bool InteractionPlan::finalize(const AtomsTree& ta, const QPointsTree& tq,
                               std::uint64_t geometry_epoch,
                               const perf::WorkCounters& captured_work) {
  bool grew = near_a_.capacity() + near_q_.capacity() + far_a_.capacity() +
                  far_q_.capacity() >
              capture_cap_mark_;
  const auto caps = [this] {
    return owner_.capacity() + near_begin_.capacity() + far_begin_.capacity() +
           near_q_sorted_.capacity() + far_q_sorted_.capacity() +
           owner_order_.capacity() + chunk_begin_.capacity() +
           group_of_node_.capacity() + cursor_.capacity() + cost_.capacity();
  };
  const std::size_t caps_before = caps();

  // Group ids in first-appearance (capture) order; owner = target A-node.
  const std::size_t n_nodes = ta.tree.nodes().size();
  group_of_node_.assign(n_nodes, kNoGroup);
  owner_.clear();
  const auto claim = [&](std::uint32_t a_id) {
    if (group_of_node_[a_id] == kNoGroup) {
      group_of_node_[a_id] = static_cast<std::uint32_t>(owner_.size());
      owner_.push_back(a_id);
    }
  };
  for (const std::uint32_t a_id : near_a_) claim(a_id);
  for (const std::uint32_t a_id : far_a_) claim(a_id);
  const std::size_t groups = owner_.size();

  // Stable counting sort of both lists into owner-grouped CSR form: the
  // capture (= serial traversal) order survives within every owner, which
  // is exactly the per-slot accumulation order replay must reproduce.
  near_begin_.assign(groups + 1, 0);
  far_begin_.assign(groups + 1, 0);
  for (const std::uint32_t a_id : near_a_)
    ++near_begin_[group_of_node_[a_id] + 1];
  for (const std::uint32_t a_id : far_a_)
    ++far_begin_[group_of_node_[a_id] + 1];
  for (std::size_t g = 0; g < groups; ++g) {
    near_begin_[g + 1] += near_begin_[g];
    far_begin_[g + 1] += far_begin_[g];
  }
  near_q_sorted_.resize(near_q_.size());
  far_q_sorted_.resize(far_q_.size());
  cursor_.assign(groups, 0);
  for (std::size_t i = 0; i < near_a_.size(); ++i) {
    const std::uint32_t g = group_of_node_[near_a_[i]];
    near_q_sorted_[near_begin_[g] + cursor_[g]++] = near_q_[i];
  }
  cursor_.assign(groups, 0);
  for (std::size_t i = 0; i < far_a_.size(); ++i) {
    const std::uint32_t g = group_of_node_[far_a_[i]];
    far_q_sorted_[far_begin_[g] + cursor_[g]++] = far_q_[i];
  }

  // Per-owner modeled cost, then owners sorted most-expensive-first so the
  // greedy chunking below cannot strand one huge owner at the tail.
  cost_.assign(groups, 0);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint64_t a_size = ta.tree.node(owner_[g]).size();
    for (std::uint32_t k = near_begin_[g]; k < near_begin_[g + 1]; ++k)
      cost_[g] += a_size * tq.tree.node(near_q_sorted_[k]).size();
    cost_[g] += kFarCost * (far_begin_[g + 1] - far_begin_[g]);
  }
  owner_order_.resize(groups);
  std::iota(owner_order_.begin(), owner_order_.end(), 0u);
  const std::uint64_t total =
      std::accumulate(cost_.begin(), cost_.end(), std::uint64_t{0});

  // Both carvings are counted; the baseline count is what the cost-sorted
  // carve below (the locality-off path) would produce, so the ≥2× chunk
  // reduction gate can be checked against a single plan.
  const auto carve_cost_sorted = [&](bool emit) -> std::uint64_t {
    const std::uint64_t target =
        std::max<std::uint64_t>(1, total / kTargetChunks);
    std::uint64_t count = groups == 0 ? 0 : 1, acc = 0;
    if (emit) {
      chunk_begin_.clear();
      chunk_begin_.push_back(0);
    }
    for (std::size_t i = 0; i < groups; ++i) {
      acc += cost_[owner_order_[i]];
      if (acc >= target && i + 1 < groups) {
        if (emit) chunk_begin_.push_back(static_cast<std::uint32_t>(i + 1));
        ++count;
        acc = 0;
      }
    }
    if (emit) chunk_begin_.push_back(static_cast<std::uint32_t>(groups));
    return count;
  };

  run_begin_.clear();
  chunk_atom_begin_.clear();
  locality_ = perf::LocalityCounters{};
  prefetches_per_replay_ = 0;
  if (!key_.locality) {
    // PR-9 behaviour, byte for byte: owners most-expensive-first, greedy
    // cost-balanced chunks.
    std::stable_sort(owner_order_.begin(), owner_order_.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       return cost_[x] > cost_[y];
                     });
    carve_cost_sorted(/*emit=*/true);
    locality_.chunks = chunks();
    locality_.baseline_chunks = chunks();
  } else {
    // Stream order: owners sorted by their A-node's atom range start. The
    // Morton octree stores leaves' [begin, end) contiguously in tree
    // order, so consecutive owners whose ranges abut form a *run* that
    // replay walks as one forward stream over the SoA planes and atom_s.
    // Per-owner pair lists (and therefore per-slot accumulation order)
    // are untouched — only the order owners are *visited* in changes,
    // and no two owners share a slot, so replay stays bit-identical.
    std::stable_sort(owner_order_.begin(), owner_order_.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       const auto& nx = ta.tree.node(owner_[x]);
                       const auto& ny = ta.tree.node(owner_[y]);
                       if (nx.begin != ny.begin) return nx.begin < ny.begin;
                       return owner_[x] < owner_[y];
                     });
    // Baseline count: simulate the cost-sorted carve on a scratch order.
    // (Counting only needs the multiset of costs, and greedy packing is
    // order-dependent, so run it over the actual sorted costs.)
    {
      std::vector<std::uint64_t> sorted_costs(cost_.begin(), cost_.end());
      std::sort(sorted_costs.begin(), sorted_costs.end(),
                std::greater<std::uint64_t>());
      const std::uint64_t target =
          std::max<std::uint64_t>(1, total / kTargetChunks);
      std::uint64_t count = groups == 0 ? 0 : 1, acc = 0;
      for (std::size_t i = 0; i < groups; ++i) {
        acc += sorted_costs[i];
        if (acc >= target && i + 1 < groups) {
          ++count;
          acc = 0;
        }
      }
      locality_.baseline_chunks = count;
    }
    // Run detection: a run extends while the next owner's range starts
    // where the current one ends.
    run_begin_.push_back(0);
    for (std::size_t i = 1; i < groups; ++i) {
      const auto& prev = ta.tree.node(owner_[owner_order_[i - 1]]);
      const auto& cur = ta.tree.node(owner_[owner_order_[i]]);
      if (cur.begin != prev.end)
        run_begin_.push_back(static_cast<std::uint32_t>(i));
    }
    run_begin_.push_back(static_cast<std::uint32_t>(groups));
    locality_.runs = groups == 0 ? 0 : run_begin_.size() - 1;
    locality_.run_owners = groups;
    // Carve along run boundaries: close a chunk at a run boundary once the
    // target is met, or mid-run (still on an owner boundary) only past the
    // overshoot cap.
    const std::uint64_t target =
        std::max<std::uint64_t>(1, total / kTargetChunksLocality);
    chunk_begin_.clear();
    chunk_begin_.push_back(0);
    std::uint64_t acc = 0;
    std::size_t next_run = 1;  // run_begin_ index of the next boundary
    for (std::size_t i = 0; i < groups; ++i) {
      acc += cost_[owner_order_[i]];
      const bool at_run_boundary =
          next_run < run_begin_.size() && run_begin_[next_run] == i + 1;
      if (at_run_boundary) ++next_run;
      if (i + 1 < groups &&
          ((acc >= target && at_run_boundary) ||
           acc >= kMaxOvershoot * target)) {
        chunk_begin_.push_back(static_cast<std::uint32_t>(i + 1));
        acc = 0;
      }
    }
    chunk_begin_.push_back(static_cast<std::uint32_t>(groups));
    locality_.chunks = chunks();
    // One prefetch batch per owner that has a successor in its chunk.
    prefetches_per_replay_ =
        static_cast<std::uint64_t>(groups) -
        std::min<std::uint64_t>(groups, chunks());
    // Monotone atom_s partition aligned to chunks: stream order makes the
    // first owner's range start per chunk non-decreasing, so the clamped
    // starts form a valid boundary array for domain-aware first touch.
    const std::size_t n_atoms = ta.tree.points().size();
    chunk_atom_begin_.assign(chunks() + 1, 0);
    for (std::size_t c = 1; c < chunks(); ++c) {
      const auto& first = ta.tree.node(owner_[owner_order_[chunk_begin_[c]]]);
      chunk_atom_begin_[c] =
          std::max<std::size_t>(chunk_atom_begin_[c - 1], first.begin);
    }
    chunk_atom_begin_.back() = n_atoms;
    for (std::size_t c = chunks(); c-- > 1;)
      chunk_atom_begin_[c] =
          std::min(chunk_atom_begin_[c], chunk_atom_begin_[c + 1]);
  }

  base_work_ = captured_work;
  geometry_epoch_ = geometry_epoch;
  valid_ = true;
  return grew || caps() > caps_before;
}

std::size_t InteractionPlan::footprint_bytes() const {
  return (near_a_.capacity() + near_q_.capacity() + far_a_.capacity() +
          far_q_.capacity() + owner_.capacity() + near_begin_.capacity() +
          far_begin_.capacity() + near_q_sorted_.capacity() +
          far_q_sorted_.capacity() + owner_order_.capacity() +
          chunk_begin_.capacity() + run_begin_.capacity() +
          group_of_node_.capacity() + cursor_.capacity()) *
             sizeof(std::uint32_t) +
         chunk_atom_begin_.capacity() * sizeof(std::size_t) +
         cost_.capacity() * sizeof(std::uint64_t) +
         born_tree_.capacity() * sizeof(double);
}

bool InteractionPlan::validate_single(const AtomsTree& ta,
                                      const QPointsTree& tq,
                                      double threshold) const {
  std::size_t nc = 0, fc = 0;
  // Math-free mirror of IntegralsPass::descend (born.cpp): same decision
  // rule, same serial recursion order, decisions compared element-wise
  // against the capture instead of evaluated.
  const auto walk = [&](auto&& self, std::uint32_t a_id,
                        const Octree::Node& q,
                        std::uint32_t q_id) -> bool {
    const Octree::Node& a = ta.tree.node(a_id);
    const double d = std::sqrt(geom::dist2(a.centroid, q.centroid));
    if (born_far_enough(d, a.radius, q.radius, threshold)) {
      if (fc >= far_a_.size() || far_a_[fc] != a_id || far_q_[fc] != q_id)
        return false;
      ++fc;
      return true;
    }
    if (a.is_leaf()) {
      if (nc >= near_a_.size() || near_a_[nc] != a_id || near_q_[nc] != q_id)
        return false;
      ++nc;
      return true;
    }
    for (std::uint8_t c = 0; c < a.child_count; ++c)
      if (!self(self, a.first_child + c, q, q_id)) return false;
    return true;
  };
  for (const std::uint32_t q_leaf : tq.tree.leaf_ids())
    if (!walk(walk, 0, tq.tree.node(q_leaf), q_leaf)) return false;
  return nc == near_a_.size() && fc == far_a_.size();
}

bool InteractionPlan::validate_dual(const AtomsTree& ta, const QPointsTree& tq,
                                    double threshold) const {
  std::size_t nc = 0, fc = 0;
  // Mirror of DualPass::descend (dual_traversal.cpp) without the math.
  const auto walk = [&](auto&& self, std::uint32_t a_id,
                        std::uint32_t q_id) -> bool {
    const Octree::Node& a = ta.tree.node(a_id);
    const Octree::Node& q = tq.tree.node(q_id);
    const double d = std::sqrt(geom::dist2(a.centroid, q.centroid));
    if (born_far_enough(d, a.radius, q.radius, threshold)) {
      if (fc >= far_a_.size() || far_a_[fc] != a_id || far_q_[fc] != q_id)
        return false;
      ++fc;
      return true;
    }
    const bool a_leaf = a.is_leaf();
    const bool q_leaf = q.is_leaf();
    if (a_leaf && q_leaf) {
      if (nc >= near_a_.size() || near_a_[nc] != a_id || near_q_[nc] != q_id)
        return false;
      ++nc;
      return true;
    }
    if (!a_leaf && (q_leaf || a.radius >= q.radius)) {
      for (std::uint8_t c = 0; c < a.child_count; ++c)
        if (!self(self, a.first_child + c, q_id)) return false;
    } else {
      for (std::uint8_t c = 0; c < q.child_count; ++c)
        if (!self(self, a_id, q.first_child + c)) return false;
    }
    return true;
  };
  if (!walk(walk, 0, 0)) return false;
  return nc == near_a_.size() && fc == far_a_.size();
}

bool InteractionPlan::validate(const AtomsTree& ta, const QPointsTree& tq,
                               std::uint64_t geometry_epoch) {
  OCTGB_CHECK_MSG(valid_, "validate() on an invalid plan");
  if (ta.tree.empty() || tq.tree.empty()) {
    if (!near_a_.empty() || !far_a_.empty()) {
      valid_ = born_valid_ = false;
      return false;
    }
    geometry_epoch_ = geometry_epoch;
    return true;
  }
  const double threshold =
      key_.strict_criterion ? std::pow(1.0 + key_.eps_born, 1.0 / 6.0)
                            : 1.0 + key_.eps_born;
  const bool ok = key_.flavor == PlanFlavor::Single
                      ? validate_single(ta, tq, threshold)
                      : validate_dual(ta, tq, threshold);
  if (!ok) {
    valid_ = born_valid_ = false;
    return false;
  }
  geometry_epoch_ = geometry_epoch;
  return true;
}

void InteractionPlan::replay(const AtomsTree& ta, const QPointsTree& tq,
                             bool approx_math,
                             const simd::VectorParams& vector,
                             std::span<double> node_s,
                             std::span<double> atom_s,
                             perf::WorkCounters& work) const {
  OCTGB_CHECK_MSG(valid_, "replay() on an invalid plan");
  const bool batched = key_.kernel == KernelKind::Batched;
  // Same dispatch resolution as the traversals: identical out-of-line
  // kernel code per near pair keeps replay bit-identical to capture.
  const simd::VectorParams rvec = simd::resolve(vector);
  const simd::KernelSet* vec = batched ? simd::kernels(rvec.isa) : nullptr;
  const bool mixed = vec != nullptr && !approx_math &&
                     rvec.precision == simd::Precision::Mixed;
  const std::int64_t nchunks = static_cast<std::int64_t>(chunks());
  // Stream-plane base pointers, hoisted for the next-run prefetch below
  // (cheap cached spans; the near-loop kernels re-derive their own).
  const double* const px = ta.soa_x().data();
  const double* const py = ta.soa_y().data();
  const double* const pz = ta.soa_z().data();
  double* const ps = atom_s.data();
  const bool want_prefetch = key_.locality;
  // Chunks are cost-balanced already; grain 1 keeps every chunk stealable.
  ws::Scheduler::parallel_for(
      0, nchunks, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t c = lo; c < hi; ++c) {
          for (std::uint32_t oi = chunk_begin_[c]; oi < chunk_begin_[c + 1];
               ++oi) {
            const std::uint32_t g = owner_order_[oi];
            const std::uint32_t a_id = owner_[g];
            const Octree::Node& a = ta.tree.node(a_id);
            // Streaming carve visits owners in atom-range order, so the
            // next owner's planes are the upcoming stream: pull their
            // first lines in while this owner's arithmetic retires.
            if (want_prefetch && oi + 1 < chunk_begin_[c + 1]) {
              const Octree::Node& nx =
                  ta.tree.node(owner_[owner_order_[oi + 1]]);
              prefetch_ro(px + nx.begin);
              prefetch_ro(py + nx.begin);
              prefetch_ro(pz + nx.begin);
              prefetch_rw(ps + nx.begin);
            }
            // Far terms: node_s[a_id] belongs to this task alone; capture
            // order is preserved, so the sum matches the serial traversal
            // bit for bit (the arithmetic is the same out-of-line
            // born_far_term both traversals call).
            if (far_begin_[g] != far_begin_[g + 1]) {
              double acc = 0.0;
              for (std::uint32_t k = far_begin_[g]; k < far_begin_[g + 1];
                   ++k) {
                const std::uint32_t q_id = far_q_sorted_[k];
                acc += born_far_term(a.centroid, tq.tree.node(q_id).centroid,
                                     tq.node_wnormal[q_id], approx_math);
              }
              node_s[a_id] += acc;
            }
            // Near pairs: the owner is an A-leaf, and its atom range
            // [a.begin, a.end) of atom_s is exclusive to this task. The
            // q-outer / atom-inner loop hands every atom its additions in
            // capture order.
            for (std::uint32_t k = near_begin_[g]; k < near_begin_[g + 1];
                 ++k) {
              const Octree::Node& q = tq.tree.node(near_q_sorted_[k]);
              if (batched && vec != nullptr) {
                const double* __restrict ax = ta.soa_x().data();
                const double* __restrict ay = ta.soa_y().data();
                const double* __restrict az = ta.soa_z().data();
                if (mixed) {
                  const QPointBatchF qb = tq.node_batch_f(q);
                  for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
                    atom_s[ai] +=
                        vec->born_integral_mixed(ax[ai], ay[ai], az[ai], qb);
                } else {
                  const QPointBatch qb = tq.node_batch(q);
                  const auto fn =
                      approx_math ? vec->born_integral_fast
                                  : vec->born_integral;
                  for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
                    atom_s[ai] += fn(ax[ai], ay[ai], az[ai], qb);
                }
              } else if (batched) {
                const QPointBatch qb = tq.node_batch(q);
                const double* __restrict ax = ta.soa_x().data();
                const double* __restrict ay = ta.soa_y().data();
                const double* __restrict az = ta.soa_z().data();
                for (std::uint32_t ai = a.begin; ai < a.end; ++ai) {
                  atom_s[ai] +=
                      approx_math
                          ? batch_born_integral_fast(ax[ai], ay[ai], az[ai],
                                                     qb)
                          : batch_born_integral(ax[ai], ay[ai], az[ai], qb);
                }
              } else {
                const auto atom_pts = ta.tree.points();
                for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
                  atom_s[ai] += scalar_born_pair(atom_pts[ai], tq, q.begin,
                                                 q.end, approx_math);
              }
            }
          }
        }
      });
  work += base_work_;
}

bool InteractionPlan::store_born(std::uint64_t geometry_epoch,
                                 bool approx_math,
                                 const simd::VectorParams& vector,
                                 std::span<const double> born_tree,
                                 const perf::WorkCounters& born_work) {
  OCTGB_CHECK_MSG(valid_, "store_born() on an invalid plan");
  const std::size_t cap = born_tree_.capacity();
  born_tree_.assign(born_tree.begin(), born_tree.end());
  born_geometry_epoch_ = geometry_epoch;
  born_approx_math_ = approx_math;
  born_vector_ = vector;
  born_work_ = born_work;
  born_valid_ = true;
  return born_tree_.capacity() > cap;
}

void InteractionPlan::load_born(std::span<double> born_tree,
                                perf::WorkCounters& work) const {
  OCTGB_CHECK(born_valid_ && born_tree.size() == born_tree_.size());
  std::copy(born_tree_.begin(), born_tree_.end(), born_tree.begin());
  work += born_work_;
}

}  // namespace octgb::core
