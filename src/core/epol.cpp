#include "octgb/core/epol.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "octgb/core/fastmath.hpp"
#include "octgb/simd/dispatch.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"
#include "octgb/ws/scheduler.hpp"

namespace octgb::core {

namespace {

using geom::Vec3;
using octree::Octree;

void atomic_add(double& slot, double v) {
  std::atomic_ref<double>(slot).fetch_add(v, std::memory_order_relaxed);
}
void atomic_add(std::uint64_t& slot, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(slot).fetch_add(v,
                                                 std::memory_order_relaxed);
}

/// 1/f_GB with optional approximate math.
inline double inv_f_gb(double r2, double ri_rj, bool approx) {
  if (approx) {
    const double e = fast_exp(-r2 / (4.0 * ri_rj));
    return fast_rsqrt(r2 + ri_rj * e);
  }
  return 1.0 / f_gb(r2, ri_rj);
}

}  // namespace

int EpolContext::bin_of(double born) const {
  if (born <= rmin) return 0;
  const int k = static_cast<int>(std::log(born / rmin) / log1pe);
  return std::clamp(k, 0, nbins - 1);
}

std::size_t EpolContext::footprint_bytes() const {
  return bins.capacity() * sizeof(double) +
         bin_lo.capacity() * sizeof(std::int16_t) +
         bin_hi.capacity() * sizeof(std::int16_t) +
         rep.capacity() * sizeof(double);
}

EpolContext EpolContext::build(const AtomsTree& ta,
                               std::span<const double> born_tree,
                               double eps_epol) {
  EpolContext ctx;
  ctx.rebuild(ta, born_tree, eps_epol);
  return ctx;
}

bool EpolContext::rebuild(const AtomsTree& ta,
                          std::span<const double> born_tree,
                          double eps_epol) {
  OCTGB_CHECK_MSG(eps_epol > 0.0, "eps_epol must be positive");
  OCTGB_CHECK(born_tree.size() == ta.num_atoms());
  const std::size_t cap_bins = bins.capacity();
  const std::size_t cap_lo = bin_lo.capacity();
  const std::size_t cap_hi = bin_hi.capacity();
  const std::size_t cap_rep = rep.capacity();

  const auto nodes = ta.tree.nodes();
  if (nodes.empty()) {
    *this = EpolContext{};
    return false;
  }

  double born_min = born_tree[0], born_max = born_tree[0];
  for (double r : born_tree) {
    born_min = std::min(born_min, r);
    born_max = std::max(born_max, r);
  }
  rmin = born_min;
  log1pe = std::log1p(eps_epol);
  nbins = std::max(
      1, static_cast<int>(std::ceil(std::log(born_max / born_min) / log1pe)));
  // A radius exactly equal to rmax must land inside the last bin.
  while (born_min * std::exp(log1pe * nbins) <= born_max) ++nbins;
  rep.resize(nbins);
  // Geometric mid-bin representative (the paper's Fig. 3 uses the lower
  // edge Rmin(1+ε)^k; the mid-bin value halves the systematic bias of the
  // bin-pair f_GB at no extra cost).
  for (int k = 0; k < nbins; ++k)
    rep[k] = born_min * std::exp(log1pe * (k + 0.5));

  bins.assign(nodes.size() * static_cast<std::size_t>(nbins), 0.0);
  bin_lo.assign(nodes.size(), static_cast<std::int16_t>(nbins));
  bin_hi.assign(nodes.size(), -1);

  // Bottom-up: leaves bin their atoms; parents sum children (children have
  // larger ids than parents in the flat layout).
  for (std::size_t id = nodes.size(); id-- > 0;) {
    const auto& n = nodes[id];
    double* mine = bins.data() + id * static_cast<std::size_t>(nbins);
    if (n.is_leaf()) {
      for (std::uint32_t ai = n.begin; ai < n.end; ++ai) {
        const int k = bin_of(born_tree[ai]);
        mine[k] += ta.charge[ai];
        bin_lo[id] = std::min<std::int16_t>(bin_lo[id],
                                            static_cast<std::int16_t>(k));
        bin_hi[id] = std::max<std::int16_t>(bin_hi[id],
                                            static_cast<std::int16_t>(k));
      }
    } else {
      for (std::uint8_t c = 0; c < n.child_count; ++c) {
        const std::size_t cid = n.first_child + c;
        const double* theirs =
            bins.data() + cid * static_cast<std::size_t>(nbins);
        for (int k = 0; k < nbins; ++k) mine[k] += theirs[k];
        bin_lo[id] = std::min(bin_lo[id], bin_lo[cid]);
        bin_hi[id] = std::max(bin_hi[id], bin_hi[cid]);
      }
    }
  }
  return bins.capacity() > cap_bins || bin_lo.capacity() > cap_lo ||
         bin_hi.capacity() > cap_hi || rep.capacity() > cap_rep;
}

namespace {

struct EpolCounts {
  std::uint64_t exact = 0, binpairs = 0, visits = 0;
};

/// Leaf-V-versus-tree descent (Fig. 3). Accumulates the *unscaled* sum
/// Σ q_u q_v / f_GB; the caller applies −τ/2 (same tree) or −τ (cross).
/// The U side is the tree being descended; the V side usually aliases it
/// (approx_epol / approx_epol_atom_based pass the same tree, context, and
/// Born plane for both) but may be a different body entirely — the
/// cross-tree kernel of approx_epol_cross.
struct EpolPass {
  // U side: the descended tree.
  const AtomsTree& ta;
  const EpolContext& ctx;
  std::span<const double> born;  // tree order
  // V side: the tree owning v_node / v_atom.
  const AtomsTree& tv;
  const EpolContext& ctx_v;
  std::span<const double> born_v;  // tv tree order
  double eps;
  bool approx_math;
  KernelKind kernel;
  const simd::KernelSet* vec;  ///< non-null: explicit-SIMD kernels
  bool mixed;                  ///< float streams (vec must be non-null)

  // V side: either a leaf node (node-based division)…
  const Octree::Node* v_node = nullptr;
  // …or a single atom (atom-based division).
  std::uint32_t v_atom = 0;

  double v_centroid_radius(Vec3& c) const {
    if (v_node) {
      c = v_node->centroid;
      return v_node->radius;
    }
    c = tv.tree.points()[v_atom];
    return 0.0;
  }

  double descend(std::uint32_t u_id, EpolCounts& lc) const {
    ++lc.visits;
    const Octree::Node& u = ta.tree.node(u_id);
    Vec3 vc;
    const double vr = v_centroid_radius(vc);
    const double d2 = geom::dist2(u.centroid, vc);
    const double d = std::sqrt(d2);

    if (u.is_leaf()) {
      return exact_leaf(u, lc);
    }
    if (epol_far_enough(d, u.radius, vr, eps)) {
      return far_field(u_id, d2, lc);
    }
    double sum = 0.0;
    for (std::uint8_t c = 0; c < u.child_count; ++c)
      sum += descend(u.first_child + c, lc);
    return sum;
  }

  double exact_leaf(const Octree::Node& u, EpolCounts& lc) const {
    if (kernel == KernelKind::Batched) return exact_leaf_batched(u, lc);
    const auto pts = ta.tree.points();
    const auto pts_v = tv.tree.points();
    double sum = 0.0;
    if (v_node) {
      for (std::uint32_t vi = v_node->begin; vi < v_node->end; ++vi) {
        const Vec3 pv = pts_v[vi];
        const double qv = tv.charge[vi];
        const double rv = born_v[vi];
        for (std::uint32_t ui = u.begin; ui < u.end; ++ui) {
          const double r2 = geom::dist2(pts[ui], pv);
          sum += ta.charge[ui] * qv * inv_f_gb(r2, born[ui] * rv, approx_math);
        }
      }
      lc.exact += static_cast<std::uint64_t>(u.size()) * v_node->size();
    } else {
      const Vec3 pv = pts_v[v_atom];
      const double qv = tv.charge[v_atom];
      const double rv = born_v[v_atom];
      for (std::uint32_t ui = u.begin; ui < u.end; ++ui) {
        const double r2 = geom::dist2(pts[ui], pv);
        sum += ta.charge[ui] * qv * inv_f_gb(r2, born[ui] * rv, approx_math);
      }
      lc.exact += u.size();
    }
    return sum;
  }

  /// Batched leaf×leaf kernel: each V-side atom sweeps U's SoA batch. The
  /// self term (r ≈ 0) is included by the kernel's contract, matching the
  /// scalar loop (cross-tree calls never hit r ≈ 0 — the sets are
  /// disjoint bodies).
  double exact_leaf_batched(const Octree::Node& u, EpolCounts& lc) const {
    const double* __restrict vx = tv.soa_x().data();
    const double* __restrict vy = tv.soa_y().data();
    const double* __restrict vz = tv.soa_z().data();
    double sum = 0.0;
    if (vec != nullptr && mixed) {
      const AtomBatchF ub = ta.node_batch_f(u, born);
      if (v_node) {
        for (std::uint32_t vi = v_node->begin; vi < v_node->end; ++vi)
          sum += vec->epol_sum_mixed(vx[vi], vy[vi], vz[vi], tv.charge[vi],
                                     born_v[vi], ub);
        lc.exact += static_cast<std::uint64_t>(u.size()) * v_node->size();
      } else {
        sum = vec->epol_sum_mixed(vx[v_atom], vy[v_atom], vz[v_atom],
                                  tv.charge[v_atom], born_v[v_atom], ub);
        lc.exact += u.size();
      }
      return sum;
    }
    const AtomBatch ub = ta.node_batch(u, born);
    if (vec != nullptr) {
      const auto fn = approx_math ? vec->epol_sum_fast : vec->epol_sum;
      if (v_node) {
        for (std::uint32_t vi = v_node->begin; vi < v_node->end; ++vi)
          sum += fn(vx[vi], vy[vi], vz[vi], tv.charge[vi], born_v[vi], ub);
        lc.exact += static_cast<std::uint64_t>(u.size()) * v_node->size();
      } else {
        sum = fn(vx[v_atom], vy[v_atom], vz[v_atom], tv.charge[v_atom],
                 born_v[v_atom], ub);
        lc.exact += u.size();
      }
      return sum;
    }
    if (v_node) {
      for (std::uint32_t vi = v_node->begin; vi < v_node->end; ++vi) {
        sum += approx_math
                   ? batch_epol_sum_fast(vx[vi], vy[vi], vz[vi],
                                         tv.charge[vi], born_v[vi], ub)
                   : batch_epol_sum(vx[vi], vy[vi], vz[vi], tv.charge[vi],
                                    born_v[vi], ub);
      }
      lc.exact += static_cast<std::uint64_t>(u.size()) * v_node->size();
    } else {
      sum = approx_math
                ? batch_epol_sum_fast(vx[v_atom], vy[v_atom], vz[v_atom],
                                      tv.charge[v_atom], born_v[v_atom], ub)
                : batch_epol_sum(vx[v_atom], vy[v_atom], vz[v_atom],
                                 tv.charge[v_atom], born_v[v_atom], ub);
      lc.exact += u.size();
    }
    return sum;
  }

  double far_field(std::uint32_t u_id, double d2, EpolCounts& lc) const {
    const int nb = ctx.nbins;
    const double* ub = ctx.bins.data() + static_cast<std::size_t>(u_id) * nb;
    double sum = 0.0;
    if (v_node) {
      const std::size_t v_id = v_node_id;
      const double* vb =
          ctx_v.bins.data() + v_id * static_cast<std::size_t>(ctx_v.nbins);
      if (kernel == KernelKind::Batched && vec != nullptr) {
        // Vectorized M² bin-pair loop. Counts nnz_u·nnz_v bin pairs —
        // identical to the scalar skip-zeros loop below (zero-charge lanes
        // contribute exactly 0 because rep[·] > 0 keeps f_GB finite).
        const auto fn =
            approx_math ? vec->epol_far_bins_fast : vec->epol_far_bins;
        return fn(ub, ctx.bin_lo[u_id], ctx.bin_hi[u_id], ctx.rep.data(), vb,
                  ctx_v.bin_lo[v_id], ctx_v.bin_hi[v_id], ctx_v.rep.data(),
                  d2, lc.binpairs);
      }
      for (int i = ctx.bin_lo[u_id]; i <= ctx.bin_hi[u_id]; ++i) {
        if (ub[i] == 0.0) continue;
        for (int j = ctx_v.bin_lo[v_id]; j <= ctx_v.bin_hi[v_id]; ++j) {
          if (vb[j] == 0.0) continue;
          sum += ub[i] * vb[j] *
                 inv_f_gb(d2, ctx.rep[i] * ctx_v.rep[j], approx_math);
          ++lc.binpairs;
        }
      }
    } else {
      const double qv = tv.charge[v_atom];
      const double rv = born_v[v_atom];
      for (int i = ctx.bin_lo[u_id]; i <= ctx.bin_hi[u_id]; ++i) {
        if (ub[i] == 0.0) continue;
        sum += ub[i] * qv * inv_f_gb(d2, ctx.rep[i] * rv, approx_math);
        ++lc.binpairs;
      }
    }
    return sum;
  }

  std::size_t v_node_id = 0;
};

}  // namespace

double approx_epol(const AtomsTree& ta, const EpolContext& ctx,
                   std::span<const double> born_tree,
                   std::span<const std::uint32_t> v_leaf_ids, double eps_epol,
                   bool approx_math, const GBParams& gb,
                   perf::WorkCounters& counters, KernelKind kernel,
                   const simd::VectorParams& vector) {
  OCTGB_CHECK(born_tree.size() == ta.num_atoms());
  if (ta.tree.empty() || v_leaf_ids.empty()) return 0.0;
  const simd::VectorParams rvec = simd::resolve(vector);
  const simd::KernelSet* vec =
      kernel == KernelKind::Batched ? simd::kernels(rvec.isa) : nullptr;
  const bool mixed = vec != nullptr && !approx_math &&
                     rvec.precision == simd::Precision::Mixed;
  double total = 0.0;
  ws::Scheduler::parallel_for(
      0, static_cast<std::int64_t>(v_leaf_ids.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        // Per-worker Epol activity under the "epol.traversal" phase span.
        OCTGB_SPAN("epol.leaves");
        double mine = 0.0;
        EpolCounts lc;
        for (std::int64_t li = lo; li < hi; ++li) {
          EpolPass pass{ta,        ctx,      born_tree,
                        ta,        ctx,      born_tree,
                        eps_epol,  approx_math, kernel, vec, mixed,
                        &ta.tree.node(v_leaf_ids[li]), 0};
          pass.v_node_id = v_leaf_ids[li];
          mine += pass.descend(0, lc);
        }
        atomic_add(total, mine);
        atomic_add(counters.epol_exact, lc.exact);
        atomic_add(counters.epol_bins, lc.binpairs);
        atomic_add(counters.epol_visits, lc.visits);
      });
  return -0.5 * gb.tau() * total;
}

double approx_epol_atom_based(const AtomsTree& ta, const EpolContext& ctx,
                              std::span<const double> born_tree,
                              std::uint32_t atom_begin, std::uint32_t atom_end,
                              double eps_epol, bool approx_math,
                              const GBParams& gb,
                              perf::WorkCounters& counters,
                              KernelKind kernel,
                              const simd::VectorParams& vector) {
  OCTGB_CHECK(born_tree.size() == ta.num_atoms());
  if (ta.tree.empty() || atom_begin >= atom_end) return 0.0;
  const simd::VectorParams rvec = simd::resolve(vector);
  const simd::KernelSet* vec =
      kernel == KernelKind::Batched ? simd::kernels(rvec.isa) : nullptr;
  const bool mixed = vec != nullptr && !approx_math &&
                     rvec.precision == simd::Precision::Mixed;

  // Atom-based division works on the leaves *clipped to the atom range*:
  // a segment boundary that falls inside a leaf splits it, and the split
  // piece has a different centroid/radius — hence different far-field
  // decisions. This is why the paper observes the error of atom-based
  // division changing with P while node-based division's stays constant.
  const auto& leaves = ta.tree.leaf_ids();
  const auto pts = ta.tree.points();
  double total = 0.0;
  ws::Scheduler::parallel_for(
      0, static_cast<std::int64_t>(leaves.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        OCTGB_SPAN("epol.atoms");
        double mine = 0.0;
        EpolCounts lc;
        for (std::int64_t li = lo; li < hi; ++li) {
          const Octree::Node& leaf = ta.tree.node(leaves[li]);
          const std::uint32_t b = std::max(leaf.begin, atom_begin);
          const std::uint32_t e = std::min(leaf.end, atom_end);
          if (b >= e) continue;
          // Clipped pseudo-leaf over [b, e).
          Octree::Node v = leaf;
          v.begin = b;
          v.end = e;
          geom::Vec3 c;
          for (std::uint32_t i = b; i < e; ++i) c += pts[i];
          v.centroid = c / static_cast<double>(e - b);
          double r2max = 0.0;
          for (std::uint32_t i = b; i < e; ++i)
            r2max = std::max(r2max, geom::dist2(v.centroid, pts[i]));
          v.radius = std::sqrt(r2max);

          EpolPass pass{ta,       ctx,         born_tree, ta, ctx,
                        born_tree, eps_epol,   approx_math,
                        kernel,   vec,         mixed,     &v, 0};
          // The clipped leaf is not a persistent node; bin lookups on the
          // V side must use its own charge-by-bin table, so fall back to
          // the per-atom path when the clip is partial.
          if (b == leaf.begin && e == leaf.end) {
            pass.v_node_id = leaves[li];
            mine += pass.descend(0, lc);
          } else {
            for (std::uint32_t ai = b; ai < e; ++ai) {
              EpolPass atom_pass{ta,        ctx,      born_tree,
                                 ta,        ctx,      born_tree,
                                 eps_epol,  approx_math, kernel, vec,
                                 mixed,     nullptr,  ai};
              mine += atom_pass.descend(0, lc);
            }
          }
        }
        atomic_add(total, mine);
        atomic_add(counters.epol_exact, lc.exact);
        atomic_add(counters.epol_bins, lc.binpairs);
        atomic_add(counters.epol_visits, lc.visits);
      });
  return -0.5 * gb.tau() * total;
}

double approx_epol_cross(const AtomsTree& ta, const EpolContext& ctx_a,
                         std::span<const double> born_a, const AtomsTree& tb,
                         const EpolContext& ctx_b,
                         std::span<const double> born_b, double eps_epol,
                         bool approx_math, const GBParams& gb,
                         perf::WorkCounters& counters, KernelKind kernel,
                         const simd::VectorParams& vector) {
  OCTGB_CHECK(born_a.size() == ta.num_atoms());
  OCTGB_CHECK(born_b.size() == tb.num_atoms());
  if (ta.tree.empty() || tb.tree.empty()) return 0.0;
  const simd::VectorParams rvec = simd::resolve(vector);
  const simd::KernelSet* vec =
      kernel == KernelKind::Batched ? simd::kernels(rvec.isa) : nullptr;
  const bool mixed = vec != nullptr && !approx_math &&
                     rvec.precision == simd::Precision::Mixed;
  const auto& v_leaves = tb.tree.leaf_ids();
  double total = 0.0;
  ws::Scheduler::parallel_for(
      0, static_cast<std::int64_t>(v_leaves.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        OCTGB_SPAN("epol.cross");
        double mine = 0.0;
        EpolCounts lc;
        for (std::int64_t li = lo; li < hi; ++li) {
          EpolPass pass{ta,        ctx_a,    born_a,
                        tb,        ctx_b,    born_b,
                        eps_epol,  approx_math, kernel, vec, mixed,
                        &tb.tree.node(v_leaves[li]), 0};
          pass.v_node_id = v_leaves[li];
          mine += pass.descend(0, lc);
        }
        atomic_add(total, mine);
        atomic_add(counters.epol_exact, lc.exact);
        atomic_add(counters.epol_bins, lc.binpairs);
        atomic_add(counters.epol_visits, lc.visits);
      });
  // Ordered-pair convention of Eq. 2: every unordered A–B pair appears
  // twice in Σ_{ij}, so the cross block carries −τ, not −τ/2.
  return -gb.tau() * total;
}

}  // namespace octgb::core
