#include "octgb/core/session.hpp"

#include <utility>

#include "octgb/perf/stats.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

namespace {

bool same_eval_params(const ApproxParams& a, const ApproxParams& b) {
  return a.eps_born == b.eps_born && a.eps_epol == b.eps_epol &&
         a.approx_math == b.approx_math &&
         a.strict_born_criterion == b.strict_born_criterion &&
         a.kernel == b.kernel && a.vector == b.vector;
}

mol::Molecule body_molecule(const mol::Molecule& mol,
                            std::span<const geom::Vec3> base_pos,
                            std::size_t begin, std::size_t end,
                            const char* name) {
  mol::Molecule body(name);
  body.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    mol::Atom a = mol.atom(i);
    a.pos = base_pos[i];
    body.add_atom(a);
  }
  return body;
}

}  // namespace

/// Frozen-monomer caches for CrossScreen: each body's isolated engine,
/// Born radii, and Epol bin table at the base coordinates. Bin tables
/// depend only on topology + radii, and rigid motion preserves intra-body
/// distances, so everything here survives per-pose ligand refits intact.
struct ScoringSession::ScreenState {
  std::size_t ligand_begin = 0;
  ApproxParams approx_at_build;
  mol::Molecule lig_mol;  ///< ligand body, mutated only on rebuilds
  GBEngine rec_engine;
  GBEngine lig_engine;
  double e_rec = 0.0;  ///< Epol of the isolated receptor body
  double e_lig = 0.0;  ///< Epol of the isolated ligand body
  std::vector<double> rec_born_tree, lig_born_tree;  ///< tree order
  std::vector<double> lig_born_input;  ///< survives ligand-tree rebuilds
  EpolContext rec_ctx, lig_ctx;
  std::vector<geom::Vec3> lig_base_pos;  ///< ligand body base positions
  std::vector<geom::Vec3> pose_pos;      ///< per-pose staging buffer
  octree::RefitMonitor lig_monitor;

  ScreenState(GBEngine rec, GBEngine lig)
      : rec_engine(std::move(rec)), lig_engine(std::move(lig)) {}
};

ScoringSession::ScoringSession(const mol::Molecule& mol,
                               const surface::Surface& surf,
                               EngineConfig config,
                               surface::SurfaceParams surface_params)
    : mol_(mol),
      surf_(surf),
      engine_(mol, surf, config),
      surface_params_(surface_params),
      atoms_monitor_(engine_.atoms_tree().tree),
      qpoints_monitor_(engine_.qpoints_tree().tree) {
  snapshot_base();
}

ScoringSession::~ScoringSession() = default;

std::size_t ScoringSession::footprint_bytes() const {
  std::size_t bytes = mol_.footprint_bytes() + surf_.footprint_bytes() +
                      engine_.footprint_bytes() + scratch_.footprint_bytes();
  bytes += (base_atom_pos_.capacity() + base_q_pos_.capacity() +
            base_q_normal_.capacity() + pose_pos_.capacity()) *
           sizeof(geom::Vec3);
  if (screen_) {
    bytes += screen_->rec_engine.footprint_bytes() +
             screen_->lig_engine.footprint_bytes() +
             (screen_->rec_born_tree.capacity() +
              screen_->lig_born_tree.capacity() +
              screen_->lig_born_input.capacity()) *
                 sizeof(double);
  }
  return bytes;
}

void ScoringSession::snapshot_base() {
  base_atom_pos_.resize(mol_.size());
  for (std::size_t i = 0; i < mol_.size(); ++i)
    base_atom_pos_[i] = mol_.atom(i).pos;
  base_q_pos_ = surf_.positions;
  base_q_normal_ = surf_.normals;
  screen_.reset();  // frozen-monomer caches are base-coordinate artifacts
}

EvalResult ScoringSession::evaluate(ws::Scheduler* sched) {
  return engine_.compute(scratch_, sched);
}

EvalResult ScoringSession::evaluate_at(const ApproxParams& approx,
                                       ws::Scheduler* sched) {
  engine_.approx() = approx;
  return engine_.compute(scratch_, sched);
}

bool ScoringSession::update(std::span<const geom::Vec3> positions,
                            const surface::Surface& surf) {
  OCTGB_CHECK_MSG(positions.size() == mol_.size(),
                  "atom count changed; start a new session");
  bool rebuilt = false;
  for (std::size_t i = 0; i < mol_.size(); ++i)
    mol_.atoms()[i].pos = positions[i];
  engine_.refit_atoms(positions);
  ++stats_.refits;
  if (atoms_monitor_.should_rebuild(engine_.atoms_tree().tree)) {
    engine_.rebuild_atoms(mol_);
    atoms_monitor_.rebase(engine_.atoms_tree().tree);
    ++stats_.rebuilds;
    rebuilt = true;
  }

  surf_ = surf;
  if (surf_.size() == engine_.qpoints_tree().num_points()) {
    engine_.refit_qpoints(surf_);
    ++stats_.refits;
    if (qpoints_monitor_.should_rebuild(engine_.qpoints_tree().tree)) {
      engine_.rebuild_qpoints(surf_);
      qpoints_monitor_.rebase(engine_.qpoints_tree().tree);
      ++stats_.rebuilds;
      rebuilt = true;
    }
  } else {
    // Point count changed (exposure/resampling): refit is impossible.
    engine_.rebuild_qpoints(surf_);
    qpoints_monitor_.rebase(engine_.qpoints_tree().tree);
    ++stats_.rebuilds;
    rebuilt = true;
  }

  snapshot_base();
  return rebuilt;
}

bool ScoringSession::apply_pose(const geom::RigidTransform& pose,
                                std::size_t ligand_begin) {
  OCTGB_CHECK_MSG(ligand_begin < mol_.size(),
                  "ligand_begin past the end of the molecule");
  bool rebuilt = false;

  pose_pos_.resize(mol_.size());
  for (std::size_t i = 0; i < ligand_begin; ++i)
    pose_pos_[i] = base_atom_pos_[i];
  for (std::size_t i = ligand_begin; i < mol_.size(); ++i)
    pose_pos_[i] = pose.apply(base_atom_pos_[i]);
  for (std::size_t i = 0; i < mol_.size(); ++i)
    mol_.atoms()[i].pos = pose_pos_[i];

  engine_.refit_atoms(pose_pos_);
  ++stats_.refits;
  if (atoms_monitor_.should_rebuild(engine_.atoms_tree().tree)) {
    engine_.rebuild_atoms(mol_);
    atoms_monitor_.rebase(engine_.atoms_tree().tree);
    ++stats_.rebuilds;
    rebuilt = true;
  }

  // Rigid-surface approximation: the ligand's surface points move with
  // their owner atoms, weights kept; interface exposure changes are
  // neglected (documented in DESIGN.md).
  for (std::size_t k = 0; k < surf_.size(); ++k) {
    if (surf_.owner_atom[k] >= ligand_begin) {
      surf_.positions[k] = pose.apply(base_q_pos_[k]);
      surf_.normals[k] = pose.apply_dir(base_q_normal_[k]);
    } else {
      surf_.positions[k] = base_q_pos_[k];
      surf_.normals[k] = base_q_normal_[k];
    }
  }
  engine_.refit_qpoints(surf_);
  ++stats_.refits;
  if (qpoints_monitor_.should_rebuild(engine_.qpoints_tree().tree)) {
    engine_.rebuild_qpoints(surf_);
    qpoints_monitor_.rebase(engine_.qpoints_tree().tree);
    ++stats_.rebuilds;
    rebuilt = true;
  }
  return rebuilt;
}

void ScoringSession::reset_to_base() {
  apply_pose(geom::RigidTransform::identity(),
             /*ligand_begin=*/mol_.size() - 1);
  // The identity pose restores every coordinate (receptor atoms are
  // always reset to base; the "ligand" tail maps to itself).
}

ScoringSession::ScreenState& ScoringSession::ensure_screen_state(
    std::size_t ligand_begin) {
  OCTGB_CHECK_MSG(ligand_begin > 0 && ligand_begin < mol_.size(),
                  "ligand_begin must split the molecule into two bodies");
  const ApproxParams& approx = engine_.config().approx;
  if (screen_ && screen_->ligand_begin == ligand_begin &&
      same_eval_params(screen_->approx_at_build, approx))
    return *screen_;

  OCTGB_SPAN("session.screen_state");
  mol::Molecule rec_mol =
      body_molecule(mol_, base_atom_pos_, 0, ligand_begin, "receptor");
  mol::Molecule lig_mol = body_molecule(mol_, base_atom_pos_, ligand_begin,
                                        mol_.size(), "ligand");
  const surface::Surface rec_surf =
      surface::build_surface(rec_mol, surface_params_);
  const surface::Surface lig_surf =
      surface::build_surface(lig_mol, surface_params_);

  auto st = std::make_unique<ScreenState>(
      GBEngine(rec_mol, rec_surf, engine_.config()),
      GBEngine(lig_mol, lig_surf, engine_.config()));
  st->ligand_begin = ligand_begin;
  st->approx_at_build = approx;

  // Isolated-body evaluations at base coordinates; the Born radii and bin
  // tables are frozen for the rest of the pose stream.
  const EvalResult rec = st->rec_engine.compute(scratch_);
  st->e_rec = rec.epol;
  st->rec_born_tree.assign(scratch_.born_tree.begin(),
                           scratch_.born_tree.end());
  st->rec_ctx = scratch_.epol_ctx;

  const EvalResult lig = st->lig_engine.compute(scratch_);
  st->e_lig = lig.epol;
  st->lig_born_tree.assign(scratch_.born_tree.begin(),
                           scratch_.born_tree.end());
  st->lig_born_input.assign(lig.born.begin(), lig.born.end());
  st->lig_ctx = scratch_.epol_ctx;

  st->lig_mol = std::move(lig_mol);
  st->lig_base_pos.resize(st->lig_mol.size());
  for (std::size_t i = 0; i < st->lig_mol.size(); ++i)
    st->lig_base_pos[i] = st->lig_mol.atom(i).pos;
  st->lig_monitor.rebase(st->lig_engine.atoms_tree().tree);

  screen_ = std::move(st);
  return *screen_;
}

PoseScore ScoringSession::score_pose_full(const geom::RigidTransform& pose,
                                          std::size_t ligand_begin,
                                          double e_bodies,
                                          ws::Scheduler* sched) {
  perf::Timer timer;
  PoseScore score;
  score.rebuilt = apply_pose(pose, ligand_begin);
  const EvalResult r = engine_.compute(scratch_, sched);
  score.epol = r.epol;
  score.delta = r.epol - e_bodies;
  score.wall_seconds = timer.seconds();
  return score;
}

PoseScore ScoringSession::score_pose_screen(const geom::RigidTransform& pose,
                                            ScreenState& st) {
  perf::Timer timer;
  PoseScore score;

  st.pose_pos.resize(st.lig_base_pos.size());
  for (std::size_t i = 0; i < st.lig_base_pos.size(); ++i)
    st.pose_pos[i] = pose.apply(st.lig_base_pos[i]);
  st.lig_engine.refit_atoms(st.pose_pos);
  ++stats_.refits;
  // Rigid motion preserves intra-body distances, so leaf radii cannot
  // inflate; the rebuild branch only guards against numerically drifting
  // (near-rigid) transforms.
  if (st.lig_monitor.should_rebuild(st.lig_engine.atoms_tree().tree)) {
    for (std::size_t i = 0; i < st.lig_mol.size(); ++i)
      st.lig_mol.atoms()[i].pos = st.pose_pos[i];
    st.lig_engine.rebuild_atoms(st.lig_mol);
    st.lig_monitor.rebase(st.lig_engine.atoms_tree().tree);
    ++stats_.rebuilds;
    score.rebuilt = true;
    // The rebuild re-permutes the tree: remap the frozen input-order
    // radii and rebuild the (radius-only) bin table.
    const auto idx = st.lig_engine.atoms_tree().tree.point_index();
    for (std::size_t p = 0; p < idx.size(); ++p)
      st.lig_born_tree[p] = st.lig_born_input[idx[p]];
    st.lig_ctx.rebuild(st.lig_engine.atoms_tree(), st.lig_born_tree,
                       engine_.config().approx.eps_epol);
  }

  const ApproxParams& approx = engine_.config().approx;
  perf::WorkCounters counters;
  const double cross = approx_epol_cross(
      st.rec_engine.atoms_tree(), st.rec_ctx, st.rec_born_tree,
      st.lig_engine.atoms_tree(), st.lig_ctx, st.lig_born_tree,
      approx.eps_epol, approx.approx_math, engine_.config().gb, counters,
      approx.kernel, approx.vector);

  score.epol = st.e_rec + st.e_lig + cross;
  score.delta = cross;
  score.wall_seconds = timer.seconds();
  return score;
}

std::vector<PoseScore> ScoringSession::score_poses(
    std::span<const geom::RigidTransform> poses, std::size_t ligand_begin,
    PoseMode mode, ws::Scheduler* sched) {
  std::vector<PoseScore> scores;
  scores.reserve(poses.size());
  ScreenState& st = ensure_screen_state(ligand_begin);
  const double e_bodies = st.e_rec + st.e_lig;
  for (std::size_t p = 0; p < poses.size(); ++p) {
    OCTGB_SPAN("session.pose");
    PoseScore s = mode == PoseMode::Full
                      ? score_pose_full(poses[p], ligand_begin, e_bodies,
                                        sched)
                      : score_pose_screen(poses[p], st);
    s.pose = p;
    scores.push_back(s);
  }
  return scores;
}

}  // namespace octgb::core
