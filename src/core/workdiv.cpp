#include "octgb/core/workdiv.hpp"

#include "octgb/util/check.hpp"

namespace octgb::core {

Segment even_segment(std::size_t n, int parts, int index) {
  OCTGB_CHECK_MSG(parts >= 1 && index >= 0 && index < parts,
                  "bad segment request " << index << "/" << parts);
  const std::uint64_t q = n / static_cast<std::uint64_t>(parts);
  const std::uint64_t r = n % static_cast<std::uint64_t>(parts);
  const std::uint64_t idx = static_cast<std::uint64_t>(index);
  const std::uint64_t begin = idx * q + std::min<std::uint64_t>(idx, r);
  const std::uint64_t len = q + (idx < r ? 1 : 0);
  return {static_cast<std::uint32_t>(begin),
          static_cast<std::uint32_t>(begin + len)};
}

std::vector<Segment> weighted_leaf_segments(
    const octree::Octree& tree, std::span<const std::uint32_t> leaves,
    int parts) {
  OCTGB_CHECK_MSG(parts >= 1, "parts must be positive");
  std::uint64_t total = 0;
  for (std::uint32_t id : leaves) total += tree.node(id).size();

  std::vector<Segment> out;
  out.reserve(parts);
  std::uint32_t cursor = 0;
  std::uint64_t consumed = 0;
  for (int p = 0; p < parts; ++p) {
    const std::uint32_t begin = cursor;
    // Greedy: take leaves until this part reaches its proportional share.
    const std::uint64_t target =
        total * static_cast<std::uint64_t>(p + 1) /
        static_cast<std::uint64_t>(parts);
    while (cursor < leaves.size() && consumed < target) {
      consumed += tree.node(leaves[cursor]).size();
      ++cursor;
    }
    out.push_back({begin, cursor});
  }
  out.back().end = static_cast<std::uint32_t>(leaves.size());
  return out;
}

}  // namespace octgb::core
