#include "octgb/core/naive.hpp"

#include <cmath>
#include <numbers>

#include "octgb/core/batch_kernels.hpp"
#include "octgb/core/fastmath.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

double finalize_born_radius(double integral, double vdw_radius,
                            bool approx_math) {
  const double s = integral / (4.0 * std::numbers::pi);
  if (s <= 1.0 / (kMaxBornRadius * kMaxBornRadius * kMaxBornRadius))
    return kMaxBornRadius;
  const double r = approx_math ? fast_inv_cbrt(s) : 1.0 / std::cbrt(s);
  return std::max(vdw_radius, std::min(r, kMaxBornRadius));
}

std::vector<double> naive_born_radii(const mol::Molecule& mol,
                                     const surface::Surface& surf,
                                     perf::WorkCounters* counters,
                                     KernelKind kernel) {
  const auto atoms = mol.atoms();
  std::vector<double> born(atoms.size());
  if (kernel == KernelKind::Batched) {
    // Gather the surface into SoA scratch once (O(N)), then sweep it per
    // atom with the vectorization-friendly batch kernel (O(M·N)).
    const std::size_t n = surf.size();
    std::vector<double> qx(n), qy(n), qz(n), wnx(n), wny(n), wnz(n);
    split_soa(surf.positions, qx, qy, qz);
    for (std::size_t k = 0; k < n; ++k) {
      wnx[k] = surf.weights[k] * surf.normals[k].x;
      wny[k] = surf.weights[k] * surf.normals[k].y;
      wnz[k] = surf.weights[k] * surf.normals[k].z;
    }
    const QPointBatch qb{qx, qy, qz, wnx, wny, wnz};
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      const geom::Vec3 x = atoms[i].pos;
      born[i] = finalize_born_radius(batch_born_integral(x.x, x.y, x.z, qb),
                                     atoms[i].radius);
    }
  } else {
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      const geom::Vec3 x = atoms[i].pos;
      double s = 0.0;
      for (std::size_t k = 0; k < surf.size(); ++k) {
        const geom::Vec3 d = surf.positions[k] - x;
        const double r2 = d.norm2();
        if (r2 < 1e-12) continue;  // quadrature point on the atom center
        const double r6 = r2 * r2 * r2;
        s += surf.weights[k] * d.dot(surf.normals[k]) / r6;
      }
      born[i] = finalize_born_radius(s, atoms[i].radius);
    }
  }
  if (counters) {
    counters->born_exact +=
        static_cast<std::uint64_t>(atoms.size()) * surf.size();
    counters->push_atoms += atoms.size();
  }
  return born;
}

double naive_epol(const mol::Molecule& mol, std::span<const double> born,
                  const GBParams& gb, perf::WorkCounters* counters,
                  KernelKind kernel) {
  const auto atoms = mol.atoms();
  OCTGB_CHECK_MSG(born.size() == atoms.size(),
                  "born radii size mismatch: " << born.size() << " vs "
                                               << atoms.size());
  double e = 0.0;
  if (kernel == KernelKind::Batched) {
    // Full ordered-pair sum row by row: Σ_i q_i Σ_j q_j / f_GB. The i = j
    // term is the diagonal q²/R (f_GB(0) = R), included by the kernel.
    const std::size_t n = atoms.size();
    std::vector<double> x(n), y(n), z(n), q(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = atoms[i].pos.x;
      y[i] = atoms[i].pos.y;
      z[i] = atoms[i].pos.z;
      q[i] = atoms[i].charge;
    }
    const AtomBatch all{x, y, z, q, born};
    for (std::size_t i = 0; i < n; ++i)
      e += batch_epol_sum(x[i], y[i], z[i], q[i], born[i], all);
  } else {
    // Ordered-pair sum = diagonal + 2 × (unordered off-diagonal pairs).
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      e += atoms[i].charge * atoms[i].charge / born[i];  // f_GB(0) = R_i
      for (std::size_t j = i + 1; j < atoms.size(); ++j) {
        const double r2 = geom::dist2(atoms[i].pos, atoms[j].pos);
        e += 2.0 * atoms[i].charge * atoms[j].charge /
             f_gb(r2, born[i] * born[j]);
      }
    }
  }
  if (counters) {
    counters->epol_exact +=
        static_cast<std::uint64_t>(atoms.size()) * atoms.size();
  }
  return -0.5 * gb.tau() * e;
}

}  // namespace octgb::core
