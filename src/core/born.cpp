#include "octgb/core/born.hpp"

#include <atomic>
#include <cmath>

#include "octgb/core/fastmath.hpp"
#include "octgb/core/gb_params.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/core/plan.hpp"
#include "octgb/simd/dispatch.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"
#include "octgb/ws/scheduler.hpp"

namespace octgb::core {

namespace {

using geom::Vec3;
using octree::Octree;

void atomic_add(double& slot, double v) {
  std::atomic_ref<double>(slot).fetch_add(v, std::memory_order_relaxed);
}

void atomic_add(std::uint64_t& slot, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(slot).fetch_add(v,
                                                 std::memory_order_relaxed);
}

/// Local tallies flushed once per leaf task.
struct LocalCounts {
  std::uint64_t exact = 0, approx = 0, visits = 0;
};

/// Recursive descent of T_A against one T_Q leaf (Fig. 2 lines 1–3).
struct IntegralsPass {
  const AtomsTree& ta;
  const QPointsTree& tq;
  const Octree::Node& q;     ///< the T_Q leaf
  std::uint32_t q_id;        ///< the T_Q leaf's node id
  Vec3 q_wnormal;            ///< Σ w·n over the leaf
  double one_plus_eps_pow6;  ///< (1+ε)^(1/6)
  bool approx_math;
  KernelKind kernel;
  const simd::KernelSet* vec;  ///< non-null: explicit-SIMD near field
  bool mixed;                  ///< float streams (vec must be non-null)
  std::span<double> node_s;
  std::span<double> atom_s;
  PlanRecorder* recorder;    ///< non-null: capture decisions, stay serial

  void descend(std::uint32_t a_id, LocalCounts& lc) const {
    ++lc.visits;
    const Octree::Node& a = ta.tree.node(a_id);
    const double d2 = geom::dist2(a.centroid, q.centroid);
    const double d = std::sqrt(d2);
    if (born_far_enough(d, a.radius, q.radius, one_plus_eps_pow6)) {
      // Whole leaf Q acts on node A as one pseudo q-point at its centroid.
      if (recorder) recorder->far(a_id, q_id);
      atomic_add(node_s[a_id],
                 born_far_term(a.centroid, q.centroid, q_wnormal, approx_math));
      ++lc.approx;
      return;
    }
    if (a.is_leaf()) {
      if (recorder) recorder->near(a_id, q_id);
      if (kernel == KernelKind::Batched && vec != nullptr) {
        const double* __restrict ax = ta.soa_x().data();
        const double* __restrict ay = ta.soa_y().data();
        const double* __restrict az = ta.soa_z().data();
        if (mixed) {
          const QPointBatchF qb = tq.node_batch_f(q);
          for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
            atomic_add(atom_s[ai],
                       vec->born_integral_mixed(ax[ai], ay[ai], az[ai], qb));
        } else {
          const QPointBatch qb = tq.node_batch(q);
          const auto fn =
              approx_math ? vec->born_integral_fast : vec->born_integral;
          for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
            atomic_add(atom_s[ai], fn(ax[ai], ay[ai], az[ai], qb));
        }
      } else if (kernel == KernelKind::Batched) {
        const QPointBatch qb = tq.node_batch(q);
        const double* __restrict ax = ta.soa_x().data();
        const double* __restrict ay = ta.soa_y().data();
        const double* __restrict az = ta.soa_z().data();
        for (std::uint32_t ai = a.begin; ai < a.end; ++ai) {
          const double s =
              approx_math
                  ? batch_born_integral_fast(ax[ai], ay[ai], az[ai], qb)
                  : batch_born_integral(ax[ai], ay[ai], az[ai], qb);
          atomic_add(atom_s[ai], s);
        }
      } else {
        const auto atom_pts = ta.tree.points();
        for (std::uint32_t ai = a.begin; ai < a.end; ++ai) {
          atomic_add(atom_s[ai], scalar_born_pair(atom_pts[ai], tq, q.begin,
                                                  q.end, approx_math));
        }
      }
      lc.exact += static_cast<std::uint64_t>(a.size()) * q.size();
      return;
    }
    // Recurse on the children. Fork only while subtrees are big enough to
    // be worth a steal; below that, serial recursion wins. Recording
    // forbids forking: the capture order must be the serial one.
    if (a.size() > 4096 && ws::Scheduler::current() != nullptr &&
        recorder == nullptr) {
      std::vector<std::function<void()>> forks;
      forks.reserve(a.child_count);
      // Each forked child keeps its own tallies, flushed on completion,
      // because LocalCounts is not thread safe.
      for (std::uint8_t c = 0; c < a.child_count; ++c) {
        const std::uint32_t child = a.first_child + c;
        forks.emplace_back([this, child] {
          LocalCounts mine;
          descend(child, mine);
          flush(mine);
        });
      }
      ws::Scheduler::fork_all(forks);
    } else {
      for (std::uint8_t c = 0; c < a.child_count; ++c)
        descend(a.first_child + c, lc);
    }
  }

  perf::WorkCounters* shared = nullptr;
  void flush(const LocalCounts& lc) const {
    atomic_add(shared->born_exact, lc.exact);
    atomic_add(shared->born_approx, lc.approx);
    atomic_add(shared->born_visits, lc.visits);
  }
};

}  // namespace

double inv_r6(double r2, bool approx_math) {
  if (approx_math) {
    const double t = fast_rsqrt(r2);
    const double t2 = t * t;
    return t2 * t2 * t2;
  }
  return 1.0 / (r2 * r2 * r2);
}

double born_far_term(const Vec3& ac, const Vec3& qc, const Vec3& wn,
                     bool approx_math) {
  const Vec3 delta = qc - ac;
  const double r2 = geom::dist2(ac, qc);
  // Same coincidence guard as the near kernels (r ≤ 1e-6): the criterion
  // never admits d = 0, but direct calls and degenerate single-point
  // geometry can — return 0 instead of an infinity that would poison the
  // node partial. !(r2 > …) also catches NaN centroids.
  if (!(r2 > 1e-12)) return 0.0;
  return wn.dot(delta) * inv_r6(r2, approx_math);
}

double scalar_born_pair(const Vec3& pa, const QPointsTree& tq,
                        std::uint32_t q_begin, std::uint32_t q_end,
                        bool approx_math) {
  const auto q_pts = tq.tree.points();
  double s = 0.0;
  for (std::uint32_t qi = q_begin; qi < q_end; ++qi) {
    const Vec3 delta = q_pts[qi] - pa;
    const double r2 = delta.norm2();
    if (r2 < 1e-12) continue;
    s += tq.wnormal[qi].dot(delta) * inv_r6(r2, approx_math);
  }
  return s;
}

void approx_integrals(const AtomsTree& ta, const QPointsTree& tq,
                      std::span<const std::uint32_t> q_leaf_ids,
                      double eps_born, bool approx_math,
                      std::span<double> node_s, std::span<double> atom_s,
                      perf::WorkCounters& counters, bool strict_criterion,
                      KernelKind kernel, const simd::VectorParams& vector,
                      PlanRecorder* recorder) {
  OCTGB_CHECK_MSG(eps_born > 0.0, "eps_born must be positive");
  OCTGB_CHECK(node_s.size() == ta.tree.nodes().size());
  OCTGB_CHECK(atom_s.size() == ta.num_atoms());
  if (ta.tree.empty() || tq.tree.empty()) return;

  const double pow6 = strict_criterion
                          ? std::pow(1.0 + eps_born, 1.0 / 6.0)
                          : 1.0 + eps_born;
  const simd::VectorParams rvec = simd::resolve(vector);
  const simd::KernelSet* vec =
      kernel == KernelKind::Batched ? simd::kernels(rvec.isa) : nullptr;
  const bool mixed = vec != nullptr && !approx_math &&
                     rvec.precision == simd::Precision::Mixed;
  const auto leaf_range = [&](std::int64_t lo, std::int64_t hi) {
    // One span per leaf-range task: the per-worker Born activity the
    // trace shows under the phase-level "born.traversal" span.
    OCTGB_SPAN("born.leaves");
    for (std::int64_t li = lo; li < hi; ++li) {
      const Octree::Node& q = tq.tree.node(q_leaf_ids[li]);
      IntegralsPass pass{ta,
                         tq,
                         q,
                         q_leaf_ids[li],
                         tq.node_wnormal[q_leaf_ids[li]],
                         pow6,
                         approx_math,
                         kernel,
                         vec,
                         mixed,
                         node_s,
                         atom_s,
                         recorder};
      pass.shared = &counters;
      LocalCounts lc;
      pass.descend(0, lc);
      pass.flush(lc);
    }
  };
  if (recorder != nullptr) {
    // Capture runs serially even under an active scheduler: the recorded
    // decision order *is* the deterministic serial traversal order.
    leaf_range(0, static_cast<std::int64_t>(q_leaf_ids.size()));
    return;
  }
  // Parallel loop over this rank's T_Q leaves; grain of 1 leaf — the inner
  // traversal provides plenty of work per task.
  ws::Scheduler::parallel_for(
      0, static_cast<std::int64_t>(q_leaf_ids.size()), 1, leaf_range);
}

namespace {

struct PushPass {
  const AtomsTree& ta;
  std::span<const double> node_s;
  std::span<const double> atom_s;
  std::uint32_t begin, end;
  bool approx_math;
  std::span<double> born_tree;
  perf::WorkCounters* shared;

  void descend(std::uint32_t a_id, double prefix, LocalCounts& lc) const {
    const Octree::Node& a = ta.tree.node(a_id);
    if (a.end <= begin || a.begin >= end) return;  // outside the segment
    ++lc.visits;
    prefix += node_s[a_id];
    if (a.is_leaf()) {
      const std::uint32_t lo = std::max(a.begin, begin);
      const std::uint32_t hi = std::min(a.end, end);
      for (std::uint32_t ai = lo; ai < hi; ++ai) {
        born_tree[ai] = finalize_born_radius(atom_s[ai] + prefix,
                                             ta.vdw_radius[ai], approx_math);
      }
      lc.exact += hi - lo;
      return;
    }
    if (a.size() > 4096 && ws::Scheduler::current() != nullptr) {
      std::vector<std::function<void()>> forks;
      forks.reserve(a.child_count);
      for (std::uint8_t c = 0; c < a.child_count; ++c) {
        const std::uint32_t child = a.first_child + c;
        forks.emplace_back([this, child, prefix] {
          LocalCounts mine;
          descend(child, prefix, mine);
          flush(mine);
        });
      }
      ws::Scheduler::fork_all(forks);
    } else {
      for (std::uint8_t c = 0; c < a.child_count; ++c)
        descend(a.first_child + c, prefix, lc);
    }
  }

  void flush(const LocalCounts& lc) const {
    atomic_add(shared->push_atoms, lc.exact);
    atomic_add(shared->push_visits, lc.visits);
  }
};

}  // namespace

void push_integrals_to_atoms(const AtomsTree& ta,
                             std::span<const double> node_s,
                             std::span<const double> atom_s,
                             std::uint32_t atom_begin, std::uint32_t atom_end,
                             bool approx_math, std::span<double> born_tree,
                             perf::WorkCounters& counters) {
  OCTGB_CHECK(node_s.size() == ta.tree.nodes().size());
  OCTGB_CHECK(atom_s.size() == ta.num_atoms());
  OCTGB_CHECK(born_tree.size() == ta.num_atoms());
  if (ta.tree.empty() || atom_begin >= atom_end) return;
  PushPass pass{ta,       node_s,      atom_s,   atom_begin,
                atom_end, approx_math, born_tree, &counters};
  LocalCounts lc;
  pass.descend(0, 0.0, lc);
  pass.flush(lc);
}

}  // namespace octgb::core
