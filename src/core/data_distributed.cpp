#include "octgb/core/data_distributed.hpp"

#include <algorithm>
#include <cmath>

#include "octgb/core/gb_params.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

namespace {

using octree::Octree;

/// Replay the APPROX-INTEGRALS admissibility decisions for one T_Q leaf,
/// recording the T_A leaves reached exactly.
void near_ta_descend(const Octree& ta_tree, const Octree::Node& q,
                     double threshold, std::uint32_t a_id,
                     std::vector<bool>& touched) {
  const Octree::Node& a = ta_tree.node(a_id);
  const double d = geom::dist(a.centroid, q.centroid);
  if (born_far_enough(d, a.radius, q.radius, threshold)) return;
  if (a.is_leaf()) {
    touched[a_id] = true;
    return;
  }
  for (std::uint8_t c = 0; c < a.child_count; ++c)
    near_ta_descend(ta_tree, q, threshold, a.first_child + c, touched);
}

void near_epol_descend(const Octree& tree, const Octree::Node& v,
                       double eps, std::uint32_t u_id,
                       std::vector<bool>& touched) {
  const Octree::Node& u = tree.node(u_id);
  if (u.is_leaf()) {
    touched[u_id] = true;
    return;
  }
  const double d = geom::dist(u.centroid, v.centroid);
  if (epol_far_enough(d, u.radius, v.radius, eps)) return;
  for (std::uint8_t c = 0; c < u.child_count; ++c)
    near_epol_descend(tree, v, eps, u.first_child + c, touched);
}

std::vector<std::uint32_t> touched_to_ids(const std::vector<bool>& touched) {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 0; id < touched.size(); ++id)
    if (touched[id]) ids.push_back(id);
  return ids;
}

/// Payload bytes per atom a peer must ship: position + charge + radius.
constexpr std::size_t kAtomPayloadBytes = sizeof(geom::Vec3) + 2 * sizeof(double);
/// Payload bytes per quadrature point: position + weighted normal + weight.
constexpr std::size_t kQPointPayloadBytes =
    2 * sizeof(geom::Vec3) + sizeof(double);
/// Skeleton bytes per octree node (centroid, radius, ranges, links).
constexpr std::size_t kSkeletonNodeBytes = sizeof(Octree::Node);

}  // namespace

std::size_t DataDistResult::max_rank_bytes() const {
  std::size_t best = 0;
  for (const auto& r : ranks)
    best = std::max(best, r.owned_bytes + r.ghost_bytes + r.skeleton_bytes);
  return best;
}

std::vector<std::uint32_t> collect_near_ta_leaves(
    const AtomsTree& ta, const QPointsTree& tq,
    std::span<const std::uint32_t> q_leaf_ids, double eps_born,
    bool strict_criterion) {
  const double threshold = strict_criterion
                               ? std::pow(1.0 + eps_born, 1.0 / 6.0)
                               : 1.0 + eps_born;
  std::vector<bool> touched(ta.tree.nodes().size(), false);
  for (std::uint32_t q_id : q_leaf_ids)
    near_ta_descend(ta.tree, tq.tree.node(q_id), threshold, 0, touched);
  return touched_to_ids(touched);
}

std::vector<std::uint32_t> collect_near_epol_leaves(
    const AtomsTree& ta, std::span<const std::uint32_t> v_leaf_ids,
    double eps_epol) {
  std::vector<bool> touched(ta.tree.nodes().size(), false);
  for (std::uint32_t v_id : v_leaf_ids)
    near_epol_descend(ta.tree, ta.tree.node(v_id), eps_epol, 0, touched);
  return touched_to_ids(touched);
}

DataDistResult run_data_distributed(const GBEngine& engine, int ranks,
                                    const perf::MachineModel& machine) {
  OCTGB_CHECK_MSG(ranks >= 1, "need at least one rank");
  const auto& ta = engine.atoms_tree();
  const auto& tq = engine.qpoints_tree();
  const auto& q_leaves = engine.q_leaves();
  const auto& a_leaves = engine.a_leaves();
  const auto n_atoms = engine.num_atoms();

  DataDistResult result;
  result.ranks.resize(ranks);

  // Physics: identical to the replicated algorithm — run the standard
  // phases with the same segmentation (a real deployment would run them
  // over the exchanged ghosts; the kernels and numbers are the same).
  std::vector<double> node_s(engine.num_ta_nodes(), 0.0);
  std::vector<double> atom_s(n_atoms, 0.0);
  std::vector<double> born_tree(n_atoms, 0.0);
  perf::WorkCounters work;
  for (int r = 0; r < ranks; ++r)
    engine.phase_integrals(even_segment(q_leaves.size(), ranks, r), node_s,
                           atom_s, work);
  engine.phase_push({0, static_cast<std::uint32_t>(n_atoms)}, node_s, atom_s,
                    born_tree, work);
  const EpolContext ctx = engine.build_epol_context(born_tree);
  double epol = 0.0;
  for (int r = 0; r < ranks; ++r)
    epol += engine.phase_epol(ctx, born_tree,
                              even_segment(a_leaves.size(), ranks, r), work);
  result.epol = epol;

  // Accounting: owned payloads + measured ghost sets per rank.
  const std::size_t skeleton =
      (ta.tree.nodes().size() + tq.tree.nodes().size()) * kSkeletonNodeBytes;
  double worst_ghost_bytes = 0.0;
  for (int r = 0; r < ranks; ++r) {
    DataDistRank& rank = result.ranks[r];
    const Segment qs = even_segment(q_leaves.size(), ranks, r);
    const Segment as = even_segment(a_leaves.size(), ranks, r);
    const Segment atoms = even_segment(n_atoms, ranks, r);

    rank.owned_atoms = atoms.size();
    for (std::uint32_t li = qs.begin; li < qs.end; ++li)
      rank.owned_qpoints += tq.tree.node(q_leaves[li]).size();
    rank.owned_bytes = rank.owned_atoms * kAtomPayloadBytes +
                       rank.owned_qpoints * kQPointPayloadBytes;
    rank.skeleton_bytes = skeleton;

    // Born-phase ghosts: atoms of T_A leaves the rank's Q-leaf traversal
    // reaches exactly, minus the atoms it already owns.
    const auto near_born = collect_near_ta_leaves(
        ta, tq,
        std::span<const std::uint32_t>(q_leaves).subspan(qs.begin, qs.size()),
        engine.config().approx.eps_born,
        engine.config().approx.strict_born_criterion);
    // Epol-phase ghosts: atoms (positions + charges + Born radii) of the
    // leaves its V-leaf traversal reaches.
    const auto near_epol = collect_near_epol_leaves(
        ta,
        std::span<const std::uint32_t>(a_leaves).subspan(as.begin, as.size()),
        engine.config().approx.eps_epol);

    std::vector<bool> ghost_atom(n_atoms, false);
    auto mark = [&](const std::vector<std::uint32_t>& leaves_hit) {
      for (std::uint32_t id : leaves_hit) {
        const auto& node = ta.tree.node(id);
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
          if (i < atoms.begin || i >= atoms.end) ghost_atom[i] = true;
        }
      }
    };
    mark(near_born);
    mark(near_epol);
    for (std::size_t i = 0; i < n_atoms; ++i)
      if (ghost_atom[i]) ++rank.ghost_atoms;
    rank.ghost_bytes = rank.ghost_atoms * (kAtomPayloadBytes +
                                           sizeof(double) /* Born radius */);
    worst_ghost_bytes =
        std::max(worst_ghost_bytes, static_cast<double>(rank.ghost_bytes));
  }

  // Ghost exchange: point-to-point pulls, priced as one inter-node
  // transfer of the worst rank's ghost volume (critical path) plus a
  // latency per peer.
  result.ghost_exchange_seconds =
      worst_ghost_bytes * machine.net_tw +
      static_cast<double>(std::max(0, ranks - 1)) * machine.net_ts;

  result.replicated_bytes_per_rank =
      engine.footprint_bytes() +
      (engine.num_ta_nodes() + 2 * n_atoms) * sizeof(double);
  return result;
}

}  // namespace octgb::core
