#include "octgb/core/trees.hpp"

#include "octgb/trace/trace.hpp"

namespace octgb::core {

AtomsTree AtomsTree::build(const mol::Molecule& mol,
                           const octree::BuildParams& params) {
  OCTGB_SPAN("tree.build.atoms");
  AtomsTree t;
  const auto atoms = mol.atoms();
  std::vector<geom::Vec3> centers(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) centers[i] = atoms[i].pos;
  t.tree = octree::Octree::build(centers, params);
  const auto idx = t.tree.point_index();
  t.charge.resize(atoms.size());
  t.vdw_radius.resize(atoms.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos) {
    t.charge[pos] = atoms[idx[pos]].charge;
    t.vdw_radius[pos] = atoms[idx[pos]].radius;
  }
  t.soa_x.resize(atoms.size());
  t.soa_y.resize(atoms.size());
  t.soa_z.resize(atoms.size());
  split_soa(t.tree.points(), t.soa_x, t.soa_y, t.soa_z);
  return t;
}

std::size_t AtomsTree::footprint_bytes() const {
  return tree.footprint_bytes() + charge.capacity() * sizeof(double) +
         vdw_radius.capacity() * sizeof(double) +
         (soa_x.capacity() + soa_y.capacity() + soa_z.capacity()) *
             sizeof(double);
}

QPointsTree QPointsTree::build(const surface::Surface& surf,
                               const octree::BuildParams& params) {
  OCTGB_SPAN("tree.build.qpoints");
  QPointsTree t;
  t.tree = octree::Octree::build(surf.positions, params);
  const auto idx = t.tree.point_index();
  t.wnormal.resize(idx.size());
  t.weight.resize(idx.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos) {
    const auto i = idx[pos];
    t.wnormal[pos] = surf.normals[i] * surf.weights[i];
    t.weight[pos] = surf.weights[i];
  }
  const auto nodes = t.tree.nodes();
  t.node_wnormal.resize(nodes.size());
  // Children come after parents in the flat array, so a reverse sweep can
  // aggregate bottom-up; leaves sum their own points.
  for (std::size_t id = nodes.size(); id-- > 0;) {
    const auto& n = nodes[id];
    geom::Vec3 s;
    if (n.is_leaf()) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) s += t.wnormal[i];
    } else {
      for (std::uint8_t c = 0; c < n.child_count; ++c)
        s += t.node_wnormal[n.first_child + c];
    }
    t.node_wnormal[id] = s;
  }
  t.soa_x.resize(idx.size());
  t.soa_y.resize(idx.size());
  t.soa_z.resize(idx.size());
  split_soa(t.tree.points(), t.soa_x, t.soa_y, t.soa_z);
  t.soa_wnx.resize(idx.size());
  t.soa_wny.resize(idx.size());
  t.soa_wnz.resize(idx.size());
  split_soa(t.wnormal, t.soa_wnx, t.soa_wny, t.soa_wnz);
  return t;
}

std::size_t QPointsTree::footprint_bytes() const {
  return tree.footprint_bytes() + wnormal.capacity() * sizeof(geom::Vec3) +
         weight.capacity() * sizeof(double) +
         node_wnormal.capacity() * sizeof(geom::Vec3) +
         (soa_x.capacity() + soa_y.capacity() + soa_z.capacity() +
          soa_wnx.capacity() + soa_wny.capacity() + soa_wnz.capacity()) *
             sizeof(double);
}

}  // namespace octgb::core
