#include "octgb/core/trees.hpp"

#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

namespace {

/// Round a double plane into its float mirror (mixed-precision streams).
void narrow_plane(std::span<const double> src, std::vector<float>& dst) {
  dst.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    dst[i] = static_cast<float>(src[i]);
}

}  // namespace

AtomsTree AtomsTree::build(const mol::Molecule& mol,
                           const octree::BuildParams& params) {
  OCTGB_SPAN("tree.build.atoms");
  AtomsTree t;
  const auto atoms = mol.atoms();
  std::vector<geom::Vec3> centers(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) centers[i] = atoms[i].pos;
  t.tree = octree::Octree::build(centers, params);
  const auto idx = t.tree.point_index();
  t.charge.resize(atoms.size());
  t.vdw_radius.resize(atoms.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos) {
    t.charge[pos] = atoms[idx[pos]].charge;
    t.vdw_radius[pos] = atoms[idx[pos]].radius;
  }
  t.rebuild_derived();
  return t;
}

void AtomsTree::refit(std::span<const geom::Vec3> positions) {
  OCTGB_SPAN("tree.refit.atoms");
  tree.refit(positions);
  rebuild_derived();
}

void AtomsTree::rebuild_derived() {
  // The double coordinate planes live in the octree (written during the
  // build's sort scatter and refreshed by refit/resort) — no gather here;
  // only the float mirrors are derived.
  narrow_plane(tree.soa_x(), soa_xf);
  narrow_plane(tree.soa_y(), soa_yf);
  narrow_plane(tree.soa_z(), soa_zf);
  narrow_plane(charge, charge_f);
}

std::size_t AtomsTree::footprint_bytes() const {
  return tree.footprint_bytes() + charge.capacity() * sizeof(double) +
         vdw_radius.capacity() * sizeof(double) +
         (soa_xf.capacity() + soa_yf.capacity() + soa_zf.capacity() +
          charge_f.capacity()) *
             sizeof(float);
}

QPointsTree QPointsTree::build(const surface::Surface& surf,
                               const octree::BuildParams& params) {
  OCTGB_SPAN("tree.build.qpoints");
  QPointsTree t;
  t.tree = octree::Octree::build(surf.positions, params);
  t.wnormal.resize(surf.size());
  t.weight.resize(surf.size());
  t.assign_surface(surf);
  t.rebuild_derived();
  return t;
}

void QPointsTree::refit(const surface::Surface& surf) {
  OCTGB_SPAN("tree.refit.qpoints");
  OCTGB_CHECK_MSG(surf.size() == num_points(),
                  "surface point count changed; rebuild the QPointsTree");
  tree.refit(surf.positions);
  assign_surface(surf);
  rebuild_derived();
}

void QPointsTree::assign_surface(const surface::Surface& surf) {
  const auto idx = tree.point_index();
  for (std::size_t pos = 0; pos < idx.size(); ++pos) {
    const auto i = idx[pos];
    wnormal[pos] = surf.normals[i] * surf.weights[i];
    weight[pos] = surf.weights[i];
  }
}

void QPointsTree::rebuild_derived() {
  const auto nodes = tree.nodes();
  node_wnormal.resize(nodes.size());
  // Children come after parents in the flat array, so a reverse sweep can
  // aggregate bottom-up; leaves sum their own points.
  for (std::size_t id = nodes.size(); id-- > 0;) {
    const auto& n = nodes[id];
    geom::Vec3 s;
    if (n.is_leaf()) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) s += wnormal[i];
    } else {
      for (std::uint8_t c = 0; c < n.child_count; ++c)
        s += node_wnormal[n.first_child + c];
    }
    node_wnormal[id] = s;
  }
  // Coordinate planes come straight from the octree (see AtomsTree); the
  // weighted-normal payload still splits into its own SoA planes here.
  soa_wnx.resize(wnormal.size());
  soa_wny.resize(wnormal.size());
  soa_wnz.resize(wnormal.size());
  split_soa(wnormal, soa_wnx, soa_wny, soa_wnz);
  narrow_plane(tree.soa_x(), soa_xf);
  narrow_plane(tree.soa_y(), soa_yf);
  narrow_plane(tree.soa_z(), soa_zf);
  narrow_plane(soa_wnx, soa_wnxf);
  narrow_plane(soa_wny, soa_wnyf);
  narrow_plane(soa_wnz, soa_wnzf);
}

std::size_t QPointsTree::footprint_bytes() const {
  return tree.footprint_bytes() + wnormal.capacity() * sizeof(geom::Vec3) +
         weight.capacity() * sizeof(double) +
         node_wnormal.capacity() * sizeof(geom::Vec3) +
         (soa_wnx.capacity() + soa_wny.capacity() + soa_wnz.capacity()) *
             sizeof(double) +
         (soa_xf.capacity() + soa_yf.capacity() + soa_zf.capacity() +
          soa_wnxf.capacity() + soa_wnyf.capacity() + soa_wnzf.capacity()) *
             sizeof(float);
}

Preprocessed Preprocessed::build(const mol::Molecule& mol,
                                 const surface::Surface& surf,
                                 const octree::BuildParams& atoms_params,
                                 const octree::BuildParams& qpoints_params) {
  OCTGB_SPAN("tree.build.preprocessed");
  Preprocessed pre;
  pre.atoms = AtomsTree::build(mol, atoms_params);
  pre.qpoints = QPointsTree::build(surf, qpoints_params);
  return pre;
}

}  // namespace octgb::core
