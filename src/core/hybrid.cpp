#include "octgb/core/hybrid.hpp"

#include <mutex>

#include "octgb/perf/stats.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

HybridResult run_hybrid(const GBEngine& engine, const HybridConfig& config) {
  if (engine.config().trace.enabled) trace::Tracer::instance().set_enabled(true);
  OCTGB_CHECK_MSG(config.ranks >= 1, "need at least one rank");
  OCTGB_CHECK_MSG(config.threads_per_rank >= 1, "need at least one thread");

  const int P = config.ranks;
  const auto n_nodes = engine.num_ta_nodes();
  const auto n_atoms = engine.num_atoms();
  const auto& q_leaves = engine.q_leaves();
  const auto& a_leaves = engine.a_leaves();

  // Precompute the static division (identical on every rank in the paper;
  // computed once here since it is deterministic).
  std::vector<Segment> q_segments(P), a_leaf_segments(P), atom_segments(P);
  if (config.weighted_division) {
    auto wq = weighted_leaf_segments(engine.qpoints_tree().tree, q_leaves, P);
    auto wa = weighted_leaf_segments(engine.atoms_tree().tree, a_leaves, P);
    for (int i = 0; i < P; ++i) {
      q_segments[i] = wq[i];
      a_leaf_segments[i] = wa[i];
    }
  } else {
    for (int i = 0; i < P; ++i) {
      q_segments[i] = even_segment(q_leaves.size(), P, i);
      a_leaf_segments[i] = even_segment(a_leaves.size(), P, i);
    }
  }
  for (int i = 0; i < P; ++i)
    atom_segments[i] = even_segment(n_atoms, P, i);

  HybridResult result;
  result.work_per_rank.resize(P);
  std::vector<double> final_epol(P, 0.0);
  std::vector<std::vector<double>> final_born(P);
  std::mutex result_mu;

  perf::Timer timer;
  mpp::Runtime::Options opts;
  opts.ranks = P;
  opts.topology = config.topology;

  result.comm_per_rank = mpp::Runtime::run(opts, [&](mpp::Comm& comm) {
    const int r = comm.rank();
    perf::WorkCounters& work = result.work_per_rank[r];

    // Per-rank scheduler: OCT_MPI+CILK when p > 1.
    std::unique_ptr<ws::Scheduler> sched;
    if (config.threads_per_rank > 1)
      sched = std::make_unique<ws::Scheduler>(config.threads_per_rank);

    std::vector<double> node_s(n_nodes, 0.0);
    std::vector<double> atom_s(n_atoms, 0.0);
    std::vector<double> born_tree(n_atoms, 0.0);
    double epol_part = 0.0;

    auto step2 = [&] {
      engine.phase_integrals(q_segments[r], node_s, atom_s, work);
    };
    auto step4 = [&] {
      engine.phase_push(atom_segments[r], node_s, atom_s, born_tree, work);
    };

    // Step 2 (node-based division of T_Q leaves).
    {
      OCTGB_SPAN("hybrid.integrals");
      if (sched)
        sched->run(step2);
      else
        step2();
    }

    // Step 3: gather everyone's partial integrals.
    {
      OCTGB_SPAN("hybrid.allreduce.integrals");
      comm.allreduce_sum(std::span<double>(node_s));
      comm.allreduce_sum(std::span<double>(atom_s));
    }

    // Step 4: Born radii for my atom segment.
    {
      OCTGB_SPAN("hybrid.push");
      if (sched)
        sched->run(step4);
      else
        step4();
    }

    // Step 5: exchange Born radii. Atom segments are contiguous in tree
    // order and rank-ordered, so the concatenation is the full array.
    {
      OCTGB_SPAN("hybrid.allgather.born");
      const auto seg = atom_segments[r];
      std::vector<double> all = comm.allgatherv(std::span<const double>(
          born_tree.data() + seg.begin, seg.size()));
      OCTGB_CHECK(all.size() == n_atoms);
      born_tree = std::move(all);
    }

    // Step 6: partial energy (node- or atom-based division).
    {
      OCTGB_SPAN("hybrid.epol");
      const EpolContext ctx = engine.build_epol_context(born_tree);
      auto step6 = [&] {
        epol_part = config.atom_based_epol
                        ? engine.phase_epol_atom_based(ctx, born_tree,
                                                       atom_segments[r], work)
                        : engine.phase_epol(ctx, born_tree,
                                            a_leaf_segments[r], work);
      };
      if (sched)
        sched->run(step6);
      else
        step6();
    }

    // Step 7: total energy on every rank (Allreduce, as in Fig. 4 the
    // master accumulates; allreduce also covers the bcast the examples
    // want).
    double epol = 0.0;
    {
      OCTGB_SPAN("hybrid.reduce.epol");
      epol = comm.allreduce_sum(epol_part);
    }

    if (sched) {
      const auto st = sched->stats();
      work.spawns += st.spawns;
      work.steals += st.steals;
    }

    std::lock_guard<std::mutex> lock(result_mu);
    final_epol[r] = epol;
    final_born[r] = std::move(born_tree);
  });

  result.wall_seconds = timer.seconds();
  result.epol = final_epol[0];
  for (int r = 1; r < P; ++r)
    OCTGB_CHECK_MSG(final_epol[r] == final_epol[0],
                    "ranks disagree on the reduced energy");
  result.born = engine.born_to_input_order(final_born[0]);
  for (const auto& w : result.work_per_rank) result.work_total += w;

  // Replicated-data accounting: each real process holds the molecule data
  // (trees + payloads) plus its private working arrays.
  result.bytes_per_rank =
      engine.footprint_bytes() +
      (n_nodes + 2 * n_atoms) * sizeof(double) /* node_s, atom_s, born */ +
      std::size_t{65536} * (config.threads_per_rank - 1) /* ws workers */;
  return result;
}

}  // namespace octgb::core
