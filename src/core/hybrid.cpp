#include "octgb/core/hybrid.hpp"

#include <atomic>
#include <mutex>
#include <optional>

#include "octgb/core/checkpoint.hpp"
#include "octgb/perf/stats.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

namespace {

/// The static Fig. 4 work division: identical on every rank (the paper's
/// replicated-data processes each compute it locally, and so does every
/// rank process under the out-of-process transport).
struct Division {
  std::vector<Segment> q_segments;
  std::vector<Segment> a_leaf_segments;
  std::vector<Segment> atom_segments;
};

Division make_division(const GBEngine& engine, const HybridConfig& config) {
  const int P = config.ranks;
  const auto& q_leaves = engine.q_leaves();
  const auto& a_leaves = engine.a_leaves();
  Division d;
  d.q_segments.resize(P);
  d.a_leaf_segments.resize(P);
  d.atom_segments.resize(P);
  if (config.weighted_division) {
    auto wq = weighted_leaf_segments(engine.qpoints_tree().tree, q_leaves, P);
    auto wa = weighted_leaf_segments(engine.atoms_tree().tree, a_leaves, P);
    for (int i = 0; i < P; ++i) {
      d.q_segments[i] = wq[i];
      d.a_leaf_segments[i] = wa[i];
    }
  } else {
    for (int i = 0; i < P; ++i) {
      d.q_segments[i] = even_segment(q_leaves.size(), P, i);
      d.a_leaf_segments[i] = even_segment(a_leaves.size(), P, i);
    }
  }
  for (int i = 0; i < P; ++i)
    d.atom_segments[i] = even_segment(engine.num_atoms(), P, i);
  return d;
}

}  // namespace

RankOutcome run_hybrid_rank(const GBEngine& engine,
                            const HybridConfig& config, mpp::Comm& comm) {
  OCTGB_CHECK_MSG(comm.size() == config.ranks,
                  "comm has " << comm.size() << " ranks, config wants "
                              << config.ranks);
  const int r = comm.rank();
  const auto n_nodes = engine.num_ta_nodes();
  const auto n_atoms = engine.num_atoms();
  const Division div = make_division(engine, config);

  RankOutcome out;
  perf::WorkCounters& work = out.work;

  // Per-rank scheduler: OCT_MPI+CILK when p > 1.
  std::unique_ptr<ws::Scheduler> sched;
  if (config.threads_per_rank > 1)
    sched = std::make_unique<ws::Scheduler>(config.threads_per_rank);

  std::vector<double> node_s(n_nodes, 0.0);
  std::vector<double> atom_s(n_atoms, 0.0);
  std::vector<double> born_tree(n_atoms, 0.0);
  double epol_part = 0.0;

  auto step2 = [&] {
    engine.phase_integrals(div.q_segments[r], node_s, atom_s, work);
  };
  auto step4 = [&] {
    engine.phase_push(div.atom_segments[r], node_s, atom_s, born_tree,
                      work);
  };

  // Step 2 (node-based division of T_Q leaves).
  {
    OCTGB_SPAN("hybrid.integrals");
    if (sched)
      sched->run(step2);
    else
      step2();
  }

  // Step 3: gather everyone's partial integrals.
  {
    OCTGB_SPAN("hybrid.allreduce.integrals");
    comm.allreduce_sum(std::span<double>(node_s));
    comm.allreduce_sum(std::span<double>(atom_s));
  }

  // Step 4: Born radii for my atom segment.
  {
    OCTGB_SPAN("hybrid.push");
    if (sched)
      sched->run(step4);
    else
      step4();
  }

  // Step 5: exchange Born radii. Atom segments are contiguous in tree
  // order and rank-ordered, so the concatenation is the full array.
  {
    OCTGB_SPAN("hybrid.allgather.born");
    const auto seg = div.atom_segments[r];
    std::vector<double> all = comm.allgatherv(std::span<const double>(
        born_tree.data() + seg.begin, seg.size()));
    OCTGB_CHECK(all.size() == n_atoms);
    born_tree = std::move(all);
  }

  // Step 6: partial energy (node- or atom-based division).
  {
    OCTGB_SPAN("hybrid.epol");
    const EpolContext ctx = engine.build_epol_context(born_tree);
    auto step6 = [&] {
      epol_part = config.atom_based_epol
                      ? engine.phase_epol_atom_based(
                            ctx, born_tree, div.atom_segments[r], work)
                      : engine.phase_epol(ctx, born_tree,
                                          div.a_leaf_segments[r], work);
    };
    if (sched)
      sched->run(step6);
    else
      step6();
  }

  // Step 7: total energy on every rank (Allreduce, as in Fig. 4 the
  // master accumulates; allreduce also covers the bcast the examples
  // want).
  {
    OCTGB_SPAN("hybrid.reduce.epol");
    out.epol = comm.allreduce_sum(epol_part);
  }

  if (sched) {
    const auto st = sched->stats();
    work.spawns += st.spawns;
    work.steals += st.steals;
  }
  out.born_tree = std::move(born_tree);
  return out;
}

HybridResult run_hybrid(const GBEngine& engine, const HybridConfig& config) {
  if (engine.config().trace.enabled) trace::Tracer::instance().set_enabled(true);
  OCTGB_CHECK_MSG(config.ranks >= 1, "need at least one rank");
  OCTGB_CHECK_MSG(config.threads_per_rank >= 1, "need at least one thread");

  const int P = config.ranks;
  HybridResult result;
  result.work_per_rank.resize(P);
  std::vector<double> final_epol(P, 0.0);
  std::vector<std::vector<double>> final_born(P);
  std::mutex result_mu;

  perf::Timer timer;
  mpp::Runtime::Options opts;
  opts.ranks = P;
  opts.topology = config.topology;

  result.comm_per_rank = mpp::Runtime::run(opts, [&](mpp::Comm& comm) {
    RankOutcome out = run_hybrid_rank(engine, config, comm);
    const int r = comm.rank();
    std::lock_guard<std::mutex> lock(result_mu);
    result.work_per_rank[r] = out.work;
    final_epol[r] = out.epol;
    final_born[r] = std::move(out.born_tree);
  });

  result.wall_seconds = timer.seconds();
  result.epol = final_epol[0];
  for (int r = 1; r < P; ++r)
    OCTGB_CHECK_MSG(final_epol[r] == final_epol[0],
                    "ranks disagree on the reduced energy");
  result.born = engine.born_to_input_order(final_born[0]);
  for (const auto& w : result.work_per_rank) result.work_total += w;

  // Replicated-data accounting: each real process holds the molecule data
  // (trees + payloads) plus its private working arrays.
  const auto n_nodes = engine.num_ta_nodes();
  const auto n_atoms = engine.num_atoms();
  result.bytes_per_rank =
      engine.footprint_bytes() +
      (n_nodes + 2 * n_atoms) * sizeof(double) /* node_s, atom_s, born */ +
      std::size_t{65536} * (config.threads_per_rank - 1) /* ws workers */;
  return result;
}

namespace {

/// Phase names double as checkpoint-key prefixes.
constexpr const char* kPhaseNames[3] = {"integrals", "born", "epol"};

/// Tags for the done/release control exchange. Unique per (phase, attempt,
/// kind), so a message from an abandoned attempt can never be consumed by
/// a later one — it just sits in the mailbox, harmless. Stays below the
/// collective tag base for any sane attempt count.
int control_tag(int phase, int attempt, int kind) {
  return phase * 65536 + attempt * 2 + kind + 1;
}

}  // namespace

RankOutcome run_elastic_rank(const GBEngine& engine,
                             const ElasticConfig& config, mpp::Comm& comm,
                             CheckpointStore& store) {
  const HybridConfig& hc = config.hybrid;
  OCTGB_CHECK_MSG(comm.size() == hc.ranks,
                  "comm has " << comm.size() << " ranks, config wants "
                              << hc.ranks);
  OCTGB_CHECK_MSG(config.max_attempts <= 32768,
                  "max_attempts would overflow the control-tag space");
  const int P = hc.ranks;
  const int me = comm.rank();
  const auto n_nodes = engine.num_ta_nodes();
  const auto n_atoms = engine.num_atoms();
  // The FIXED task grid: the original P segments, identical to
  // run_hybrid's static division. Deaths never change task boundaries —
  // only who computes which task — which is what makes recovery
  // bit-identical.
  const Division div = make_division(engine, hc);

  RankOutcome out;
  perf::WorkCounters& work = out.work;

  std::unique_ptr<ws::Scheduler> sched;
  if (hc.threads_per_rank > 1)
    sched = std::make_unique<ws::Scheduler>(hc.threads_per_rank);
  auto run_sched = [&](const std::function<void()>& fn) {
    if (sched)
      sched->run(fn);
    else
      fn();
  };

  // Phase inputs, rebuilt identically on every rank from the store.
  std::vector<double> node_s, atom_s, born_tree;
  std::optional<EpolContext> epol_ctx;

  auto compute_task = [&](int phase, int t) {
    std::vector<double> data;
    switch (phase) {
      case 0: {
        std::vector<double> ns(n_nodes, 0.0), as(n_atoms, 0.0);
        run_sched(
            [&] { engine.phase_integrals(div.q_segments[t], ns, as, work); });
        data.reserve(n_nodes + n_atoms);
        data.insert(data.end(), ns.begin(), ns.end());
        data.insert(data.end(), as.begin(), as.end());
        break;
      }
      case 1: {
        std::vector<double> bt(n_atoms, 0.0);
        run_sched([&] {
          engine.phase_push(div.atom_segments[t], node_s, atom_s, bt, work);
        });
        const auto seg = div.atom_segments[t];
        data.assign(bt.begin() + seg.begin,
                    bt.begin() + seg.begin + seg.size());
        break;
      }
      default: {
        double part = 0.0;
        run_sched([&] {
          part = hc.atom_based_epol
                     ? engine.phase_epol_atom_based(
                           *epol_ctx, born_tree, div.atom_segments[t], work)
                     : engine.phase_epol(*epol_ctx, born_tree,
                                         div.a_leaf_segments[t], work);
        });
        data.push_back(part);
        break;
      }
    }
    return data;
  };

  auto missing_tasks = [&](int phase) {
    std::vector<int> missing;
    for (int t = 0; t < P; ++t)
      if (!store.contains(CheckpointStore::key_of(
              kPhaseNames[phase], static_cast<std::uint64_t>(t))))
        missing.push_back(t);
    return missing;
  };

  auto do_task = [&](int phase, int t) {
    // Fault point before the compute: keeps the heartbeat fresh and
    // gives scheduled stalls/kills a deterministic place to land even
    // when a phase completes without any control traffic.
    comm.poll();
    if (store.contains(CheckpointStore::key_of(
            kPhaseNames[phase], static_cast<std::uint64_t>(t))))
      return;
    SuperstepCheckpoint c;
    c.phase = kPhaseNames[phase];
    c.task = static_cast<std::uint64_t>(t);
    c.data = compute_task(phase, t);
    store.put_checkpoint(c);
    ++out.tasks_computed;
    // Task t's original owner is rank t; doing someone else's task is
    // recovery (or duplicated) work.
    if (t != me) ++out.tasks_recomputed;
  };

  // Drive one phase to durability. Correctness rests on the store alone:
  // the phase is complete exactly when all P task checkpoints exist.
  // Messages (done → coordinator, release → workers) are only a fast
  // path; any lost/corrupt/dead-peer control exchange degrades to
  // re-checking the store and re-dividing the missing tasks over the
  // ranks still alive.
  auto sync_phase = [&](int phase) {
    int attempt = 0;
    int last_epoch = comm.failure_epoch();
    for (;;) {
      OCTGB_CHECK_MSG(attempt < config.max_attempts,
                      "elastic phase '" << kPhaseNames[phase]
                                        << "' made no progress after "
                                        << attempt << " attempts");
      comm.poll();
      const auto alive = comm.alive_ranks();
      const int epoch = comm.failure_epoch();
      if (epoch != last_epoch) {
        trace::instant("recovery.replan");
        last_epoch = epoch;
      }
      int my_idx = 0;
      for (std::size_t i = 0; i < alive.size(); ++i)
        if (alive[i] == me) my_idx = static_cast<int>(i);
      auto missing = missing_tasks(phase);
      // Re-run the work division over the reduced rank set. A missing
      // task stays with its natural owner (rank == task index) while
      // that owner is alive — a slow rank is not a failed rank, and
      // stealing its work would waste compute and inflate the
      // recompute counter. Only orphaned tasks (owner dead) are
      // re-divided: the i-th orphan goes to the i-th (mod |alive|)
      // survivor.
      std::size_t orphan_idx = 0;
      for (int t : missing) {
        const bool owner_alive = comm.is_alive(t);
        if (owner_alive) {
          if (t == me) do_task(phase, t);
        } else {
          if (static_cast<int>(orphan_idx % alive.size()) == my_idx)
            do_task(phase, t);
          ++orphan_idx;
        }
      }
      if (missing_tasks(phase).empty()) break;
      const int coord = alive.front();
      if (me == coord) {
        // Collect done notices so we block-with-deadline instead of
        // spinning; outcome is advisory (the store is authoritative).
        for (int r : alive) {
          if (r == me || !comm.is_alive(r)) continue;
          (void)comm.recv_value_deadline<int>(
              r, control_tag(phase, attempt, 0), config.control_deadline_ms);
        }
        if (missing_tasks(phase).empty()) break;
      } else {
        comm.send_value(coord, control_tag(phase, attempt, 0), me);
        int token = 0;
        mpp::RetryPolicy policy;
        policy.attempts = 2;
        policy.deadline_ms = config.control_deadline_ms;
        auto res = comm.recv_bytes_retry(coord,
                                         control_tag(phase, attempt, 1),
                                         &token, sizeof(token), policy);
        if (!res) ++out.control_retries;
      }
      ++attempt;
    }
    // Fast-path wakeup for workers still blocked on this attempt's
    // release tag; purely opportunistic (mismatched attempts time out
    // and find the store complete).
    const auto alive = comm.alive_ranks();
    if (!alive.empty() && alive.front() == me)
      for (int r : alive)
        if (r != me) comm.send_value(r, control_tag(phase, attempt, 1), 0);
  };

  // Phase 1: approximate integrals over the fixed T_Q-leaf segments.
  {
    OCTGB_SPAN("elastic.integrals");
    sync_phase(0);
  }
  // Ordered combine (ascending task index) — every rank derives the
  // exact same node/atom sums regardless of who computed what.
  node_s.assign(n_nodes, 0.0);
  atom_s.assign(n_atoms, 0.0);
  for (int t = 0; t < P; ++t) {
    auto c = store.get_checkpoint(kPhaseNames[0],
                                  static_cast<std::uint64_t>(t));
    OCTGB_CHECK_MSG(c && c->data.size() == n_nodes + n_atoms,
                    "integrals checkpoint " << t << " lost or corrupt");
    for (std::size_t i = 0; i < n_nodes; ++i) node_s[i] += c->data[i];
    for (std::size_t i = 0; i < n_atoms; ++i)
      atom_s[i] += c->data[n_nodes + i];
  }

  // Phase 2: Born radii over the fixed atom segments.
  {
    OCTGB_SPAN("elastic.born");
    sync_phase(1);
  }
  born_tree.assign(n_atoms, 0.0);
  for (int t = 0; t < P; ++t) {
    auto c = store.get_checkpoint(kPhaseNames[1],
                                  static_cast<std::uint64_t>(t));
    const auto seg = div.atom_segments[t];
    OCTGB_CHECK_MSG(c && c->data.size() == seg.size(),
                    "born checkpoint " << t << " lost or corrupt");
    std::copy(c->data.begin(), c->data.end(),
              born_tree.begin() + seg.begin);
  }

  // Phase 3: partial energies over the fixed leaf/atom segments.
  epol_ctx.emplace(engine.build_epol_context(born_tree));
  {
    OCTGB_SPAN("elastic.epol");
    sync_phase(2);
  }
  double epol = 0.0;
  for (int t = 0; t < P; ++t) {
    auto c = store.get_checkpoint(kPhaseNames[2],
                                  static_cast<std::uint64_t>(t));
    OCTGB_CHECK_MSG(c && c->data.size() == 1,
                    "epol checkpoint " << t << " lost or corrupt");
    epol += c->data[0];
  }

  if (sched) {
    const auto st = sched->stats();
    work.spawns += st.spawns;
    work.steals += st.steals;
  }
  out.control_retries += comm.retries();
  out.epol = epol;
  out.born_tree = std::move(born_tree);
  return out;
}

ElasticResult run_hybrid_elastic(const GBEngine& engine,
                                 const ElasticConfig& config) {
  if (engine.config().trace.enabled) trace::Tracer::instance().set_enabled(true);
  const HybridConfig& hc = config.hybrid;
  OCTGB_CHECK_MSG(hc.ranks >= 1, "need at least one rank");
  OCTGB_CHECK_MSG(hc.threads_per_rank >= 1, "need at least one thread");

  const int P = hc.ranks;

  // Simulated stable storage, shared by all ranks and surviving any of
  // them (it lives on the launching thread) — unless the caller supplied
  // real (file-backed) storage.
  CheckpointStore local_store;
  CheckpointStore& store =
      config.store != nullptr ? *config.store : local_store;

  ElasticResult result;
  result.work_per_rank.resize(P);
  std::atomic<std::uint64_t> tasks_computed{0};
  std::atomic<std::uint64_t> tasks_recomputed{0};
  std::atomic<std::uint64_t> control_retries{0};
  std::vector<std::uint8_t> done_flag(P, 0);
  std::vector<double> final_epol(P, 0.0);
  std::vector<std::vector<double>> final_born(P);
  std::mutex result_mu;

  perf::Timer timer;
  mpp::Runtime::Options opts;
  opts.ranks = P;
  opts.topology = hc.topology;
  opts.checksum = config.checksum;
  opts.fault_plan = config.fault_plan;
  opts.fault_stats_out = &result.faults;

  result.comm_per_rank = mpp::Runtime::run(opts, [&](mpp::Comm& comm) {
    const int me = comm.rank();
    RankOutcome out = run_elastic_rank(engine, config, comm, store);
    tasks_computed.fetch_add(out.tasks_computed, std::memory_order_relaxed);
    tasks_recomputed.fetch_add(out.tasks_recomputed,
                               std::memory_order_relaxed);
    control_retries.fetch_add(out.control_retries,
                              std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(result_mu);
    result.work_per_rank[me] = out.work;
    done_flag[me] = 1;
    final_epol[me] = out.epol;
    final_born[me] = std::move(out.born_tree);
  });

  result.wall_seconds = timer.seconds();
  int first_done = -1;
  for (int r = 0; r < P; ++r) {
    if (!done_flag[r]) {
      result.dead_ranks.push_back(r);
      continue;
    }
    if (first_done < 0) first_done = r;
    OCTGB_CHECK_MSG(final_epol[r] == final_epol[first_done],
                    "survivors disagree on the recovered energy");
    ++result.ranks_completed;
  }
  OCTGB_CHECK_MSG(first_done >= 0, "every rank died; nothing to recover");
  result.epol = final_epol[first_done];
  result.born = engine.born_to_input_order(final_born[first_done]);
  result.tasks_computed = tasks_computed.load();
  result.tasks_recomputed = tasks_recomputed.load();
  result.checkpoint_puts = store.puts();
  result.control_retries = control_retries.load();
  if (trace::enabled()) {
    trace::counter("recovery.tasks_recomputed",
                   static_cast<double>(result.tasks_recomputed));
    trace::counter("recovery.dead_ranks",
                   static_cast<double>(result.dead_ranks.size()));
  }
  return result;
}

}  // namespace octgb::core
