#include "octgb/core/engine.hpp"

#include "octgb/core/dual_traversal.hpp"
#include "octgb/perf/stats.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

GBEngine::GBEngine(const mol::Molecule& mol, const surface::Surface& surf,
                   EngineConfig config)
    : config_(config),
      ta_(AtomsTree::build(mol, config.atoms_tree_params)),
      tq_(QPointsTree::build(surf, config.qpoints_tree_params)) {
  OCTGB_CHECK_MSG(!mol.empty(), "molecule is empty");
  OCTGB_CHECK_MSG(surf.size() > 0, "surface has no quadrature points");
}

GBEngine::GBEngine(Preprocessed pre, EngineConfig config)
    : config_(config),
      ta_(std::move(pre.atoms)),
      tq_(std::move(pre.qpoints)) {
  OCTGB_CHECK_MSG(ta_.num_atoms() > 0, "preprocessed atoms tree is empty");
  OCTGB_CHECK_MSG(tq_.num_points() > 0, "preprocessed qpoints tree is empty");
}

void EvalScratch::prepare(std::size_t n_nodes, std::size_t n_atoms) {
  bool grew = false;
  const auto size_to = [&grew](std::vector<double>& v, std::size_t n,
                               bool zero) {
    const std::size_t cap = v.capacity();
    if (zero)
      v.assign(n, 0.0);
    else
      v.resize(n);
    grew |= v.capacity() > cap;
  };
  size_to(node_s, n_nodes, /*zero=*/true);
  size_to(atom_s, n_atoms, /*zero=*/true);
  size_to(born_tree, n_atoms, /*zero=*/true);
  // born_input is fully overwritten by the remap permutation; no zeroing.
  size_to(born_input, n_atoms, /*zero=*/false);
  if (grew) ++allocation_events;
}

std::size_t EvalScratch::footprint_bytes() const {
  return (node_s.capacity() + atom_s.capacity() + born_tree.capacity() +
          born_input.capacity()) *
             sizeof(double) +
         epol_ctx.footprint_bytes();
}

void GBEngine::phase_integrals(Segment q_leaf_segment,
                               std::span<double> node_s,
                               std::span<double> atom_s,
                               perf::WorkCounters& counters) const {
  OCTGB_SPAN("born.traversal");
  const auto& leaves = q_leaves();
  OCTGB_CHECK(q_leaf_segment.end <= leaves.size());
  approx_integrals(
      ta_, tq_,
      std::span<const std::uint32_t>(leaves).subspan(
          q_leaf_segment.begin, q_leaf_segment.size()),
      config_.approx.eps_born, config_.approx.approx_math, node_s, atom_s,
      counters, config_.approx.strict_born_criterion, config_.approx.kernel);
}

void GBEngine::phase_push(Segment atom_segment,
                          std::span<const double> node_s,
                          std::span<const double> atom_s,
                          std::span<double> born_tree,
                          perf::WorkCounters& counters) const {
  OCTGB_SPAN("born.push");
  push_integrals_to_atoms(ta_, node_s, atom_s, atom_segment.begin,
                          atom_segment.end, config_.approx.approx_math,
                          born_tree, counters);
}

EpolContext GBEngine::build_epol_context(
    std::span<const double> born_tree) const {
  OCTGB_SPAN("epol.context");
  return EpolContext::build(ta_, born_tree, config_.approx.eps_epol);
}

double GBEngine::phase_epol(const EpolContext& ctx,
                            std::span<const double> born_tree,
                            Segment a_leaf_segment,
                            perf::WorkCounters& counters) const {
  OCTGB_SPAN("epol.traversal");
  const auto& leaves = a_leaves();
  OCTGB_CHECK(a_leaf_segment.end <= leaves.size());
  return approx_epol(ta_, ctx, born_tree,
                     std::span<const std::uint32_t>(leaves).subspan(
                         a_leaf_segment.begin, a_leaf_segment.size()),
                     config_.approx.eps_epol, config_.approx.approx_math,
                     config_.gb, counters, config_.approx.kernel);
}

double GBEngine::phase_epol_atom_based(const EpolContext& ctx,
                                       std::span<const double> born_tree,
                                       Segment atom_segment,
                                       perf::WorkCounters& counters) const {
  OCTGB_SPAN("epol.traversal.atom_based");
  return approx_epol_atom_based(
      ta_, ctx, born_tree, atom_segment.begin, atom_segment.end,
      config_.approx.eps_epol, config_.approx.approx_math, config_.gb,
      counters, config_.approx.kernel);
}

std::vector<double> GBEngine::born_to_input_order(
    std::span<const double> born_tree) const {
  std::vector<double> out(born_tree.size());
  born_to_input_order(born_tree, out);
  return out;
}

void GBEngine::born_to_input_order(std::span<const double> born_tree,
                                   std::span<double> out) const {
  const auto idx = ta_.tree.point_index();
  OCTGB_CHECK(born_tree.size() == idx.size() && out.size() == idx.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    out[idx[pos]] = born_tree[pos];
}

namespace {

/// Shared driver for compute()/compute_dual(): the Born integral pass is
/// the only difference. All working memory comes from `scratch`; warm
/// calls on an unchanged tree shape allocate nothing.
template <class IntegralsFn>
EvalResult compute_impl(const GBEngine& engine, EvalScratch& scratch,
                        ws::Scheduler* sched, IntegralsFn&& integrals) {
  if (engine.config().trace.enabled) trace::Tracer::instance().set_enabled(true);
  OCTGB_SPAN("engine.compute");
  EvalResult result;
  perf::Timer timer;

  const auto n_atoms = engine.num_atoms();
  scratch.prepare(engine.num_ta_nodes(), n_atoms);
  double epol = 0.0;

  auto body = [&] {
    integrals(std::span<double>(scratch.node_s),
              std::span<double>(scratch.atom_s), result.work);
    engine.phase_push({0, static_cast<std::uint32_t>(n_atoms)},
                      scratch.node_s, scratch.atom_s, scratch.born_tree,
                      result.work);
    {
      OCTGB_SPAN("epol.context");
      if (scratch.epol_ctx.rebuild(engine.atoms_tree(), scratch.born_tree,
                                   engine.config().approx.eps_epol))
        ++scratch.allocation_events;
    }
    epol = engine.phase_epol(
        scratch.epol_ctx, scratch.born_tree,
        {0, static_cast<std::uint32_t>(engine.a_leaves().size())},
        result.work);
  };

  if (sched) {
    sched->reset_stats();
    sched->run(body);
    const auto st = sched->stats();
    result.work.spawns += st.spawns;
    result.work.steals += st.steals;
  } else {
    body();
  }

  result.epol = epol;
  {
    OCTGB_SPAN("born.remap");
    engine.born_to_input_order(scratch.born_tree, scratch.born_input);
  }
  result.born = scratch.born_input;
  result.wall_seconds = timer.seconds();
  return result;
}

/// Compat shim: materialize an EvalResult (spans into `scratch`) as an
/// owning EnergyResult.
EnergyResult to_energy_result(const EvalResult& r) {
  EnergyResult out;
  out.epol = r.epol;
  out.born.assign(r.born.begin(), r.born.end());
  out.work = r.work;
  out.wall_seconds = r.wall_seconds;
  return out;
}

}  // namespace

EvalResult GBEngine::compute(EvalScratch& scratch, ws::Scheduler* sched) const {
  return compute_impl(*this, scratch, sched,
                      [&](std::span<double> node_s, std::span<double> atom_s,
                          perf::WorkCounters& work) {
                        phase_integrals(
                            {0, static_cast<std::uint32_t>(
                                    q_leaves().size())},
                            node_s, atom_s, work);
                      });
}

EvalResult GBEngine::compute_dual(EvalScratch& scratch,
                                  ws::Scheduler* sched) const {
  return compute_impl(
      *this, scratch, sched,
      [&](std::span<double> node_s, std::span<double> atom_s,
          perf::WorkCounters& work) {
        approx_integrals_dual(ta_, tq_, config_.approx.eps_born,
                              config_.approx.approx_math, node_s, atom_s,
                              work, config_.approx.strict_born_criterion,
                              config_.approx.kernel);
      });
}

EnergyResult GBEngine::compute(ws::Scheduler* sched) const {
  EvalScratch scratch;
  return to_energy_result(compute(scratch, sched));
}

EnergyResult GBEngine::compute_dual(ws::Scheduler* sched) const {
  EvalScratch scratch;
  return to_energy_result(compute_dual(scratch, sched));
}

double GBEngine::epol_with_radii(std::span<const double> born_input_order,
                                 perf::WorkCounters& counters) const {
  OCTGB_CHECK(born_input_order.size() == num_atoms());
  const auto idx = ta_.tree.point_index();
  std::vector<double> born_tree(born_input_order.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = born_input_order[idx[pos]];
  const EpolContext ctx = build_epol_context(born_tree);
  return phase_epol(ctx, born_tree,
                    {0, static_cast<std::uint32_t>(a_leaves().size())},
                    counters);
}

}  // namespace octgb::core
