#include "octgb/core/engine.hpp"

#include "octgb/core/dual_traversal.hpp"
#include "octgb/perf/stats.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

GBEngine::GBEngine(const mol::Molecule& mol, const surface::Surface& surf,
                   EngineConfig config)
    : config_(config),
      ta_(AtomsTree::build(mol, config.atoms_tree_params)),
      tq_(QPointsTree::build(surf, config.qpoints_tree_params)) {
  OCTGB_CHECK_MSG(!mol.empty(), "molecule is empty");
  OCTGB_CHECK_MSG(surf.size() > 0, "surface has no quadrature points");
}

void GBEngine::phase_integrals(Segment q_leaf_segment,
                               std::span<double> node_s,
                               std::span<double> atom_s,
                               perf::WorkCounters& counters) const {
  OCTGB_SPAN("born.traversal");
  const auto& leaves = q_leaves();
  OCTGB_CHECK(q_leaf_segment.end <= leaves.size());
  approx_integrals(
      ta_, tq_,
      std::span<const std::uint32_t>(leaves).subspan(
          q_leaf_segment.begin, q_leaf_segment.size()),
      config_.approx.eps_born, config_.approx.approx_math, node_s, atom_s,
      counters, config_.approx.strict_born_criterion, config_.approx.kernel);
}

void GBEngine::phase_push(Segment atom_segment,
                          std::span<const double> node_s,
                          std::span<const double> atom_s,
                          std::span<double> born_tree,
                          perf::WorkCounters& counters) const {
  OCTGB_SPAN("born.push");
  push_integrals_to_atoms(ta_, node_s, atom_s, atom_segment.begin,
                          atom_segment.end, config_.approx.approx_math,
                          born_tree, counters);
}

EpolContext GBEngine::build_epol_context(
    std::span<const double> born_tree) const {
  OCTGB_SPAN("epol.context");
  return EpolContext::build(ta_, born_tree, config_.approx.eps_epol);
}

double GBEngine::phase_epol(const EpolContext& ctx,
                            std::span<const double> born_tree,
                            Segment a_leaf_segment,
                            perf::WorkCounters& counters) const {
  OCTGB_SPAN("epol.traversal");
  const auto& leaves = a_leaves();
  OCTGB_CHECK(a_leaf_segment.end <= leaves.size());
  return approx_epol(ta_, ctx, born_tree,
                     std::span<const std::uint32_t>(leaves).subspan(
                         a_leaf_segment.begin, a_leaf_segment.size()),
                     config_.approx.eps_epol, config_.approx.approx_math,
                     config_.gb, counters, config_.approx.kernel);
}

double GBEngine::phase_epol_atom_based(const EpolContext& ctx,
                                       std::span<const double> born_tree,
                                       Segment atom_segment,
                                       perf::WorkCounters& counters) const {
  OCTGB_SPAN("epol.traversal.atom_based");
  return approx_epol_atom_based(
      ta_, ctx, born_tree, atom_segment.begin, atom_segment.end,
      config_.approx.eps_epol, config_.approx.approx_math, config_.gb,
      counters, config_.approx.kernel);
}

std::vector<double> GBEngine::born_to_input_order(
    std::span<const double> born_tree) const {
  const auto idx = ta_.tree.point_index();
  std::vector<double> out(born_tree.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    out[idx[pos]] = born_tree[pos];
  return out;
}

namespace {

/// Shared driver for compute()/compute_dual(): the Born integral pass is
/// the only difference.
template <class IntegralsFn>
EnergyResult compute_impl(const GBEngine& engine, ws::Scheduler* sched,
                          IntegralsFn&& integrals) {
  if (engine.config().trace.enabled) trace::Tracer::instance().set_enabled(true);
  OCTGB_SPAN("engine.compute");
  EnergyResult result;
  perf::Timer timer;

  const auto n_nodes = engine.num_ta_nodes();
  const auto n_atoms = engine.num_atoms();
  std::vector<double> node_s(n_nodes, 0.0);
  std::vector<double> atom_s(n_atoms, 0.0);
  std::vector<double> born_tree(n_atoms, 0.0);
  double epol = 0.0;

  auto body = [&] {
    integrals(node_s, atom_s, result.work);
    engine.phase_push({0, static_cast<std::uint32_t>(n_atoms)}, node_s,
                      atom_s, born_tree, result.work);
    const EpolContext ctx = engine.build_epol_context(born_tree);
    epol = engine.phase_epol(
        ctx, born_tree,
        {0, static_cast<std::uint32_t>(engine.a_leaves().size())},
        result.work);
  };

  if (sched) {
    sched->reset_stats();
    sched->run(body);
    const auto st = sched->stats();
    result.work.spawns += st.spawns;
    result.work.steals += st.steals;
  } else {
    body();
  }

  result.epol = epol;
  {
    OCTGB_SPAN("born.remap");
    result.born = engine.born_to_input_order(born_tree);
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace

EnergyResult GBEngine::compute(ws::Scheduler* sched) const {
  return compute_impl(*this, sched,
                      [&](std::span<double> node_s, std::span<double> atom_s,
                          perf::WorkCounters& work) {
                        phase_integrals(
                            {0, static_cast<std::uint32_t>(
                                    q_leaves().size())},
                            node_s, atom_s, work);
                      });
}

EnergyResult GBEngine::compute_dual(ws::Scheduler* sched) const {
  return compute_impl(
      *this, sched,
      [&](std::span<double> node_s, std::span<double> atom_s,
          perf::WorkCounters& work) {
        approx_integrals_dual(ta_, tq_, config_.approx.eps_born,
                              config_.approx.approx_math, node_s, atom_s,
                              work, config_.approx.strict_born_criterion,
                              config_.approx.kernel);
      });
}

double GBEngine::epol_with_radii(std::span<const double> born_input_order,
                                 perf::WorkCounters& counters) const {
  OCTGB_CHECK(born_input_order.size() == num_atoms());
  const auto idx = ta_.tree.point_index();
  std::vector<double> born_tree(born_input_order.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = born_input_order[idx[pos]];
  const EpolContext ctx = build_epol_context(born_tree);
  return phase_epol(ctx, born_tree,
                    {0, static_cast<std::uint32_t>(a_leaves().size())},
                    counters);
}

}  // namespace octgb::core
