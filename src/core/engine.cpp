#include "octgb/core/engine.hpp"

#include <atomic>

#include "octgb/core/dual_traversal.hpp"
#include "octgb/perf/stats.hpp"
#include "octgb/simd/dispatch.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

GBEngine::GBEngine(const mol::Molecule& mol, const surface::Surface& surf,
                   EngineConfig config)
    : config_(config),
      ta_(AtomsTree::build(mol, config.atoms_tree_params)),
      tq_(QPointsTree::build(surf, config.qpoints_tree_params)) {
  OCTGB_CHECK_MSG(!mol.empty(), "molecule is empty");
  OCTGB_CHECK_MSG(surf.size() > 0, "surface has no quadrature points");
}

GBEngine::GBEngine(Preprocessed pre, EngineConfig config)
    : config_(config),
      ta_(std::move(pre.atoms)),
      tq_(std::move(pre.qpoints)) {
  OCTGB_CHECK_MSG(ta_.num_atoms() > 0, "preprocessed atoms tree is empty");
  OCTGB_CHECK_MSG(tq_.num_points() > 0, "preprocessed qpoints tree is empty");
}

void EvalScratch::prepare(std::size_t n_nodes, std::size_t n_atoms) {
  bool grew = false;
  const auto size_to = [&grew](std::vector<double>& v, std::size_t n,
                               bool zero) {
    const std::size_t cap = v.capacity();
    if (zero)
      v.assign(n, 0.0);
    else
      v.resize(n);
    grew |= v.capacity() > cap;
  };
  size_to(node_s, n_nodes, /*zero=*/true);
  size_to(atom_s, n_atoms, /*zero=*/true);
  size_to(born_tree, n_atoms, /*zero=*/true);
  // born_input is fully overwritten by the remap permutation; no zeroing.
  size_to(born_input, n_atoms, /*zero=*/false);
  if (grew) ++allocation_events;
}

std::size_t EvalScratch::footprint_bytes() const {
  return (node_s.capacity() + atom_s.capacity() + born_tree.capacity() +
          born_input.capacity()) *
             sizeof(double) +
         epol_ctx.footprint_bytes() + plan_cache.footprint_bytes();
}

void GBEngine::phase_integrals(Segment q_leaf_segment,
                               std::span<double> node_s,
                               std::span<double> atom_s,
                               perf::WorkCounters& counters) const {
  OCTGB_SPAN("born.traversal");
  const auto& leaves = q_leaves();
  OCTGB_CHECK(q_leaf_segment.end <= leaves.size());
  approx_integrals(
      ta_, tq_,
      std::span<const std::uint32_t>(leaves).subspan(
          q_leaf_segment.begin, q_leaf_segment.size()),
      config_.approx.eps_born, config_.approx.approx_math, node_s, atom_s,
      counters, config_.approx.strict_born_criterion, config_.approx.kernel,
      config_.approx.vector);
}

void GBEngine::phase_push(Segment atom_segment,
                          std::span<const double> node_s,
                          std::span<const double> atom_s,
                          std::span<double> born_tree,
                          perf::WorkCounters& counters) const {
  OCTGB_SPAN("born.push");
  push_integrals_to_atoms(ta_, node_s, atom_s, atom_segment.begin,
                          atom_segment.end, config_.approx.approx_math,
                          born_tree, counters);
}

EpolContext GBEngine::build_epol_context(
    std::span<const double> born_tree) const {
  OCTGB_SPAN("epol.context");
  return EpolContext::build(ta_, born_tree, config_.approx.eps_epol);
}

double GBEngine::phase_epol(const EpolContext& ctx,
                            std::span<const double> born_tree,
                            Segment a_leaf_segment,
                            perf::WorkCounters& counters) const {
  OCTGB_SPAN("epol.traversal");
  const auto& leaves = a_leaves();
  OCTGB_CHECK(a_leaf_segment.end <= leaves.size());
  return approx_epol(ta_, ctx, born_tree,
                     std::span<const std::uint32_t>(leaves).subspan(
                         a_leaf_segment.begin, a_leaf_segment.size()),
                     config_.approx.eps_epol, config_.approx.approx_math,
                     config_.gb, counters, config_.approx.kernel,
                     config_.approx.vector);
}

double GBEngine::phase_epol_atom_based(const EpolContext& ctx,
                                       std::span<const double> born_tree,
                                       Segment atom_segment,
                                       perf::WorkCounters& counters) const {
  OCTGB_SPAN("epol.traversal.atom_based");
  return approx_epol_atom_based(
      ta_, ctx, born_tree, atom_segment.begin, atom_segment.end,
      config_.approx.eps_epol, config_.approx.approx_math, config_.gb,
      counters, config_.approx.kernel, config_.approx.vector);
}

std::vector<double> GBEngine::born_to_input_order(
    std::span<const double> born_tree) const {
  std::vector<double> out(born_tree.size());
  born_to_input_order(born_tree, out);
  return out;
}

void GBEngine::born_to_input_order(std::span<const double> born_tree,
                                   std::span<double> out) const {
  const auto idx = ta_.tree.point_index();
  OCTGB_CHECK(born_tree.size() == idx.size() && out.size() == idx.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    out[idx[pos]] = born_tree[pos];
}

namespace {

/// Compat shim: materialize an EvalResult (spans into `scratch`) as an
/// owning EnergyResult.
EnergyResult to_energy_result(const EvalResult& r) {
  EnergyResult out;
  out.epol = r.epol;
  out.born.assign(r.born.begin(), r.born.end());
  out.work = r.work;
  out.wall_seconds = r.wall_seconds;
  return out;
}

}  // namespace

std::uint64_t GBEngine::next_engine_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Shared driver for compute()/compute_dual() on the EvalScratch path.
///
/// The Born phase runs through the scratch's plan cache (PlanMode::Auto,
/// unless the caller disallows it):
///   capture    — key miss: instrumented serial traversal, lists recorded;
///   replay     — key hit at changed geometry: structural re-validation,
///                then flat-list execution (recapture on drift);
///   born reuse — key hit at unchanged geometry + arithmetic: the cached
///                Born radii are exact, integrals + push are skipped.
/// Every path reports the same operation counters a fresh traversal would
/// (counts are partition properties) and reproduces its results bit for
/// bit — see DESIGN.md §2.6 for the determinism argument.
EvalResult GBEngine::compute_eval(EvalScratch& scratch, ws::Scheduler* sched,
                                  PlanFlavor flavor, bool allow_plan) const {
  if (config_.trace.enabled) trace::Tracer::instance().set_enabled(true);
  OCTGB_SPAN("engine.compute");
  EvalResult result;
  perf::Timer timer;

  const auto n_atoms = num_atoms();
  scratch.prepare(num_ta_nodes(), n_atoms);
  double epol = 0.0;

  const ApproxParams& approx = config_.approx;
  // Resolve the vector request once: the Born cache is stamped with the
  // *resolved* params, so Auto and an explicit widest-ISA request hit the
  // same cache entry.
  const simd::VectorParams rvec = simd::resolve(approx.vector);
  if (config_.trace.enabled) {
    trace::counter("kernel.simd.lanes",
                   static_cast<double>(simd::lanes(rvec.isa)));
  }
  const PlanKey key{engine_id_,
                    topology_epoch_,
                    approx.eps_born,
                    approx.strict_born_criterion,
                    approx.kernel,
                    flavor,
                    approx.locality};
  enum class Action { Traverse, Capture, Replay, BornReuse };
  Action act = Action::Traverse;
  PlanCache& pc = scratch.plan_cache;
  if (allow_plan && approx.plan == PlanMode::Auto) {
    if (pc.plan.valid() && pc.plan.key() == key) {
      ++pc.stats.key_hits;
      act = pc.plan.born_valid(geometry_epoch_, approx.approx_math, rvec)
                ? Action::BornReuse
                : Action::Replay;
    } else {
      ++pc.stats.key_misses;
      if (pc.plan.valid()) {
        const PlanKey& old = pc.plan.key();
        if (old.engine_id != key.engine_id ||
            old.topology_epoch != key.topology_epoch)
          ++pc.stats.invalidated_topology;
        else
          ++pc.stats.invalidated_params;
      }
      act = Action::Capture;
    }
    if (act == Action::Replay && geometry_epoch_ != pc.plan.geometry_epoch()) {
      // An in-place refit moved centroids/radii; the pair structure
      // usually survives. Prove it (math-free serial re-walk) or recapture.
      OCTGB_SPAN("plan.validate");
      ++pc.stats.validations;
      if (!pc.plan.validate(ta_, tq_, geometry_epoch_)) {
        ++pc.stats.invalidated_drift;
        act = Action::Capture;
      }
    }
    if (act == Action::Capture) ++pc.stats.builds;
    if (act == Action::Replay) {
      ++pc.stats.replays;
      pc.locality.prefetch_batches += pc.plan.prefetches_per_replay();
    }
    if (act == Action::BornReuse) ++pc.stats.born_reuses;
  }

  // NUMA-conscious placement: re-zero the near-field accumulator socket by
  // socket from the cores that will write it, mapping chunk → worker the
  // same way parallel_for's recursive halving does on average (chunk c →
  // worker ⌊c·W/C⌋). The pass only places pages the kernel has not backed
  // yet (freshly grown scratch); for warm buffers it is a cheap redundant
  // zero of memory prepare() already zeroed. Skipped structurally on
  // single-socket hosts (touch_zero_by_domain returns false).
  if (act == Action::Replay && approx.locality && sched != nullptr &&
      !pc.plan.chunk_atom_begin().empty()) {
    const auto boundary = pc.plan.chunk_atom_begin();
    const std::size_t n_chunks = boundary.size() - 1;
    const auto& topo = sched->topo();
    if (topo.sockets > 1 && n_chunks > 0) {
      std::vector<int> domain(n_chunks);
      const std::size_t w = static_cast<std::size_t>(sched->num_workers());
      for (std::size_t c = 0; c < n_chunks; ++c) {
        const int worker = static_cast<int>(c * w / n_chunks);
        domain[c] = topo.cpu(sched->worker_cpu(worker)).socket;
      }
      if (perf::touch_zero_by_domain(scratch.atom_s, boundary, domain, topo))
        ++pc.locality.numa_touch_passes;
    }
  }

  auto body = [&] {
    switch (act) {
      case Action::BornReuse: {
        OCTGB_SPAN("plan.born_reuse");
        pc.plan.load_born(scratch.born_tree, result.work);
        break;
      }
      case Action::Replay: {
        OCTGB_SPAN("plan.replay");
        pc.plan.replay(ta_, tq_, approx.approx_math, rvec, scratch.node_s,
                       scratch.atom_s, result.work);
        break;
      }
      case Action::Capture: {
        OCTGB_SPAN("plan.build");
        PlanRecorder rec = pc.plan.begin_capture(key);
        perf::WorkCounters captured;
        if (flavor == PlanFlavor::Single) {
          approx_integrals(ta_, tq_, q_leaves(), approx.eps_born,
                           approx.approx_math, scratch.node_s, scratch.atom_s,
                           captured, approx.strict_born_criterion,
                           approx.kernel, rvec, &rec);
        } else {
          approx_integrals_dual(ta_, tq_, approx.eps_born, approx.approx_math,
                                scratch.node_s, scratch.atom_s, captured,
                                approx.strict_born_criterion, approx.kernel,
                                rvec, &rec);
        }
        if (pc.plan.finalize(ta_, tq_, geometry_epoch_, captured))
          ++scratch.allocation_events;
        pc.locality += pc.plan.locality_stats();
        result.work += captured;
        break;
      }
      case Action::Traverse: {
        if (flavor == PlanFlavor::Single) {
          phase_integrals({0, static_cast<std::uint32_t>(q_leaves().size())},
                          scratch.node_s, scratch.atom_s, result.work);
        } else {
          approx_integrals_dual(ta_, tq_, approx.eps_born, approx.approx_math,
                                scratch.node_s, scratch.atom_s, result.work,
                                approx.strict_born_criterion, approx.kernel,
                                rvec);
        }
        break;
      }
    }
    if (act != Action::BornReuse) {
      phase_push({0, static_cast<std::uint32_t>(n_atoms)}, scratch.node_s,
                 scratch.atom_s, scratch.born_tree, result.work);
      if (act != Action::Traverse) {
        // result.work holds exactly the phase A + push counters here;
        // cache them with the radii so a future Born reuse reports the
        // same counts a fresh traversal would.
        if (pc.plan.store_born(geometry_epoch_, approx.approx_math, rvec,
                               scratch.born_tree, result.work))
          ++scratch.allocation_events;
      }
    }
    {
      OCTGB_SPAN("epol.context");
      if (scratch.epol_ctx.rebuild(ta_, scratch.born_tree,
                                   approx.eps_epol))
        ++scratch.allocation_events;
    }
    epol = phase_epol(scratch.epol_ctx, scratch.born_tree,
                      {0, static_cast<std::uint32_t>(a_leaves().size())},
                      result.work);
  };

  if (sched) {
    sched->reset_stats();
    sched->run(body);
    const auto st = sched->stats();
    result.work.spawns += st.spawns;
    result.work.steals += st.steals;
  } else {
    body();
  }

  result.epol = epol;
  {
    OCTGB_SPAN("born.remap");
    born_to_input_order(scratch.born_tree, scratch.born_input);
  }
  result.born = scratch.born_input;
  result.wall_seconds = timer.seconds();
  return result;
}

EvalResult GBEngine::compute(EvalScratch& scratch, ws::Scheduler* sched) const {
  return compute_eval(scratch, sched, PlanFlavor::Single, /*allow_plan=*/true);
}

EvalResult GBEngine::compute_dual(EvalScratch& scratch,
                                  ws::Scheduler* sched) const {
  return compute_eval(scratch, sched, PlanFlavor::Dual, /*allow_plan=*/true);
}

EnergyResult GBEngine::compute(ws::Scheduler* sched) const {
  // One-shot scratch: a plan could never be reused, so don't build one.
  EvalScratch scratch;
  return to_energy_result(
      compute_eval(scratch, sched, PlanFlavor::Single, /*allow_plan=*/false));
}

EnergyResult GBEngine::compute_dual(ws::Scheduler* sched) const {
  EvalScratch scratch;
  return to_energy_result(
      compute_eval(scratch, sched, PlanFlavor::Dual, /*allow_plan=*/false));
}

double GBEngine::epol_with_radii(std::span<const double> born_input_order,
                                 perf::WorkCounters& counters) const {
  OCTGB_CHECK(born_input_order.size() == num_atoms());
  const auto idx = ta_.tree.point_index();
  std::vector<double> born_tree(born_input_order.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = born_input_order[idx[pos]];
  const EpolContext ctx = build_epol_context(born_tree);
  return phase_epol(ctx, born_tree,
                    {0, static_cast<std::uint32_t>(a_leaves().size())},
                    counters);
}

}  // namespace octgb::core
