#include "octgb/core/dual_traversal.hpp"

#include <atomic>
#include <cmath>

#include "octgb/core/born.hpp"
#include "octgb/core/gb_params.hpp"
#include "octgb/core/plan.hpp"
#include "octgb/simd/dispatch.hpp"
#include "octgb/util/check.hpp"
#include "octgb/ws/scheduler.hpp"

namespace octgb::core {

namespace {

using geom::Vec3;
using octree::Octree;

void atomic_add(double& slot, double v) {
  std::atomic_ref<double>(slot).fetch_add(v, std::memory_order_relaxed);
}
void atomic_add(std::uint64_t& slot, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(slot).fetch_add(v,
                                                 std::memory_order_relaxed);
}

struct DualCounts {
  std::uint64_t exact = 0, approx = 0, visits = 0;
};

struct DualPass {
  const AtomsTree& ta;
  const QPointsTree& tq;
  double threshold;  ///< admissibility factor k: far iff (d+s) ≤ k(d−s)
  bool approx_math;
  KernelKind kernel;
  const simd::KernelSet* vec;  ///< non-null: explicit-SIMD near field
  bool mixed;                  ///< float streams (vec must be non-null)
  std::span<double> node_s;
  std::span<double> atom_s;
  perf::WorkCounters* shared;
  PlanRecorder* recorder;  ///< non-null: capture decisions, stay serial

  void flush(const DualCounts& lc) const {
    atomic_add(shared->born_exact, lc.exact);
    atomic_add(shared->born_approx, lc.approx);
    atomic_add(shared->born_visits, lc.visits);
  }

  void exact_pair(const Octree::Node& a, const Octree::Node& q,
                  DualCounts& lc) const {
    if (kernel == KernelKind::Batched && vec != nullptr) {
      const double* __restrict ax = ta.soa_x().data();
      const double* __restrict ay = ta.soa_y().data();
      const double* __restrict az = ta.soa_z().data();
      if (mixed) {
        const QPointBatchF qb = tq.node_batch_f(q);
        for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
          atomic_add(atom_s[ai],
                     vec->born_integral_mixed(ax[ai], ay[ai], az[ai], qb));
      } else {
        const QPointBatch qb = tq.node_batch(q);
        const auto fn =
            approx_math ? vec->born_integral_fast : vec->born_integral;
        for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
          atomic_add(atom_s[ai], fn(ax[ai], ay[ai], az[ai], qb));
      }
    } else if (kernel == KernelKind::Batched) {
      const QPointBatch qb = tq.node_batch(q);
      const double* __restrict ax = ta.soa_x().data();
      const double* __restrict ay = ta.soa_y().data();
      const double* __restrict az = ta.soa_z().data();
      for (std::uint32_t ai = a.begin; ai < a.end; ++ai) {
        const double s =
            approx_math ? batch_born_integral_fast(ax[ai], ay[ai], az[ai], qb)
                        : batch_born_integral(ax[ai], ay[ai], az[ai], qb);
        atomic_add(atom_s[ai], s);
      }
    } else {
      const auto atom_pts = ta.tree.points();
      for (std::uint32_t ai = a.begin; ai < a.end; ++ai) {
        atomic_add(atom_s[ai], scalar_born_pair(atom_pts[ai], tq, q.begin,
                                                q.end, approx_math));
      }
    }
    lc.exact += static_cast<std::uint64_t>(a.size()) * q.size();
  }

  void descend(std::uint32_t a_id, std::uint32_t q_id, DualCounts& lc) const {
    ++lc.visits;
    const Octree::Node& a = ta.tree.node(a_id);
    const Octree::Node& q = tq.tree.node(q_id);
    const double d2 = geom::dist2(a.centroid, q.centroid);
    const double d = std::sqrt(d2);
    if (born_far_enough(d, a.radius, q.radius, threshold)) {
      // Q (possibly internal) acts on A as one pseudo q-point with the
      // node-aggregated weighted normal.
      if (recorder) recorder->far(a_id, q_id);
      atomic_add(node_s[a_id],
                 born_far_term(a.centroid, q.centroid, tq.node_wnormal[q_id],
                               approx_math));
      ++lc.approx;
      return;
    }
    const bool a_leaf = a.is_leaf();
    const bool q_leaf = q.is_leaf();
    if (a_leaf && q_leaf) {
      if (recorder) recorder->near(a_id, q_id);
      exact_pair(a, q, lc);
      return;
    }
    // Refine the node with the larger radius (both when only one is a
    // leaf, that one stays fixed). Recording forbids forking: the capture
    // order must be the serial one.
    const bool split_a = !a_leaf && (q_leaf || a.radius >= q.radius);
    if (split_a) {
      if (a.size() > 8192 && ws::Scheduler::current() != nullptr &&
          recorder == nullptr) {
        std::vector<std::function<void()>> forks;
        forks.reserve(a.child_count);
        for (std::uint8_t c = 0; c < a.child_count; ++c) {
          const std::uint32_t child = a.first_child + c;
          forks.emplace_back([this, child, q_id] {
            DualCounts mine;
            descend(child, q_id, mine);
            flush(mine);
          });
        }
        ws::Scheduler::fork_all(forks);
      } else {
        for (std::uint8_t c = 0; c < a.child_count; ++c)
          descend(a.first_child + c, q_id, lc);
      }
    } else {
      for (std::uint8_t c = 0; c < q.child_count; ++c)
        descend(a_id, q.first_child + c, lc);
    }
  }
};

}  // namespace

void approx_integrals_dual(const AtomsTree& ta, const QPointsTree& tq,
                           double eps_born, bool approx_math,
                           std::span<double> node_s, std::span<double> atom_s,
                           perf::WorkCounters& counters,
                           bool strict_criterion, KernelKind kernel,
                           const simd::VectorParams& vector,
                           PlanRecorder* recorder) {
  OCTGB_CHECK_MSG(eps_born > 0.0, "eps_born must be positive");
  OCTGB_CHECK(node_s.size() == ta.tree.nodes().size());
  OCTGB_CHECK(atom_s.size() == ta.num_atoms());
  if (ta.tree.empty() || tq.tree.empty()) return;
  const double threshold = strict_criterion
                               ? std::pow(1.0 + eps_born, 1.0 / 6.0)
                               : 1.0 + eps_born;
  const simd::VectorParams rvec = simd::resolve(vector);
  const simd::KernelSet* vec =
      kernel == KernelKind::Batched ? simd::kernels(rvec.isa) : nullptr;
  const bool mixed = vec != nullptr && !approx_math &&
                     rvec.precision == simd::Precision::Mixed;
  DualPass pass{ta,    tq,     threshold, approx_math, kernel,
                vec,   mixed,  node_s,    atom_s,      &counters,
                recorder};
  DualCounts lc;
  pass.descend(0, 0, lc);
  pass.flush(lc);
}

}  // namespace octgb::core
