#include "octgb/core/persist.hpp"

#include <fstream>

#include "octgb/octree/serialize.hpp"
#include "octgb/util/check.hpp"

namespace octgb::core {

void write_atoms_tree(const AtomsTree& t, std::ostream& out) {
  octree::write_octree(t.tree, out);
  octree::write_f64_section(out, "chg", t.charge);
  octree::write_f64_section(out, "vdw", t.vdw_radius);
}

AtomsTree read_atoms_tree(std::istream& in) {
  AtomsTree t;
  t.tree = octree::read_octree(in);
  t.charge = octree::read_f64_section(in, "chg");
  t.vdw_radius = octree::read_f64_section(in, "vdw");
  OCTGB_CHECK_MSG(t.charge.size() == t.tree.num_points() &&
                      t.vdw_radius.size() == t.tree.num_points(),
                  "atoms-tree payload sections disagree with the octree");
  t.rebuild_derived();
  return t;
}

void write_qpoints_tree(const QPointsTree& t, std::ostream& out) {
  octree::write_octree(t.tree, out);
  octree::write_vec3_section(out, "wnrm", t.wnormal);
  octree::write_f64_section(out, "wgt", t.weight);
}

QPointsTree read_qpoints_tree(std::istream& in) {
  QPointsTree t;
  t.tree = octree::read_octree(in);
  t.wnormal = octree::read_vec3_section(in, "wnrm");
  t.weight = octree::read_f64_section(in, "wgt");
  OCTGB_CHECK_MSG(t.wnormal.size() == t.tree.num_points() &&
                      t.weight.size() == t.tree.num_points(),
                  "qpoints-tree payload sections disagree with the octree");
  t.rebuild_derived();
  return t;
}

void write_preprocessed(const Preprocessed& pre, std::ostream& out) {
  write_atoms_tree(pre.atoms, out);
  write_qpoints_tree(pre.qpoints, out);
}

Preprocessed read_preprocessed(std::istream& in) {
  Preprocessed pre;
  pre.atoms = read_atoms_tree(in);
  pre.qpoints = read_qpoints_tree(in);
  return pre;
}

void write_preprocessed_file(const Preprocessed& pre,
                             const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  OCTGB_CHECK_MSG(static_cast<bool>(f), "cannot open " << path);
  write_preprocessed(pre, f);
}

Preprocessed read_preprocessed_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  OCTGB_CHECK_MSG(static_cast<bool>(f), "cannot open " << path);
  return read_preprocessed(f);
}

}  // namespace octgb::core
