#include "octgb/baselines/packages.hpp"

#include <array>
#include <cmath>

#include "octgb/util/check.hpp"

namespace octgb::baselines {

namespace {

// Calibration notes (constants fitted once to the paper's stated Fig. 8(b)
// anchors, never per molecule):
//  * Amber 12    — HCT over nblist, MPI on 12 cores; heavy startup, so
//                  small molecules are dominated by the constant term.
//  * Gromacs     — HCT, the best-tuned kernels of the group (lowest
//                  per-pair cycles); its advantage over Amber shrinks with
//                  size as pair work dominates (6.2× → 2.7×).
//  * NAMD 2.9    — OBC via the Charm++ runtime; per-pair cost on par with
//                  Amber plus higher startup (max speedup 1.1).
//  * Tinker 6.0  — Still model, OpenMP with modest scaling efficiency:
//                  fast for small inputs (2.1×), falls behind for large.
//  * GBr6        — serial volume method; wins only on tiny inputs (1.14×).
// Memory budgets mirror the paper's observation that Tinker and GBr6 stop
// working past ~12k/~13k atoms (their implementations keep per-pair /
// per-atom-pair tables in double precision).
constexpr std::array<PackageSpec, 5> kPackages = {{
    {"Gromacs 4.5.3", "HCT", BornModel::HCT, false, Parallelism::Distributed,
     14.0, /*per_pair=*/200.0, /*per_atom2=*/190.0, /*eff=*/0.85,
     /*startup=*/0.018},
    {"NAMD 2.9", "OBC", BornModel::OBC, false, Parallelism::Distributed,
     20.0, /*per_pair=*/355.0, /*per_atom2=*/355.0, /*eff=*/0.80,
     /*startup=*/0.250},
    // Amber's GB runs with no interaction cutoff (sander's GB default),
    // so its time scales with all atom pairs; the energy kernel below
    // still evaluates a 20 A list (rgbmax-like), which is what the Fig. 9
    // energies use.
    {"Amber 12", "HCT", BornModel::HCT, false, Parallelism::Distributed,
     20.0, /*per_pair=*/0.0, /*per_atom2=*/540.0, /*eff=*/0.80,
     /*startup=*/0.150},
    {"Tinker 6.0", "STILL", BornModel::Still, false,
     Parallelism::SharedMemory, 20.0, /*per_pair=*/350.0, /*per_atom2=*/0.0,
     /*eff=*/0.25, /*startup=*/0.070},
    {"GBr6", "STILL", BornModel::Still, true, Parallelism::Serial, 20.0,
     /*per_pair=*/10.0, /*per_atom2=*/0.0, /*eff=*/1.0, /*startup=*/0.125},
}};

/// Per-pair bookkeeping bytes of each package's own data structures
/// (pair lists with stored distances etc.); drives the simulated OOM.
double package_bytes_per_pair(const PackageSpec& spec) {
  if (spec.volume_gbr6) return 0.0;
  if (spec.born_model == BornModel::Still) return 24.0;  // Tinker-style
  return 8.0;  // index + distance cache
}

/// Extra per-atom-pair matrix for GBr6 (integral tables, double).
double gbr6_matrix_bytes(std::size_t n) {
  return static_cast<double>(n) * static_cast<double>(n) * 8.0;
}

}  // namespace

std::span<const PackageSpec> package_registry() { return kPackages; }

const PackageSpec* find_package(std::string_view name) {
  for (const auto& p : kPackages)
    if (name == p.name) return &p;
  return nullptr;
}

double cutoff_epol(const mol::Molecule& mol, const octree::NbList& nblist,
                   std::span<const double> born, const core::GBParams& gb,
                   perf::WorkCounters* counters) {
  const auto atoms = mol.atoms();
  OCTGB_CHECK(born.size() == atoms.size());
  double e = 0.0;
  std::uint64_t pairs = 0;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    e += atoms[i].charge * atoms[i].charge / born[i];
    for (std::uint32_t j : nblist.neighbors(i)) {
      // Ordered pairs: each unordered pair appears twice in the nblist.
      const double r2 = geom::dist2(atoms[i].pos, atoms[j].pos);
      e += atoms[i].charge * atoms[j].charge /
           core::f_gb(r2, born[i] * born[j]);
      ++pairs;
    }
  }
  if (counters) counters->pairlist_pairs += pairs;
  return -0.5 * gb.tau() * e;
}

PackageResult run_package(const PackageSpec& spec, const mol::Molecule& mol,
                          const perf::MachineModel& machine, int cores,
                          std::optional<double> cutoff_override,
                          const core::GBParams& gb) {
  PackageResult result;
  if (cores <= 0)
    cores = spec.parallelism == Parallelism::Serial ? 1
                                                    : machine.cores_per_node;
  const double cutoff = cutoff_override.value_or(spec.cutoff);
  const std::size_t budget = std::size_t{20} * 1024 * 1024 * 1024;

  try {
    if (spec.volume_gbr6) {
      // GBr6 keeps a full pairwise integral matrix (simulated budget).
      if (gbr6_matrix_bytes(mol.size()) > 1.4e9)
        throw octree::NbListOutOfMemory("GBr6 pairwise integral matrix");
      Gbr6Params gp;
      result.born = gbr6_born_radii(mol, gp, &result.work);
      // Energy still needs pair interactions; GBr6 evaluates Eq. 2 over a
      // cutoff list like the others.
      octree::NbList::Params np{cutoff, budget};
      std::vector<geom::Vec3> centers(mol.size());
      for (std::size_t i = 0; i < mol.size(); ++i)
        centers[i] = mol.atom(i).pos;
      const auto nblist = octree::NbList::build(centers, np);
      result.nblist_bytes = nblist.footprint_bytes() +
                            static_cast<std::size_t>(gbr6_matrix_bytes(
                                mol.size()));
      result.epol = cutoff_epol(mol, nblist, result.born, gb, &result.work);
    } else {
      octree::NbList::Params np{cutoff, budget};
      std::vector<geom::Vec3> centers(mol.size());
      for (std::size_t i = 0; i < mol.size(); ++i)
        centers[i] = mol.atom(i).pos;
      const auto nblist = octree::NbList::build(centers, np);
      // The package's own bookkeeping may exceed its budget even when the
      // raw index list fits (Tinker's ~12k-atom ceiling).
      const double own_bytes =
          static_cast<double>(nblist.total_pairs()) *
          package_bytes_per_pair(spec);
      result.nblist_bytes =
          nblist.footprint_bytes() + static_cast<std::size_t>(own_bytes);
      if (spec.born_model == BornModel::Still && own_bytes > 1.3e9)
        throw octree::NbListOutOfMemory("Tinker pair tables");
      result.born =
          pairwise_born_radii(mol, nblist, spec.born_model, {}, &result.work);
      result.epol = cutoff_epol(mol, nblist, result.born, gb, &result.work);
    }
  } catch (const octree::NbListOutOfMemory&) {
    result.out_of_memory = true;
    return result;
  }

  // Modeled time: startup + (pair work + all-pairs Born term) over the
  // effective cores. The M² term is a timing model only; the computed
  // energies always come from the real cutoff kernels above.
  const double ops = static_cast<double>(result.work.pairlist_pairs) +
                     static_cast<double>(result.work.grid_cells);
  const double m2 =
      static_cast<double>(mol.size()) * static_cast<double>(mol.size());
  const double rate =
      machine.clock_hz * std::max(1.0, cores * spec.parallel_efficiency);
  result.modeled_seconds =
      spec.startup_seconds +
      (ops * spec.per_pair_cycles + m2 * spec.per_atom2_cycles) / rate;
  return result;
}

}  // namespace octgb::baselines
