#include "octgb/baselines/pb.hpp"

#include <cmath>
#include <numbers>

#include "octgb/geom/aabb.hpp"
#include "octgb/octree/nblist.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::baselines {

namespace {

using geom::Vec3;

/// Uniform grid scaffolding shared by both solves.
struct Grid {
  Vec3 origin;
  double h = 1.0;
  std::size_t nx = 0, ny = 0, nz = 0;

  std::size_t cells() const { return nx * ny * nz; }
  std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    return (i * ny + j) * nz + k;
  }
  Vec3 center(std::size_t i, std::size_t j, std::size_t k) const {
    return origin + Vec3{(i + 0.5) * h, (j + 0.5) * h, (k + 0.5) * h};
  }
};

/// Mark cells whose center lies inside any atom sphere (solute = ε_in).
std::vector<std::uint8_t> solute_mask(const Grid& g,
                                      std::span<const mol::Atom> atoms) {
  std::vector<std::uint8_t> inside(g.cells(), 0);
  for (const auto& a : atoms) {
    const double r = a.radius + 0.5 * g.h;
    const auto lo = [&](double x, double o) {
      return std::max(0L, static_cast<long>((x - r - o) / g.h));
    };
    const long i0 = lo(a.pos.x, g.origin.x), j0 = lo(a.pos.y, g.origin.y),
               k0 = lo(a.pos.z, g.origin.z);
    const long i1 = std::min<long>(g.nx - 1,
                                   static_cast<long>((a.pos.x + r - g.origin.x) / g.h) + 1);
    const long j1 = std::min<long>(g.ny - 1,
                                   static_cast<long>((a.pos.y + r - g.origin.y) / g.h) + 1);
    const long k1 = std::min<long>(g.nz - 1,
                                   static_cast<long>((a.pos.z + r - g.origin.z) / g.h) + 1);
    const double r2 = r * r;
    for (long i = i0; i <= i1; ++i)
      for (long j = j0; j <= j1; ++j)
        for (long k = k0; k <= k1; ++k)
          if (geom::dist2(g.center(i, j, k), a.pos) <= r2)
            inside[g.index(i, j, k)] = 1;
  }
  return inside;
}

/// Trilinear spreading of point charges onto the grid (charge density
/// times 4π k_e / h³, the discrete right-hand side).
std::vector<double> spread_charges(const Grid& g,
                                   std::span<const mol::Atom> atoms) {
  std::vector<double> rhs(g.cells(), 0.0);
  const double scale = 4.0 * std::numbers::pi * core::kCoulomb / g.h;
  for (const auto& a : atoms) {
    // Cell-corner coordinates of the charge.
    const double fx = (a.pos.x - g.origin.x) / g.h - 0.5;
    const double fy = (a.pos.y - g.origin.y) / g.h - 0.5;
    const double fz = (a.pos.z - g.origin.z) / g.h - 0.5;
    const long i = static_cast<long>(std::floor(fx));
    const long j = static_cast<long>(std::floor(fy));
    const long k = static_cast<long>(std::floor(fz));
    const double tx = fx - i, ty = fy - j, tz = fz - k;
    for (int di = 0; di <= 1; ++di)
      for (int dj = 0; dj <= 1; ++dj)
        for (int dk = 0; dk <= 1; ++dk) {
          const long ii = i + di, jj = j + dj, kk = k + dk;
          if (ii < 0 || jj < 0 || kk < 0 ||
              ii >= static_cast<long>(g.nx) ||
              jj >= static_cast<long>(g.ny) || kk >= static_cast<long>(g.nz))
            continue;
          const double w = (di ? tx : 1 - tx) * (dj ? ty : 1 - ty) *
                           (dk ? tz : 1 - tz);
          rhs[g.index(ii, jj, kk)] += scale * a.charge * w;
        }
  }
  return rhs;
}

/// Debye–Hückel boundary potential from all charges.
double boundary_potential(const Vec3& p, std::span<const mol::Atom> atoms,
                          double eps_solv, double kappa) {
  double phi = 0.0;
  for (const auto& a : atoms) {
    const double d = std::max(geom::dist(p, a.pos), 1e-3);
    phi += core::kCoulomb * a.charge * std::exp(-kappa * d) / (eps_solv * d);
  }
  return phi;
}

/// One SOR solve. `eps_cell` holds the per-cell dielectric; face values
/// are harmonic means. Returns (iterations, final relative residual).
std::pair<int, double> sor_solve(const Grid& g,
                                 const std::vector<double>& eps_cell,
                                 const std::vector<std::uint8_t>& solvent,
                                 const std::vector<double>& rhs,
                                 double eps_solv, double kappa,
                                 const PbParams& params,
                                 std::vector<double>& phi,
                                 std::uint64_t* cell_updates) {
  const double h2 = g.h * g.h;
  auto face_eps = [](double a, double b) { return 2.0 * a * b / (a + b); };

  double rhs_norm = 0.0;
  for (double v : rhs) rhs_norm += std::abs(v);
  if (rhs_norm == 0.0) rhs_norm = 1.0;

  int iter = 0;
  double rel = 1.0;
  for (; iter < params.max_iterations && rel > params.tolerance; ++iter) {
    double residual = 0.0;
    for (std::size_t i = 1; i + 1 < g.nx; ++i) {
      for (std::size_t j = 1; j + 1 < g.ny; ++j) {
        for (std::size_t k = 1; k + 1 < g.nz; ++k) {
          const std::size_t c = g.index(i, j, k);
          const double e = eps_cell[c];
          const double exm = face_eps(e, eps_cell[g.index(i - 1, j, k)]);
          const double exp_ = face_eps(e, eps_cell[g.index(i + 1, j, k)]);
          const double eym = face_eps(e, eps_cell[g.index(i, j - 1, k)]);
          const double eyp = face_eps(e, eps_cell[g.index(i, j + 1, k)]);
          const double ezm = face_eps(e, eps_cell[g.index(i, j, k - 1)]);
          const double ezp = face_eps(e, eps_cell[g.index(i, j, k + 1)]);
          const double salt =
              solvent[c] ? eps_solv * kappa * kappa * h2 : 0.0;
          const double diag = exm + exp_ + eym + eyp + ezm + ezp + salt;
          const double off = exm * phi[g.index(i - 1, j, k)] +
                             exp_ * phi[g.index(i + 1, j, k)] +
                             eym * phi[g.index(i, j - 1, k)] +
                             eyp * phi[g.index(i, j + 1, k)] +
                             ezm * phi[g.index(i, j, k - 1)] +
                             ezp * phi[g.index(i, j, k + 1)];
          // Finite-volume balance: Σ ε_f (φ_n − φ_c) + 4πk_e q_cell/h = 0
          // (plus the salt term); rhs already carries the 4πk_e q/h scale.
          const double updated = (off + rhs[c]) / diag;
          const double delta = updated - phi[c];
          residual += std::abs(delta) * diag;
          phi[c] += params.sor_omega * delta;
        }
      }
    }
    rel = residual / rhs_norm;
    if (cell_updates)
      *cell_updates += (g.nx - 2) * (g.ny - 2) * (g.nz - 2);
  }
  return {iter, rel};
}

/// Trilinear interpolation of the potential at a point.
double sample_phi(const Grid& g, const std::vector<double>& phi,
                  const Vec3& p) {
  const double fx = (p.x - g.origin.x) / g.h - 0.5;
  const double fy = (p.y - g.origin.y) / g.h - 0.5;
  const double fz = (p.z - g.origin.z) / g.h - 0.5;
  const long i = std::clamp<long>(static_cast<long>(std::floor(fx)), 0,
                                  g.nx - 2);
  const long j = std::clamp<long>(static_cast<long>(std::floor(fy)), 0,
                                  g.ny - 2);
  const long k = std::clamp<long>(static_cast<long>(std::floor(fz)), 0,
                                  g.nz - 2);
  const double tx = std::clamp(fx - i, 0.0, 1.0);
  const double ty = std::clamp(fy - j, 0.0, 1.0);
  const double tz = std::clamp(fz - k, 0.0, 1.0);
  double v = 0.0;
  for (int di = 0; di <= 1; ++di)
    for (int dj = 0; dj <= 1; ++dj)
      for (int dk = 0; dk <= 1; ++dk) {
        const double w = (di ? tx : 1 - tx) * (dj ? ty : 1 - ty) *
                         (dk ? tz : 1 - tz);
        v += w * phi[g.index(i + di, j + dj, k + dk)];
      }
  return v;
}

}  // namespace

PbResult pb_polarization_energy(const mol::Molecule& mol,
                                const core::GBParams& gb,
                                const PbParams& params,
                                perf::WorkCounters* counters) {
  OCTGB_CHECK_MSG(!mol.empty(), "PB needs a molecule");
  const auto atoms = mol.atoms();

  Grid g;
  g.h = params.grid_spacing;
  const geom::Aabb box = mol.inflated_bounds();
  g.origin = box.lo - Vec3{params.padding, params.padding, params.padding};
  const Vec3 span = box.extent() +
                    Vec3{2 * params.padding, 2 * params.padding,
                         2 * params.padding};
  g.nx = static_cast<std::size_t>(std::ceil(span.x / g.h)) + 2;
  g.ny = static_cast<std::size_t>(std::ceil(span.y / g.h)) + 2;
  g.nz = static_cast<std::size_t>(std::ceil(span.z / g.h)) + 2;

  const std::size_t bytes = g.cells() * (3 * sizeof(double) + 1);
  if (params.max_bytes != 0 && bytes > params.max_bytes) {
    throw octree::NbListOutOfMemory(util::format(
        "PB grid %zux%zux%zu needs %s (budget %s)", g.nx, g.ny, g.nz,
        util::human_bytes(double(bytes)).c_str(),
        util::human_bytes(double(params.max_bytes)).c_str()));
  }

  const auto inside = solute_mask(g, atoms);
  std::vector<std::uint8_t> solvent(g.cells());
  for (std::size_t c = 0; c < g.cells(); ++c) solvent[c] = !inside[c];
  const auto rhs = spread_charges(g, atoms);

  PbResult result;
  result.grid_cells = g.cells();
  std::uint64_t cell_updates = 0;

  // --- solvated solve: ε_in inside, ε_s outside, DH boundary -----------
  std::vector<double> eps_cell(g.cells());
  for (std::size_t c = 0; c < g.cells(); ++c)
    eps_cell[c] = inside[c] ? gb.eps_in : gb.eps_solv;
  std::vector<double> phi_solv(g.cells(), 0.0);
  // Dirichlet boundary faces.
  for (std::size_t i = 0; i < g.nx; ++i)
    for (std::size_t j = 0; j < g.ny; ++j)
      for (std::size_t k = 0; k < g.nz; ++k) {
        if (i == 0 || j == 0 || k == 0 || i + 1 == g.nx || j + 1 == g.ny ||
            k + 1 == g.nz) {
          phi_solv[g.index(i, j, k)] = boundary_potential(
              g.center(i, j, k), atoms, gb.eps_solv, params.ionic_kappa);
        }
      }
  auto [it_solv, res_solv] =
      sor_solve(g, eps_cell, solvent, rhs, gb.eps_solv, params.ionic_kappa,
                params, phi_solv, &cell_updates);
  result.iterations_solvated = it_solv;

  // --- vacuum solve: uniform ε_in, Coulomb boundary --------------------
  std::fill(eps_cell.begin(), eps_cell.end(), gb.eps_in);
  std::vector<double> phi_vac(g.cells(), 0.0);
  for (std::size_t i = 0; i < g.nx; ++i)
    for (std::size_t j = 0; j < g.ny; ++j)
      for (std::size_t k = 0; k < g.nz; ++k) {
        if (i == 0 || j == 0 || k == 0 || i + 1 == g.nx || j + 1 == g.ny ||
            k + 1 == g.nz) {
          phi_vac[g.index(i, j, k)] = boundary_potential(
              g.center(i, j, k), atoms, gb.eps_in, 0.0);
        }
      }
  auto [it_vac, res_vac] = sor_solve(g, eps_cell, solvent, rhs, gb.eps_solv,
                                     0.0, params, phi_vac, &cell_updates);
  result.iterations_vacuum = it_vac;
  result.final_residual = std::max(res_solv, res_vac);
  result.converged = res_solv <= params.tolerance * 10 &&
                     res_vac <= params.tolerance * 10;

  // --- reaction-field energy -------------------------------------------
  double e = 0.0;
  for (const auto& a : atoms) {
    e += a.charge * (sample_phi(g, phi_solv, a.pos) -
                     sample_phi(g, phi_vac, a.pos));
  }
  result.epol = 0.5 * e;
  if (counters) counters->grid_cells += cell_updates;
  return result;
}

}  // namespace octgb::baselines
