#include "octgb/baselines/gbr6.hpp"

#include <cmath>
#include <numbers>
#include <unordered_map>

#include "octgb/geom/aabb.hpp"
#include "octgb/octree/nblist.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::baselines {

namespace {

using geom::Vec3;

}  // namespace

std::vector<double> gbr6_born_radii(const mol::Molecule& mol,
                                    const Gbr6Params& params,
                                    perf::WorkCounters* counters) {
  const auto atoms = mol.atoms();
  std::vector<double> born(atoms.size());
  if (atoms.empty()) return born;
  const double h = params.grid_spacing;
  OCTGB_CHECK_MSG(h > 0.05, "grid spacing too fine");

  const geom::Aabb box = mol.inflated_bounds();
  const Vec3 ext = box.extent();
  const auto nx = static_cast<std::size_t>(std::ceil(ext.x / h)) + 1;
  const auto ny = static_cast<std::size_t>(std::ceil(ext.y / h)) + 1;
  const auto nz = static_cast<std::size_t>(std::ceil(ext.z / h)) + 1;
  const std::size_t ncells = nx * ny * nz;
  const std::size_t grid_bytes = ncells * sizeof(std::uint8_t);
  if (params.max_bytes != 0 && grid_bytes > params.max_bytes) {
    throw octree::NbListOutOfMemory(util::format(
        "GBr6 grid %zux%zux%zu needs %s (budget %s)", nx, ny, nz,
        util::human_bytes(static_cast<double>(grid_bytes)).c_str(),
        util::human_bytes(static_cast<double>(params.max_bytes)).c_str()));
  }

  // Mark solute cells: a cell is solute if its center lies inside any atom
  // sphere. Rasterize atom by atom (each touches O((r/h)³) cells).
  std::vector<std::uint8_t> solute(ncells, 0);
  auto cell_index = [&](std::size_t ix, std::size_t iy, std::size_t iz) {
    return (ix * ny + iy) * nz + iz;
  };
  // Inflate the marking radius by half a cell so boundary cells whose
  // center falls just outside a sphere still count as solute (otherwise
  // the integral under-descreens and |Epol| overshoots).
  for (const auto& a : atoms) {
    const double r = a.radius + 0.5 * h;
    const long ix0 = std::max(0L, static_cast<long>((a.pos.x - r - box.lo.x) / h));
    const long iy0 = std::max(0L, static_cast<long>((a.pos.y - r - box.lo.y) / h));
    const long iz0 = std::max(0L, static_cast<long>((a.pos.z - r - box.lo.z) / h));
    const long ix1 = std::min<long>(nx - 1, static_cast<long>((a.pos.x + r - box.lo.x) / h) + 1);
    const long iy1 = std::min<long>(ny - 1, static_cast<long>((a.pos.y + r - box.lo.y) / h) + 1);
    const long iz1 = std::min<long>(nz - 1, static_cast<long>((a.pos.z + r - box.lo.z) / h) + 1);
    const double r2 = r * r;
    for (long ix = ix0; ix <= ix1; ++ix)
      for (long iy = iy0; iy <= iy1; ++iy)
        for (long iz = iz0; iz <= iz1; ++iz) {
          const Vec3 c{box.lo.x + (ix + 0.5) * h, box.lo.y + (iy + 0.5) * h,
                       box.lo.z + (iz + 0.5) * h};
          if (geom::dist2(c, a.pos) <= r2) solute[cell_index(ix, iy, iz)] = 1;
        }
  }

  // Collect solute cell centers once.
  std::vector<Vec3> cells;
  for (std::size_t ix = 0; ix < nx; ++ix)
    for (std::size_t iy = 0; iy < ny; ++iy)
      for (std::size_t iz = 0; iz < nz; ++iz)
        if (solute[cell_index(ix, iy, iz)])
          cells.push_back({box.lo.x + (ix + 0.5) * h,
                           box.lo.y + (iy + 0.5) * h,
                           box.lo.z + (iz + 0.5) * h});

  const double dv = h * h * h;
  const double pref = 3.0 / (4.0 * std::numbers::pi);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3 x = atoms[i].pos;
    const double rho = atoms[i].radius;
    const double rho2 = rho * rho;
    double integral = 0.0;
    for (const Vec3& c : cells) {
      const double r2 = geom::dist2(c, x);
      if (r2 <= rho2) continue;  // inside atom i's own ball
      integral += dv / (r2 * r2 * r2);
    }
    const double inv_r3 = 1.0 / (rho * rho * rho) - pref * integral;
    born[i] =
        inv_r3 > 1e-9 ? 1.0 / std::cbrt(inv_r3) : 1e3;
    born[i] = std::max(born[i], rho);
  }
  if (counters)
    counters->grid_cells +=
        static_cast<std::uint64_t>(atoms.size()) * cells.size();
  return born;
}

}  // namespace octgb::baselines
