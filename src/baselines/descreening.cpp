#include "octgb/baselines/descreening.hpp"

#include <cmath>
#include <numbers>

#include "octgb/util/check.hpp"

namespace octgb::baselines {

const char* born_model_name(BornModel m) {
  switch (m) {
    case BornModel::HCT:
      return "HCT";
    case BornModel::OBC:
      return "OBC";
    case BornModel::Still:
      return "STILL";
  }
  return "?";
}

namespace {

/// The HCT pair descreening integral I(r, s, rho): the amount atom j
/// (scaled radius s at distance r) descreens atom i (reduced radius rho).
/// Hawkins, Cramer & Truhlar 1996, Eq. 6–8 (as used by Amber's igb=1).
double hct_integral(double r, double s, double rho) {
  if (r + s <= rho) return 0.0;  // j entirely inside i: no descreening
  const double L = (r - s >= rho) ? (r - s) : rho;
  const double U = r + s;
  const double invL = 1.0 / L;
  const double invU = 1.0 / U;
  return 0.5 * ((invL - invU) + 0.25 * r * (invU * invU - invL * invL) +
                (0.5 / r) * std::log(L / U) +
                (0.25 * s * s / r) * (invL * invL - invU * invU));
}

}  // namespace

std::vector<double> pairwise_born_radii(const mol::Molecule& mol,
                                        const octree::NbList& nblist,
                                        BornModel model,
                                        const DescreeningParams& params,
                                        perf::WorkCounters* counters) {
  const auto atoms = mol.atoms();
  OCTGB_CHECK_MSG(nblist.num_points() == atoms.size(),
                  "nblist/molecule size mismatch");
  std::vector<double> born(atoms.size());
  std::uint64_t pairs = 0;

  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const double rho_full = atoms[i].radius;
    const double rho = std::max(0.5, rho_full - params.dielectric_offset);

    if (model == BornModel::Still) {
      // Qiu et al. 1997 style volume descreening: each neighbor's volume
      // reduces the solvent integral as V_j / (4π r⁴) · P4.
      double inv_r = 1.0 / rho_full;
      for (std::uint32_t j : nblist.neighbors(i)) {
        const double r = geom::dist(atoms[i].pos, atoms[j].pos);
        if (r < 1e-6) continue;
        const double vj = (4.0 / 3.0) * std::numbers::pi *
                          atoms[j].radius * atoms[j].radius * atoms[j].radius;
        inv_r -= params.still_p4 * vj /
                 (4.0 * std::numbers::pi * r * r * r * r);
        ++pairs;
      }
      born[i] = inv_r > 1e-4 ? 1.0 / inv_r : params.max_born;
      born[i] = std::clamp(born[i], rho_full, params.max_born);
      continue;
    }

    // HCT / OBC share the descreening sum.
    double sum = 0.0;
    for (std::uint32_t j : nblist.neighbors(i)) {
      const double r = geom::dist(atoms[i].pos, atoms[j].pos);
      if (r < 1e-6) continue;
      const double s = params.hct_scale *
                       (atoms[j].radius - params.dielectric_offset);
      sum += hct_integral(r, s, rho);
      ++pairs;
    }

    if (model == BornModel::HCT) {
      const double inv = 1.0 / rho - sum;
      born[i] = inv > 1e-4 ? 1.0 / inv : params.max_born;
    } else {  // OBC
      const double psi = sum * rho;
      const double t = std::tanh(params.obc_alpha * psi -
                                 params.obc_beta * psi * psi +
                                 params.obc_gamma * psi * psi * psi);
      const double inv = 1.0 / rho - t / rho_full;
      born[i] = inv > 1e-4 ? 1.0 / inv : params.max_born;
    }
    born[i] = std::clamp(born[i], rho_full, params.max_born);
  }
  if (counters) counters->pairlist_pairs += pairs;
  return born;
}

}  // namespace octgb::baselines
