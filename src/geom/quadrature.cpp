#include "octgb/geom/quadrature.hpp"

#include <array>
#include <cmath>

#include "octgb/util/check.hpp"

namespace octgb::geom {
namespace {

// Orbit generators for the symmetric rules. Coordinates follow Dunavant's
// tabulation: orbit1 is the centroid; orbit3(a) is (1-2a, a, a) plus cyclic
// permutations; orbit6(a, b) is (a, b, 1-a-b) plus all six permutations.
void orbit1(double w, std::vector<TriQuadPoint>& out) {
  out.push_back({1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, w});
}

void orbit3(double a, double w, std::vector<TriQuadPoint>& out) {
  const double r = 1.0 - 2.0 * a;
  out.push_back({r, a, a, w});
  out.push_back({a, r, a, w});
  out.push_back({a, a, r, w});
}

void orbit6(double a, double b, double w, std::vector<TriQuadPoint>& out) {
  const double c = 1.0 - a - b;
  out.push_back({a, b, c, w});
  out.push_back({a, c, b, w});
  out.push_back({b, a, c, w});
  out.push_back({b, c, a, w});
  out.push_back({c, a, b, w});
  out.push_back({c, b, a, w});
}

std::vector<TriQuadPoint> make_rule(int degree) {
  std::vector<TriQuadPoint> r;
  switch (degree) {
    case 1:
      orbit1(1.0, r);
      break;
    case 2:
      orbit3(1.0 / 6.0, 1.0 / 3.0, r);
      break;
    case 3:
      orbit1(-27.0 / 48.0, r);
      orbit3(0.2, 25.0 / 48.0, r);
      break;
    case 4:
      orbit3(0.445948490915965, 0.223381589678011, r);
      orbit3(0.091576213509771, 0.109951743655322, r);
      break;
    case 5:
      orbit1(0.225, r);
      orbit3(0.470142064105115, 0.132394152788506, r);
      orbit3(0.101286507323456, 0.125939180544827, r);
      break;
    case 6:
      orbit3(0.249286745170910, 0.116786275726379, r);
      orbit3(0.063089014491502, 0.050844906370207, r);
      orbit6(0.310352451033785, 0.053145049844816, 0.082851075618374, r);
      break;
    case 7:
      orbit1(-0.149570044467670, r);
      orbit3(0.260345966079038, 0.175615257433204, r);
      orbit3(0.065130102902216, 0.053347235608839, r);
      orbit6(0.312865496004875, 0.048690315425316, 0.077113760890257, r);
      break;
    case 8:
      orbit1(0.144315607677787, r);
      orbit3(0.459292588292723, 0.095091634413246, r);
      orbit3(0.170569307751760, 0.103217370534718, r);
      orbit3(0.050547228317031, 0.032458497623198, r);
      orbit6(0.263112829634638, 0.008394777409958, 0.027230314174435, r);
      break;
    default:
      OCTGB_CHECK_MSG(false, "unreachable degree " << degree);
  }
  // Published tables carry ~1e-10 rounding in the last digits; renormalize
  // so the weights sum to exactly 1 (constant functions integrate exactly).
  double sum = 0.0;
  for (const TriQuadPoint& q : r) sum += q.w;
  for (TriQuadPoint& q : r) q.w /= sum;
  return r;
}

// Rules are immutable static data built on first use.
const std::array<std::vector<TriQuadPoint>, 8>& all_rules() {
  static const std::array<std::vector<TriQuadPoint>, 8> rules = [] {
    std::array<std::vector<TriQuadPoint>, 8> a;
    for (int d = 1; d <= 8; ++d) a[d - 1] = make_rule(d);
    return a;
  }();
  return rules;
}

}  // namespace

std::span<const TriQuadPoint> dunavant_rule(int degree) {
  if (degree < 1) degree = 1;
  if (degree > 8) degree = 8;
  return all_rules()[degree - 1];
}

std::size_t dunavant_point_count(int degree) {
  return dunavant_rule(degree).size();
}

double triangle_area(const Vec3& v0, const Vec3& v1, const Vec3& v2) {
  return 0.5 * (v1 - v0).cross(v2 - v0).norm();
}

void apply_rule_to_triangle(std::span<const TriQuadPoint> rule, const Vec3& v0,
                            const Vec3& v1, const Vec3& v2, const Vec3& normal,
                            std::vector<SurfacePoint>& out) {
  const double area = triangle_area(v0, v1, v2);
  for (const TriQuadPoint& q : rule) {
    out.push_back({v0 * q.a + v1 * q.b + v2 * q.c, normal, q.w * area});
  }
}

void apply_rule_to_triangle(std::span<const TriQuadPoint> rule, const Vec3& v0,
                            const Vec3& v1, const Vec3& v2, const Vec3& n0,
                            const Vec3& n1, const Vec3& n2,
                            std::vector<SurfacePoint>& out) {
  const double area = triangle_area(v0, v1, v2);
  for (const TriQuadPoint& q : rule) {
    const Vec3 n = (n0 * q.a + n1 * q.b + n2 * q.c).normalized();
    out.push_back({v0 * q.a + v1 * q.b + v2 * q.c, n, q.w * area});
  }
}

}  // namespace octgb::geom
