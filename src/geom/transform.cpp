#include "octgb/geom/transform.hpp"

namespace octgb::geom {

Mat3 Mat3::axis_angle(const Vec3& axis, double angle) {
  const Vec3 u = axis.normalized();
  const double c = std::cos(angle), s = std::sin(angle), t = 1.0 - c;
  Mat3 r;
  r.m = {t * u.x * u.x + c,       t * u.x * u.y - s * u.z, t * u.x * u.z + s * u.y,
         t * u.x * u.y + s * u.z, t * u.y * u.y + c,       t * u.y * u.z - s * u.x,
         t * u.x * u.z - s * u.y, t * u.y * u.z + s * u.x, t * u.z * u.z + c};
  return r;
}

Mat3 Mat3::euler_zyx(double yaw, double pitch, double roll) {
  return axis_angle({0, 0, 1}, yaw) * axis_angle({0, 1, 0}, pitch) *
         axis_angle({1, 0, 0}, roll);
}

Mat3 Mat3::operator*(const Mat3& o) const {
  Mat3 r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      double s = 0.0;
      for (int k = 0; k < 3; ++k) s += m[i * 3 + k] * o.m[k * 3 + j];
      r.m[i * 3 + j] = s;
    }
  return r;
}

double Mat3::orthogonality_error() const {
  const Mat3 p = transposed() * *this;
  double err = 0.0;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      err = std::max(err, std::abs(p.m[i * 3 + j] - (i == j ? 1.0 : 0.0)));
  return err;
}

}  // namespace octgb::geom
