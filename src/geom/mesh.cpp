#include "octgb/geom/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "octgb/geom/quadrature.hpp"
#include "octgb/util/check.hpp"

namespace octgb::geom {

double TriMesh::area() const {
  double a = 0.0;
  for (const auto& t : triangles)
    a += triangle_area(vertices[t.v0], vertices[t.v1], vertices[t.v2]);
  return a;
}

TriMesh icosahedron() {
  const double phi = (1.0 + std::sqrt(5.0)) / 2.0;
  TriMesh m;
  const double verts[12][3] = {
      {-1, phi, 0}, {1, phi, 0},   {-1, -phi, 0}, {1, -phi, 0},
      {0, -1, phi}, {0, 1, phi},   {0, -1, -phi}, {0, 1, -phi},
      {phi, 0, -1}, {phi, 0, 1},   {-phi, 0, -1}, {-phi, 0, 1}};
  for (const auto& v : verts)
    m.vertices.push_back(Vec3{v[0], v[1], v[2]}.normalized());
  const std::uint32_t faces[20][3] = {
      {0, 11, 5},  {0, 5, 1},   {0, 1, 7},   {0, 7, 10}, {0, 10, 11},
      {1, 5, 9},   {5, 11, 4},  {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
      {3, 9, 4},   {3, 4, 2},   {3, 2, 6},   {3, 6, 8},  {3, 8, 9},
      {4, 9, 5},   {2, 4, 11},  {6, 2, 10},  {8, 6, 7},  {9, 8, 1}};
  for (const auto& f : faces) m.triangles.push_back({f[0], f[1], f[2]});
  return m;
}

namespace {

TriMesh subdivide(const TriMesh& in) {
  TriMesh out;
  out.vertices = in.vertices;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> midpoint;
  auto mid = [&](std::uint32_t a, std::uint32_t b) -> std::uint32_t {
    const auto key = std::minmax(a, b);
    auto it = midpoint.find(key);
    if (it != midpoint.end()) return it->second;
    const Vec3 p = ((out.vertices[a] + out.vertices[b]) * 0.5).normalized();
    const auto idx = static_cast<std::uint32_t>(out.vertices.size());
    out.vertices.push_back(p);
    midpoint.emplace(key, idx);
    return idx;
  };
  for (const auto& t : in.triangles) {
    const std::uint32_t a = mid(t.v0, t.v1);
    const std::uint32_t b = mid(t.v1, t.v2);
    const std::uint32_t c = mid(t.v2, t.v0);
    out.triangles.push_back({t.v0, a, c});
    out.triangles.push_back({t.v1, b, a});
    out.triangles.push_back({t.v2, c, b});
    out.triangles.push_back({a, b, c});
  }
  return out;
}

}  // namespace

const TriMesh& icosphere(int level) {
  OCTGB_CHECK_MSG(level >= 0 && level <= 7, "icosphere level out of range");
  static std::mutex mu;
  static std::map<int, TriMesh> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(level);
  if (it != cache.end()) return it->second;
  TriMesh m = icosahedron();
  for (int i = 0; i < level; ++i) m = subdivide(m);
  return cache.emplace(level, std::move(m)).first->second;
}

long euler_characteristic(const TriMesh& mesh) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const auto& t : mesh.triangles) {
    edges.insert(std::minmax(t.v0, t.v1));
    edges.insert(std::minmax(t.v1, t.v2));
    edges.insert(std::minmax(t.v2, t.v0));
  }
  return static_cast<long>(mesh.vertices.size()) -
         static_cast<long>(edges.size()) +
         static_cast<long>(mesh.triangles.size());
}

}  // namespace octgb::geom
