#include "octgb/svc/admission.hpp"

#include <limits>

#include "octgb/util/check.hpp"

namespace octgb::svc {

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::TenantQueueFull: return "tenant_queue_full";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::TooLarge: return "too_large";
    case RejectReason::ShuttingDown: return "shutting_down";
  }
  return "unknown";
}

void FairQueues::configure(const std::string& tenant, const TenantConfig& cfg) {
  OCTGB_CHECK_MSG(cfg.weight > 0.0, "svc: tenant weight must be positive");
  auto [it, inserted] = tenants_.try_emplace(tenant);
  it->second.cfg = cfg;
  if (inserted) it->second.vtime = min_live_vtime();
}

RejectReason FairQueues::push(const std::string& tenant, std::uint64_t job_id,
                              const AdmissionConfig& admission) {
  if (total_ >= admission.max_total_queued) return RejectReason::QueueFull;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.try_emplace(tenant).first;
    it->second.cfg = admission.default_tenant;
    it->second.vtime = min_live_vtime();
  }
  Tenant& t = it->second;
  if (t.q.size() >= t.cfg.max_queued) return RejectReason::TenantQueueFull;
  if (t.q.empty()) {
    // Returning from idle: floor to the live minimum so a sleeping tenant
    // cannot bank arbitrarily old virtual time and then flood.
    t.vtime = std::max(t.vtime, min_live_vtime());
  }
  t.q.push_back(job_id);
  ++total_;
  return RejectReason::None;
}

bool FairQueues::pop(std::uint64_t* job_id, std::string* tenant_out) {
  const std::string* best = nullptr;
  double best_v = std::numeric_limits<double>::infinity();
  for (const auto& [name, t] : tenants_) {
    if (t.q.empty()) continue;
    if (t.vtime < best_v) {
      best_v = t.vtime;
      best = &name;
    }
  }
  if (!best) return false;
  Tenant& t = tenants_[*best];
  if (tenant_out) *tenant_out = *best;
  if (job_id) *job_id = t.q.front();
  t.q.pop_front();
  --total_;
  return true;
}

void FairQueues::charge(const std::string& tenant, double cost) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  // Virtual time is weight-normalized: a weight-2 tenant's vtime advances
  // half as fast, so it receives twice the service at equal backlog.
  it->second.vtime += std::max(cost, 0.0) / it->second.cfg.weight;
}

std::size_t FairQueues::queued(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.q.size();
}

double FairQueues::min_live_vtime() const {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& [name, t] : tenants_)
    if (!t.q.empty()) m = std::min(m, t.vtime);
  return m == std::numeric_limits<double>::infinity() ? 0.0 : m;
}

}  // namespace octgb::svc
