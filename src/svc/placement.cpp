#include "octgb/svc/placement.hpp"

#include <algorithm>
#include <numeric>

#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::svc {

CoreAllocator::CoreAllocator(int total) : used_(std::max(total, 1), 0) {}

std::optional<CoreLease> CoreAllocator::try_alloc_locked(int count) {
  count = std::clamp(count, 1, total());
  int run = 0;
  for (int i = 0; i < total(); ++i) {
    run = used_[i] ? 0 : run + 1;
    if (run == count) {
      const int first = i - count + 1;
      std::fill(used_.begin() + first, used_.begin() + first + count, 1);
      in_use_ += count;
      ++grants_;
      return CoreLease{first, count};
    }
  }
  return std::nullopt;
}

std::optional<CoreLease> CoreAllocator::try_alloc(int count) {
  std::lock_guard lk(mu_);
  return try_alloc_locked(count);
}

CoreLease CoreAllocator::alloc(int count) {
  std::unique_lock lk(mu_);
  auto lease = try_alloc_locked(count);
  if (!lease) {
    ++waits_;
    OCTGB_SPAN("svc.place.wait");
    cv_.wait(lk, [&] {
      lease = try_alloc_locked(count);
      return lease.has_value();
    });
  }
  return *lease;
}

void CoreAllocator::release(const CoreLease& lease) {
  if (!lease.valid()) return;
  {
    std::lock_guard lk(mu_);
    OCTGB_CHECK_MSG(lease.first + lease.count <= total(),
                    "svc: lease outside the managed core range");
    for (int i = lease.first; i < lease.first + lease.count; ++i) {
      OCTGB_CHECK_MSG(used_[i], "svc: double release of core " << i);
      used_[i] = 0;
    }
    in_use_ -= lease.count;
  }
  cv_.notify_all();
}

int CoreAllocator::in_use() const {
  std::lock_guard lk(mu_);
  return in_use_;
}

std::uint64_t CoreAllocator::grants() const {
  std::lock_guard lk(mu_);
  return grants_;
}

std::uint64_t CoreAllocator::waits() const {
  std::lock_guard lk(mu_);
  return waits_;
}

std::vector<int> CoreAllocator::proportional_split(
    std::span<const std::uint64_t> ops, int cores) {
  std::vector<int> out(ops.size(), 0);
  if (ops.empty() || cores <= 0) return out;
  const std::uint64_t tot =
      std::accumulate(ops.begin(), ops.end(), std::uint64_t{0});
  if (tot == 0) {  // no load information: even split, remainder to the front
    for (std::size_t i = 0; i < ops.size(); ++i)
      out[i] = cores / static_cast<int>(ops.size()) +
               (static_cast<int>(i) < cores % static_cast<int>(ops.size()));
    return out;
  }
  // Floor of the proportional share, then hand remaining cores to the
  // children with the largest fractional remainder (largest-remainder
  // method, as SET's try_alloc does for utilization).
  int assigned = 0;
  std::vector<double> frac(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const double exact = static_cast<double>(ops[i]) * cores /
                         static_cast<double>(tot);
    out[i] = static_cast<int>(exact);
    frac[i] = exact - out[i];
    assigned += out[i];
  }
  std::vector<std::size_t> order(ops.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
  for (std::size_t k = 0; assigned < cores; ++k) {
    ++out[order[k % order.size()]];
    ++assigned;
  }
  // Every child with work gets at least one core when there are enough.
  if (cores >= static_cast<int>(ops.size())) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i] == 0 || out[i] > 0) continue;
      // Take one from the largest holder.
      auto big = std::max_element(out.begin(), out.end());
      if (*big > 1) {
        --*big;
        out[i] = 1;
      }
    }
  }
  return out;
}

}  // namespace octgb::svc
