#include "octgb/svc/digest.hpp"

#include <cstring>

#include "octgb/util/rng.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::svc {

std::string Digest::hex() const {
  return util::format("%016llx%016llx", static_cast<unsigned long long>(hi),
                      static_cast<unsigned long long>(lo));
}

void DigestBuilder::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  // FNV-1a-64 over every byte.
  for (std::size_t i = 0; i < n; ++i) {
    lo_ ^= p[i];
    lo_ *= 0x100000001b3ULL;
  }
  // Independent stream: fold 8-byte words (tail zero-padded) through a
  // splitmix64 chain so the two halves never cancel the same way.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    hi_ ^= w;
    hi_ = util::splitmix64(hi_);
  }
  if (i < n) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, n - i);
    // Fold the byte count so "abc" and "abc\0" cannot collide.
    hi_ ^= w ^ (static_cast<std::uint64_t>(n - i) << 56);
    hi_ = util::splitmix64(hi_);
  }
}

Digest digest_molecule(const mol::Molecule& mol) {
  DigestBuilder b;
  b.pod(mol.size());
  for (const auto& a : mol.atoms()) {
    b.pod(a.pos.x);
    b.pod(a.pos.y);
    b.pod(a.pos.z);
    b.pod(a.radius);
    b.pod(a.charge);
  }
  return b.finish();
}

Digest digest_job_inputs(const mol::Molecule& mol,
                         const surface::SurfaceParams& surface,
                         const core::EngineConfig& config) {
  DigestBuilder b;
  // Molecule content first (the bulk of the input).
  b.pod(mol.size());
  for (const auto& a : mol.atoms()) {
    b.pod(a.pos.x);
    b.pod(a.pos.y);
    b.pod(a.pos.z);
    b.pod(a.radius);
    b.pod(a.charge);
  }
  // Surface sampling shapes T_Q.
  b.pod(surface.subdivision);
  b.pod(surface.quad_degree);
  b.pod(surface.burial_scale);
  // Tree topology knobs. The Morton fields must separate artifacts too:
  // grid_bits and the strategy change node partitions (and therefore plan
  // capture order and result bits), and `parallel` is pinned for safety so
  // a sort-path bug could never alias two artifacts (the sorts are
  // deterministic by construction, but the digest should not rely on it).
  b.pod(config.atoms_tree_params.max_leaf_size);
  b.pod(config.atoms_tree_params.max_depth);
  b.pod(config.atoms_tree_params.grid_bits);
  b.pod(config.atoms_tree_params.strategy);
  b.pod(config.atoms_tree_params.parallel);
  b.pod(config.qpoints_tree_params.max_leaf_size);
  b.pod(config.qpoints_tree_params.max_depth);
  b.pod(config.qpoints_tree_params.grid_bits);
  b.pod(config.qpoints_tree_params.strategy);
  b.pod(config.qpoints_tree_params.parallel);
  // Partition + arithmetic knobs (everything the plan key or the Born
  // cache stamp depends on). eps_epol and GBParams are deliberately
  // absent — they are warm re-dials on a shared artifact.
  b.pod(config.approx.eps_born);
  b.pod(config.approx.strict_born_criterion);
  b.pod(config.approx.kernel);
  b.pod(config.approx.approx_math);
  b.pod(config.approx.vector.isa);
  b.pod(config.approx.vector.precision);
  return b.finish();
}

}  // namespace octgb::svc
