#include "octgb/svc/cache.hpp"

#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::svc {

ArtifactCache::ArtifactCache(std::size_t budget_bytes)
    : budget_(budget_bytes) {}

ArtifactPtr ArtifactCache::acquire(const Digest& d,
                                   const ArtifactBuilder& build, bool* hit) {
  std::unique_lock lk(mu_);
  for (;;) {
    auto it = index_.find(d);
    if (it == index_.end()) break;  // miss: fall through to build
    Slot& s = it->second;
    if (s.failed) {  // tombstone from a failed build: retry from scratch
      index_.erase(it);
      break;
    }
    if (s.built) {
      ++stats_.hits;
      ++s.artifact->uses;
      touch(s);
      if (hit) *hit = true;
      return s.artifact;
    }
    // Someone else is building this digest: wait for the latch instead of
    // duplicating the preprocessing, then re-examine.
    ++stats_.coalesced;
    build_cv_.wait(lk, [&] {
      auto it2 = index_.find(d);
      return it2 == index_.end() || it2->second.built || it2->second.failed;
    });
    auto it2 = index_.find(d);
    if (it2 != index_.end() && it2->second.failed) {
      // The builder threw; surface the failure to waiters too.
      index_.erase(it2);
      throw util::CheckError("svc: artifact build failed (coalesced waiter)");
    }
    // Built (hit on next loop) or evicted/erased meanwhile (rebuild).
  }

  // Miss: insert an unbuilt slot as the latch, build outside the lock.
  ++stats_.misses;
  auto art = std::make_shared<Artifact>();
  art->digest = d;
  art->uses = 1;
  lru_.push_front(d);
  Slot slot;
  slot.artifact = art;
  slot.lru = lru_.begin();
  index_.emplace(d, std::move(slot));
  lk.unlock();

  std::unique_ptr<core::ScoringSession> session;
  try {
    OCTGB_SPAN("svc.preprocess");
    session = build();
    OCTGB_CHECK_MSG(session != nullptr, "svc: artifact builder returned null");
  } catch (...) {
    lk.lock();
    auto it = index_.find(d);
    if (it != index_.end() && it->second.artifact == art) {
      it->second.failed = true;  // waiters (or the next acquire) erase it
      lru_.erase(it->second.lru);
    }
    build_cv_.notify_all();
    throw;
  }

  art->bytes = session->footprint_bytes();
  art->session = std::move(session);

  lk.lock();
  auto it = index_.find(d);
  if (it != index_.end() && it->second.artifact == art) {
    it->second.built = true;
    stats_.bytes += art->bytes;
    stats_.entries = index_.size();
    touch(it->second);
    evict_over_budget();
  }
  // (If the slot was cleared meanwhile the artifact simply lives on the
  // returned handle, uncached.)
  build_cv_.notify_all();
  if (hit) *hit = false;
  return art;
}

bool ArtifactCache::contains(const Digest& d) const {
  std::lock_guard lk(mu_);
  auto it = index_.find(d);
  return it != index_.end() && it->second.built;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard lk(mu_);
  CacheStats s = stats_;
  s.entries = index_.size();
  return s;
}

void ArtifactCache::clear() {
  std::lock_guard lk(mu_);
  for (auto& [d, s] : index_) {
    if (s.built) stats_.bytes -= s.artifact->bytes;
  }
  // Unbuilt slots are owned by their in-flight builder; dropping the index
  // entry is safe — the builder's re-find fails its identity check and the
  // artifact stays handle-only.
  index_.clear();
  lru_.clear();
  stats_.entries = 0;
}

void ArtifactCache::touch(Slot& s) {
  lru_.splice(lru_.begin(), lru_, s.lru);
}

void ArtifactCache::evict_over_budget() {
  // Walk from the LRU tail; never evict the MRU entry (the one a job is
  // about to run on) and never evict an in-progress build.
  while (stats_.bytes > budget_ && lru_.size() > 1) {
    auto tail = std::prev(lru_.end());
    if (tail == lru_.begin()) break;
    auto it = index_.find(*tail);
    OCTGB_CHECK(it != index_.end());
    Slot& s = it->second;
    if (!s.built) break;  // an unbuilt latch at the tail: stop, not skip
    stats_.bytes -= s.artifact->bytes;
    ++stats_.evictions;
    lru_.erase(tail);
    index_.erase(it);
    trace::instant("svc.cache.evict");
  }
  stats_.entries = index_.size();
}

}  // namespace octgb::svc
