#include "octgb/svc/service.hpp"

#include <algorithm>
#include <cmath>

#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::svc {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

/// Shared completion state between a ticket and the service.
struct JobTicket::State {
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool finished = false;
  RejectReason rejected = RejectReason::None;
  JobResult result;
};

bool JobTicket::accepted() const {
  return st_ != nullptr && reject() == RejectReason::None;
}

RejectReason JobTicket::reject() const {
  if (!st_) return RejectReason::ShuttingDown;
  std::lock_guard lk(st_->mu);
  return st_->rejected;
}

void JobTicket::wait() const {
  if (!st_) return;
  std::unique_lock lk(st_->mu);
  st_->cv.wait(lk, [&] { return st_->finished; });
}

bool JobTicket::done() const {
  if (!st_) return true;
  std::lock_guard lk(st_->mu);
  return st_->finished;
}

const JobResult& JobTicket::result() const {
  OCTGB_CHECK_MSG(st_ != nullptr, "svc: result() on an empty ticket");
  wait();
  std::lock_guard lk(st_->mu);
  OCTGB_CHECK_MSG(st_->rejected == RejectReason::None,
                  "svc: result() on a rejected ticket ("
                      << to_string(st_->rejected) << ")");
  return st_->result;
}

ScoringService::ScoringService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_budget_bytes),
      alloc_(std::max(config.cores, 1)) {
  OCTGB_CHECK_MSG(config_.executors >= 1, "svc: need at least one executor");
  config_.max_job_cores =
      std::clamp(config_.max_job_cores, 1, std::max(config_.cores, 1));
  if (config_.atoms_per_core == 0) config_.atoms_per_core = 1;
  executors_.reserve(static_cast<std::size_t>(config_.executors));
  for (int e = 0; e < config_.executors; ++e)
    executors_.emplace_back([this, e] { executor_loop(e); });
}

ScoringService::~ScoringService() { stop(); }

void ScoringService::register_tenant(const std::string& tenant,
                                     const TenantConfig& cfg) {
  std::lock_guard lk(mu_);
  queues_.configure(tenant, cfg);
}

int ScoringService::width_for(std::size_t atoms) const {
  const std::size_t w = 1 + atoms / config_.atoms_per_core;
  return static_cast<int>(
      std::min<std::size_t>(w, static_cast<std::size_t>(config_.max_job_cores)));
}

JobTicket ScoringService::submit(JobRequest req) {
  OCTGB_SPAN("svc.submit");
  JobTicket ticket;
  ticket.st_ = std::make_shared<JobTicket::State>();

  auto reject_with = [&](RejectReason r) {
    {
      std::lock_guard slk(ticket.st_->mu);
      ticket.st_->rejected = r;
      ticket.st_->finished = true;
    }
    trace::instant("svc.reject");
    ticket.st_->cv.notify_all();
    return ticket;
  };

  // The digest is computed outside the service lock: it is O(atoms) and
  // must not serialize concurrent submitters.
  const Digest digest =
      digest_job_inputs(req.molecule, req.surface, req.config);

  std::lock_guard lk(mu_);
  ++counters_.submitted;
  if (stopping_) {
    ++counters_.rejected_shutting_down;
    return reject_with(RejectReason::ShuttingDown);
  }
  if (req.molecule.size() > config_.admission.max_atoms ||
      req.molecule.empty()) {
    ++counters_.rejected_too_large;
    return reject_with(RejectReason::TooLarge);
  }
  const std::uint64_t id = next_job_id_++;
  const RejectReason r = queues_.push(req.tenant, id, config_.admission);
  if (r != RejectReason::None) {
    if (r == RejectReason::QueueFull) ++counters_.rejected_queue_full;
    if (r == RejectReason::TenantQueueFull)
      ++counters_.rejected_tenant_queue_full;
    return reject_with(r);
  }

  Job job;
  job.id = id;
  job.req = std::move(req);
  job.digest = digest;
  job.state = ticket.st_;
  job.submitted = std::chrono::steady_clock::now();
  pending_.emplace(id, std::move(job));
  work_cv_.notify_one();
  return ticket;
}

void ScoringService::executor_loop(int executor_id) {
  (void)executor_id;
  // Executor-local scheduler pool: one ws::Scheduler per (width, core
  // block) this executor has run, so repeat placements reuse the spawned
  // (and pinned) worker threads.
  SchedPool pool;
  for (;;) {
    Job job;
    {
      std::unique_lock lk(mu_);
      std::uint64_t id = 0;
      std::string tenant;
      work_cv_.wait(lk, [&] {
        return stopping_ || queues_.total_queued() > 0;
      });
      if (!queues_.pop(&id, &tenant)) {
        if (stopping_) return;
        continue;  // spurious wakeup with an empty queue
      }
      auto it = pending_.find(id);
      OCTGB_CHECK_MSG(it != pending_.end(), "svc: queued job has no record");
      job = std::move(it->second);
      pending_.erase(it);
      ++active_jobs_;
    }
    run_job(std::move(job), pool);
  }
}

void ScoringService::run_job(Job job, SchedPool& pool) {
  OCTGB_SPAN("svc.job");
  const auto picked_up = std::chrono::steady_clock::now();
  JobResult result;
  result.digest = job.digest;
  result.queue_seconds = seconds_between(job.submitted, picked_up);

  bool hit = false;
  ArtifactPtr artifact;
  try {
    const JobRequest& req = job.req;
    artifact = cache_.acquire(
        job.digest,
        [&]() -> std::unique_ptr<core::ScoringSession> {
          // Cold path: surface sampling + both octrees + session state.
          const auto surf = surface::build_surface(req.molecule, req.surface);
          return std::make_unique<core::ScoringSession>(
              req.molecule, surf, req.config, req.surface);
        },
        &hit);
    result.cache_hit = hit;

    const int width =
        width_for(artifact->session->molecule().size());
    result.cores = width;

    // Serialize on the artifact *before* taking cores: a job must never
    // hold a core lease while blocked on another job's artifact lock
    // (lease-holders always run to completion, so the allocator's wait
    // queue always drains — see DESIGN.md §2.8).
    std::lock_guard artifact_lk(artifact->exec_mu);
    const CoreLease lease = alloc_.alloc(width);

    // Pinned schedulers are placement-specific: worker→core affinity is
    // fixed at construction, so the pool key carries the lease's first
    // core. Unpinned schedulers are placement-free and share one entry
    // per width.
    const int block = config_.pin_cores ? lease.first : -1;
    auto& sched = pool[{width, block}];
    if (!sched) {
      ws::SchedulerOptions opts;
      opts.pin = config_.pin_cores;
      opts.pin_first = lease.first;
      sched = std::make_unique<ws::Scheduler>(width, opts);
    }

    core::ScoringSession& session = *artifact->session;
    session.engine().gb() = req.config.gb;
    {
      OCTGB_SPAN("svc.exec");
      if (req.kind == JobKind::Evaluate) {
        result.epol = session.evaluate_at(req.config.approx, sched.get()).epol;
      } else {
        session.engine().approx() = req.config.approx;
        result.pose_scores = session.score_poses(
            req.poses, req.ligand_begin, req.pose_mode, sched.get());
        if (req.pose_mode == core::PoseMode::Full) session.reset_to_base();
      }
    }
    // Sample the steal-tier classification of the job's final evaluation
    // (the engine resets scheduler stats per compute) before handing the
    // cores back; offblock must stay zero under pinning.
    {
      const ws::SchedulerStats st = sched->stats();
      std::lock_guard lk(mu_);
      steal_tiers_.local += st.local_steals;
      steal_tiers_.socket += st.socket_steals;
      steal_tiers_.remote += st.remote_steals;
      steal_tiers_.offblock += st.offblock_steals;
      steal_tiers_.pinned_workers =
          std::max(steal_tiers_.pinned_workers, st.pinned_workers);
    }
    alloc_.release(lease);
  } catch (...) {
    // Surface the failure on the ticket as a reject, keep the service up.
    {
      std::lock_guard slk(job.state->mu);
      job.state->rejected = RejectReason::TooLarge;
      job.state->finished = true;
    }
    job.state->cv.notify_all();
    std::lock_guard lk(mu_);
    --active_jobs_;
    drain_cv_.notify_all();
    return;
  }

  const auto done = std::chrono::steady_clock::now();
  result.exec_seconds = seconds_between(picked_up, done);
  result.total_seconds = seconds_between(job.submitted, done);
  finish(job, std::move(result));
}

void ScoringService::finish(Job& job, JobResult result) {
  {
    std::lock_guard lk(mu_);
    ++counters_.completed;
    if (job.req.kind == JobKind::Evaluate) {
      ++counters_.evaluations;
    } else {
      counters_.poses_scored += result.pose_scores.size();
    }
    if (result.cache_hit) {
      ++counters_.cache_hits;
    } else {
      ++counters_.cache_misses;
      ++counters_.preprocessed;
    }
    ++completed_by_tenant_[job.req.tenant];
    latencies_ms_.push_back(result.total_seconds * 1e3);
    // Fair share charges actual service time, so one tenant's huge
    // molecules cost it proportionally more than another's small ones.
    queues_.charge(job.req.tenant, result.exec_seconds);
    --active_jobs_;
  }
  drain_cv_.notify_all();
  {
    std::lock_guard slk(job.state->mu);
    job.state->result = std::move(result);
    job.state->finished = true;
  }
  job.state->cv.notify_all();
}

void ScoringService::drain() {
  std::unique_lock lk(mu_);
  drain_cv_.wait(lk, [&] {
    return queues_.total_queued() == 0 && active_jobs_ == 0;
  });
}

void ScoringService::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopping_ && executors_.empty()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : executors_)
    if (t.joinable()) t.join();
  executors_.clear();
}

perf::ServiceCounters ScoringService::counters() const {
  perf::ServiceCounters c;
  {
    std::lock_guard lk(mu_);
    c = counters_;
  }
  const CacheStats cs = cache_.stats();
  // The cache sees one acquire per executed job; evictions are cache-side
  // only, so splice them in here where the two views join.
  c.cache_evictions = cs.evictions;
  return c;
}

LatencySummary ScoringService::latency() const {
  std::vector<double> sorted;
  {
    std::lock_guard lk(mu_);
    sorted = latencies_ms_;
  }
  std::sort(sorted.begin(), sorted.end());
  LatencySummary s;
  s.count = sorted.size();
  if (!sorted.empty()) {
    s.p50_ms = percentile(sorted, 0.50);
    s.p95_ms = percentile(sorted, 0.95);
    s.p99_ms = percentile(sorted, 0.99);
    s.max_ms = sorted.back();
  }
  return s;
}

ScoringService::StealTierTotals ScoringService::steal_tiers() const {
  std::lock_guard lk(mu_);
  return steal_tiers_;
}

std::uint64_t ScoringService::completed_for(const std::string& tenant) const {
  std::lock_guard lk(mu_);
  auto it = completed_by_tenant_.find(tenant);
  return it == completed_by_tenant_.end() ? 0 : it->second;
}

void ScoringService::export_metrics(trace::MetricsRegistry& m,
                                    const std::string& prefix) const {
  const auto scoped = [&](const char* name) {
    return prefix.empty() ? std::string(name) : std::string(name) + "." + prefix;
  };
  m.add_svc(prefix, counters());
  const CacheStats cs = cache_.stats();
  m.set(scoped("svc.cache.bytes"), static_cast<std::uint64_t>(cs.bytes));
  m.set(scoped("svc.cache.entries"), static_cast<std::uint64_t>(cs.entries));
  m.set(scoped("svc.cache.coalesced_builds"), cs.coalesced);
  const LatencySummary ls = latency();
  m.set(scoped("svc.latency.count"), static_cast<std::uint64_t>(ls.count));
  m.set(scoped("svc.latency.p50_ms"), ls.p50_ms);
  m.set(scoped("svc.latency.p95_ms"), ls.p95_ms);
  m.set(scoped("svc.latency.p99_ms"), ls.p99_ms);
  m.set(scoped("svc.latency.max_ms"), ls.max_ms);
  m.set(scoped("svc.cores.grants"), alloc_.grants());
  m.set(scoped("svc.cores.waits"), alloc_.waits());
  const StealTierTotals st = steal_tiers();
  m.add_steal_tiers(prefix, st.local, st.socket, st.remote, st.offblock);
  m.set(scoped("ws.pinned_workers"), st.pinned_workers);
}

}  // namespace octgb::svc
