// Runtime ISA resolution for the explicit vector layer. CPU detection is
// done once and cached, so every resolve() during a process lifetime
// agrees — the engine stamps resolved VectorParams into the Born cache
// and relies on that stability.

#include "octgb/simd/dispatch.hpp"

namespace octgb::simd {

namespace {

int rank(VectorIsa isa) {
  switch (isa) {
    case VectorIsa::Scalar:
      return 0;
    case VectorIsa::V128:
      return 1;
    case VectorIsa::V256:
      return 2;
    case VectorIsa::V512:
      return 3;
    case VectorIsa::Auto:
      break;
  }
  return -1;
}

VectorIsa detect_cpu_widest() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return VectorIsa::V512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return VectorIsa::V256;
  return VectorIsa::V128;  // SSE2 is the x86-64 baseline
#else
  // NEON on aarch64; plain GCC vector expansion elsewhere. Either way the
  // 128-bit TU is always correct to run.
  return VectorIsa::V128;
#endif
}

VectorIsa widest_available() {
  static const VectorIsa widest = [] {
    const VectorIsa cpu = detect_cpu_widest();
    const VectorIsa built = max_built_isa();
    return rank(cpu) < rank(built) ? cpu : built;
  }();
  return widest;
}

/// What Auto resolves to. Deliberately stops at 256 bits even when
/// AVX-512 is runnable: 512-bit execution is frequency-throttled or
/// emulated on many parts (client cores, some hypervisors), and the
/// division-bound Born kernel rarely recovers the clock loss from the
/// extra lanes — measured replay throughput regresses v512 vs v256 on
/// such hosts. An explicit isa = V512 opts in after measuring;
/// bench_kernels emits one series per width for exactly that decision.
VectorIsa auto_isa() {
  const VectorIsa widest = widest_available();
  return rank(widest) > rank(VectorIsa::V256) ? VectorIsa::V256 : widest;
}

}  // namespace

VectorIsa max_built_isa() {
#if defined(OCTGB_SIMD_HAS_V512)
  return VectorIsa::V512;
#elif defined(OCTGB_SIMD_HAS_V256)
  return VectorIsa::V256;
#else
  return VectorIsa::V128;
#endif
}

bool isa_available(VectorIsa isa) {
  if (isa == VectorIsa::Scalar) return true;
  if (isa == VectorIsa::Auto) return false;
  return rank(isa) <= rank(widest_available());
}

VectorIsa resolve_isa(VectorIsa requested) {
  if (requested == VectorIsa::Scalar) return VectorIsa::Scalar;
  const VectorIsa widest = widest_available();
  if (requested == VectorIsa::Auto) return auto_isa();
  return rank(requested) <= rank(widest) ? requested : widest;
}

VectorParams resolve(VectorParams requested) {
  requested.isa = resolve_isa(requested.isa);
  return requested;
}

const KernelSet* kernels(VectorIsa isa) {
  switch (resolve_isa(isa)) {
    case VectorIsa::V128:
      return detail::make_kernels_v128();
#if defined(OCTGB_SIMD_HAS_V256)
    case VectorIsa::V256:
      return detail::make_kernels_v256();
#endif
#if defined(OCTGB_SIMD_HAS_V512)
    case VectorIsa::V512:
      return detail::make_kernels_v512();
#endif
    default:
      return nullptr;  // Scalar: use the legacy batch kernels
  }
}

const char* isa_name(VectorIsa isa) {
  switch (isa) {
    case VectorIsa::Auto:
      return "auto";
    case VectorIsa::Scalar:
      return "scalar";
    case VectorIsa::V128:
      return "v128";
    case VectorIsa::V256:
      return "v256";
    case VectorIsa::V512:
      return "v512";
  }
  return "?";
}

int lanes(VectorIsa isa) {
  const KernelSet* ks = kernels(isa);
  return ks ? ks->lanes : 0;
}

}  // namespace octgb::simd
