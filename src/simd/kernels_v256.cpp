// 256-bit (4 double lanes / 8 float lanes) kernels, compiled with
// -mavx2 -mfma (plus -fno-math-errno -ffp-contract=off; contraction is
// disabled so each lane stays bit-identical to the scalar reference ops —
// see pack.hpp). Only compiled when the compiler supports the flags and
// OCTGB_SIMD_MAX_ISA allows it; only *executed* when the running CPU
// reports AVX2 (dispatch.cpp). The anonymous namespace keeps these
// AVX2-compiled instantiations out of every other TU's symbol space.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "octgb/core/fastmath.hpp"
#include "octgb/simd/dispatch.hpp"

namespace octgb::simd {
namespace {
#include "octgb/simd/kernels_impl.hpp"
}  // namespace

namespace detail {
const KernelSet* make_kernels_v256() {
  static const KernelSet ks = make_kernel_set<4>("v256");
  return &ks;
}
}  // namespace detail
}  // namespace octgb::simd
