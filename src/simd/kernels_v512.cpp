// 512-bit (8 double lanes / 16 float lanes) kernels, compiled with
// -mavx512f (plus -fno-math-errno -ffp-contract=off). Only compiled when
// the compiler supports the flag and OCTGB_SIMD_MAX_ISA allows it; only
// *executed* when the running CPU reports AVX-512F (dispatch.cpp). The
// anonymous namespace keeps these AVX-512-compiled instantiations out of
// every other TU's symbol space — without it a vague-linkage template
// body built here could be the one the linker keeps, and a v128-only CPU
// would SIGILL inside what looks like portable code.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "octgb/core/fastmath.hpp"
#include "octgb/simd/dispatch.hpp"

namespace octgb::simd {
namespace {
#include "octgb/simd/kernels_impl.hpp"
}  // namespace

namespace detail {
const KernelSet* make_kernels_v512() {
  static const KernelSet ks = make_kernel_set<8>("v512");
  return &ks;
}
}  // namespace detail
}  // namespace octgb::simd
