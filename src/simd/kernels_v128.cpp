// 128-bit (2 double lanes / 4 float lanes) kernels — the portable width.
// Compiled with the build's baseline flags only (SSE2 on x86-64, NEON on
// aarch64, plain scalar expansion elsewhere), plus -fno-math-errno and
// -ffp-contract=off (see src/simd/CMakeLists.txt). Everything from
// kernels_impl.hpp lands in an anonymous namespace so these
// instantiations can never be merged with the AVX2/AVX-512 TUs'.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "octgb/core/fastmath.hpp"
#include "octgb/simd/dispatch.hpp"

namespace octgb::simd {
namespace {
#include "octgb/simd/kernels_impl.hpp"
}  // namespace

namespace detail {
const KernelSet* make_kernels_v128() {
  static const KernelSet ks = make_kernel_set<2>("v128");
  return &ks;
}
}  // namespace detail
}  // namespace octgb::simd
