#include "octgb/surface/surface.hpp"

#include <cmath>
#include <numbers>
#include <unordered_map>

#include "octgb/geom/mesh.hpp"
#include "octgb/geom/quadrature.hpp"
#include "octgb/util/check.hpp"

namespace octgb::surface {

namespace {

using geom::Vec3;

/// Uniform hash grid over atom centers for the burial test.
class AtomGrid {
 public:
  AtomGrid(std::span<const mol::Atom> atoms, double cell)
      : atoms_(atoms), cell_(cell), inv_(1.0 / cell) {
    cells_.reserve(atoms.size() / 2 + 16);
    for (std::uint32_t i = 0; i < atoms.size(); ++i)
      cells_[key_of(atoms[i].pos)].push_back(i);
  }

  /// Collect atoms whose center is within `range` of `p`.
  void collect(const Vec3& p, double range,
               std::vector<std::uint32_t>& out) const {
    out.clear();
    const long r = static_cast<long>(std::ceil(range * inv_)) + 0;
    const long cx = coord(p.x), cy = coord(p.y), cz = coord(p.z);
    const double range2 = range * range;
    for (long dx = -r; dx <= r; ++dx)
      for (long dy = -r; dy <= r; ++dy)
        for (long dz = -r; dz <= r; ++dz) {
          auto it = cells_.find(pack(cx + dx, cy + dy, cz + dz));
          if (it == cells_.end()) continue;
          for (std::uint32_t j : it->second)
            if (geom::dist2(p, atoms_[j].pos) <= range2) out.push_back(j);
        }
  }

 private:
  long coord(double x) const { return static_cast<long>(std::floor(x * inv_)); }
  static std::uint64_t pack(long x, long y, long z) {
    const std::uint64_t bias = 1u << 20;
    return ((static_cast<std::uint64_t>(x) + bias) << 42) |
           ((static_cast<std::uint64_t>(y) + bias) << 21) |
           (static_cast<std::uint64_t>(z) + bias);
  }
  std::uint64_t key_of(const Vec3& p) const {
    return pack(coord(p.x), coord(p.y), coord(p.z));
  }

  std::span<const mol::Atom> atoms_;
  double cell_;
  double inv_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

/// Emit quadrature points for one atom sphere, culling buried points.
void sample_atom(std::uint32_t ai, std::span<const mol::Atom> atoms,
                 const geom::TriMesh& unit, double area_correction,
                 std::span<const geom::TriQuadPoint> rule,
                 std::span<const std::uint32_t> blockers, double burial_scale,
                 Surface& out) {
  const mol::Atom& atom = atoms[ai];
  const double r = atom.radius;
  for (const auto& tri : unit.triangles) {
    // Vertices on the unit sphere double as outward normals; the sphere
    // triangle is the flat facet scaled to radius r.
    const Vec3& u0 = unit.vertices[tri.v0];
    const Vec3& u1 = unit.vertices[tri.v1];
    const Vec3& u2 = unit.vertices[tri.v2];
    const Vec3 v0 = atom.pos + u0 * r;
    const Vec3 v1 = atom.pos + u1 * r;
    const Vec3 v2 = atom.pos + u2 * r;
    const double area = geom::triangle_area(v0, v1, v2) * area_correction;
    for (const auto& q : rule) {
      // Position on the curved sphere patch (projected), normal radial.
      const Vec3 dir = (u0 * q.a + u1 * q.b + u2 * q.c).normalized();
      const Vec3 p = atom.pos + dir * r;
      bool buried = false;
      for (std::uint32_t j : blockers) {
        if (j == ai) continue;
        const double rj = atoms[j].radius * burial_scale;
        if (geom::dist2(p, atoms[j].pos) < rj * rj) {
          buried = true;
          break;
        }
      }
      if (buried) continue;
      out.positions.push_back(p);
      out.normals.push_back(dir);
      out.weights.push_back(q.w * area);
      out.owner_atom.push_back(ai);
    }
  }
}

}  // namespace

double Surface::total_area() const {
  double a = 0.0;
  for (double w : weights) a += w;
  return a;
}

std::size_t Surface::footprint_bytes() const {
  return positions.capacity() * sizeof(geom::Vec3) +
         normals.capacity() * sizeof(geom::Vec3) +
         weights.capacity() * sizeof(double) +
         owner_atom.capacity() * sizeof(std::uint32_t);
}

Surface build_surface(const mol::Molecule& mol, const SurfaceParams& params) {
  OCTGB_CHECK_MSG(params.subdivision >= 0 && params.subdivision <= 5,
                  "subdivision out of range");
  Surface out;
  const auto atoms = mol.atoms();
  if (atoms.empty()) return out;

  const geom::TriMesh& unit = geom::icosphere(params.subdivision);
  // Scale flat-facet areas so a full sphere integrates to exactly 4πr².
  const double area_correction = 4.0 * std::numbers::pi / unit.area();
  const auto rule = geom::dunavant_rule(params.quad_degree);

  double max_radius = 0.0;
  for (const auto& a : atoms) max_radius = std::max(max_radius, a.radius);

  AtomGrid grid(atoms, std::max(2.0 * max_radius, 1.0));
  std::vector<std::uint32_t> blockers;
  const std::size_t expected =
      atoms.size() * unit.num_triangles() * rule.size() / 2;
  out.positions.reserve(expected);
  out.normals.reserve(expected);
  out.weights.reserve(expected);
  out.owner_atom.reserve(expected);

  for (std::uint32_t i = 0; i < atoms.size(); ++i) {
    // Any sphere that can bury a point of atom i has its center within
    // r_i + r_max of atom i's surface, i.e. within r_i + r_max of center.
    grid.collect(atoms[i].pos, atoms[i].radius + max_radius, blockers);
    sample_atom(i, atoms, unit, area_correction, rule, blockers,
                params.burial_scale, out);
  }
  return out;
}

Surface build_sphere_surface(const geom::Vec3& center, double radius,
                             const SurfaceParams& params) {
  mol::Molecule m("sphere");
  mol::Atom a;
  a.pos = center;
  a.radius = radius;
  a.charge = 1.0;
  m.add_atom(a);
  return build_surface(m, params);
}

}  // namespace octgb::surface
