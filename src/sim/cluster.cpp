#include "octgb/sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"

namespace octgb::sim {

using core::GBEngine;
using core::Segment;

double CollectiveCosts::tree_collective(double bytes) const {
  if (ranks <= 1) return 0.0;
  const int levels =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(ranks))));
  const int intra_levels = static_cast<int>(std::ceil(std::log2(
      static_cast<double>(std::min(ranks, topology.ranks_per_node)))));
  const int inter_levels = std::max(0, levels - intra_levels);
  return intra_levels * (machine.shm_ts + machine.shm_tw * bytes) +
         inter_levels * (machine.net_ts + machine.net_tw * bytes);
}

double CollectiveCosts::allreduce(double bytes) const {
  return 2.0 * tree_collective(bytes);
}

double CollectiveCosts::allgatherv(double total_bytes) const {
  if (ranks <= 1) return 0.0;
  // Root receives P−1 contributions (serialized), average message is
  // total/P bytes; classify by the sender's node.
  const double per_msg = total_bytes / ranks;
  double recv = 0.0;
  for (int r = 1; r < ranks; ++r) {
    if (topology.same_node(0, r))
      recv += machine.shm_ts + machine.shm_tw * per_msg;
    else
      recv += machine.net_ts + machine.net_tw * per_msg;
  }
  return recv + tree_collective(total_bytes);
}

namespace {

/// Virtual-track label for a simulated rank ("rank3 (sim)").
std::string sim_rank_name(int r) {
  return "rank" + std::to_string(r) + " (sim)";
}

}  // namespace

SimResult simulate_cluster(const GBEngine& engine,
                           const ClusterConfig& config) {
  if (engine.config().trace.enabled) trace::Tracer::instance().set_enabled(true);
  OCTGB_CHECK_MSG(config.ranks >= 1 && config.threads_per_rank >= 1,
                  "bad cluster shape");
  const int P = config.ranks;
  const int p = config.threads_per_rank;
  const auto n_nodes = engine.num_ta_nodes();
  const auto n_atoms = engine.num_atoms();
  const auto& q_leaves = engine.q_leaves();
  const auto& a_leaves = engine.a_leaves();

  SimResult result;
  result.total_cores = P * p;
  result.work_per_rank.resize(P);

  // Segments (identical to run_hybrid's division).
  std::vector<Segment> q_segments(P), a_leaf_segments(P), atom_segments(P);
  if (config.weighted_division) {
    auto wq = core::weighted_leaf_segments(engine.qpoints_tree().tree,
                                           q_leaves, P);
    auto wa =
        core::weighted_leaf_segments(engine.atoms_tree().tree, a_leaves, P);
    for (int i = 0; i < P; ++i) {
      q_segments[i] = wq[i];
      a_leaf_segments[i] = wa[i];
    }
  } else {
    for (int i = 0; i < P; ++i) {
      q_segments[i] = core::even_segment(q_leaves.size(), P, i);
      a_leaf_segments[i] = core::even_segment(a_leaves.size(), P, i);
    }
  }
  for (int i = 0; i < P; ++i)
    atom_segments[i] = core::even_segment(n_atoms, P, i);

  // Ranks execute sequentially; sums into shared arrays are equivalent to
  // the Allreduce (addition is commutative; merge order is deterministic).
  std::vector<double> node_s(n_nodes, 0.0);
  std::vector<double> atom_s(n_atoms, 0.0);
  std::vector<double> born_tree(n_atoms, 0.0);

  // Each simulated rank's spans land on its own virtual Perfetto track
  // (one OS thread plays every rank in turn — see trace.hpp).
  for (int r = 0; r < P; ++r) {
    trace::VirtualThreadScope rank_track(r, sim_rank_name(r));
    engine.phase_integrals(q_segments[r], node_s, atom_s,
                           result.work_per_rank[r]);
  }
  for (int r = 0; r < P; ++r) {
    trace::VirtualThreadScope rank_track(r, sim_rank_name(r));
    engine.phase_push(atom_segments[r], node_s, atom_s, born_tree,
                      result.work_per_rank[r]);
  }
  const core::EpolContext ctx = engine.build_epol_context(born_tree);
  double epol = 0.0;
  for (int r = 0; r < P; ++r) {
    trace::VirtualThreadScope rank_track(r, sim_rank_name(r));
    epol += config.atom_based_epol
                ? engine.phase_epol_atom_based(ctx, born_tree,
                                               atom_segments[r],
                                               result.work_per_rank[r])
                : engine.phase_epol(ctx, born_tree, a_leaf_segments[r],
                                    result.work_per_rank[r]);
  }
  result.epol = epol;
  result.born = engine.born_to_input_order(born_tree);
  for (const auto& w : result.work_per_rank) result.work_total += w;

  // ---- modeled time -----------------------------------------------------
  const perf::MachineModel& m = config.machine;
  const bool approx = engine.config().approx.approx_math;

  // Replicated footprint of one real process, plus the work-stealing
  // runtime's per-worker overhead (deques, reserved stacks) — this is why
  // the paper's measured node-memory ratio is 5.86 rather than exactly 6.
  result.bytes_per_rank = engine.footprint_bytes() +
                          (n_nodes + 2 * n_atoms) * sizeof(double) +
                          std::size_t{65536} * (p - 1);

  // Cache pressure: resident bytes per socket = processes on the socket ×
  // the slice of data a process actually streams (its working set). Each
  // rank touches its leaf segment's share of the tree data plus the
  // shared accumulation arrays.
  const int ranks_per_node = std::min(P, config.topology.ranks_per_node);
  const int sockets = m.sockets_per_node;
  const int procs_per_socket =
      std::max(1, (ranks_per_node + sockets - 1) / sockets);
  const double ws_per_rank =
      static_cast<double>(engine.footprint_bytes()) / P +
      static_cast<double>((n_nodes + 2 * n_atoms) * sizeof(double));
  const double socket_bytes = ws_per_rank * procs_per_socket;
  const double cache_factor = m.cache_factor(socket_bytes, 1);

  // Work-stealing / interfacing overhead grows with p.
  const double thread_eff = 1.0 + config.thread_overhead * (p - 1);

  double max_rank_seconds = 0.0;
  for (const auto& w : result.work_per_rank) {
    // compute_seconds already includes the cache factor via its argument;
    // here we pass factor 1 and apply our socket-level factor explicitly.
    const double cycles_seconds = m.compute_seconds(w, 0.0, 1, approx);
    const double t = cycles_seconds * cache_factor * thread_eff / p;
    max_rank_seconds = std::max(max_rank_seconds, t);
  }
  result.compute_seconds = max_rank_seconds;

  // Collectives (Fig. 4 steps 3, 5, 7).
  CollectiveCosts costs{m, config.topology, P};
  const double node_bytes = static_cast<double>(n_nodes) * sizeof(double);
  const double atom_bytes = static_cast<double>(n_atoms) * sizeof(double);
  result.comm_seconds = costs.allreduce(node_bytes) +
                        costs.allreduce(atom_bytes) +
                        costs.allgatherv(atom_bytes) +
                        costs.allreduce(sizeof(double));
  if (P > 1 && p > 1)
    result.comm_seconds += config.mpi_cilk_interface_seconds;
  result.total_seconds = result.compute_seconds + result.comm_seconds;
  return result;
}

double jittered_total_seconds(const SimResult& base, const ClusterConfig& cfg,
                              std::uint64_t repeat_seed) {
  util::Xoshiro256 rng(repeat_seed ^ 0x9e3779b97f4a7c15ULL);
  // Per-rank multiplicative OS noise; the slowest rank gates the run, so
  // the expected max grows with the number of ranks (lognormal-ish tail).
  double worst = 0.0;
  for (int r = 0; r < cfg.ranks; ++r) {
    const double noise = std::exp(0.03 * rng.normal() +
                                  0.02 * rng.uniform());  // ≥ ~0.94, tailed
    worst = std::max(worst, noise);
  }
  // Network jitter on the collectives.
  const double comm_noise = 1.0 + 0.15 * rng.uniform();
  return base.compute_seconds * worst + base.comm_seconds * comm_noise;
}

double optimal_checkpoint_interval(double checkpoint_seconds,
                                   double mtbf_seconds) {
  OCTGB_CHECK_MSG(checkpoint_seconds > 0.0 && mtbf_seconds > 0.0,
                  "checkpoint cost and MTBF must be positive");
  return std::sqrt(2.0 * checkpoint_seconds * mtbf_seconds);
}

RecoveryEstimate estimate_recovery(const SimResult& base,
                                   const RecoveryConfig& config) {
  OCTGB_CHECK_MSG(config.mtbf_seconds > 0.0, "MTBF must be positive");
  OCTGB_CHECK_MSG(config.checkpoint_seconds >= 0.0 &&
                      config.restart_seconds >= 0.0,
                  "checkpoint/restart costs must be non-negative");
  RecoveryEstimate est;
  est.optimal_interval_seconds =
      config.checkpoint_seconds > 0.0
          ? optimal_checkpoint_interval(config.checkpoint_seconds,
                                        config.mtbf_seconds)
          : 0.0;
  est.interval_seconds = config.checkpoint_interval_seconds > 0.0
                             ? config.checkpoint_interval_seconds
                             : est.optimal_interval_seconds;
  const double T = base.total_seconds;
  // Checkpoint tax: one checkpoint of cost δ every τ seconds of progress.
  est.checkpoint_overhead_seconds =
      est.interval_seconds > 0.0
          ? (T / est.interval_seconds) * config.checkpoint_seconds
          : 0.0;
  // First-order failure model: failures arrive at rate 1/MTBF over the
  // *stretched* runtime; each loses half an interval of progress plus the
  // restart. Solved to first order (failures computed against the
  // fault-free-plus-checkpoint time, as in Young's original analysis).
  const double stretched = T + est.checkpoint_overhead_seconds;
  est.expected_failures = stretched / config.mtbf_seconds;
  est.rework_seconds =
      est.expected_failures *
      (0.5 * est.interval_seconds + config.restart_seconds);
  est.expected_total_seconds = stretched + est.rework_seconds;
  est.overhead_fraction =
      T > 0.0 ? (est.expected_total_seconds - T) / T : 0.0;
  return est;
}

}  // namespace octgb::sim
