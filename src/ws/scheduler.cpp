#include "octgb/ws/scheduler.hpp"

#include <algorithm>
#include <string>

#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::ws {

namespace {
thread_local Scheduler* tls_scheduler = nullptr;
thread_local void* tls_worker = nullptr;  // Scheduler::Worker*
}  // namespace

Scheduler::Scheduler(int workers) {
  OCTGB_CHECK_MSG(workers >= 1, "need at least one worker");
  trace_pid_ = trace::current_pid();
  for (int i = 0; i < workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->id = i;
    w->sched = this;
    w->rng = util::Xoshiro256(0x5eedULL + static_cast<std::uint64_t>(i));
    all_workers_.push_back(std::move(w));
  }
  for (int i = 1; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true);
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

Scheduler* Scheduler::current() { return tls_scheduler; }

void Scheduler::run(const std::function<void()>& root) {
  OCTGB_CHECK_MSG(tls_scheduler == nullptr, "Scheduler::run is not reentrant");
  Worker& w0 = *all_workers_[0];
  tls_scheduler = this;
  tls_worker = &w0;
  active_.store(true);
  cv_.notify_all();
  root();
  // Drain: the root returned, but stolen grandchildren may still be live
  // only if the caller's fork-joins all completed — which they did, since
  // fork2/wait_for return only when their join counters hit zero. Safe to
  // deactivate.
  active_.store(false);
  tls_scheduler = nullptr;
  tls_worker = nullptr;
}

void Scheduler::worker_loop(int id) {
  Worker& w = *all_workers_[id];
  tls_scheduler = this;
  tls_worker = &w;
  // Label this worker's trace track under the creating rank's group (a
  // no-op unless tracing was enabled before the scheduler was built).
  if (trace::enabled())
    trace::set_thread_identity(trace_pid_, "worker" + std::to_string(id));
  while (!shutdown_.load(std::memory_order_relaxed)) {
    if (!active_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(10), [&] {
        return shutdown_.load() || active_.load();
      });
      continue;
    }
    detail::Task* t = try_acquire(w);
    if (t) {
      execute(w, t);
    } else {
      std::this_thread::yield();
    }
  }
  tls_scheduler = nullptr;
  tls_worker = nullptr;
}

void Scheduler::spawn_task(Worker& w, std::function<void()> fn,
                           std::atomic<std::int64_t>* join) {
  auto* t = new detail::Task{std::move(fn), join};
  w.spawns.fetch_add(1, std::memory_order_relaxed);
  w.deque.push(t);
}

detail::Task* Scheduler::try_acquire(Worker& w) {
  if (detail::Task* t = w.deque.pop()) return t;
  // Randomized stealing: pick a uniformly random victim != self.
  const std::size_t n = all_workers_.size();
  if (n <= 1) return nullptr;
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::size_t victim = w.rng.below(n);
    if (victim == static_cast<std::size_t>(w.id)) continue;
    w.steal_attempts.fetch_add(1, std::memory_order_relaxed);
    if (detail::Task* t = all_workers_[victim]->deque.steal()) {
      w.steals.fetch_add(1, std::memory_order_relaxed);
      trace::instant("ws.steal");
      return t;
    }
  }
  return nullptr;
}

void Scheduler::execute(Worker& w, detail::Task* t) {
  w.executed.fetch_add(1, std::memory_order_relaxed);
  t->fn();
  if (t->join) t->join->fetch_sub(1, std::memory_order_acq_rel);
  delete t;
}

void Scheduler::wait_for(Worker& w, std::atomic<std::int64_t>& join) {
  while (join.load(std::memory_order_acquire) > 0) {
    if (detail::Task* t = try_acquire(w)) {
      execute(w, t);
    } else {
      std::this_thread::yield();
    }
  }
}

void Scheduler::fork2(const std::function<void()>& f1,
                      const std::function<void()>& f2) {
  Scheduler* s = tls_scheduler;
  auto* w = static_cast<Worker*>(tls_worker);
  if (s == nullptr || w == nullptr || s->num_workers() == 1) {
    f1();
    f2();
    return;
  }
  std::atomic<std::int64_t> join{1};
  s->spawn_task(*w, f1, &join);
  f2();
  // Fast path: if nobody stole f1, run it inline.
  if (detail::Task* t = w->deque.pop()) {
    s->execute(*w, t);
  }
  s->wait_for(*w, join);
}

void Scheduler::fork_all(std::vector<std::function<void()>>& fns) {
  if (fns.empty()) return;
  Scheduler* s = tls_scheduler;
  auto* w = static_cast<Worker*>(tls_worker);
  if (s == nullptr || w == nullptr || s->num_workers() == 1 ||
      fns.size() == 1) {
    for (auto& f : fns) f();
    return;
  }
  std::atomic<std::int64_t> join{
      static_cast<std::int64_t>(fns.size() - 1)};
  for (std::size_t i = 1; i < fns.size(); ++i) {
    s->spawn_task(*w, std::move(fns[i]), &join);
  }
  fns[0]();
  // Drain our own deque first (tasks we just pushed), then wait helping.
  s->wait_for(*w, join);
}

namespace {

/// Resolve `grain <= 0` to the automatic grain: an eighth of a fair
/// per-worker share, so a full recursion produces ~8 stealable tasks per
/// worker — enough slack for load balancing without forking one task per
/// index (the old behaviour of a silent clamp to 1).
std::int64_t resolve_grain(std::int64_t grain, std::int64_t span,
                           const Scheduler* sched) {
  if (grain >= 1) return grain;
  const std::int64_t workers = sched ? sched->num_workers() : 1;
  return std::max<std::int64_t>(1, span / (8 * workers));
}

}  // namespace

void Scheduler::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (begin >= end) return;
  grain = resolve_grain(grain, end - begin, tls_scheduler);
  if (end - begin <= grain || tls_scheduler == nullptr) {
    body(begin, end);
    return;
  }
  const std::int64_t mid = begin + (end - begin) / 2;
  fork2([=, &body] { parallel_for(begin, mid, grain, body); },
        [=, &body] { parallel_for(mid, end, grain, body); });
}

double Scheduler::parallel_reduce(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<double(std::int64_t, std::int64_t)>& body) {
  if (begin >= end) return 0.0;
  grain = resolve_grain(grain, end - begin, tls_scheduler);
  if (end - begin <= grain || tls_scheduler == nullptr) {
    return body(begin, end);
  }
  const std::int64_t mid = begin + (end - begin) / 2;
  double left = 0.0, right = 0.0;
  fork2([=, &body, &left] { left = parallel_reduce(begin, mid, grain, body); },
        [=, &body, &right] {
          right = parallel_reduce(mid, end, grain, body);
        });
  // Fixed combination order: the result is schedule-independent.
  return left + right;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  for (const auto& w : all_workers_) {
    s.spawns += w->spawns.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.steal_attempts += w->steal_attempts.load(std::memory_order_relaxed);
    s.executed += w->executed.load(std::memory_order_relaxed);
  }
  return s;
}

void Scheduler::reset_stats() {
  for (auto& w : all_workers_) {
    w->spawns.store(0, std::memory_order_relaxed);
    w->steals.store(0, std::memory_order_relaxed);
    w->steal_attempts.store(0, std::memory_order_relaxed);
    w->executed.store(0, std::memory_order_relaxed);
  }
}

}  // namespace octgb::ws
