#include "octgb/ws/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#ifdef __linux__
#include <sched.h>
#endif

#include "octgb/trace/trace.hpp"
#include "octgb/util/check.hpp"

namespace octgb::ws {

namespace {
thread_local Scheduler* tls_scheduler = nullptr;
thread_local void* tls_worker = nullptr;  // Scheduler::Worker*

/// One spin-wait hint: cheap on the issuing core, frees pipeline resources
/// for the SMT sibling. Falls back to a thread yield where no hint exists.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Escalating backoff: pause bursts that double per failed round (1..32
/// pauses), then a thread yield so oversubscribed hosts still make
/// progress. Callers reset their round counter on success.
inline void backoff(int round) {
  constexpr int kYieldAfter = 6;
  if (round < kYieldAfter) {
    const int spins = 1 << std::min(round, 5);
    for (int i = 0; i < spins; ++i) cpu_pause();
  } else {
    std::this_thread::yield();
  }
}

/// Best-effort affinity pin of the calling thread; false when the call is
/// rejected (restricted cpuset, offline cpu, non-linux host).
bool pin_self(int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace

Scheduler::Scheduler(int workers) : Scheduler(workers, SchedulerOptions{}) {}

Scheduler::Scheduler(int workers, const SchedulerOptions& opts)
    : topo_(opts.topology ? opts.topology : &perf::topology()), opts_(opts) {
  OCTGB_CHECK_MSG(workers >= 1, "need at least one worker");
  trace_pid_ = trace::current_pid();
  const int ncpu = std::max(1, topo_->num_cpus());
  for (int i = 0; i < workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->id = i;
    w->sched = this;
    w->rng = util::Xoshiro256(0x5eedULL + static_cast<std::uint64_t>(i));
    w->block_core = opts_.pin_first + i;
    w->cpu = topo_->cpu((opts_.pin_first + i) % ncpu).id;
    all_workers_.push_back(std::move(w));
  }
  // Victim tiers, built once before any thread launches (read-only after):
  // probe order follows cache distance, victim choice within a tier stays
  // uniformly random.
  for (int i = 0; i < workers; ++i) {
    Worker& wi = *all_workers_[static_cast<std::size_t>(i)];
    for (int j = 0; j < workers; ++j) {
      if (j == i) continue;
      const int cj = all_workers_[static_cast<std::size_t>(j)]->cpu;
      const int tier = topo_->same_l3(wi.cpu, cj)       ? 0
                       : topo_->same_socket(wi.cpu, cj) ? 1
                                                        : 2;
      wi.tier[tier].push_back(static_cast<std::uint32_t>(j));
    }
  }
  for (int i = 1; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true);
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

Scheduler* Scheduler::current() { return tls_scheduler; }

int Scheduler::worker_cpu(int i) const {
  const int n = static_cast<int>(all_workers_.size());
  OCTGB_CHECK_MSG(i >= 0 && i < n, "worker index out of range");
  return all_workers_[static_cast<std::size_t>(i)]->cpu;
}

void Scheduler::run(const std::function<void()>& root) {
  OCTGB_CHECK_MSG(tls_scheduler == nullptr, "Scheduler::run is not reentrant");
  Worker& w0 = *all_workers_[0];
  // Worker 0 is the caller's thread: pin for the duration of run() only,
  // restoring the caller's mask afterwards so a service executor thread
  // that runs jobs with different leases is never left stuck on one core.
#ifdef __linux__
  cpu_set_t prev_mask;
  bool have_prev = false;
  if (opts_.pin) {
    have_prev = sched_getaffinity(0, sizeof(prev_mask), &prev_mask) == 0;
    w0.pinned.store(pin_self(w0.cpu), std::memory_order_relaxed);
  }
#endif
  tls_scheduler = this;
  tls_worker = &w0;
  active_.store(true);
  cv_.notify_all();
  root();
  // Drain: the root returned, but stolen grandchildren may still be live
  // only if the caller's fork-joins all completed — which they did, since
  // fork2/wait_for return only when their join counters hit zero. Safe to
  // deactivate.
  active_.store(false);
  tls_scheduler = nullptr;
  tls_worker = nullptr;
#ifdef __linux__
  if (have_prev) (void)sched_setaffinity(0, sizeof(prev_mask), &prev_mask);
#endif
}

void Scheduler::worker_loop(int id) {
  Worker& w = *all_workers_[static_cast<std::size_t>(id)];
  tls_scheduler = this;
  tls_worker = &w;
  if (opts_.pin)
    w.pinned.store(pin_self(w.cpu), std::memory_order_relaxed);
  // Label this worker's trace track under the creating rank's group (a
  // no-op unless tracing was enabled before the scheduler was built).
  if (trace::enabled())
    trace::set_thread_identity(trace_pid_, "worker" + std::to_string(id));
  int idle = 0;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    if (!active_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(10), [&] {
        return shutdown_.load() || active_.load();
      });
      idle = 0;
      continue;
    }
    detail::Task* t = try_acquire(w);
    if (t) {
      execute(w, t);
      idle = 0;
    } else {
      backoff(idle);
      if (idle < 16) ++idle;
    }
  }
  tls_scheduler = nullptr;
  tls_worker = nullptr;
}

void Scheduler::spawn_task(Worker& w, std::function<void()> fn,
                           std::atomic<std::int64_t>* join) {
  auto* t = new detail::Task{std::move(fn), join};
  w.spawns.fetch_add(1, std::memory_order_relaxed);
  w.deque.push(t);
}

detail::Task* Scheduler::try_acquire(Worker& w) {
  if (detail::Task* t = w.deque.pop()) return t;
  if (all_workers_.size() <= 1) return nullptr;
  // Hierarchical stealing: walk the tiers nearest-first, up to two random
  // probes per tier, for two rounds with a pause between them. A thief
  // therefore tries its L3 neighbours before paying a cross-socket cache
  // miss, but an imbalanced remote socket is still reachable every call.
  constexpr int kRounds = 2;
  constexpr std::size_t kProbesPerTier = 2;
  for (int round = 0; round < kRounds; ++round) {
    if (round > 0) backoff(round - 1);
    for (int tier = 0; tier < 3; ++tier) {
      const auto& victims = w.tier[tier];
      if (victims.empty()) continue;
      const std::size_t probes = std::min(kProbesPerTier, victims.size());
      for (std::size_t p = 0; p < probes; ++p) {
        const std::uint32_t v = static_cast<std::uint32_t>(
            victims[w.rng.below(victims.size())]);
        w.steal_attempts.fetch_add(1, std::memory_order_relaxed);
        if (detail::Task* t = all_workers_[v]->deque.steal()) {
          w.steals.fetch_add(1, std::memory_order_relaxed);
          (tier == 0   ? w.local_steals
           : tier == 1 ? w.socket_steals
                       : w.remote_steals)
              .fetch_add(1, std::memory_order_relaxed);
          if (opts_.pin) {
            const int vb = all_workers_[v]->block_core;
            const int lo = opts_.pin_first;
            const int hi = opts_.pin_first + static_cast<int>(
                                                 all_workers_.size());
            if (vb < lo || vb >= hi)
              w.offblock_steals.fetch_add(1, std::memory_order_relaxed);
          }
          trace::instant("ws.steal");
          return t;
        }
      }
    }
  }
  return nullptr;
}

void Scheduler::execute(Worker& w, detail::Task* t) {
  w.executed.fetch_add(1, std::memory_order_relaxed);
  t->fn();
  if (t->join) t->join->fetch_sub(1, std::memory_order_acq_rel);
  delete t;
}

void Scheduler::wait_for(Worker& w, std::atomic<std::int64_t>& join) {
  int idle = 0;
  while (join.load(std::memory_order_acquire) > 0) {
    if (detail::Task* t = try_acquire(w)) {
      execute(w, t);
      idle = 0;
    } else {
      backoff(idle);
      if (idle < 16) ++idle;
    }
  }
}

void Scheduler::fork2(const std::function<void()>& f1,
                      const std::function<void()>& f2) {
  Scheduler* s = tls_scheduler;
  auto* w = static_cast<Worker*>(tls_worker);
  if (s == nullptr || w == nullptr || s->num_workers() == 1) {
    f1();
    f2();
    return;
  }
  std::atomic<std::int64_t> join{1};
  s->spawn_task(*w, f1, &join);
  f2();
  // Fast path: if nobody stole f1, run it inline.
  if (detail::Task* t = w->deque.pop()) {
    s->execute(*w, t);
  }
  s->wait_for(*w, join);
}

void Scheduler::fork_all(std::vector<std::function<void()>>& fns) {
  if (fns.empty()) return;
  Scheduler* s = tls_scheduler;
  auto* w = static_cast<Worker*>(tls_worker);
  if (s == nullptr || w == nullptr || s->num_workers() == 1 ||
      fns.size() == 1) {
    for (auto& f : fns) f();
    return;
  }
  std::atomic<std::int64_t> join{
      static_cast<std::int64_t>(fns.size() - 1)};
  for (std::size_t i = 1; i < fns.size(); ++i) {
    s->spawn_task(*w, std::move(fns[i]), &join);
  }
  fns[0]();
  // Drain our own deque first (tasks we just pushed), then wait helping.
  s->wait_for(*w, join);
}

namespace {

/// Resolve `grain <= 0` to the automatic grain: an eighth of a fair
/// per-worker share, so a full recursion produces ~8 stealable tasks per
/// worker — enough slack for load balancing without forking one task per
/// index (the old behaviour of a silent clamp to 1).
std::int64_t resolve_grain(std::int64_t grain, std::int64_t span,
                           const Scheduler* sched) {
  if (grain >= 1) return grain;
  const std::int64_t workers = sched ? sched->num_workers() : 1;
  return std::max<std::int64_t>(1, span / (8 * workers));
}

}  // namespace

void Scheduler::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (begin >= end) return;
  grain = resolve_grain(grain, end - begin, tls_scheduler);
  if (end - begin <= grain || tls_scheduler == nullptr) {
    body(begin, end);
    return;
  }
  const std::int64_t mid = begin + (end - begin) / 2;
  fork2([=, &body] { parallel_for(begin, mid, grain, body); },
        [=, &body] { parallel_for(mid, end, grain, body); });
}

double Scheduler::parallel_reduce(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<double(std::int64_t, std::int64_t)>& body) {
  if (begin >= end) return 0.0;
  grain = resolve_grain(grain, end - begin, tls_scheduler);
  if (end - begin <= grain || tls_scheduler == nullptr) {
    return body(begin, end);
  }
  const std::int64_t mid = begin + (end - begin) / 2;
  double left = 0.0, right = 0.0;
  fork2([=, &body, &left] { left = parallel_reduce(begin, mid, grain, body); },
        [=, &body, &right] {
          right = parallel_reduce(mid, end, grain, body);
        });
  // Fixed combination order: the result is schedule-independent.
  return left + right;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  for (const auto& w : all_workers_) {
    s.spawns += w->spawns.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.steal_attempts += w->steal_attempts.load(std::memory_order_relaxed);
    s.executed += w->executed.load(std::memory_order_relaxed);
    s.local_steals += w->local_steals.load(std::memory_order_relaxed);
    s.socket_steals += w->socket_steals.load(std::memory_order_relaxed);
    s.remote_steals += w->remote_steals.load(std::memory_order_relaxed);
    s.offblock_steals += w->offblock_steals.load(std::memory_order_relaxed);
    s.pinned_workers += w->pinned.load(std::memory_order_relaxed) ? 1 : 0;
  }
  return s;
}

void Scheduler::reset_stats() {
  for (auto& w : all_workers_) {
    w->spawns.store(0, std::memory_order_relaxed);
    w->steals.store(0, std::memory_order_relaxed);
    w->steal_attempts.store(0, std::memory_order_relaxed);
    w->executed.store(0, std::memory_order_relaxed);
    w->local_steals.store(0, std::memory_order_relaxed);
    w->socket_steals.store(0, std::memory_order_relaxed);
    w->remote_steals.store(0, std::memory_order_relaxed);
    w->offblock_steals.store(0, std::memory_order_relaxed);
  }
}

}  // namespace octgb::ws
