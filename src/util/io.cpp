#include "octgb/util/io.hpp"

#include <cerrno>
#include <cstdio>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "octgb/util/strings.hpp"

namespace octgb::util::io {

std::string IoError::describe() const {
  if (status == IoStatus::Eof)
    return format("eof after %zu of %zu bytes", done, want);
  return format("io error (errno %d) after %zu of %zu bytes", errno_value,
                done, want);
}

IoResult read_exact(int fd, void* data, std::size_t bytes) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::read(fd, p + done, bytes - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0)
      return IoResult::failure({IoStatus::Eof, 0, done, bytes});
    if (errno == EINTR) continue;
    return IoResult::failure({IoStatus::Error, errno, done, bytes});
  }
  return IoResult::success({});
}

IoResult write_exact(int fd, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::write(fd, p + done, bytes - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    // write() returning 0 for a nonzero count is theoretically possible
    // on weird fds; treat it as Eof rather than spinning forever.
    if (n == 0) return IoResult::failure({IoStatus::Eof, 0, done, bytes});
    if (errno == EINTR) continue;
    return IoResult::failure({IoStatus::Error, errno, done, bytes});
  }
  return IoResult::success({});
}

bool read_exact(std::istream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  return static_cast<bool>(in);
}

bool read_file(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    ::close(fd);
    return false;
  }
  ::close(fd);
  return true;
}

bool write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const IoResult w = write_exact(fd, bytes.data(), bytes.size());
  ::close(fd);
  if (!w) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace octgb::util::io
