#include "octgb/util/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "octgb/util/check.hpp"
#include "octgb/util/strings.hpp"

namespace octgb::util {

Args& Args::add(const std::string& name, std::string* target,
                const std::string& help_text) {
  Option o;
  o.help = help_text;
  o.default_repr = *target;
  o.set = [target](const std::string& v) { *target = v; };
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

Args& Args::add(const std::string& name, double* target,
                const std::string& help_text) {
  Option o;
  o.help = help_text;
  o.default_repr = format("%g", *target);
  o.set = [target](const std::string& v) {
    *target = parse_double_field(v, *target);
  };
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

Args& Args::add(const std::string& name, int* target,
                const std::string& help_text) {
  Option o;
  o.help = help_text;
  o.default_repr = format("%d", *target);
  o.set = [target](const std::string& v) {
    *target = parse_int_field(v, *target);
  };
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

Args& Args::add(const std::string& name, long long* target,
                const std::string& help_text) {
  Option o;
  o.help = help_text;
  o.default_repr = format("%lld", *target);
  o.set = [target](const std::string& v) {
    *target = std::strtoll(v.c_str(), nullptr, 10);
  };
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

Args& Args::flag(const std::string& name, bool* target,
                 const std::string& help_text) {
  Option o;
  o.help = help_text;
  o.is_flag = true;
  o.default_repr = *target ? "true" : "false";
  o.set = [target](const std::string&) { *target = true; };
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

void Args::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help(argv[0]).c_str(), stdout);
      std::exit(0);
    }
    OCTGB_CHECK_MSG(starts_with(arg, "--"), "unexpected argument: " << arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = opts_.find(arg);
    OCTGB_CHECK_MSG(it != opts_.end(), "unknown option: --" << arg);
    if (it->second.is_flag) {
      it->second.set("");
    } else {
      if (!has_value) {
        OCTGB_CHECK_MSG(i + 1 < argc, "option --" << arg << " needs a value");
        value = argv[++i];
      }
      it->second.set(value);
    }
  }
}

std::string Args::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& o = opts_.at(name);
    os << "  --" << name << (o.is_flag ? "" : " <value>") << "\n        "
       << o.help << " (default: " << o.default_repr << ")\n";
  }
  os << "  --help\n        show this message\n";
  return os.str();
}

}  // namespace octgb::util
