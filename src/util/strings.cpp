#include "octgb/util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "octgb/util/check.hpp"

namespace octgb::util {

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

double parse_double_field(std::string_view field, double fallback) {
  const std::string_view t = trim(field);
  if (t.empty()) return fallback;
  std::string buf(t);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  OCTGB_CHECK_MSG(end == buf.c_str() + buf.size(),
                  "bad numeric field: '" << buf << "'");
  return v;
}

int parse_int_field(std::string_view field, int fallback) {
  const std::string_view t = trim(field);
  if (t.empty()) return fallback;
  std::string buf(t);
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  OCTGB_CHECK_MSG(end == buf.c_str() + buf.size(),
                  "bad integer field: '" << buf << "'");
  return static_cast<int>(v);
}

std::string format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string human_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return format(u == 0 ? "%.0f %s" : "%.2f %s", bytes, units[u]);
}

std::string human_seconds(double s) {
  if (s >= 120.0) return format("%.1f min", s / 60.0);
  if (s >= 1.0) return format("%.2f s", s);
  if (s >= 1e-3) return format("%.1f ms", s * 1e3);
  return format("%.1f us", s * 1e6);
}

}  // namespace octgb::util
