#include "octgb/util/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace octgb::util {

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::trace;
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  return LogLevel::info;
}

Logger::Logger() : level_(static_cast<int>(LogLevel::warn)) {
  if (const char* env = std::getenv("OCTGB_LOG")) {
    level_.store(static_cast<int>(parse_log_level(env)));
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel lvl, const std::string& msg) {
  static const char* names[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(lvl);
  if (idx < 0 || idx > 4) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[octgb %s] %s\n", names[idx], msg.c_str());
}

}  // namespace octgb::util
