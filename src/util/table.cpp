#include "octgb/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "octgb/util/check.hpp"

namespace octgb::util {

void Table::header(std::vector<std::string> cols) {
  OCTGB_CHECK_MSG(rows_.empty(), "header() must precede rows");
  header_ = std::move(cols);
}

void Table::row(std::vector<std::string> cells) {
  OCTGB_CHECK_MSG(cells.size() == header_.size(),
                  "row width " << cells.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::rowf(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  if (!title_.empty()) os << "## " << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c ? "  " : "") << r[c]
         << std::string(widths[c] - r[c].size(), ' ');
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = header_.size() ? header_.size() * 2 - 2 : 0;
  for (auto w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

static std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << (c ? "," : "") << csv_quote(r[c]);
    os << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << csv();
  return static_cast<bool>(f);
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace octgb::util
