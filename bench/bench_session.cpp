// Session amortization bench: scoring a stream of rigid ligand poses
// against a mid-size ZDock receptor, three ways.
//
//   cold        — the pre-session workflow: every pose builds the complex
//                 molecule, resamples the surface, constructs a fresh
//                 GBEngine and runs compute(). Nothing is reused.
//   warm-full   — ScoringSession + PoseMode::Full: trees built once, per
//                 pose a rigid refit (or monitored rebuild) and a full
//                 Born + Epol evaluation against the reused EvalScratch.
//   warm-screen — ScoringSession + PoseMode::CrossScreen: frozen-monomer
//                 Born radii and bin tables, one cross-tree Epol traversal
//                 per pose (the rigid-docking rescoring approximation).
//
// Prints poses/sec and speedup vs cold plus each warm mode's worst-case
// complex-energy deviation from the cold reference, and asserts the
// EvalScratch zero-allocation contract (no buffer growth after the first
// warm pose). `--smoke` shrinks the workload for CI and is expected to be
// paired with `--metrics-out` for the amortized-vs-cold artifact.

#include <cmath>
#include <cstdio>

#include "common.hpp"

using namespace octgb;

namespace {

mol::Molecule place_ligand(const mol::Molecule& receptor,
                           mol::Molecule ligand) {
  const geom::Vec3 center = receptor.centroid();
  double rec_radius = 0.0;
  for (const auto& a : receptor.atoms())
    rec_radius = std::max(rec_radius, geom::dist(a.pos, center) + a.radius);
  const geom::Vec3 lig_center = ligand.centroid();
  double lig_radius = 0.0;
  for (const auto& a : ligand.atoms())
    lig_radius = std::max(lig_radius, geom::dist(a.pos, lig_center) + a.radius);
  ligand.transform(geom::RigidTransform::translate(
      center + geom::Vec3{rec_radius + 0.6 * lig_radius, 0, 0} - lig_center));
  return ligand;
}

}  // namespace

int main(int argc, char** argv) {
  std::string molecule_name = "1PPE_r_b";  // mid-size ZDock receptor
  int ligand_atoms = 300;
  int poses = 16;
  int cold_poses = 4;  // cold rows are slow; measure a few and average
  bool smoke = false;
  util::Args args;
  args.add("molecule", &molecule_name, "ZDock receptor entry");
  args.add("ligand-atoms", &ligand_atoms, "synthetic ligand size");
  args.add("poses", &poses, "poses per warm mode");
  args.add("cold-poses", &cold_poses, "poses measured for the cold baseline");
  args.flag("smoke", &smoke, "CI-size workload");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  if (smoke) {
    poses = std::min(poses, 6);
    cold_poses = std::min(cold_poses, 2);
  }

  const mol::Molecule receptor = mol::make_benchmark_molecule(
      molecule_name, smoke ? 900 : mol::find_benchmark(molecule_name)->atoms);
  const mol::Molecule ligand = place_ligand(
      receptor, mol::generate_protein(
                    {.target_atoms = static_cast<std::size_t>(ligand_atoms),
                     .seed = 17}));

  mol::Molecule complex_mol(receptor.name() + "+ligand");
  for (const auto& a : receptor.atoms()) complex_mol.add_atom(a);
  const std::size_t ligand_begin = complex_mol.size();
  for (const auto& a : ligand.atoms()) complex_mol.add_atom(a);

  const surface::SurfaceParams sp{.subdivision = 1};
  const auto surf = surface::build_surface(complex_mol, sp);
  std::printf("complex: %zu atoms (%zu receptor + %zu ligand), %zu q-points, "
              "%d poses\n\n",
              complex_mol.size(), ligand_begin, ligand.size(), surf.size(),
              poses);

  // The pose stream: small rigid wiggles of the ligand around its contact
  // placement (rotation about the receptor axis + radial breathing).
  std::vector<geom::RigidTransform> pose_list;
  const geom::Vec3 lig_center = ligand.centroid();
  for (int p = 0; p < poses; ++p) {
    const double angle = 0.05 * p;
    const double breathe = 0.4 * (p % 5);
    const geom::RigidTransform about_center =
        geom::RigidTransform::translate(lig_center) *
        geom::RigidTransform::rotate(geom::Mat3::axis_angle({0, 0, 1}, angle)) *
        geom::RigidTransform::translate(-lig_center);
    pose_list.push_back(
        geom::RigidTransform::translate({breathe, 0, 0}) * about_center);
  }

  // --- cold baseline: fresh everything per pose ----------------------------
  std::vector<double> cold_epol(pose_list.size(), 0.0);
  perf::Timer cold_timer;
  for (int p = 0; p < cold_poses; ++p) {
    mol::Molecule posed = complex_mol;
    for (std::size_t i = ligand_begin; i < posed.size(); ++i)
      posed.atoms()[i].pos = pose_list[p].apply(posed.atom(i).pos);
    const auto posed_surf = surface::build_surface(posed, sp);
    core::GBEngine engine(posed, posed_surf);
    cold_epol[p] = engine.compute().epol;
  }
  const double cold_per_pose = cold_timer.seconds() / cold_poses;

  // Reference energies for every pose the cold loop skipped (accuracy
  // columns only, not timed).
  for (std::size_t p = cold_poses; p < pose_list.size(); ++p) {
    mol::Molecule posed = complex_mol;
    for (std::size_t i = ligand_begin; i < posed.size(); ++i)
      posed.atoms()[i].pos = pose_list[p].apply(posed.atom(i).pos);
    const auto posed_surf = surface::build_surface(posed, sp);
    core::GBEngine engine(posed, posed_surf);
    cold_epol[p] = engine.compute().epol;
  }

  // --- warm modes through one session --------------------------------------
  core::ScoringSession session(complex_mol, surf, {}, sp);
  session.evaluate();  // prime trees, scratch, and monomer caches

  const auto full_scores =
      session.score_poses(pose_list, ligand_begin, core::PoseMode::Full);

  // Zero-allocation contract: the pose stream must not grow the scratch.
  const std::size_t events_before = session.scratch().allocation_events;
  session.reset_to_base();
  perf::Timer screen_timer;
  const auto screen_scores =
      session.score_poses(pose_list, ligand_begin, core::PoseMode::CrossScreen);
  const double screen_per_pose = screen_timer.seconds() / pose_list.size();
  perf::Timer full2_timer;
  const auto full2 =
      session.score_poses(pose_list, ligand_begin, core::PoseMode::Full);
  const double full2_per_pose = full2_timer.seconds() / pose_list.size();
  OCTGB_CHECK_MSG(session.scratch().allocation_events == events_before,
                  "EvalScratch grew during the warm pose stream");
  OCTGB_CHECK_MSG(full2.size() == pose_list.size() &&
                      full2[0].epol == full_scores[0].epol,
                  "warm Full re-run diverged");

  auto worst_err = [&](const std::vector<core::PoseScore>& scores) {
    double worst = 0.0;
    for (std::size_t p = 0; p < scores.size(); ++p)
      worst = std::max(worst, std::abs(scores[p].epol - cold_epol[p]) /
                                  std::abs(cold_epol[p]));
    return 100.0 * worst;
  };
  const double err_full = worst_err(full_scores);
  const double err_screen = worst_err(screen_scores);

  util::Table t("pose-stream scoring: amortized session vs cold rebuild");
  t.header({"mode", "per pose", "poses/s", "vs cold", "max |dE| %"});
  auto row = [&](const char* mode, double per_pose, double err) {
    t.row({mode, bench::fmt_time(per_pose),
           util::format("%.2f", 1.0 / per_pose),
           util::format("%.1fx", cold_per_pose / per_pose),
           util::format("%.3f", err)});
  };
  row("cold (rebuild everything)", cold_per_pose, 0.0);
  row("warm-full (refit + full eval)", full2_per_pose, err_full);
  row("warm-screen (frozen monomers)", screen_per_pose, err_screen);
  t.print();
  bench::save_csv(t, "bench_session");

  const double screen_speedup = cold_per_pose / screen_per_pose;
  std::printf("\nwarm-screen speedup vs cold: %.1fx (target >= 5x); "
              "refits %zu, rebuilds %zu, scratch allocation events %zu\n",
              screen_speedup, session.move_stats().refits,
              session.move_stats().rebuilds,
              session.scratch().allocation_events);
  OCTGB_CHECK_MSG(screen_speedup >= 5.0,
                  "amortized pose scoring fell below the 5x acceptance");

  if (ts.active()) {
    auto& m = ts.metrics();
    m.set("session.poses", static_cast<std::uint64_t>(pose_list.size()));
    m.set("session.cold.seconds_per_pose", cold_per_pose);
    m.set("session.warm_full.seconds_per_pose", full2_per_pose);
    m.set("session.warm_screen.seconds_per_pose", screen_per_pose);
    m.set("session.warm_full.speedup_vs_cold", cold_per_pose / full2_per_pose);
    m.set("session.warm_screen.speedup_vs_cold", screen_speedup);
    m.set("session.warm_full.max_err_pct", err_full);
    m.set("session.warm_screen.max_err_pct", err_screen);
    m.set("session.refits",
          static_cast<std::uint64_t>(session.move_stats().refits));
    m.set("session.rebuilds",
          static_cast<std::uint64_t>(session.move_stats().rebuilds));
    m.set("session.scratch.allocation_events",
          static_cast<std::uint64_t>(session.scratch().allocation_events));
    m.set("session.scratch.footprint_bytes",
          static_cast<std::uint64_t>(session.scratch().footprint_bytes()));
  }
  ts.finish();
  return 0;
}
