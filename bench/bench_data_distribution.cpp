// Ablation (paper §VI future work): replicate-the-data (the paper's
// evaluated variant) versus distribute-the-data (each rank owns a subtree
// + measured ghost regions). Memory per rank versus added ghost-exchange
// communication, across rank counts.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  double scale = bench::quick_mode() ? 0.003 : 0.01;
  util::Args args;
  args.add("scale", &scale, "BTV scale factor (1.0 = 6M atoms)");
  args.parse(argc, argv);

  perf::MachineModel machine;
  bench::print_environment(machine);

  bench::Prepared p = bench::prepare(mol::make_btv(scale));
  std::printf("BTV': %zu atoms, %zu quadrature points\n\n", p.atoms(),
              p.surf.size());

  util::Table t("replicated vs data-distributed layout");
  t.header({"ranks", "replicated B/rank", "distributed worst B/rank",
            "memory ratio", "worst ghosts", "ghost exchange", "Epol match"});

  const auto replicated = p.engine->compute();
  for (int ranks : {2, 4, 8, 16, 32}) {
    const auto dd = core::run_data_distributed(*p.engine, ranks, machine);
    std::size_t worst_ghosts = 0;
    for (const auto& r : dd.ranks)
      worst_ghosts = std::max(worst_ghosts, r.ghost_atoms);
    const bool match =
        std::abs(dd.epol - replicated.epol) < 1e-6 * std::abs(replicated.epol);
    t.row({util::format("%d", ranks),
           util::human_bytes(double(dd.replicated_bytes_per_rank)),
           util::human_bytes(double(dd.max_rank_bytes())),
           util::format("%.1fx", double(dd.replicated_bytes_per_rank) /
                                     double(dd.max_rank_bytes())),
           util::format("%zu atoms", worst_ghosts),
           bench::fmt_time(dd.ghost_exchange_seconds),
           match ? "yes" : "NO"});
  }
  t.print();
  bench::save_csv(t, "data_distribution");

  std::puts(
      "\nTakeaway: distributing the data shrinks per-rank memory by the "
      "rank count (up to the ghost/skeleton floor) at the price of a "
      "ghost exchange per evaluation — the tradeoff the paper flags as "
      "future work.");
  return 0;
}
