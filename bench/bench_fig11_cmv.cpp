// Figure 11 (table): scalability on the Cucumber Mosaic Virus shell —
// OCT_CILK / OCT_MPI / OCT_MPI+CILK on 12 and 144 cores versus Amber,
// with energy values and % difference from the naive exact algorithm.
//
// Paper numbers (509,640 atoms): OCT_CILK 12.5 s; Amber 39 min (12c) /
// 3.3 min (144c); OCT_MPI+CILK 4.8 s / 0.61 s; OCT_MPI 4.5 s / 0.46 s;
// speedups vs Amber ≈ 488/520 (12c) and 325/430 (144c); all octree
// energies within ~0.1 % of naive, Amber ~2 %. GBr6 and Tinker run out of
// memory; Gromacs/NAMD only run with unusably small cutoffs.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  double scale = bench::quick_mode() ? 0.02 : 0.06;  // of 509,640 atoms
  util::Args args;
  args.add("scale", &scale, "CMV scale factor (1.0 = 509,640 atoms)");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  perf::MachineModel machine;
  bench::print_environment(machine);

  std::printf("Preparing CMV' (scale %.3f)...\n", scale);
  bench::Prepared p = bench::prepare(mol::make_cmv(scale));
  std::printf("CMV': %zu atoms, %zu quadrature points\n\n", p.atoms(),
              p.surf.size());

  // Naive reference (real, serial): energy + its modeled serial time.
  std::printf("Running naive exact reference (%zu x %zu)...\n", p.atoms(),
              p.surf.size());
  perf::WorkCounters naive_work;
  const auto naive_born =
      core::naive_born_radii(p.molecule, p.surf, &naive_work);
  const double naive_e =
      core::naive_epol(p.molecule, naive_born, {}, &naive_work);
  const double naive_t = machine.compute_seconds(naive_work, 0.0, 1, false);

  // Octree configurations (real physics, modeled time).
  const auto cilk12 = bench::run_config(*p.engine, bench::oct_cilk_config(12));
  const auto mpi12 = bench::run_config(*p.engine, bench::oct_mpi_config(12));
  const auto hyb12 =
      bench::run_config(*p.engine, bench::oct_hybrid_config(12));
  const auto mpi144 =
      bench::run_config(*p.engine, bench::oct_mpi_config(144));
  const auto hyb144 =
      bench::run_config(*p.engine, bench::oct_hybrid_config(144));
  if (ts.active()) {
    bench::add_sim_metrics(ts.metrics(), "oct_cilk.cores12", cilk12);
    bench::add_sim_metrics(ts.metrics(), "oct_mpi.cores12", mpi12);
    bench::add_sim_metrics(ts.metrics(), "oct_hybrid.cores12", hyb12);
    bench::add_sim_metrics(ts.metrics(), "oct_mpi.cores144", mpi144);
    bench::add_sim_metrics(ts.metrics(), "oct_hybrid.cores144", hyb144);
  }

  // Amber stand-in (12 cores; 144-core Amber scales per its efficiency —
  // the paper notes Amber cannot exceed 256 cores). Amber's GB runs with
  // no interaction cutoff, so its energy here is the full ordered-pair
  // sum over its HCT radii (the default cutoff list would truncate badly
  // on a hollow shell and overstate Amber's error).
  const auto* amber_spec = baselines::find_package("Amber 12");
  auto amber12 = baselines::run_package(*amber_spec, p.molecule, machine, 12);
  const auto amber144 = baselines::run_package(*amber_spec, p.molecule,
                                               machine, 144);
  if (!amber12.out_of_memory)
    amber12.epol = core::naive_epol(p.molecule, amber12.born);

  // The comparators that fall over on CMV (§V-F).
  const auto tinker = baselines::run_package(
      *baselines::find_package("Tinker 6.0"), p.molecule, machine);
  const auto gbr6 = baselines::run_package(
      *baselines::find_package("GBr6"), p.molecule, machine);

  util::Table t("Fig. 11 — CMV' scalability (modeled times, real energies)");
  t.header({"program", "12 cores", "144 cores", "speedup vs Amber (12c)",
            "speedup vs Amber (144c)", "Epol kcal/mol", "% diff vs naive"});
  auto pct = [&](double e) {
    return util::format("%.2f", perf::percent_error(e, naive_e));
  };
  t.row({"Naive (serial)", bench::fmt_time(naive_t), "-", "-", "-",
         util::format("%.4g", naive_e), "0.00"});
  t.row({"OCT_CILK", bench::fmt_time(cilk12.total_seconds), "-",
         util::format("%.0f", amber12.modeled_seconds / cilk12.total_seconds),
         "-", util::format("%.4g", cilk12.epol), pct(cilk12.epol)});
  t.row({"Amber 12", bench::fmt_time(amber12.modeled_seconds),
         bench::fmt_time(amber144.modeled_seconds), "1", "1",
         util::format("%.4g", amber12.epol), pct(amber12.epol)});
  t.row({"OCT_MPI+CILK", bench::fmt_time(hyb12.total_seconds),
         bench::fmt_time(hyb144.total_seconds),
         util::format("%.0f", amber12.modeled_seconds / hyb12.total_seconds),
         util::format("%.0f",
                      amber144.modeled_seconds / hyb144.total_seconds),
         util::format("%.4g", hyb12.epol), pct(hyb12.epol)});
  t.row({"OCT_MPI", bench::fmt_time(mpi12.total_seconds),
         bench::fmt_time(mpi144.total_seconds),
         util::format("%.0f", amber12.modeled_seconds / mpi12.total_seconds),
         util::format("%.0f",
                      amber144.modeled_seconds / mpi144.total_seconds),
         util::format("%.4g", mpi12.epol), pct(mpi12.epol)});
  t.row({"Tinker 6.0", tinker.out_of_memory ? "OOM" : "ran", "-", "-", "-",
         "-", "-"});
  t.row({"GBr6", gbr6.out_of_memory ? "OOM" : "ran", "-", "-", "-", "-",
         "-"});
  t.print();
  bench::save_csv(t, "fig11_cmv");
  ts.finish();

  std::puts(
      "\nPaper shape check: all octree variants hundreds of times faster "
      "than Amber with <1% error vs naive; hybrid and pure MPI close at "
      "144 cores; Tinker and GBr6 out of memory.");
  return 0;
}
