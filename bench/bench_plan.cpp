// Interaction-plan bench: a pose × ε-dial screen through one warm
// EvalScratch, with the plan cache on (PlanMode::Auto) vs off.
//
// The workload models GB re-scoring practice: P small rigid perturbations
// of the molecule (refits — the plan survives via structural validation
// and replays as flat lists), each evaluated at D Epol dials (ε_epol
// re-dials — the Born phase is untouched, so the cached Born radii are
// exact and tier 1 skips integrals + push entirely).
//
// Gates (nonzero exit on violation):
//   - every (pose, dial) energy is bit-identical with the plan on and off
//     (the plan is numerically inert, DESIGN.md §2.6);
//   - warm speedup of the screen with the plan on is >= 2.0x
//     (>= 1.5x under --smoke, the CI gate).
//
// `--metrics-out` dumps the timings, the speedup and the full
// perf::PlanCounters block per the OBSERVABILITY.md schema.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace octgb;

namespace {

std::vector<geom::Vec3> jittered_positions(const mol::Molecule& mol,
                                           double scale, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec3> out;
  out.reserve(mol.size());
  for (const auto& a : mol.atoms()) {
    out.push_back(a.pos + geom::Vec3(rng.uniform(-scale, scale),
                                     rng.uniform(-scale, scale),
                                     rng.uniform(-scale, scale)));
  }
  return out;
}

/// Run the full screen: for each pose refit to its coordinates, then
/// evaluate every dial. Returns the epol matrix row-major (pose, dial).
std::vector<double> run_screen(core::GBEngine& engine,
                               core::EvalScratch& scratch,
                               const std::vector<std::vector<geom::Vec3>>& poses,
                               const std::vector<double>& dials) {
  std::vector<double> epol;
  epol.reserve(poses.size() * dials.size());
  for (const auto& pose : poses) {
    engine.refit_atoms(pose);
    for (const double eps_epol : dials) {
      engine.approx().eps_epol = eps_epol;
      epol.push_back(engine.compute(scratch).epol);
    }
  }
  return epol;
}

}  // namespace

int main(int argc, char** argv) {
  std::string molecule_name = "1PPE_r_b";
  int poses = 6;
  int dials = 8;
  bool smoke = false;
  util::Args args;
  args.add("molecule", &molecule_name, "ZDock receptor entry");
  args.add("poses", &poses, "rigid perturbations (refit → plan replay)");
  args.add("dials", &dials, "eps_epol dials per pose (Born-result reuse)");
  args.flag("smoke", &smoke, "CI-size workload and the 1.5x gate");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  if (smoke) {
    poses = std::min(poses, 3);
    dials = std::min(dials, 4);
  }
  const double gate = smoke ? 1.5 : 2.0;

  const mol::Molecule molecule = mol::make_benchmark_molecule(
      molecule_name, smoke ? 900 : mol::find_benchmark(molecule_name)->atoms);
  const auto surf = surface::build_surface(molecule, {.subdivision = 1});
  std::printf("%s: %zu atoms, %zu q-points — %d poses x %d dials (%d evals "
              "per mode)\n\n",
              molecule_name.c_str(), molecule.size(), surf.size(), poses,
              dials, poses * dials);

  std::vector<std::vector<geom::Vec3>> pose_list;
  for (int p = 0; p < poses; ++p)
    pose_list.push_back(
        jittered_positions(molecule, 1e-6, 100 + std::uint64_t(p)));
  std::vector<double> dial_list;
  for (int d = 0; d < dials; ++d) dial_list.push_back(0.5 + 0.2 * d);

  // --- plan off: every evaluation re-runs the recursive traversal ----------
  core::EngineConfig off_config;
  off_config.approx.plan = core::PlanMode::Off;
  core::GBEngine off_engine(molecule, surf, off_config);
  core::EvalScratch off_scratch;
  (void)off_engine.compute(off_scratch);  // prime buffers out of the timing
  perf::Timer off_timer;
  const auto off_epol =
      run_screen(off_engine, off_scratch, pose_list, dial_list);
  const double off_seconds = off_timer.seconds();

  // --- plan on: capture once, replay per pose, Born reuse per dial ---------
  core::GBEngine on_engine(molecule, surf);
  core::EvalScratch on_scratch;
  (void)on_engine.compute(on_scratch);  // prime buffers + capture the plan
  perf::Timer on_timer;
  const auto on_epol = run_screen(on_engine, on_scratch, pose_list, dial_list);
  const double on_seconds = on_timer.seconds();
  const perf::PlanCounters& stats = on_scratch.plan_cache.stats;

  // --- gates ----------------------------------------------------------------
  OCTGB_CHECK_MSG(on_epol.size() == off_epol.size(), "screen size mismatch");
  for (std::size_t i = 0; i < on_epol.size(); ++i) {
    OCTGB_CHECK_MSG(on_epol[i] == off_epol[i],
                    "plan-driven energy deviated from the traversal");
  }
  const int evals = poses * dials;
  const double speedup = off_seconds / on_seconds;

  util::Table t("pose x dial screen: plan capture/replay/Born-reuse vs "
                "re-traversal");
  t.header({"mode", "per eval", "screen", "speedup"});
  t.row({"plan off (re-traverse)", bench::fmt_time(off_seconds / evals),
         bench::fmt_time(off_seconds), "1.0x"});
  t.row({"plan on (replay + reuse)", bench::fmt_time(on_seconds / evals),
         bench::fmt_time(on_seconds), util::format("%.2fx", speedup)});
  t.print();
  bench::save_csv(t, "bench_plan");

  std::printf("\nplan counters: builds %llu, replays %llu, born_reuses %llu, "
              "validations %llu, drift %llu\n",
              static_cast<unsigned long long>(stats.builds),
              static_cast<unsigned long long>(stats.replays),
              static_cast<unsigned long long>(stats.born_reuses),
              static_cast<unsigned long long>(stats.validations),
              static_cast<unsigned long long>(stats.invalidated_drift));
  std::printf("warm screen speedup: %.2fx (gate >= %.1fx)\n", speedup, gate);
  OCTGB_CHECK_MSG(speedup >= gate,
                  "plan-cached screen fell below the speedup gate");

  if (ts.active()) {
    auto& m = ts.metrics();
    m.set("plan.screen.evals", static_cast<std::uint64_t>(evals));
    m.set("plan.screen.off_seconds", off_seconds);
    m.set("plan.screen.on_seconds", on_seconds);
    m.set("plan.screen.speedup", speedup);
    m.set("plan.screen.gate", gate);
    m.add_plan("", stats);
  }
  ts.finish();
  return 0;
}
