// Interaction-plan bench: a pose × ε-dial screen through one warm
// EvalScratch, with the plan cache on (PlanMode::Auto) vs off.
//
// The workload models GB re-scoring practice: P small rigid perturbations
// of the molecule (refits — the plan survives via structural validation
// and replays as flat lists), each evaluated at D Epol dials (ε_epol
// re-dials — the Born phase is untouched, so the cached Born radii are
// exact and tier 1 skips integrals + push entirely).
//
// Gates (nonzero exit on violation):
//   - every (pose, dial) energy is bit-identical with the plan on and off
//     (the plan is numerically inert, DESIGN.md §2.6) — both sides run at
//     the widest resolved vector width, so this is also the replay-vs-
//     traversal bitwise witness for the explicit SIMD kernels;
//   - warm speedup of the screen with the plan on is >= 2.0x
//     (>= 1.5x under --smoke, the CI gate);
//   - the explicit vector layer's warm-replay speedup: replaying the
//     plan's flat Born lists through the widest resolved width is
//     >= 2.0x faster than the pre-SIMD scalar replay when 8 double lanes
//     are available (scaled down for narrower units, informational on the
//     portable fallback; smoke relaxes the gate — see simd_gate).
//
// `--metrics-out` dumps the timings, the speedups, the resolved width
// (kernel.simd.*) and the full perf::PlanCounters block per the
// OBSERVABILITY.md schema.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "octgb/perf/topology.hpp"
#include "octgb/simd/dispatch.hpp"
#include "octgb/ws/scheduler.hpp"

using namespace octgb;

namespace {

std::vector<geom::Vec3> jittered_positions(const mol::Molecule& mol,
                                           double scale, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec3> out;
  out.reserve(mol.size());
  for (const auto& a : mol.atoms()) {
    out.push_back(a.pos + geom::Vec3(rng.uniform(-scale, scale),
                                     rng.uniform(-scale, scale),
                                     rng.uniform(-scale, scale)));
  }
  return out;
}

/// Run the full screen: for each pose refit to its coordinates, then
/// evaluate every dial. Returns the epol matrix row-major (pose, dial).
std::vector<double> run_screen(core::GBEngine& engine,
                               core::EvalScratch& scratch,
                               const std::vector<std::vector<geom::Vec3>>& poses,
                               const std::vector<double>& dials) {
  std::vector<double> epol;
  epol.reserve(poses.size() * dials.size());
  for (const auto& pose : poses) {
    engine.refit_atoms(pose);
    for (const double eps_epol : dials) {
      engine.approx().eps_epol = eps_epol;
      epol.push_back(engine.compute(scratch).epol);
    }
  }
  return epol;
}

/// Power-of-two bucket histogram: bucket k counts values in
/// [2^k, 2^(k+1)); exported as `<prefix>.p2_<k>` metrics.
void histogram_p2(trace::MetricsRegistry& m, const std::string& prefix,
                  const std::vector<std::uint64_t>& values) {
  for (std::uint64_t v : values) {
    int k = 0;
    while ((std::uint64_t{2} << k) <= v) ++k;
    m.add(prefix + ".p2_" + std::to_string(k), std::uint64_t{1});
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string molecule_name = "1PPE_r_b";
  int poses = 6;
  int dials = 8;
  bool smoke = false;
  bool locality = false;
  util::Args args;
  args.add("molecule", &molecule_name, "ZDock receptor entry");
  args.add("poses", &poses, "rigid perturbations (refit → plan replay)");
  args.add("dials", &dials, "eps_epol dials per pose (Born-result reuse)");
  args.flag("smoke", &smoke, "CI-size workload and the 1.5x gate");
  args.flag("locality", &locality,
            "run the locality section: coalesced carving vs the "
            "cost-sorted baseline, plus steal-tier fractions");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  if (smoke) {
    poses = std::min(poses, 3);
    dials = std::min(dials, 4);
  }
  const double gate = smoke ? 1.5 : 2.0;

  const mol::Molecule molecule = mol::make_benchmark_molecule(
      molecule_name, smoke ? 900 : mol::find_benchmark(molecule_name)->atoms);
  const auto surf = surface::build_surface(molecule, {.subdivision = 1});
  std::printf("%s: %zu atoms, %zu q-points — %d poses x %d dials (%d evals "
              "per mode)\n\n",
              molecule_name.c_str(), molecule.size(), surf.size(), poses,
              dials, poses * dials);

  std::vector<std::vector<geom::Vec3>> pose_list;
  for (int p = 0; p < poses; ++p)
    pose_list.push_back(
        jittered_positions(molecule, 1e-6, 100 + std::uint64_t(p)));
  std::vector<double> dial_list;
  for (int d = 0; d < dials; ++d) dial_list.push_back(0.5 + 0.2 * d);

  // --- plan off: every evaluation re-runs the recursive traversal ----------
  // Both sides of this section pin VectorIsa::Scalar so the speedup keeps
  // measuring the plan machinery itself (capture/replay/Born reuse) at
  // the same kernels as before the explicit vector layer existed; the
  // SIMD section below owns the width comparison.
  core::EngineConfig off_config;
  off_config.approx.plan = core::PlanMode::Off;
  off_config.approx.vector.isa = simd::VectorIsa::Scalar;
  core::GBEngine off_engine(molecule, surf, off_config);
  core::EvalScratch off_scratch;
  (void)off_engine.compute(off_scratch);  // prime buffers out of the timing
  perf::Timer off_timer;
  const auto off_epol =
      run_screen(off_engine, off_scratch, pose_list, dial_list);
  const double off_seconds = off_timer.seconds();

  // --- plan on: capture once, replay per pose, Born reuse per dial ---------
  core::EngineConfig on_config;
  on_config.approx.vector.isa = simd::VectorIsa::Scalar;
  core::GBEngine on_engine(molecule, surf, on_config);
  core::EvalScratch on_scratch;
  (void)on_engine.compute(on_scratch);  // prime buffers + capture the plan
  perf::Timer on_timer;
  const auto on_epol = run_screen(on_engine, on_scratch, pose_list, dial_list);
  const double on_seconds = on_timer.seconds();
  const perf::PlanCounters& stats = on_scratch.plan_cache.stats;

  // --- gates ----------------------------------------------------------------
  OCTGB_CHECK_MSG(on_epol.size() == off_epol.size(), "screen size mismatch");
  for (std::size_t i = 0; i < on_epol.size(); ++i) {
    OCTGB_CHECK_MSG(on_epol[i] == off_epol[i],
                    "plan-driven energy deviated from the traversal");
  }
  const int evals = poses * dials;
  const double speedup = off_seconds / on_seconds;

  util::Table t("pose x dial screen: plan capture/replay/Born-reuse vs "
                "re-traversal");
  t.header({"mode", "per eval", "screen", "speedup"});
  t.row({"plan off (re-traverse)", bench::fmt_time(off_seconds / evals),
         bench::fmt_time(off_seconds), "1.0x"});
  t.row({"plan on (replay + reuse)", bench::fmt_time(on_seconds / evals),
         bench::fmt_time(on_seconds), util::format("%.2fx", speedup)});
  t.print();
  bench::save_csv(t, "bench_plan");

  std::printf("\nplan counters: builds %llu, replays %llu, born_reuses %llu, "
              "validations %llu, drift %llu\n",
              static_cast<unsigned long long>(stats.builds),
              static_cast<unsigned long long>(stats.replays),
              static_cast<unsigned long long>(stats.born_reuses),
              static_cast<unsigned long long>(stats.validations),
              static_cast<unsigned long long>(stats.invalidated_drift));
  std::printf("warm screen speedup: %.2fx (gate >= %.1fx)\n", speedup, gate);
  OCTGB_CHECK_MSG(speedup >= gate,
                  "plan-cached screen fell below the speedup gate");

  // --- explicit SIMD: warm Born replay, widest width vs scalar replay ------
  // Times the replay itself — the warm path every pose re-runs — on two
  // captured plans: one from a KernelKind::Scalar engine (the pre-SIMD
  // scalar replay, scalar_born_pair per pair) and one from the default
  // engine, whose near loop dispatches through the widest resolved
  // vector width. The section dials ε_born down to ~0 so the plan is the flat
  // *near* lists the vector layer targets: the far list must replay as
  // scalar born_far_term in capture order at every width (the bitwise
  // contract), so its share would only dilute the kernel comparison.
  const simd::VectorParams rvec = simd::resolve({});
  const int lanes = simd::lanes(rvec.isa);
  // Hosts with a ≥4-lane unit (AVX2 and up — what Auto resolves on any
  // modern x86-64) must clear the 2x acceptance target; a bare 2-lane
  // unit gets a scaled gate; the portable fallback reports without
  // gating. Smoke sizes are too small for stable ratios, so the gate
  // relaxes there.
  const double simd_gate = lanes >= 4   ? (smoke ? 1.5 : 2.0)
                           : lanes >= 2 ? (smoke ? 1.2 : 1.4)
                                        : 0.0;
  const int replay_reps = smoke ? 20 : 60;

  // Best of three timed groups: the workload is deterministic, so the
  // minimum is the measurement least disturbed by whatever else the host
  // was doing.
  const auto time_replay = [&](core::GBEngine& eng, core::EvalScratch& scr,
                               simd::VectorParams vec) {
    const core::InteractionPlan& plan = scr.plan_cache.plan;
    std::vector<double> node_s(eng.num_ta_nodes());
    std::vector<double> atom_s(eng.num_atoms());
    perf::WorkCounters warm;  // one untimed warmup replay
    plan.replay(eng.atoms_tree(), eng.qpoints_tree(), false, vec, node_s,
                atom_s, warm);
    double best = 1e300;
    for (int group = 0; group < 3; ++group) {
      perf::Timer t;
      for (int r = 0; r < replay_reps; ++r) {
        std::fill(node_s.begin(), node_s.end(), 0.0);
        std::fill(atom_s.begin(), atom_s.end(), 0.0);
        perf::WorkCounters wc;
        plan.replay(eng.atoms_tree(), eng.qpoints_tree(), false, vec, node_s,
                    atom_s, wc);
      }
      best = std::min(best, t.seconds() / replay_reps);
    }
    return best;
  };

  core::EngineConfig scalar_config;
  scalar_config.approx.eps_born = 1e-3;
  scalar_config.approx.kernel = core::KernelKind::Scalar;
  scalar_config.approx.vector.isa = simd::VectorIsa::Scalar;
  core::GBEngine scalar_engine(molecule, surf, scalar_config);
  core::EvalScratch scalar_scratch;
  (void)scalar_engine.compute(scalar_scratch);  // capture the scalar plan
  const double scalar_replay = time_replay(
      scalar_engine, scalar_scratch, {simd::VectorIsa::Scalar});

  core::EngineConfig vec_config;  // Batched + Auto → widest
  vec_config.approx.eps_born = 1e-3;
  core::GBEngine vec_engine(molecule, surf, vec_config);
  core::EvalScratch vec_scratch;
  (void)vec_engine.compute(vec_scratch);
  const double vec_replay = time_replay(vec_engine, vec_scratch, rvec);
  const double simd_speedup = scalar_replay / vec_replay;

  // Vector replay is numerically inert too: a warm vector-width replay
  // reproduces the vector-width traversal bit for bit.
  vec_engine.refit_atoms(pose_list[0]);
  const double vec_replay_epol = vec_engine.compute(vec_scratch).epol;
  core::EngineConfig vec_off_config = vec_config;
  vec_off_config.approx.plan = core::PlanMode::Off;
  core::GBEngine vec_off_engine(molecule, surf, vec_off_config);
  vec_off_engine.refit_atoms(pose_list[0]);
  core::EvalScratch vec_off_scratch;
  const double vec_off_epol = vec_off_engine.compute(vec_off_scratch).epol;
  OCTGB_CHECK_MSG(vec_replay_epol == vec_off_epol,
                  "vector-width replay deviated from the traversal");

  util::Table st("warm Born replay: scalar kernels vs widest vector width");
  st.header({"replay kernels", "per replay", "speedup"});
  st.row({"scalar", bench::fmt_time(scalar_replay), "1.0x"});
  st.row({std::string("simd ") + simd::isa_name(rvec.isa),
          bench::fmt_time(vec_replay), util::format("%.2fx", simd_speedup)});
  st.print();
  bench::save_csv(st, "bench_plan_simd");

  std::printf("\nsimd replay speedup (%s, %d lanes): %.2fx",
              simd::isa_name(rvec.isa), lanes, simd_speedup);
  if (simd_gate > 0.0) {
    std::printf(" (gate >= %.1fx)\n", simd_gate);
    OCTGB_CHECK_MSG(simd_speedup >= simd_gate,
                    "vector replay fell below the SIMD speedup gate");
  } else {
    std::printf(" (no vector unit — informational)\n");
  }

  // --- locality: run-coalesced carving vs the PR-9 cost-sorted carving -----
  // Gates (only with --locality):
  //   - the coalesced carving cuts the chunk count at least 2x vs the
  //     cost-sorted baseline on the same capture;
  //   - the warm replay with locality on is never slower than with it
  //     off (5% noise allowance, 10% under --smoke; interleaved
  //     best-of-4 groups);
  //   - a warm serial replay is bit-identical between the two carvings
  //     (Epol included — serial execution fixes the completion-order
  //     fold in the energy phase);
  //   - on hosts with >1 L3 domain, >= 60% of successful steals stay
  //     inside the thief's L3 tier (skipped with a log line elsewhere).
  if (locality) {
    core::EngineConfig lon_cfg, loff_cfg;
    lon_cfg.approx.locality = true;
    loff_cfg.approx.locality = false;
    core::GBEngine lon(molecule, surf, lon_cfg);
    core::GBEngine loff(molecule, surf, loff_cfg);
    core::EvalScratch lon_s, loff_s;
    (void)lon.compute(lon_s);  // capture both plans (serial)
    (void)loff.compute(loff_s);
    const perf::LocalityCounters lc = lon_s.plan_cache.locality;

    std::printf("\nlocality carving: %llu runs over %llu owner groups "
                "(mean run %.1f), %llu chunks vs %llu cost-sorted\n",
                static_cast<unsigned long long>(lc.runs),
                static_cast<unsigned long long>(lc.run_owners),
                lc.mean_run_length(),
                static_cast<unsigned long long>(lc.chunks),
                static_cast<unsigned long long>(lc.baseline_chunks));
    OCTGB_CHECK_MSG(lc.baseline_chunks >= 2 * lc.chunks,
                    "coalesced carving fell below the 2x chunk reduction");

    // Interleaved best-of-N: alternating on/off groups so slow drift in
    // the host's background load hits both carvings alike.
    const auto time_group = [&](core::GBEngine& eng, core::EvalScratch& scr) {
      perf::Timer t;
      for (const auto& pose : pose_list) {
        eng.refit_atoms(pose);
        (void)eng.compute(scr);
      }
      return t.seconds() / pose_list.size();
    };
    double warm_on = 1e300, warm_off = 1e300;
    for (int group = 0; group < 4; ++group) {
      warm_off = std::min(warm_off, time_group(loff, loff_s));
      warm_on = std::min(warm_on, time_group(lon, lon_s));
    }

    // Bitwise witness at the first pose, serial on both sides.
    lon.refit_atoms(pose_list[0]);
    loff.refit_atoms(pose_list[0]);
    const auto r_on = lon.compute(lon_s);
    const auto r_off = loff.compute(loff_s);
    OCTGB_CHECK_MSG(r_on.epol == r_off.epol,
                    "coalesced replay deviated from the baseline carving");
    for (std::size_t i = 0; i < r_on.born.size(); ++i)
      OCTGB_CHECK_MSG(r_on.born[i] == r_off.born[i],
                      "coalesced replay changed a Born radius");

    // Steal-tier fractions on the host topology: a warm multi-worker
    // screen, stats sampled over every replay.
    const perf::CpuTopology& topo = perf::topology();
    const int workers =
        std::max(2, std::min(4, static_cast<int>(topo.cpus.size())));
    ws::Scheduler sched(workers);
    std::uint64_t steals = 0, local = 0;
    for (const auto& pose : pose_list) {
      lon.refit_atoms(pose);
      (void)lon.compute(lon_s, &sched);
      const auto ss = sched.stats();  // engine resets stats per compute
      steals += ss.steals;
      local += ss.local_steals;
    }
    const double local_frac =
        steals == 0 ? 1.0 : static_cast<double>(local) / steals;

    util::Table lt("warm replay: coalesced carving vs cost-sorted baseline");
    lt.header({"carving", "per pose", "chunks", "speedup"});
    lt.row({"cost-sorted (locality off)", bench::fmt_time(warm_off),
            std::to_string(lc.baseline_chunks), "1.0x"});
    lt.row({"coalesced (locality on)", bench::fmt_time(warm_on),
            std::to_string(lc.chunks),
            util::format("%.2fx", warm_off / warm_on)});
    lt.print();
    bench::save_csv(lt, "bench_plan_locality");

    std::printf("steal locality: %llu/%llu local (%.2f) over %d workers, "
                "%d L3 domain(s)\n",
                static_cast<unsigned long long>(local),
                static_cast<unsigned long long>(steals), local_frac, workers,
                topo.l3_domains);
    // Smoke workloads are too small for a tight ratio on a noisy host;
    // the full run keeps the 5% allowance.
    const double warm_allowance = smoke ? 1.10 : 1.05;
    OCTGB_CHECK_MSG(warm_on <= warm_off * warm_allowance,
                    "locality-on warm replay regressed past the gate");
    if (topo.l3_domains > 1) {
      OCTGB_CHECK_MSG(local_frac >= 0.6,
                      "local-steal fraction fell below 0.6 on a multi-L3 "
                      "host");
    } else {
      std::printf("local-steal gate skipped: single L3 domain — every "
                  "steal is local by construction\n");
    }

    if (ts.active()) {
      auto& m = ts.metrics();
      m.add_locality("", lc);
      const auto ss = sched.stats();
      m.add_steal_tiers("", ss.local_steals, ss.socket_steals,
                        ss.remote_steals, ss.offblock_steals);
      m.set("plan.locality.warm_on_seconds", warm_on);
      m.set("plan.locality.warm_off_seconds", warm_off);
      m.set("plan.locality.local_steal_fraction", local_frac);
      // Chunk-cost and run-length histograms (power-of-two buckets).
      const core::InteractionPlan& plan = lon_s.plan_cache.plan;
      const auto order = plan.owner_order();
      const auto chunks = plan.chunk_offsets();
      const auto runs = plan.run_offsets();
      std::vector<std::uint64_t> chunk_costs, run_lengths;
      for (std::size_t c = 0; c + 1 < chunks.size(); ++c) {
        std::uint64_t cost = 0;
        for (std::uint32_t i = chunks[c]; i < chunks[c + 1]; ++i)
          cost += plan.group_cost(order[i]);
        chunk_costs.push_back(cost);
      }
      for (std::size_t r = 0; r + 1 < runs.size(); ++r)
        run_lengths.push_back(runs[r + 1] - runs[r]);
      histogram_p2(m, "plan.locality.chunk_cost", chunk_costs);
      histogram_p2(m, "plan.locality.run_length", run_lengths);
    }
  }

  if (ts.active()) {
    auto& m = ts.metrics();
    m.set("plan.screen.evals", static_cast<std::uint64_t>(evals));
    m.set("plan.screen.off_seconds", off_seconds);
    m.set("plan.screen.on_seconds", on_seconds);
    m.set("plan.screen.speedup", speedup);
    m.set("plan.screen.gate", gate);
    m.add_plan("", stats);
    m.set("simd.replay.scalar_seconds", scalar_replay);
    m.set("simd.replay.vector_seconds", vec_replay);
    m.set("simd.replay.speedup", simd_speedup);
    m.set("simd.replay.gate", simd_gate);
    m.add_simd("", simd::isa_name(rvec.isa), lanes, false);
  }
  ts.finish();
  return 0;
}
