// Interaction-plan bench: a pose × ε-dial screen through one warm
// EvalScratch, with the plan cache on (PlanMode::Auto) vs off.
//
// The workload models GB re-scoring practice: P small rigid perturbations
// of the molecule (refits — the plan survives via structural validation
// and replays as flat lists), each evaluated at D Epol dials (ε_epol
// re-dials — the Born phase is untouched, so the cached Born radii are
// exact and tier 1 skips integrals + push entirely).
//
// Gates (nonzero exit on violation):
//   - every (pose, dial) energy is bit-identical with the plan on and off
//     (the plan is numerically inert, DESIGN.md §2.6) — both sides run at
//     the widest resolved vector width, so this is also the replay-vs-
//     traversal bitwise witness for the explicit SIMD kernels;
//   - warm speedup of the screen with the plan on is >= 2.0x
//     (>= 1.5x under --smoke, the CI gate);
//   - the explicit vector layer's warm-replay speedup: replaying the
//     plan's flat Born lists through the widest resolved width is
//     >= 2.0x faster than the pre-SIMD scalar replay when 8 double lanes
//     are available (scaled down for narrower units, informational on the
//     portable fallback; smoke relaxes the gate — see simd_gate).
//
// `--metrics-out` dumps the timings, the speedups, the resolved width
// (kernel.simd.*) and the full perf::PlanCounters block per the
// OBSERVABILITY.md schema.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "octgb/simd/dispatch.hpp"

using namespace octgb;

namespace {

std::vector<geom::Vec3> jittered_positions(const mol::Molecule& mol,
                                           double scale, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec3> out;
  out.reserve(mol.size());
  for (const auto& a : mol.atoms()) {
    out.push_back(a.pos + geom::Vec3(rng.uniform(-scale, scale),
                                     rng.uniform(-scale, scale),
                                     rng.uniform(-scale, scale)));
  }
  return out;
}

/// Run the full screen: for each pose refit to its coordinates, then
/// evaluate every dial. Returns the epol matrix row-major (pose, dial).
std::vector<double> run_screen(core::GBEngine& engine,
                               core::EvalScratch& scratch,
                               const std::vector<std::vector<geom::Vec3>>& poses,
                               const std::vector<double>& dials) {
  std::vector<double> epol;
  epol.reserve(poses.size() * dials.size());
  for (const auto& pose : poses) {
    engine.refit_atoms(pose);
    for (const double eps_epol : dials) {
      engine.approx().eps_epol = eps_epol;
      epol.push_back(engine.compute(scratch).epol);
    }
  }
  return epol;
}

}  // namespace

int main(int argc, char** argv) {
  std::string molecule_name = "1PPE_r_b";
  int poses = 6;
  int dials = 8;
  bool smoke = false;
  util::Args args;
  args.add("molecule", &molecule_name, "ZDock receptor entry");
  args.add("poses", &poses, "rigid perturbations (refit → plan replay)");
  args.add("dials", &dials, "eps_epol dials per pose (Born-result reuse)");
  args.flag("smoke", &smoke, "CI-size workload and the 1.5x gate");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  if (smoke) {
    poses = std::min(poses, 3);
    dials = std::min(dials, 4);
  }
  const double gate = smoke ? 1.5 : 2.0;

  const mol::Molecule molecule = mol::make_benchmark_molecule(
      molecule_name, smoke ? 900 : mol::find_benchmark(molecule_name)->atoms);
  const auto surf = surface::build_surface(molecule, {.subdivision = 1});
  std::printf("%s: %zu atoms, %zu q-points — %d poses x %d dials (%d evals "
              "per mode)\n\n",
              molecule_name.c_str(), molecule.size(), surf.size(), poses,
              dials, poses * dials);

  std::vector<std::vector<geom::Vec3>> pose_list;
  for (int p = 0; p < poses; ++p)
    pose_list.push_back(
        jittered_positions(molecule, 1e-6, 100 + std::uint64_t(p)));
  std::vector<double> dial_list;
  for (int d = 0; d < dials; ++d) dial_list.push_back(0.5 + 0.2 * d);

  // --- plan off: every evaluation re-runs the recursive traversal ----------
  // Both sides of this section pin VectorIsa::Scalar so the speedup keeps
  // measuring the plan machinery itself (capture/replay/Born reuse) at
  // the same kernels as before the explicit vector layer existed; the
  // SIMD section below owns the width comparison.
  core::EngineConfig off_config;
  off_config.approx.plan = core::PlanMode::Off;
  off_config.approx.vector.isa = simd::VectorIsa::Scalar;
  core::GBEngine off_engine(molecule, surf, off_config);
  core::EvalScratch off_scratch;
  (void)off_engine.compute(off_scratch);  // prime buffers out of the timing
  perf::Timer off_timer;
  const auto off_epol =
      run_screen(off_engine, off_scratch, pose_list, dial_list);
  const double off_seconds = off_timer.seconds();

  // --- plan on: capture once, replay per pose, Born reuse per dial ---------
  core::EngineConfig on_config;
  on_config.approx.vector.isa = simd::VectorIsa::Scalar;
  core::GBEngine on_engine(molecule, surf, on_config);
  core::EvalScratch on_scratch;
  (void)on_engine.compute(on_scratch);  // prime buffers + capture the plan
  perf::Timer on_timer;
  const auto on_epol = run_screen(on_engine, on_scratch, pose_list, dial_list);
  const double on_seconds = on_timer.seconds();
  const perf::PlanCounters& stats = on_scratch.plan_cache.stats;

  // --- gates ----------------------------------------------------------------
  OCTGB_CHECK_MSG(on_epol.size() == off_epol.size(), "screen size mismatch");
  for (std::size_t i = 0; i < on_epol.size(); ++i) {
    OCTGB_CHECK_MSG(on_epol[i] == off_epol[i],
                    "plan-driven energy deviated from the traversal");
  }
  const int evals = poses * dials;
  const double speedup = off_seconds / on_seconds;

  util::Table t("pose x dial screen: plan capture/replay/Born-reuse vs "
                "re-traversal");
  t.header({"mode", "per eval", "screen", "speedup"});
  t.row({"plan off (re-traverse)", bench::fmt_time(off_seconds / evals),
         bench::fmt_time(off_seconds), "1.0x"});
  t.row({"plan on (replay + reuse)", bench::fmt_time(on_seconds / evals),
         bench::fmt_time(on_seconds), util::format("%.2fx", speedup)});
  t.print();
  bench::save_csv(t, "bench_plan");

  std::printf("\nplan counters: builds %llu, replays %llu, born_reuses %llu, "
              "validations %llu, drift %llu\n",
              static_cast<unsigned long long>(stats.builds),
              static_cast<unsigned long long>(stats.replays),
              static_cast<unsigned long long>(stats.born_reuses),
              static_cast<unsigned long long>(stats.validations),
              static_cast<unsigned long long>(stats.invalidated_drift));
  std::printf("warm screen speedup: %.2fx (gate >= %.1fx)\n", speedup, gate);
  OCTGB_CHECK_MSG(speedup >= gate,
                  "plan-cached screen fell below the speedup gate");

  // --- explicit SIMD: warm Born replay, widest width vs scalar replay ------
  // Times the replay itself — the warm path every pose re-runs — on two
  // captured plans: one from a KernelKind::Scalar engine (the pre-SIMD
  // scalar replay, scalar_born_pair per pair) and one from the default
  // engine, whose near loop dispatches through the widest resolved
  // vector width. The section dials ε_born down to ~0 so the plan is the flat
  // *near* lists the vector layer targets: the far list must replay as
  // scalar born_far_term in capture order at every width (the bitwise
  // contract), so its share would only dilute the kernel comparison.
  const simd::VectorParams rvec = simd::resolve({});
  const int lanes = simd::lanes(rvec.isa);
  // Hosts with a ≥4-lane unit (AVX2 and up — what Auto resolves on any
  // modern x86-64) must clear the 2x acceptance target; a bare 2-lane
  // unit gets a scaled gate; the portable fallback reports without
  // gating. Smoke sizes are too small for stable ratios, so the gate
  // relaxes there.
  const double simd_gate = lanes >= 4   ? (smoke ? 1.5 : 2.0)
                           : lanes >= 2 ? (smoke ? 1.2 : 1.4)
                                        : 0.0;
  const int replay_reps = smoke ? 20 : 60;

  // Best of three timed groups: the workload is deterministic, so the
  // minimum is the measurement least disturbed by whatever else the host
  // was doing.
  const auto time_replay = [&](core::GBEngine& eng, core::EvalScratch& scr,
                               simd::VectorParams vec) {
    const core::InteractionPlan& plan = scr.plan_cache.plan;
    std::vector<double> node_s(eng.num_ta_nodes());
    std::vector<double> atom_s(eng.num_atoms());
    perf::WorkCounters warm;  // one untimed warmup replay
    plan.replay(eng.atoms_tree(), eng.qpoints_tree(), false, vec, node_s,
                atom_s, warm);
    double best = 1e300;
    for (int group = 0; group < 3; ++group) {
      perf::Timer t;
      for (int r = 0; r < replay_reps; ++r) {
        std::fill(node_s.begin(), node_s.end(), 0.0);
        std::fill(atom_s.begin(), atom_s.end(), 0.0);
        perf::WorkCounters wc;
        plan.replay(eng.atoms_tree(), eng.qpoints_tree(), false, vec, node_s,
                    atom_s, wc);
      }
      best = std::min(best, t.seconds() / replay_reps);
    }
    return best;
  };

  core::EngineConfig scalar_config;
  scalar_config.approx.eps_born = 1e-3;
  scalar_config.approx.kernel = core::KernelKind::Scalar;
  scalar_config.approx.vector.isa = simd::VectorIsa::Scalar;
  core::GBEngine scalar_engine(molecule, surf, scalar_config);
  core::EvalScratch scalar_scratch;
  (void)scalar_engine.compute(scalar_scratch);  // capture the scalar plan
  const double scalar_replay = time_replay(
      scalar_engine, scalar_scratch, {simd::VectorIsa::Scalar});

  core::EngineConfig vec_config;  // Batched + Auto → widest
  vec_config.approx.eps_born = 1e-3;
  core::GBEngine vec_engine(molecule, surf, vec_config);
  core::EvalScratch vec_scratch;
  (void)vec_engine.compute(vec_scratch);
  const double vec_replay = time_replay(vec_engine, vec_scratch, rvec);
  const double simd_speedup = scalar_replay / vec_replay;

  // Vector replay is numerically inert too: a warm vector-width replay
  // reproduces the vector-width traversal bit for bit.
  vec_engine.refit_atoms(pose_list[0]);
  const double vec_replay_epol = vec_engine.compute(vec_scratch).epol;
  core::EngineConfig vec_off_config = vec_config;
  vec_off_config.approx.plan = core::PlanMode::Off;
  core::GBEngine vec_off_engine(molecule, surf, vec_off_config);
  vec_off_engine.refit_atoms(pose_list[0]);
  core::EvalScratch vec_off_scratch;
  const double vec_off_epol = vec_off_engine.compute(vec_off_scratch).epol;
  OCTGB_CHECK_MSG(vec_replay_epol == vec_off_epol,
                  "vector-width replay deviated from the traversal");

  util::Table st("warm Born replay: scalar kernels vs widest vector width");
  st.header({"replay kernels", "per replay", "speedup"});
  st.row({"scalar", bench::fmt_time(scalar_replay), "1.0x"});
  st.row({std::string("simd ") + simd::isa_name(rvec.isa),
          bench::fmt_time(vec_replay), util::format("%.2fx", simd_speedup)});
  st.print();
  bench::save_csv(st, "bench_plan_simd");

  std::printf("\nsimd replay speedup (%s, %d lanes): %.2fx",
              simd::isa_name(rvec.isa), lanes, simd_speedup);
  if (simd_gate > 0.0) {
    std::printf(" (gate >= %.1fx)\n", simd_gate);
    OCTGB_CHECK_MSG(simd_speedup >= simd_gate,
                    "vector replay fell below the SIMD speedup gate");
  } else {
    std::printf(" (no vector unit — informational)\n");
  }

  if (ts.active()) {
    auto& m = ts.metrics();
    m.set("plan.screen.evals", static_cast<std::uint64_t>(evals));
    m.set("plan.screen.off_seconds", off_seconds);
    m.set("plan.screen.on_seconds", on_seconds);
    m.set("plan.screen.speedup", speedup);
    m.set("plan.screen.gate", gate);
    m.add_plan("", stats);
    m.set("simd.replay.scalar_seconds", scalar_replay);
    m.set("simd.replay.vector_seconds", vec_replay);
    m.set("simd.replay.speedup", simd_speedup);
    m.set("simd.replay.gate", simd_gate);
    m.add_simd("", simd::isa_name(rvec.isa), lanes, false);
  }
  ts.finish();
  return 0;
}
