// Figure 8: (a) running time of all engines on the ZDock set (12 cores,
// log scale in the paper) and (b) speedup w.r.t. Amber 12.
//
// Octree engine times are modeled from measured work (DESIGN.md §2);
// package times come from their measured pair/grid operation counts and
// their fixed calibration constants (packages.hpp — fitted once to the
// paper's stated anchors: OCT_MPI ≈ 11× Amber at 16,301 atoms, Gromacs
// 2.7× there with max 6.2× at 2,260, NAMD/Tinker/GBr6 maxima ≈ 1.1 / 2.1
// / 1.14). The naive engine is serial, like the paper's.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  perf::MachineModel machine;
  bench::print_environment(machine);
  bench::print_package_table();

  util::Table ta(
      "Fig. 8(a) — GB-energy running time on 12 cores (modeled; naive and "
      "GBr6 serial)");
  ta.header({"molecule", "atoms", "OCT_MPI", "OCT_MPI+CILK", "OCT_CILK",
             "Gromacs", "Amber", "NAMD", "Tinker", "GBr6", "Naive"});
  util::Table tb("Fig. 8(b) — speedup w.r.t. Amber 12 (12 cores)");
  tb.header({"molecule", "atoms", "OCT_MPI", "OCT_MPI+CILK", "OCT_CILK",
             "Gromacs", "NAMD", "Tinker", "GBr6"});

  double max_speedup_oct = 0, max_speedup_gromacs = 0, max_speedup_namd = 0,
         max_speedup_tinker = 0, max_speedup_gbr6 = 0;
  double oct_at_largest = 0, gromacs_at_largest = 0;

  const auto selection = bench::zdock_selection();
  for (const auto& entry : selection) {
    bench::Prepared p = bench::prepare(mol::make_benchmark_molecule(entry.name));
    const auto mpi_res =
        bench::run_config(*p.engine, bench::oct_mpi_config(12));
    const auto hyb_res =
        bench::run_config(*p.engine, bench::oct_hybrid_config(12));
    const auto cilk_res =
        bench::run_config(*p.engine, bench::oct_cilk_config(12));
    if (ts.active()) {
      bench::add_sim_metrics(ts.metrics(),
                             std::string("oct_mpi.") + entry.name, mpi_res);
      bench::add_sim_metrics(ts.metrics(),
                             std::string("oct_hybrid.") + entry.name, hyb_res);
      bench::add_sim_metrics(ts.metrics(),
                             std::string("oct_cilk.") + entry.name, cilk_res);
    }
    const double oct_mpi = mpi_res.total_seconds;
    const double oct_hyb = hyb_res.total_seconds;
    const double oct_cilk = cilk_res.total_seconds;

    std::map<std::string, double> pkg_time;
    for (const auto& spec : baselines::package_registry()) {
      const auto r = baselines::run_package(spec, p.molecule, machine);
      pkg_time[spec.name] = r.out_of_memory ? -1.0 : r.modeled_seconds;
    }

    // Naive: serial exact algorithm — M·N Born interactions + M² GB pairs.
    perf::WorkCounters naive_work;
    naive_work.born_exact = std::uint64_t(p.atoms()) * p.surf.size();
    naive_work.push_atoms = p.atoms();
    naive_work.epol_exact = std::uint64_t(p.atoms()) * p.atoms();
    const double naive_t =
        machine.compute_seconds(naive_work, 0.0, 1, false);

    auto fmt = [](double s) {
      return s < 0 ? std::string("OOM") : bench::fmt_time(s);
    };
    ta.row({entry.name, util::format("%zu", p.atoms()), fmt(oct_mpi),
            fmt(oct_hyb), fmt(oct_cilk), fmt(pkg_time["Gromacs 4.5.3"]),
            fmt(pkg_time["Amber 12"]), fmt(pkg_time["NAMD 2.9"]),
            fmt(pkg_time["Tinker 6.0"]), fmt(pkg_time["GBr6"]),
            fmt(naive_t)});

    const double amber = pkg_time["Amber 12"];
    auto speedup = [&](double s) {
      return s <= 0 ? std::string("OOM")
                    : util::format("%.2f", amber / s);
    };
    tb.row({entry.name, util::format("%zu", p.atoms()), speedup(oct_mpi),
            speedup(oct_hyb), speedup(oct_cilk),
            speedup(pkg_time["Gromacs 4.5.3"]), speedup(pkg_time["NAMD 2.9"]),
            speedup(pkg_time["Tinker 6.0"]), speedup(pkg_time["GBr6"])});

    max_speedup_oct = std::max(max_speedup_oct, amber / oct_mpi);
    if (pkg_time["Gromacs 4.5.3"] > 0)
      max_speedup_gromacs =
          std::max(max_speedup_gromacs, amber / pkg_time["Gromacs 4.5.3"]);
    if (pkg_time["NAMD 2.9"] > 0)
      max_speedup_namd =
          std::max(max_speedup_namd, amber / pkg_time["NAMD 2.9"]);
    if (pkg_time["Tinker 6.0"] > 0)
      max_speedup_tinker =
          std::max(max_speedup_tinker, amber / pkg_time["Tinker 6.0"]);
    if (pkg_time["GBr6"] > 0)
      max_speedup_gbr6 =
          std::max(max_speedup_gbr6, amber / pkg_time["GBr6"]);
    if (entry.name == selection.back().name) {
      oct_at_largest = amber / oct_mpi;
      if (pkg_time["Gromacs 4.5.3"] > 0)
        gromacs_at_largest = amber / pkg_time["Gromacs 4.5.3"];
    }
    std::printf("  %-10s %6zu atoms done\n", entry.name, p.atoms());
  }

  std::puts("");
  ta.print();
  std::puts("");
  tb.print();
  bench::save_csv(ta, "fig8a_runtimes");
  bench::save_csv(tb, "fig8b_speedups");

  util::Table anchors("Fig. 8(b) anchors: paper vs measured");
  anchors.header({"anchor", "paper", "measured"});
  anchors.row({"OCT_MPI speedup at largest molecule", "~11",
               util::format("%.1f", oct_at_largest)});
  anchors.row({"Gromacs speedup at largest molecule", "~2.7",
               util::format("%.1f", gromacs_at_largest)});
  anchors.row({"Gromacs max speedup", "6.2",
               util::format("%.1f", max_speedup_gromacs)});
  anchors.row({"NAMD max speedup", "1.1",
               util::format("%.1f", max_speedup_namd)});
  anchors.row({"Tinker max speedup", "2.1",
               util::format("%.1f", max_speedup_tinker)});
  anchors.row({"GBr6 max speedup", "1.14",
               util::format("%.2f", max_speedup_gbr6)});
  std::puts("");
  anchors.print();
  bench::save_csv(anchors, "fig8b_anchors");
  ts.finish();
  return 0;
}
