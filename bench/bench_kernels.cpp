// Kernel microbenchmarks (google-benchmark): octree construction, surface
// sampling, the Born and Epol kernels, fast math, the work-stealing
// scheduler, and mpp collectives. These measure *real wall time on this
// host* (unlike the figure benches, which model the paper's cluster).
//
// `--trace` (consumed before google-benchmark sees argv) records every
// phase/worker span into bench_out/kernels_trace.json — the sample trace
// CI uploads (OBSERVABILITY.md). Leave it off when measuring: the
// overhead numbers in OBSERVABILITY.md are for tracing disabled.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "octgb/octgb.hpp"
#include "octgb/simd/dispatch.hpp"

using namespace octgb;

namespace {

const mol::Molecule& test_molecule(std::size_t atoms) {
  static std::map<std::size_t, mol::Molecule> cache;
  auto it = cache.find(atoms);
  if (it == cache.end()) {
    it = cache.emplace(atoms, mol::generate_protein(
                                  {.target_atoms = atoms, .seed = 99}))
             .first;
  }
  return it->second;
}

const surface::Surface& test_surface(std::size_t atoms) {
  static std::map<std::size_t, surface::Surface> cache;
  auto it = cache.find(atoms);
  if (it == cache.end()) {
    it = cache.emplace(atoms, surface::build_surface(test_molecule(atoms),
                                                     {.subdivision = 1}))
             .first;
  }
  return it->second;
}

}  // namespace

static void BM_OctreeBuild(benchmark::State& state) {
  const auto& m = test_molecule(static_cast<std::size_t>(state.range(0)));
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  for (auto _ : state) {
    auto t = octree::Octree::build(pts);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OctreeBuild)->Arg(1000)->Arg(4000)->Arg(16000);

static void BM_NbListBuild(benchmark::State& state) {
  const auto& m = test_molecule(4000);
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  const double cutoff = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto nb = octree::NbList::build(pts, {.cutoff = cutoff, .max_bytes = 0});
    benchmark::DoNotOptimize(nb);
  }
}
BENCHMARK(BM_NbListBuild)->Arg(6)->Arg(12)->Arg(20);

static void BM_SurfaceBuild(benchmark::State& state) {
  const auto& m = test_molecule(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto s = surface::build_surface(m, {.subdivision = 1});
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SurfaceBuild)->Arg(1000)->Arg(4000);

// --- near-field kernels on real leaf distributions, per variant ---------
//
// One benchmark series per (kernel, width, precision) triple, so the CSV
// never lumps distinct code paths under one undifferentiated "batched"
// label. Variants:
//   scalar                 — KernelKind::Scalar AoS reference
//   batched/scalar/double  — autovectorized SoA batch kernels
//   batched/<isa>/double   — explicit vector layer (simd/dispatch.hpp)
//   batched/<isa>/mixed    — float-stream mixed precision
// Width variants are registered at startup for every compiled-and-
// runnable ISA (see register_kernel_variants in main), so a narrower
// host simply produces fewer series instead of error rows.

namespace {

struct KernelVariant {
  core::KernelKind kind = core::KernelKind::Batched;
  simd::VectorParams vec;
  std::string label;  ///< benchmark-name suffix, "kernel/width/precision"
};

std::vector<KernelVariant> kernel_variants() {
  std::vector<KernelVariant> out;
  out.push_back({core::KernelKind::Scalar,
                 {simd::VectorIsa::Scalar, simd::Precision::Double},
                 "scalar"});
  out.push_back({core::KernelKind::Batched,
                 {simd::VectorIsa::Scalar, simd::Precision::Double},
                 "batched/scalar/double"});
  for (simd::VectorIsa isa : {simd::VectorIsa::V128, simd::VectorIsa::V256,
                              simd::VectorIsa::V512}) {
    if (!simd::isa_available(isa)) continue;
    for (simd::Precision prec :
         {simd::Precision::Double, simd::Precision::Mixed}) {
      out.push_back(
          {core::KernelKind::Batched,
           {isa, prec},
           std::string("batched/") + simd::isa_name(isa) + "/" +
               (prec == simd::Precision::Mixed ? "mixed" : "double")});
    }
  }
  return out;
}

void BM_BornPhaseKernel(benchmark::State& state, KernelVariant variant) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::EngineConfig cfg;
  cfg.approx.kernel = variant.kind;
  cfg.approx.vector = variant.vec;
  core::GBEngine engine(test_molecule(n), test_surface(n), cfg);
  std::vector<double> node_s(engine.num_ta_nodes());
  std::vector<double> atom_s(engine.num_atoms());
  std::uint64_t interactions = 0;
  for (auto _ : state) {
    std::fill(node_s.begin(), node_s.end(), 0.0);
    std::fill(atom_s.begin(), atom_s.end(), 0.0);
    perf::WorkCounters wc;
    engine.phase_integrals(
        {0, static_cast<std::uint32_t>(engine.q_leaves().size())}, node_s,
        atom_s, wc);
    interactions += wc.born_exact;
    benchmark::DoNotOptimize(atom_s.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(interactions));
  state.SetLabel(variant.label);
}

void BM_EpolPhaseKernel(benchmark::State& state, KernelVariant variant) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::EngineConfig cfg;
  cfg.approx.kernel = variant.kind;
  cfg.approx.vector = variant.vec;
  core::GBEngine engine(test_molecule(n), test_surface(n), cfg);
  const auto result = engine.compute();
  std::vector<double> born_tree(engine.num_atoms());
  const auto idx = engine.atoms_tree().tree.point_index();
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = result.born[idx[pos]];
  const auto ctx = engine.build_epol_context(born_tree);
  std::uint64_t interactions = 0;
  for (auto _ : state) {
    perf::WorkCounters wc;
    const double e = engine.phase_epol(
        ctx, born_tree,
        {0, static_cast<std::uint32_t>(engine.a_leaves().size())}, wc);
    interactions += wc.epol_exact;
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(interactions));
  state.SetLabel(variant.label);
}

void BM_LeafBornKernel(benchmark::State& state, KernelVariant variant) {
  const std::size_t n = 4000;
  core::GBEngine engine(test_molecule(n), test_surface(n));
  const auto& ta = engine.atoms_tree();
  const auto& tq = engine.qpoints_tree();
  const bool batched = variant.kind == core::KernelKind::Batched;
  const simd::KernelSet* ks = simd::kernels(variant.vec.isa);
  const bool mixed =
      ks != nullptr && variant.vec.precision == simd::Precision::Mixed;
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    double acc = 0.0;
    // Every T_A leaf against a striding sample of real T_Q leaves.
    const auto& a_leaves = ta.tree.leaf_ids();
    const auto& q_leaves = tq.tree.leaf_ids();
    for (std::size_t i = 0; i < a_leaves.size(); ++i) {
      const auto& a = ta.tree.node(a_leaves[i]);
      const auto& q = tq.tree.node(q_leaves[i % q_leaves.size()]);
      if (mixed) {
        const core::QPointBatchF qb = tq.node_batch_f(q);
        for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
          acc += ks->born_integral_mixed(ta.soa_x()[ai], ta.soa_y()[ai],
                                         ta.soa_z()[ai], qb);
      } else if (ks != nullptr) {
        const core::QPointBatch qb = tq.node_batch(q);
        for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
          acc += ks->born_integral(ta.soa_x()[ai], ta.soa_y()[ai],
                                   ta.soa_z()[ai], qb);
      } else if (batched) {
        const core::QPointBatch qb = tq.node_batch(q);
        for (std::uint32_t ai = a.begin; ai < a.end; ++ai)
          acc += core::batch_born_integral(ta.soa_x()[ai], ta.soa_y()[ai],
                                           ta.soa_z()[ai], qb);
      } else {
        const auto atom_pts = ta.tree.points();
        const auto q_pts = tq.tree.points();
        for (std::uint32_t ai = a.begin; ai < a.end; ++ai) {
          const geom::Vec3 pa = atom_pts[ai];
          double s = 0.0;
          for (std::uint32_t qi = q.begin; qi < q.end; ++qi) {
            const geom::Vec3 delta = q_pts[qi] - pa;
            const double r2 = delta.norm2();
            if (r2 < 1e-12) continue;
            s += tq.wnormal[qi].dot(delta) * core::inv_r6(r2, false);
          }
          acc += s;
        }
      }
      pairs += static_cast<std::uint64_t>(a.size()) * q.size();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
  state.SetLabel(variant.label);
}

void BM_LeafEpolKernel(benchmark::State& state, KernelVariant variant) {
  const std::size_t n = 4000;
  core::GBEngine engine(test_molecule(n), test_surface(n));
  const auto result = engine.compute();
  const auto& ta = engine.atoms_tree();
  std::vector<double> born_tree(engine.num_atoms());
  const auto idx = ta.tree.point_index();
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = result.born[idx[pos]];
  const bool batched = variant.kind == core::KernelKind::Batched;
  const simd::KernelSet* ks = simd::kernels(variant.vec.isa);
  const bool mixed =
      ks != nullptr && variant.vec.precision == simd::Precision::Mixed;
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    double acc = 0.0;
    const auto& leaves = ta.tree.leaf_ids();
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const auto& v = ta.tree.node(leaves[i]);
      const auto& u = ta.tree.node(leaves[(i + 1) % leaves.size()]);
      if (mixed) {
        const core::AtomBatchF ub = ta.node_batch_f(u, born_tree);
        for (std::uint32_t vi = v.begin; vi < v.end; ++vi)
          acc += ks->epol_sum_mixed(ta.soa_x()[vi], ta.soa_y()[vi],
                                    ta.soa_z()[vi], ta.charge[vi],
                                    born_tree[vi], ub);
      } else if (ks != nullptr) {
        const core::AtomBatch ub = ta.node_batch(u, born_tree);
        for (std::uint32_t vi = v.begin; vi < v.end; ++vi)
          acc += ks->epol_sum(ta.soa_x()[vi], ta.soa_y()[vi], ta.soa_z()[vi],
                              ta.charge[vi], born_tree[vi], ub);
      } else if (batched) {
        const core::AtomBatch ub = ta.node_batch(u, born_tree);
        for (std::uint32_t vi = v.begin; vi < v.end; ++vi)
          acc += core::batch_epol_sum(ta.soa_x()[vi], ta.soa_y()[vi],
                                      ta.soa_z()[vi], ta.charge[vi],
                                      born_tree[vi], ub);
      } else {
        const auto pts = ta.tree.points();
        for (std::uint32_t vi = v.begin; vi < v.end; ++vi) {
          const geom::Vec3 pv = pts[vi];
          const double qv = ta.charge[vi];
          const double rv = born_tree[vi];
          for (std::uint32_t ui = u.begin; ui < u.end; ++ui) {
            const double r2 = geom::dist2(pts[ui], pv);
            acc += ta.charge[ui] * qv /
                   core::f_gb(r2, born_tree[ui] * rv);
          }
        }
      }
      pairs += static_cast<std::uint64_t>(u.size()) * v.size();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
  state.SetLabel(variant.label);
}

/// Register one series per variant for the four kernel benches. Done at
/// runtime (not BENCHMARK macros) because the variant list depends on
/// which vector TUs this binary carries and what the CPU can run.
void register_kernel_variants() {
  for (const KernelVariant& variant : kernel_variants()) {
    const std::string tag = "/" + variant.label;
    benchmark::RegisterBenchmark(
        ("BM_BornPhaseKernel" + tag).c_str(),
        [variant](benchmark::State& s) { BM_BornPhaseKernel(s, variant); })
        ->Arg(1000)
        ->Arg(4000);
    benchmark::RegisterBenchmark(
        ("BM_EpolPhaseKernel" + tag).c_str(),
        [variant](benchmark::State& s) { BM_EpolPhaseKernel(s, variant); })
        ->Arg(1000)
        ->Arg(4000);
    benchmark::RegisterBenchmark(
        ("BM_LeafBornKernel" + tag).c_str(),
        [variant](benchmark::State& s) { BM_LeafBornKernel(s, variant); });
    benchmark::RegisterBenchmark(
        ("BM_LeafEpolKernel" + tag).c_str(),
        [variant](benchmark::State& s) { BM_LeafEpolKernel(s, variant); });
  }
}

}  // namespace

static void BM_BornPhase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::GBEngine engine(test_molecule(n), test_surface(n));
  std::vector<double> node_s(engine.num_ta_nodes());
  std::vector<double> atom_s(engine.num_atoms());
  for (auto _ : state) {
    std::fill(node_s.begin(), node_s.end(), 0.0);
    std::fill(atom_s.begin(), atom_s.end(), 0.0);
    perf::WorkCounters wc;
    engine.phase_integrals(
        {0, static_cast<std::uint32_t>(engine.q_leaves().size())}, node_s,
        atom_s, wc);
    benchmark::DoNotOptimize(atom_s.data());
  }
}
BENCHMARK(BM_BornPhase)->Arg(1000)->Arg(4000);

static void BM_EpolPhase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::GBEngine engine(test_molecule(n), test_surface(n));
  const auto result = engine.compute();
  std::vector<double> born_tree(engine.num_atoms());
  const auto idx = engine.atoms_tree().tree.point_index();
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = result.born[idx[pos]];
  const auto ctx = engine.build_epol_context(born_tree);
  for (auto _ : state) {
    perf::WorkCounters wc;
    const double e = engine.phase_epol(
        ctx, born_tree,
        {0, static_cast<std::uint32_t>(engine.a_leaves().size())}, wc);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_EpolPhase)->Arg(1000)->Arg(4000);

static void BM_FastRsqrt(benchmark::State& state) {
  double x = 1.0;
  for (auto _ : state) {
    x += 1.0;
    benchmark::DoNotOptimize(core::fast_rsqrt(x));
  }
}
BENCHMARK(BM_FastRsqrt);

static void BM_ExactRsqrt(benchmark::State& state) {
  double x = 1.0;
  for (auto _ : state) {
    x += 1.0;
    benchmark::DoNotOptimize(1.0 / std::sqrt(x));
  }
}
BENCHMARK(BM_ExactRsqrt);

static void BM_FastExp(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x = x > 20 ? 0.0 : x + 1e-3;
    benchmark::DoNotOptimize(core::fast_exp(-x));
  }
}
BENCHMARK(BM_FastExp);

static void BM_ExactExp(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x = x > 20 ? 0.0 : x + 1e-3;
    benchmark::DoNotOptimize(std::exp(-x));
  }
}
BENCHMARK(BM_ExactExp);

static void BM_SchedulerForkJoin(benchmark::State& state) {
  ws::Scheduler sched(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<long> sum{0};
    sched.run([&] {
      ws::Scheduler::parallel_for(0, 100000, 512,
                                  [&](std::int64_t lo, std::int64_t hi) {
                                    long s = 0;
                                    for (auto i = lo; i < hi; ++i) s += i;
                                    sum += s;
                                  });
    });
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_SchedulerForkJoin)->Arg(1)->Arg(2)->Arg(4);

static void BM_MppAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpp::Runtime::Options opts;
    opts.ranks = ranks;
    mpp::Runtime::run(opts, [](mpp::Comm& c) {
      std::vector<double> v(1024, static_cast<double>(c.rank()));
      c.allreduce_sum(std::span<double>(v));
      benchmark::DoNotOptimize(v[0]);
    });
  }
}
BENCHMARK(BM_MppAllreduce)->Arg(2)->Arg(4)->Arg(8);

// Custom main instead of BENCHMARK_MAIN(): pre-scan argv for --trace and
// --smoke, which google-benchmark's own parser would reject as unknown
// flags. --smoke shrinks per-series measuring time so the CI simd-matrix
// job can emit one CSV per width without budget; --smoke numbers are for
// shape inspection, not for regression comparison.
int main(int argc, char** argv) {
  bool want_trace = false;
  bool smoke = false;
  std::vector<char*> pass_argv;
  pass_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      want_trace = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      pass_argv.push_back(argv[i]);
    }
  }
  static char min_time_flag[] = "--benchmark_min_time=0.02";
  if (smoke) pass_argv.push_back(min_time_flag);
  argc = static_cast<int>(pass_argv.size());
  argv = pass_argv.data();

  if (want_trace) {
    // Benchmarks iterate kernels thousands of times; cap each thread's
    // buffer well below the default so the JSON stays loadable.
    trace::Tracer::instance().set_max_events_per_thread(1 << 18);
    trace::Tracer::instance().set_enabled(true);
  }

  register_kernel_variants();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (want_trace) {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/kernels_trace.json";
    auto& tracer = trace::Tracer::instance();
    if (tracer.save_chrome_trace(path)) {
      std::printf("[trace] wrote %s (%zu events", path,
                  tracer.event_count());
      if (tracer.dropped_count() > 0)
        std::printf(", %llu dropped",
                    static_cast<unsigned long long>(tracer.dropped_count()));
      std::printf(") — open in https://ui.perfetto.dev\n");
    } else {
      std::printf("[trace] FAILED to write %s\n", path);
    }
  }
  return 0;
}
