// Kernel microbenchmarks (google-benchmark): octree construction, surface
// sampling, the Born and Epol kernels, fast math, the work-stealing
// scheduler, and mpp collectives. These measure *real wall time on this
// host* (unlike the figure benches, which model the paper's cluster).

#include <benchmark/benchmark.h>

#include "octgb/octgb.hpp"

using namespace octgb;

namespace {

const mol::Molecule& test_molecule(std::size_t atoms) {
  static std::map<std::size_t, mol::Molecule> cache;
  auto it = cache.find(atoms);
  if (it == cache.end()) {
    it = cache.emplace(atoms, mol::generate_protein(
                                  {.target_atoms = atoms, .seed = 99}))
             .first;
  }
  return it->second;
}

const surface::Surface& test_surface(std::size_t atoms) {
  static std::map<std::size_t, surface::Surface> cache;
  auto it = cache.find(atoms);
  if (it == cache.end()) {
    it = cache.emplace(atoms, surface::build_surface(test_molecule(atoms),
                                                     {.subdivision = 1}))
             .first;
  }
  return it->second;
}

}  // namespace

static void BM_OctreeBuild(benchmark::State& state) {
  const auto& m = test_molecule(static_cast<std::size_t>(state.range(0)));
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  for (auto _ : state) {
    auto t = octree::Octree::build(pts);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OctreeBuild)->Arg(1000)->Arg(4000)->Arg(16000);

static void BM_NbListBuild(benchmark::State& state) {
  const auto& m = test_molecule(4000);
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  const double cutoff = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto nb = octree::NbList::build(pts, {.cutoff = cutoff, .max_bytes = 0});
    benchmark::DoNotOptimize(nb);
  }
}
BENCHMARK(BM_NbListBuild)->Arg(6)->Arg(12)->Arg(20);

static void BM_SurfaceBuild(benchmark::State& state) {
  const auto& m = test_molecule(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto s = surface::build_surface(m, {.subdivision = 1});
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SurfaceBuild)->Arg(1000)->Arg(4000);

static void BM_BornPhase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::GBEngine engine(test_molecule(n), test_surface(n));
  std::vector<double> node_s(engine.num_ta_nodes());
  std::vector<double> atom_s(engine.num_atoms());
  for (auto _ : state) {
    std::fill(node_s.begin(), node_s.end(), 0.0);
    std::fill(atom_s.begin(), atom_s.end(), 0.0);
    perf::WorkCounters wc;
    engine.phase_integrals(
        {0, static_cast<std::uint32_t>(engine.q_leaves().size())}, node_s,
        atom_s, wc);
    benchmark::DoNotOptimize(atom_s.data());
  }
}
BENCHMARK(BM_BornPhase)->Arg(1000)->Arg(4000);

static void BM_EpolPhase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::GBEngine engine(test_molecule(n), test_surface(n));
  const auto result = engine.compute();
  std::vector<double> born_tree(engine.num_atoms());
  const auto idx = engine.atoms_tree().tree.point_index();
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = result.born[idx[pos]];
  const auto ctx = engine.build_epol_context(born_tree);
  for (auto _ : state) {
    perf::WorkCounters wc;
    const double e = engine.phase_epol(
        ctx, born_tree,
        {0, static_cast<std::uint32_t>(engine.a_leaves().size())}, wc);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_EpolPhase)->Arg(1000)->Arg(4000);

static void BM_FastRsqrt(benchmark::State& state) {
  double x = 1.0;
  for (auto _ : state) {
    x += 1.0;
    benchmark::DoNotOptimize(core::fast_rsqrt(x));
  }
}
BENCHMARK(BM_FastRsqrt);

static void BM_ExactRsqrt(benchmark::State& state) {
  double x = 1.0;
  for (auto _ : state) {
    x += 1.0;
    benchmark::DoNotOptimize(1.0 / std::sqrt(x));
  }
}
BENCHMARK(BM_ExactRsqrt);

static void BM_FastExp(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x = x > 20 ? 0.0 : x + 1e-3;
    benchmark::DoNotOptimize(core::fast_exp(-x));
  }
}
BENCHMARK(BM_FastExp);

static void BM_ExactExp(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x = x > 20 ? 0.0 : x + 1e-3;
    benchmark::DoNotOptimize(std::exp(-x));
  }
}
BENCHMARK(BM_ExactExp);

static void BM_SchedulerForkJoin(benchmark::State& state) {
  ws::Scheduler sched(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<long> sum{0};
    sched.run([&] {
      ws::Scheduler::parallel_for(0, 100000, 512,
                                  [&](std::int64_t lo, std::int64_t hi) {
                                    long s = 0;
                                    for (auto i = lo; i < hi; ++i) s += i;
                                    sum += s;
                                  });
    });
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_SchedulerForkJoin)->Arg(1)->Arg(2)->Arg(4);

static void BM_MppAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpp::Runtime::Options opts;
    opts.ranks = ranks;
    mpp::Runtime::run(opts, [](mpp::Comm& c) {
      std::vector<double> v(1024, static_cast<double>(c.rank()));
      c.allreduce_sum(std::span<double>(v));
      benchmark::DoNotOptimize(v[0]);
    });
  }
}
BENCHMARK(BM_MppAllreduce)->Arg(2)->Arg(4)->Arg(8);

BENCHMARK_MAIN();
