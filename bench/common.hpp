#pragma once
/// \file common.hpp
/// Shared infrastructure for the figure/table benchmark binaries.
///
/// Every bench prints (a) the simulation-environment header (Table I),
/// (b) the figure's rows as an aligned table, and (c) writes a CSV next to
/// the binary (bench_out/<name>.csv) for replotting. Timing semantics are
/// described in DESIGN.md §2: operation counts and communication volumes
/// are measured, times are modeled on the Table I machine.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "octgb/octgb.hpp"

namespace octgb::bench {

/// Print the Table I machine description once per bench.
void print_environment(const perf::MachineModel& machine);

/// Print Table II (packages, GB models, parallelism).
void print_package_table();

/// Write a table's CSV under bench_out/ (created on demand); logs the path.
void save_csv(const util::Table& table, const std::string& name);

/// True when the environment asks for reduced workloads
/// (OCTGB_BENCH_QUICK=1): benches subsample molecules and shrink the
/// virus shells so a full `for b in build/bench/*` sweep stays short.
bool quick_mode();

/// The ZDock subset to run: every molecule normally, every 4th in quick
/// mode (always keeping the smallest and largest).
std::vector<mol::BenchmarkEntry> zdock_selection();

/// One fully prepared problem: molecule + sampled surface + engine.
struct Prepared {
  mol::Molecule molecule;
  surface::Surface surf;
  std::unique_ptr<core::GBEngine> engine;

  std::size_t atoms() const { return molecule.size(); }
};

/// Build a problem with bench-standard surface parameters (icosphere
/// subdivision 1 for proteins ≤ 20k atoms, 0 for larger shells — the
/// paper's CMV has ≈ 3.8 q-points per atom, matching subdivision 0 on
/// shells).
Prepared prepare(mol::Molecule molecule, core::EngineConfig config = {});

/// The paper's cluster configurations on the Table I machine.
/// OCT_CILK: 1 process × `cores` threads.
sim::ClusterConfig oct_cilk_config(int cores = 12);
/// OCT_MPI: `cores` single-thread ranks, 12 per node.
sim::ClusterConfig oct_mpi_config(int cores = 12);
/// OCT_MPI+CILK: 2 ranks of 6 threads per node (one rank per socket, the
/// paper's affinity setup of §V-A).
sim::ClusterConfig oct_hybrid_config(int cores = 12);

/// Convenience: run one simulated configuration.
sim::SimResult run_config(const core::GBEngine& engine,
                          const sim::ClusterConfig& config);

/// Format seconds for tables (ms below 1 s, like the paper's plots).
std::string fmt_time(double seconds);

// --- observability plumbing (OBSERVABILITY.md) -----------------------------

/// `--trace-out` / `--metrics-out` support shared by the figure benches:
///
///   bench::TraceSession ts;
///   ts.register_args(args);
///   args.parse(argc, argv);
///   ts.begin();                                  // enables span recording
///   ... run configurations, ts.metrics().add_work(scope, result.work) ...
///   ts.finish();                                 // writes the files
///
/// `--trace-out f.json` records phase/worker spans during the run and
/// writes a chrome://tracing file loadable in Perfetto; `--metrics-out
/// f.json` (or .csv) dumps the bench-filled MetricsRegistry. Either flag
/// works alone; tracing never changes results or counters.
class TraceSession {
 public:
  /// Add --trace-out and --metrics-out to the bench's argument set.
  void register_args(util::Args& args);

  /// Start recording when --trace-out was given. Call directly after
  /// Args::parse, before engines are built (tree-build spans).
  void begin() const;

  /// True when either output file was requested.
  bool active() const { return !trace_out_.empty() || !metrics_out_.empty(); }

  /// The metrics the bench accumulates (counter totals per configuration).
  trace::MetricsRegistry& metrics() { return metrics_; }

  /// Write the requested trace/metrics files and log their paths.
  void finish() const;

 private:
  std::string trace_out_;
  std::string metrics_out_;
  trace::MetricsRegistry metrics_;
};

/// Record one simulated configuration's measurements under `scope`
/// (e.g. "oct_mpi.nodes4"): exact work-counter totals plus the modeled
/// compute/comm/total seconds and the per-rank footprint.
void add_sim_metrics(trace::MetricsRegistry& m, const std::string& scope,
                     const sim::SimResult& r);

}  // namespace octgb::bench
