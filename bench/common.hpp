#pragma once
/// \file common.hpp
/// Shared infrastructure for the figure/table benchmark binaries.
///
/// Every bench prints (a) the simulation-environment header (Table I),
/// (b) the figure's rows as an aligned table, and (c) writes a CSV next to
/// the binary (bench_out/<name>.csv) for replotting. Timing semantics are
/// described in DESIGN.md §2: operation counts and communication volumes
/// are measured, times are modeled on the Table I machine.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "octgb/octgb.hpp"

namespace octgb::bench {

/// Print the Table I machine description once per bench.
void print_environment(const perf::MachineModel& machine);

/// Print Table II (packages, GB models, parallelism).
void print_package_table();

/// Write a table's CSV under bench_out/ (created on demand); logs the path.
void save_csv(const util::Table& table, const std::string& name);

/// True when the environment asks for reduced workloads
/// (OCTGB_BENCH_QUICK=1): benches subsample molecules and shrink the
/// virus shells so a full `for b in build/bench/*` sweep stays short.
bool quick_mode();

/// The ZDock subset to run: every molecule normally, every 4th in quick
/// mode (always keeping the smallest and largest).
std::vector<mol::BenchmarkEntry> zdock_selection();

/// One fully prepared problem: molecule + sampled surface + engine.
struct Prepared {
  mol::Molecule molecule;
  surface::Surface surf;
  std::unique_ptr<core::GBEngine> engine;

  std::size_t atoms() const { return molecule.size(); }
};

/// Build a problem with bench-standard surface parameters (icosphere
/// subdivision 1 for proteins ≤ 20k atoms, 0 for larger shells — the
/// paper's CMV has ≈ 3.8 q-points per atom, matching subdivision 0 on
/// shells).
Prepared prepare(mol::Molecule molecule, core::EngineConfig config = {});

/// The paper's cluster configurations on the Table I machine.
/// OCT_CILK: 1 process × `cores` threads.
sim::ClusterConfig oct_cilk_config(int cores = 12);
/// OCT_MPI: `cores` single-thread ranks, 12 per node.
sim::ClusterConfig oct_mpi_config(int cores = 12);
/// OCT_MPI+CILK: 2 ranks of 6 threads per node (one rank per socket, the
/// paper's affinity setup of §V-A).
sim::ClusterConfig oct_hybrid_config(int cores = 12);

/// Convenience: run one simulated configuration.
sim::SimResult run_config(const core::GBEngine& engine,
                          const sim::ClusterConfig& config);

/// Format seconds for tables (ms below 1 s, like the paper's plots).
std::string fmt_time(double seconds);

}  // namespace octgb::bench
