#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace octgb::bench {

void print_environment(const perf::MachineModel& machine) {
  util::Table t("Simulation environment (Table I; modeled — see DESIGN.md)");
  t.header({"attribute", "property"});
  t.row({"Processors", util::format("%.2f GHz hexa-core Intel Westmere "
                                    "(modeled)",
                                    machine.clock_hz / 1e9)});
  t.row({"Cores/node", util::format("%d", machine.cores_per_node)});
  t.row({"RAM", util::human_bytes(machine.ram_bytes)});
  t.row({"Interconnect", util::format(
                             "InfiniBand fat-tree (t_s=%.1f us, %.1f GB/s)",
                             machine.net_ts * 1e6, 1e-9 / machine.net_tw)});
  t.row({"Cache", util::format("%s shared L3 per socket",
                               util::human_bytes(machine.l3_bytes).c_str())});
  t.row({"Parallelism", "octgb::ws (cilk-style) + octgb::mpp (MPI-style)"});
  t.print();
  std::puts("");
}

void print_package_table() {
  util::Table t("Packages, GB models and parallelism (Table II)");
  t.header({"package", "GB model", "parallelism"});
  for (const auto& p : baselines::package_registry()) {
    const char* par = p.parallelism == baselines::Parallelism::Serial
                          ? "Serial"
                          : (p.parallelism ==
                                     baselines::Parallelism::SharedMemory
                                 ? "Shared (OpenMP-like)"
                                 : "Distributed (MPI-like)");
    t.row({p.name, p.gb_model, par});
  }
  t.row({"OCT_CILK", "STILL", "Shared (octgb::ws)"});
  t.row({"OCT_MPI", "STILL", "Distributed (octgb::mpp)"});
  t.row({"OCT_MPI+CILK", "STILL", "Distributed + shared (hybrid)"});
  t.row({"Naive", "STILL", "Serial"});
  t.print();
  std::puts("");
}

void save_csv(const util::Table& table, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const std::string path = "bench_out/" + name + ".csv";
  if (table.write_csv(path)) {
    std::printf("[csv] wrote %s\n", path.c_str());
  } else {
    std::printf("[csv] FAILED to write %s\n", path.c_str());
  }
}

bool quick_mode() {
  const char* env = std::getenv("OCTGB_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

std::vector<mol::BenchmarkEntry> zdock_selection() {
  const auto all = mol::zdock_set();
  std::vector<mol::BenchmarkEntry> out;
  if (!quick_mode()) {
    out.assign(all.begin(), all.end());
    return out;
  }
  for (std::size_t i = 0; i < all.size(); i += 4) out.push_back(all[i]);
  if (out.back().name != all.back().name) out.push_back(all.back());
  return out;
}

Prepared prepare(mol::Molecule molecule, core::EngineConfig config) {
  Prepared p;
  p.molecule = std::move(molecule);
  surface::SurfaceParams sp;
  sp.subdivision = p.molecule.size() > 20000 ? 0 : 1;
  p.surf = surface::build_surface(p.molecule, sp);
  p.engine = std::make_unique<core::GBEngine>(p.molecule, p.surf, config);
  return p;
}

sim::ClusterConfig oct_cilk_config(int cores) {
  sim::ClusterConfig c;
  c.ranks = 1;
  c.threads_per_rank = cores;
  return c;
}

sim::ClusterConfig oct_mpi_config(int cores) {
  sim::ClusterConfig c;
  c.ranks = cores;
  c.threads_per_rank = 1;
  c.topology.ranks_per_node = 12;
  return c;
}

sim::ClusterConfig oct_hybrid_config(int cores) {
  sim::ClusterConfig c;
  // One rank per socket with 6 workers (ibrun-style affinity, §V-A).
  c.threads_per_rank = 6;
  c.ranks = std::max(1, cores / 6);
  c.topology.ranks_per_node = 2;
  return c;
}

sim::SimResult run_config(const core::GBEngine& engine,
                          const sim::ClusterConfig& config) {
  return sim::simulate_cluster(engine, config);
}

std::string fmt_time(double seconds) {
  if (seconds < 1.0) return util::format("%.2f ms", seconds * 1e3);
  if (seconds < 120.0) return util::format("%.2f s", seconds);
  return util::format("%.1f min", seconds / 60.0);
}

}  // namespace octgb::bench
