#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace octgb::bench {

void print_environment(const perf::MachineModel& machine) {
  util::Table t("Simulation environment (Table I; modeled — see DESIGN.md)");
  t.header({"attribute", "property"});
  t.row({"Processors", util::format("%.2f GHz hexa-core Intel Westmere "
                                    "(modeled)",
                                    machine.clock_hz / 1e9)});
  t.row({"Cores/node", util::format("%d", machine.cores_per_node)});
  t.row({"RAM", util::human_bytes(machine.ram_bytes)});
  t.row({"Interconnect", util::format(
                             "InfiniBand fat-tree (t_s=%.1f us, %.1f GB/s)",
                             machine.net_ts * 1e6, 1e-9 / machine.net_tw)});
  t.row({"Cache", util::format("%s shared L3 per socket",
                               util::human_bytes(machine.l3_bytes).c_str())});
  t.row({"Parallelism", "octgb::ws (cilk-style) + octgb::mpp (MPI-style)"});
  t.print();
  std::puts("");
}

void print_package_table() {
  util::Table t("Packages, GB models and parallelism (Table II)");
  t.header({"package", "GB model", "parallelism"});
  for (const auto& p : baselines::package_registry()) {
    const char* par = p.parallelism == baselines::Parallelism::Serial
                          ? "Serial"
                          : (p.parallelism ==
                                     baselines::Parallelism::SharedMemory
                                 ? "Shared (OpenMP-like)"
                                 : "Distributed (MPI-like)");
    t.row({p.name, p.gb_model, par});
  }
  t.row({"OCT_CILK", "STILL", "Shared (octgb::ws)"});
  t.row({"OCT_MPI", "STILL", "Distributed (octgb::mpp)"});
  t.row({"OCT_MPI+CILK", "STILL", "Distributed + shared (hybrid)"});
  t.row({"Naive", "STILL", "Serial"});
  t.print();
  std::puts("");
}

void save_csv(const util::Table& table, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const std::string path = "bench_out/" + name + ".csv";
  if (table.write_csv(path)) {
    std::printf("[csv] wrote %s\n", path.c_str());
  } else {
    std::printf("[csv] FAILED to write %s\n", path.c_str());
  }
}

bool quick_mode() {
  const char* env = std::getenv("OCTGB_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

std::vector<mol::BenchmarkEntry> zdock_selection() {
  const auto all = mol::zdock_set();
  std::vector<mol::BenchmarkEntry> out;
  if (!quick_mode()) {
    out.assign(all.begin(), all.end());
    return out;
  }
  for (std::size_t i = 0; i < all.size(); i += 4) out.push_back(all[i]);
  if (out.back().name != all.back().name) out.push_back(all.back());
  return out;
}

Prepared prepare(mol::Molecule molecule, core::EngineConfig config) {
  Prepared p;
  p.molecule = std::move(molecule);
  surface::SurfaceParams sp;
  sp.subdivision = p.molecule.size() > 20000 ? 0 : 1;
  p.surf = surface::build_surface(p.molecule, sp);
  p.engine = std::make_unique<core::GBEngine>(p.molecule, p.surf, config);
  return p;
}

sim::ClusterConfig oct_cilk_config(int cores) {
  sim::ClusterConfig c;
  c.ranks = 1;
  c.threads_per_rank = cores;
  return c;
}

sim::ClusterConfig oct_mpi_config(int cores) {
  sim::ClusterConfig c;
  c.ranks = cores;
  c.threads_per_rank = 1;
  c.topology.ranks_per_node = 12;
  return c;
}

sim::ClusterConfig oct_hybrid_config(int cores) {
  sim::ClusterConfig c;
  // One rank per socket with 6 workers (ibrun-style affinity, §V-A).
  c.threads_per_rank = 6;
  c.ranks = std::max(1, cores / 6);
  c.topology.ranks_per_node = 2;
  return c;
}

sim::SimResult run_config(const core::GBEngine& engine,
                          const sim::ClusterConfig& config) {
  return sim::simulate_cluster(engine, config);
}

void TraceSession::register_args(util::Args& args) {
  args.add("trace-out", &trace_out_,
           "write a chrome://tracing JSON (Perfetto) of this run");
  args.add("metrics-out", &metrics_out_,
           "write the run's counter metrics as JSON (or .csv)");
}

void TraceSession::begin() const {
  if (!trace_out_.empty()) trace::Tracer::instance().set_enabled(true);
}

void TraceSession::finish() const {
  if (!trace_out_.empty()) {
    auto& tracer = trace::Tracer::instance();
    if (tracer.save_chrome_trace(trace_out_)) {
      std::printf("[trace] wrote %s (%zu events", trace_out_.c_str(),
                  tracer.event_count());
      if (tracer.dropped_count() > 0)
        std::printf(", %llu dropped",
                    static_cast<unsigned long long>(tracer.dropped_count()));
      std::printf(") — open in https://ui.perfetto.dev\n");
    } else {
      std::printf("[trace] FAILED to write %s\n", trace_out_.c_str());
    }
  }
  if (!metrics_out_.empty()) {
    const bool as_csv = metrics_out_.size() >= 4 &&
                        metrics_out_.compare(metrics_out_.size() - 4, 4,
                                             ".csv") == 0;
    const bool ok = as_csv ? metrics_.save_csv(metrics_out_)
                           : metrics_.save_json(metrics_out_);
    std::printf("[metrics] %s %s (%zu metrics)\n",
                ok ? "wrote" : "FAILED to write", metrics_out_.c_str(),
                metrics_.size());
  }
}

void add_sim_metrics(trace::MetricsRegistry& m, const std::string& scope,
                     const sim::SimResult& r) {
  m.add_work(scope, r.work_total);
  m.set("time.compute_s." + scope, r.compute_seconds);
  m.set("time.comm_s." + scope, r.comm_seconds);
  m.set("time.total_s." + scope, r.total_seconds);
  m.set("mem.bytes_per_rank." + scope,
        static_cast<std::uint64_t>(r.bytes_per_rank));
  m.set("cores." + scope, static_cast<std::uint64_t>(r.total_cores));
}

std::string fmt_time(double seconds) {
  if (seconds < 1.0) return util::format("%.2f ms", seconds * 1e3);
  if (seconds < 120.0) return util::format("%.2f s", seconds);
  return util::format("%.1f min", seconds / 60.0);
}

}  // namespace octgb::bench
