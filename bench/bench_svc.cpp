// Scoring-service load generator: mixed multi-tenant traffic against one
// octgb::svc::ScoringService.
//
// Traffic mix (four tenants by default):
//   - hot evaluations   — a small working set of molecules resubmitted
//                         constantly; after the first submission each one
//                         must be a cache hit that skips preprocessing.
//   - cold evaluations  — a stream of unique molecules (every digest new)
//                         exercising build + LRU eviction under the byte
//                         budget.
//   - ε re-dials        — hot molecules re-evaluated at different
//                         eps_epol; same digest, so the warm artifact is
//                         shared and only the energy phase reruns.
//   - pose bursts       — CrossScreen pose streams against a hot
//                         receptor+ligand complex (docking rescoring).
//   - overload burst    — one tenant floods past its bounded queue to
//                         show reject-with-reason admission (optional,
//                         --overload/--no-overload).
//
// Reports p50/p95/p99 submit→done latency, poses/s, cache hit rate, and
// per-reason rejection counts; `--metrics-out` dumps the full `svc.*`
// schema (OBSERVABILITY.md). Gates (nonzero exit on failure, the CI
// svc-gate):
//   - repeat traffic hits the cache (hit rate > 0; preprocess count flat
//     across the repeat phase),
//   - warm submissions are >= 5x faster than cold ones for the same
//     digests, and bit-identical to them,
//   - every tenant makes progress (fair share),
//   - zero unexplained rejections: submitted == completed + rejected and
//     every rejection carries a reason (here: only the overload tenant's
//     TenantQueueFull),
//   - the latency summary is populated (p99 reported).
//
// Capacity-planning worked example from this output: docs/SERVICE.md.

#include <algorithm>
#include <cstdio>

#include "common.hpp"

using namespace octgb;

namespace {

mol::Molecule traffic_molecule(std::uint64_t seed, std::size_t atoms) {
  return mol::generate_protein({.target_atoms = atoms, .seed = seed});
}

svc::JobRequest evaluate_request(const std::string& tenant,
                                 mol::Molecule molecule) {
  svc::JobRequest req;
  req.tenant = tenant;
  req.molecule = std::move(molecule);
  req.surface.subdivision = 1;
  return req;
}

double mean_exec_seconds(const std::vector<svc::JobTicket>& tickets) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& t : tickets) {
    if (!t.accepted()) continue;
    sum += t.result().exec_seconds;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  int cores = 8;
  int executors = 4;
  int tenants = 4;
  int hot_set = 3;
  int rounds = 12;
  int hot_atoms = 500;
  int cold_atoms = 350;
  int poses_per_burst = 8;
  double cache_mb = 256.0;
  bool smoke = false;
  bool overload = true;
  util::Args args;
  args.add("cores", &cores, "machine span the CoreAllocator manages");
  args.add("executors", &executors, "concurrent jobs");
  args.add("tenants", &tenants, "tenant count (>= 2)");
  args.add("hot-set", &hot_set, "hot working-set size (molecules)");
  args.add("rounds", &rounds, "mixed-traffic rounds per tenant");
  args.add("hot-atoms", &hot_atoms, "hot molecule size");
  args.add("cold-atoms", &cold_atoms, "cold-stream molecule size");
  args.add("poses", &poses_per_burst, "poses per CrossScreen burst");
  args.add("cache-mb", &cache_mb, "artifact cache budget (MiB)");
  args.flag("smoke", &smoke, "CI-size workload");
  args.flag("overload", &overload, "run the bounded-queue overload burst");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  if (smoke) {
    rounds = std::min(rounds, 6);
    hot_atoms = std::min(hot_atoms, 300);
    cold_atoms = std::min(cold_atoms, 220);
    poses_per_burst = std::min(poses_per_burst, 4);
  }
  tenants = std::max(tenants, 2);

  svc::ServiceConfig cfg;
  cfg.cores = cores;
  cfg.executors = executors;
  cfg.max_job_cores = std::max(1, cores / 2);
  cfg.atoms_per_core = 400;
  cfg.cache_budget_bytes =
      static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
  cfg.admission.max_total_queued = 512;
  cfg.admission.default_tenant.max_queued = 128;
  svc::ScoringService service(cfg);

  std::vector<std::string> tenant_names;
  for (int t = 0; t < tenants; ++t) {
    tenant_names.push_back("tenant-" + std::to_string(t));
    // Tenant 0 carries double weight so the fair-share column is visible.
    service.register_tenant(tenant_names.back(),
                            {.weight = t == 0 ? 2.0 : 1.0,
                             .max_queued = 128});
  }

  std::printf("service: %d cores, %d executors, %d-core max width, "
              "%.0f MiB cache, %d tenants\n\n",
              cores, executors, cfg.max_job_cores, cache_mb, tenants);

  // --- phase 1: cold vs warm on the hot set --------------------------------
  // Submit every hot molecule once (cold: build + evaluate), then repeat
  // each several times (warm: cache hit, evaluate only).
  std::vector<mol::Molecule> hot;
  for (int h = 0; h < hot_set; ++h)
    hot.push_back(traffic_molecule(100 + static_cast<std::uint64_t>(h),
                                   static_cast<std::size_t>(hot_atoms)));

  std::vector<svc::JobTicket> cold_tickets;
  for (int h = 0; h < hot_set; ++h)
    cold_tickets.push_back(service.submit(
        evaluate_request(tenant_names[h % tenants], hot[h])));
  service.drain();
  const std::uint64_t preprocessed_after_cold = service.counters().preprocessed;

  const int repeats = smoke ? 3 : 6;
  std::vector<svc::JobTicket> warm_tickets;
  for (int r = 0; r < repeats; ++r)
    for (int h = 0; h < hot_set; ++h)
      warm_tickets.push_back(service.submit(
          evaluate_request(tenant_names[(h + r) % tenants], hot[h])));
  service.drain();
  const std::uint64_t preprocessed_after_warm = service.counters().preprocessed;

  const double cold_mean = mean_exec_seconds(cold_tickets);
  const double warm_mean = mean_exec_seconds(warm_tickets);
  const double warm_speedup = warm_mean > 0 ? cold_mean / warm_mean : 0.0;

  // Bit-identity: every warm result must equal its cold result exactly.
  for (std::size_t i = 0; i < warm_tickets.size(); ++i) {
    const auto& w = warm_tickets[i].result();
    const auto& c = cold_tickets[i % hot.size()].result();
    OCTGB_CHECK_MSG(w.digest == c.digest, "warm digest mismatch");
    OCTGB_CHECK_MSG(w.epol == c.epol,
                    "cache-hit epol not bit-identical to cache-miss: "
                        << w.epol << " vs " << c.epol);
  }

  std::printf("hot set: cold %.1f ms/job, warm %.1f ms/job (%.1fx), "
              "preprocessed %llu cold / %llu after repeats\n",
              cold_mean * 1e3, warm_mean * 1e3, warm_speedup,
              static_cast<unsigned long long>(preprocessed_after_cold),
              static_cast<unsigned long long>(preprocessed_after_warm));

  // --- phase 2: mixed multi-tenant traffic ---------------------------------
  // A receptor+ligand hot complex for the pose bursts.
  mol::Molecule complex_mol("receptor+ligand");
  {
    const auto receptor = traffic_molecule(500, static_cast<std::size_t>(
                                                    hot_atoms));
    const auto ligand = traffic_molecule(501, 120);
    for (const auto& a : receptor.atoms()) complex_mol.add_atom(a);
    for (const auto& a : ligand.atoms()) complex_mol.add_atom(a);
  }
  const std::size_t ligand_begin =
      complex_mol.size() - traffic_molecule(501, 120).size();

  util::Xoshiro256 rng(2026);
  std::vector<svc::JobTicket> mixed;
  std::uint64_t cold_seed = 10'000;
  perf::Timer mixed_timer;
  for (int r = 0; r < rounds; ++r) {
    for (int t = 0; t < tenants; ++t) {
      const std::string& tenant = tenant_names[static_cast<std::size_t>(t)];
      // Hot evaluation (always).
      mixed.push_back(service.submit(evaluate_request(
          tenant, hot[rng() % hot.size()])));
      // Cold unique molecule (every other round).
      if ((r + t) % 2 == 0)
        mixed.push_back(service.submit(evaluate_request(
            tenant, traffic_molecule(cold_seed++, static_cast<std::size_t>(
                                                      cold_atoms)))));
      // ε re-dial on a hot molecule (every third round).
      if ((r + t) % 3 == 0) {
        auto req = evaluate_request(tenant, hot[0]);
        req.config.approx.eps_epol = 0.2 + 0.1 * (r % 5);
        mixed.push_back(service.submit(std::move(req)));
      }
      // CrossScreen pose burst (one tenant per round).
      if (t == r % tenants) {
        svc::JobRequest req = evaluate_request(tenant, complex_mol);
        req.kind = svc::JobKind::PoseScreen;
        req.ligand_begin = ligand_begin;
        for (int p = 0; p < poses_per_burst; ++p)
          req.poses.push_back(geom::RigidTransform::translate(
              {0.3 * (p + 1), 0.1 * p, 0.0}));
        mixed.push_back(service.submit(std::move(req)));
      }
    }
  }
  service.drain();
  const double mixed_wall = mixed_timer.seconds();

  // --- phase 3: overload burst (bounded-queue admission) -------------------
  std::uint64_t expected_rejections = 0;
  if (overload) {
    // Flood one tenant far past its queue bound with jobs that would be
    // slow to run; the surplus must come back TenantQueueFull immediately.
    std::vector<svc::JobTicket> flood;
    const int burst = 400;
    for (int i = 0; i < burst; ++i)
      flood.push_back(service.submit(
          evaluate_request(tenant_names[1], hot[0])));
    for (const auto& t : flood) {
      if (!t.accepted()) {
        OCTGB_CHECK_MSG(t.reject() == svc::RejectReason::TenantQueueFull,
                        "unexpected overload reject reason: "
                            << svc::to_string(t.reject()));
        ++expected_rejections;
      }
    }
    service.drain();
    OCTGB_CHECK_MSG(expected_rejections > 0,
                    "overload burst was fully absorbed; queue bound not "
                    "exercised");
  }

  // --- report --------------------------------------------------------------
  const perf::ServiceCounters c = service.counters();
  const svc::LatencySummary lat = service.latency();
  const svc::CacheStats cache = service.cache().stats();
  const double hit_rate =
      cache.hits + cache.misses > 0
          ? static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses)
          : 0.0;
  const double poses_per_s =
      mixed_wall > 0 ? static_cast<double>(c.poses_scored) / mixed_wall : 0.0;

  util::Table t("scoring service under mixed multi-tenant traffic");
  t.header({"metric", "value"});
  t.row({"submitted", std::to_string(c.submitted)});
  t.row({"completed", std::to_string(c.completed)});
  t.row({"rejected (tenant queue)", std::to_string(
                                        c.rejected_tenant_queue_full)});
  t.row({"preprocessed (cold builds)", std::to_string(c.preprocessed)});
  t.row({"cache hit rate", util::format("%.3f", hit_rate)});
  t.row({"cache resident", util::format("%zu entries / %.1f MiB",
                                        cache.entries,
                                        cache.bytes / (1024.0 * 1024.0))});
  t.row({"evictions", std::to_string(cache.evictions)});
  t.row({"latency p50", util::format("%.1f ms", lat.p50_ms)});
  t.row({"latency p95", util::format("%.1f ms", lat.p95_ms)});
  t.row({"latency p99", util::format("%.1f ms", lat.p99_ms)});
  t.row({"poses/s (mixed phase)", util::format("%.0f", poses_per_s)});
  t.row({"warm speedup vs cold", util::format("%.1fx", warm_speedup)});
  t.print();
  bench::save_csv(t, "bench_svc");

  std::printf("\nper-tenant completions (fair share):\n");
  for (const auto& name : tenant_names)
    std::printf("  %-10s %llu\n", name.c_str(),
                static_cast<unsigned long long>(service.completed_for(name)));

  // --- gates ---------------------------------------------------------------
  OCTGB_CHECK_MSG(cache.hits > 0, "repeat traffic produced no cache hits");
  OCTGB_CHECK_MSG(preprocessed_after_warm == preprocessed_after_cold,
                  "repeat submissions preprocessed again: "
                      << preprocessed_after_cold << " -> "
                      << preprocessed_after_warm);
  OCTGB_CHECK_MSG(warm_speedup >= 5.0,
                  "warm submissions only " << warm_speedup
                                           << "x faster than cold (gate 5x)");
  OCTGB_CHECK_MSG(c.submitted == c.completed + c.rejected_total(),
                  "job accounting leak: " << c.submitted << " submitted, "
                                          << c.completed << " completed, "
                                          << c.rejected_total()
                                          << " rejected");
  OCTGB_CHECK_MSG(c.rejected_total() == expected_rejections,
                  "unexplained rejections: " << c.rejected_total()
                                             << " counted, "
                                             << expected_rejections
                                             << " expected from overload");
  OCTGB_CHECK_MSG(lat.count > 0 && lat.p99_ms > 0.0,
                  "latency summary not populated");
  for (const auto& name : tenant_names)
    OCTGB_CHECK_MSG(service.completed_for(name) > 0,
                    "tenant " << name << " starved");
  std::printf("\nall gates passed\n");

  service.export_metrics(ts.metrics());
  ts.metrics().set("svc.cache.hit_rate", hit_rate);
  ts.metrics().set("svc.poses_per_second", poses_per_s);
  ts.metrics().set("svc.warm_speedup", warm_speedup);
  ts.finish();
  return 0;
}
