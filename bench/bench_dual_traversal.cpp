// Ablation: the paper's one-tree APPROX-INTEGRALS (distributed-friendly,
// §IV: "we only traverse one octree") versus the original dual-tree
// traversal of [6] (behind OCT_CILK). Work counts, accuracy and
// division-friendliness.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  args.parse(argc, argv);

  perf::MachineModel machine;
  bench::print_environment(machine);

  util::Table t("one-tree (paper) vs dual-tree [6] Born integrals");
  t.header({"molecule", "atoms", "1-tree ops", "dual ops", "dual/1-tree",
            "1-tree err %", "dual err %"});

  for (const auto& entry : bench::zdock_selection()) {
    if (bench::quick_mode() && entry.atoms > 9000) break;
    const auto molecule = mol::make_benchmark_molecule(entry.name);
    const auto surf = surface::build_surface(molecule, {.subdivision = 1});
    const auto naive_born = core::naive_born_radii(molecule, surf);
    const double naive_e = core::naive_epol(molecule, naive_born);

    core::GBEngine engine(molecule, surf);
    const auto one = engine.compute();
    const auto dual = engine.compute_dual();

    const double ops1 = double(one.work.born_exact + one.work.born_approx);
    const double opsd = double(dual.work.born_exact + dual.work.born_approx);
    t.row({entry.name, util::format("%zu", molecule.size()),
           util::format("%.3g", ops1), util::format("%.3g", opsd),
           util::format("%.2f", opsd / ops1),
           util::format("%.4f", perf::percent_error(one.epol, naive_e)),
           util::format("%.4f", perf::percent_error(dual.epol, naive_e))});
    std::printf("  %-10s done\n", entry.name);
  }
  std::puts("");
  t.print();
  bench::save_csv(t, "dual_traversal");

  std::puts(
      "\nTakeaway: the dual traversal does less Born work (it can "
      "approximate at internal Q nodes) at comparable accuracy, but its "
      "node-PAIR work units resist the static leaf segmentation the "
      "distributed algorithm needs — which is why the paper switched to "
      "the one-tree formulation for OCT_MPI/OCT_MPI+CILK.");
  return 0;
}
