// §II octree-vs-nblist ablation: nblist memory grows with the cutoff
// (cubically in the bulk) and with the atom count, while the octree's
// footprint is linear in the atom count and independent of any
// approximation parameter — the property that lets octree codes handle
// molecules that make nblist-based MD packages run out of memory.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  args.parse(argc, argv);

  perf::MachineModel machine;
  bench::print_environment(machine);

  // --- memory vs cutoff at fixed size -----------------------------------
  const auto m = mol::generate_protein(
      {.target_atoms = bench::quick_mode() ? 4000u : 12000u, .seed = 77});
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  const auto tree = octree::Octree::build(pts);

  util::Table t1(util::format(
      "nblist memory vs cutoff (%zu atoms); octree is cutoff-free",
      m.size()));
  t1.header({"cutoff (A)", "nblist pairs", "nblist bytes", "octree bytes"});
  for (double cutoff : {4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0}) {
    const auto nb = octree::NbList::build(pts, {.cutoff = cutoff,
                                                .max_bytes = 0});
    t1.row({util::format("%.0f", cutoff),
            util::format("%zu", nb.total_pairs()),
            util::human_bytes(double(nb.footprint_bytes())),
            util::human_bytes(double(tree.footprint_bytes()))});
  }
  t1.print();
  bench::save_csv(t1, "octree_vs_nblist_cutoff");

  // --- memory vs size at fixed cutoff ------------------------------------
  util::Table t2("memory vs atom count (cutoff 12 A)");
  t2.header({"atoms", "nblist bytes", "octree bytes", "nblist/octree"});
  for (std::size_t n : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    if (bench::quick_mode() && n > 4000u) break;
    const auto mol_n = mol::generate_protein({.target_atoms = n, .seed = 78});
    std::vector<geom::Vec3> pn(mol_n.size());
    for (std::size_t i = 0; i < mol_n.size(); ++i) pn[i] = mol_n.atom(i).pos;
    const auto nb = octree::NbList::build(pn, {.cutoff = 12.0,
                                               .max_bytes = 0});
    const auto tr = octree::Octree::build(pn);
    t2.row({util::format("%zu", mol_n.size()),
            util::human_bytes(double(nb.footprint_bytes())),
            util::human_bytes(double(tr.footprint_bytes())),
            util::format("%.1f", double(nb.footprint_bytes()) /
                                     double(tr.footprint_bytes()))});
  }
  t2.print();
  bench::save_csv(t2, "octree_vs_nblist_size");

  // --- simulated OOM on a virus-size input --------------------------------
  const auto shell = mol::make_cmv(bench::quick_mode() ? 0.01 : 0.04);
  std::vector<geom::Vec3> ps(shell.size());
  for (std::size_t i = 0; i < shell.size(); ++i) ps[i] = shell.atom(i).pos;
  std::printf("\n%s (%zu atoms), 24 GB-node budget:\n", shell.name().c_str(),
              shell.size());
  try {
    const auto nb = octree::NbList::build(
        ps, {.cutoff = 60.0,
             .max_bytes = std::size_t{2} * 1024 * 1024 * 1024});
    std::printf("  nblist cutoff 60 A: %s\n",
                util::human_bytes(double(nb.footprint_bytes())).c_str());
  } catch (const octree::NbListOutOfMemory& e) {
    std::printf("  nblist cutoff 60 A: OOM (%s)\n", e.what());
  }
  const auto tr = octree::Octree::build(ps);
  std::printf("  octree (any eps): %s\n",
              util::human_bytes(double(tr.footprint_bytes())).c_str());
  return 0;
}
