// §V-B memory claim: on one node, 12 single-thread ranks (OCT_MPI)
// replicate the molecule data 12× while 2 ranks × 6 threads
// (OCT_MPI+CILK) replicate it only 2× — the paper measures 8.2 GB vs
// 1.4 GB on BTV, a 5.86× ratio.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  double scale = bench::quick_mode() ? 0.003 : 0.01;
  util::Args args;
  args.add("scale", &scale, "BTV scale factor (1.0 = 6M atoms)");
  args.parse(argc, argv);

  perf::MachineModel machine;
  bench::print_environment(machine);

  bench::Prepared p = bench::prepare(mol::make_btv(scale));
  std::printf("BTV': %zu atoms, %zu quadrature points\n\n", p.atoms(),
              p.surf.size());

  const auto mpi = bench::run_config(*p.engine, bench::oct_mpi_config(12));
  const auto hyb = bench::run_config(*p.engine, bench::oct_hybrid_config(12));

  const double mpi_node = 12.0 * double(mpi.bytes_per_rank);
  const double hyb_node = 2.0 * double(hyb.bytes_per_rank);

  util::Table t("§V-B — per-node memory, one 12-core node");
  t.header({"configuration", "ranks/node", "bytes/rank", "bytes/node"});
  t.row({"OCT_MPI (12 x 1 thread)", "12",
         util::human_bytes(double(mpi.bytes_per_rank)),
         util::human_bytes(mpi_node)});
  t.row({"OCT_MPI+CILK (2 x 6 threads)", "2",
         util::human_bytes(double(hyb.bytes_per_rank)),
         util::human_bytes(hyb_node)});
  t.print();
  bench::save_csv(t, "mem_replication");

  std::printf(
      "\nNode memory ratio OCT_MPI / OCT_MPI+CILK = %.2f "
      "(paper: 8.2 GB / 1.4 GB = 5.86)\n",
      mpi_node / hyb_node);
  return 0;
}
