// Octree construction bench: cold build time vs atom count, legacy
// recursive partitioner vs the Morton linear-octree pipeline (serial radix
// and scheduler-parallel sort paths).
//
// The scaling table sweeps the ZDock size range; the gate section times
// the largest benchmark complex (1BGX_l_b, 16,301 atoms — the paper's
// upper end) and enforces, with a nonzero exit on violation:
//   - the parallel Morton build is >= 4.0x faster than the serial legacy
//     builder (>= 1.8x under --smoke, the CI gate — relaxed for noisy
//     runners). The 4x is a *parallelism* claim — keygen, sort, scatter
//     and per-node geometry all fan out over the scheduler — so the gate
//     binds in full only when the host offers at least the paper's
//     12-core node (Table I). Below that it scales down linearly with
//     the worker count and bottoms out as a serial no-regression floor:
//     a lone core cannot beat the legacy recursion by 4x, because that
//     recursion is itself an MSD radix-8 sort that stops sorting at the
//     leaves, while the linear-octree pipeline pays for a full
//     deterministic key sort (what it buys: resort refits, memcpy-grade
//     persistence, and worker-count-independent trees).
//   - the two builders agree on the tree (node/leaf counts and the root
//     range — the full differential lives in octree_equiv_test);
//   - the tree.build.* work counters are flat: exactly one build, every
//     point sorted once, node/leaf emission counts matching the tree, and
//     no resorts on a cold build.
//
// `--metrics-out` dumps the per-strategy timings, the speedup, and the
// tree.build.* counter block per the OBSERVABILITY.md schema.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"

using namespace octgb;
using octree::BuildParams;
using octree::BuildStrategy;
using octree::Octree;

namespace {

std::vector<geom::Vec3> positions_of(const mol::Molecule& m) {
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  return pts;
}

/// Best-of-3 groups of `reps` cold builds; the minimum group mean is the
/// measurement least disturbed by the host (the workload is deterministic).
template <class BuildFn>
double time_builds(int reps, const BuildFn& build) {
  (void)build();  // one untimed warmup (page-in, allocator steady state)
  double best = 1e300;
  for (int group = 0; group < 3; ++group) {
    perf::Timer t;
    for (int r = 0; r < reps; ++r) (void)build();
    best = std::min(best, t.seconds() / reps);
  }
  return best;
}

int reps_for(std::size_t atoms, bool smoke) {
  const int base = static_cast<int>(std::max<std::size_t>(1, 60000 / atoms));
  return smoke ? std::max(1, base / 3) : base;
}

}  // namespace

int main(int argc, char** argv) {
  std::string molecule_name = "1BGX_l_b";  // largest ZDock complex
  bool smoke = false;
  util::Args args;
  args.add("molecule", &molecule_name, "ZDock entry for the gate section");
  args.flag("smoke", &smoke, "CI-size reps and the 1.8x gate");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();
  // Gate scaled to the parallelism the host can actually express: full
  // strength at the paper's 12-core node, linear below, floored at a
  // serial no-regression check (see the header comment).
  const unsigned workers = std::max(1u, std::thread::hardware_concurrency());
  const double scale = std::min(1.0, static_cast<double>(workers) / 12.0);
  const double gate =
      smoke ? std::max(0.70, 1.8 * scale) : std::max(0.75, 4.0 * scale);
  std::printf("speedup gate %.2fx (%u workers, %s)\n", gate, workers,
              smoke ? "smoke" : "full");

  // --- scaling table: cold build time vs atom count -------------------------
  util::Table scaling("cold octree build: legacy partitioner vs Morton "
                      "pipeline (atoms tree, default params)");
  scaling.header({"molecule", "atoms", "legacy", "morton serial",
                  "morton parallel", "speedup"});
  std::vector<mol::BenchmarkEntry> sweep;
  for (const auto& e : bench::zdock_selection()) {
    if (sweep.empty() || e.atoms > 2 * sweep.back().atoms ||
        std::string_view(e.name) == molecule_name)
      sweep.push_back(e);  // size-doubling subset + the gate molecule
  }
  double gate_legacy = 0.0, gate_parallel = 0.0;
  for (const auto& e : sweep) {
    const auto pts =
        positions_of(mol::make_benchmark_molecule(e.name, e.atoms));
    const int reps = reps_for(pts.size(), smoke);
    BuildParams params;
    const double legacy_s = time_builds(reps, [&] {
      params.strategy = BuildStrategy::Legacy;
      return Octree::build(pts, params);
    });
    const double serial_s = time_builds(reps, [&] {
      params.strategy = BuildStrategy::Morton;
      params.parallel = false;
      return Octree::build(pts, params);
    });
    const double parallel_s = time_builds(reps, [&] {
      params.strategy = BuildStrategy::Morton;
      params.parallel = true;
      return Octree::build(pts, params);
    });
    const double speedup = legacy_s / parallel_s;
    scaling.row({e.name, util::format("%zu", e.atoms),
                 bench::fmt_time(legacy_s), bench::fmt_time(serial_s),
                 bench::fmt_time(parallel_s),
                 util::format("%.2fx", speedup)});
    if (std::string_view(e.name) == molecule_name) {
      gate_legacy = legacy_s;
      gate_parallel = parallel_s;
    }
    if (ts.active()) {
      const std::string scope = e.name;
      auto& m = ts.metrics();
      m.set("tree.build.seconds.legacy." + scope, legacy_s);
      m.set("tree.build.seconds.morton_serial." + scope, serial_s);
      m.set("tree.build.seconds.morton." + scope, parallel_s);
      m.set("tree.build.speedup." + scope, speedup);
    }
  }
  scaling.print();
  bench::save_csv(scaling, "bench_octree_build");

  // --- gate section: the largest complex ------------------------------------
  OCTGB_CHECK_MSG(gate_legacy > 0.0,
                  "gate molecule " << molecule_name
                                   << " missing from the sweep");
  const double speedup = gate_legacy / gate_parallel;
  std::printf("\n%s cold-build speedup, Morton vs legacy: %.2fx "
              "(gate >= %.2fx)\n",
              molecule_name.c_str(), speedup, gate);

  // One counted build per strategy: the equivalence witness and the flat
  // work-counter contract (the full differential is octree_equiv_test).
  const auto pts = positions_of(mol::make_benchmark_molecule(molecule_name));
  BuildParams params;
  const Octree morton = Octree::build(pts, params);
  params.strategy = BuildStrategy::Legacy;
  const Octree legacy = Octree::build(pts, params);
  OCTGB_CHECK_MSG(morton.nodes().size() == legacy.nodes().size() &&
                      morton.leaf_ids().size() == legacy.leaf_ids().size() &&
                      morton.max_depth() == legacy.max_depth(),
                  "Morton and legacy builders disagree on the tree shape");

  const perf::TreeBuildCounters& stats = morton.build_stats();
  OCTGB_CHECK_MSG(stats.morton_builds == 1 && stats.legacy_builds == 0,
                  "cold Morton build counted " << stats.morton_builds
                                               << " builds");
  OCTGB_CHECK_MSG(stats.points_sorted == pts.size(),
                  "sorted " << stats.points_sorted << " of " << pts.size()
                            << " points");
  OCTGB_CHECK_MSG(stats.nodes_emitted == morton.nodes().size() &&
                      stats.leaves_emitted == morton.leaf_ids().size(),
                  "emission counters disagree with the built tree");
  OCTGB_CHECK_MSG(stats.resorts == 0 && stats.resort_moved == 0,
                  "cold build performed resorts");
  std::printf("work counters flat: %llu points sorted (%llu radix passes), "
              "%llu nodes, %llu leaves\n",
              static_cast<unsigned long long>(stats.points_sorted),
              static_cast<unsigned long long>(stats.sort_passes),
              static_cast<unsigned long long>(stats.nodes_emitted),
              static_cast<unsigned long long>(stats.leaves_emitted));

  if (ts.active()) {
    auto& m = ts.metrics();
    m.add_tree_build("", stats);
    m.set("tree.build.gate", gate);
    m.set("tree.build.gate_speedup", speedup);
  }
  ts.finish();
  OCTGB_CHECK_MSG(speedup >= gate,
                  "Morton build fell below the speedup gate");
  return 0;
}
