// §IV work-division ablation: node-based vs atom-based division of the
// energy phase, across process counts.
//
// Paper observations: (a) node–node division is slightly faster and
// (b) its error is *constant in P* (each rank always handles whole tree
// leaves), while atom-based division's error drifts with P because the
// segment boundaries change which (U, V) pairs are admissible. Also
// compares the paper's even-by-count leaf split against the weighted
// (points-balanced) split as a load-balancing ablation.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  std::string molecule_name = "1FQ1_l_b";  // mid-size, 4,730 atoms
  util::Args args;
  args.add("molecule", &molecule_name, "ZDock molecule to use");
  args.parse(argc, argv);

  perf::MachineModel machine;
  bench::print_environment(machine);

  bench::Prepared p =
      bench::prepare(mol::make_benchmark_molecule(molecule_name));
  const auto naive_born = core::naive_born_radii(p.molecule, p.surf);
  const double naive_e = core::naive_epol(p.molecule, naive_born);
  std::printf("%s: %zu atoms, naive Epol %.2f kcal/mol\n\n",
              molecule_name.c_str(), p.atoms(), naive_e);

  util::Table t("§IV — node-based vs atom-based Epol work division");
  t.header({"P", "node-based err %", "atom-based err %", "node-based time",
            "atom-based time", "weighted-split time"});

  std::vector<double> node_errors, atom_errors;
  for (int P : {1, 2, 4, 8, 12, 16}) {
    sim::ClusterConfig node_cfg = bench::oct_mpi_config(P);
    sim::ClusterConfig atom_cfg = node_cfg;
    atom_cfg.atom_based_epol = true;
    sim::ClusterConfig weighted_cfg = node_cfg;
    weighted_cfg.weighted_division = true;

    const auto node_r = bench::run_config(*p.engine, node_cfg);
    const auto atom_r = bench::run_config(*p.engine, atom_cfg);
    const auto weighted_r = bench::run_config(*p.engine, weighted_cfg);

    const double node_err = perf::percent_error(node_r.epol, naive_e);
    const double atom_err = perf::percent_error(atom_r.epol, naive_e);
    node_errors.push_back(node_err);
    atom_errors.push_back(atom_err);

    t.row({util::format("%d", P), util::format("%.5f", node_err),
           util::format("%.5f", atom_err),
           bench::fmt_time(node_r.total_seconds),
           bench::fmt_time(atom_r.total_seconds),
           bench::fmt_time(weighted_r.total_seconds)});
  }
  t.print();
  bench::save_csv(t, "workdiv");

  double node_spread = 0, atom_spread = 0;
  for (double e : node_errors)
    node_spread = std::max(node_spread, std::abs(e - node_errors[0]));
  for (double e : atom_errors)
    atom_spread = std::max(atom_spread, std::abs(e - atom_errors[0]));
  std::printf(
      "\nPaper check: node-based error spread across P = %.6f%% "
      "(constant), atom-based spread = %.6f%% (drifts with P)\n",
      node_spread, atom_spread);
  return 0;
}
