// Figure 6: min and max running time over 20 repeats versus core count for
// OCT_MPI and OCT_MPI+CILK on BTV'.
//
// The paper's observation: past ~180 cores the hybrid *minimum* time beats
// pure MPI, while the pure-MPI *maximum* is always worse (more ranks →
// worse straggler). Repeats here perturb the modeled base time with the
// documented jitter model (per-rank OS noise + network jitter).

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  double scale = bench::quick_mode() ? 0.005 : 0.01;
  int repeats = 20;
  util::Args args;
  args.add("scale", &scale, "BTV scale factor (1.0 = 6M atoms)");
  args.add("repeats", &repeats, "repeat count (paper: 20)");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  perf::MachineModel machine;
  bench::print_environment(machine);

  bench::Prepared p = bench::prepare(mol::make_btv(scale));
  std::printf("BTV': %zu atoms, %zu quadrature points\n\n", p.atoms(),
              p.surf.size());

  util::Table t(util::format(
      "Fig. 6 — min/max of %d runs vs cores, BTV', eps=0.9/0.9", repeats));
  t.header({"cores", "MPI min", "MPI max", "HYB min", "HYB max",
            "hybrid min wins"});

  const int core_counts[] = {120, 180, 230, 280, 330, 380, 432};
  for (int cores : core_counts) {
    const auto mpi_cfg = bench::oct_mpi_config(cores);
    const auto hyb_cfg = bench::oct_hybrid_config(cores);
    const auto mpi = bench::run_config(*p.engine, mpi_cfg);
    const auto hyb = bench::run_config(*p.engine, hyb_cfg);
    if (ts.active()) {
      bench::add_sim_metrics(ts.metrics(),
                             util::format("oct_mpi.cores%d", cores), mpi);
      bench::add_sim_metrics(ts.metrics(),
                             util::format("oct_hybrid.cores%d", cores), hyb);
    }
    perf::RunStats mpi_stats, hyb_stats;
    for (int rep = 0; rep < repeats; ++rep) {
      mpi_stats.add(sim::jittered_total_seconds(mpi, mpi_cfg,
                                                cores * 1000 + rep));
      hyb_stats.add(sim::jittered_total_seconds(hyb, hyb_cfg,
                                                cores * 2000 + rep));
    }
    t.row({util::format("%d", cores), bench::fmt_time(mpi_stats.min()),
           bench::fmt_time(mpi_stats.max()), bench::fmt_time(hyb_stats.min()),
           bench::fmt_time(hyb_stats.max()),
           hyb_stats.min() < mpi_stats.min() ? "yes" : "no"});
  }
  t.print();
  bench::save_csv(t, "fig6_minmax");
  ts.finish();

  std::puts(
      "\nPaper shape check: the hybrid max stays below the MPI max at every "
      "core count (6x fewer ranks -> smaller straggler tail + less "
      "communication), and the hybrid min overtakes the MPI min in the "
      "upper core range.");
  return 0;
}
