// §I motivation bench: Poisson–Boltzmann versus GB cost and agreement.
//
// The paper's opening argument: PB is the accurate continuum model but
// "due to high computational costs [it] is rarely used for large
// molecules", which is why GB (and then the octree-accelerated GB) exists.
// This bench measures both on growing molecules: PB work scales with the
// solvent grid volume × solver iterations, GB with the atom count — and
// the energies track each other.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  args.parse(argc, argv);

  perf::MachineModel machine;
  bench::print_environment(machine);

  util::Table t("PB (finite difference) vs GB (octree) — real measurements");
  t.header({"atoms", "PB cells", "PB sweeps", "PB wall", "GB wall",
            "PB Epol", "GB Epol", "ratio"});

  const std::size_t sizes_full[] = {100, 200, 400, 800, 1600};
  const std::size_t sizes_quick[] = {100, 200, 400};
  const auto sizes = bench::quick_mode()
                         ? std::span<const std::size_t>(sizes_quick)
                         : std::span<const std::size_t>(sizes_full);

  for (std::size_t n : sizes) {
    const auto m = mol::generate_protein({.target_atoms = n, .seed = 91});

    perf::Timer pb_timer;
    baselines::PbParams params;
    params.grid_spacing = 0.8;
    params.padding = 8.0;
    params.max_iterations = 1500;
    params.tolerance = 1e-6;
    perf::WorkCounters pb_work;
    const auto pb = baselines::pb_polarization_energy(m, {}, params,
                                                      &pb_work);
    const double pb_wall = pb_timer.seconds();

    perf::Timer gb_timer;
    const auto surf = surface::build_surface(m);
    core::GBEngine engine(m, surf);
    const auto gb = engine.compute();
    const double gb_wall = gb_timer.seconds();

    t.row({util::format("%zu", m.size()), util::format("%zu", pb.grid_cells),
           util::format("%d", pb.iterations_solvated + pb.iterations_vacuum),
           bench::fmt_time(pb_wall), bench::fmt_time(gb_wall),
           util::format("%.1f", pb.epol), util::format("%.1f", gb.epol),
           util::format("%.2f", pb.epol / gb.epol)});
    std::printf("  %zu atoms done\n", m.size());
  }
  std::puts("");
  t.print();
  bench::save_csv(t, "pb_vs_gb");

  std::puts(
      "\nPaper motivation check: PB cost per molecule is orders of "
      "magnitude above GB and grows with the grid volume, while the two "
      "models agree on the energy scale — exactly why GB approximations "
      "(and their octree acceleration) matter.");
  return 0;
}
