// Chaos harness for the elastic hybrid driver: runs the Fig. 4 pipeline
// under seeded fault plans (message loss, rank kill, stall, corruption,
// combined chaos) and verifies the bit-identical-recovery contract — every
// faulty run must reproduce the fault-free Epol exactly, not approximately.
//
// Prints one row per plan (faults fired, ranks lost, recovery work,
// checkpoint traffic, wall time, verdict) plus a Young/Daly
// recovery-overhead sweep showing how checkpoint cadence trades overhead
// against rework on the modeled Table I cluster. Exits non-zero when any
// plan breaks bit-identity, so CI can run it as a gate (`--plan` selects a
// single plan; `--smoke` shrinks the molecule for CI).

#include <cstdio>
#include <cstring>

#include "common.hpp"

using namespace octgb;
using mpp::faults::FaultPlan;

namespace {

struct PlanEntry {
  const char* name;
  FaultPlan plan;
};

std::vector<PlanEntry> make_plans(std::uint64_t seed) {
  using namespace mpp::faults;
  std::vector<PlanEntry> plans;
  plans.push_back({"message-loss", message_loss_plan(seed, 0.25)});
  plans.push_back({"rank-kill", rank_kill_plan(seed, /*victim=*/2,
                                               /*after_op=*/4)});
  plans.push_back({"stall", stall_plan(seed, 0.05, 2.0)});
  plans.push_back({"corruption", corruption_plan(seed, 0.5)});
  FaultPlan chaos = message_loss_plan(seed, 0.1);
  chaos.rules.push_back(
      {.kind = FaultKind::Delay, .probability = 0.1, .millis = 3.0});
  chaos.rules.push_back({.kind = FaultKind::Duplicate, .probability = 0.1});
  chaos.rules.push_back({.kind = FaultKind::Corrupt, .probability = 0.1});
  chaos.rules.push_back({.kind = FaultKind::Kill,
                         .rank = 1,
                         .probability = 1.0,
                         .after_op = 5,
                         .max_fires = 1});
  plans.push_back({"chaos", std::move(chaos)});
  return plans;
}

std::string join_ranks(const std::vector<int>& ranks) {
  if (ranks.empty()) return "-";
  std::string out;
  for (int r : ranks) {
    if (!out.empty()) out += ",";
    out += std::to_string(r);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int atoms = 800;
  int ranks = 4;
  std::string plan_filter = "all";
  std::string seed_str = "20260806";
  bool smoke = false;
  util::Args args;
  args.add("atoms", &atoms, "synthetic protein size");
  args.add("ranks", &ranks, "elastic driver ranks (= task-grid size)");
  args.add("plan", &plan_filter,
           "fault plan: all|message-loss|rank-kill|stall|corruption|chaos");
  args.add("seed", &seed_str, "fault-schedule seed");
  args.flag("smoke", &smoke, "CI-size workload");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();
  if (smoke) atoms = std::min(atoms, 400);
  const std::uint64_t seed = std::strtoull(seed_str.c_str(), nullptr, 10);

  auto prepared = bench::prepare(mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(atoms), .seed = 31}));
  const core::GBEngine& engine = *prepared.engine;
  std::printf("molecule: %zu atoms, %zu q-points; %d ranks, seed %llu\n\n",
              prepared.atoms(), prepared.surf.size(), ranks,
              static_cast<unsigned long long>(seed));

  core::ElasticConfig base_cfg;
  base_cfg.hybrid.ranks = ranks;
  base_cfg.hybrid.topology.ranks_per_node = 2;

  // The contract's left-hand side: the fault-free elastic run.
  const core::ElasticResult base = core::run_hybrid_elastic(engine, base_cfg);
  std::printf("fault-free Epol = %.12f kcal/mol (%.0f ms, %llu tasks)\n\n",
              base.epol, 1e3 * base.wall_seconds,
              static_cast<unsigned long long>(base.tasks_computed));

  util::Table t("elastic driver under seeded fault plans (bit-identity gate)");
  t.header({"plan", "faults", "dead", "recomputed", "ckpt puts", "retries",
            "time", "Epol"});
  int failures = 0;
  for (auto& [name, plan] : make_plans(seed)) {
    if (plan_filter != "all" && plan_filter != name) continue;
    core::ElasticConfig cfg = base_cfg;
    cfg.fault_plan = plan;
    const core::ElasticResult r = core::run_hybrid_elastic(engine, cfg);
    const bool identical = r.epol == base.epol && r.born == base.born;
    if (!identical) ++failures;
    t.row({name, std::to_string(r.faults.total()),
           join_ranks(r.dead_ranks),
           std::to_string(r.tasks_recomputed),
           std::to_string(r.checkpoint_puts),
           std::to_string(r.control_retries), bench::fmt_time(r.wall_seconds),
           identical ? "bit-identical" : "MISMATCH"});
    if (ts.active()) {
      auto& m = ts.metrics();
      const std::string scope = "faults." + std::string(name);
      m.set(scope + ".fired", r.faults.total());
      m.set(scope + ".drops", r.faults.drops);
      m.set(scope + ".kills", r.faults.kills);
      m.set(scope + ".corruptions", r.faults.corruptions);
      m.set(scope + ".dead_ranks",
            static_cast<std::uint64_t>(r.dead_ranks.size()));
      m.set(scope + ".tasks_recomputed", r.tasks_recomputed);
      m.set(scope + ".checkpoint_puts", r.checkpoint_puts);
      m.set(scope + ".control_retries", r.control_retries);
      m.set(scope + ".wall_seconds", r.wall_seconds);
      m.set(scope + ".bit_identical", std::uint64_t{identical ? 1u : 0u});
    }
  }
  t.print();
  bench::save_csv(t, "bench_faults");

  // --- modeled recovery overhead vs checkpoint cadence ---------------------
  // Young/Daly on the Table I cluster: how much a real deployment would pay
  // for the checkpoints the elastic driver writes, as a function of cadence.
  const sim::SimResult sim = bench::run_config(
      engine, bench::oct_hybrid_config(smoke ? 24 : 48));
  sim::RecoveryConfig rc;
  rc.mtbf_seconds = 6.0 * 3600.0;  // one node loss per six hours
  rc.checkpoint_seconds = 0.05;
  const double opt = sim::optimal_checkpoint_interval(rc.checkpoint_seconds,
                                                      rc.mtbf_seconds);
  util::Table rt(
      "modeled recovery overhead vs checkpoint cadence (Young/Daly)");
  rt.header({"interval", "ckpt cost", "E[failures]", "rework",
             "E[total]", "overhead"});
  for (const double mult : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    rc.checkpoint_interval_seconds = mult * opt;
    const auto est = sim::estimate_recovery(sim, rc);
    rt.row({util::format("%.1fs%s", est.interval_seconds,
                         mult == 1.0 ? " (opt)" : ""),
            bench::fmt_time(est.checkpoint_overhead_seconds),
            util::format("%.4f", est.expected_failures),
            bench::fmt_time(est.rework_seconds),
            bench::fmt_time(est.expected_total_seconds),
            util::format("%.2f%%", 100.0 * est.overhead_fraction)});
    if (ts.active())
      ts.metrics().set(util::format("recovery.overhead_pct.x%.1f", mult),
                       100.0 * est.overhead_fraction);
  }
  rt.print();
  bench::save_csv(rt, "bench_faults_recovery");
  ts.finish();

  if (failures > 0) {
    std::printf("\n%d fault plan(s) broke bit-identical recovery\n", failures);
    return 1;
  }
  std::printf("\nall fault plans recovered bit-identically\n");
  return 0;
}
