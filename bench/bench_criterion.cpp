// Ablation: the Born-phase far-field criterion — the paper's printed
// (1+ε)^(1/6) threshold versus this implementation's default (1+ε).
//
// This bench is the evidence behind the DESIGN.md §2 substitution note:
// at ε = 0.9 the printed threshold opens nodes only beyond ~18.7× the
// radius sum, leaving the Born phase effectively exact (no speedup), while
// the first-power threshold (~3.2×) reproduces the paper's speedups with
// energy error far below the 1 % budget.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  args.parse(argc, argv);

  perf::MachineModel machine;
  bench::print_environment(machine);

  util::Table t("Born far-field criterion: strict (1+e)^(1/6) vs loose (1+e)");
  t.header({"molecule", "atoms", "strict work", "loose work",
            "work ratio", "strict err %", "loose err %"});

  for (const auto& entry : bench::zdock_selection()) {
    if (entry.atoms > 9000 && bench::quick_mode()) break;
    const auto molecule = mol::make_benchmark_molecule(entry.name);
    const auto surf = surface::build_surface(molecule, {.subdivision = 1});
    const auto naive_born = core::naive_born_radii(molecule, surf);
    const double naive_e = core::naive_epol(molecule, naive_born);

    core::EngineConfig strict_cfg;
    strict_cfg.approx.strict_born_criterion = true;
    core::GBEngine strict_engine(molecule, surf, strict_cfg);
    const auto strict = strict_engine.compute();

    core::GBEngine loose_engine(molecule, surf, {});
    const auto loose = loose_engine.compute();

    const double sw = double(strict.work.born_exact + strict.work.born_approx);
    const double lw = double(loose.work.born_exact + loose.work.born_approx);
    t.row({entry.name, util::format("%zu", molecule.size()),
           util::format("%.3g", sw), util::format("%.3g", lw),
           util::format("%.2f", sw / lw),
           util::format("%.4f", perf::percent_error(strict.epol, naive_e)),
           util::format("%.4f", perf::percent_error(loose.epol, naive_e))});
    std::printf("  %-10s done\n", entry.name);
  }
  std::puts("");
  t.print();
  bench::save_csv(t, "criterion");

  std::puts(
      "\nTakeaway: the loose criterion cuts Born-phase work by a growing "
      "factor while keeping the energy error well inside the paper's 1% "
      "budget; the strict criterion does nearly exact work.");
  return 0;
}
