// Figure 5: scalability of OCT_MPI and OCT_MPI+CILK on the Blue Tongue
// Virus — speedup T_12 / T_p versus the number of 12-core nodes.
//
// The paper runs the 6M-atom BTV on up to 36 nodes (432 cores). The
// default here uses a scaled BTV' (atom count set by --scale / quick
// mode); the workload is a hollow capsid shell either way, which is what
// drives the far-field-heavy tree behaviour. Times are modeled from
// measured per-rank work and collective volumes (DESIGN.md §2).

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  double scale = bench::quick_mode() ? 0.005 : 0.01;  // of 6M atoms
  int max_nodes = 36;
  util::Args args;
  args.add("scale", &scale, "BTV scale factor (1.0 = 6M atoms)");
  args.add("max-nodes", &max_nodes, "largest node count to simulate");
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  perf::MachineModel machine;
  bench::print_environment(machine);

  std::printf("Preparing BTV' (scale %.3f)...\n", scale);
  bench::Prepared p = bench::prepare(mol::make_btv(scale));
  std::printf("BTV': %zu atoms, %zu quadrature points\n\n", p.atoms(),
              p.surf.size());

  util::Table t(
      "Fig. 5 — speedup w.r.t. one node (12 cores), BTV', eps=0.9/0.9");
  t.header({"nodes", "cores", "OCT_MPI t", "OCT_MPI speedup",
            "OCT_MPI+CILK t", "OCT_MPI+CILK speedup"});

  double t12_mpi = 0.0, t12_hyb = 0.0;
  const int node_counts[] = {1, 2, 4, 8, 12, 16, 24, 30, 36};
  for (int nodes : node_counts) {
    if (nodes > max_nodes) break;
    const int cores = nodes * machine.cores_per_node;
    const auto mpi =
        bench::run_config(*p.engine, bench::oct_mpi_config(cores));
    const auto hyb =
        bench::run_config(*p.engine, bench::oct_hybrid_config(cores));
    if (ts.active()) {
      bench::add_sim_metrics(ts.metrics(),
                             util::format("oct_mpi.nodes%d", nodes), mpi);
      bench::add_sim_metrics(ts.metrics(),
                             util::format("oct_hybrid.nodes%d", nodes), hyb);
    }
    if (nodes == 1) {
      t12_mpi = mpi.total_seconds;
      t12_hyb = hyb.total_seconds;
    }
    t.row({util::format("%d", nodes), util::format("%d", cores),
           bench::fmt_time(mpi.total_seconds),
           util::format("%.2f", t12_mpi / mpi.total_seconds),
           bench::fmt_time(hyb.total_seconds),
           util::format("%.2f", t12_hyb / hyb.total_seconds)});
  }
  t.print();
  bench::save_csv(t, "fig5_scalability");
  ts.finish();

  std::puts(
      "\nPaper shape check: both variants scale to tens of nodes; the "
      "hybrid curve pulls ahead at high node counts as the pure-MPI "
      "collective volume (P-fold gathers) and per-socket cache pressure "
      "grow.");
  return 0;
}
